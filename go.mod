module ldpjoin

go 1.24
