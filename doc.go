// Package ldpjoin estimates join sizes over private data under local
// differential privacy, implementing the LDPJoinSketch and LDPJoinSketch+
// algorithms of Zhang, Liu & Yin, "Sketches-based join size estimation
// under local differential privacy" (ICDE 2024).
//
// # The problem
//
// Two untrusted-server populations hold private join-attribute values
// (say, diagnosis codes in two hospitals). The server wants
// |A ⋈ B| = Σ_d f_A(d)·f_B(d) — the join size / inner product of the two
// frequency vectors — without ever seeing a true value. Each client
// randomizes its value locally (ε-LDP) and sends a single perturbed bit
// plus two sketch coordinates; the server aggregates the reports into a
// fast-AGMS-style sketch whose products estimate join sizes and whose
// cells estimate frequencies.
//
// # Quick start
//
//	cfg := ldpjoin.DefaultConfig()          // k=18, m=1024, ε=4
//	proto, err := ldpjoin.NewProtocol(cfg)  // shared by both populations
//	...
//	aggA := proto.NewAggregator()
//	aggA.AddColumn(valuesA, 1)              // simulate clients locally, or
//	                                        // feed Report values from the wire
//	skA := aggA.Sketch()
//	skB := ...                              // same for the B population
//	est := skA.JoinSize(skB)
//
// For skewed data at scale, LDPJoinSketch+ reduces hash-collision error
// by separating frequent and infrequent values without a privacy loss:
//
//	res, err := ldpjoin.JoinSizePlus(valuesA, valuesB, domain, ldpjoin.PlusConfig{
//		Config: cfg, SampleRate: 0.1, Theta: 0.01,
//	})
//
// Chain (multi-way) joins are estimated with NewChainProtocol. The
// runnable programs under examples/ walk through the paper's motivating
// applications: private similarity for data valuation, private dataset
// discovery, multiway joins, and a TCP client/server deployment.
//
// The deployable server side lives in internal/service (the HTTP column
// API) on top of the sharded streaming ingestion engine in
// internal/ingest; cmd/ldpjoind runs it. See ARCHITECTURE.md for the
// full package map and data flow.
//
// All randomness is seed-driven and all estimators are deterministic
// functions of (data, seeds), so results reproduce exactly.
package ldpjoin
