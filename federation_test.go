package ldpjoin

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"ldpjoin/internal/protocol"
)

// TestFacadeSnapshotFederation: two facade aggregators on different
// "nodes" export snapshots; importing and merging them reproduces a
// single aggregator over the union, byte for byte.
func TestFacadeSnapshotFederation(t *testing.T) {
	cfg := Config{K: 6, M: 256, Epsilon: 4, Seed: 3}
	proto, err := NewProtocol(cfg)
	if err != nil {
		t.Fatal(err)
	}

	colA := make([]uint64, 3000)
	colB := make([]uint64, 2000)
	for i := range colA {
		colA[i] = uint64(i % 40)
	}
	for i := range colB {
		colB[i] = uint64(i % 25)
	}

	// Node 1 and node 2 each aggregate one part.
	agg1 := proto.NewAggregator()
	agg1.AddColumn(colA, 31)
	agg2 := proto.NewAggregator()
	agg2.AddColumn(colB, 32)

	snap1, err := proto.ExportSnapshot(agg1)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := agg2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// The federator imports and merges.
	imp1, err := proto.ImportSnapshot(snap1)
	if err != nil {
		t.Fatal(err)
	}
	imp2, err := proto.ImportSnapshot(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if err := imp1.Merge(imp2); err != nil {
		t.Fatal(err)
	}
	if imp1.N() != float64(len(colA)+len(colB)) {
		t.Fatalf("merged N = %v, want %d", imp1.N(), len(colA)+len(colB))
	}
	fed := imp1.Sketch()

	// Single-node reference: same client seeds, one aggregator.
	single := proto.NewAggregator()
	single.AddColumn(colA, 31)
	single.AddColumn(colB, 32)
	ref := single.Sketch()

	fedBytes, _ := fed.MarshalBinary()
	refBytes, _ := ref.MarshalBinary()
	if !bytes.Equal(fedBytes, refBytes) {
		t.Fatal("federated sketch differs from single-node sketch")
	}
}

func TestFacadeSnapshotRejections(t *testing.T) {
	proto, err := NewProtocol(Config{K: 6, M: 256, Epsilon: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewProtocol(Config{K: 6, M: 256, Epsilon: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	agg := other.NewAggregator()
	agg.AddColumn([]uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 1)
	snap, err := agg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Wrong protocol (different seed) refuses the import.
	if _, err := proto.ImportSnapshot(snap); !errors.Is(err, protocol.ErrSnapshotMismatch) {
		t.Fatalf("cross-seed import: got %v, want ErrSnapshotMismatch", err)
	}
	// Corruption refuses the import.
	mut := append([]byte(nil), snap...)
	mut[len(mut)/2] ^= 1
	if _, err := other.ImportSnapshot(mut); !errors.Is(err, protocol.ErrBadSnapshot) {
		t.Fatalf("corrupt import: got %v, want ErrBadSnapshot", err)
	}
	// ExportSnapshot checks ownership.
	if _, err := proto.ExportSnapshot(agg); err == nil {
		t.Fatal("exporting a foreign aggregator accepted")
	}
	// A finalized aggregator cannot snapshot or merge.
	agg.Sketch()
	if _, err := agg.Snapshot(); err == nil {
		t.Fatal("snapshot of finalized aggregator accepted")
	}
}

func TestFacadeImportFinalized(t *testing.T) {
	proto, err := NewProtocol(Config{K: 6, M: 256, Epsilon: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	values := make([]uint64, 2000)
	for i := range values {
		values[i] = uint64(i % 30)
	}
	sk := proto.BuildSketch(values, 9)
	snap, err := sk.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	imp, err := proto.ImportFinalized(snap)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sk.MarshalBinary()
	b, _ := imp.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("imported finalized sketch differs from the original")
	}
	// Form mismatches route to the other import.
	if _, err := proto.ImportSnapshot(snap); err == nil {
		t.Fatal("finalized snapshot accepted by ImportSnapshot")
	}
	agg := proto.NewAggregator()
	agg.AddColumn(values[:100], 1)
	unfin, err := agg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.ImportFinalized(unfin); err == nil {
		t.Fatal("unfinalized snapshot accepted by ImportFinalized")
	}
}

// TestSketchMergeLinear: merging finalized sketches sums populations and
// keeps JoinSize consistent with a jointly built sketch (not bit-exact —
// that is the unfinalized path's guarantee — but numerically equal up to
// float reassociation, which for a join estimate in the thousands means
// agreement to within a relative 1e-9).
func TestSketchMergeLinear(t *testing.T) {
	proto, err := NewProtocol(Config{K: 6, M: 256, Epsilon: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	colA := make([]uint64, 3000)
	colB := make([]uint64, 2000)
	for i := range colA {
		colA[i] = uint64(i % 40)
	}
	for i := range colB {
		colB[i] = uint64(i % 25)
	}
	probe := proto.BuildSketch(colA, 77)

	agg1 := proto.NewAggregator()
	agg1.AddColumn(colA, 41)
	agg2 := proto.NewAggregator()
	agg2.AddColumn(colB, 42)
	sk1, sk2 := agg1.Sketch(), agg2.Sketch()

	joint := proto.NewAggregator()
	joint.AddColumn(colA, 41)
	joint.AddColumn(colB, 42)
	ref := joint.Sketch()

	if err := sk1.Merge(sk2); err != nil {
		t.Fatal(err)
	}
	if sk1.N() != ref.N() {
		t.Fatalf("merged N = %v, want %v", sk1.N(), ref.N())
	}
	got, err := sk1.JoinSize(probe)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.JoinSize(probe)
	if err != nil {
		t.Fatal(err)
	}
	if tol := 1e-9*math.Abs(want) + 1e-6; math.Abs(got-want) > tol {
		t.Fatalf("merged JoinSize %v vs joint %v", got, want)
	}

	// Incompatible merges refuse.
	foreign, err := NewProtocol(Config{K: 6, M: 256, Epsilon: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := sk1.Merge(foreign.BuildSketch(colB, 1)); err == nil {
		t.Fatal("cross-seed sketch merge accepted")
	}
}

// TestMatrixSketchMerge: the middle-table counterpart — two half-table
// sketches merged estimate the same chain as a jointly built one.
func TestMatrixSketchMerge(t *testing.T) {
	cfg := Config{K: 6, M: 128, Epsilon: 4, Seed: 5}
	cp, err := NewChainProtocol(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := 2000
	a := make([]uint64, n)
	b := make([]uint64, n)
	for i := range a {
		a[i] = uint64(i % 20)
		b[i] = uint64(i % 15)
	}
	m1, err := cp.BuildMid(0, a[:n/2], b[:n/2], 61)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := cp.BuildMid(0, a[n/2:], b[n/2:], 62)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Merge(m2); err != nil {
		t.Fatal(err)
	}
	if m1.N() != float64(n) {
		t.Fatalf("merged matrix N = %v, want %d", m1.N(), n)
	}

	// Snapshot round trip for the merged middle table.
	snap, err := m1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	imp, err := cp.ImportMatrixSnapshot(0, snap)
	if err != nil {
		t.Fatal(err)
	}
	if imp.N() != m1.N() {
		t.Fatalf("imported matrix N = %v, want %v", imp.N(), m1.N())
	}
	// And the imported sketch estimates with the chain protocol.
	left, err := cp.BuildEnd(0, a, 63)
	if err != nil {
		t.Fatal(err)
	}
	right, err := cp.BuildEnd(1, b, 64)
	if err != nil {
		t.Fatal(err)
	}
	est1, err := cp.Estimate(left, []*MatrixSketch{m1}, right)
	if err != nil {
		t.Fatal(err)
	}
	est2, err := cp.Estimate(left, []*MatrixSketch{imp}, right)
	if err != nil {
		t.Fatal(err)
	}
	if est1 != est2 {
		t.Fatalf("imported matrix sketch estimates %v, original %v", est2, est1)
	}

	// Mismatched chain positions refuse the import.
	if _, err := cp.ImportMatrixSnapshot(5, snap); err == nil {
		t.Fatal("out-of-range chain position accepted")
	}
}
