package ldpjoin

import (
	"fmt"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/ingest"
	"ldpjoin/internal/protocol"
)

// ChainProtocol estimates chain (multi-way) joins of the form
//
//	T_0(A_0) ⋈ T_1(A_0, A_1) ⋈ ... ⋈ T_{n-1}(A_{n-2}, A_{n-1}) ⋈ T_n(A_{n-1})
//
// under LDP, per §VI of the paper. Each join attribute A_i gets its own
// public hash family; the two end tables use plain LDPJoinSketch and each
// middle table a doubly Hadamard-encoded matrix sketch.
type ChainProtocol struct {
	cfg   Config
	endP  core.Params
	midP  core.MatrixParams
	fams  []*hashing.Family
	attrs int
}

// NewChainProtocol creates the protocol for a chain with the given number
// of join attributes (a 3-way chain has 2, a 4-way chain 3; at least 2).
func NewChainProtocol(cfg Config, attrs int) (*ChainProtocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("ldpjoin: %w", err)
	}
	if attrs < 2 {
		return nil, fmt.Errorf("ldpjoin: a chain needs at least 2 join attributes, got %d", attrs)
	}
	endP := cfg.params()
	fams := make([]*hashing.Family, attrs)
	for i := range fams {
		fams[i] = hashing.NewFamily(hashing.AttributeSeed(cfg.Seed, i), cfg.K, cfg.M)
	}
	return &ChainProtocol{
		cfg:   cfg,
		endP:  endP,
		midP:  core.MatrixParams{K: cfg.K, M1: cfg.M, M2: cfg.M, Epsilon: cfg.Epsilon},
		fams:  fams,
		attrs: attrs,
	}, nil
}

// Attributes returns the number of join attributes.
func (cp *ChainProtocol) Attributes() int { return cp.attrs }

// BuildEnd sketches a single-attribute end table over join attribute
// attr (0 for the leftmost, Attributes()-1 for the rightmost).
func (cp *ChainProtocol) BuildEnd(attr int, values []uint64, seed int64) (*Sketch, error) {
	if attr != 0 && attr != cp.attrs-1 {
		return nil, fmt.Errorf("ldpjoin: end tables join on the first or last attribute, got %d", attr)
	}
	return &Sketch{sk: ingest.Collect(cp.endP, cp.fams[attr], values, seed, ingest.Options{Shards: buildShards})}, nil
}

// MatrixSketch is a finalized middle-table sketch.
type MatrixSketch struct {
	ms *core.MatrixSketch
}

// N returns the number of tuples summarized.
func (m *MatrixSketch) N() float64 { return m.ms.N() }

// Merge adds other's cells into m: the middle-table counterpart of
// Sketch.Merge, with the same linearity (unbiased union summary) and
// the same caveat (floating-point, so not bit-identical to merging
// before finalization). Both sketches must come from the same chain
// protocol position — equal matrix parameters and attribute families.
func (m *MatrixSketch) Merge(other *MatrixSketch) error {
	if !m.ms.Compatible(other.ms) {
		return fmt.Errorf("ldpjoin: matrix sketches are not combinable (params %+v/seeds %d,%d vs params %+v/seeds %d,%d)",
			m.ms.Params(), m.ms.FamilyA().Seed(), m.ms.FamilyB().Seed(),
			other.ms.Params(), other.ms.FamilyA().Seed(), other.ms.FamilyB().Seed())
	}
	m.ms.Merge(other.ms)
	return nil
}

// Snapshot exports the finalized matrix sketch as a SNAP snapshot.
func (m *MatrixSketch) Snapshot() ([]byte, error) {
	return protocol.EncodeSnapshot(protocol.SnapshotOfMatrixSketch(m.ms))
}

// ImportMatrixSnapshot decodes a finalized matrix snapshot into a
// middle-table sketch for the chain position joining leftAttr to
// leftAttr+1, verifying the snapshot's configuration fingerprint
// against that position's parameters and attribute-family seeds.
func (cp *ChainProtocol) ImportMatrixSnapshot(leftAttr int, data []byte) (*MatrixSketch, error) {
	if leftAttr < 0 || leftAttr+1 >= cp.attrs {
		return nil, fmt.Errorf("ldpjoin: middle table attribute %d out of range", leftAttr)
	}
	snap, err := protocol.DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("ldpjoin: %w", err)
	}
	famA, famB := cp.fams[leftAttr], cp.fams[leftAttr+1]
	if err := snap.CompatibleWithMatrix(cp.midP, famA.Seed(), famB.Seed()); err != nil {
		return nil, fmt.Errorf("ldpjoin: %w", err)
	}
	if !snap.Finalized {
		return nil, fmt.Errorf("ldpjoin: matrix snapshot is unfinalized")
	}
	ms, err := core.RestoreMatrixSketch(cp.midP, famA, famB, snap.Cells, snap.N)
	if err != nil {
		return nil, fmt.Errorf("ldpjoin: %w", err)
	}
	return &MatrixSketch{ms: ms}, nil
}

// BuildMid sketches the middle table joining attribute leftAttr (its A
// column) to leftAttr+1 (its B column).
func (cp *ChainProtocol) BuildMid(leftAttr int, a, b []uint64, seed int64) (*MatrixSketch, error) {
	if leftAttr < 0 || leftAttr+1 >= cp.attrs {
		return nil, fmt.Errorf("ldpjoin: middle table attribute %d out of range", leftAttr)
	}
	if len(a) != len(b) {
		return nil, fmt.Errorf("ldpjoin: middle table columns of unequal length %d and %d", len(a), len(b))
	}
	ms := ingest.CollectMatrix(cp.midP, cp.fams[leftAttr], cp.fams[leftAttr+1], a, b, seed, ingest.Options{Shards: buildShards})
	return &MatrixSketch{ms: ms}, nil
}

// Estimate computes the chain join size from the end sketches and the
// middle sketches in chain order (Eq 27 generalized; median over the k
// replicas). len(mids) must equal Attributes()-1.
func (cp *ChainProtocol) Estimate(left *Sketch, mids []*MatrixSketch, right *Sketch) (float64, error) {
	if len(mids) != cp.attrs-1 {
		return 0, fmt.Errorf("ldpjoin: chain with %d attributes needs %d middle tables, got %d",
			cp.attrs, cp.attrs-1, len(mids))
	}
	cms := make([]*core.MatrixSketch, len(mids))
	for i, m := range mids {
		cms[i] = m.ms
	}
	return core.ChainEstimate(left.sk, cms, right.sk), nil
}

// BuildClosing sketches the table that closes a 3-cycle: its A column
// joins the protocol's last attribute and its B column the first, as in
// T3(C, A) for the cycle T1(A,B) ⋈ T2(B,C) ⋈ T3(C,A). The protocol must
// have exactly 3 attributes.
func (cp *ChainProtocol) BuildClosing(a, b []uint64, seed int64) (*MatrixSketch, error) {
	if cp.attrs != 3 {
		return nil, fmt.Errorf("ldpjoin: cycles need a 3-attribute protocol, got %d", cp.attrs)
	}
	if len(a) != len(b) {
		return nil, fmt.Errorf("ldpjoin: closing table columns of unequal length %d and %d", len(a), len(b))
	}
	ms := ingest.CollectMatrix(cp.midP, cp.fams[2], cp.fams[0], a, b, seed, ingest.Options{Shards: buildShards})
	return &MatrixSketch{ms: ms}, nil
}

// EstimateCycle computes the 3-cycle join size
// T1(A0,A1) ⋈ T2(A1,A2) ⋈ T3(A2,A0) from sketches built with BuildMid(0),
// BuildMid(1) and BuildClosing (§VI's "uncomplicated cyclic joins").
func (cp *ChainProtocol) EstimateCycle(m1, m2, closing *MatrixSketch) (float64, error) {
	if cp.attrs != 3 {
		return 0, fmt.Errorf("ldpjoin: cycles need a 3-attribute protocol, got %d", cp.attrs)
	}
	return core.CycleEstimate(m1.ms, m2.ms, closing.ms), nil
}
