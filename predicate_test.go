package ldpjoin_test

import (
	"math"
	"testing"

	"ldpjoin"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

func TestJoinSizeWhere(t *testing.T) {
	proto, err := ldpjoin.NewProtocol(ldpjoin.Config{K: 18, M: 1024, Epsilon: 4, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	const n, domain = 150000, 5000
	da := dataset.Zipf(1, n, domain, 1.4)
	db := dataset.Zipf(2, n, domain, 1.4)
	skA := proto.BuildSketch(da, 3)
	skB := proto.BuildSketch(db, 4)

	// Predicate over the 10 heaviest values.
	predicate := make([]uint64, 10)
	for i := range predicate {
		predicate[i] = uint64(i)
	}
	fa := join.Frequencies(da)
	fb := join.Frequencies(db)
	var truth float64
	for _, d := range predicate {
		truth += float64(fa[d]) * float64(fb[d])
	}

	got, err := skA.JoinSizeWhere(skB, predicate)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(got-truth) / truth; re > 0.2 {
		t.Fatalf("predicate join RE = %.3f (est %.4g truth %.4g)", re, got, truth)
	}

	// Predicate over values that never occur: near-zero mass.
	missing := []uint64{domain - 1, domain - 2, domain - 3}
	got, err = skA.JoinSizeWhere(skB, missing)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.01*truth {
		t.Fatalf("missing-value predicate join %.4g not near zero", got)
	}

	// Empty predicate: exactly zero.
	got, err = skA.JoinSizeWhere(skB, nil)
	if err != nil || got != 0 {
		t.Fatalf("empty predicate = %g, %v", got, err)
	}
}

func TestJoinSizeWhereIncompatible(t *testing.T) {
	p1, _ := ldpjoin.NewProtocol(ldpjoin.Config{K: 4, M: 128, Epsilon: 2, Seed: 1})
	p2, _ := ldpjoin.NewProtocol(ldpjoin.Config{K: 4, M: 128, Epsilon: 2, Seed: 2})
	s1 := p1.NewAggregator().Sketch()
	s2 := p2.NewAggregator().Sketch()
	if _, err := s1.JoinSizeWhere(s2, []uint64{1}); err == nil {
		t.Fatal("incompatible sketches accepted")
	}
}
