// Benchmarks regenerating every table and figure of the paper's
// evaluation (one Benchmark per artifact; see DESIGN.md §4 for the
// experiment index) plus ablation and micro benchmarks. The per-artifact
// benches run the full experiment at the tiny scale and attach the
// headline error metrics via b.ReportMetric, so `go test -bench` output
// carries the paper-shape numbers; cmd/experiments prints the full
// tables at larger scales.
package ldpjoin_test

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"ldpjoin"
	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/experiments"
	"ldpjoin/internal/ingest"
	"ldpjoin/internal/join"
)

// runArtifact executes one experiment per iteration and reports the mean
// of the named numeric columns from the last run's tables.
func runArtifact(b *testing.B, id string, metricCols ...string) {
	b.Helper()
	runner, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var tabs []*experiments.Table
	for i := 0; i < b.N; i++ {
		tabs = runner(experiments.ScaleTiny)
	}
	for _, col := range metricCols {
		if v, ok := columnMean(tabs, col); ok {
			b.ReportMetric(v, col)
		}
	}
}

// columnMean averages every parseable cell of the named column across
// tables.
func columnMean(tabs []*experiments.Table, col string) (float64, bool) {
	var sum float64
	var n int
	for _, t := range tabs {
		idx := -1
		for i, c := range t.Columns {
			if c == col {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		for _, row := range t.Rows {
			if v, err := strconv.ParseFloat(row[idx], 64); err == nil {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// --- One benchmark per paper artifact -------------------------------

func BenchmarkTable2Datasets(b *testing.B) { runArtifact(b, "table2") }

func BenchmarkFig5Accuracy(b *testing.B) {
	runArtifact(b, "fig5", "LDPJoinSketch", "LDPJoinSketch+", "FAGMS", "k-RR")
}

func BenchmarkFig6SpaceCost(b *testing.B) { runArtifact(b, "fig6", "AE") }

func BenchmarkFig7Communication(b *testing.B) {
	runArtifact(b, "fig7", "LDPJoinSketch", "k-RR")
}

func BenchmarkFig8Epsilon(b *testing.B) {
	runArtifact(b, "fig8", "LDPJoinSketch", "LDPJoinSketch+")
}

func BenchmarkFig9SketchSize(b *testing.B) {
	runArtifact(b, "fig9", "LDPJoinSketch", "LDPJoinSketch+")
}

func BenchmarkFig10SampleRate(b *testing.B) { runArtifact(b, "fig10", "AE") }

func BenchmarkFig11Threshold(b *testing.B) { runArtifact(b, "fig11", "AE") }

func BenchmarkFig12Skewness(b *testing.B) {
	runArtifact(b, "fig12", "LDPJoinSketch", "LDPJoinSketch+")
}

func BenchmarkFig13Efficiency(b *testing.B) {
	runArtifact(b, "fig13", "offline_s", "online_s")
}

func BenchmarkFig14Frequency(b *testing.B) {
	runArtifact(b, "fig14", "LDPJoinSketch", "Apple-HCMS")
}

func BenchmarkFig15Multiway(b *testing.B) {
	runArtifact(b, "fig15", "LDPJoinSketch(3way)", "Compass(3way)")
}

// --- Ablation benchmarks (design choices from DESIGN.md §2) ----------

// BenchmarkAblationNTSubtraction compares the paper-literal Algorithm 5
// non-target subtraction (population counts) against the group-scaled
// variant the library defaults to.
func BenchmarkAblationNTSubtraction(b *testing.B) {
	task := experiments.ZipfTask(1.1, experiments.ScaleSmall)
	for _, variant := range []struct {
		name    string
		literal bool
	}{{"group-scaled", false}, {"literal", true}} {
		b.Run(variant.name, func(b *testing.B) {
			p := experiments.MethodParams{
				K: 18, M: 1024, Epsilon: 4,
				SampleRate: 0.1, Theta: 0.01, FLHPool: 512,
				LiteralNT: variant.literal,
			}
			plus := experiments.MethodPlus()
			var ae float64
			for i := 0; i < b.N; i++ {
				res := plus.Run(task, p, int64(9000+i))
				ae = abs(res.Estimate - task.Truth)
			}
			b.ReportMetric(ae/task.Truth, "RE")
		})
	}
}

// BenchmarkAblationFIEstimator compares median-based frequent-item
// extraction (default) against the paper-literal Theorem 7 mean, whose
// heavy-tailed noise floods FI with collision-spike false positives.
func BenchmarkAblationFIEstimator(b *testing.B) {
	task := experiments.ZipfTask(1.1, experiments.ScaleSmall)
	for _, variant := range []struct {
		name string
		mean bool
	}{{"median", false}, {"mean", true}} {
		b.Run(variant.name, func(b *testing.B) {
			p := experiments.MethodParams{
				K: 18, M: 1024, Epsilon: 4,
				SampleRate: 0.1, Theta: 0.01, FLHPool: 512,
				MeanFI: variant.mean,
			}
			plus := experiments.MethodPlus()
			var ae float64
			for i := 0; i < b.N; i++ {
				res := plus.Run(task, p, int64(9100+i))
				ae = abs(res.Estimate - task.Truth)
			}
			b.ReportMetric(ae/task.Truth, "RE")
		})
	}
}

// BenchmarkAblationRowAggregation compares the paper's median-of-rows
// join estimator (Eq 5) against a mean-of-rows variant.
func BenchmarkAblationRowAggregation(b *testing.B) {
	task := experiments.ZipfTask(1.3, experiments.ScaleSmall)
	p := core.Params{K: 18, M: 1024, Epsilon: 4}
	fam := p.NewFamily(1)
	aggA := core.NewAggregator(p, fam)
	aggA.CollectColumn(task.A, rand.New(rand.NewSource(2)))
	aggB := core.NewAggregator(p, fam)
	aggB.CollectColumn(task.B, rand.New(rand.NewSource(3)))
	skA, skB := aggA.Finalize(), aggB.Finalize()
	b.Run("median", func(b *testing.B) {
		var est float64
		for i := 0; i < b.N; i++ {
			est = skA.JoinSize(skB)
		}
		b.ReportMetric(abs(est-task.Truth)/task.Truth, "RE")
	})
	b.Run("mean", func(b *testing.B) {
		var est float64
		for i := 0; i < b.N; i++ {
			est = skA.JoinSizeMean(skB)
		}
		b.ReportMetric(abs(est-task.Truth)/task.Truth, "RE")
	})
}

// BenchmarkAblationClientEncoding compares the O(1) client (Hadamard
// entry oracle) against the literal Algorithm 1 transcription that
// materializes the length-m vector and transforms it.
func BenchmarkAblationClientEncoding(b *testing.B) {
	p := core.Params{K: 18, M: 1024, Epsilon: 4}
	fam := p.NewFamily(1)
	b.Run("oracle", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			core.Perturb(uint64(i), p, fam, rng)
		}
	})
	b.Run("literal", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			core.PerturbLiteral(uint64(i), p, fam, rng)
		}
	})
}

// BenchmarkAblationParallelBuild compares single-threaded and
// all-core simulated sketch construction on the ingestion engine.
func BenchmarkAblationParallelBuild(b *testing.B) {
	p := core.Params{K: 18, M: 1024, Epsilon: 4}
	fam := p.NewFamily(1)
	data := dataset.Zipf(1, 200000, 20000, 1.3)
	b.Run("shards-1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ingest.Collect(p, fam, data, 7, ingest.Options{Shards: 1, Workers: 1})
		}
	})
	b.Run("shards-auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ingest.Collect(p, fam, data, 7, ingest.Options{})
		}
	})
}

// BenchmarkIngestEngine measures the wire-report ingestion hot path at
// 1M reports — the fold the server runs once per client at the
// ROADMAP's scale. The single-threaded case replays the retired
// one-aggregator service path; the sharded cases run the ingestion
// engine. The sketches are byte-identical across all variants (integral
// cells merge exactly); only the wall clock changes.
func BenchmarkIngestEngine(b *testing.B) {
	p := core.Params{K: 18, M: 1024, Epsilon: 4}
	fam := p.NewFamily(1)
	const nReports = 1_000_000
	const batchSize = 4096
	rng := rand.New(rand.NewSource(1))
	reports := make([]core.Report, nReports)
	for i := range reports {
		reports[i] = core.Perturb(uint64(i%10000), p, fam, rng)
	}
	batches := make([][]core.Report, 0, nReports/batchSize+1)
	for lo := 0; lo < nReports; lo += batchSize {
		hi := lo + batchSize
		if hi > nReports {
			hi = nReports
		}
		batches = append(batches, reports[lo:hi])
	}

	b.Run("single-threaded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			agg := core.NewAggregator(p, fam)
			for _, batch := range batches {
				for _, r := range batch {
					agg.Add(r)
				}
			}
			agg.Finalize()
		}
		b.ReportMetric(float64(nReports)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
	})
	for _, workers := range []int{2, 4, 0} {
		name := fmt.Sprintf("engine-workers-%d", workers)
		if workers == 0 {
			name = "engine-workers-auto"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := ingest.NewEngine(p, fam, ingest.Options{Workers: workers, Shards: workers})
				col := eng.NewColumn()
				for _, batch := range batches {
					if err := col.Enqueue(batch); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := col.Finalize(); err != nil {
					b.Fatal(err)
				}
				eng.Close()
			}
			b.ReportMetric(float64(nReports)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}

// --- Micro benchmarks on the public facade ---------------------------

func BenchmarkClientReport(b *testing.B) {
	proto, err := ldpjoin.NewProtocol(ldpjoin.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cli := proto.NewClient(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cli.Report(uint64(i))
	}
}

func BenchmarkAggregatorAdd(b *testing.B) {
	proto, err := ldpjoin.NewProtocol(ldpjoin.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	agg := proto.NewAggregator()
	cli := proto.NewClient(1)
	r := cli.Report(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Add(r)
	}
}

func BenchmarkSketchJoinSize(b *testing.B) {
	proto, err := ldpjoin.NewProtocol(ldpjoin.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	data := dataset.Zipf(1, 50000, 5000, 1.3)
	skA := proto.BuildSketch(data, 1)
	skB := proto.BuildSketch(data, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := skA.JoinSize(skB); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSketchFrequency(b *testing.B) {
	proto, err := ldpjoin.NewProtocol(ldpjoin.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	sk := proto.BuildSketch(dataset.Zipf(1, 50000, 5000, 1.3), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Frequency(uint64(i % 5000))
	}
}

func BenchmarkJoinSizePlusEndToEnd(b *testing.B) {
	da := dataset.Zipf(1, 100000, 5000, 1.2)
	db := dataset.Zipf(2, 100000, 5000, 1.2)
	truth := join.Size(da, db)
	cfg := ldpjoin.PlusConfig{
		Config:     ldpjoin.Config{K: 18, M: 1024, Epsilon: 4, Seed: 1},
		SampleRate: 0.1,
		Theta:      0.05,
	}
	var re float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := ldpjoin.JoinSizePlus(da, db, 5000, cfg)
		if err != nil {
			b.Fatal(err)
		}
		re = abs(res.Estimate-truth) / truth
	}
	b.ReportMetric(re, "RE")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
