// Private dataset search and discovery (§I, application 2).
//
// A data catalog holds columns contributed by different private sources
// (hospitals, genetics labs, ...). Given a query column, the catalog
// ranks the candidates by estimated joinability — the join size between
// the query and each candidate — using only LDP sketches, so relevance is
// assessed before anyone agrees to share data.
//
// Run with: go run ./examples/discovery
package main

import (
	"fmt"
	"log"
	"sort"

	"ldpjoin"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

type candidate struct {
	name    string
	col     []uint64
	private float64
	exact   float64
}

func main() {
	proto, err := ldpjoin.NewProtocol(ldpjoin.Config{K: 18, M: 1024, Epsilon: 4, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// The query column and a catalog of candidates with decreasing
	// relatedness (decreasing overlap of heavy values).
	const n, domain = 250_000, 15_000
	query := dataset.Zipf(10, n, domain, 1.3)
	catalog := []*candidate{
		{name: "cohort-replica", col: dataset.Zipf(11, n, domain, 1.3)},
		{name: "cohort-shift16", col: shift(dataset.Zipf(12, n, domain, 1.3), 16, domain)},
		{name: "cohort-shift200", col: shift(dataset.Zipf(13, n, domain, 1.3), 200, domain)},
		{name: "uniform-noise", col: dataset.Zipf(14, n, domain, 0.0)},
		{name: "far-corner", col: shift(dataset.Zipf(15, n, domain, 1.3), domain/2, domain)},
	}

	skQ := proto.BuildSketch(query, 20)
	for i, c := range catalog {
		sk := proto.BuildSketch(c.col, int64(21+i))
		est, err := skQ.JoinSize(sk)
		if err != nil {
			log.Fatal(err)
		}
		c.private = est
		c.exact = join.Size(query, c.col)
	}

	sort.Slice(catalog, func(i, j int) bool { return catalog[i].private > catalog[j].private })
	fmt.Printf("%-16s  %14s  %14s\n", "candidate", "private-score", "exact-join")
	for _, c := range catalog {
		fmt.Printf("%-16s  %14.4g  %14.4g\n", c.name, c.private, c.exact)
	}

	// The private ranking should match the exact ranking.
	exactOrder := append([]*candidate(nil), catalog...)
	sort.Slice(exactOrder, func(i, j int) bool { return exactOrder[i].exact > exactOrder[j].exact })
	agree := true
	for i := range catalog {
		if catalog[i] != exactOrder[i] {
			agree = false
		}
	}
	fmt.Printf("\nprivate ranking matches exact ranking: %v\n", agree)
}

func shift(col []uint64, off, domain uint64) []uint64 {
	out := make([]uint64, len(col))
	for i, d := range col {
		out[i] = (d + off) % domain
	}
	return out
}
