// Private data catalog with persisted sketches.
//
// A catalog ingests columns from private sources once, persists only the
// LDP sketches (never raw data), and answers join/AQP queries later from
// the stored artifacts: the workflow behind private dataset search
// services. Demonstrates sketch serialization and predicate (AQP) joins.
//
// Run with: go run ./examples/catalog
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ldpjoin"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

func main() {
	dir, err := os.MkdirTemp("", "ldpjoin-catalog")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	proto, err := ldpjoin.NewProtocol(ldpjoin.Config{K: 18, M: 1024, Epsilon: 4, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}

	// Ingestion day: three sources contribute columns; only sketches are
	// persisted.
	const n, domain = 200_000, 10_000
	columns := map[string][]uint64{
		"clinic-east":  dataset.Zipf(1, n, domain, 1.3),
		"clinic-west":  dataset.Zipf(2, n, domain, 1.3),
		"lab-registry": dataset.Zipf(3, n/2, domain, 1.6),
	}
	for name, col := range columns {
		sk := proto.BuildSketch(col, int64(len(name)))
		blob, err := sk.MarshalBinary()
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, name+".sketch")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("persisted %-14s → %s (%d bytes, %d clients)\n", name, filepath.Base(path), len(blob), len(col))
	}

	// Query day: restore from disk, no raw data in sight.
	restore := func(name string) *ldpjoin.Sketch {
		blob, err := os.ReadFile(filepath.Join(dir, name+".sketch"))
		if err != nil {
			log.Fatal(err)
		}
		sk, err := ldpjoin.UnmarshalSketch(blob)
		if err != nil {
			log.Fatal(err)
		}
		return sk
	}
	east := restore("clinic-east")
	west := restore("clinic-west")
	lab := restore("lab-registry")

	estEW, err := east.JoinSize(west)
	if err != nil {
		log.Fatal(err)
	}
	estEL, err := east.JoinSize(lab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoinability(east, west) = %.4g   (exact %.4g)\n",
		estEW, join.Size(columns["clinic-east"], columns["clinic-west"]))
	fmt.Printf("joinability(east, lab)  = %.4g   (exact %.4g)\n",
		estEL, join.Size(columns["clinic-east"], columns["lab-registry"]))

	// AQP: COUNT join restricted to the 20 most common codes.
	predicate := make([]uint64, 20)
	for i := range predicate {
		predicate[i] = uint64(i)
	}
	got, err := east.JoinSizeWhere(west, predicate)
	if err != nil {
		log.Fatal(err)
	}
	var exact float64
	fe := join.Frequencies(columns["clinic-east"])
	fw := join.Frequencies(columns["clinic-west"])
	for _, d := range predicate {
		exact += float64(fe[d]) * float64(fw[d])
	}
	fmt.Printf("COUNT(east ⋈ west WHERE code < 20) = %.4g   (exact %.4g)\n", got, exact)
}
