// Distributed collection over TCP: the LDP workflow as a real
// client/server system.
//
// An aggregation server listens on localhost; several client gateways
// connect concurrently, stream their populations' perturbed reports over
// the binary wire protocol, and disconnect. The sharded ingestion engine
// folds the streams concurrently; the server then answers a join query
// against a second, locally collected population.
//
// Run with: go run ./examples/protocolserver
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"

	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/ingest"
	"ldpjoin/internal/join"
	"ldpjoin/internal/protocol"
)

func main() {
	params := core.Params{K: 18, M: 1024, Epsilon: 4}
	fam := params.NewFamily(1) // public: both sides derive it from the seed

	const nPerGateway, gateways, domain = 50_000, 4, 10_000
	colA := dataset.Zipf(2, nPerGateway*gateways, domain, 1.3)
	colB := dataset.Zipf(3, nPerGateway*gateways, domain, 1.3)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	fmt.Printf("aggregator listening on %s\n", l.Addr())

	collector := ingest.NewCollector(params, fam, ingest.Options{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- collector.Serve(l, gateways) }()

	// Each gateway perturbs its shard client-side and streams the reports.
	var wg sync.WaitGroup
	for g := 0; g < gateways; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shard := colA[g*nPerGateway : (g+1)*nPerGateway]
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				log.Fatalf("gateway %d: %v", g, err)
			}
			defer conn.Close()
			w, err := protocol.NewReportWriter(conn, params)
			if err != nil {
				log.Fatalf("gateway %d: %v", g, err)
			}
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for _, private := range shard {
				if err := w.Write(core.Perturb(private, params, fam, rng)); err != nil {
					log.Fatalf("gateway %d: %v", g, err)
				}
			}
			if err := w.Flush(); err != nil {
				log.Fatalf("gateway %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
	skA, err := collector.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d streams, %.0f reports\n", collector.Streams(), skA.N())

	// Population B collected locally; estimate the join.
	aggB := core.NewAggregator(params, fam)
	aggB.CollectColumn(colB, rand.New(rand.NewSource(7)))
	est := skA.JoinSize(aggB.Finalize())
	truth := join.Size(colA, colB)
	fmt.Printf("exact join size: %.6g\n", truth)
	fmt.Printf("LDP estimate:    %.6g (RE %.2f%%)\n", est, 100*abs(est-truth)/truth)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
