// Quickstart: estimate the join size of two private columns under LDP.
//
// Two populations (think: two services, each holding one sensitive join
// attribute per user) never reveal a raw value. Each user submits a
// single randomized bit plus two public-coin indices; the untrusted
// server aggregates the reports into sketches and multiplies them.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ldpjoin"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

func main() {
	// Both sides must agree on the protocol configuration (and therefore
	// the public hash functions derived from Seed).
	cfg := ldpjoin.DefaultConfig() // k=18, m=1024, ε=4
	proto, err := ldpjoin.NewProtocol(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize two skewed private columns over a 20k-value domain.
	const n, domain = 300_000, 20_000
	colA := dataset.Zipf(1, n, domain, 1.2)
	colB := dataset.Zipf(2, n, domain, 1.2)

	// Population A: simulate each client explicitly.
	aggA := proto.NewAggregator()
	client := proto.NewClient(11)
	for _, private := range colA {
		report := client.Report(private) // ε-LDP, safe to transmit
		aggA.Add(report)
	}
	sketchA := aggA.Sketch()

	// Population B: the one-call parallel shortcut.
	sketchB := proto.BuildSketch(colB, 12)

	est, err := sketchA.JoinSize(sketchB)
	if err != nil {
		log.Fatal(err)
	}
	truth := join.Size(colA, colB)
	fmt.Printf("clients:            %d + %d (1 bit each)\n", n, n)
	fmt.Printf("exact join size:    %.6g\n", truth)
	fmt.Printf("private estimate:   %.6g\n", est)
	fmt.Printf("relative error:     %.2f%%\n", 100*abs(est-truth)/truth)

	// The same sketches answer frequency queries (Theorem 7).
	fmt.Printf("\nfrequency of the most popular value (true %d): %.0f\n",
		count(colA, 0), sketchA.Frequency(0))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func count(col []uint64, v uint64) int {
	c := 0
	for _, d := range col {
		if d == v {
			c++
		}
	}
	return c
}
