// Private similarity computation for data valuation (§I, application 1).
//
// A data market wants to price dataset B against a buyer's dataset A by
// their cosine similarity cos(A,B) = ⟨f_A, f_B⟩ / (‖f_A‖·‖f_B‖) — but
// neither side may reveal raw records. Everything needed is estimable
// from the LDP sketches: the inner product via JoinSize and the norms via
// the debiased self products, so the whole valuation runs on perturbed
// bits.
//
// Run with: go run ./examples/similarity
package main

import (
	"fmt"
	"log"
	"math"

	"ldpjoin"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

func main() {
	cfg := ldpjoin.Config{K: 18, M: 2048, Epsilon: 4, Seed: 99}
	proto, err := ldpjoin.NewProtocol(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The buyer's corpus, and three candidate datasets of varying
	// relatedness: one drawn from the same distribution, one mildly
	// shifted, one nearly unrelated (disjoint-ish support).
	const n, domain = 400_000, 30_000
	buyer := dataset.Zipf(1, n, domain, 1.2)
	candidates := map[string][]uint64{
		"same-distribution": dataset.Zipf(2, n, domain, 1.2),
		"half-overlapping":  mix(dataset.Zipf(3, n, domain, 1.2), shift(dataset.Zipf(5, n, domain, 1.2), 40, domain)),
		"unrelated":         shift(dataset.Zipf(4, n, domain, 1.2), domain/2, domain),
	}

	skBuyer := proto.BuildSketch(buyer, 7)
	normBuyer := math.Sqrt(skBuyer.SelfJoinSize())

	fmt.Printf("%-18s  %12s  %12s\n", "candidate", "private-cos", "exact-cos")
	for name, col := range candidates {
		sk := proto.BuildSketch(col, 8)
		inner, err := skBuyer.JoinSize(sk)
		if err != nil {
			log.Fatal(err)
		}
		cos := inner / (normBuyer * math.Sqrt(sk.SelfJoinSize()))
		fmt.Printf("%-18s  %12.4f  %12.4f\n", name, cos, exactCos(buyer, col))
	}
	fmt.Println("\nhigher similarity ⇒ higher marginal value of the candidate dataset")
}

// mix interleaves two columns half and half.
func mix(a, b []uint64) []uint64 {
	out := make([]uint64, len(a))
	for i := range out {
		if i%2 == 0 {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}

// shift displaces every value by off (mod domain), lowering the overlap
// with the original distribution's head.
func shift(col []uint64, off, domain uint64) []uint64 {
	out := make([]uint64, len(col))
	for i, d := range col {
		out[i] = (d + off) % domain
	}
	return out
}

func exactCos(a, b []uint64) float64 {
	return join.Size(a, b) / math.Sqrt(join.F2(a)*join.F2(b))
}
