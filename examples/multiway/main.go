// Multi-way chain join estimation under LDP (§VI of the paper).
//
// Estimates |T1(A) ⋈ T2(A,B) ⋈ T3(B)| where every join value in every
// table is private: the end tables run plain LDPJoinSketch and the middle
// table the two-dimensional Hadamard encoding, so each tuple still costs
// one perturbed bit.
//
// Run with: go run ./examples/multiway
package main

import (
	"fmt"
	"log"

	"ldpjoin"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

func main() {
	cfg := ldpjoin.Config{K: 9, M: 256, Epsilon: 6, Seed: 3}
	chain, err := ldpjoin.NewChainProtocol(cfg, 2) // two join attributes: A and B
	if err != nil {
		log.Fatal(err)
	}

	const n, domain = 150_000, 400
	t1 := dataset.Zipf(31, n, domain, 1.4)  // T1(A)
	t2a := dataset.Zipf(32, n, domain, 1.4) // T2.A
	t2b := dataset.Zipf(33, n, domain, 1.4) // T2.B
	t3 := dataset.Zipf(34, n, domain, 1.4)  // T3(B)
	truth := join.ChainSize(t1, []join.PairTable{{A: t2a, B: t2b}}, t3)

	left, err := chain.BuildEnd(0, t1, 41)
	if err != nil {
		log.Fatal(err)
	}
	mid, err := chain.BuildMid(0, t2a, t2b, 42)
	if err != nil {
		log.Fatal(err)
	}
	right, err := chain.BuildEnd(1, t3, 43)
	if err != nil {
		log.Fatal(err)
	}

	est, err := chain.Estimate(left, []*ldpjoin.MatrixSketch{mid}, right)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-way chain:     T1(A) ⋈ T2(A,B) ⋈ T3(B), %d rows per table\n", n)
	fmt.Printf("exact size:      %.6g\n", truth)
	fmt.Printf("LDP estimate:    %.6g\n", est)
	fmt.Printf("relative error:  %.2f%%\n", 100*abs(est-truth)/truth)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
