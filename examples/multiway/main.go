// Multi-way chain join estimation under LDP (§VI of the paper).
//
// Estimates |T1(A) ⋈ T2(A,B) ⋈ T3(B)| where every join value in every
// table is private: the end tables run plain LDPJoinSketch and the middle
// table the two-dimensional Hadamard encoding, so each tuple still costs
// one perturbed bit.
//
// The example runs the estimate twice. First in-process through the
// ChainProtocol facade, then end-to-end over HTTP: an aggregation
// server is started, each client perturbs its own value locally and the
// reports stream to named columns — T1 on attribute 0, the middle table
// T2 as a KindMatrix stream spanning attributes (0, 1), T3 on attribute
// 1 — and GET /v1/join?path=T1,T2,T3 runs the server's chain planner
// over the finalized sketches.
//
// Run with: go run ./examples/multiway
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"

	"ldpjoin"
	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
	"ldpjoin/internal/protocol"
	"ldpjoin/internal/service"
)

func main() {
	cfg := ldpjoin.Config{K: 9, M: 256, Epsilon: 6, Seed: 3}
	chain, err := ldpjoin.NewChainProtocol(cfg, 2) // two join attributes: A and B
	if err != nil {
		log.Fatal(err)
	}

	const n, domain = 150_000, 400
	t1 := dataset.Zipf(31, n, domain, 1.4)  // T1(A)
	t2a := dataset.Zipf(32, n, domain, 1.4) // T2.A
	t2b := dataset.Zipf(33, n, domain, 1.4) // T2.B
	t3 := dataset.Zipf(34, n, domain, 1.4)  // T3(B)
	truth := join.ChainSize(t1, []join.PairTable{{A: t2a, B: t2b}}, t3)

	left, err := chain.BuildEnd(0, t1, 41)
	if err != nil {
		log.Fatal(err)
	}
	mid, err := chain.BuildMid(0, t2a, t2b, 42)
	if err != nil {
		log.Fatal(err)
	}
	right, err := chain.BuildEnd(1, t3, 43)
	if err != nil {
		log.Fatal(err)
	}

	est, err := chain.Estimate(left, []*ldpjoin.MatrixSketch{mid}, right)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-way chain:     T1(A) ⋈ T2(A,B) ⋈ T3(B), %d rows per table\n", n)
	fmt.Printf("exact size:      %.6g\n", truth)
	fmt.Printf("LDP estimate:    %.6g (in-process)\n", est)
	fmt.Printf("relative error:  %.2f%%\n", 100*abs(est-truth)/truth)

	httpEst, err := overHTTP(cfg, t1, t2a, t2b, t3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LDP estimate:    %.6g (over HTTP: KindMatrix ingest + /v1/join?path=T1,T2,T3)\n", httpEst)
	fmt.Printf("relative error:  %.2f%%\n", 100*abs(httpEst-truth)/truth)
}

// overHTTP runs the same estimate against a live aggregation server:
// client-side perturbation, wire-format report streams, the server's
// polymorphic columns, and its chain-join planner.
func overHTTP(cfg ldpjoin.Config, t1, t2a, t2b, t3 []uint64) (float64, error) {
	p := core.Params{K: cfg.K, M: cfg.M, Epsilon: cfg.Epsilon}
	srv, err := service.New(p, cfg.Seed)
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// The attribute families every participant derives from the shared
	// seed: A is attribute 0, B attribute 1.
	famA := hashing.NewFamily(hashing.AttributeSeed(cfg.Seed, 0), cfg.K, cfg.M)
	famB := hashing.NewFamily(hashing.AttributeSeed(cfg.Seed, 1), cfg.K, cfg.M)
	mp := core.MatrixParams{K: cfg.K, M1: cfg.M, M2: cfg.M, Epsilon: cfg.Epsilon}

	// T1(A): a KindJoin stream on attribute 0.
	var buf bytes.Buffer
	w, err := protocol.NewReportWriter(&buf, p)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(51))
	for _, v := range t1 {
		if err := w.Write(core.Perturb(v, p, famA, rng)); err != nil {
			return 0, err
		}
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	if err := post(base+"/v1/columns/T1/reports", &buf); err != nil {
		return 0, err
	}

	// T2(A,B): a KindMatrix stream spanning attributes (0, 1).
	mw, err := protocol.NewMatrixReportWriter(&buf, mp)
	if err != nil {
		return 0, err
	}
	rng = rand.New(rand.NewSource(52))
	for i := range t2a {
		if err := mw.Write(core.PerturbTuple(t2a[i], t2b[i], mp, famA, famB, rng)); err != nil {
			return 0, err
		}
	}
	if err := mw.Flush(); err != nil {
		return 0, err
	}
	if err := post(base+"/v1/columns/T2/reports?attr=0", &buf); err != nil {
		return 0, err
	}

	// T3(B): a KindJoin stream on attribute 1.
	w, err = protocol.NewReportWriter(&buf, p)
	if err != nil {
		return 0, err
	}
	rng = rand.New(rand.NewSource(53))
	for _, v := range t3 {
		if err := w.Write(core.Perturb(v, p, famB, rng)); err != nil {
			return 0, err
		}
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	if err := post(base+"/v1/columns/T3/reports?attr=1", &buf); err != nil {
		return 0, err
	}

	for _, col := range []string{"T1", "T2", "T3"} {
		if err := post(base+"/v1/columns/"+col+"/finalize", nil); err != nil {
			return 0, err
		}
	}

	resp, err := http.Get(base + "/v1/join?path=T1,T2,T3")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Estimate float64 `json:"estimate"`
		Error    struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("chain query: %d [%s]: %s", resp.StatusCode, out.Error.Code, out.Error.Message)
	}
	return out.Estimate, nil
}

func post(url string, body *bytes.Buffer) error {
	var rd io.Reader
	if body != nil {
		rd = body
	}
	resp, err := http.Post(url, "application/octet-stream", rd)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("POST %s: %d: %s", url, resp.StatusCode, msg)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
