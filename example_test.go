package ldpjoin_test

import (
	"fmt"
	"math"

	"ldpjoin"
)

// skewed builds a deterministic skewed column: two thirds of the mass
// sits on ten heavy values, the rest spreads uniformly over the domain.
func skewed(n int, domain uint64, salt uint64) []uint64 {
	out := make([]uint64, 0, n)
	for i := 0; len(out) < n; i++ {
		if i%3 != 2 {
			out = append(out, (uint64(i/3)%10+salt)%domain)
		} else {
			out = append(out, (uint64(i)%domain+salt)%domain)
		}
	}
	return out
}

// joinSize computes the exact |A ⋈ B| = Σ_d f_A(d)·f_B(d).
func joinSize(a, b []uint64) float64 {
	fa := map[uint64]float64{}
	for _, d := range a {
		fa[d]++
	}
	fb := map[uint64]float64{}
	for _, d := range b {
		fb[d]++
	}
	var s float64
	for d, c := range fa {
		s += c * fb[d]
	}
	return s
}

func ExampleNewProtocol() {
	proto, err := ldpjoin.NewProtocol(ldpjoin.DefaultConfig()) // k=18, m=1024, ε=4
	if err != nil {
		panic(err)
	}
	fmt.Println("report bits:", proto.ReportBits())
	fmt.Println("sketch bytes:", proto.SketchBytes())
	// Output:
	// report bits: 1
	// sketch bytes: 147456
}

func ExampleAggregator_Add() {
	proto, _ := ldpjoin.NewProtocol(ldpjoin.DefaultConfig())
	agg := proto.NewAggregator()
	cli := proto.NewClient(1)
	// Each simulated client perturbs its private value locally and sends
	// one ε-LDP report; the server only ever sees the reports.
	for i := 0; i < 1000; i++ {
		agg.Add(cli.Report(uint64(i % 10)))
	}
	fmt.Println("reports ingested:", agg.N())
	// Output: reports ingested: 1000
}

func ExampleSketch_JoinSize() {
	cfg := ldpjoin.Config{K: 9, M: 1024, Epsilon: 4, Seed: 7}
	proto, _ := ldpjoin.NewProtocol(cfg)

	valuesA := skewed(100000, 1000, 0)
	valuesB := skewed(100000, 1000, 3)
	skA := proto.BuildSketch(valuesA, 1) // sharded, all cores
	skB := proto.BuildSketch(valuesB, 2)

	est, err := skA.JoinSize(skB)
	if err != nil {
		panic(err)
	}
	truth := joinSize(valuesA, valuesB)
	fmt.Printf("estimate within 20%% of truth: %v\n", math.Abs(est-truth)/truth < 0.2)
	// Output: estimate within 20% of truth: true
}

func ExampleJoinSizePlus() {
	valuesA := skewed(100000, 2000, 0)
	valuesB := skewed(100000, 2000, 5)
	res, err := ldpjoin.JoinSizePlus(valuesA, valuesB, 2000, ldpjoin.PlusConfig{
		Config:     ldpjoin.Config{K: 9, M: 1024, Epsilon: 4, Seed: 3},
		SampleRate: 0.3,  // 30% of users answer phase 1
		Theta:      0.05, // frequency share separating frequent values
	})
	if err != nil {
		panic(err)
	}
	truth := joinSize(valuesA, valuesB)
	fmt.Printf("estimate within 30%% of truth: %v\n", math.Abs(res.Estimate-truth)/truth < 0.3)
	// Output: estimate within 30% of truth: true
}

func ExampleUnmarshalSketch() {
	proto, _ := ldpjoin.NewProtocol(ldpjoin.DefaultConfig())
	sk := proto.BuildSketch([]uint64{1, 2, 3, 4, 5, 6, 7, 8}, 1)
	raw, err := sk.MarshalBinary()
	if err != nil {
		panic(err)
	}
	restored, err := ldpjoin.UnmarshalSketch(raw)
	if err != nil {
		panic(err)
	}
	fmt.Println("restored reports:", restored.N())
	// Output: restored reports: 8
}

func ExampleNewChainProtocol() {
	// 3-way chain join T1(A) ⋈ T2(A,B) ⋈ T3(B): two join attributes.
	cp, err := ldpjoin.NewChainProtocol(ldpjoin.Config{K: 9, M: 256, Epsilon: 6, Seed: 41}, 2)
	if err != nil {
		panic(err)
	}
	t1 := skewed(30000, 300, 0)
	t3 := skewed(30000, 300, 7)
	midA := skewed(30000, 300, 2)
	midB := skewed(30000, 300, 4)

	left, _ := cp.BuildEnd(0, t1, 1)
	right, _ := cp.BuildEnd(1, t3, 2)
	mid, _ := cp.BuildMid(0, midA, midB, 3)
	est, err := cp.Estimate(left, []*ldpjoin.MatrixSketch{mid}, right)
	if err != nil {
		panic(err)
	}
	fmt.Println("attributes:", cp.Attributes())
	fmt.Println("middle-table rows:", mid.N())
	fmt.Println("estimate positive:", est > 0)
	// Output:
	// attributes: 2
	// middle-table rows: 30000
	// estimate positive: true
}
