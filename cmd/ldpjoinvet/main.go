// Command ldpjoinvet runs the ldpjoin invariant suite — five custom
// static analyzers enforcing the locking, durability-ordering,
// error-envelope, atomic-counter, and deterministic-iteration rules
// the codebase depends on (see internal/tools/analyzers).
//
// Usage:
//
//	go run ./cmd/ldpjoinvet ./...
//
// Findings print in the vet format (file:line:col: analyzer: message)
// and exit with status 1. A clean run prints a per-analyzer summary of
// findings and waivers, so CI logs show what was checked rather than
// silence. Individual lines are suppressed with an attributable waiver
// comment:
//
//	//ldpjoinvet:ignore <analyzer> <reason>
//
// A waiver without a reason, or naming an unknown analyzer, is itself
// a finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"ldpjoin/internal/tools/analyzers"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ldpjoinvet [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analyzers.Load(dir, patterns...)
	if err != nil {
		fatal(err)
	}
	res, err := analyzers.Run(pkgs, analyzers.All())
	if err != nil {
		fatal(err)
	}

	if len(res.Diagnostics) > 0 {
		for _, d := range res.Diagnostics {
			fmt.Printf("%s\n", d)
		}
		fmt.Fprintf(os.Stderr, "ldpjoinvet: %d finding(s) in %d package(s)\n", len(res.Diagnostics), res.Packages)
		os.Exit(1)
	}

	fmt.Printf("ldpjoinvet: %d package(s) clean\n", res.Packages)
	for _, a := range analyzers.All() {
		waived := ""
		if n := res.Waived[a.Name]; n > 0 {
			waived = fmt.Sprintf(" (%d waived)", n)
		}
		fmt.Printf("  %-14s %d finding(s)%s\n", a.Name, res.Findings[a.Name], waived)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ldpjoinvet:", err)
	os.Exit(2)
}
