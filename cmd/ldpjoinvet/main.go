// Command ldpjoinvet runs the ldpjoin invariant suite — nine custom
// static analyzers enforcing the locking, durability-ordering,
// error-envelope, atomic-counter, deterministic-iteration,
// pooled-ownership, hot-path-allocation, lock-order, and
// waiver-hygiene rules the codebase depends on (see
// internal/tools/analyzers).
//
// Usage:
//
//	go run ./cmd/ldpjoinvet [-json] [-escapes] ./...
//
// Test files are analyzed too: each package loads as its test variant,
// exactly as `go test` compiles it, so the contracts bind test code
// with waivers — not path exemptions — covering deliberate violations.
//
// Findings print in the vet format (file:line:col: analyzer: message),
// or as a JSON array of {file,line,col,analyzer,message} objects with
// -json — the shape CI turns into GitHub annotations. A clean run
// prints a per-analyzer summary of findings and waivers (suppressed
// under -json), so CI logs show what was checked rather than silence.
//
// -escapes additionally cross-checks hotalloc against the real
// compiler: it shells out to `go build -gcflags=-m` and reports heap
// allocations the escape analysis observes inside hot functions that
// the static rules did not flag. It is opt-in because it compiles the
// tree (cached after the first run).
//
// Exit codes:
//
//	0  no findings
//	1  findings (or the -escapes cross-check disagreed)
//	2  the load itself failed: bad pattern, unresolvable package, or
//	   code that does not type-check
//
// Individual lines are suppressed with an attributable waiver comment:
//
//	//ldpjoinvet:ignore <analyzer> <reason>
//
// A waiver without a reason, naming an unknown analyzer, or — per the
// waiverhygiene analyzer — no longer suppressing anything is itself a
// finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"ldpjoin/internal/tools/analyzers"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of vet-format lines")
	escapes := flag.Bool("escapes", false, "cross-check hotalloc against go build -gcflags=-m escape analysis")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ldpjoinvet [-json] [-escapes] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analyzers.LoadTests(dir, patterns...)
	if err != nil {
		fatal(err)
	}
	res, err := analyzers.Run(pkgs, analyzers.All())
	if err != nil {
		fatal(err)
	}
	diags := res.Diagnostics
	if *escapes {
		extra, err := analyzers.EscapeCrossCheck(dir, pkgs)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, extra...)
	}

	if *jsonOut {
		if err := analyzers.EncodeJSON(os.Stdout, diags); err != nil {
			fatal(err)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}

	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Printf("%s\n", d)
		}
		fmt.Fprintf(os.Stderr, "ldpjoinvet: %d finding(s) in %d package(s)\n", len(diags), res.Packages)
		os.Exit(1)
	}

	fmt.Printf("ldpjoinvet: %d package(s) clean\n", res.Packages)
	for _, a := range analyzers.All() {
		waived := ""
		if n := res.Waived[a.Name]; n > 0 {
			waived = fmt.Sprintf(" (%d waived)", n)
		}
		fmt.Printf("  %-14s %d finding(s)%s\n", a.Name, res.Findings[a.Name], waived)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ldpjoinvet:", err)
	os.Exit(2)
}
