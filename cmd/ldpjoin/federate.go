// The federate mode turns N independent ldpjoind collectors into one
// logical aggregation server: it pulls a SNAP snapshot of each named
// column from every collector, merges the unfinalized (exact integer)
// state per column, finalizes the merged aggregators locally, and
// answers join-size queries over the merged sketches. Because sketches
// are linear, the result is byte-identical to what a single collector
// ingesting every report would have produced — federation costs no
// accuracy and no privacy.
//
// Columns are kind-polymorphic, mirroring the service: a pulled
// snapshot may carry join (single-attribute), matrix (middle-table), or
// plus (two-phase composite, PSNP-framed) state, identified by its seed
// fingerprint against the shared attribute-family derivation. Plus
// snapshots must already be advanced, and every peer must have frozen
// the same frequent-item set — the phase boundary is part of the
// protocol, so collectors that disagree on it cannot merge exactly.
// With -path A,AB,BC,C the federator also answers a chain (multi-way)
// join over the merged sketches, validating that the named columns
// compose — join ends, matrix middles, adjacent attribute slots —
// exactly like the service's query planner.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"slices"
	"strings"
	"time"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
)

// fedColumn is one column's merged state across the collectors.
type fedColumn struct {
	kind      protocol.Kind
	attr      int
	join      *core.Aggregator
	matrix    *core.MatrixAggregator
	finJoin   *core.Sketch
	finMatrix *core.MatrixSketch
	// Plus state: the three phase aggregators plus the frozen phase
	// boundary (domain, theta, FI) every peer must agree on.
	plusSample, plusLow, plusHigh *core.Aggregator
	plusMeta                      *protocol.PlusSnapshot
	finPlus                       *core.PlusState
}

func (c *fedColumn) n() float64 {
	switch c.kind {
	case protocol.KindMatrix:
		if c.finMatrix != nil {
			return c.finMatrix.N()
		}
		return c.matrix.N()
	case protocol.KindPlus:
		if c.finPlus != nil {
			return c.finPlus.Population()
		}
		return c.plusSample.N() + c.plusLow.N() + c.plusHigh.N()
	}
	if c.finJoin != nil {
		return c.finJoin.N()
	}
	return c.join.N()
}

func runFederate(args []string) {
	fs := flag.NewFlagSet("federate", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: ldpjoin federate -peers URL[,URL...] -columns A,B [flags]

Pull column snapshots from ldpjoind collectors, merge them exactly, and
estimate the join size of the first two columns (or the -join pair).
With -path A,AB,BC,C the named chain is pulled, merged, validated (join
ends, matrix middles, adjacent attribute slots), and estimated as a
multi-way join. The protocol configuration (-k, -m, -eps, -seed,
-attrs) must match the collectors'.

`)
		fs.PrintDefaults()
	}
	peersFlag := fs.String("peers", "", "comma-separated base URLs of ldpjoind collectors (e.g. http://a:8080,http://b:8080)")
	columnsFlag := fs.String("columns", "", "comma-separated column names to pull and merge")
	joinFlag := fs.String("join", "", "left,right column pair to estimate (default: the first two columns)")
	pathFlag := fs.String("path", "", "chain A,AB,BC,C to estimate as a multi-way join (its columns are pulled automatically)")
	k := fs.Int("k", 18, "sketch depth (rows)")
	m := fs.Int("m", 1024, "sketch width (columns, power of two)")
	eps := fs.Float64("eps", 4, "privacy budget epsilon")
	seed := fs.Int64("seed", 1, "public hash seed (shared with clients and collectors)")
	attrs := fs.Int("attrs", 4, "join-attribute hash families derived from the seed (must cover every pulled column's slot)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	_ = fs.Parse(args)

	peers := splitNonEmpty(*peersFlag)
	columns := splitNonEmpty(*columnsFlag)
	path := splitNonEmpty(*pathFlag)
	// The chain's columns are pulled alongside the explicit ones.
	seen := make(map[string]bool, len(columns)+len(path))
	for _, c := range columns {
		seen[c] = true
	}
	for _, c := range path {
		if !seen[c] {
			columns = append(columns, c)
			seen[c] = true
		}
	}
	if len(peers) == 0 || len(columns) == 0 {
		fs.Usage()
		fatal(fmt.Errorf("federate needs -peers and -columns (or -path)"))
	}
	if len(path) > 0 && len(path) < 3 {
		fatal(fmt.Errorf("-path needs at least 3 columns (join end, matrix middle(s), join end), got %d", len(path)))
	}
	left, right := "", ""
	if *joinFlag != "" {
		pair := splitNonEmpty(*joinFlag)
		if len(pair) != 2 {
			fatal(fmt.Errorf("-join wants exactly left,right, got %q", *joinFlag))
		}
		left, right = pair[0], pair[1]
	} else if len(path) == 0 && len(columns) > 1 {
		left, right = columns[0], columns[1]
	}

	params := core.Params{K: *k, M: *m, Epsilon: *eps}
	if err := params.Validate(); err != nil {
		fatal(err)
	}
	if *attrs < 2 {
		fatal(fmt.Errorf("-attrs must be at least 2, got %d", *attrs))
	}
	mp := core.MatrixParams{K: *k, M1: *m, M2: *m, Epsilon: *eps}
	fams := make([]*hashing.Family, *attrs)
	for i := range fams {
		fams[i] = hashing.NewFamily(hashing.AttributeSeed(*seed, i), *k, *m)
	}
	client := &http.Client{Timeout: *timeout}

	merged := make(map[string]*fedColumn, len(columns))
	for _, col := range columns {
		var fed *fedColumn
		for _, peer := range peers {
			snap, plusSnap, err := fetchSnapshot(client, peer, col,
				int64(protocol.SnapshotEncodedSize(params)), int64(protocol.SnapshotEncodedSizeMatrix(mp)),
				int64(protocol.PlusSnapshotMaxEncodedSize(params)))
			if err != nil {
				fatal(fmt.Errorf("pulling %q from %s: %w", col, peer, err))
			}
			if plusSnap != nil {
				if err := mergePlusPeer(&fed, plusSnap, params, *seed); err != nil {
					fatal(fmt.Errorf("merging %q from %s: %w", col, peer, err))
				}
				fmt.Printf("pulled %-12s from %-28s %10.0f reports (%v, attr %d, merged total %.0f)\n",
					col, peer, plusSnap.N(), protocol.KindPlus, 0, fed.n())
				continue
			}
			kind, attr, err := snap.Slot(params, mp, fams)
			if err != nil {
				fatal(fmt.Errorf("pulling %q from %s: %w", col, peer, err))
			}
			if fed == nil {
				fed = &fedColumn{kind: kind, attr: attr}
			} else if fed.kind != kind || fed.attr != attr {
				fatal(fmt.Errorf("column %q: %s reports %v state of attribute %d, earlier peers %v of attribute %d",
					col, peer, kind, attr, fed.kind, fed.attr))
			}
			if kind == protocol.KindMatrix {
				agg, err := snap.MatrixAggregator()
				if err != nil {
					fatal(fmt.Errorf("restoring %q from %s: %w", col, peer, err))
				}
				if fed.matrix == nil {
					fed.matrix = agg
				} else {
					fed.matrix.Merge(agg)
				}
			} else {
				agg, err := snap.Aggregator()
				if err != nil {
					fatal(fmt.Errorf("restoring %q from %s: %w", col, peer, err))
				}
				if fed.join == nil {
					fed.join = agg
				} else {
					fed.join.Merge(agg)
				}
			}
			fmt.Printf("pulled %-12s from %-28s %10.0f reports (%v, attr %d, merged total %.0f)\n",
				col, peer, snap.N, kind, attr, fed.n())
		}
		switch fed.kind {
		case protocol.KindMatrix:
			fed.finMatrix = fed.matrix.Finalize()
		case protocol.KindPlus:
			fed.finPlus = &core.PlusState{
				Sample: fed.plusSample.Finalize(),
				Low:    fed.plusLow.Finalize(),
				High:   fed.plusHigh.Finalize(),
				Domain: fed.plusMeta.Domain,
				Theta:  fed.plusMeta.Theta,
				FI:     fed.plusMeta.FI,
			}
		default:
			fed.finJoin = fed.join.Finalize()
		}
		merged[col] = fed
	}

	fmt.Println()
	for _, col := range columns {
		fed := merged[col]
		fmt.Printf("column %-12s merged %v sketch (attr %d) over %.0f reports\n", col, fed.kind, fed.attr, fed.n())
	}

	if right != "" {
		skL, skR := merged[left], merged[right]
		if skL == nil || skR == nil {
			fatal(fmt.Errorf("-join pair %s,%s must be among the pulled columns", left, right))
		}
		switch {
		case skL.kind == protocol.KindPlus && skR.kind == protocol.KindPlus:
			est, err := core.EstimateJoinPlusColumns(skL.finPlus, skR.finPlus)
			if err != nil {
				fatal(fmt.Errorf("plus join %s,%s: %w", left, right, err))
			}
			fmt.Printf("\nestimated |%s ⋈ %s| over the federation: %.6g (low %.6g, high %.6g)\n",
				left, right, est.Estimate, est.LowEstimate, est.HighEstimate)
		case skL.kind == protocol.KindJoin && skR.kind == protocol.KindJoin:
			fmt.Printf("\nestimated |%s ⋈ %s| over the federation: %.6g\n", left, right, skL.finJoin.JoinSize(skR.finJoin))
		default:
			fatal(fmt.Errorf("pairwise join needs two join columns or two plus columns (%s is %v, %s is %v); use -path for chains",
				left, skL.kind, right, skR.kind))
		}
	}

	if len(path) > 0 {
		est, err := chainEstimate(path, merged)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nestimated |%s| over the federation: %.6g\n", strings.Join(path, " ⋈ "), est)
	}

	if right == "" && len(path) == 0 {
		fmt.Println("single column pulled; pass two columns (or -join / -path) for a join estimate")
	}
}

// chainEstimate validates the chain's composition with the same shared
// rules the service's GET /v1/join?path= planner uses
// (protocol.ValidateChain), then composes the §VI estimator over the
// merged, finalized sketches.
func chainEstimate(path []string, merged map[string]*fedColumn) (float64, error) {
	cols := make([]*fedColumn, len(path))
	chain := make([]protocol.ChainColumn, len(path))
	for i, name := range path {
		col := merged[name]
		if col == nil {
			return 0, fmt.Errorf("chain column %q was not pulled", name)
		}
		cols[i] = col
		chain[i] = protocol.ChainColumn{Name: name, Kind: col.kind, Attr: col.attr}
	}
	if err := protocol.ValidateChain(chain); err != nil {
		return 0, err
	}
	last := len(cols) - 1
	mids := make([]*core.MatrixSketch, 0, len(cols)-2)
	for _, col := range cols[1:last] {
		mids = append(mids, col.finMatrix)
	}
	return core.ChainEstimate(cols[0].finJoin, mids, cols[last].finJoin), nil
}

// mergePlusPeer folds one peer's composite plus snapshot into the
// column's merged state. The first peer fixes the phase boundary; every
// later peer must have frozen the same domain, theta, and frequent-item
// set, or the merge would compose sketches built under different
// perturbation targets.
func mergePlusPeer(fed **fedColumn, snap *protocol.PlusSnapshot, params core.Params, seed int64) error {
	if err := snap.CompatibleWithPlus(params, seed); err != nil {
		return err
	}
	if snap.Finalized {
		return fmt.Errorf("column is finalized; federation merges unfinalized snapshots — pull before finalizing the collectors")
	}
	if !snap.Advanced {
		return fmt.Errorf("plus column has not advanced; advance every collector over the same frequent-item set before federating")
	}
	sample, err := snap.Sample.Aggregator()
	if err != nil {
		return err
	}
	low, err := snap.Low.Aggregator()
	if err != nil {
		return err
	}
	high, err := snap.High.Aggregator()
	if err != nil {
		return err
	}
	if *fed == nil {
		*fed = &fedColumn{
			kind: protocol.KindPlus, attr: 0,
			plusSample: sample, plusLow: low, plusHigh: high, plusMeta: snap,
		}
		return nil
	}
	c := *fed
	if c.kind != protocol.KindPlus {
		return fmt.Errorf("peer reports plus state, earlier peers %v", c.kind)
	}
	if c.plusMeta.Domain != snap.Domain || c.plusMeta.Theta != snap.Theta || !slices.Equal(c.plusMeta.FI, snap.FI) {
		return fmt.Errorf("peers froze different phase boundaries (domain %d vs %d, theta %v vs %v, |FI| %d vs %d)",
			c.plusMeta.Domain, snap.Domain, c.plusMeta.Theta, snap.Theta, len(c.plusMeta.FI), len(snap.FI))
	}
	c.plusSample.Merge(sample)
	c.plusLow.Merge(low)
	c.plusHigh.Merge(high)
	return nil
}

// errBodyLimit caps how much of a non-200 response body is read into an
// error message.
const errBodyLimit = 4 << 10

// fetchSnapshot fetches one column's snapshot bytes from one collector
// and decodes them, verifying integrity. The response is read in two
// stages — header first, then a body bounded by the size the header's
// declared kind justifies (join snapshots are ~1000× smaller than
// matrix ones at equal parameters), the same discipline the service's
// merge handler applies — so a misbehaving peer cannot make the
// federator buffer a matrix-sized blob for a join column. A PSNP-framed
// body decodes as a composite plus snapshot and comes back in the
// second return value instead. Finalized join/matrix snapshots are
// refused: merging them cannot be exact, and a federated collector
// should stay unfinalized until the federator has pulled everything.
func fetchSnapshot(client *http.Client, peer, column string, joinLimit, matrixLimit, plusLimit int64) (*protocol.Snapshot, *protocol.PlusSnapshot, error) {
	u := strings.TrimSuffix(peer, "/") + "/v1/columns/" + url.PathEscape(column) + "/snapshot"
	resp, err := client.Get(u)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Check the status before sizing any read: the snapshot-size cap
		// below is meaningless for an error body, and applying it first
		// used to truncate error messages longer than one snapshot.
		return nil, nil, fmt.Errorf("%s: %s", u, apiError(resp))
	}
	header := make([]byte, protocol.SnapshotHeaderSize)
	if _, err := io.ReadFull(resp.Body, header); err != nil {
		return nil, nil, fmt.Errorf("%s: reading snapshot header: %w", u, err)
	}
	isPlus := protocol.IsPlusSnapshot(header)
	limit := joinLimit
	if isPlus {
		limit = plusLimit
	} else {
		kind, err := protocol.PeekSnapshotKind(header)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", u, err)
		}
		if kind == protocol.SnapshotMatrix {
			limit = matrixLimit
		}
	}
	rest, err := io.ReadAll(io.LimitReader(resp.Body, limit-int64(len(header))+1))
	if err != nil {
		return nil, nil, err
	}
	data := append(header, rest...)
	if int64(len(data)) > limit {
		return nil, nil, fmt.Errorf("%s: snapshot exceeds %d bytes for its kind under this configuration", u, limit)
	}
	if isPlus {
		plusSnap, err := protocol.DecodePlusSnapshot(data)
		if err != nil {
			return nil, nil, err
		}
		return nil, plusSnap, nil
	}
	snap, err := protocol.DecodeSnapshot(data)
	if err != nil {
		return nil, nil, err
	}
	if snap.Finalized {
		return nil, nil, fmt.Errorf("%s: column is finalized; federation merges unfinalized snapshots — pull before finalizing the collectors", u)
	}
	return snap, nil, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
