// The federate mode turns N independent ldpjoind collectors into one
// logical aggregation server: it pulls a SNAP snapshot of each named
// column from every collector, merges the unfinalized (exact integer)
// state per column, finalizes the merged aggregators locally, and
// answers a join-size query over the merged sketches. Because sketches
// are linear, the result is byte-identical to what a single collector
// ingesting every report would have produced — federation costs no
// accuracy and no privacy.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
)

func runFederate(args []string) {
	fs := flag.NewFlagSet("federate", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: ldpjoin federate -peers URL[,URL...] -columns A,B [flags]

Pull column snapshots from ldpjoind collectors, merge them exactly, and
estimate the join size of the first two columns (or the -join pair).
The protocol configuration (-k, -m, -eps, -seed) must match the
collectors'.

`)
		fs.PrintDefaults()
	}
	peersFlag := fs.String("peers", "", "comma-separated base URLs of ldpjoind collectors (e.g. http://a:8080,http://b:8080)")
	columnsFlag := fs.String("columns", "", "comma-separated column names to pull and merge")
	joinFlag := fs.String("join", "", "left,right column pair to estimate (default: the first two columns)")
	k := fs.Int("k", 18, "sketch depth (rows)")
	m := fs.Int("m", 1024, "sketch width (columns, power of two)")
	eps := fs.Float64("eps", 4, "privacy budget epsilon")
	seed := fs.Int64("seed", 1, "public hash seed (shared with clients and collectors)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	_ = fs.Parse(args)

	peers := splitNonEmpty(*peersFlag)
	columns := splitNonEmpty(*columnsFlag)
	if len(peers) == 0 || len(columns) == 0 {
		fs.Usage()
		fatal(fmt.Errorf("federate needs -peers and -columns"))
	}
	left, right := columns[0], ""
	if len(columns) > 1 {
		right = columns[1]
	}
	if *joinFlag != "" {
		pair := splitNonEmpty(*joinFlag)
		if len(pair) != 2 {
			fatal(fmt.Errorf("-join wants exactly left,right, got %q", *joinFlag))
		}
		left, right = pair[0], pair[1]
	}

	params := core.Params{K: *k, M: *m, Epsilon: *eps}
	if err := params.Validate(); err != nil {
		fatal(err)
	}
	fam := params.NewFamily(*seed)
	client := &http.Client{Timeout: *timeout}

	sketches := make(map[string]*core.Sketch, len(columns))
	for _, col := range columns {
		var merged *core.Aggregator
		for _, peer := range peers {
			agg, err := pullSnapshot(client, peer, col, params, fam)
			if err != nil {
				fatal(fmt.Errorf("pulling %q from %s: %w", col, peer, err))
			}
			if merged == nil {
				merged = agg
			} else {
				merged.Merge(agg)
			}
			fmt.Printf("pulled %-12s from %-28s %10.0f reports (merged total %.0f)\n",
				col, peer, agg.N(), merged.N())
		}
		sketches[col] = merged.Finalize()
	}

	fmt.Println()
	for _, col := range columns {
		fmt.Printf("column %-12s merged sketch over %.0f reports\n", col, sketches[col].N())
	}
	if right == "" {
		fmt.Println("single column pulled; pass two columns (or -join) for a join estimate")
		return
	}
	skL, okL := sketches[left]
	skR, okR := sketches[right]
	if !okL || !okR {
		fatal(fmt.Errorf("-join pair %s,%s must be among -columns", left, right))
	}
	fmt.Printf("\nestimated |%s ⋈ %s| over the federation: %.6g\n", left, right, skL.JoinSize(skR))
}

// errBodyLimit caps how much of a non-200 response body is read into an
// error message.
const errBodyLimit = 4 << 10

// pullSnapshot fetches one column's snapshot from one collector and
// restores it as a mergeable aggregator bound to the shared hash
// family, verifying integrity and the configuration fingerprint.
// Finalized snapshots are refused: merging them cannot be exact, and a
// federated collector should stay unfinalized until the federator has
// pulled everything.
func pullSnapshot(client *http.Client, peer, column string, params core.Params, fam *hashing.Family) (*core.Aggregator, error) {
	u := strings.TrimSuffix(peer, "/") + "/v1/columns/" + url.PathEscape(column) + "/snapshot"
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Check the status before sizing any read: the snapshot-size cap
		// below is meaningless for an error body, and applying it first
		// used to truncate error messages longer than one snapshot.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, errBodyLimit))
		return nil, fmt.Errorf("%s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	limit := int64(protocol.SnapshotEncodedSize(params))
	data, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("%s: snapshot exceeds %d bytes for this configuration", u, limit)
	}
	snap, err := protocol.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	if err := snap.CompatibleWithJoin(params, fam.Seed()); err != nil {
		return nil, err
	}
	if snap.Finalized {
		return nil, fmt.Errorf("%s: column is finalized; federation merges unfinalized snapshots — pull before finalizing the collectors", u)
	}
	return core.RestoreAggregator(params, fam, snap.Cells, snap.N)
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
