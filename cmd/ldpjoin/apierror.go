package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// apiError renders a non-200 response for a human. ldpjoind speaks a
// structured envelope — {"error": {"code", "message", "column"}} — so
// when the body parses as one, the stable code and the message are
// formatted directly; anything else (a proxy error page, a pre-envelope
// server) passes through raw. Reads at most errBodyLimit bytes and
// leaves the body open for the caller to close.
func apiError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, errBodyLimit))
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Column  string `json:"column"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		if env.Error.Column != "" {
			return fmt.Sprintf("%s [%s, column %q]: %s", resp.Status, env.Error.Code, env.Error.Column, env.Error.Message)
		}
		return fmt.Sprintf("%s [%s]: %s", resp.Status, env.Error.Code, env.Error.Message)
	}
	return fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}
