package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/service"
)

// TestLoadtestEndToEnd runs the loadtest mode against an in-process
// ldpjoind: it must seed and finalize the column family, drive the
// query mix without errors, and leave cache traffic behind in
// /v1/stats. A second run must detect the finalized columns and skip
// seeding (finalized state is immutable, so reruns measure steady
// state).
func TestLoadtestEndToEnd(t *testing.T) {
	p := core.Params{K: 5, M: 128, Epsilon: 4}
	srv, err := service.New(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	args := []string{
		"-server", ts.URL, "-concurrency", "4", "-duration", "250ms",
		"-reports", "400", "-values", "32",
		"-k", "5", "-m", "128", "-eps", "4", "-seed", "7",
	}
	runLoadtest(args)

	// Every seeded column is finalized.
	for _, name := range []string{"lt_a", "lt_b", "lt_ab", "lt_c"} {
		resp, err := http.Get(ts.URL + "/v1/columns/" + name)
		if err != nil {
			t.Fatal(err)
		}
		var status map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || status["state"] != "finalized" {
			t.Fatalf("column %s after loadtest: %d %v", name, resp.StatusCode, status)
		}
	}

	// The mix actually queried: the cache saw hits and misses.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	qc := stats["queryCache"].(map[string]any)
	if qc["hits"].(float64) == 0 || qc["misses"].(float64) == 0 {
		t.Fatalf("loadtest produced no cache traffic: %v", qc)
	}

	// Rerun: seeding is skipped (no 409s from double finalize), the mix
	// still runs clean.
	runLoadtest(args)
}
