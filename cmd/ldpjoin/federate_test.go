package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
	"ldpjoin/internal/service"
)

// startCollector spins up an in-process ldpjoind and feeds it one
// column of client-perturbed reports.
func startCollector(t *testing.T, p core.Params, seed int64, column string, clientSeed int64, data []uint64) *httptest.Server {
	t.Helper()
	srv, err := service.New(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	fam := p.NewFamily(seed)
	var buf bytes.Buffer
	w, err := protocol.NewReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(clientSeed))
	for _, d := range data {
		if err := w.Write(core.Perturb(d, p, fam, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/columns/"+column+"/reports", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingesting %s: %d", column, resp.StatusCode)
	}
	return ts
}

// pullJoinAggregator is the test-side composition of the federate pull
// path: fetch, slot-resolve against the derived families, restore.
func pullJoinAggregator(t *testing.T, client *http.Client, peer, column string, p core.Params, seed int64, attrs int) (*core.Aggregator, error) {
	t.Helper()
	mp := core.MatrixParams{K: p.K, M1: p.M, M2: p.M, Epsilon: p.Epsilon}
	fams := make([]*hashing.Family, attrs)
	for i := range fams {
		fams[i] = hashing.NewFamily(hashing.AttributeSeed(seed, i), p.K, p.M)
	}
	snap, err := fetchSnapshot(client, peer, column,
		int64(protocol.SnapshotEncodedSize(p)), int64(protocol.SnapshotEncodedSizeMatrix(mp)))
	if err != nil {
		return nil, err
	}
	kind, _, err := snap.Slot(p, mp, fams)
	if err != nil {
		return nil, err
	}
	if kind != protocol.KindJoin {
		return nil, fmt.Errorf("expected a join snapshot, got %v", kind)
	}
	return snap.Aggregator()
}

// TestPullSnapshotMergesExactly drives the federate pull path against
// two live collectors and checks the merged, finalized sketch equals a
// direct fold of the union stream.
func TestPullSnapshotMergesExactly(t *testing.T) {
	p := core.Params{K: 6, M: 256, Epsilon: 4}
	const seed = int64(21)
	fam := p.NewFamily(seed)

	dataA := make([]uint64, 2000)
	dataB := make([]uint64, 1500)
	for i := range dataA {
		dataA[i] = uint64(i % 30)
	}
	for i := range dataB {
		dataB[i] = uint64(i % 20)
	}
	tsA := startCollector(t, p, seed, "users", 501, dataA)
	tsB := startCollector(t, p, seed, "users", 502, dataB)

	client := &http.Client{}
	aggA, err := pullJoinAggregator(t, client, tsA.URL, "users", p, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	aggB, err := pullJoinAggregator(t, client, tsB.URL, "users", p, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	aggA.Merge(aggB)
	if aggA.N() != float64(len(dataA)+len(dataB)) {
		t.Fatalf("merged N = %v, want %d", aggA.N(), len(dataA)+len(dataB))
	}
	merged, err := aggA.Finalize().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one aggregator folding both client streams directly.
	ref := core.NewAggregator(p, fam)
	rngA := rand.New(rand.NewSource(501))
	for _, d := range dataA {
		ref.Add(core.Perturb(d, p, fam, rngA))
	}
	rngB := rand.New(rand.NewSource(502))
	for _, d := range dataB {
		ref.Add(core.Perturb(d, p, fam, rngB))
	}
	want, err := ref.Finalize().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, want) {
		t.Fatal("federated pull+merge differs from direct union fold")
	}

	// A collector with a different seed matches no attribute slot and is
	// refused, not silently merged. (seed+1 is far from any
	// AttributeSeed derivation of the federator's seed.)
	tsC := startCollector(t, p, seed+10_000, "users", 503, dataA[:100])
	if _, err := pullJoinAggregator(t, client, tsC.URL, "users", p, seed, 4); err == nil {
		t.Fatal("cross-seed collector snapshot accepted")
	}

	// Unknown columns surface the collector's error.
	if _, err := pullJoinAggregator(t, client, tsA.URL, "nope", p, seed, 4); err == nil {
		t.Fatal("missing column did not error")
	}
}

// TestPullSnapshotErrorBodyNotTruncated pins the status-first read
// order: an error body longer than one snapshot encoding must reach the
// returned error whole, not cut at the snapshot-size cap, and a body
// beyond the error cap must not be buffered without bound.
func TestPullSnapshotErrorBodyNotTruncated(t *testing.T) {
	p := core.Params{K: 2, M: 8, Epsilon: 4}
	snapSize := protocol.SnapshotEncodedSize(p)
	long := bytes.Repeat([]byte{'x'}, snapSize+50)
	long = append(long, []byte("END-OF-ERROR")...)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write(long)
	}))
	t.Cleanup(ts.Close)

	_, err := fetchSnapshot(&http.Client{}, ts.URL, "users", int64(snapSize), int64(snapSize))
	if err == nil {
		t.Fatal("non-200 response did not error")
	}
	if !strings.Contains(err.Error(), "END-OF-ERROR") {
		t.Fatalf("error body truncated at the snapshot-size cap: %v", err)
	}
	if !strings.Contains(err.Error(), "500") {
		t.Fatalf("error lost the status: %v", err)
	}

	huge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		w.Write(bytes.Repeat([]byte{'y'}, errBodyLimit+1000))
	}))
	t.Cleanup(huge.Close)
	_, err = fetchSnapshot(&http.Client{}, huge.URL, "users", int64(snapSize), int64(snapSize))
	if err == nil {
		t.Fatal("non-200 response did not error")
	}
	if len(err.Error()) > errBodyLimit+200 {
		t.Fatalf("error body not capped: %d bytes", len(err.Error()))
	}
}

func TestSplitNonEmpty(t *testing.T) {
	got := splitNonEmpty(" a, ,b,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if out := splitNonEmpty(""); out != nil {
		t.Fatalf("empty input: got %v", out)
	}
}
