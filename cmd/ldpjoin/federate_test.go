package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
	"ldpjoin/internal/service"
)

// startCollector spins up an in-process ldpjoind and feeds it one
// column of client-perturbed reports.
func startCollector(t *testing.T, p core.Params, seed int64, column string, clientSeed int64, data []uint64) *httptest.Server {
	t.Helper()
	srv, err := service.New(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	fam := p.NewFamily(seed)
	var buf bytes.Buffer
	w, err := protocol.NewReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(clientSeed))
	for _, d := range data {
		if err := w.Write(core.Perturb(d, p, fam, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/columns/"+column+"/reports", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingesting %s: %d", column, resp.StatusCode)
	}
	return ts
}

// pullJoinAggregator is the test-side composition of the federate pull
// path: fetch, slot-resolve against the derived families, restore.
func pullJoinAggregator(t *testing.T, client *http.Client, peer, column string, p core.Params, seed int64, attrs int) (*core.Aggregator, error) {
	t.Helper()
	mp := core.MatrixParams{K: p.K, M1: p.M, M2: p.M, Epsilon: p.Epsilon}
	fams := make([]*hashing.Family, attrs)
	for i := range fams {
		fams[i] = hashing.NewFamily(hashing.AttributeSeed(seed, i), p.K, p.M)
	}
	snap, plusSnap, err := fetchSnapshot(client, peer, column,
		int64(protocol.SnapshotEncodedSize(p)), int64(protocol.SnapshotEncodedSizeMatrix(mp)),
		int64(protocol.PlusSnapshotMaxEncodedSize(p)))
	if err != nil {
		return nil, err
	}
	if plusSnap != nil {
		return nil, fmt.Errorf("expected a join snapshot, got a plus composite")
	}
	kind, _, err := snap.Slot(p, mp, fams)
	if err != nil {
		return nil, err
	}
	if kind != protocol.KindJoin {
		return nil, fmt.Errorf("expected a join snapshot, got %v", kind)
	}
	return snap.Aggregator()
}

// TestPullSnapshotMergesExactly drives the federate pull path against
// two live collectors and checks the merged, finalized sketch equals a
// direct fold of the union stream.
func TestPullSnapshotMergesExactly(t *testing.T) {
	p := core.Params{K: 6, M: 256, Epsilon: 4}
	const seed = int64(21)
	fam := p.NewFamily(seed)

	dataA := make([]uint64, 2000)
	dataB := make([]uint64, 1500)
	for i := range dataA {
		dataA[i] = uint64(i % 30)
	}
	for i := range dataB {
		dataB[i] = uint64(i % 20)
	}
	tsA := startCollector(t, p, seed, "users", 501, dataA)
	tsB := startCollector(t, p, seed, "users", 502, dataB)

	client := &http.Client{}
	aggA, err := pullJoinAggregator(t, client, tsA.URL, "users", p, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	aggB, err := pullJoinAggregator(t, client, tsB.URL, "users", p, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	aggA.Merge(aggB)
	if aggA.N() != float64(len(dataA)+len(dataB)) {
		t.Fatalf("merged N = %v, want %d", aggA.N(), len(dataA)+len(dataB))
	}
	merged, err := aggA.Finalize().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one aggregator folding both client streams directly.
	ref := core.NewAggregator(p, fam)
	rngA := rand.New(rand.NewSource(501))
	for _, d := range dataA {
		ref.Add(core.Perturb(d, p, fam, rngA))
	}
	rngB := rand.New(rand.NewSource(502))
	for _, d := range dataB {
		ref.Add(core.Perturb(d, p, fam, rngB))
	}
	want, err := ref.Finalize().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, want) {
		t.Fatal("federated pull+merge differs from direct union fold")
	}

	// A collector with a different seed matches no attribute slot and is
	// refused, not silently merged. (seed+1 is far from any
	// AttributeSeed derivation of the federator's seed.)
	tsC := startCollector(t, p, seed+10_000, "users", 503, dataA[:100])
	if _, err := pullJoinAggregator(t, client, tsC.URL, "users", p, seed, 4); err == nil {
		t.Fatal("cross-seed collector snapshot accepted")
	}

	// Unknown columns surface the collector's error.
	if _, err := pullJoinAggregator(t, client, tsA.URL, "nope", p, seed, 4); err == nil {
		t.Fatal("missing column did not error")
	}
}

// startPlusCollector spins up an in-process ldpjoind with one plus
// column driven through both phases: sample ingest, explicit advance
// over fi, then low/high group ingest. Pass a nil fi to leave the
// column in phase 1.
func startPlusCollector(t *testing.T, p core.Params, seed int64, column string, domain uint64, theta float64, fi []uint64, sample, low, high []core.Report) *httptest.Server {
	t.Helper()
	srv, err := service.New(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	send := func(path, contentType string, body []byte) {
		resp, err := http.Post(ts.URL+path, contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d", path, resp.StatusCode)
		}
	}
	stream := func(group protocol.PlusGroup, reports []core.Report) []byte {
		var buf bytes.Buffer
		w, err := protocol.NewPlusReportWriter(&buf, p, group)
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range reports {
			if err := w.Write(rep); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	send("/v1/columns/"+column+"/reports", "application/octet-stream", stream(protocol.PlusSample, sample))
	if fi == nil {
		return ts
	}
	adv := fmt.Sprintf(`{"domain":%d,"theta":%v,"fi":[`, domain, theta)
	for i, d := range fi {
		if i > 0 {
			adv += ","
		}
		adv += fmt.Sprintf("%d", d)
	}
	adv += "]}"
	send("/v1/columns/"+column+"/advance", "application/json", []byte(adv))
	send("/v1/columns/"+column+"/reports", "application/octet-stream", stream(protocol.PlusLow, low))
	send("/v1/columns/"+column+"/reports", "application/octet-stream", stream(protocol.PlusHigh, high))
	return ts
}

// TestPullPlusSnapshotMergesExactly drives the federate pull path over
// PSNP composites from two live plus collectors: the merged, finalized
// three-sketch state must equal a direct fold of the union streams, a
// phase-1 peer must be refused, and a peer that froze a different
// frequent-item set must be refused.
func TestPullPlusSnapshotMergesExactly(t *testing.T) {
	p := core.Params{K: 6, M: 256, Epsilon: 4}
	const seed = int64(21)
	const domain = uint64(50)
	const theta = 0.1
	fi := []uint64{1, 2}
	set := core.NewFISet(fi)
	famS := p.NewFamily(core.PlusSampleSeed(seed))
	famG := p.NewFamily(core.PlusGroupSeed(seed))

	perturb := func(rngSeed int64, n int, f func(*rand.Rand, uint64) core.Report) []core.Report {
		rng := rand.New(rand.NewSource(rngSeed))
		out := make([]core.Report, n)
		for i := range out {
			out[i] = f(rng, uint64(i%int(domain)))
		}
		return out
	}
	plain := func(rng *rand.Rand, d uint64) core.Report { return core.Perturb(d, p, famS, rng) }
	lowF := func(rng *rand.Rand, d uint64) core.Report { return core.FAPPerturb(d, core.ModeLow, set, p, famG, rng) }
	highF := func(rng *rand.Rand, d uint64) core.Report {
		return core.FAPPerturb(d, core.ModeHigh, set, p, famG, rng)
	}

	s1, l1, h1 := perturb(601, 300, plain), perturb(602, 400, lowF), perturb(603, 350, highF)
	s2, l2, h2 := perturb(604, 250, plain), perturb(605, 380, lowF), perturb(606, 300, highF)
	ts1 := startPlusCollector(t, p, seed, "users", domain, theta, fi, s1, l1, h1)
	ts2 := startPlusCollector(t, p, seed, "users", domain, theta, fi, s2, l2, h2)

	client := &http.Client{}
	limits := []int64{
		int64(protocol.SnapshotEncodedSize(p)),
		int64(protocol.SnapshotEncodedSizeMatrix(core.MatrixParams{K: p.K, M1: p.M, M2: p.M, Epsilon: p.Epsilon})),
		int64(protocol.PlusSnapshotMaxEncodedSize(p)),
	}
	var fed *fedColumn
	for _, ts := range []*httptest.Server{ts1, ts2} {
		snap, plusSnap, err := fetchSnapshot(client, ts.URL, "users", limits[0], limits[1], limits[2])
		if err != nil {
			t.Fatal(err)
		}
		if snap != nil || plusSnap == nil {
			t.Fatal("expected a PSNP composite from a plus column")
		}
		if err := mergePlusPeer(&fed, plusSnap, p, seed); err != nil {
			t.Fatal(err)
		}
	}
	if fed.kind != protocol.KindPlus || fed.n() != float64(len(s1)+len(l1)+len(h1)+len(s2)+len(l2)+len(h2)) {
		t.Fatalf("merged plus column: kind %v, n %v", fed.kind, fed.n())
	}

	// Reference: fold the union streams directly.
	fold := func(fam *hashing.Family, groups ...[]core.Report) *core.Sketch {
		agg := core.NewAggregator(p, fam)
		for _, g := range groups {
			for _, rep := range g {
				agg.Add(rep)
			}
		}
		return agg.Finalize()
	}
	for _, cmp := range []struct {
		name string
		got  *core.Sketch
		want *core.Sketch
	}{
		{"sample", fed.plusSample.Finalize(), fold(famS, s1, s2)},
		{"low", fed.plusLow.Finalize(), fold(famG, l1, l2)},
		{"high", fed.plusHigh.Finalize(), fold(famG, h1, h2)},
	} {
		got, err := cmp.got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		want, err := cmp.want.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("federated %s sketch differs from direct union fold", cmp.name)
		}
	}

	// A phase-1 peer cannot federate: the phase boundary is protocol.
	tsEarly := startPlusCollector(t, p, seed, "users", domain, theta, nil, s1[:50], nil, nil)
	_, earlySnap, err := fetchSnapshot(client, tsEarly.URL, "users", limits[0], limits[1], limits[2])
	if err != nil {
		t.Fatal(err)
	}
	var fresh *fedColumn
	if err := mergePlusPeer(&fresh, earlySnap, p, seed); err == nil || !strings.Contains(err.Error(), "advance") {
		t.Fatalf("phase-1 peer accepted: %v", err)
	}

	// A peer that froze a different frequent-item set cannot merge.
	tsOther := startPlusCollector(t, p, seed, "users", domain, theta, []uint64{3, 4}, s2[:50], l2[:50], h2[:50])
	_, otherSnap, err := fetchSnapshot(client, tsOther.URL, "users", limits[0], limits[1], limits[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := mergePlusPeer(&fed, otherSnap, p, seed); err == nil || !strings.Contains(err.Error(), "phase boundaries") {
		t.Fatalf("mismatched frequent-item set accepted: %v", err)
	}
}

// TestPullSnapshotErrorBodyNotTruncated pins the status-first read
// order: an error body longer than one snapshot encoding must reach the
// returned error whole, not cut at the snapshot-size cap, and a body
// beyond the error cap must not be buffered without bound.
func TestPullSnapshotErrorBodyNotTruncated(t *testing.T) {
	p := core.Params{K: 2, M: 8, Epsilon: 4}
	snapSize := protocol.SnapshotEncodedSize(p)
	long := bytes.Repeat([]byte{'x'}, snapSize+50)
	long = append(long, []byte("END-OF-ERROR")...)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write(long)
	}))
	t.Cleanup(ts.Close)

	_, _, err := fetchSnapshot(&http.Client{}, ts.URL, "users", int64(snapSize), int64(snapSize), int64(snapSize))
	if err == nil {
		t.Fatal("non-200 response did not error")
	}
	if !strings.Contains(err.Error(), "END-OF-ERROR") {
		t.Fatalf("error body truncated at the snapshot-size cap: %v", err)
	}
	if !strings.Contains(err.Error(), "500") {
		t.Fatalf("error lost the status: %v", err)
	}

	huge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		w.Write(bytes.Repeat([]byte{'y'}, errBodyLimit+1000))
	}))
	t.Cleanup(huge.Close)
	_, _, err = fetchSnapshot(&http.Client{}, huge.URL, "users", int64(snapSize), int64(snapSize), int64(snapSize))
	if err == nil {
		t.Fatal("non-200 response did not error")
	}
	if len(err.Error()) > errBodyLimit+200 {
		t.Fatalf("error body not capped: %d bytes", len(err.Error()))
	}
}

func TestSplitNonEmpty(t *testing.T) {
	got := splitNonEmpty(" a, ,b,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if out := splitNonEmpty(""); out != nil {
		t.Fatalf("empty input: got %v", out)
	}
}
