// The loadtest mode hammers a live ldpjoind with a configurable query
// mix and reports throughput and latency percentiles — the measuring
// stick for the server's lock-free read path. It first seeds (unless
// told not to) a small family of columns through the public API —
// two attribute-0 join columns, a matrix column spanning (0, 1), and
// an attribute-1 join column — finalizes them, then runs -concurrency
// workers for -duration issuing requests drawn from the -mix weights:
//
//	join    GET /v1/join?left=…&right=…     (memoized pairwise estimate)
//	chain   GET /v1/join?path=…,…,…         (memoized planner estimate)
//	freq    GET /v1/frequency?…             (rotating values: hits+misses)
//	status  GET /v1/columns/{name}
//	stats   GET /v1/stats
//	ingest  POST /v1/columns/{prefix}_ing/reports (small report batches
//	        into a never-finalized column — the soak op that keeps the
//	        WAL growing so a background checkpointer has work to do)
//
// Every worker records per-request latency; the summary prints counts,
// errors, p50/p90/p99/max per op and overall QPS, and -out writes the
// same numbers as JSON for CI artifacts. -tenant sends every request
// with an Authorization bearer token, so a rate-limited or ε-budgeted
// server can be soaked as one tenant. Columns survive the run
// (finalized sketches are immutable), so repeated invocations against
// the same server skip seeding and measure steady state.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
)

// ltOp is one weighted operation of the query mix.
type ltOp struct {
	name   string
	weight int
	target func(rng *rand.Rand) string
	body   []byte // non-nil: POST this payload instead of GET
}

// ltSample is one latency observation.
type ltSample struct {
	op      int
	latency time.Duration
}

// ltReservoirSize bounds how many latency samples each worker keeps:
// beyond it, reservoir sampling (algorithm R) keeps a uniform subset,
// so an hour-long run against a 100k req/s server costs megabytes, not
// gigabytes, and the generator does not perturb the latencies it
// measures. Counts and errors are exact regardless.
const ltReservoirSize = 1 << 16

// ltWorker is one worker's tallies: exact per-op counts, errors, and
// worst-case latencies, plus the bounded reservoir for percentiles. The
// max is tracked outside the reservoir because it is exactly the event
// subsampling would lose — a single multi-second stall in an hour-long
// run has almost no chance of surviving a uniform subsample.
type ltWorker struct {
	counts []int64
	errs   []int64
	maxes  []time.Duration
	seen   int64
	res    []ltSample
}

// observe records one request outcome.
func (w *ltWorker) observe(op int, latency time.Duration, ok bool, rng *rand.Rand) {
	w.counts[op]++
	if !ok {
		w.errs[op]++
	}
	if latency > w.maxes[op] {
		w.maxes[op] = latency
	}
	w.seen++
	if len(w.res) < ltReservoirSize {
		w.res = append(w.res, ltSample{op: op, latency: latency})
		return
	}
	if j := rng.Int63n(w.seen); j < ltReservoirSize {
		w.res[j] = ltSample{op: op, latency: latency}
	}
}

func runLoadtest(args []string) {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: ldpjoin loadtest -server URL [flags]

Seed a family of columns on a running ldpjoind (skipped for columns that
are already finalized), then hammer its query API with a weighted mix of
concurrent requests and report QPS and latency percentiles. The
protocol configuration (-k, -m, -eps, -seed) must match the server's.

`)
		fs.PrintDefaults()
	}
	server := fs.String("server", "", "base URL of the ldpjoind under test (e.g. http://localhost:8080)")
	concurrency := fs.Int("concurrency", 16, "concurrent workers")
	duration := fs.Duration("duration", 10*time.Second, "how long to drive the mix")
	mixFlag := fs.String("mix", "join=6,chain=2,freq=2,status=1,stats=1", "weighted query mix (ops: join, chain, freq, status, stats, ingest; weight 0 drops an op)")
	reports := fs.Int("reports", 20000, "reports ingested per seeded column (0 skips seeding entirely)")
	prefix := fs.String("prefix", "lt", "seeded column name prefix")
	values := fs.Int("values", 1024, "distinct ?value= domain for freq queries (mixes cache hits and misses)")
	k := fs.Int("k", 18, "sketch depth (rows)")
	m := fs.Int("m", 1024, "sketch width (columns, power of two)")
	eps := fs.Float64("eps", 4, "privacy budget epsilon")
	seed := fs.Int64("seed", 1, "public hash seed (shared with the server)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	tenant := fs.String("tenant", "", "send every request as this tenant (Authorization: Bearer <tenant>)")
	out := fs.String("out", "", "write the run summary as JSON to this file")
	ingestBatch := fs.Int("ingest-batch", 64, "reports per ingest-op batch (the ingest mix op)")
	_ = fs.Parse(args)

	if *server == "" {
		fs.Usage()
		fatal(fmt.Errorf("loadtest needs -server"))
	}
	if *concurrency < 1 {
		fatal(fmt.Errorf("-concurrency must be at least 1, got %d", *concurrency))
	}
	if *values < 1 {
		fatal(fmt.Errorf("-values must be at least 1, got %d", *values))
	}
	base := strings.TrimSuffix(*server, "/")
	params := core.Params{K: *k, M: *m, Epsilon: *eps}
	if err := params.Validate(); err != nil {
		fatal(err)
	}

	var rt http.RoundTripper = &http.Transport{
		MaxIdleConns:        2 * *concurrency,
		MaxIdleConnsPerHost: 2 * *concurrency,
	}
	if *tenant != "" {
		rt = &bearerTransport{next: rt, token: *tenant}
	}
	client := &http.Client{Timeout: *timeout, Transport: rt}

	names := map[string]string{
		"a":   *prefix + "_a",   // join, attr 0
		"b":   *prefix + "_b",   // join, attr 0
		"ab":  *prefix + "_ab",  // matrix, attrs (0, 1)
		"c":   *prefix + "_c",   // join, attr 1
		"ing": *prefix + "_ing", // join, attr 0, never finalized (ingest op)
	}
	if *reports > 0 {
		if err := seedColumns(client, base, params, *seed, names, *reports); err != nil {
			fatal(err)
		}
	}

	ingestBody, err := encodeIngestBatch(params, *seed, *ingestBatch)
	if err != nil {
		fatal(err)
	}
	ops := buildMix(*mixFlag, names, *values, ingestBody)
	fmt.Printf("loadtest: %d workers against %s for %s (mix %s)\n", *concurrency, base, *duration, *mixFlag)

	workers, elapsed := driveMix(client, base, ops, *concurrency, *duration)
	sum := printSummary(ops, workers, elapsed)
	sum.Server, sum.Concurrency, sum.Mix = base, *concurrency, *mixFlag
	sum.Tenant, sum.Duration = *tenant, elapsed.String()
	if *out != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("summary written to %s\n", *out)
	}
}

// bearerTransport stamps the loadtest's tenant identity on every
// request, so per-tenant admission on the server attributes the whole
// run to one tenant.
type bearerTransport struct {
	next  http.RoundTripper
	token string
}

func (t *bearerTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	r = r.Clone(r.Context())
	r.Header.Set("Authorization", "Bearer "+t.token)
	return t.next.RoundTrip(r)
}

// encodeIngestBatch pre-encodes the report batch the ingest op posts.
// Every ingest request reuses the same perturbed batch: the server
// folds it like any other, and encoding once keeps the generator from
// spending its CPU on perturbation instead of load.
func encodeIngestBatch(p core.Params, seed int64, batch int) ([]byte, error) {
	if batch < 1 {
		return nil, fmt.Errorf("-ingest-batch must be at least 1, got %d", batch)
	}
	fam := hashing.NewFamily(hashing.AttributeSeed(seed, 0), p.K, p.M)
	rng := rand.New(rand.NewSource(seed + 7))
	var buf bytes.Buffer
	w, err := protocol.NewReportWriter(&buf, p)
	if err != nil {
		return nil, err
	}
	for i := 0; i < batch; i++ {
		if err := w.Write(core.Perturb(uint64(rng.Intn(4096)), p, fam, rng)); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// buildMix parses "join=6,chain=2,…" into the weighted op set.
func buildMix(mix string, names map[string]string, values int, ingestBody []byte) []ltOp {
	bodies := map[string][]byte{"ingest": ingestBody}
	targets := map[string]func(rng *rand.Rand) string{
		"ingest": func(*rand.Rand) string {
			return "/v1/columns/" + url.PathEscape(names["ing"]) + "/reports"
		},
		"join": func(*rand.Rand) string {
			return "/v1/join?left=" + url.QueryEscape(names["a"]) + "&right=" + url.QueryEscape(names["b"])
		},
		"chain": func(*rand.Rand) string {
			return "/v1/join?path=" + url.QueryEscape(names["a"]+","+names["ab"]+","+names["c"])
		},
		"freq": func(rng *rand.Rand) string {
			return "/v1/frequency?column=" + url.QueryEscape(names["a"]) + "&value=" + strconv.Itoa(rng.Intn(values))
		},
		"status": func(*rand.Rand) string { return "/v1/columns/" + url.PathEscape(names["a"]) },
		"stats":  func(*rand.Rand) string { return "/v1/stats" },
	}
	var ops []ltOp
	index := make(map[string]int)
	total := 0
	for _, part := range splitNonEmpty(mix) {
		name, weightStr, found := strings.Cut(part, "=")
		if !found {
			fatal(fmt.Errorf("-mix entry %q is not op=weight", part))
		}
		name = strings.TrimSpace(name)
		target, ok := targets[name]
		if !ok {
			fatal(fmt.Errorf("-mix op %q unknown (want join, chain, freq, status, stats, ingest)", name))
		}
		weight, err := strconv.Atoi(strings.TrimSpace(weightStr))
		if err != nil || weight < 0 {
			fatal(fmt.Errorf("-mix weight %q is not a non-negative integer", weightStr))
		}
		if weight == 0 {
			continue
		}
		total += weight
		// A repeated op name folds its weight into the existing entry, so
		// the summary never fragments one op across rows.
		if i, seen := index[name]; seen {
			ops[i].weight += weight
			continue
		}
		index[name] = len(ops)
		ops = append(ops, ltOp{name: name, weight: weight, target: target, body: bodies[name]})
	}
	if total == 0 {
		fatal(fmt.Errorf("-mix %q selects nothing", mix))
	}
	return ops
}

// pickOp draws an op index by weight; total is the precomputed weight
// sum (constant for the run, so the hot loop does not re-derive it).
func pickOp(ops []ltOp, total int, rng *rand.Rand) int {
	n := rng.Intn(total)
	for i, op := range ops {
		if n < op.weight {
			return i
		}
		n -= op.weight
	}
	return len(ops) - 1
}

// driveMix runs the workers and reports the merged tallies plus the
// actual wall time they span — each worker's final in-flight request
// can finish past the nominal deadline, so throughput is computed over
// the measured window, not the requested one.
func driveMix(client *http.Client, base string, ops []ltOp, concurrency int, duration time.Duration) ([]ltWorker, time.Duration) {
	begin := time.Now()
	deadline := begin.Add(duration)
	totalWeight := 0
	for _, op := range ops {
		totalWeight += op.weight
	}
	workers := make([]ltWorker, concurrency)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		workers[w] = ltWorker{
			counts: make([]int64, len(ops)),
			errs:   make([]int64, len(ops)),
			maxes:  make([]time.Duration, len(ops)),
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for time.Now().Before(deadline) {
				op := pickOp(ops, totalWeight, rng)
				start := time.Now()
				ok := doReq(client, base+ops[op].target(rng), ops[op].body)
				workers[w].observe(op, time.Since(start), ok, rng)
			}
		}(w)
	}
	wg.Wait()
	return workers, time.Since(begin)
}

// doReq issues one request — GET, or POST when the op carries a
// payload — draining the body so the connection is reused; ok means
// HTTP 200.
func doReq(client *http.Client, url string, body []byte) bool {
	var resp *http.Response
	var err error
	if body != nil {
		resp, err = client.Post(url, "application/octet-stream", bytes.NewReader(body))
	} else {
		resp, err = client.Get(url)
	}
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// ltOpSummary and ltSummary are the machine-readable run summary -out
// writes — the artifact a CI soak job uploads next to BENCH_*.json.
type ltOpSummary struct {
	Op     string  `json:"op"`
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MaxMs  float64 `json:"maxMs"`
}

type ltSummary struct {
	Server      string        `json:"server"`
	Tenant      string        `json:"tenant,omitempty"`
	Concurrency int           `json:"concurrency"`
	Duration    string        `json:"duration"`
	Mix         string        `json:"mix"`
	Total       int64         `json:"totalRequests"`
	Errors      int64         `json:"totalErrors"`
	QPS         float64       `json:"qps"`
	Ops         []ltOpSummary `json:"ops"`
}

// printSummary prints per-op exact counts and errors, latency
// percentiles from the merged reservoirs, and the overall throughput
// over the measured elapsed window, returning the same numbers for
// -out.
func printSummary(ops []ltOp, workers []ltWorker, elapsed time.Duration) ltSummary {
	fmt.Printf("%-8s %10s %8s %10s %10s %10s %10s\n", "op", "count", "errors", "p50", "p90", "p99", "max")
	sum := ltSummary{}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for i, op := range ops {
		var lats []time.Duration
		var count, errs int64
		var max time.Duration
		for _, w := range workers {
			count += w.counts[i]
			errs += w.errs[i]
			if w.maxes[i] > max {
				max = w.maxes[i]
			}
			for _, s := range w.res {
				if s.op == i {
					lats = append(lats, s.latency)
				}
			}
		}
		sum.Total += count
		sum.Errors += errs
		row := ltOpSummary{Op: op.name, Count: count, Errors: errs, MaxMs: ms(max)}
		if len(lats) == 0 {
			if count > 0 {
				// No reservoir survivors for this op (long run, low
				// weight) — the exactly-tracked max still prints, since a
				// lost stall is precisely what it exists to surface.
				fmt.Printf("%-8s %10d %8d %10s %10s %10s %10s\n", op.name, count, errs, "-", "-", "-", max)
			} else {
				fmt.Printf("%-8s %10d %8d\n", op.name, count, errs)
			}
			sum.Ops = append(sum.Ops, row)
			continue
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		p50, p90, p99 := percentile(lats, 0.50), percentile(lats, 0.90), percentile(lats, 0.99)
		row.P50Ms, row.P90Ms, row.P99Ms = ms(p50), ms(p90), ms(p99)
		sum.Ops = append(sum.Ops, row)
		fmt.Printf("%-8s %10d %8d %10s %10s %10s %10s\n", op.name, count, errs, p50, p90, p99, max)
	}
	sum.QPS = float64(sum.Total) / elapsed.Seconds()
	fmt.Printf("total: %d requests in %s — %.1f req/s\n", sum.Total, elapsed.Round(time.Millisecond), sum.QPS)
	return sum
}

// percentile returns the nearest-rank q-quantile of sorted latencies:
// ceil(q·n)-1, so the p50 of two samples is the lower one, not the max.
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// seedColumns ingests and finalizes the loadtest's column family
// through the public API, skipping any column the server already has
// finalized (a rerun against a warm server). Reports are perturbed
// client-side under the attribute families the server derives from the
// shared seed, exactly like a real gateway.
func seedColumns(client *http.Client, base string, p core.Params, seed int64, names map[string]string, reports int) error {
	mp := core.MatrixParams{K: p.K, M1: p.M, M2: p.M, Epsilon: p.Epsilon}
	fams := []*hashing.Family{
		hashing.NewFamily(hashing.AttributeSeed(seed, 0), p.K, p.M),
		hashing.NewFamily(hashing.AttributeSeed(seed, 1), p.K, p.M),
	}
	const domain = 4096
	rng := rand.New(rand.NewSource(seed))

	encodeJoin := func(attr int) (*bytes.Buffer, error) {
		var buf bytes.Buffer
		w, err := protocol.NewReportWriter(&buf, p)
		if err != nil {
			return nil, err
		}
		for i := 0; i < reports; i++ {
			if err := w.Write(core.Perturb(uint64(rng.Intn(domain)), p, fams[attr], rng)); err != nil {
				return nil, err
			}
		}
		return &buf, w.Flush()
	}
	encodeMatrix := func() (*bytes.Buffer, error) {
		var buf bytes.Buffer
		w, err := protocol.NewMatrixReportWriter(&buf, mp)
		if err != nil {
			return nil, err
		}
		for i := 0; i < reports; i++ {
			if err := w.Write(core.PerturbTuple(uint64(rng.Intn(domain)), uint64(rng.Intn(domain)), mp, fams[0], fams[1], rng)); err != nil {
				return nil, err
			}
		}
		return &buf, w.Flush()
	}

	seeds := []struct {
		name   string
		query  string
		encode func() (*bytes.Buffer, error)
	}{
		{names["a"], "", func() (*bytes.Buffer, error) { return encodeJoin(0) }},
		{names["b"], "", func() (*bytes.Buffer, error) { return encodeJoin(0) }},
		{names["ab"], "?attr=0", encodeMatrix},
		{names["c"], "?attr=1", func() (*bytes.Buffer, error) { return encodeJoin(1) }},
	}
	for _, sc := range seeds {
		state, err := columnState(client, base, sc.name)
		if err != nil {
			return err
		}
		switch state {
		case "finalized":
			fmt.Printf("column %-12s already finalized; skipping seed\n", sc.name)
			continue
		case "collecting":
			// An interrupted earlier seed already ingested its reports;
			// re-seeding would double them, so just finalize what's there.
			fmt.Printf("column %-12s collecting (interrupted seed?); finalizing as-is\n", sc.name)
			if err := postOK(client, base+"/v1/columns/"+url.PathEscape(sc.name)+"/finalize", nil,
				"finalizing %q", sc.name); err != nil {
				return err
			}
			continue
		}
		stream, err := sc.encode()
		if err != nil {
			return fmt.Errorf("encoding seed stream for %q: %w", sc.name, err)
		}
		u := base + "/v1/columns/" + url.PathEscape(sc.name) + "/reports" + sc.query
		if err := postOK(client, u, stream, "seeding %q", sc.name); err != nil {
			return err
		}
		if err := postOK(client, base+"/v1/columns/"+url.PathEscape(sc.name)+"/finalize", nil,
			"finalizing %q", sc.name); err != nil {
			return err
		}
		fmt.Printf("column %-12s seeded with %d reports and finalized\n", sc.name, reports)
	}
	return nil
}

// postOK posts body (may be nil) and requires a 200, folding the error
// body into the failure message.
func postOK(client *http.Client, url string, body io.Reader, format string, args ...any) error {
	resp, err := client.Post(url, "application/octet-stream", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", fmt.Sprintf(format, args...), apiError(resp))
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// columnState asks the server for name's lifecycle state: "finalized",
// "collecting", or "" when the column does not exist yet.
func columnState(client *http.Client, base, name string) (string, error) {
	resp, err := client.Get(base + "/v1/columns/" + url.PathEscape(name))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return "", nil
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("checking column %q: %s", name, apiError(resp))
	}
	var status struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return "", fmt.Errorf("checking column %q: %w", name, err)
	}
	return status.State, nil
}
