// Command ldpjoin runs a single private join-size estimation on a
// generated workload and reports the estimate against the exact answer;
// in federate mode it merges sketch snapshots pulled from several
// ldpjoind collectors and answers the join query over the federation;
// in loadtest mode it hammers a live ldpjoind's query API with a
// weighted concurrent mix and reports QPS and latency percentiles.
//
// Usage:
//
//	ldpjoin -dataset zipf1.1 -method plus -eps 4 -scale 0.005
//	ldpjoin -dataset movielens -method sketch -k 18 -m 1024
//	ldpjoin federate -peers http://a:8080,http://b:8080 -columns users,orders
//	ldpjoin loadtest -server http://a:8080 -concurrency 32 -duration 30s
//
// Methods: sketch (LDPJoinSketch), plus (LDPJoinSketch+), fagms
// (non-private fast-AGMS), krr, hcms, flh.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/experiments"
	"ldpjoin/internal/join"
	"ldpjoin/internal/metrics"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "federate" {
		runFederate(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "loadtest" {
		runLoadtest(os.Args[2:])
		return
	}
	dsName := flag.String("dataset", "zipf1.1", "dataset name (see DESIGN.md Table II) or zipfA.B")
	method := flag.String("method", "sketch", "sketch|plus|fagms|krr|hcms|flh")
	eps := flag.Float64("eps", 4, "privacy budget epsilon")
	k := flag.Int("k", 18, "sketch depth (rows)")
	m := flag.Int("m", 1024, "sketch width (columns, power of two)")
	scale := flag.Float64("scale", 0.005, "fraction of the published dataset size")
	rate := flag.Float64("r", 0.1, "LDPJoinSketch+ phase-1 sampling rate")
	theta := flag.Float64("theta", 0.01, "LDPJoinSketch+ frequent-item threshold (clamped to the noise floor)")
	seed := flag.Int64("seed", 1, "protocol seed")
	flag.Parse()

	spec, err := dataset.ByName(*dsName)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generating %s at scale %.4g ...\n", spec.Name, *scale)
	a, b := spec.Pair(42, *scale)
	domain := spec.DomainAt(*scale)
	truth := join.Size(a, b)
	fmt.Printf("rows: %d + %d, domain: %d, exact join size: %.6g\n", len(a), len(b), domain, truth)

	methods := map[string]experiments.JoinMethod{
		"fagms":  experiments.MethodFAGMS(),
		"krr":    experiments.MethodKRR(),
		"hcms":   experiments.MethodHCMS(),
		"flh":    experiments.MethodFLH(),
		"sketch": experiments.MethodLDPJoinSketch(),
		"plus":   experiments.MethodPlus(),
	}
	jm, ok := methods[*method]
	if !ok {
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	p := experiments.MethodParams{
		K: *k, M: *m, Epsilon: *eps,
		SampleRate: *rate, Theta: *theta, FLHPool: 512,
	}
	task := experiments.JoinTask{A: a, B: b, Domain: domain, Truth: truth}

	start := time.Now()
	res := jm.Run(task, p, *seed)
	fmt.Printf("\n%s estimate:  %.6g\n", jm.Name, res.Estimate)
	fmt.Printf("absolute error:   %.6g\n", metrics.AbsErr(truth, res.Estimate))
	fmt.Printf("relative error:   %.4f\n", metrics.RelErr(truth, res.Estimate))
	fmt.Printf("offline/online:   %s / %s (total %s)\n",
		res.Offline.Round(time.Microsecond), res.Online.Round(time.Microsecond),
		time.Since(start).Round(time.Microsecond))
	fmt.Printf("communication:    %.0f bits total from %d clients\n", res.CommBits, len(a)+len(b))
	fmt.Printf("server space:     %.1f KB\n", res.Space/1024)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ldpjoin:", err)
	os.Exit(1)
}
