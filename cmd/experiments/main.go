// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run fig5 -scale small
//	experiments -run all -scale tiny -csv out/
//
// Each artifact is printed as an aligned text table; with -csv DIR the
// raw series are also written as CSV files for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ldpjoin/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id (table2, fig5..fig15) or 'all'")
	scaleName := flag.String("scale", "small", "workload scale: tiny|small|medium|large|paper")
	csvDir := flag.String("csv", "", "directory to also write CSV series into")
	flag.Parse()

	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = []string{*run}
	}
	for _, id := range ids {
		runner, err := experiments.Get(id)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		tables := runner(sc)
		for _, tab := range tables {
			if err := tab.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, tab); err != nil {
					fatal(err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %s]\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func writeCSV(dir string, tab *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tab.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.CSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
