// Command ldpjoind runs the LDP aggregation server over HTTP.
//
// Client gateways POST perturbed report streams into named columns —
// KindJoin streams into single-attribute join columns, KindMatrix
// streams into middle-table matrix columns — and the sharded ingestion
// engine folds them concurrently. Once columns are finalized the server
// answers pairwise join queries (GET /v1/join?left=A&right=B), chain
// (multi-way) join queries across adjacent attribute slots
// (GET /v1/join?path=A,AB,BC,C), and frequency queries, all memoized in
// a bounded query cache. See internal/service for the API and
// internal/ingest for the engine.
//
// With -data set the server is durable: accepted reports and merges are
// write-ahead logged (fsynced before the request is acknowledged),
// finalized sketches are persisted, and SIGINT/SIGTERM triggers a
// graceful shutdown that drains in-flight requests and checkpoints
// collecting columns. Restarting on the same -data directory (and the
// same -k/-m/-eps/-seed) recovers every column — byte-identically,
// because sketch state is linear. With -ckpt-bytes or -ckpt-interval a
// background checkpointer also snapshots busy columns while they keep
// ingesting and compacts the WAL segments the snapshot covers, bounding
// both recovery replay time and disk growth. See internal/store.
//
// GET /metrics serves Prometheus text exposition, and -tenant-rate /
// -tenant-eps-budget turn on per-tenant admission keyed by the
// Authorization bearer token. See internal/service.
//
// Usage:
//
//	ldpjoind -addr :8080 -k 18 -m 1024 -eps 4 -seed 1 \
//	         -shards 8 -workers 8 -queue 64 -max-reports 16777216 \
//	         -data /var/lib/ldpjoind
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ldpjoin/internal/core"
	"ldpjoin/internal/ingest"
	"ldpjoin/internal/service"
	"ldpjoin/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	k := flag.Int("k", 18, "sketch depth (rows)")
	m := flag.Int("m", 1024, "sketch width (columns, power of two)")
	eps := flag.Float64("eps", 4, "privacy budget epsilon")
	seed := flag.Int64("seed", 1, "public hash seed (shared with clients)")
	shards := flag.Int("shards", 0, "aggregation shards per join column (0 = GOMAXPROCS)")
	matrixShards := flag.Int("matrix-shards", 0, "aggregation shards per matrix column — each costs K*M*M cells of memory (0 = 1)")
	workers := flag.Int("workers", 0, "fold worker goroutines (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "ingestion queue depth in batches (0 = 4x workers)")
	maxReports := flag.Int("max-reports", 0, "max reports per request body (0 = default; <0 = unlimited, removes the per-request memory bound)")
	attrs := flag.Int("attrs", 0, "join-attribute hash families derived from the seed; a chain over n attributes needs n (0 = default)")
	queryCache := flag.Int("query-cache", 0, "max memoized query results (0 = default; <0 disables memoization)")
	data := flag.String("data", "", "data directory for WAL + checkpoint durability (empty = in-memory only)")
	segBytes := flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold (0 = default)")
	noSync := flag.Bool("wal-no-sync", false, "skip fsyncs (faster; survives process crashes, not power loss)")
	ckptBytes := flag.Int64("ckpt-bytes", 0, "background-checkpoint a column once this many WAL bytes accumulate past its last checkpoint (0 = disabled)")
	ckptInterval := flag.Duration("ckpt-interval", 0, "background-checkpoint a column with un-checkpointed WAL bytes after this much time (0 = disabled)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant request rate limit, requests/second (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant burst capacity of the rate limit (0 = 1)")
	tenantEps := flag.Float64("tenant-eps-budget", 0, "per-tenant privacy budget: total ε a tenant's accepted reports may spend (0 = unlimited)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
	flag.Parse()

	srv, err := service.NewWithOptions(core.Params{K: *k, M: *m, Epsilon: *eps}, *seed, service.Options{
		Ingest:            ingest.Options{Shards: *shards, Workers: *workers, Queue: *queue, MatrixShards: *matrixShards},
		MaxStreamReports:  *maxReports,
		Attributes:        *attrs,
		QueryCacheEntries: *queryCache,
		DataDir:           *data,
		Store: store.Options{
			SegmentBytes: *segBytes, NoSync: *noSync,
			CheckpointBytes: *ckptBytes, CheckpointInterval: *ckptInterval,
		},
		TenantRate:          *tenantRate,
		TenantBurst:         *tenantBurst,
		TenantEpsilonBudget: *tenantEps,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ldpjoind listening on %s (k=%d, m=%d, ε=%g, seed=%d", *addr, *k, *m, *eps, *seed)
	if *data != "" {
		fmt.Printf(", data=%s", *data)
	}
	fmt.Println(")")

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	select {
	case err := <-errc:
		srv.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()

	// Ordered teardown: stop accepting, drain in-flight requests, then
	// checkpoint — the checkpoint must cover every acknowledged request,
	// so it runs strictly after the listener has gone quiet.
	fmt.Println("ldpjoind shutting down: draining requests, checkpointing columns")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("draining HTTP server: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		log.Fatalf("checkpointing: %v (the WAL is intact; restart will replay it)", err)
	}
}
