// Command ldpjoind runs the LDP aggregation server over HTTP.
//
// Client gateways POST perturbed report streams into named columns; the
// sharded ingestion engine folds them concurrently, and once a column is
// finalized the server answers join-size and frequency queries (memoized
// per column pair) and exports sketches. See internal/service for the
// API and internal/ingest for the engine.
//
// Usage:
//
//	ldpjoind -addr :8080 -k 18 -m 1024 -eps 4 -seed 1 \
//	         -shards 8 -workers 8 -queue 64 -max-reports 16777216
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"ldpjoin/internal/core"
	"ldpjoin/internal/ingest"
	"ldpjoin/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	k := flag.Int("k", 18, "sketch depth (rows)")
	m := flag.Int("m", 1024, "sketch width (columns, power of two)")
	eps := flag.Float64("eps", 4, "privacy budget epsilon")
	seed := flag.Int64("seed", 1, "public hash seed (shared with clients)")
	shards := flag.Int("shards", 0, "aggregation shards per column (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "fold worker goroutines (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "ingestion queue depth in batches (0 = 4x workers)")
	maxReports := flag.Int("max-reports", 0, "max reports per request body (0 = default; <0 = unlimited, removes the per-request memory bound)")
	flag.Parse()

	srv, err := service.NewWithOptions(core.Params{K: *k, M: *m, Epsilon: *eps}, *seed, service.Options{
		Ingest:           ingest.Options{Shards: *shards, Workers: *workers, Queue: *queue},
		MaxStreamReports: *maxReports,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("ldpjoind listening on %s (k=%d, m=%d, ε=%g, seed=%d)\n", *addr, *k, *m, *eps, *seed)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
