// Command ldpjoind runs the LDP aggregation server over HTTP.
//
// Client gateways POST perturbed report streams into named columns; once
// a column is finalized the server answers join-size and frequency
// queries and exports sketches. See internal/service for the API.
//
// Usage:
//
//	ldpjoind -addr :8080 -k 18 -m 1024 -eps 4 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"ldpjoin/internal/core"
	"ldpjoin/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	k := flag.Int("k", 18, "sketch depth (rows)")
	m := flag.Int("m", 1024, "sketch width (columns, power of two)")
	eps := flag.Float64("eps", 4, "privacy budget epsilon")
	seed := flag.Int64("seed", 1, "public hash seed (shared with clients)")
	flag.Parse()

	srv, err := service.New(core.Params{K: *k, M: *m, Epsilon: *eps}, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ldpjoind listening on %s (k=%d, m=%d, ε=%g, seed=%d)\n", *addr, *k, *m, *eps, *seed)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
