// Command benchgate is the CI perf-regression gate: it compares a
// distilled benchmark summary (the benchdistill output format —
// package → benchmark → {n, ns/op, ...}) against a committed baseline
// and fails when any benchmark's ns/op slid past the allowed budget.
//
//	go test -json -bench=. ./... | benchdistill > BENCH_now.json
//	benchgate -baseline BENCH_baseline.json BENCH_now.json
//
// A benchmark present on only one side is reported and skipped, never
// failed: new benchmarks have no baseline yet, and deleted ones are a
// review concern, not a perf one. Setting BENCHGATE_LENIENT in the
// environment downgrades regressions to warnings (exit 0) — CI's
// shared runners are far too noisy for a single-iteration smoke run to
// be a hard gate, so there the gate documents the drift and the
// committed baseline is refreshed deliberately from a quiet machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// summary is benchdistill's output shape: package → benchmark →
// metric → value.
type summary map[string]map[string]map[string]float64

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr, os.Getenv("BENCHGATE_LENIENT") != ""))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer, lenient bool) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "committed baseline summary to gate against")
	maxRegress := fs.Float64("max-regress", 0.15, "maximum tolerated fractional ns/op increase")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	currentPath := "-"
	if fs.NArg() > 0 {
		currentPath = fs.Arg(0)
	}

	base, err := load(*baselinePath, stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: baseline: %v\n", err)
		return 2
	}
	cur, err := load(currentPath, stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: current: %v\n", err)
		return 2
	}

	regressions := compare(base, cur, *maxRegress, stdout)
	if len(regressions) == 0 {
		fmt.Fprintln(stdout, "benchgate: OK")
		return 0
	}
	for _, r := range regressions {
		fmt.Fprintf(stderr, "benchgate: REGRESSION %s\n", r)
	}
	if lenient {
		fmt.Fprintf(stderr, "benchgate: BENCHGATE_LENIENT set; %d regression(s) reported as warnings\n", len(regressions))
		return 0
	}
	fmt.Fprintf(stderr, "benchgate: %d benchmark(s) regressed more than %.0f%% ns/op\n", len(regressions), *maxRegress*100)
	return 1
}

// load reads a distilled summary from path, or from stdin when path is
// "-".
func load(path string, stdin io.Reader) (summary, error) {
	var r io.Reader = stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var s summary
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return s, nil
}

// compare walks the union of (package, benchmark) keys, prints one
// line per comparable benchmark, and returns the descriptions of those
// whose ns/op grew beyond maxRegress.
func compare(base, cur summary, maxRegress float64, out io.Writer) []string {
	var regressions []string
	for _, pkg := range sortedKeys(union(base, cur)) {
		bb, cb := base[pkg], cur[pkg]
		for _, name := range sortedKeys(union(bb, cb)) {
			baseNs, baseOK := metric(bb, name)
			curNs, curOK := metric(cb, name)
			switch {
			case !baseOK && !curOK:
				// Present but without ns/op on either side (shouldn't
				// happen with benchdistill output) — nothing to gate.
			case !baseOK:
				fmt.Fprintf(out, "  NEW   %s.%s  %.0f ns/op (no baseline; skipped)\n", pkg, name, curNs)
			case !curOK:
				fmt.Fprintf(out, "  GONE  %s.%s  (in baseline, not in current run; skipped)\n", pkg, name)
			default:
				delta := curNs/baseNs - 1
				verdict := "ok"
				if delta > maxRegress {
					verdict = "REGRESS"
					regressions = append(regressions,
						fmt.Sprintf("%s.%s: %.0f -> %.0f ns/op (%+.1f%%, budget %.0f%%)",
							pkg, name, baseNs, curNs, delta*100, maxRegress*100))
				}
				fmt.Fprintf(out, "  %-7s %s.%s  %.0f -> %.0f ns/op (%+.1f%%)\n", verdict, pkg, name, baseNs, curNs, delta*100)
			}
		}
	}
	return regressions
}

// metric fetches a benchmark's ns/op from one package's results.
func metric(pkg map[string]map[string]float64, name string) (float64, bool) {
	m, ok := pkg[name]
	if !ok {
		return 0, false
	}
	ns, ok := m["ns/op"]
	return ns, ok
}

// union collects the keys of two maps (generic over the value types
// actually used above).
func union[V any](a, b map[string]V) map[string]struct{} {
	keys := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		keys[k] = struct{}{}
	}
	for k := range b {
		keys[k] = struct{}{}
	}
	return keys
}

func sortedKeys(m map[string]struct{}) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
