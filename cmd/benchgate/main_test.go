package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSummary(t *testing.T, dir, name string, s summary) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(ns float64) map[string]float64 {
	return map[string]float64{"n": 100, "ns/op": ns}
}

func TestGatePassesWithinBudget(t *testing.T) {
	dir := t.TempDir()
	base := writeSummary(t, dir, "base.json", summary{
		"ldpjoin/internal/kernel": {"BenchmarkFWHT": bench(1000)},
	})
	cur := writeSummary(t, dir, "cur.json", summary{
		"ldpjoin/internal/kernel": {"BenchmarkFWHT": bench(1100)}, // +10% < 15%
	})
	var out, errBuf bytes.Buffer
	if code := run([]string{"-baseline", base, cur}, nil, &out, &errBuf, false); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "benchgate: OK") {
		t.Fatalf("missing OK banner:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeSummary(t, dir, "base.json", summary{
		"p": {"BenchmarkDot": bench(1000)},
	})
	cur := writeSummary(t, dir, "cur.json", summary{
		"p": {"BenchmarkDot": bench(1200)}, // +20% > 15%
	})
	var out, errBuf bytes.Buffer
	if code := run([]string{"-baseline", base, cur}, nil, &out, &errBuf, false); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "REGRESSION p.BenchmarkDot") {
		t.Fatalf("missing regression report:\n%s", errBuf.String())
	}
}

func TestLenientDowngradesRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeSummary(t, dir, "base.json", summary{"p": {"B": bench(100)}})
	cur := writeSummary(t, dir, "cur.json", summary{"p": {"B": bench(500)}})
	var out, errBuf bytes.Buffer
	if code := run([]string{"-baseline", base, cur}, nil, &out, &errBuf, true); code != 0 {
		t.Fatalf("lenient exit %d, want 0", code)
	}
	if !strings.Contains(errBuf.String(), "BENCHGATE_LENIENT") {
		t.Fatalf("lenient run should still warn:\n%s", errBuf.String())
	}
}

func TestNewAndMissingBenchmarksSkip(t *testing.T) {
	dir := t.TempDir()
	base := writeSummary(t, dir, "base.json", summary{
		"p": {"BenchmarkOld": bench(100), "BenchmarkBoth": bench(100)},
	})
	cur := writeSummary(t, dir, "cur.json", summary{
		"p": {"BenchmarkNew": bench(999999), "BenchmarkBoth": bench(101)},
	})
	var out, errBuf bytes.Buffer
	if code := run([]string{"-baseline", base, cur}, nil, &out, &errBuf, false); code != 0 {
		t.Fatalf("exit %d, want 0 (new/missing must skip, not fail); stderr: %s", code, errBuf.String())
	}
	for _, want := range []string{"NEW   p.BenchmarkNew", "GONE  p.BenchmarkOld"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, out.String())
		}
	}
}

func TestTolerateCustomMaxRegress(t *testing.T) {
	dir := t.TempDir()
	base := writeSummary(t, dir, "base.json", summary{"p": {"B": bench(100)}})
	cur := writeSummary(t, dir, "cur.json", summary{"p": {"B": bench(140)}})
	var out, errBuf bytes.Buffer
	if code := run([]string{"-baseline", base, "-max-regress", "0.5", cur}, nil, &out, &errBuf, false); code != 0 {
		t.Fatalf("exit %d, want 0 with 50%% budget", code)
	}
	if code := run([]string{"-baseline", base, "-max-regress", "0.1", cur}, nil, &out, &errBuf, false); code != 1 {
		t.Fatalf("exit %d, want 1 with 10%% budget", code)
	}
}

func TestBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeSummary(t, dir, "good.json", summary{"p": {"B": bench(1)}})
	var out, errBuf bytes.Buffer
	if code := run([]string{"-baseline", filepath.Join(dir, "absent.json"), good}, nil, &out, &errBuf, false); code != 2 {
		t.Fatalf("missing baseline: exit %d, want 2", code)
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-baseline", good, empty}, nil, &out, &errBuf, false); code != 2 {
		t.Fatalf("empty current: exit %d, want 2", code)
	}
}

func TestReadsCurrentFromStdin(t *testing.T) {
	dir := t.TempDir()
	base := writeSummary(t, dir, "base.json", summary{"p": {"B": bench(100)}})
	stdin := strings.NewReader(`{"p":{"B":{"n":10,"ns/op":105}}}`)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-baseline", base}, stdin, &out, &errBuf, false); code != 0 {
		t.Fatalf("stdin current: exit %d, want 0; stderr: %s", code, errBuf.String())
	}
}
