package ldpjoin_test

import (
	"math"
	"testing"

	"ldpjoin"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

func TestCycleFacadeEndToEnd(t *testing.T) {
	cfg := ldpjoin.Config{K: 9, M: 128, Epsilon: 8, Seed: 61}
	cp, err := ldpjoin.NewChainProtocol(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n, domain = 50000, 100
	gen := func(seed int64) []uint64 { return dataset.Zipf(seed, n, domain, 1.4) }
	t1 := join.PairTable{A: gen(1), B: gen(2)}
	t2 := join.PairTable{A: gen(3), B: gen(4)}
	t3 := join.PairTable{A: gen(5), B: gen(6)}
	truth := join.CycleSize(t1, t2, t3)
	if truth <= 0 {
		t.Fatal("degenerate cycle fixture")
	}

	m1, err := cp.BuildMid(0, t1.A, t1.B, 11)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := cp.BuildMid(1, t2.A, t2.B, 12)
	if err != nil {
		t.Fatal(err)
	}
	closing, err := cp.BuildClosing(t3.A, t3.B, 13)
	if err != nil {
		t.Fatal(err)
	}
	est, err := cp.EstimateCycle(m1, m2, closing)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(est-truth) / truth; re > 1.0 {
		t.Fatalf("cycle facade RE = %.3f (est %.4g truth %.4g)", re, est, truth)
	}
}

func TestCycleFacadeErrors(t *testing.T) {
	cfg := ldpjoin.Config{K: 2, M: 32, Epsilon: 2, Seed: 1}
	two, _ := ldpjoin.NewChainProtocol(cfg, 2)
	if _, err := two.BuildClosing([]uint64{1}, []uint64{1}, 1); err == nil {
		t.Fatal("closing table on a 2-attribute protocol accepted")
	}
	if _, err := two.EstimateCycle(nil, nil, nil); err == nil {
		t.Fatal("cycle estimate on a 2-attribute protocol accepted")
	}
	three, _ := ldpjoin.NewChainProtocol(cfg, 3)
	if _, err := three.BuildClosing([]uint64{1, 2}, []uint64{1}, 1); err == nil {
		t.Fatal("ragged closing table accepted")
	}
}
