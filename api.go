package ldpjoin

import (
	"fmt"
	"math/rand"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/ingest"
	"ldpjoin/internal/protocol"
)

// Report is the ε-LDP message a client transmits: one perturbed bit and
// the sampled sketch coordinates (Theorem 1 of the paper proves the
// triple is safe to release).
type Report = core.Report

// MatrixReport is the client message for a two-attribute (middle) table
// in a chain join (§VI of the paper).
type MatrixReport = core.MatrixReport

// PlusResult carries the LDPJoinSketch+ estimate and its diagnostics.
type PlusResult = core.PlusResult

// Config is the protocol configuration shared by every participant of a
// join: sketch depth K, sketch width M (a power of two), the per-client
// privacy budget Epsilon, and the Seed from which the public hash
// functions are derived. Both join endpoints must use identical configs.
type Config struct {
	K       int
	M       int
	Epsilon float64
	Seed    int64
}

// DefaultConfig returns the paper's default parameters: k=18, m=1024,
// ε=4.
func DefaultConfig() Config {
	return Config{K: 18, M: 1024, Epsilon: 4, Seed: 1}
}

func (c Config) params() core.Params {
	return core.Params{K: c.K, M: c.M, Epsilon: c.Epsilon}
}

// Validate reports whether the configuration can run the protocol.
func (c Config) Validate() error { return c.params().Validate() }

// Protocol binds a configuration to its derived public hash functions.
// It is the factory for clients and aggregators; two sketches can be
// combined exactly when they come from protocols with equal configs.
type Protocol struct {
	cfg    Config
	params core.Params
	fam    *hashing.Family
}

// NewProtocol validates the configuration and derives the hash family.
func NewProtocol(cfg Config) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("ldpjoin: %w", err)
	}
	p := cfg.params()
	return &Protocol{cfg: cfg, params: p, fam: p.NewFamily(cfg.Seed)}, nil
}

// Config returns the protocol's configuration.
func (p *Protocol) Config() Config { return p.cfg }

// ReportBits returns the private communication cost per client in bits
// under the public-coin index model (see the paper's Fig 7 accounting).
func (p *Protocol) ReportBits() int { return p.params.ReportBits() }

// SketchBytes returns the server-side memory of one sketch.
func (p *Protocol) SketchBytes() int { return p.params.SketchBytes() }

// Client perturbs private values on the data owner's side. A Client is
// cheap; give each simulated user its own, or reuse one per gateway.
type Client struct {
	proto *Protocol
	rng   *rand.Rand
}

// NewClient creates a client whose randomness derives from seed.
func (p *Protocol) NewClient(seed int64) *Client {
	return &Client{proto: p, rng: rand.New(rand.NewSource(seed))}
}

// Report randomizes one private value (Algorithm 1). The output is
// ε-LDP: it may be logged, transmitted, or retained indefinitely.
func (c *Client) Report(value uint64) Report {
	return core.Perturb(value, c.proto.params, c.proto.fam, c.rng)
}

// Aggregator is the untrusted server side: it consumes perturbed reports
// and produces a Sketch. It never sees a true value.
type Aggregator struct {
	proto *Protocol
	agg   *core.Aggregator
}

// NewAggregator creates an empty aggregator for this protocol.
func (p *Protocol) NewAggregator() *Aggregator {
	return &Aggregator{proto: p, agg: core.NewAggregator(p.params, p.fam)}
}

// Add ingests one report received from a client.
func (a *Aggregator) Add(r Report) { a.agg.Add(r) }

// AddColumn simulates a whole population locally: every value is
// client-perturbed (with randomness derived from seed) and ingested. Use
// it for experiments and tests; production deployments feed Add from the
// wire instead.
func (a *Aggregator) AddColumn(values []uint64, seed int64) {
	a.agg.CollectColumn(values, rand.New(rand.NewSource(seed)))
}

// N returns the number of reports ingested.
func (a *Aggregator) N() float64 { return a.agg.N() }

// Sketch finalizes the aggregation. The aggregator is consumed.
func (a *Aggregator) Sketch() *Sketch {
	return &Sketch{proto: a.proto, sk: a.agg.Finalize()}
}

// Merge folds other — built under the same protocol, typically imported
// from another collector's snapshot — into a. Unfinalized cells are
// exact integer sums, so the merge is exact: finalizing the merged
// aggregator yields byte-identical results to one aggregator having
// ingested both report streams. Neither aggregator may be finalized.
func (a *Aggregator) Merge(other *Aggregator) error {
	if a.agg.Done() || other.agg.Done() {
		return fmt.Errorf("ldpjoin: cannot merge finalized aggregators")
	}
	if !a.agg.Compatible(other.agg) {
		return fmt.Errorf("ldpjoin: aggregators are not combinable (params %+v/seed %d vs params %+v/seed %d)",
			a.agg.Params(), a.agg.Family().Seed(), other.agg.Params(), other.agg.Family().Seed())
	}
	a.agg.Merge(other.agg)
	return nil
}

// Snapshot exports the aggregator's unfinalized (mergeable) state as a
// SNAP snapshot: the cross-node wire form of federation. The snapshot
// embeds the configuration fingerprint (k, m, ε, hash seed) and a CRC,
// and imports only into a protocol with the identical configuration.
// The aggregator remains usable afterwards.
func (a *Aggregator) Snapshot() ([]byte, error) {
	if a.agg.Done() {
		return nil, fmt.Errorf("ldpjoin: cannot snapshot a finalized aggregator")
	}
	return protocol.EncodeSnapshot(protocol.SnapshotOfAggregator(a.agg))
}

// buildShards fixes the simulation shard count of the facade builders.
// Shards — not workers — determine the per-chunk client seeds, so
// pinning them makes BuildSketch and the chain builders deterministic
// functions of (data, seed) on every machine while still parallelizing
// across up to 16 cores.
const buildShards = 16

// BuildSketch runs the whole pipeline for a column in parallel (up to
// buildShards cores): the sharded ingestion engine cuts the population
// into chunks, simulates the clients, and merges the partial
// aggregations. The result is deterministic — a function of (values,
// seed) only, independent of core count and scheduling.
func (p *Protocol) BuildSketch(values []uint64, seed int64) *Sketch {
	return &Sketch{proto: p, sk: ingest.Collect(p.params, p.fam, values, seed, ingest.Options{Shards: buildShards})}
}

// ExportSnapshot encodes an aggregator's unfinalized state for transfer
// to another node. The aggregator must belong to this protocol. It is
// the counterpart of ImportSnapshot; a.Snapshot() is shorthand when the
// protocol is implied.
func (p *Protocol) ExportSnapshot(a *Aggregator) ([]byte, error) {
	if a.proto.cfg != p.cfg {
		return nil, fmt.Errorf("ldpjoin: aggregator belongs to config %+v, not %+v", a.proto.cfg, p.cfg)
	}
	return a.Snapshot()
}

// ImportSnapshot decodes an unfinalized snapshot exported by another
// node into a mergeable Aggregator, after verifying its integrity (CRC)
// and that its configuration fingerprint — k, m, ε, and the hash-family
// seed — matches this protocol exactly. Merging imported aggregators
// and finalizing reproduces, byte for byte, the sketch a single node
// would have built from the concatenated report stream.
func (p *Protocol) ImportSnapshot(data []byte) (*Aggregator, error) {
	snap, err := protocol.DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("ldpjoin: %w", err)
	}
	if err := snap.CompatibleWithJoin(p.params, p.cfg.Seed); err != nil {
		return nil, fmt.Errorf("ldpjoin: %w", err)
	}
	if snap.Finalized {
		return nil, fmt.Errorf("ldpjoin: snapshot is finalized; use ImportFinalized")
	}
	agg, err := core.RestoreAggregator(p.params, p.fam, snap.Cells, snap.N)
	if err != nil {
		return nil, fmt.Errorf("ldpjoin: %w", err)
	}
	return &Aggregator{proto: p, agg: agg}, nil
}

// ImportFinalized decodes a finalized snapshot (Sketch.Snapshot) into a
// queryable Sketch, with the same integrity and configuration checks as
// ImportSnapshot.
func (p *Protocol) ImportFinalized(data []byte) (*Sketch, error) {
	snap, err := protocol.DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("ldpjoin: %w", err)
	}
	if err := snap.CompatibleWithJoin(p.params, p.cfg.Seed); err != nil {
		return nil, fmt.Errorf("ldpjoin: %w", err)
	}
	if !snap.Finalized {
		return nil, fmt.Errorf("ldpjoin: snapshot is unfinalized; use ImportSnapshot")
	}
	sk, err := core.RestoreSketch(p.params, p.fam, snap.Cells, snap.N)
	if err != nil {
		return nil, fmt.Errorf("ldpjoin: %w", err)
	}
	return &Sketch{proto: p, sk: sk}, nil
}

// Sketch is a finalized LDPJoinSketch. All query methods are read-only
// and safe for concurrent use.
type Sketch struct {
	proto *Protocol
	sk    *core.Sketch
}

// N returns the number of reports summarized.
func (s *Sketch) N() float64 { return s.sk.N() }

// JoinSize estimates |A ⋈ B| against another sketch from the same
// protocol (Eq 5 of the paper).
func (s *Sketch) JoinSize(other *Sketch) (float64, error) {
	if !s.sk.Compatible(other.sk) {
		return 0, fmt.Errorf("ldpjoin: sketches are not combinable (params %+v/seed %d vs params %+v/seed %d)",
			s.sk.Params(), s.sk.Family().Seed(), other.sk.Params(), other.sk.Family().Seed())
	}
	return s.sk.JoinSize(other.sk), nil
}

// SelfJoinSize estimates the second frequency moment F2 = Σ_d f(d)² of
// the sketched population, debiased for the protocol noise.
func (s *Sketch) SelfJoinSize() float64 { return s.sk.SelfJoinSize() }

// JoinSizeWhere estimates the join size restricted to a predicate on the
// join attribute: Σ_{d ∈ values} f_A(d)·f_B(d). This is the paper's
// approximate-query-processing motivation (§I, application 3): a COUNT
// join with a selection pushed down onto the join key, answered from the
// same sketches via per-value frequency products. Negative frequency
// estimates carry no mass.
func (s *Sketch) JoinSizeWhere(other *Sketch, values []uint64) (float64, error) {
	if !s.sk.Compatible(other.sk) {
		return 0, fmt.Errorf("ldpjoin: sketches are not combinable")
	}
	var est float64
	for _, d := range values {
		fa := s.sk.Frequency(d)
		fb := other.sk.Frequency(d)
		if fa > 0 && fb > 0 {
			est += fa * fb
		}
	}
	return est, nil
}

// Frequency estimates how many clients held the value d (Theorem 7; the
// unbiased mean estimator).
func (s *Sketch) Frequency(d uint64) float64 { return s.sk.Frequency(d) }

// FrequencyMedian is the robust (median-of-rows) frequency estimator,
// preferable when thresholding over large domains.
func (s *Sketch) FrequencyMedian(d uint64) float64 { return s.sk.FrequencyMedian(d) }

// HeavyHitters returns the values in [0, domain) whose robustly estimated
// frequency exceeds share·N.
func (s *Sketch) HeavyHitters(domain uint64, share float64) []uint64 {
	return s.sk.FrequentItems(domain, share*s.sk.N(), false)
}

// Merge adds other's cells into s. Finalization is linear, so the
// merged sketch summarizes the union of the two populations and every
// estimator stays unbiased — but floating-point addition makes the
// result not bit-identical to finalizing merged unfinalized state. For
// byte-exact federation, merge before finalizing (Aggregator.Merge /
// Protocol.ImportSnapshot). Merge mutates s and must not race its
// query methods.
func (s *Sketch) Merge(other *Sketch) error {
	if !s.sk.Compatible(other.sk) {
		return fmt.Errorf("ldpjoin: sketches are not combinable (params %+v/seed %d vs params %+v/seed %d)",
			s.sk.Params(), s.sk.Family().Seed(), other.sk.Params(), other.sk.Family().Seed())
	}
	s.sk.Merge(other.sk)
	return nil
}

// Snapshot exports the finalized sketch as a SNAP snapshot — the same
// codec ImportFinalized reads, carrying the configuration fingerprint
// and a CRC. Unlike MarshalBinary (the legacy LJS1 catalog format) a
// snapshot can also carry unfinalized state; see Aggregator.Snapshot.
func (s *Sketch) Snapshot() ([]byte, error) {
	return protocol.EncodeSnapshot(protocol.SnapshotOfSketch(s.sk))
}

// MarshalBinary encodes the sketch for persistence or transfer. The
// encoding embeds the protocol parameters and hash seed, so the sketch
// unmarshals into a fully queryable, join-compatible object.
func (s *Sketch) MarshalBinary() ([]byte, error) { return s.sk.MarshalBinary() }

// UnmarshalSketch decodes a sketch produced by Sketch.MarshalBinary.
func UnmarshalSketch(data []byte) (*Sketch, error) {
	sk, err := core.UnmarshalSketch(data)
	if err != nil {
		return nil, fmt.Errorf("ldpjoin: %w", err)
	}
	p := sk.Params()
	proto := &Protocol{
		cfg:    Config{K: p.K, M: p.M, Epsilon: p.Epsilon, Seed: sk.Family().Seed()},
		params: p,
		fam:    sk.Family(),
	}
	return &Sketch{proto: proto, sk: sk}, nil
}

// PlusConfig configures LDPJoinSketch+.
type PlusConfig struct {
	Config
	// SampleRate is the fraction of users answering phase 1 (the paper's
	// r, typically 0.1–0.3).
	SampleRate float64
	// Theta is the frequency-share threshold separating frequent from
	// infrequent values (the paper's θ). It must clear the phase-1 noise
	// floor; see ThetaFloor.
	Theta float64
}

// ThetaFloor returns the smallest usable Theta for a population of n
// users at this config (below it, frequent-item selection drowns in
// noise — the degradation the paper shows in Fig 11).
func (c PlusConfig) ThetaFloor(n int) float64 {
	return core.ThetaFloor(c.Epsilon, int(c.SampleRate*float64(n)))
}

// JoinSizePlus runs the full two-phase LDPJoinSketch+ protocol over two
// private columns with candidate domain [0, domain). It reduces the
// hash-collision error of the plain sketch on skewed data by summarizing
// frequent and infrequent values separately, without spending extra
// privacy budget (each user participates exactly once).
func JoinSizePlus(a, b []uint64, domain uint64, cfg PlusConfig) (PlusResult, error) {
	// Reject undersized inputs before validating options: an empty column
	// is a caller bug about the data, and surfacing a config complaint
	// for it (or worse, passing when the config happens to be fine)
	// misdirects the fix.
	if len(a) < 10 || len(b) < 10 {
		return PlusResult{}, fmt.Errorf("ldpjoin: need at least 10 users per side, got %d and %d", len(a), len(b))
	}
	opt := core.PlusOptions{
		Params:     cfg.params(),
		SampleRate: cfg.SampleRate,
		Theta:      cfg.Theta,
		Seed:       cfg.Seed,
	}
	if err := opt.Validate(); err != nil {
		return PlusResult{}, fmt.Errorf("ldpjoin: %w", err)
	}
	return core.EstimateJoinPlus(a, b, domain, opt), nil
}
