package ldpjoin_test

import (
	"math"
	"strings"
	"testing"

	"ldpjoin"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

func TestNewProtocolValidation(t *testing.T) {
	if _, err := ldpjoin.NewProtocol(ldpjoin.DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := ldpjoin.DefaultConfig()
	bad.M = 1000 // not a power of two
	if _, err := ldpjoin.NewProtocol(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	bad = ldpjoin.DefaultConfig()
	bad.Epsilon = -1
	if _, err := ldpjoin.NewProtocol(bad); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	cfg := ldpjoin.Config{K: 9, M: 1024, Epsilon: 4, Seed: 7}
	proto, err := ldpjoin.NewProtocol(cfg)
	if err != nil {
		t.Fatal(err)
	}
	da := dataset.Zipf(1, 100000, 10000, 1.5)
	db := dataset.Zipf(2, 100000, 10000, 1.5)
	truth := join.Size(da, db)

	// Client/aggregator path.
	aggA := proto.NewAggregator()
	cli := proto.NewClient(3)
	for _, d := range da {
		aggA.Add(cli.Report(d))
	}
	if aggA.N() != float64(len(da)) {
		t.Fatalf("N = %g", aggA.N())
	}
	skA := aggA.Sketch()

	// Column shortcut path.
	aggB := proto.NewAggregator()
	aggB.AddColumn(db, 4)
	skB := aggB.Sketch()

	est, err := skA.JoinSize(skB)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(est-truth) / truth; re > 0.3 {
		t.Fatalf("facade join RE = %.3f (est %.0f truth %.0f)", re, est, truth)
	}
}

func TestFacadeJoinSizeConfigMismatch(t *testing.T) {
	p1, _ := ldpjoin.NewProtocol(ldpjoin.Config{K: 4, M: 256, Epsilon: 2, Seed: 1})
	p2, _ := ldpjoin.NewProtocol(ldpjoin.Config{K: 4, M: 256, Epsilon: 2, Seed: 2})
	s1 := p1.NewAggregator().Sketch()
	s2 := p2.NewAggregator().Sketch()
	if _, err := s1.JoinSize(s2); err == nil {
		t.Fatal("join across different seeds accepted")
	}
}

func TestBuildSketchParallelFacade(t *testing.T) {
	proto, _ := ldpjoin.NewProtocol(ldpjoin.Config{K: 9, M: 512, Epsilon: 4, Seed: 1})
	data := dataset.Zipf(5, 50000, 5000, 1.3)
	s1 := proto.BuildSketch(data, 42)
	s2 := proto.BuildSketch(data, 42)
	if s1.N() != 50000 || s2.N() != 50000 {
		t.Fatalf("N = %g, %g", s1.N(), s2.N())
	}
	// Deterministic: same frequency estimates.
	for d := uint64(0); d < 100; d++ {
		if s1.Frequency(d) != s2.Frequency(d) {
			t.Fatal("parallel facade build not deterministic")
		}
	}
}

func TestSelfJoinSizeEstimatesF2(t *testing.T) {
	proto, _ := ldpjoin.NewProtocol(ldpjoin.Config{K: 9, M: 1024, Epsilon: 6, Seed: 11})
	data := dataset.Zipf(6, 200000, 5000, 1.3)
	sk := proto.BuildSketch(data, 13)
	truth := join.F2(data)
	est := sk.SelfJoinSize()
	if re := math.Abs(est-truth) / truth; re > 0.3 {
		t.Fatalf("F2 estimate RE = %.3f (est %.4g truth %.4g)", re, est, truth)
	}
}

func TestFrequencyAndHeavyHitters(t *testing.T) {
	proto, _ := ldpjoin.NewProtocol(ldpjoin.Config{K: 9, M: 2048, Epsilon: 4, Seed: 21})
	data := dataset.Zipf(7, 150000, 2000, 1.5)
	sk := proto.BuildSketch(data, 23)
	truth := join.Frequencies(data)

	hh := sk.HeavyHitters(2000, 0.03)
	found := map[uint64]bool{}
	for _, d := range hh {
		found[d] = true
	}
	for d, c := range truth {
		share := float64(c) / 150000
		if share > 0.06 && !found[d] {
			t.Errorf("heavy hitter %d (share %.3f) missed", d, share)
		}
		if share < 0.005 && found[d] {
			t.Errorf("light value %d (share %.4f) reported heavy", d, share)
		}
	}

	// Mean and median estimators agree on the dominant value.
	var top uint64
	var max int64
	for d, c := range truth {
		if c > max {
			top, max = d, c
		}
	}
	mean, med := sk.Frequency(top), sk.FrequencyMedian(top)
	if math.Abs(mean-float64(max)) > 0.2*float64(max) || math.Abs(med-float64(max)) > 0.2*float64(max) {
		t.Fatalf("top-value estimates mean=%.0f median=%.0f truth=%d", mean, med, max)
	}
}

func TestJoinSizePlusFacade(t *testing.T) {
	da := dataset.Zipf(8, 150000, 5000, 1.2)
	db := dataset.Zipf(9, 150000, 5000, 1.2)
	truth := join.Size(da, db)
	cfg := ldpjoin.PlusConfig{
		Config:     ldpjoin.Config{K: 9, M: 1024, Epsilon: 4, Seed: 31},
		SampleRate: 0.2,
		Theta:      0.05,
	}
	if floor := cfg.ThetaFloor(len(da)); cfg.Theta < floor {
		t.Fatalf("test config below noise floor %g", floor)
	}
	res, err := ldpjoin.JoinSizePlus(da, db, 5000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(res.Estimate-truth) / truth; re > 0.4 {
		t.Fatalf("plus facade RE = %.3f", re)
	}
}

func TestJoinSizePlusErrors(t *testing.T) {
	good := ldpjoin.PlusConfig{Config: ldpjoin.DefaultConfig(), SampleRate: 0.2, Theta: 0.05}
	enough := make([]uint64, 100)
	tiny := []uint64{1}
	tests := []struct {
		name string
		a, b []uint64
		mut  func(*ldpjoin.PlusConfig)
		want string // substring the error must carry
	}{
		{"tiny left", tiny, enough, nil, "at least 10 users"},
		{"tiny right", enough, tiny, nil, "at least 10 users"},
		// The size check must win even when the config is also broken:
		// before the reorder this case reported "theta" and misdirected
		// the caller at their configuration instead of their data.
		{"tiny input with bad config", tiny, tiny,
			func(c *ldpjoin.PlusConfig) { c.Theta = 0 }, "at least 10 users"},
		{"zero depth", enough, enough,
			func(c *ldpjoin.PlusConfig) { c.K = 0 }, "depth K"},
		{"width not a power of two", enough, enough,
			func(c *ldpjoin.PlusConfig) { c.M = 1000 }, "power of two"},
		{"non-positive epsilon", enough, enough,
			func(c *ldpjoin.PlusConfig) { c.Epsilon = 0 }, "epsilon"},
		{"zero sample rate", enough, enough,
			func(c *ldpjoin.PlusConfig) { c.SampleRate = 0 }, "sample rate"},
		{"sample rate of one", enough, enough,
			func(c *ldpjoin.PlusConfig) { c.SampleRate = 1 }, "sample rate"},
		{"zero theta", enough, enough,
			func(c *ldpjoin.PlusConfig) { c.Theta = 0 }, "theta"},
		{"theta of one", enough, enough,
			func(c *ldpjoin.PlusConfig) { c.Theta = 1 }, "theta"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			_, err := ldpjoin.JoinSizePlus(tc.a, tc.b, 10, cfg)
			if err == nil {
				t.Fatal("invalid call accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The good config over enough users must pass the gate (and the
	// estimator itself must run).
	if _, err := ldpjoin.JoinSizePlus(enough, enough, 10, good); err != nil {
		t.Fatalf("valid call rejected: %v", err)
	}
}

func TestChainProtocolFacade(t *testing.T) {
	cfg := ldpjoin.Config{K: 9, M: 256, Epsilon: 6, Seed: 41}
	cp, err := ldpjoin.NewChainProtocol(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Attributes() != 2 {
		t.Fatalf("attrs = %d", cp.Attributes())
	}
	const n, domain = 60000, 300
	t1 := dataset.Zipf(51, n, domain, 1.5)
	t3 := dataset.Zipf(52, n, domain, 1.5)
	mid := join.PairTable{A: dataset.Zipf(53, n, domain, 1.5), B: dataset.Zipf(54, n, domain, 1.5)}
	truth := join.ChainSize(t1, []join.PairTable{mid}, t3)

	left, err := cp.BuildEnd(0, t1, 1)
	if err != nil {
		t.Fatal(err)
	}
	right, err := cp.BuildEnd(1, t3, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cp.BuildMid(0, mid.A, mid.B, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != n {
		t.Fatalf("mid N = %g", m.N())
	}
	est, err := cp.Estimate(left, []*ldpjoin.MatrixSketch{m}, right)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(est-truth) / truth; re > 0.6 {
		t.Fatalf("chain facade RE = %.3f (est %.4g truth %.4g)", re, est, truth)
	}
}

func TestChainProtocolErrors(t *testing.T) {
	cfg := ldpjoin.Config{K: 2, M: 64, Epsilon: 2, Seed: 1}
	if _, err := ldpjoin.NewChainProtocol(cfg, 1); err == nil {
		t.Fatal("1-attribute chain accepted")
	}
	bad := cfg
	bad.K = 0
	if _, err := ldpjoin.NewChainProtocol(bad, 2); err == nil {
		t.Fatal("bad config accepted")
	}
	cp, _ := ldpjoin.NewChainProtocol(cfg, 2)
	if _, err := cp.BuildEnd(5, []uint64{1}, 1); err == nil {
		t.Fatal("bad end attribute accepted")
	}
	if _, err := cp.BuildMid(3, []uint64{1}, []uint64{1}, 1); err == nil {
		t.Fatal("bad mid attribute accepted")
	}
	if _, err := cp.BuildMid(0, []uint64{1, 2}, []uint64{1}, 1); err == nil {
		t.Fatal("ragged mid table accepted")
	}
	left, _ := cp.BuildEnd(0, []uint64{1}, 1)
	right, _ := cp.BuildEnd(1, []uint64{1}, 2)
	if _, err := cp.Estimate(left, nil, right); err == nil {
		t.Fatal("wrong mid count accepted")
	}
}

func TestReportBitsAndSketchBytes(t *testing.T) {
	proto, _ := ldpjoin.NewProtocol(ldpjoin.DefaultConfig())
	if proto.ReportBits() != 1 {
		t.Fatalf("ReportBits = %d", proto.ReportBits())
	}
	if proto.SketchBytes() != 18*1024*8 {
		t.Fatalf("SketchBytes = %d", proto.SketchBytes())
	}
	if proto.Config().K != 18 {
		t.Fatalf("Config lost: %+v", proto.Config())
	}
}
