package sketch

import (
	"math"
	"testing"

	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
)

func TestSkimmedJoinBeatsPlainOnSkewedData(t *testing.T) {
	const n, domain = 100000, 5000
	da := zipfData(1, n, domain, 1.1)
	db := zipfData(2, n, domain, 1.1)
	truth := join.Size(da, db)

	// Small m so collisions hurt the plain sketch.
	const k, m = 5, 128
	var plainAE, skimmedAE float64
	const trials = 5
	for i := int64(0); i < trials; i++ {
		fam := hashing.NewFamily(10+i, k, m)
		pa := NewFastAGMS(fam)
		pa.UpdateAll(da)
		pb := NewFastAGMS(fam)
		pb.UpdateAll(db)
		plainAE += math.Abs(pa.InnerProduct(pb) - truth)

		sa := NewSkimmed(da, 0.01, fam)
		sb := NewSkimmed(db, 0.01, fam)
		skimmedAE += math.Abs(sa.JoinSize(sb) - truth)
	}
	if skimmedAE >= plainAE {
		t.Fatalf("skimmed AE %.3g not below plain fast-AGMS AE %.3g", skimmedAE/trials, plainAE/trials)
	}
	t.Logf("mean AE: plain %.3g, skimmed %.3g", plainAE/trials, skimmedAE/trials)
}

func TestSkimmedExactWhenEverythingHeavy(t *testing.T) {
	// With a threshold of 0 every value is exact, so the join is exact.
	data := []uint64{1, 1, 2, 3}
	other := []uint64{1, 2, 2, 4}
	fam := hashing.NewFamily(1, 3, 64)
	sa := NewSkimmed(data, 0, fam)
	sb := NewSkimmed(other, 0, fam)
	if got, want := sa.JoinSize(sb), join.Size(data, other); got != want {
		t.Fatalf("all-heavy join = %g, want %g", got, want)
	}
	if sa.HeavyCount() != 3 {
		t.Fatalf("heavy count = %d, want 3", sa.HeavyCount())
	}
}

func TestSkimmedAllLightEqualsPlainSketch(t *testing.T) {
	// With an impossible threshold nothing is skimmed: the estimate must
	// equal the plain fast-AGMS estimate over the same family.
	da := zipfData(3, 20000, 2000, 1.2)
	db := zipfData(4, 20000, 2000, 1.2)
	fam := hashing.NewFamily(5, 5, 256)
	sa := NewSkimmed(da, 2.0, fam)
	sb := NewSkimmed(db, 2.0, fam)
	pa := NewFastAGMS(fam)
	pa.UpdateAll(da)
	pb := NewFastAGMS(fam)
	pb.UpdateAll(db)
	if got, want := sa.JoinSize(sb), pa.InnerProduct(pb); got != want {
		t.Fatalf("all-light skimmed join = %g, plain = %g", got, want)
	}
	if sa.HeavyCount() != 0 {
		t.Fatalf("heavy count = %d, want 0", sa.HeavyCount())
	}
}
