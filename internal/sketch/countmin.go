package sketch

import (
	"math"

	"ldpjoin/internal/hashing"
)

// CountMin is the classic CountMin sketch: k rows of m counters, update
// adds 1 to one counter per row, the estimate is the row minimum (an
// overestimate with bounded error). It backs the non-private frequent-item
// tooling in cmd/ldpjoin and serves as a cross-check in tests.
type CountMin struct {
	fam   *hashing.Family
	rows  [][]float64
	count float64
}

// NewCountMin creates an empty CountMin sketch over the family (only the
// bucket halves of the pairs are used).
func NewCountMin(fam *hashing.Family) *CountMin {
	rows := make([][]float64, fam.K())
	for j := range rows {
		rows[j] = make([]float64, fam.M())
	}
	return &CountMin{fam: fam, rows: rows}
}

// Update adds one occurrence of d.
func (s *CountMin) Update(d uint64) {
	for j := range s.rows {
		s.rows[j][s.fam.Bucket(j, d)]++
	}
	s.count++
}

// UpdateAll adds every value in data.
func (s *CountMin) UpdateAll(data []uint64) {
	for _, d := range data {
		s.Update(d)
	}
}

// Count returns the number of values summarized.
func (s *CountMin) Count() float64 { return s.count }

// Estimate returns the CountMin frequency estimate of d (never below the
// true frequency).
func (s *CountMin) Estimate(d uint64) float64 {
	est := math.Inf(1)
	for j := range s.rows {
		if c := s.rows[j][s.fam.Bucket(j, d)]; c < est {
			est = c
		}
	}
	return est
}

// HeavyHitters returns the values in [0, domain) whose estimated frequency
// exceeds threshold.
func (s *CountMin) HeavyHitters(domain uint64, threshold float64) []uint64 {
	var out []uint64
	for d := uint64(0); d < domain; d++ {
		if s.Estimate(d) > threshold {
			out = append(out, d)
		}
	}
	return out
}
