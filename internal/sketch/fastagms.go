// Package sketch implements the non-private sketching substrates the paper
// builds on and compares against: the AGMS (tug-of-war) sketch, the
// fast-AGMS sketch ("FAGMS" in the figures), the CountMin sketch used for
// non-private frequent-item tooling, and the COMPASS multiway fast-AGMS
// sketches used as the non-private baseline for multi-way joins (§VI).
//
// All sketches are linear: Merge adds two sketches built over disjoint
// streams and equals the sketch of the concatenated stream. Counters are
// float64 — counts are integers well below 2^53, so arithmetic stays exact
// while allowing the same code paths to carry debiased (fractional)
// estimates.
package sketch

import (
	"fmt"
	"math"
	"sort"

	"ldpjoin/internal/hashing"
)

// FastAGMS is the fast-AGMS sketch of Cormode & Garofalakis: an array of
// k×m counters where row j updates the single counter h_j(d) by ξ_j(d).
// Two sketches built from the same hashing.Family estimate the join size
// of their streams via InnerProduct.
type FastAGMS struct {
	fam   *hashing.Family
	rows  [][]float64
	count float64 // F1: number of values summarized
}

// NewFastAGMS creates an empty sketch over the given family.
func NewFastAGMS(fam *hashing.Family) *FastAGMS {
	rows := make([][]float64, fam.K())
	for j := range rows {
		rows[j] = make([]float64, fam.M())
	}
	return &FastAGMS{fam: fam, rows: rows}
}

// Update adds one occurrence of d.
func (s *FastAGMS) Update(d uint64) {
	for j, row := range s.rows {
		row[s.fam.Bucket(j, d)] += float64(s.fam.Sign(j, d))
	}
	s.count++
}

// UpdateAll adds every value in data.
func (s *FastAGMS) UpdateAll(data []uint64) {
	for _, d := range data {
		s.Update(d)
	}
}

// K returns the number of rows.
func (s *FastAGMS) K() int { return len(s.rows) }

// M returns the number of counters per row.
func (s *FastAGMS) M() int { return s.fam.M() }

// Count returns the number of values summarized (F1).
func (s *FastAGMS) Count() float64 { return s.count }

// Row returns the j-th counter row (not a copy).
func (s *FastAGMS) Row(j int) []float64 { return s.rows[j] }

// Family returns the hash family the sketch was built with.
func (s *FastAGMS) Family() *hashing.Family { return s.fam }

// Merge adds other into s. Both must share the same family.
func (s *FastAGMS) Merge(other *FastAGMS) {
	if s.fam != other.fam {
		panic("sketch: merging FastAGMS sketches with different families")
	}
	for j := range s.rows {
		for x := range s.rows[j] {
			s.rows[j][x] += other.rows[j][x]
		}
	}
	s.count += other.count
}

// InnerProduct estimates the join size |A ⋈ B| between the streams behind
// s and other: the median over rows of the row inner products (Eq 1).
func (s *FastAGMS) InnerProduct(other *FastAGMS) float64 {
	if s.fam != other.fam {
		panic("sketch: inner product requires sketches over the same family")
	}
	ests := make([]float64, len(s.rows))
	for j := range s.rows {
		ests[j] = Dot(s.rows[j], other.rows[j])
	}
	return Median(ests)
}

// Frequency estimates the frequency of d as the median over rows of
// M[j, h_j(d)]·ξ_j(d) (the CountSketch estimator).
func (s *FastAGMS) Frequency(d uint64) float64 {
	ests := make([]float64, len(s.rows))
	for j := range s.rows {
		ests[j] = s.rows[j][s.fam.Bucket(j, d)] * float64(s.fam.Sign(j, d))
	}
	return Median(ests)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("sketch: dot of mismatched lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Median returns the median of v, averaging the middle pair for even
// lengths. v is not modified.
func Median(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	tmp := append([]float64(nil), v...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Mean returns the arithmetic mean of v.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
