package sketch

import "ldpjoin/internal/hashing"

// CompassMatrix is the two-dimensional fast-AGMS sketch COMPASS uses for a
// table with two join attributes (§VI, Fig 4): k replicas of an m1×m2
// counter matrix. For a tuple (a, b), replica j increments the counter at
// [hA_j(a), hB_j(b)] by ξA_j(a)·ξB_j(b). Chain queries are estimated by
// matrix-vector products along the join graph.
type CompassMatrix struct {
	famA *hashing.Family
	famB *hashing.Family
	mats [][]float64 // k matrices, each m1*m2 row-major
	m1   int
	m2   int
}

// NewCompassMatrix creates an empty 2-dim sketch. famA and famB must have
// equal K; their M values give the matrix dimensions.
func NewCompassMatrix(famA, famB *hashing.Family) *CompassMatrix {
	if famA.K() != famB.K() {
		panic("sketch: compass matrix requires equal K on both attributes")
	}
	k := famA.K()
	mats := make([][]float64, k)
	for j := range mats {
		mats[j] = make([]float64, famA.M()*famB.M())
	}
	return &CompassMatrix{famA: famA, famB: famB, mats: mats, m1: famA.M(), m2: famB.M()}
}

// Update adds one occurrence of the tuple (a, b).
func (c *CompassMatrix) Update(a, b uint64) {
	for j := range c.mats {
		ra := c.famA.Bucket(j, a)
		rb := c.famB.Bucket(j, b)
		c.mats[j][ra*c.m2+rb] += float64(c.famA.Sign(j, a) * c.famB.Sign(j, b))
	}
}

// UpdateAll adds every tuple; a and b must have equal length.
func (c *CompassMatrix) UpdateAll(a, b []uint64) {
	if len(a) != len(b) {
		panic("sketch: compass UpdateAll with mismatched columns")
	}
	for i := range a {
		c.Update(a[i], b[i])
	}
}

// K returns the number of replicas.
func (c *CompassMatrix) K() int { return len(c.mats) }

// Dims returns the (m1, m2) matrix dimensions.
func (c *CompassMatrix) Dims() (int, int) { return c.m1, c.m2 }

// Mat returns the j-th matrix, row-major (not a copy).
func (c *CompassMatrix) Mat(j int) []float64 { return c.mats[j] }

// VecMat returns v × M for the j-th matrix: out[y] = Σ_x v[x]·M[x,y].
func (c *CompassMatrix) VecMat(j int, v []float64) []float64 {
	if len(v) != c.m1 {
		panic("sketch: VecMat dimension mismatch")
	}
	out := make([]float64, c.m2)
	m := c.mats[j]
	for x := 0; x < c.m1; x++ {
		vx := v[x]
		if vx == 0 {
			continue
		}
		row := m[x*c.m2 : (x+1)*c.m2]
		for y, cell := range row {
			out[y] += vx * cell
		}
	}
	return out
}

// CompassCycle estimates the size of the 3-cycle join
// T1(A,B) ⋈ T2(B,C) ⋈ T3(C,A) from non-private COMPASS matrix sketches:
// per replica the trace of the sketch product, median over replicas.
// Adjacent sketches must share their attribute families around the
// cycle.
func CompassCycle(m1, m2, m3 *CompassMatrix) float64 {
	k := m1.K()
	if m2.K() != k || m3.K() != k {
		panic("sketch: cycle sketches disagree on K")
	}
	if m1.famB != m2.famA || m2.famB != m3.famA || m3.famB != m1.famA {
		panic("sketch: cycle sketches do not share attribute families")
	}
	mA, mB, mC := m1.m1, m1.m2, m2.m2
	ests := make([]float64, k)
	prod := make([]float64, mA*mC)
	for j := 0; j < k; j++ {
		for i := range prod {
			prod[i] = 0
		}
		a1, a2, a3 := m1.mats[j], m2.mats[j], m3.mats[j]
		for x := 0; x < mA; x++ {
			row1 := a1[x*mB : (x+1)*mB]
			out := prod[x*mC : (x+1)*mC]
			for y, v := range row1 {
				if v == 0 {
					continue
				}
				row2 := a2[y*mC : (y+1)*mC]
				for z, w := range row2 {
					out[z] += v * w
				}
			}
		}
		var tr float64
		for x := 0; x < mA; x++ {
			for z := 0; z < mC; z++ {
				tr += prod[x*mC+z] * a3[z*mA+x]
			}
		}
		ests[j] = tr
	}
	return Median(ests)
}

// CompassChain estimates the size of the chain join
// T_left(A0) ⋈ T_1(A0,A1) ⋈ ... ⋈ T_n(A_{n-1},A_n) ⋈ T_right(A_n)
// from the end-table vector sketches and the middle-table matrix sketches:
// the median over the k replicas of left_j × M1_j × ... × Mn_j × right_j.
// The end sketches must share K with every matrix and the hash families
// must chain consistently (left uses the same family as each matrix's A
// side, etc.); dimension mismatches panic.
func CompassChain(left *FastAGMS, mids []*CompassMatrix, right *FastAGMS) float64 {
	k := left.K()
	if right.K() != k {
		panic("sketch: chain ends disagree on K")
	}
	for _, m := range mids {
		if m.K() != k {
			panic("sketch: chain matrix disagrees on K")
		}
	}
	ests := make([]float64, k)
	for j := 0; j < k; j++ {
		v := left.Row(j)
		for _, m := range mids {
			v = m.VecMat(j, v)
		}
		ests[j] = Dot(v, right.Row(j))
	}
	return Median(ests)
}
