package sketch

import (
	"math"
	"testing"

	"ldpjoin/internal/join"
)

func TestAGMSJoinAccuracy(t *testing.T) {
	da := zipfData(1, 20000, 2000, 1.3)
	db := zipfData(2, 20000, 2000, 1.3)
	truth := join.Size(da, db)
	a := NewAGMS(10, 64, 5)
	b := NewAGMS(10, 64, 5)
	if !a.Compatible(b) {
		t.Fatal("same-seed AGMS sketches should be compatible")
	}
	a.UpdateAll(da)
	b.UpdateAll(db)
	est := a.InnerProduct(b)
	// AGMS variance is F2(A)F2(B)/s1; tolerance is loose but meaningful.
	if re := math.Abs(est-truth) / truth; re > 0.5 {
		t.Fatalf("AGMS RE = %.3f (est %.0f truth %.0f)", re, est, truth)
	}
}

func TestAGMSSelfJoinEstimatesF2(t *testing.T) {
	data := zipfData(3, 20000, 2000, 1.5)
	truth := join.F2(data)
	a := NewAGMS(4, 128, 5)
	a.UpdateAll(data)
	est := a.SelfJoin()
	if re := math.Abs(est-truth) / truth; re > 0.3 {
		t.Fatalf("AGMS self-join RE = %.3f (est %.0f truth %.0f)", re, est, truth)
	}
}

func TestAGMSUnbiasedOverSeeds(t *testing.T) {
	da := zipfData(4, 1000, 200, 1.2)
	db := zipfData(5, 1000, 200, 1.2)
	truth := join.Size(da, db)
	var sum float64
	const trials = 300
	for s := int64(0); s < trials; s++ {
		a := NewAGMS(1000+s, 1, 1)
		b := NewAGMS(1000+s, 1, 1)
		a.UpdateAll(da)
		b.UpdateAll(db)
		sum += a.InnerProduct(b)
	}
	mean := sum / trials
	// Single-counter estimators are noisy; the mean over 300 draws has
	// std ≈ F2-scale/sqrt(300). Accept 15%.
	if re := math.Abs(mean-truth) / truth; re > 0.15 {
		t.Fatalf("mean AGMS estimate %.0f vs truth %.0f (RE %.3f)", mean, truth, re)
	}
}

func TestAGMSIncompatibleSeeds(t *testing.T) {
	a := NewAGMS(1, 4, 2)
	b := NewAGMS(2, 4, 2)
	if a.Compatible(b) {
		t.Fatal("different seeds should be incompatible")
	}
}

func TestAGMSPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dims")
		}
	}()
	NewAGMS(1, 0, 1)
}

func TestAGMSInnerProductPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched dims")
		}
	}()
	NewAGMS(1, 2, 2).InnerProduct(NewAGMS(1, 2, 3))
}
