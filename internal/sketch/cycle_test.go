package sketch

import (
	"math"
	"testing"

	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
)

func TestCompassCycleAccuracy(t *testing.T) {
	const n, domain = 30000, 80
	t1 := join.PairTable{A: zipfData(1, n, domain, 1.3), B: zipfData(2, n, domain, 1.3)}
	t2 := join.PairTable{A: zipfData(3, n, domain, 1.3), B: zipfData(4, n, domain, 1.3)}
	t3 := join.PairTable{A: zipfData(5, n, domain, 1.3), B: zipfData(6, n, domain, 1.3)}
	truth := join.CycleSize(t1, t2, t3)
	if truth <= 0 {
		t.Fatal("degenerate fixture")
	}
	const k, m = 7, 128
	famA := hashing.NewFamily(10, k, m)
	famB := hashing.NewFamily(11, k, m)
	famC := hashing.NewFamily(12, k, m)
	m1 := NewCompassMatrix(famA, famB)
	m1.UpdateAll(t1.A, t1.B)
	m2 := NewCompassMatrix(famB, famC)
	m2.UpdateAll(t2.A, t2.B)
	m3 := NewCompassMatrix(famC, famA)
	m3.UpdateAll(t3.A, t3.B)
	est := CompassCycle(m1, m2, m3)
	if re := math.Abs(est-truth) / truth; re > 0.35 {
		t.Fatalf("cycle RE = %.3f (est %.4g truth %.4g)", re, est, truth)
	}
}

func TestCompassCyclePanics(t *testing.T) {
	const k, m = 2, 16
	famA := hashing.NewFamily(1, k, m)
	famB := hashing.NewFamily(2, k, m)
	famC := hashing.NewFamily(3, k, m)
	m1 := NewCompassMatrix(famA, famB)
	m2 := NewCompassMatrix(famB, famC)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for broken family cycle")
			}
		}()
		CompassCycle(m1, m2, NewCompassMatrix(famC, famB))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for K mismatch")
			}
		}()
		famC3 := hashing.NewFamily(3, 3, m)
		famA3 := hashing.NewFamily(1, 3, m)
		CompassCycle(m1, m2, NewCompassMatrix(famC3, famA3))
	}()
}

func TestFastAGMSAccessors(t *testing.T) {
	fam := hashing.NewFamily(1, 4, 64)
	s := NewFastAGMS(fam)
	if s.M() != 64 || s.Family() != fam || s.K() != 4 {
		t.Fatalf("accessors wrong: M=%d K=%d", s.M(), s.K())
	}
}

func TestCompassVecMatPanics(t *testing.T) {
	famA := hashing.NewFamily(1, 2, 8)
	famB := hashing.NewFamily(2, 2, 8)
	c := NewCompassMatrix(famA, famB)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.VecMat(0, make([]float64, 9))
}
