package sketch

import (
	"math"
	"math/rand"
	"testing"

	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
)

// chainFixture builds a 3-way chain T1(A) ⋈ T2(A,B) ⋈ T3(B) with Zipf
// columns.
func chainFixture(seed int64, n int, domain uint64) (t1 []uint64, t2 join.PairTable, t3 []uint64) {
	t1 = zipfData(seed, n, domain, 1.2)
	t3 = zipfData(seed+1, n, domain, 1.2)
	rng := rand.New(rand.NewSource(seed + 2))
	za := rand.NewZipf(rng, 1.2, 1, domain-1)
	zb := rand.NewZipf(rng, 1.2, 1, domain-1)
	t2.A = make([]uint64, n)
	t2.B = make([]uint64, n)
	for i := 0; i < n; i++ {
		t2.A[i] = za.Uint64()
		t2.B[i] = zb.Uint64()
	}
	return
}

func TestCompassChain3Way(t *testing.T) {
	const n, domain = 20000, 500
	t1, t2, t3 := chainFixture(1, n, domain)
	truth := join.ChainSize(t1, []join.PairTable{t2}, t3)

	famA := hashing.NewFamily(10, 7, 512)
	famB := hashing.NewFamily(11, 7, 512)
	s1 := NewFastAGMS(famA)
	s1.UpdateAll(t1)
	s3 := NewFastAGMS(famB)
	s3.UpdateAll(t3)
	m2 := NewCompassMatrix(famA, famB)
	m2.UpdateAll(t2.A, t2.B)

	est := CompassChain(s1, []*CompassMatrix{m2}, s3)
	if re := math.Abs(est-truth) / truth; re > 0.15 {
		t.Fatalf("3-way COMPASS RE = %.3f (est %.0f truth %.0f)", re, est, truth)
	}
}

func TestCompassChain4Way(t *testing.T) {
	const n, domain = 15000, 300
	t1, t2, t4 := chainFixture(3, n, domain)
	// Third table T3(B,C).
	rng := rand.New(rand.NewSource(99))
	zb := rand.NewZipf(rng, 1.2, 1, domain-1)
	zc := rand.NewZipf(rng, 1.2, 1, domain-1)
	t3 := join.PairTable{A: make([]uint64, n), B: make([]uint64, n)}
	for i := 0; i < n; i++ {
		t3.A[i] = zb.Uint64()
		t3.B[i] = zc.Uint64()
	}
	truth := join.ChainSize(t1, []join.PairTable{t2, t3}, t4)

	famA := hashing.NewFamily(20, 7, 256)
	famB := hashing.NewFamily(21, 7, 256)
	famC := hashing.NewFamily(22, 7, 256)
	s1 := NewFastAGMS(famA)
	s1.UpdateAll(t1)
	s4 := NewFastAGMS(famC)
	s4.UpdateAll(t4)
	m2 := NewCompassMatrix(famA, famB)
	m2.UpdateAll(t2.A, t2.B)
	m3 := NewCompassMatrix(famB, famC)
	m3.UpdateAll(t3.A, t3.B)

	est := CompassChain(s1, []*CompassMatrix{m2, m3}, s4)
	if truth == 0 {
		t.Fatal("fixture produced empty chain join")
	}
	if re := math.Abs(est-truth) / truth; re > 0.3 {
		t.Fatalf("4-way COMPASS RE = %.3f (est %.0f truth %.0f)", re, est, truth)
	}
}

func TestCompassMatrixSingleton(t *testing.T) {
	famA := hashing.NewFamily(1, 3, 16)
	famB := hashing.NewFamily(2, 3, 16)
	m := NewCompassMatrix(famA, famB)
	m.Update(5, 9)
	k := m.K()
	if k != 3 {
		t.Fatalf("K = %d, want 3", k)
	}
	m1, m2 := m.Dims()
	if m1 != 16 || m2 != 16 {
		t.Fatalf("dims = (%d,%d), want (16,16)", m1, m2)
	}
	for j := 0; j < k; j++ {
		ra, rb := famA.Bucket(j, 5), famB.Bucket(j, 9)
		want := float64(famA.Sign(j, 5) * famB.Sign(j, 9))
		if got := m.Mat(j)[ra*16+rb]; got != want {
			t.Fatalf("replica %d cell = %g, want %g", j, got, want)
		}
	}
}

func TestCompassChainExactWhenNoCollisions(t *testing.T) {
	// Tiny distinct values, huge m: no hash collisions, so the chain
	// estimate is exact.
	famA := hashing.NewFamily(5, 3, 4096)
	famB := hashing.NewFamily(6, 3, 4096)
	t1 := []uint64{1, 1, 2}
	t2 := join.PairTable{A: []uint64{1, 2, 3}, B: []uint64{4, 5, 4}}
	t3 := []uint64{4, 4, 5}
	truth := join.ChainSize(t1, []join.PairTable{t2}, t3)
	s1 := NewFastAGMS(famA)
	s1.UpdateAll(t1)
	s3 := NewFastAGMS(famB)
	s3.UpdateAll(t3)
	m2 := NewCompassMatrix(famA, famB)
	m2.UpdateAll(t2.A, t2.B)
	est := CompassChain(s1, []*CompassMatrix{m2}, s3)
	if math.Abs(est-truth) > 1e-9 {
		t.Fatalf("collision-free chain = %g, want exact %g", est, truth)
	}
}

func TestCompassPanics(t *testing.T) {
	famA := hashing.NewFamily(1, 2, 16)
	famB := hashing.NewFamily(2, 3, 16)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on K mismatch in NewCompassMatrix")
			}
		}()
		NewCompassMatrix(famA, famB)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on UpdateAll length mismatch")
			}
		}()
		famB2 := hashing.NewFamily(2, 2, 16)
		NewCompassMatrix(famA, famB2).UpdateAll([]uint64{1}, []uint64{1, 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on chain K mismatch")
			}
		}()
		famB2 := hashing.NewFamily(2, 2, 16)
		left := NewFastAGMS(famA)
		right := NewFastAGMS(hashing.NewFamily(3, 3, 16))
		CompassChain(left, []*CompassMatrix{NewCompassMatrix(famA, famB2)}, right)
	}()
}
