package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
)

func zipfData(seed int64, n int, domain uint64, s float64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, domain-1)
	out := make([]uint64, n)
	for i := range out {
		out[i] = z.Uint64()
	}
	return out
}

func TestFastAGMSExactOnSingleton(t *testing.T) {
	fam := hashing.NewFamily(1, 5, 64)
	a := NewFastAGMS(fam)
	b := NewFastAGMS(fam)
	for i := 0; i < 10; i++ {
		a.Update(42)
	}
	for i := 0; i < 7; i++ {
		b.Update(42)
	}
	// With a single distinct value there are no collisions: every row's
	// inner product is exactly 10*7.
	if got := a.InnerProduct(b); got != 70 {
		t.Fatalf("singleton inner product = %g, want 70", got)
	}
	if got := a.Frequency(42); got != 10 {
		t.Fatalf("singleton frequency = %g, want 10", got)
	}
}

func TestFastAGMSJoinAccuracy(t *testing.T) {
	fam := hashing.NewFamily(7, 7, 2048)
	da := zipfData(1, 50000, 10000, 1.3)
	db := zipfData(2, 50000, 10000, 1.3)
	sa := NewFastAGMS(fam)
	sa.UpdateAll(da)
	sb := NewFastAGMS(fam)
	sb.UpdateAll(db)
	truth := join.Size(da, db)
	est := sa.InnerProduct(sb)
	if re := math.Abs(est-truth) / truth; re > 0.05 {
		t.Fatalf("fast-AGMS RE = %.3f (est %.0f truth %.0f), want < 0.05", re, est, truth)
	}
}

func TestFastAGMSUnbiasedOverSeeds(t *testing.T) {
	// Average the row-0 estimator over many independent families: it must
	// converge on the true join size (Thm 3's non-private ancestor).
	da := zipfData(3, 2000, 500, 1.2)
	db := zipfData(4, 2000, 500, 1.2)
	truth := join.Size(da, db)
	const trials = 200
	var sum float64
	for s := int64(0); s < trials; s++ {
		fam := hashing.NewFamily(100+s, 1, 256)
		sa := NewFastAGMS(fam)
		sa.UpdateAll(da)
		sb := NewFastAGMS(fam)
		sb.UpdateAll(db)
		sum += Dot(sa.Row(0), sb.Row(0))
	}
	mean := sum / trials
	if re := math.Abs(mean-truth) / truth; re > 0.05 {
		t.Fatalf("mean of row estimators %.0f deviates from truth %.0f (RE %.3f)", mean, truth, re)
	}
}

func TestFastAGMSFrequencySingleHeavyItem(t *testing.T) {
	fam := hashing.NewFamily(11, 9, 1024)
	s := NewFastAGMS(fam)
	data := zipfData(5, 20000, 5000, 1.5)
	s.UpdateAll(data)
	truth := join.Frequencies(data)
	// The most frequent item should be estimated within CountSketch noise
	// ~ sqrt(F2/m).
	var heavy uint64
	var max int64
	for d, c := range truth {
		if c > max {
			heavy, max = d, c
		}
	}
	est := s.Frequency(heavy)
	slack := 4 * math.Sqrt(join.F2(data)/float64(fam.M()))
	if math.Abs(est-float64(max)) > slack {
		t.Fatalf("heavy item freq est %.0f vs truth %d exceeds slack %.0f", est, max, slack)
	}
}

func TestFastAGMSMergeEqualsConcatenation(t *testing.T) {
	fam := hashing.NewFamily(21, 4, 256)
	da := zipfData(6, 3000, 1000, 1.1)
	db := zipfData(7, 3000, 1000, 1.1)
	whole := NewFastAGMS(fam)
	whole.UpdateAll(da)
	whole.UpdateAll(db)
	part1 := NewFastAGMS(fam)
	part1.UpdateAll(da)
	part2 := NewFastAGMS(fam)
	part2.UpdateAll(db)
	part1.Merge(part2)
	if part1.Count() != whole.Count() {
		t.Fatalf("merge count %g != %g", part1.Count(), whole.Count())
	}
	for j := 0; j < fam.K(); j++ {
		for x := 0; x < fam.M(); x++ {
			if part1.Row(j)[x] != whole.Row(j)[x] {
				t.Fatalf("merge differs at [%d,%d]", j, x)
			}
		}
	}
}

func TestFastAGMSMergePanicsOnDifferentFamilies(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic merging different families")
		}
	}()
	a := NewFastAGMS(hashing.NewFamily(1, 2, 16))
	b := NewFastAGMS(hashing.NewFamily(2, 2, 16))
	a.Merge(b)
}

func TestInnerProductPanicsOnDifferentFamilies(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on family mismatch")
		}
	}()
	a := NewFastAGMS(hashing.NewFamily(1, 2, 16))
	b := NewFastAGMS(hashing.NewFamily(2, 2, 16))
	a.InnerProduct(b)
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 2, 3}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-5, 10, 0}, 0},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %g, want %g", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Median(v)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestMedianPermutationInvariant(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		m1 := Median([]float64{a, b, c, d})
		m2 := Median([]float64{d, c, b, a})
		return m1 == m2 || (math.IsNaN(m1) && math.IsNaN(m2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndDot(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Fatalf("Dot = %g, want 11", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func BenchmarkFastAGMSUpdate(b *testing.B) {
	fam := hashing.NewFamily(1, 18, 1024)
	s := NewFastAGMS(fam)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i))
	}
}

func BenchmarkFastAGMSInnerProduct(b *testing.B) {
	fam := hashing.NewFamily(1, 18, 1024)
	sa := NewFastAGMS(fam)
	sb := NewFastAGMS(fam)
	sa.UpdateAll(zipfData(1, 10000, 1000, 1.2))
	sb.UpdateAll(zipfData(2, 10000, 1000, 1.2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sa.InnerProduct(sb)
	}
}
