package sketch

import "ldpjoin/internal/hashing"

// AGMS is the original tug-of-war sketch (§III-A): s1×s2 atomic counters,
// each with its own 4-wise independent sign hash, and every update touches
// every counter. The estimate averages s1 atomic products (variance
// reduction) and takes the median of s2 averages (confidence boosting).
// It is quadratically slower to build than FastAGMS and exists as the
// preliminary substrate and a sanity anchor for tests.
type AGMS struct {
	signs []hashing.Pair
	cnt   []float64
	s1    int
	s2    int
}

// NewAGMS creates an s1×s2 AGMS sketch seeded deterministically.
func NewAGMS(seed int64, s1, s2 int) *AGMS {
	if s1 <= 0 || s2 <= 0 {
		panic("sketch: AGMS dimensions must be positive")
	}
	state := uint64(seed) ^ 0xA5A5A5A5DEADBEEF
	signs := make([]hashing.Pair, s1*s2)
	for i := range signs {
		signs[i] = hashing.NewPair(&state, 1)
	}
	return &AGMS{signs: signs, cnt: make([]float64, s1*s2), s1: s1, s2: s2}
}

// Compatible reports whether two AGMS sketches share dimensions and were
// seeded identically (a necessary condition for inner products). It is a
// heuristic check: it compares the sign of a probe value per counter.
func (a *AGMS) Compatible(b *AGMS) bool {
	if a.s1 != b.s1 || a.s2 != b.s2 {
		return false
	}
	for i := range a.signs {
		for _, probe := range []uint64{0, 1, 12345} {
			if a.signs[i].Sign(probe) != b.signs[i].Sign(probe) {
				return false
			}
		}
	}
	return true
}

// Update adds one occurrence of d to every counter.
func (a *AGMS) Update(d uint64) {
	for i := range a.cnt {
		a.cnt[i] += float64(a.signs[i].Sign(d))
	}
}

// UpdateAll adds every value in data.
func (a *AGMS) UpdateAll(data []uint64) {
	for _, d := range data {
		a.Update(d)
	}
}

// InnerProduct estimates the join size between the streams behind a and b:
// median over s2 groups of the mean over s1 atomic counter products.
func (a *AGMS) InnerProduct(b *AGMS) float64 {
	if a.s1 != b.s1 || a.s2 != b.s2 {
		panic("sketch: AGMS inner product with mismatched dimensions")
	}
	groups := make([]float64, a.s2)
	for g := 0; g < a.s2; g++ {
		var sum float64
		for i := 0; i < a.s1; i++ {
			idx := g*a.s1 + i
			sum += a.cnt[idx] * b.cnt[idx]
		}
		groups[g] = sum / float64(a.s1)
	}
	return Median(groups)
}

// SelfJoin estimates the second frequency moment F2 of the stream.
func (a *AGMS) SelfJoin() float64 {
	groups := make([]float64, a.s2)
	for g := 0; g < a.s2; g++ {
		var sum float64
		for i := 0; i < a.s1; i++ {
			idx := g*a.s1 + i
			sum += a.cnt[idx] * a.cnt[idx]
		}
		groups[g] = sum / float64(a.s1)
	}
	return Median(groups)
}
