package sketch

import (
	"testing"

	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
)

func TestCountMinNeverUnderestimates(t *testing.T) {
	fam := hashing.NewFamily(1, 5, 512)
	s := NewCountMin(fam)
	data := zipfData(1, 20000, 3000, 1.2)
	s.UpdateAll(data)
	truth := join.Frequencies(data)
	for d, c := range truth {
		if est := s.Estimate(d); est < float64(c) {
			t.Fatalf("CountMin underestimated %d: %g < %d", d, est, c)
		}
	}
	if s.Count() != 20000 {
		t.Fatalf("count = %g, want 20000", s.Count())
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// Estimate error is at most 2n/m with probability 1-2^-k per item;
	// check no item breaks 6n/m (wildly conservative, catches real bugs).
	fam := hashing.NewFamily(2, 6, 1024)
	s := NewCountMin(fam)
	data := zipfData(2, 30000, 2000, 1.1)
	s.UpdateAll(data)
	truth := join.Frequencies(data)
	bound := 6 * float64(len(data)) / float64(fam.M())
	for d, c := range truth {
		if err := s.Estimate(d) - float64(c); err > bound {
			t.Fatalf("CountMin error %g for %d exceeds bound %g", err, d, bound)
		}
	}
}

func TestCountMinHeavyHitters(t *testing.T) {
	fam := hashing.NewFamily(3, 5, 1024)
	s := NewCountMin(fam)
	// One heavy item among uniform noise.
	data := make([]uint64, 0, 6000)
	for i := 0; i < 1000; i++ {
		data = append(data, 7)
	}
	for i := 0; i < 5000; i++ {
		data = append(data, uint64(100+i%500))
	}
	s.UpdateAll(data)
	hh := s.HeavyHitters(1000, 500)
	if len(hh) != 1 || hh[0] != 7 {
		t.Fatalf("heavy hitters = %v, want [7]", hh)
	}
}
