package sketch

import (
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
)

// Skimmed implements the non-private skimmed-sketch strategy (Ganguly,
// Garofalakis & Rastogi, EDBT 2004 — the prior work whose high/low
// separation idea LDPJoinSketch+ ports to the LDP setting): exact
// frequencies are "skimmed" off for values above a threshold, the
// residual (low-frequency) stream goes into a fast-AGMS sketch, and the
// join size is the sum of the heavy⋈heavy exact product, the two
// heavy⋈light cross terms (heavy frequencies times estimated light
// frequencies), and the light⋈light sketch product.
//
// It exists as the non-private anchor for the separation idea: ablation
// benches compare how much of its gain survives the LDP noise.
type Skimmed struct {
	heavy    map[uint64]float64
	residual *FastAGMS
	count    float64
}

// NewSkimmed builds the summary for data: values with frequency above
// share·len(data) are kept exactly, the rest go into a fast-AGMS sketch
// over fam. Two summaries can be joined when built over the same family.
func NewSkimmed(data []uint64, share float64, fam *hashing.Family) *Skimmed {
	s := &Skimmed{heavy: make(map[uint64]float64), residual: NewFastAGMS(fam)}
	threshold := share * float64(len(data))
	freqs := join.Frequencies(data)
	for d, c := range freqs {
		if float64(c) > threshold {
			s.heavy[d] = float64(c)
		}
	}
	for _, d := range data {
		if _, ok := s.heavy[d]; !ok {
			s.residual.Update(d)
		}
	}
	s.count = float64(len(data))
	return s
}

// HeavyCount returns the number of skimmed (exact) values.
func (s *Skimmed) HeavyCount() int { return len(s.heavy) }

// JoinSize estimates the join size against another Skimmed summary built
// over the same residual-sketch family.
func (s *Skimmed) JoinSize(o *Skimmed) float64 {
	// heavy ⋈ heavy: exact.
	var est float64
	for d, fa := range s.heavy {
		if fb, ok := o.heavy[d]; ok {
			est += fa * fb
		}
	}
	// heavy(self) ⋈ light(other) and vice versa: exact frequency times
	// the sketch's estimate of the other side's light frequency.
	for d, fa := range s.heavy {
		if _, ok := o.heavy[d]; !ok {
			est += fa * o.residual.Frequency(d)
		}
	}
	for d, fb := range o.heavy {
		if _, ok := s.heavy[d]; !ok {
			est += fb * s.residual.Frequency(d)
		}
	}
	// light ⋈ light: sketch product.
	est += s.residual.InnerProduct(o.residual)
	return est
}
