package store

import (
	"time"
)

// Checkpointer is the background checkpoint policy loop: a single
// goroutine that periodically scans the per-column
// bytes-since-checkpoint trackers and invokes the service-provided run
// callback for each column that is due. The policy lives in the store —
// it owns the WAL byte accounting — but the capture itself must go
// through the service, which owns the only path that can quiesce a
// column's in-memory aggregation (the per-column checkpoint gate), so
// the two halves meet at the callback.
type Checkpointer struct {
	st   *Store
	run  func(name string) error
	tick time.Duration
	stop chan struct{}
	done chan struct{}
}

// StartCheckpointer launches the background checkpoint loop, returning
// nil when both triggers are disabled (the pre-checkpointer behavior:
// checkpoints only at shutdown). run is called sequentially, one due
// column at a time, and must capture the column's state and call
// SaveCheckpoint / SaveCheckpointPlus; errors are counted in Stats and
// retried on the next tick, because the bytes tracker is only reset by
// a successful save.
func (st *Store) StartCheckpointer(run func(name string) error) *Checkpointer {
	if st.opts.CheckpointBytes <= 0 && st.opts.CheckpointInterval <= 0 {
		return nil
	}
	c := &Checkpointer{
		st:   st,
		run:  run,
		tick: st.opts.CheckpointTick,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go c.loop()
	return c
}

// Stop halts the loop and waits for an in-flight checkpoint to finish.
// Safe to call on a nil Checkpointer (triggers disabled) and idempotent
// is not required — the service stops it exactly once, in Shutdown,
// before draining the engine.
func (c *Checkpointer) Stop() {
	if c == nil {
		return
	}
	close(c.stop)
	<-c.done
}

func (c *Checkpointer) loop() {
	defer close(c.done)
	ticker := time.NewTicker(c.tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		for _, name := range c.st.checkpointCandidates() {
			select {
			case <-c.stop:
				return
			default:
			}
			start := time.Now()
			err := c.run(name)
			c.st.noteCheckpointRun(time.Since(start), err)
		}
	}
}

// checkpointCandidates returns the collecting columns whose
// un-checkpointed WAL bytes satisfy a trigger: the bytes threshold, or
// the interval elapsed with any pending bytes at all. Finalized columns
// never qualify — their tracker is dropped when finalization lands, and
// the meta check covers the race where it has not yet.
func (st *Store) checkpointCandidates() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	var due []string
	now := time.Now()
	for name, t := range st.ckpt {
		if t.bytes <= 0 {
			continue
		}
		if meta, ok := st.man.Columns[name]; !ok || meta.Finalized {
			continue
		}
		byBytes := st.opts.CheckpointBytes > 0 && t.bytes >= st.opts.CheckpointBytes
		byTime := st.opts.CheckpointInterval > 0 && now.Sub(t.last) >= st.opts.CheckpointInterval
		if byBytes || byTime {
			due = append(due, name)
		}
	}
	return due
}

// noteCheckpointRun records one background checkpoint attempt's timing
// or failure. A run that aborted benignly (column finalized or store
// closed underneath it) reports nil, so only real failures count.
func (st *Store) noteCheckpointRun(took time.Duration, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err != nil {
		st.stats.CheckpointErrors++
		return
	}
	st.stats.LastCheckpointNanos = int64(took)
}
