//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package store

import (
	"strings"
	"testing"
)

func TestStoreLockExcludesSecondProcess(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := Open(dir, testParams, testSeed, Options{}); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second open of a held store: got %v, want lock refusal", err)
	}
	st.Close()
	// Close releases the flock, so a successor process can take over.
	st2 := open(t, dir, Options{})
	st2.Close()
}
