package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
)

var testParams = core.Params{K: 5, M: 64, Epsilon: 4}

const testSeed = 42

// replayLog collects every Replayer callback in order for assertions.
type replayLog struct {
	finalized     map[string]*protocol.Snapshot
	checkpoints   map[string]*protocol.Snapshot
	reports       map[string][]core.Report
	matrixReports map[string][]core.MatrixReport
	merges        map[string][]*protocol.Snapshot
	infos         map[string]ColumnInfo
}

func newReplayLog() *replayLog {
	return &replayLog{
		finalized:     make(map[string]*protocol.Snapshot),
		checkpoints:   make(map[string]*protocol.Snapshot),
		reports:       make(map[string][]core.Report),
		matrixReports: make(map[string][]core.MatrixReport),
		merges:        make(map[string][]*protocol.Snapshot),
		infos:         make(map[string]ColumnInfo),
	}
}

func (r *replayLog) RecoverFinalized(col ColumnInfo, snap *protocol.Snapshot) error {
	r.infos[col.Name] = col
	r.finalized[col.Name] = snap
	return nil
}

func (r *replayLog) RecoverCheckpoint(col ColumnInfo, snap *protocol.Snapshot) error {
	r.infos[col.Name] = col
	r.checkpoints[col.Name] = snap
	return nil
}

func (r *replayLog) RecoverReports(col ColumnInfo, reports []core.Report) error {
	r.infos[col.Name] = col
	r.reports[col.Name] = append(r.reports[col.Name], reports...)
	return nil
}

func (r *replayLog) RecoverMatrixReports(col ColumnInfo, reports []core.MatrixReport) error {
	r.infos[col.Name] = col
	r.matrixReports[col.Name] = append(r.matrixReports[col.Name], reports...)
	return nil
}

func (r *replayLog) RecoverMerge(col ColumnInfo, snap *protocol.Snapshot) error {
	r.infos[col.Name] = col
	r.merges[col.Name] = append(r.merges[col.Name], snap)
	return nil
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, testParams, testSeed, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func testReports(seed int64, n int) []core.Report {
	rng := rand.New(rand.NewSource(seed))
	fam := testParams.NewFamily(testSeed)
	out := make([]core.Report, n)
	for i := range out {
		out[i] = core.Perturb(rng.Uint64()%100, testParams, fam, rng)
	}
	return out
}

func testSnapshot(t *testing.T, seed int64, n int) *protocol.Snapshot {
	t.Helper()
	agg := core.NewAggregator(testParams, testParams.NewFamily(testSeed))
	for _, r := range testReports(seed, n) {
		agg.Add(r)
	}
	return protocol.SnapshotOfAggregator(agg)
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	repA := testReports(1, 300)
	repB := testReports(2, 100)
	if err := st.AppendReports("a", 0, [][]core.Report{repA[:120], repA[120:]}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReports("b", 0, [][]core.Report{repB}); err != nil {
		t.Fatal(err)
	}
	snap := testSnapshot(t, 3, 50)
	enc, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendMerge("a", protocol.KindJoin, 0, enc); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Appends != 3 || s.Bytes == 0 {
		t.Fatalf("stats = %+v, want 3 appends and nonzero bytes", s)
	}
	st.Close()

	st2 := open(t, dir, Options{})
	got := newReplayLog()
	stats, err := st2.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Columns != 2 || stats.Reports != 400 || stats.Merges != 1 || stats.TruncatedTails != 0 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	if len(got.reports["a"]) != 300 || len(got.reports["b"]) != 100 {
		t.Fatalf("replayed %d/%d reports, want 300/100", len(got.reports["a"]), len(got.reports["b"]))
	}
	for i, r := range got.reports["a"] {
		if r != repA[i] {
			t.Fatalf("report %d of a: %v, want %v", i, r, repA[i])
		}
	}
	if len(got.merges["a"]) != 1 || got.merges["a"][0].N != snap.N {
		t.Fatalf("merge replay = %+v", got.merges["a"])
	}
}

func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	rep := testReports(1, 200)
	if err := st.AppendReports("a", 0, [][]core.Report{rep[:100]}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReports("a", 0, [][]core.Report{rep[100:]}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Tear the second record: cut the segment mid-payload, as a crash
	// between write and sync would.
	seg := findOne(t, dir, segSuffix)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-37); err != nil {
		t.Fatal(err)
	}

	st2 := open(t, dir, Options{})
	got := newReplayLog()
	stats, err := st2.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TruncatedTails != 1 || len(got.reports["a"]) != 100 {
		t.Fatalf("stats = %+v, %d reports; want 1 truncated tail, 100 reports", stats, len(got.reports["a"]))
	}
	st2.Close()

	// The tear was cut, so a third recovery sees a clean log.
	st3 := open(t, dir, Options{})
	stats, err = st3.Recover(newReplayLog())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TruncatedTails != 0 || stats.Reports != 100 {
		t.Fatalf("post-truncation stats = %+v", stats)
	}
}

func TestStoreCorruptionMidLogFails(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force every append into its own segment, so damage
	// in the first one is mid-log, not a torn tail.
	st := open(t, dir, Options{SegmentBytes: 1})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := st.AppendReports("a", 0, [][]core.Report{testReports(i, 10)}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	segs := findAll(t, dir, segSuffix)
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := open(t, dir, Options{SegmentBytes: 1})
	if _, err := st2.Recover(newReplayLog()); !errors.Is(err, protocol.ErrBadRecord) {
		t.Fatalf("mid-log corruption: got %v, want ErrBadRecord", err)
	}
}

func TestStoreCheckpointCoversSegments(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	rep := testReports(1, 150)
	if err := st.AppendReports("a", 0, [][]core.Report{rep}); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint("a", 0, testSnapshot(t, 1, 150)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReports("a", 0, [][]core.Report{rep}); !errors.Is(err, ErrColumnFinalized) {
		t.Fatalf("append after checkpoint: got %v, want ErrColumnFinalized", err)
	}
	if segs := findAll(t, dir, segSuffix); len(segs) != 0 {
		t.Fatalf("segments not retired by checkpoint: %v", segs)
	}
	st.Close()

	// Reopen: the checkpoint restores, then new appends land in fresh
	// segments replayed on the next recovery.
	st2 := open(t, dir, Options{})
	got := newReplayLog()
	stats, err := st2.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints != 1 || stats.Reports != 0 {
		t.Fatalf("stats = %+v, want one checkpoint and no WAL reports", stats)
	}
	if got.checkpoints["a"] == nil || got.checkpoints["a"].N != 150 {
		t.Fatalf("checkpoint replay = %+v", got.checkpoints["a"])
	}
	more := testReports(2, 60)
	if err := st2.AppendReports("a", 0, [][]core.Report{more}); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3 := open(t, dir, Options{})
	got = newReplayLog()
	stats, err = st3.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints != 1 || stats.Reports != 60 {
		t.Fatalf("checkpoint+WAL stats = %+v", stats)
	}
}

func TestStoreFinalizeRetiresLog(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReports("a", 0, [][]core.Report{testReports(1, 80)}); err != nil {
		t.Fatal(err)
	}
	agg := core.NewAggregator(testParams, testParams.NewFamily(testSeed))
	for _, r := range testReports(1, 80) {
		agg.Add(r)
	}
	final := protocol.SnapshotOfSketch(agg.Finalize())
	if err := st.Finalize("a", 0, final); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReports("a", 0, [][]core.Report{testReports(2, 5)}); !errors.Is(err, ErrColumnFinalized) {
		t.Fatalf("append after finalize: got %v, want ErrColumnFinalized", err)
	}
	if segs := findAll(t, dir, segSuffix); len(segs) != 0 {
		t.Fatalf("segments not retired by finalize: %v", segs)
	}
	st.Close()

	st2 := open(t, dir, Options{})
	got := newReplayLog()
	stats, err := st2.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalizedColumns != 1 || stats.Columns != 0 {
		t.Fatalf("stats = %+v, want exactly one finalized column", stats)
	}
	snap := got.finalized["a"]
	if snap == nil || !snap.Finalized || snap.N != 80 {
		t.Fatalf("finalized replay = %+v", snap)
	}
	reenc, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	want, err := protocol.EncodeSnapshot(final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, want) {
		t.Fatal("recovered finalized snapshot is not byte-identical")
	}
}

func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{SegmentBytes: 256, NoSync: true})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := st.AppendReports("a", 0, [][]core.Report{testReports(i, 20)}); err != nil {
			t.Fatal(err)
		}
	}
	if segs := findAll(t, dir, segSuffix); len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}
	st.Close()

	st2 := open(t, dir, Options{})
	stats, err := st2.Recover(newReplayLog())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reports != 200 {
		t.Fatalf("replayed %d reports across segments, want 200", stats.Reports)
	}
}

func TestStoreFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	st.Close()
	other := testParams
	other.Epsilon = 2
	if _, err := Open(dir, other, testSeed, Options{}); err == nil || !strings.Contains(err.Error(), "written under") {
		t.Fatalf("params mismatch: got %v, want fingerprint refusal", err)
	}
	if _, err := Open(dir, testParams, testSeed+1, Options{}); err == nil {
		t.Fatal("seed mismatch was not refused")
	}
}

func TestStoreClosedRefusesWork(t *testing.T) {
	st := open(t, t.TempDir(), Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := st.AppendReports("a", 0, [][]core.Report{testReports(1, 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: got %v, want ErrClosed", err)
	}
	if err := st.Checkpoint("a", 0, testSnapshot(t, 1, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close: got %v, want ErrClosed", err)
	}
}

func testMatrixReports(seed int64, n int) []core.MatrixReport {
	rng := rand.New(rand.NewSource(seed))
	mp := core.MatrixParams{K: testParams.K, M1: testParams.M, M2: testParams.M, Epsilon: testParams.Epsilon}
	famA := core.Params{K: mp.K, M: mp.M1, Epsilon: mp.Epsilon}.NewFamily(hashing.AttributeSeed(testSeed, 0))
	famB := core.Params{K: mp.K, M: mp.M2, Epsilon: mp.Epsilon}.NewFamily(hashing.AttributeSeed(testSeed, 1))
	out := make([]core.MatrixReport, n)
	for i := range out {
		out[i] = core.PerturbTuple(rng.Uint64()%100, rng.Uint64()%100, mp, famA, famB, rng)
	}
	return out
}

// TestStoreMatrixColumn: a matrix column's WAL records, checkpoint, and
// finalized snapshot all round-trip through recovery, carrying the
// manifest kind and attribute with them; a name claimed by one kind
// refuses appends of the other.
func TestStoreMatrixColumn(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	rep := testMatrixReports(1, 250)
	if err := st.AppendMatrixReports("ab", 0, [][]core.MatrixReport{rep[:100], rep[100:]}); err != nil {
		t.Fatal(err)
	}
	// Kind and attribute are part of the column's identity.
	if err := st.AppendReports("ab", 0, [][]core.Report{testReports(2, 5)}); err == nil {
		t.Fatal("join append into a matrix column was accepted")
	}
	if err := st.AppendMatrixReports("ab", 1, [][]core.MatrixReport{rep[:5]}); err == nil {
		t.Fatal("attribute-mismatched append was accepted")
	}
	st.Close()

	st2 := open(t, dir, Options{})
	got := newReplayLog()
	stats, err := st2.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Columns != 1 || stats.Reports != 250 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	if info := got.infos["ab"]; info.Kind != protocol.KindMatrix || info.Attr != 0 {
		t.Fatalf("recovered column info = %+v", info)
	}
	for i, r := range got.matrixReports["ab"] {
		if r != rep[i] {
			t.Fatalf("matrix report %d: %v, want %v", i, r, rep[i])
		}
	}

	// Checkpoint with matrix state, reopen, finalize, reopen again.
	mp := core.MatrixParams{K: testParams.K, M1: testParams.M, M2: testParams.M, Epsilon: testParams.Epsilon}
	famA := core.Params{K: mp.K, M: mp.M1, Epsilon: mp.Epsilon}.NewFamily(hashing.AttributeSeed(testSeed, 0))
	famB := core.Params{K: mp.K, M: mp.M2, Epsilon: mp.Epsilon}.NewFamily(hashing.AttributeSeed(testSeed, 1))
	agg := core.NewMatrixAggregator(mp, famA, famB)
	for _, r := range rep {
		agg.Add(r)
	}
	if err := st2.Checkpoint("ab", 0, protocol.SnapshotOfMatrixAggregator(agg)); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3 := open(t, dir, Options{})
	got = newReplayLog()
	stats, err = st3.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints != 1 || stats.Reports != 0 {
		t.Fatalf("checkpoint recovery stats = %+v", stats)
	}
	ckpt := got.checkpoints["ab"]
	if ckpt == nil || ckpt.Kind != protocol.SnapshotMatrix || ckpt.N != 250 {
		t.Fatalf("checkpoint replay = %+v", ckpt)
	}
	restored, err := ckpt.MatrixAggregator()
	if err != nil {
		t.Fatal(err)
	}
	final := protocol.SnapshotOfMatrixSketch(restored.Finalize())
	if err := st3.Finalize("ab", 0, final); err != nil {
		t.Fatal(err)
	}
	st3.Close()

	st4 := open(t, dir, Options{})
	got = newReplayLog()
	stats, err = st4.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalizedColumns != 1 || stats.Columns != 0 {
		t.Fatalf("finalized recovery stats = %+v", stats)
	}
	snap := got.finalized["ab"]
	if snap == nil || snap.Kind != protocol.SnapshotMatrix || !snap.Finalized {
		t.Fatalf("finalized replay = %+v", snap)
	}
	reenc, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	want, err := protocol.EncodeSnapshot(final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, want) {
		t.Fatal("recovered finalized matrix snapshot is not byte-identical")
	}
}

// TestStoreRejectsAttrMismatchedSnapshot: a merge record whose snapshot
// seeds do not match the column's attribute slot refuses to replay.
func TestStoreRejectsAttrMismatchedSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	// A snapshot built under attribute 1's family, logged into an
	// attribute-0 column: the append layer trusts the service, so the
	// record lands — recovery must be the backstop that rejects it.
	foreign := core.NewAggregator(testParams, testParams.NewFamily(hashing.AttributeSeed(testSeed, 1)))
	enc, err := protocol.EncodeSnapshot(protocol.SnapshotOfAggregator(foreign))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendMerge("a", protocol.KindJoin, 0, enc); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := open(t, dir, Options{})
	if _, err := st2.Recover(newReplayLog()); err == nil || !errors.Is(err, protocol.ErrSnapshotMismatch) {
		t.Fatalf("attr-mismatched merge replay: got %v, want ErrSnapshotMismatch", err)
	}
}

// findAll returns every file under dir (recursively) with the given
// suffix, sorted by path.
func findAll(t *testing.T, dir, suffix string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, suffix) {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func findOne(t *testing.T, dir, suffix string) string {
	t.Helper()
	all := findAll(t, dir, suffix)
	if len(all) != 1 {
		t.Fatalf("want exactly one %s file, got %v", suffix, all)
	}
	return all[0]
}
