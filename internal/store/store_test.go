package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
)

var testParams = core.Params{K: 5, M: 64, Epsilon: 4}

const testSeed = 42

// replayLog collects every Replayer callback in order for assertions.
type replayLog struct {
	finalized     map[string]*protocol.Snapshot
	checkpoints   map[string]*protocol.Snapshot
	reports       map[string][]core.Report
	matrixReports map[string][]core.MatrixReport
	merges        map[string][]*protocol.Snapshot
	infos         map[string]ColumnInfo
	plusFinalized map[string]*protocol.PlusSnapshot
	plusEvents    map[string][]plusEvent
}

// plusEvent records one plus replay callback, preserving the order the
// column's WAL replayed in — the property the phase machine depends on.
type plusEvent struct {
	kind    string // "reports", "advance", "checkpoint", "merge"
	group   protocol.PlusGroup
	reports []core.Report
	domain  uint64
	theta   float64
	fi      []uint64
	snap    *protocol.PlusSnapshot
}

func newReplayLog() *replayLog {
	return &replayLog{
		finalized:     make(map[string]*protocol.Snapshot),
		checkpoints:   make(map[string]*protocol.Snapshot),
		reports:       make(map[string][]core.Report),
		matrixReports: make(map[string][]core.MatrixReport),
		merges:        make(map[string][]*protocol.Snapshot),
		infos:         make(map[string]ColumnInfo),
		plusFinalized: make(map[string]*protocol.PlusSnapshot),
		plusEvents:    make(map[string][]plusEvent),
	}
}

func (r *replayLog) RecoverFinalized(col ColumnInfo, snap *protocol.Snapshot) error {
	r.infos[col.Name] = col
	r.finalized[col.Name] = snap
	return nil
}

func (r *replayLog) RecoverCheckpoint(col ColumnInfo, snap *protocol.Snapshot) error {
	r.infos[col.Name] = col
	r.checkpoints[col.Name] = snap
	return nil
}

func (r *replayLog) RecoverReports(col ColumnInfo, reports []core.Report) error {
	r.infos[col.Name] = col
	r.reports[col.Name] = append(r.reports[col.Name], reports...)
	return nil
}

func (r *replayLog) RecoverMatrixReports(col ColumnInfo, reports []core.MatrixReport) error {
	r.infos[col.Name] = col
	r.matrixReports[col.Name] = append(r.matrixReports[col.Name], reports...)
	return nil
}

func (r *replayLog) RecoverMerge(col ColumnInfo, snap *protocol.Snapshot) error {
	r.infos[col.Name] = col
	r.merges[col.Name] = append(r.merges[col.Name], snap)
	return nil
}

func (r *replayLog) RecoverPlusFinalized(col ColumnInfo, snap *protocol.PlusSnapshot) error {
	r.infos[col.Name] = col
	r.plusFinalized[col.Name] = snap
	return nil
}

func (r *replayLog) RecoverPlusCheckpoint(col ColumnInfo, snap *protocol.PlusSnapshot) error {
	r.infos[col.Name] = col
	r.plusEvents[col.Name] = append(r.plusEvents[col.Name], plusEvent{kind: "checkpoint", snap: snap})
	return nil
}

func (r *replayLog) RecoverPlusReports(col ColumnInfo, group protocol.PlusGroup, reports []core.Report) error {
	r.infos[col.Name] = col
	r.plusEvents[col.Name] = append(r.plusEvents[col.Name], plusEvent{kind: "reports", group: group, reports: reports})
	return nil
}

func (r *replayLog) RecoverPlusAdvance(col ColumnInfo, domain uint64, theta float64, fi []uint64) error {
	r.infos[col.Name] = col
	r.plusEvents[col.Name] = append(r.plusEvents[col.Name], plusEvent{kind: "advance", domain: domain, theta: theta, fi: fi})
	return nil
}

func (r *replayLog) RecoverPlusMerge(col ColumnInfo, snap *protocol.PlusSnapshot) error {
	r.infos[col.Name] = col
	r.plusEvents[col.Name] = append(r.plusEvents[col.Name], plusEvent{kind: "merge", snap: snap})
	return nil
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, testParams, testSeed, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func testReports(seed int64, n int) []core.Report {
	rng := rand.New(rand.NewSource(seed))
	fam := testParams.NewFamily(testSeed)
	out := make([]core.Report, n)
	for i := range out {
		out[i] = core.Perturb(rng.Uint64()%100, testParams, fam, rng)
	}
	return out
}

func testSnapshot(t *testing.T, seed int64, n int) *protocol.Snapshot {
	t.Helper()
	agg := core.NewAggregator(testParams, testParams.NewFamily(testSeed))
	for _, r := range testReports(seed, n) {
		agg.Add(r)
	}
	return protocol.SnapshotOfAggregator(agg)
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	repA := testReports(1, 300)
	repB := testReports(2, 100)
	if err := st.AppendReports("a", 0, [][]core.Report{repA[:120], repA[120:]}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReports("b", 0, [][]core.Report{repB}); err != nil {
		t.Fatal(err)
	}
	snap := testSnapshot(t, 3, 50)
	enc, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendMerge("a", protocol.KindJoin, 0, enc); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Appends != 3 || s.Bytes == 0 {
		t.Fatalf("stats = %+v, want 3 appends and nonzero bytes", s)
	}
	st.Close()

	st2 := open(t, dir, Options{})
	got := newReplayLog()
	stats, err := st2.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Columns != 2 || stats.Reports != 400 || stats.Merges != 1 || stats.TruncatedTails != 0 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	if len(got.reports["a"]) != 300 || len(got.reports["b"]) != 100 {
		t.Fatalf("replayed %d/%d reports, want 300/100", len(got.reports["a"]), len(got.reports["b"]))
	}
	for i, r := range got.reports["a"] {
		if r != repA[i] {
			t.Fatalf("report %d of a: %v, want %v", i, r, repA[i])
		}
	}
	if len(got.merges["a"]) != 1 || got.merges["a"][0].N != snap.N {
		t.Fatalf("merge replay = %+v", got.merges["a"])
	}
}

func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	rep := testReports(1, 200)
	if err := st.AppendReports("a", 0, [][]core.Report{rep[:100]}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReports("a", 0, [][]core.Report{rep[100:]}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Tear the second record: cut the segment mid-payload, as a crash
	// between write and sync would.
	seg := findOne(t, dir, segSuffix)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-37); err != nil {
		t.Fatal(err)
	}

	st2 := open(t, dir, Options{})
	got := newReplayLog()
	stats, err := st2.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TruncatedTails != 1 || len(got.reports["a"]) != 100 {
		t.Fatalf("stats = %+v, %d reports; want 1 truncated tail, 100 reports", stats, len(got.reports["a"]))
	}
	st2.Close()

	// The tear was cut, so a third recovery sees a clean log.
	st3 := open(t, dir, Options{})
	stats, err = st3.Recover(newReplayLog())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TruncatedTails != 0 || stats.Reports != 100 {
		t.Fatalf("post-truncation stats = %+v", stats)
	}
}

func TestStoreCorruptionMidLogFails(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force every append into its own segment, so damage
	// in the first one is mid-log, not a torn tail.
	st := open(t, dir, Options{SegmentBytes: 1})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := st.AppendReports("a", 0, [][]core.Report{testReports(i, 10)}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	segs := findAll(t, dir, segSuffix)
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := open(t, dir, Options{SegmentBytes: 1})
	if _, err := st2.Recover(newReplayLog()); !errors.Is(err, protocol.ErrBadRecord) {
		t.Fatalf("mid-log corruption: got %v, want ErrBadRecord", err)
	}
}

func TestStoreCheckpointCoversSegments(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	rep := testReports(1, 150)
	if err := st.AppendReports("a", 0, [][]core.Report{rep}); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint("a", 0, testSnapshot(t, 1, 150)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReports("a", 0, [][]core.Report{rep}); !errors.Is(err, ErrColumnFinalized) {
		t.Fatalf("append after checkpoint: got %v, want ErrColumnFinalized", err)
	}
	if segs := findAll(t, dir, segSuffix); len(segs) != 0 {
		t.Fatalf("segments not retired by checkpoint: %v", segs)
	}
	st.Close()

	// Reopen: the checkpoint restores, then new appends land in fresh
	// segments replayed on the next recovery.
	st2 := open(t, dir, Options{})
	got := newReplayLog()
	stats, err := st2.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints != 1 || stats.Reports != 0 {
		t.Fatalf("stats = %+v, want one checkpoint and no WAL reports", stats)
	}
	if got.checkpoints["a"] == nil || got.checkpoints["a"].N != 150 {
		t.Fatalf("checkpoint replay = %+v", got.checkpoints["a"])
	}
	more := testReports(2, 60)
	if err := st2.AppendReports("a", 0, [][]core.Report{more}); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3 := open(t, dir, Options{})
	got = newReplayLog()
	stats, err = st3.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints != 1 || stats.Reports != 60 {
		t.Fatalf("checkpoint+WAL stats = %+v", stats)
	}
}

func TestStoreFinalizeRetiresLog(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReports("a", 0, [][]core.Report{testReports(1, 80)}); err != nil {
		t.Fatal(err)
	}
	agg := core.NewAggregator(testParams, testParams.NewFamily(testSeed))
	for _, r := range testReports(1, 80) {
		agg.Add(r)
	}
	final := protocol.SnapshotOfSketch(agg.Finalize())
	if err := st.Finalize("a", 0, final); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendReports("a", 0, [][]core.Report{testReports(2, 5)}); !errors.Is(err, ErrColumnFinalized) {
		t.Fatalf("append after finalize: got %v, want ErrColumnFinalized", err)
	}
	if segs := findAll(t, dir, segSuffix); len(segs) != 0 {
		t.Fatalf("segments not retired by finalize: %v", segs)
	}
	st.Close()

	st2 := open(t, dir, Options{})
	got := newReplayLog()
	stats, err := st2.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalizedColumns != 1 || stats.Columns != 0 {
		t.Fatalf("stats = %+v, want exactly one finalized column", stats)
	}
	snap := got.finalized["a"]
	if snap == nil || !snap.Finalized || snap.N != 80 {
		t.Fatalf("finalized replay = %+v", snap)
	}
	reenc, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	want, err := protocol.EncodeSnapshot(final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, want) {
		t.Fatal("recovered finalized snapshot is not byte-identical")
	}
}

func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{SegmentBytes: 256, NoSync: true})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := st.AppendReports("a", 0, [][]core.Report{testReports(i, 20)}); err != nil {
			t.Fatal(err)
		}
	}
	if segs := findAll(t, dir, segSuffix); len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}
	st.Close()

	st2 := open(t, dir, Options{})
	stats, err := st2.Recover(newReplayLog())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reports != 200 {
		t.Fatalf("replayed %d reports across segments, want 200", stats.Reports)
	}
}

func TestStoreFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	st.Close()
	other := testParams
	other.Epsilon = 2
	if _, err := Open(dir, other, testSeed, Options{}); err == nil || !strings.Contains(err.Error(), "written under") {
		t.Fatalf("params mismatch: got %v, want fingerprint refusal", err)
	}
	if _, err := Open(dir, testParams, testSeed+1, Options{}); err == nil {
		t.Fatal("seed mismatch was not refused")
	}
}

func TestStoreClosedRefusesWork(t *testing.T) {
	st := open(t, t.TempDir(), Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := st.AppendReports("a", 0, [][]core.Report{testReports(1, 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: got %v, want ErrClosed", err)
	}
	if err := st.Checkpoint("a", 0, testSnapshot(t, 1, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close: got %v, want ErrClosed", err)
	}
}

func testMatrixReports(seed int64, n int) []core.MatrixReport {
	rng := rand.New(rand.NewSource(seed))
	mp := core.MatrixParams{K: testParams.K, M1: testParams.M, M2: testParams.M, Epsilon: testParams.Epsilon}
	famA := core.Params{K: mp.K, M: mp.M1, Epsilon: mp.Epsilon}.NewFamily(hashing.AttributeSeed(testSeed, 0))
	famB := core.Params{K: mp.K, M: mp.M2, Epsilon: mp.Epsilon}.NewFamily(hashing.AttributeSeed(testSeed, 1))
	out := make([]core.MatrixReport, n)
	for i := range out {
		out[i] = core.PerturbTuple(rng.Uint64()%100, rng.Uint64()%100, mp, famA, famB, rng)
	}
	return out
}

// TestStoreMatrixColumn: a matrix column's WAL records, checkpoint, and
// finalized snapshot all round-trip through recovery, carrying the
// manifest kind and attribute with them; a name claimed by one kind
// refuses appends of the other.
func TestStoreMatrixColumn(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	rep := testMatrixReports(1, 250)
	if err := st.AppendMatrixReports("ab", 0, [][]core.MatrixReport{rep[:100], rep[100:]}); err != nil {
		t.Fatal(err)
	}
	// Kind and attribute are part of the column's identity.
	if err := st.AppendReports("ab", 0, [][]core.Report{testReports(2, 5)}); err == nil {
		t.Fatal("join append into a matrix column was accepted")
	}
	if err := st.AppendMatrixReports("ab", 1, [][]core.MatrixReport{rep[:5]}); err == nil {
		t.Fatal("attribute-mismatched append was accepted")
	}
	st.Close()

	st2 := open(t, dir, Options{})
	got := newReplayLog()
	stats, err := st2.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Columns != 1 || stats.Reports != 250 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	if info := got.infos["ab"]; info.Kind != protocol.KindMatrix || info.Attr != 0 {
		t.Fatalf("recovered column info = %+v", info)
	}
	for i, r := range got.matrixReports["ab"] {
		if r != rep[i] {
			t.Fatalf("matrix report %d: %v, want %v", i, r, rep[i])
		}
	}

	// Checkpoint with matrix state, reopen, finalize, reopen again.
	mp := core.MatrixParams{K: testParams.K, M1: testParams.M, M2: testParams.M, Epsilon: testParams.Epsilon}
	famA := core.Params{K: mp.K, M: mp.M1, Epsilon: mp.Epsilon}.NewFamily(hashing.AttributeSeed(testSeed, 0))
	famB := core.Params{K: mp.K, M: mp.M2, Epsilon: mp.Epsilon}.NewFamily(hashing.AttributeSeed(testSeed, 1))
	agg := core.NewMatrixAggregator(mp, famA, famB)
	for _, r := range rep {
		agg.Add(r)
	}
	if err := st2.Checkpoint("ab", 0, protocol.SnapshotOfMatrixAggregator(agg)); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3 := open(t, dir, Options{})
	got = newReplayLog()
	stats, err = st3.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints != 1 || stats.Reports != 0 {
		t.Fatalf("checkpoint recovery stats = %+v", stats)
	}
	ckpt := got.checkpoints["ab"]
	if ckpt == nil || ckpt.Kind != protocol.SnapshotMatrix || ckpt.N != 250 {
		t.Fatalf("checkpoint replay = %+v", ckpt)
	}
	restored, err := ckpt.MatrixAggregator()
	if err != nil {
		t.Fatal(err)
	}
	final := protocol.SnapshotOfMatrixSketch(restored.Finalize())
	if err := st3.Finalize("ab", 0, final); err != nil {
		t.Fatal(err)
	}
	st3.Close()

	st4 := open(t, dir, Options{})
	got = newReplayLog()
	stats, err = st4.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalizedColumns != 1 || stats.Columns != 0 {
		t.Fatalf("finalized recovery stats = %+v", stats)
	}
	snap := got.finalized["ab"]
	if snap == nil || snap.Kind != protocol.SnapshotMatrix || !snap.Finalized {
		t.Fatalf("finalized replay = %+v", snap)
	}
	reenc, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	want, err := protocol.EncodeSnapshot(final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, want) {
		t.Fatal("recovered finalized matrix snapshot is not byte-identical")
	}
}

// TestStoreRejectsAttrMismatchedSnapshot: a merge record whose snapshot
// seeds do not match the column's attribute slot refuses to replay.
func TestStoreRejectsAttrMismatchedSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	// A snapshot built under attribute 1's family, logged into an
	// attribute-0 column: the append layer trusts the service, so the
	// record lands — recovery must be the backstop that rejects it.
	foreign := core.NewAggregator(testParams, testParams.NewFamily(hashing.AttributeSeed(testSeed, 1)))
	enc, err := protocol.EncodeSnapshot(protocol.SnapshotOfAggregator(foreign))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendMerge("a", protocol.KindJoin, 0, enc); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := open(t, dir, Options{})
	if _, err := st2.Recover(newReplayLog()); err == nil || !errors.Is(err, protocol.ErrSnapshotMismatch) {
		t.Fatalf("attr-mismatched merge replay: got %v, want ErrSnapshotMismatch", err)
	}
}

// testPlusFams derives the sample and group families of a plus column
// on attribute 0, exactly as the service does.
func testPlusFams() (famS, famG *hashing.Family) {
	seed := hashing.AttributeSeed(testSeed, 0)
	return testParams.NewFamily(core.PlusSampleSeed(seed)), testParams.NewFamily(core.PlusGroupSeed(seed))
}

func famReports(fam *hashing.Family, seed int64, n int) []core.Report {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Report, n)
	for i := range out {
		out[i] = core.Perturb(rng.Uint64()%100, testParams, fam, rng)
	}
	return out
}

// TestStorePlusColumn: a plus column's phase-tagged report records,
// advance record, composite checkpoint, and finalized composite all
// round-trip through recovery in append order; a name claimed by the
// plus kind refuses join appends.
func TestStorePlusColumn(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	famS, famG := testPlusFams()
	sample := famReports(famS, 1, 120)
	low := famReports(famG, 2, 70)
	high := famReports(famG, 3, 40)
	fi := []uint64{3, 17, 61}
	if err := st.AppendPlusReports("p", 0, protocol.PlusSample, [][]core.Report{sample[:50], sample[50:]}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPlusAdvance("p", 0, 100, 0.1, fi); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPlusReports("p", 0, protocol.PlusLow, [][]core.Report{low}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPlusReports("p", 0, protocol.PlusHigh, [][]core.Report{high}); err != nil {
		t.Fatal(err)
	}
	// Kind is part of the column's identity.
	if err := st.AppendReports("p", 0, [][]core.Report{sample[:5]}); err == nil {
		t.Fatal("join append into a plus column was accepted")
	}
	st.Close()

	st2 := open(t, dir, Options{})
	got := newReplayLog()
	stats, err := st2.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Columns != 1 || stats.Reports != 230 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	if info := got.infos["p"]; info.Kind != protocol.KindPlus || info.Attr != 0 {
		t.Fatalf("recovered column info = %+v", info)
	}
	events := got.plusEvents["p"]
	if len(events) != 4 {
		t.Fatalf("replayed %d plus events, want 4: %+v", len(events), events)
	}
	wantOrder := []struct {
		kind  string
		group protocol.PlusGroup
		n     int
	}{
		{"reports", protocol.PlusSample, 120},
		{"advance", 0, 0},
		{"reports", protocol.PlusLow, 70},
		{"reports", protocol.PlusHigh, 40},
	}
	for i, want := range wantOrder {
		ev := events[i]
		if ev.kind != want.kind || (want.kind == "reports" && (ev.group != want.group || len(ev.reports) != want.n)) {
			t.Fatalf("event %d = {%s %v %d reports}, want %+v", i, ev.kind, ev.group, len(ev.reports), want)
		}
	}
	for i, r := range events[0].reports {
		if r != sample[i] {
			t.Fatalf("sample report %d: %v, want %v", i, r, sample[i])
		}
	}
	adv := events[1]
	if adv.domain != 100 || adv.theta != 0.1 || len(adv.fi) != 3 || adv.fi[0] != 3 || adv.fi[2] != 61 {
		t.Fatalf("advance replay = %+v", adv)
	}

	// Checkpoint the composite state, reopen, finalize, reopen again.
	aggS := core.NewAggregator(testParams, famS)
	for _, r := range sample {
		aggS.Add(r)
	}
	aggL := core.NewAggregator(testParams, famG)
	for _, r := range low {
		aggL.Add(r)
	}
	aggH := core.NewAggregator(testParams, famG)
	for _, r := range high {
		aggH.Add(r)
	}
	ckpt := &protocol.PlusSnapshot{
		Advanced: true,
		Domain:   100, Theta: 0.1, FI: fi,
		Sample: protocol.SnapshotOfAggregator(aggS),
		Low:    protocol.SnapshotOfAggregator(aggL),
		High:   protocol.SnapshotOfAggregator(aggH),
	}
	if err := st2.CheckpointPlus("p", 0, ckpt); err != nil {
		t.Fatal(err)
	}
	if err := st2.AppendPlusReports("p", 0, protocol.PlusLow, [][]core.Report{low[:5]}); !errors.Is(err, ErrColumnFinalized) {
		t.Fatalf("append after plus checkpoint: got %v, want ErrColumnFinalized", err)
	}
	st2.Close()

	st3 := open(t, dir, Options{})
	got = newReplayLog()
	stats, err = st3.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints != 1 || stats.Reports != 0 {
		t.Fatalf("plus checkpoint recovery stats = %+v", stats)
	}
	events = got.plusEvents["p"]
	if len(events) != 1 || events[0].kind != "checkpoint" || events[0].snap.N() != 230 {
		t.Fatalf("plus checkpoint replay = %+v", events)
	}
	final := &protocol.PlusSnapshot{
		Finalized: true, Advanced: true,
		Domain: 100, Theta: 0.1, FI: fi,
		Sample: protocol.SnapshotOfSketch(aggS.Finalize()),
		Low:    protocol.SnapshotOfSketch(aggL.Finalize()),
		High:   protocol.SnapshotOfSketch(aggH.Finalize()),
	}
	if err := st3.FinalizePlus("p", 0, final); err != nil {
		t.Fatal(err)
	}
	st3.Close()

	st4 := open(t, dir, Options{})
	got = newReplayLog()
	stats, err = st4.Recover(got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalizedColumns != 1 || stats.Columns != 0 {
		t.Fatalf("plus finalized recovery stats = %+v", stats)
	}
	snap := got.plusFinalized["p"]
	if snap == nil || !snap.Finalized || !snap.Advanced {
		t.Fatalf("plus finalized replay = %+v", snap)
	}
	reenc, err := protocol.EncodePlusSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	want, err := protocol.EncodePlusSnapshot(final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, want) {
		t.Fatal("recovered finalized plus snapshot is not byte-identical")
	}
}

// TestStorePlusMidPhaseRecovery: a crash before any advance replays as
// a phase-1 column (sample events only, no advance), and a mid-phase-2
// crash replays the boundary before the group reports.
func TestStorePlusMidPhaseRecovery(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir, Options{})
	if _, err := st.Recover(newReplayLog()); err != nil {
		t.Fatal(err)
	}
	famS, _ := testPlusFams()
	sample := famReports(famS, 1, 60)
	if err := st.AppendPlusReports("p", 0, protocol.PlusSample, [][]core.Report{sample}); err != nil {
		t.Fatal(err)
	}
	st.Close() // crash mid-phase-1: no checkpoint, WAL only

	st2 := open(t, dir, Options{})
	got := newReplayLog()
	if _, err := st2.Recover(got); err != nil {
		t.Fatal(err)
	}
	events := got.plusEvents["p"]
	if len(events) != 1 || events[0].kind != "reports" || events[0].group != protocol.PlusSample {
		t.Fatalf("mid-phase-1 replay = %+v", events)
	}
	if err := st2.AppendPlusAdvance("p", 0, 100, 0.2, nil); err != nil {
		t.Fatal(err)
	}
	st2.Close() // crash mid-phase-2, right after the advance

	st3 := open(t, dir, Options{})
	got = newReplayLog()
	if _, err := st3.Recover(got); err != nil {
		t.Fatal(err)
	}
	events = got.plusEvents["p"]
	if len(events) != 2 || events[0].kind != "reports" || events[1].kind != "advance" {
		t.Fatalf("mid-phase-2 replay = %+v", events)
	}
	if adv := events[1]; adv.domain != 100 || adv.theta != 0.2 || len(adv.fi) != 0 {
		t.Fatalf("advance with empty FI replay = %+v", adv)
	}
}

// findAll returns every file under dir (recursively) with the given
// suffix, sorted by path.
func findAll(t *testing.T, dir, suffix string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, suffix) {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func findOne(t *testing.T, dir, suffix string) string {
	t.Helper()
	all := findAll(t, dir, suffix)
	if len(all) != 1 {
		t.Fatalf("want exactly one %s file, got %v", suffix, all)
	}
	return all[0]
}
