package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ldpjoin/internal/protocol"
)

// Segment, checkpoint, and finalized-sketch file names inside a column
// directory. Segments and checkpoints carry a sequence number; a
// checkpoint named after sequence S covers every segment with seq <= S,
// so recovery replays only the segments behind it and retirement may
// delete the covered ones at leisure — deleting is cleanup, never
// correctness.
const (
	segPrefix  = "seg-"
	segSuffix  = ".wal"
	ckptPrefix = "ckpt-"
	ckptSuffix = ".snap"
	finalName  = "final.snap"
)

func segName(seq uint64) string  { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }
func ckptName(seq uint64) string { return fmt.Sprintf("%s%08d%s", ckptPrefix, seq, ckptSuffix) }

// parseSeq extracts the sequence number from a segment or checkpoint
// file name, returning ok=false for foreign files.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return seq, err == nil
}

// columnLog is the append side of one column's write-ahead log: a
// directory of numbered segment files, appended to in order, rotated at
// a size threshold. A log is sealed by checkpoint or finalize: appends
// arriving afterwards fail, which is what makes "everything the
// checkpoint does not cover is in a live segment" an invariant instead
// of a race.
type columnLog struct {
	dir      string
	segBytes int64
	noSync   bool

	mu      sync.Mutex
	nextSeq uint64   // seq the next opened segment will use
	lastSeq uint64   // highest seq that exists (0 = none)
	f       *os.File // open segment, nil until the first append
	size    int64
	sealed  bool
	broken  bool // a failed write could not be rolled back; refuse appends
}

// openColumnLog prepares the append side over an existing column
// directory. Appends always start a fresh segment (maxSeq+1): a torn
// tail left in an old segment by a crash must never have new records
// written behind it, because replay stops at the tear.
func openColumnLog(dir string, segBytes int64, noSync bool) (*columnLog, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var maxSeq uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok && seq > maxSeq {
			maxSeq = seq
		}
		if seq, ok := parseSeq(e.Name(), ckptPrefix, ckptSuffix); ok && seq > maxSeq {
			maxSeq = seq
		}
	}
	return &columnLog{dir: dir, segBytes: segBytes, noSync: noSync, nextSeq: maxSeq + 1, lastSeq: maxSeq}, nil
}

// appendFunc writes a sequence of pre-framed record chunks — next
// returns the next chunk, nil when done, and may reuse its buffer
// between calls — to the current segment, rotating first if the segment
// is over the size threshold, and syncs the file once at the end
// (unless the store runs NoSync): when appendFunc returns nil, every
// chunk survives a crash. Writing chunk by chunk keeps the caller from
// having to materialize a whole request's framing in memory.
func (l *columnLog) appendFunc(next func() []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return 0, ErrColumnFinalized
	}
	if l.broken {
		return 0, errors.New("store: column log poisoned by an earlier failed write")
	}
	if l.f != nil && l.size >= l.segBytes {
		if err := l.f.Close(); err != nil {
			return 0, err
		}
		l.f = nil
	}
	if l.f == nil {
		f, err := os.OpenFile(filepath.Join(l.dir, segName(l.nextSeq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return 0, err
		}
		l.f = f
		l.size = 0
		l.lastSeq = l.nextSeq
		l.nextSeq++
		if !l.noSync {
			if err := syncDir(l.dir); err != nil {
				return 0, err
			}
		}
	}
	// Rotation happens only above, so this whole call lands in one
	// segment and callStart is a valid rollback point for all of it.
	callStart := l.size
	var written int64
	for chunk := next(); chunk != nil; chunk = next() {
		//ldpjoinvet:ignore lockio the WAL lock exists to serialize appends; holding it across the segment write is the design
		n, err := l.f.Write(chunk)
		l.size += int64(n)
		written += int64(n)
		if err != nil {
			// Roll the entire call back, not just the failing chunk: a
			// partial record would tear the segment under later acked
			// appends, and earlier whole records of this call were never
			// acknowledged either — left behind, a client retry plus a
			// crash would replay them twice. If the rollback itself
			// fails, poison the log so nothing can be written (and
			// falsely acknowledged) behind the tear.
			if rerr := l.rollback(callStart); rerr != nil {
				l.broken = true
				l.f.Close()
				l.f = nil
			}
			return 0, err
		}
	}
	if !l.noSync {
		//ldpjoinvet:ignore lockio fsync-before-ack under the WAL lock is the durability contract, not a hazard
		if err := l.f.Sync(); err != nil {
			// The records were written but not durably: the caller will
			// refuse the request, so they must not stay in the segment
			// for later acked appends to land behind (a crash would then
			// replay them alongside the client's retry — double counts).
			if rerr := l.rollback(callStart); rerr != nil {
				l.broken = true
				l.f.Close()
				l.f = nil
			}
			return 0, err
		}
	}
	return written, nil
}

// rollback restores the open segment to length `to`, repositioning the
// write offset there (Truncate does not move it) and syncing the cut.
func (l *columnLog) rollback(to int64) error {
	if err := l.f.Truncate(to); err != nil {
		return err
	}
	if _, err := l.f.Seek(to, io.SeekStart); err != nil {
		return err
	}
	l.size = to
	if l.noSync {
		return nil
	}
	return l.f.Sync()
}

// append writes one pre-framed record blob; see appendFunc.
func (l *columnLog) append(frames []byte) (int64, error) {
	done := false
	return l.appendFunc(func() []byte {
		if done {
			return nil
		}
		done = true
		return frames
	})
}

// seal closes the log for good: the checkpoint or finalized sketch
// about to be written covers everything appended so far, and nothing
// may land after it. It returns the highest segment sequence a
// checkpoint must cover.
func (l *columnLog) seal() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sealed = true
	if l.f != nil {
		err := l.f.Close()
		l.f = nil
		if err != nil {
			return l.lastSeq, err
		}
	}
	return l.lastSeq, nil
}

// rotate closes the open segment without sealing the log: the next
// append starts a fresh segment, so everything appended so far lives in
// segments with seq <= the returned value. It is the background
// checkpointer's cut point — unlike seal, the column keeps accepting
// appends afterwards, which is what lets a checkpoint run while ingest
// continues. Returns the highest segment seq that exists (0 = the
// column has no durable records yet).
func (l *columnLog) rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return 0, ErrColumnFinalized
	}
	if l.f != nil {
		err := l.f.Close()
		l.f = nil
		if err != nil {
			return l.lastSeq, err
		}
	}
	return l.lastSeq, nil
}

// pendingWALBytes sums the sizes of the segments with seq > after: the
// bytes a recovery would have to replay, which seeds the background
// checkpointer's bytes-since-checkpoint counter across a restart.
func pendingWALBytes(dir string, after uint64) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok && seq > after {
			info, err := e.Info()
			if err != nil {
				return 0, err
			}
			total += info.Size()
		}
	}
	return total, nil
}

// close releases the open segment without sealing (process shutdown
// that is not a checkpoint — i.e. the crash path in tests).
func (l *columnLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		err := l.f.Close()
		l.f = nil
		return err
	}
	return nil
}

// replayResult summarizes one column's log replay.
type replayResult struct {
	records   int64
	truncated bool // a torn tail was cut from the last segment
}

// replaySegments replays every record in the segments with seq > after,
// in segment then record order, through handle. A bad record in the
// last segment is treated as the torn tail of a crashed append: the
// segment is truncated to its last whole record and replay ends
// cleanly. A bad record in any earlier segment — which no crash can
// produce, because a new segment is only ever started by a process that
// never got to append behind the tear — is corruption and fails the
// replay.
func replaySegments(dir string, after uint64, noSync bool, handle func(typ protocol.RecordType, payload []byte) error) (replayResult, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return replayResult{}, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok && seq > after {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	var res replayResult
	for i, seq := range seqs {
		last := i == len(seqs)-1
		path := filepath.Join(dir, segName(seq))
		f, err := os.Open(path)
		if err != nil {
			return res, err
		}
		br := bufio.NewReader(f)
		var good int64 // bytes of whole records read so far
		for {
			typ, payload, err := protocol.ReadRecord(br)
			if err == io.EOF {
				break
			}
			if errors.Is(err, protocol.ErrBadRecord) {
				f.Close()
				if !last {
					return res, fmt.Errorf("store: segment %s: %w", path, err)
				}
				// Torn tail: cut the segment back to its last whole record
				// so the next recovery sees a clean log — and sync the
				// cut, because once this process appends to a fresh
				// segment, this one is no longer last, where a
				// resurrected tear would read as corruption instead.
				if err := truncateSync(path, good, noSync); err != nil {
					return res, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
				}
				res.truncated = true
				return res, nil
			}
			if err != nil {
				f.Close()
				return res, err
			}
			if err := handle(typ, payload); err != nil {
				f.Close()
				return res, fmt.Errorf("store: segment %s: %w", path, err)
			}
			good += int64(protocol.RecordOverhead + len(payload))
			res.records++
		}
		f.Close()
	}
	return res, nil
}

// removeCovered deletes the segments and checkpoints a newer checkpoint
// (or the finalized sketch) has made redundant: segments with
// seq <= covered and checkpoints other than keepCkpt (pass keepCkpt = 0
// to drop every checkpoint — a column's first segment is seq 1, so no
// real checkpoint ever covers seq 0). Failures are returned but
// recoverable: recovery picks the newest checkpoint and ignores covered
// segments, so leftover files cost disk, not correctness.
func removeCovered(dir string, covered uint64, keepCkpt uint64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok && seq <= covered {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if seq, ok := parseSeq(e.Name(), ckptPrefix, ckptSuffix); ok && seq != keepCkpt {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// latestCheckpoint returns the highest-seq checkpoint in the column
// directory (seq, ok). Older checkpoints may coexist after a crash
// between checkpoint write and cleanup; the newest one always covers a
// superset of the state, so it wins.
func latestCheckpoint(dir string) (uint64, bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, false, err
	}
	var best uint64
	found := false
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), ckptPrefix, ckptSuffix); ok && (!found || seq > best) {
			best, found = seq, true
		}
	}
	return best, found, nil
}

// truncateSync truncates path to size and fsyncs the result so the new
// length survives power loss, not just a process crash.
func truncateSync(path string, size int64, noSync bool) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	if noSync {
		return nil
	}
	return f.Sync()
}

// writeFileAtomic writes data to path via a temp file + rename, syncing
// the file and the directory so the rename is durable, not just atomic.
func writeFileAtomic(path string, data []byte, noSync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if !noSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if noSync {
		return nil
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making renames and creates inside it
// durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
