//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package store

import (
	"fmt"
	"os"
	"syscall"
)

// acquireLock takes a non-blocking exclusive flock on path, creating
// the file if needed. The kernel drops the lock when the holding
// process exits, however it exits — a crash never wedges the data
// directory.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("locked by another process (flock: %w)", err)
	}
	return f, nil
}
