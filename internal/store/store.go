// Package store is the durable column store of the aggregation service:
// a per-column, segmented, CRC-framed write-ahead log of accepted
// report batches and merges, per-column SNAP checkpoints, and a
// manifest tying names to on-disk state. It exists because the
// service's aggregation state is privacy-critical: losing a collecting
// column to a restart means re-collecting reports, and every re-sent
// report re-spends its user's privacy budget. Durability is therefore a
// privacy property here, and the correctness bar is exact — a recovered
// column must finalize to a sketch byte-identical to an uninterrupted
// run, which the integer-cell linearity of the paper's sketches makes
// achievable (replay is just re-folding; folds commute exactly).
//
// # Layout
//
//	<dir>/manifest.json            names → ids, finalized flags, and the
//	                               configuration fingerprint (k, m, ε, seed)
//	<dir>/col-<id>/seg-<seq>.wal   WAL segments (protocol WAL records)
//	<dir>/col-<id>/ckpt-<seq>.snap SNAP checkpoint covering segs <= seq
//	<dir>/col-<id>/final.snap      finalized SNAP; the column's terminal state
//
// # Lifecycle
//
// An append (reports or a merge) is framed as WAL records, written to
// the column's current segment, and fsynced before the caller may
// acknowledge: acknowledged means crash-durable. Segments rotate at a
// size threshold; a restart always starts a fresh segment, so a torn
// tail can only ever sit at the end of the highest segment, where
// recovery truncates it (records behind a tear are unreachable, so
// nothing may ever be appended behind one).
//
// A checkpoint (graceful shutdown) seals the log, writes the column's
// merged unfinalized state as ckpt-<S>.snap where S is the highest
// segment, then deletes the covered segments. Finalize seals, writes
// final.snap, marks the manifest, and retires the log entirely. Both
// file writes are atomic (temp + rename + dir fsync) and ordered
// write-then-delete, so a crash between the two steps leaves covered
// segments behind — recovery replays only segments above the newest
// checkpoint, and a final.snap wins outright, so leftovers cost disk,
// never double-counted state.
//
// # Recovery
//
// Recover walks the manifest: finalized columns yield their final
// snapshot; collecting columns yield the newest checkpoint (if any)
// followed by every WAL record in segments above it, in order. All
// payloads are CRC-checked at the framing layer, bounds-checked against
// the store's parameters, and snapshot payloads are additionally
// fingerprint-checked — a log written under a different configuration
// refuses to load rather than poisoning a sketch.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
)

// DefaultSegmentBytes is the WAL segment rotation threshold unless
// Options overrides it.
const DefaultSegmentBytes = 8 << 20

// maxReportsPerRecord bounds one RecordReports payload
// (protocol.ReportSize bytes per report) comfortably under
// protocol.MaxRecordPayload; larger appends split across records.
const maxReportsPerRecord = 1 << 20

// manifestName is the manifest file inside the data directory.
const manifestName = "manifest.json"

// lockName is the advisory-lock file inside the data directory: one
// process owns a store at a time.
const lockName = "LOCK"

// manifestVersion is the manifest schema this package writes.
const manifestVersion = 1

// Options tunes a Store. The zero value selects defaults.
type Options struct {
	// SegmentBytes is the WAL segment rotation threshold; <= 0 selects
	// DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips every fsync. Appends then survive process crashes
	// (the page cache persists) but not power loss or kernel panics —
	// acceptable for tests and throwaway deployments only.
	NoSync bool
	// CheckpointBytes triggers a background checkpoint of a column once
	// its WAL has grown this many bytes past the last checkpoint cut.
	// <= 0 disables the bytes trigger.
	CheckpointBytes int64
	// CheckpointInterval triggers a background checkpoint of a column
	// once this much time has passed since its last checkpoint (or its
	// first append) while it still has un-checkpointed WAL bytes. <= 0
	// disables the time trigger. With both triggers disabled no
	// background checkpointer runs — checkpoints happen only at
	// shutdown, the pre-PR-7 behavior.
	CheckpointInterval time.Duration
	// CheckpointTick is the policy evaluation period of the background
	// checkpointer; <= 0 derives a tick from the triggers (a quarter of
	// CheckpointInterval, clamped to [50ms, 1s]).
	CheckpointTick time.Duration
}

func (o Options) normalized() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.CheckpointTick <= 0 {
		o.CheckpointTick = time.Second
		if o.CheckpointInterval > 0 {
			o.CheckpointTick = min(max(o.CheckpointInterval/4, 50*time.Millisecond), time.Second)
		}
	}
	return o
}

var (
	// ErrClosed is returned when the store is used after Close.
	ErrClosed = errors.New("store: closed")
	// ErrColumnFinalized is returned when appending to a column whose
	// log has been sealed by Finalize or Checkpoint.
	ErrColumnFinalized = errors.New("store: column is finalized")
)

// manifest is the JSON-encoded root of the store: the configuration
// fingerprint everything inside was written under, and the column
// name → directory mapping.
type manifest struct {
	Version int                    `json:"version"`
	K       int                    `json:"k"`
	M       int                    `json:"m"`
	Epsilon float64                `json:"epsilon"`
	Seed    int64                  `json:"seed"`
	NextID  uint64                 `json:"nextId"`
	Columns map[string]*columnMeta `json:"columns"`
}

// columnMeta records a column's durable identity. Kind discriminates the
// sketch shape (reusing the wire stream kinds; a zero from a manifest
// written before kinds existed normalizes to KindJoin). Attr is the
// column's join-attribute slot: a join column aggregates under the hash
// family of attribute Attr, a matrix column under the families of
// attributes (Attr, Attr+1) — all derived from the store's base seed via
// hashing.AttributeSeed, which is what lets recovery re-derive the exact
// families without persisting them.
type columnMeta struct {
	ID        uint64        `json:"id"`
	Finalized bool          `json:"finalized"`
	Kind      protocol.Kind `json:"kind,omitempty"`
	Attr      int           `json:"attr,omitempty"`
}

// Stats counts the store's durable work since Open.
type Stats struct {
	Appends     int64 // acknowledged append calls (reports or merges)
	Bytes       int64 // framed WAL bytes written
	Checkpoints int64 // checkpoint snapshots persisted (background + shutdown)
	Finalized   int64 // finalize + finalized-import persists

	// Background checkpointer counters (zero when it never ran).
	BackgroundCheckpoints  int64 // checkpoints cut while ingest continued
	CheckpointErrors       int64 // failed background checkpoint attempts
	PendingWALBytes        int64 // WAL bytes not yet covered by a checkpoint, summed over columns
	LastCheckpointUnixNano int64 // when the newest checkpoint was persisted (0 = never)
	LastCheckpointNanos    int64 // how long the newest background checkpoint took
}

// RecoveryStats summarizes what Recover rebuilt.
type RecoveryStats struct {
	Columns          int64 // collecting columns rebuilt
	FinalizedColumns int64
	Reports          int64 // reports replayed from WAL records (join + matrix)
	Merges           int64 // merge records replayed
	Checkpoints      int64 // checkpoint snapshots restored
	TruncatedTails   int64 // segments whose torn tail was cut
}

// ColumnInfo identifies a recovering column: its name, manifest kind,
// and the join-attribute slot its hash families derive from (a matrix
// column spans attributes Attr and Attr+1).
type ColumnInfo struct {
	Name string
	Kind protocol.Kind
	Attr int
}

// Replayer receives the recovered state of a store, column by column:
// for a finalized column exactly one RecoverFinalized call; for a
// collecting column at most one RecoverCheckpoint call followed by the
// column's WAL events in append order. Snapshot-carrying calls receive
// join or matrix snapshots according to col.Kind; report records arrive
// through RecoverReports or RecoverMatrixReports to match. The
// aggregation side implements this by folding into the ingestion
// engine — integer cells make the replayed state exactly what the
// pre-crash process held.
type Replayer interface {
	RecoverFinalized(col ColumnInfo, snap *protocol.Snapshot) error
	RecoverCheckpoint(col ColumnInfo, snap *protocol.Snapshot) error
	RecoverReports(col ColumnInfo, reports []core.Report) error
	RecoverMatrixReports(col ColumnInfo, reports []core.MatrixReport) error
	RecoverMerge(col ColumnInfo, snap *protocol.Snapshot) error

	// Plus columns carry composite snapshots and two extra event types:
	// phase-tagged report records and the advance record that froze the
	// phase boundary. Replay order is append order, so a recovering
	// column sees exactly the sample-reports / advance / group-reports
	// sequence the pre-crash process accepted — including a crash
	// mid-phase-1 (no advance ever replayed) or mid-phase-2.
	RecoverPlusFinalized(col ColumnInfo, snap *protocol.PlusSnapshot) error
	RecoverPlusCheckpoint(col ColumnInfo, snap *protocol.PlusSnapshot) error
	RecoverPlusReports(col ColumnInfo, group protocol.PlusGroup, reports []core.Report) error
	RecoverPlusAdvance(col ColumnInfo, domain uint64, theta float64, fi []uint64) error
	RecoverPlusMerge(col ColumnInfo, snap *protocol.PlusSnapshot) error
}

// Store is the durable column store over one data directory. It is safe
// for concurrent use.
type Store struct {
	dir    string
	params core.Params
	seed   int64
	opts   Options
	lock   *os.File // flock held for the store's lifetime

	mu        sync.Mutex
	closed    bool
	recovered bool
	man       manifest
	logs      map[string]*columnLog
	stats     Stats
	ckpt      map[string]*ckptTrack // per-column background-checkpoint bookkeeping
}

// ckptTrack is the background checkpointer's per-column state: how many
// WAL bytes have landed since the last checkpoint cut, and when that
// cut was. It exists only for columns with appends this process
// lifetime (or un-checkpointed segments found at recovery) — exactly
// the columns a background checkpoint could have work on.
type ckptTrack struct {
	bytes int64     // WAL bytes appended since the last persisted checkpoint
	cut   int64     // bytes at the moment of the in-flight Rotate cut
	last  time.Time // last persisted checkpoint (or first append / recovery)
}

// Open creates or reopens a data directory for the given protocol
// configuration. A directory written under a different configuration
// fingerprint (k, m, ε, seed) is refused: its state could neither be
// replayed nor merged exactly. Call Recover next, then the append side.
func Open(dir string, p core.Params, seed int64, opts Options) (*Store, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// One process per data directory: without exclusion, two servers
	// (a supervisor restart overlapping a slow shutdown, say) would
	// hand out the same column ids and rewrite each other's manifest —
	// silent cross-column corruption. The flock releases automatically
	// when the process dies, so a crash never wedges the directory.
	lock, err := acquireLock(filepath.Join(dir, lockName))
	if err != nil {
		return nil, fmt.Errorf("store: data dir %s: %w", dir, err)
	}
	st := &Store{
		dir:    dir,
		params: p,
		seed:   seed,
		opts:   opts.normalized(),
		lock:   lock,
		logs:   make(map[string]*columnLog),
		ckpt:   make(map[string]*ckptTrack),
	}
	fail := func(err error) (*Store, error) {
		lock.Close()
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		st.man = manifest{
			Version: manifestVersion,
			K:       p.K, M: p.M, Epsilon: p.Epsilon, Seed: seed,
			NextID:  1,
			Columns: make(map[string]*columnMeta),
		}
		if err := st.writeManifest(); err != nil {
			return fail(err)
		}
	case err != nil:
		return fail(fmt.Errorf("store: reading manifest: %w", err))
	default:
		if err := json.Unmarshal(data, &st.man); err != nil {
			return fail(fmt.Errorf("store: decoding manifest: %w", err))
		}
		if st.man.Version != manifestVersion {
			return fail(fmt.Errorf("store: unsupported manifest version %d", st.man.Version))
		}
		if st.man.K != p.K || st.man.M != p.M || st.man.Epsilon != p.Epsilon || st.man.Seed != seed {
			return fail(fmt.Errorf("store: data dir %s was written under join(k=%d, m=%d, ε=%g, seed=%d), not join(k=%d, m=%d, ε=%g, seed=%d)",
				dir, st.man.K, st.man.M, st.man.Epsilon, st.man.Seed, p.K, p.M, p.Epsilon, seed))
		}
		if st.man.Columns == nil {
			st.man.Columns = make(map[string]*columnMeta)
		}
		// Manifests written before column kinds existed carry no kind
		// byte; every column they name is a join column on attribute 0.
		for _, meta := range st.man.Columns {
			if meta.Kind == 0 {
				meta.Kind = protocol.KindJoin
			}
		}
	}
	return st, nil
}

// matrixParams derives the matrix-column shape of this store's
// configuration: K replicas of M×M cells under the scalar budget — the
// same derivation the service and the chain protocol use, so state is
// interchangeable across all three.
func (st *Store) matrixParams() core.MatrixParams {
	return core.MatrixParams{K: st.params.K, M1: st.params.M, M2: st.params.M, Epsilon: st.params.Epsilon}
}

// Dir returns the data directory the store was opened on.
func (st *Store) Dir() string { return st.dir }

// Stats returns a copy of the durable-work counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.stats
	for _, t := range st.ckpt {
		s.PendingWALBytes += t.bytes
	}
	return s
}

// track returns (creating on first use) the checkpoint bookkeeping of a
// column. Callers hold st.mu.
func (st *Store) track(name string) *ckptTrack {
	t, ok := st.ckpt[name]
	if !ok {
		t = &ckptTrack{last: time.Now()}
		st.ckpt[name] = t
	}
	return t
}

// noteAppend records an acknowledged append in the store counters and
// the column's bytes-since-checkpoint tracker.
func (st *Store) noteAppend(name string, written int64) {
	st.mu.Lock()
	st.stats.Appends++
	st.stats.Bytes += written
	st.track(name).bytes += written
	st.mu.Unlock()
}

// writeManifest persists the manifest atomically. Callers hold st.mu.
func (st *Store) writeManifest() error {
	data, err := json.Marshal(&st.man)
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(st.dir, manifestName), data, st.opts.NoSync)
}

// colDir returns the directory of a column id.
func (st *Store) colDir(id uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf("col-%d", id))
}

// column returns the meta and open log for name, creating both on first
// use (the manifest write makes the name durable — kind and attribute
// included — before any record can reference it). A name that already
// exists under a different kind or attribute is refused: the WAL and
// snapshot payloads of the two kinds are not interchangeable, and
// neither are the hash families of two attribute slots. Callers must not
// hold st.mu.
func (st *Store) column(name string, kind protocol.Kind, attr int) (*columnMeta, *columnLog, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil, nil, ErrClosed
	}
	meta, ok := st.man.Columns[name]
	if !ok {
		meta = &columnMeta{ID: st.man.NextID, Kind: kind, Attr: attr}
		if err := os.MkdirAll(st.colDir(meta.ID), 0o755); err != nil {
			return nil, nil, err
		}
		st.man.NextID++
		st.man.Columns[name] = meta
		if err := st.writeManifest(); err != nil {
			delete(st.man.Columns, name)
			st.man.NextID--
			return nil, nil, err
		}
	}
	if meta.Kind != kind || meta.Attr != attr {
		return nil, nil, fmt.Errorf("store: column %q is %v state of attribute %d, not %v state of attribute %d",
			name, meta.Kind, meta.Attr, kind, attr)
	}
	if meta.Finalized {
		return meta, nil, ErrColumnFinalized
	}
	log, ok := st.logs[name]
	if !ok {
		var err error
		if log, err = openColumnLog(st.colDir(meta.ID), st.opts.SegmentBytes, st.opts.NoSync); err != nil {
			return nil, nil, err
		}
		st.logs[name] = log
	}
	return meta, log, nil
}

// AppendReports makes a request's accepted join report batches durable:
// framed as one or more RecordReports records, appended to the column's
// WAL, and synced once before returning. attr is the column's
// join-attribute slot (0 for a plain pairwise deployment). Only
// acknowledge the request after a nil return.
func (st *Store) AppendReports(name string, attr int, batches [][]core.Report) error {
	return appendReportRecords(st, name, protocol.KindJoin, attr,
		protocol.RecordReports, protocol.ReportSize, protocol.AppendReportsPayload, batches)
}

// AppendMatrixReports is AppendReports for a matrix column: accepted
// middle-table report batches framed as RecordMatrixReports records.
// attr is the left attribute of the pair the column spans.
func (st *Store) AppendMatrixReports(name string, attr int, batches [][]core.MatrixReport) error {
	return appendReportRecords(st, name, protocol.KindMatrix, attr,
		protocol.RecordMatrixReports, protocol.MatrixReportSize, protocol.AppendMatrixReportsPayload, batches)
}

// appendReportRecords frames report batches — itemSize wire bytes per
// report, encoded by encode — as records of rtype, splitting at
// maxReportsPerRecord, and appends them to the column's WAL with one
// sync. Records are framed one at a time into a reused buffer and
// written as they are built, so the peak extra memory is one record
// (maxReportsPerRecord reports), not a second copy of the whole
// request.
func appendReportRecords[T any](st *Store, name string, kind protocol.Kind, attr int,
	rtype protocol.RecordType, itemSize int, encode func([]byte, []T) []byte, batches [][]T) error {
	total := 0
	for _, batch := range batches {
		total += len(batch)
	}
	if total == 0 {
		return nil
	}
	_, log, err := st.column(name, kind, attr)
	if err != nil {
		return err
	}
	bi, off := 0, 0 // cursor into batches
	frame := make([]byte, 0, min(total, maxReportsPerRecord)*itemSize+protocol.RecordOverhead)
	payload := make([]byte, 0, cap(frame)-protocol.RecordOverhead)
	next := func() []byte {
		payload = payload[:0]
		for bi < len(batches) && len(payload) < maxReportsPerRecord*itemSize {
			room := maxReportsPerRecord - len(payload)/itemSize
			batch := batches[bi][off:]
			n := min(room, len(batch))
			payload = encode(payload, batch[:n])
			if off += n; off == len(batches[bi]) {
				bi, off = bi+1, 0
			}
		}
		if len(payload) == 0 {
			return nil
		}
		frame = protocol.AppendRecord(frame[:0], rtype, payload)
		return frame
	}
	written, err := log.appendFunc(next)
	if err != nil {
		return err
	}
	st.noteAppend(name, written)
	return nil
}

// AppendPlusReports makes a plus column's accepted report batches for
// one phase group durable: RecordPlusReports records whose payload
// leads with the group byte, split at maxReportsPerRecord, one sync.
// The caller has already gated the group against the column's phase;
// replay re-applies the same order, so what was accepted is what
// recovers.
func (st *Store) AppendPlusReports(name string, attr int, group protocol.PlusGroup, batches [][]core.Report) error {
	total := 0
	for _, batch := range batches {
		total += len(batch)
	}
	if total == 0 {
		return nil
	}
	_, log, err := st.column(name, protocol.KindPlus, attr)
	if err != nil {
		return err
	}
	bi, off := 0, 0 // cursor into batches
	frame := make([]byte, 0, min(total, maxReportsPerRecord)*protocol.ReportSize+1+protocol.RecordOverhead)
	payload := make([]byte, 0, cap(frame)-protocol.RecordOverhead)
	next := func() []byte {
		payload = append(payload[:0], byte(group))
		count := 0
		for bi < len(batches) && count < maxReportsPerRecord {
			batch := batches[bi][off:]
			n := min(maxReportsPerRecord-count, len(batch))
			payload = protocol.AppendReportsPayload(payload, batch[:n])
			count += n
			if off += n; off == len(batches[bi]) {
				bi, off = bi+1, 0
			}
		}
		if count == 0 {
			return nil
		}
		frame = protocol.AppendRecord(frame[:0], protocol.RecordPlusReports, payload)
		return frame
	}
	written, err := log.appendFunc(next)
	if err != nil {
		return err
	}
	st.noteAppend(name, written)
	return nil
}

// AppendPlusAdvance makes a plus column's phase transition durable: one
// RecordPlusAdvance record freezing (domain, θ, FI). It must be
// appended before the advance is applied or acknowledged — group
// reports accepted after it depend on replay seeing the boundary first.
func (st *Store) AppendPlusAdvance(name string, attr int, domain uint64, theta float64, fi []uint64) error {
	_, log, err := st.column(name, protocol.KindPlus, attr)
	if err != nil {
		return err
	}
	payload := protocol.AppendPlusAdvancePayload(nil, domain, theta, fi)
	written, err := log.append(protocol.AppendRecord(nil, protocol.RecordPlusAdvance, payload))
	if err != nil {
		return err
	}
	st.noteAppend(name, written)
	return nil
}

// AppendMerge makes an accepted snapshot merge durable. The snapshot is
// stored in its encoded (CRC-carrying) form; the caller has already
// validated and fingerprint-checked it, and recovery checks both again.
// kind and attr name the column the merge lands in, exactly as in the
// report appends.
func (st *Store) AppendMerge(name string, kind protocol.Kind, attr int, encoded []byte) error {
	if len(encoded) > protocol.MaxRecordPayload {
		return fmt.Errorf("store: snapshot of %d bytes exceeds the %d-byte WAL record bound", len(encoded), protocol.MaxRecordPayload)
	}
	_, log, err := st.column(name, kind, attr)
	if err != nil {
		return err
	}
	written, err := log.append(protocol.AppendRecord(nil, protocol.RecordMerge, encoded))
	if err != nil {
		return err
	}
	st.noteAppend(name, written)
	return nil
}

// Checkpoint seals the column's log and persists its merged unfinalized
// state, after which the covered WAL segments are deleted. The snapshot
// must contain everything ever appended to the column — which is why
// the service checkpoints only at shutdown, after the ingestion engine
// has drained. The column accepts no further appends this process
// lifetime; a reopened store continues it from the checkpoint.
func (st *Store) Checkpoint(name string, attr int, snap *protocol.Snapshot) error {
	if snap.Finalized {
		return fmt.Errorf("store: checkpoint of %q with a finalized snapshot; use Finalize", name)
	}
	meta, log, err := st.column(name, kindOfSnapshot(snap), attr)
	if err != nil {
		return err
	}
	covered, err := log.seal()
	if err != nil {
		return err
	}
	if covered == 0 {
		// The column has no durable state (its first append never
		// succeeded), so there is nothing to cover — and writing
		// ckpt-00000000 would collide with removeCovered's keep-none
		// sentinel.
		return nil
	}
	data, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		return fmt.Errorf("store: encoding checkpoint of %q: %w", name, err)
	}
	dir := st.colDir(meta.ID)
	if err := writeFileAtomic(filepath.Join(dir, ckptName(covered)), data, st.opts.NoSync); err != nil {
		return err
	}
	// The checkpoint is durable at this point; deleting the covered
	// files is cleanup, never correctness (recovery takes the newest
	// checkpoint and ignores covered segments), so a failed remove must
	// not be escalated as a failed checkpoint.
	_ = removeCovered(dir, covered, covered)
	st.mu.Lock()
	st.stats.Checkpoints++
	delete(st.ckpt, name)
	st.mu.Unlock()
	return nil
}

// Finalize persists a column's terminal state — its finalized SNAP —
// and retires the WAL and any checkpoint. It also installs finalized
// state under names with no prior log (snapshot import); in both cases
// the column durably refuses appends from here on. The write is ordered
// before the retirement, so a crash in between recovers as finalized
// with some dead segment files left to delete.
func (st *Store) Finalize(name string, attr int, snap *protocol.Snapshot) error {
	if !snap.Finalized {
		return fmt.Errorf("store: finalize of %q with an unfinalized snapshot", name)
	}
	meta, log, err := st.column(name, kindOfSnapshot(snap), attr)
	if err != nil {
		return err
	}
	if _, err := log.seal(); err != nil {
		return err
	}
	data, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		return fmt.Errorf("store: encoding finalized sketch of %q: %w", name, err)
	}
	dir := st.colDir(meta.ID)
	if err := writeFileAtomic(filepath.Join(dir, finalName), data, st.opts.NoSync); err != nil {
		return err
	}
	st.mu.Lock()
	meta.Finalized = true
	merr := st.writeManifest()
	st.stats.Finalized++
	delete(st.logs, name)
	delete(st.ckpt, name)
	st.mu.Unlock()
	// As in Checkpoint: final.snap is durable and wins at recovery, so
	// failing to delete the retired files is not a failed finalize.
	_ = removeCovered(dir, ^uint64(0), 0)
	return merr
}

// CheckpointPlus is Checkpoint for a plus column: the column's merged
// unfinalized composite state — phase boundary included — persisted as
// one PSNP blob covering the sealed log.
func (st *Store) CheckpointPlus(name string, attr int, snap *protocol.PlusSnapshot) error {
	if snap.Finalized {
		return fmt.Errorf("store: checkpoint of %q with a finalized plus snapshot; use FinalizePlus", name)
	}
	meta, log, err := st.column(name, protocol.KindPlus, attr)
	if err != nil {
		return err
	}
	covered, err := log.seal()
	if err != nil {
		return err
	}
	if covered == 0 {
		// As in Checkpoint: no durable state means nothing to cover.
		return nil
	}
	data, err := protocol.EncodePlusSnapshot(snap)
	if err != nil {
		return fmt.Errorf("store: encoding plus checkpoint of %q: %w", name, err)
	}
	dir := st.colDir(meta.ID)
	if err := writeFileAtomic(filepath.Join(dir, ckptName(covered)), data, st.opts.NoSync); err != nil {
		return err
	}
	_ = removeCovered(dir, covered, covered)
	st.mu.Lock()
	st.stats.Checkpoints++
	delete(st.ckpt, name)
	st.mu.Unlock()
	return nil
}

// FinalizePlus is Finalize for a plus column: its terminal composite
// state persisted as final.snap, the log retired, appends durably
// refused from here on.
func (st *Store) FinalizePlus(name string, attr int, snap *protocol.PlusSnapshot) error {
	if !snap.Finalized {
		return fmt.Errorf("store: finalize of %q with an unfinalized plus snapshot", name)
	}
	meta, log, err := st.column(name, protocol.KindPlus, attr)
	if err != nil {
		return err
	}
	if _, err := log.seal(); err != nil {
		return err
	}
	data, err := protocol.EncodePlusSnapshot(snap)
	if err != nil {
		return fmt.Errorf("store: encoding finalized plus state of %q: %w", name, err)
	}
	dir := st.colDir(meta.ID)
	if err := writeFileAtomic(filepath.Join(dir, finalName), data, st.opts.NoSync); err != nil {
		return err
	}
	st.mu.Lock()
	meta.Finalized = true
	merr := st.writeManifest()
	st.stats.Finalized++
	delete(st.logs, name)
	delete(st.ckpt, name)
	st.mu.Unlock()
	_ = removeCovered(dir, ^uint64(0), 0)
	return merr
}

// lookupColumn returns the meta and open log of an existing collecting
// column by name alone — the background checkpointer's lookup, which
// (unlike column) must not create anything and takes the kind from the
// manifest instead of asserting one.
func (st *Store) lookupColumn(name string) (*columnMeta, *columnLog, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil, nil, ErrClosed
	}
	meta, ok := st.man.Columns[name]
	if !ok {
		return nil, nil, fmt.Errorf("store: unknown column %q", name)
	}
	if meta.Finalized {
		return meta, nil, ErrColumnFinalized
	}
	log, ok := st.logs[name]
	if !ok {
		var err error
		if log, err = openColumnLog(st.colDir(meta.ID), st.opts.SegmentBytes, st.opts.NoSync); err != nil {
			return nil, nil, err
		}
		st.logs[name] = log
	}
	return meta, log, nil
}

// Rotate cuts a collecting column's WAL for a background checkpoint:
// the open segment is closed — not sealed; the next append starts a
// fresh segment — and the returned seq is the highest segment the
// checkpoint must cover. The caller must exclude concurrent appends to
// this column across Rotate and the in-memory state capture that
// follows (the service's per-column checkpoint gate), so that the
// captured state equals exactly the fold of segments <= covered.
// covered == 0 means the column has no durable records yet.
func (st *Store) Rotate(name string) (covered uint64, err error) {
	_, log, err := st.lookupColumn(name)
	if err != nil {
		return 0, err
	}
	covered, err = log.rotate()
	if err != nil {
		return 0, err
	}
	st.mu.Lock()
	t := st.track(name)
	t.cut = t.bytes
	st.mu.Unlock()
	return covered, nil
}

// SaveCheckpoint persists a background checkpoint of a collecting join
// or matrix column: snap — the column's complete in-memory state at the
// moment Rotate cut the WAL — is written as ckpt-<covered>.snap, after
// which the covered segments (and older checkpoints) are deleted.
// Unlike Checkpoint it does not seal the log: the column keeps
// collecting, and a recovery restores the checkpoint then replays only
// the segments above covered. A column finalized since the cut is a
// benign race (ErrColumnFinalized): final.snap already holds a superset
// of the state, so the checkpoint is simply dropped.
func (st *Store) SaveCheckpoint(name string, covered uint64, snap *protocol.Snapshot) error {
	if snap.Finalized {
		return fmt.Errorf("store: background checkpoint of %q with a finalized snapshot; use Finalize", name)
	}
	data, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		return fmt.Errorf("store: encoding checkpoint of %q: %w", name, err)
	}
	return st.saveCheckpoint(name, covered, data)
}

// SaveCheckpointPlus is SaveCheckpoint for a plus column's composite
// PSNP state.
func (st *Store) SaveCheckpointPlus(name string, covered uint64, snap *protocol.PlusSnapshot) error {
	if snap.Finalized {
		return fmt.Errorf("store: background checkpoint of %q with a finalized plus snapshot; use FinalizePlus", name)
	}
	data, err := protocol.EncodePlusSnapshot(snap)
	if err != nil {
		return fmt.Errorf("store: encoding plus checkpoint of %q: %w", name, err)
	}
	return st.saveCheckpoint(name, covered, data)
}

func (st *Store) saveCheckpoint(name string, covered uint64, data []byte) error {
	if covered == 0 {
		// Nothing durable to cover — and ckpt-00000000 would collide
		// with removeCovered's keep-none sentinel, as in Checkpoint.
		return nil
	}
	meta, _, err := st.lookupColumn(name)
	if err != nil {
		return err
	}
	dir := st.colDir(meta.ID)
	if err := writeFileAtomic(filepath.Join(dir, ckptName(covered)), data, st.opts.NoSync); err != nil {
		return err
	}
	// Durable past this point; deleting covered files is cleanup, never
	// correctness — recovery takes the newest checkpoint and ignores
	// covered segments.
	_ = removeCovered(dir, covered, covered)
	st.mu.Lock()
	st.stats.Checkpoints++
	st.stats.BackgroundCheckpoints++
	st.stats.LastCheckpointUnixNano = time.Now().UnixNano()
	t := st.track(name)
	// Appends since the cut (the gate released after the state capture)
	// belong to the next checkpoint; only the cut bytes are covered.
	t.bytes -= t.cut
	t.cut = 0
	t.last = time.Now()
	st.mu.Unlock()
	return nil
}

// Recover replays the directory's durable state into r. It must be
// called exactly once, between Open and the first append; the service
// calls it before serving, so recovered columns exist before any
// request can reference them.
func (st *Store) Recover(r Replayer) (RecoveryStats, error) {
	st.mu.Lock()
	if st.recovered {
		st.mu.Unlock()
		return RecoveryStats{}, errors.New("store: Recover called twice")
	}
	st.recovered = true
	columns := make(map[string]*columnMeta, len(st.man.Columns))
	for name, meta := range st.man.Columns {
		columns[name] = meta
	}
	st.mu.Unlock()

	var stats RecoveryStats
	for name, meta := range columns {
		if err := st.recoverColumn(name, meta, r, &stats); err != nil {
			return stats, fmt.Errorf("store: recovering column %q: %w", name, err)
		}
	}
	return stats, nil
}

func (st *Store) recoverColumn(name string, meta *columnMeta, r Replayer, stats *RecoveryStats) error {
	dir := st.colDir(meta.ID)
	col := ColumnInfo{Name: name, Kind: meta.Kind, Attr: meta.Attr}

	// A final.snap is the terminal state and wins outright, even when a
	// crash between its write and the retirement left segments behind.
	// The manifest flag is fixed up if the crash hit before its write.
	if data, err := os.ReadFile(filepath.Join(dir, finalName)); err == nil {
		if meta.Kind == protocol.KindPlus {
			snap, err := st.decodePlusSnapshot(meta, data, true)
			if err != nil {
				return fmt.Errorf("%s: %w", finalName, err)
			}
			if err := r.RecoverPlusFinalized(col, snap); err != nil {
				return err
			}
			if !meta.Finalized {
				st.mu.Lock()
				meta.Finalized = true
				err := st.writeManifest()
				st.mu.Unlock()
				if err != nil {
					return err
				}
			}
			stats.FinalizedColumns++
			return nil
		}
		snap, err := st.decodeSnapshot(meta, data, true)
		if err != nil {
			return fmt.Errorf("%s: %w", finalName, err)
		}
		if err := r.RecoverFinalized(col, snap); err != nil {
			return err
		}
		if !meta.Finalized {
			st.mu.Lock()
			meta.Finalized = true
			err := st.writeManifest()
			st.mu.Unlock()
			if err != nil {
				return err
			}
		}
		stats.FinalizedColumns++
		return nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}

	ckptSeq, haveCkpt, err := latestCheckpoint(dir)
	if err != nil {
		return err
	}
	if haveCkpt {
		data, err := os.ReadFile(filepath.Join(dir, ckptName(ckptSeq)))
		if err != nil {
			return err
		}
		if meta.Kind == protocol.KindPlus {
			snap, err := st.decodePlusSnapshot(meta, data, false)
			if err != nil {
				return fmt.Errorf("%s: %w", ckptName(ckptSeq), err)
			}
			if err := r.RecoverPlusCheckpoint(col, snap); err != nil {
				return err
			}
		} else {
			snap, err := st.decodeSnapshot(meta, data, false)
			if err != nil {
				return fmt.Errorf("%s: %w", ckptName(ckptSeq), err)
			}
			if err := r.RecoverCheckpoint(col, snap); err != nil {
				return err
			}
		}
		stats.Checkpoints++
	}
	res, err := replaySegments(dir, ckptSeq, st.opts.NoSync, func(typ protocol.RecordType, payload []byte) error {
		switch typ {
		case protocol.RecordReports:
			if meta.Kind != protocol.KindJoin {
				return fmt.Errorf("%w: join report record in a %v column's log", protocol.ErrBadRecord, meta.Kind)
			}
			reports, err := protocol.DecodeReportsPayload(payload, st.params)
			if err != nil {
				return err
			}
			if err := r.RecoverReports(col, reports); err != nil {
				return err
			}
			stats.Reports += int64(len(reports))
		case protocol.RecordMatrixReports:
			if meta.Kind != protocol.KindMatrix {
				return fmt.Errorf("%w: matrix report record in a %v column's log", protocol.ErrBadRecord, meta.Kind)
			}
			reports, err := protocol.DecodeMatrixReportsPayload(payload, st.matrixParams())
			if err != nil {
				return err
			}
			if err := r.RecoverMatrixReports(col, reports); err != nil {
				return err
			}
			stats.Reports += int64(len(reports))
		case protocol.RecordPlusReports:
			if meta.Kind != protocol.KindPlus {
				return fmt.Errorf("%w: plus report record in a %v column's log", protocol.ErrBadRecord, meta.Kind)
			}
			group, reports, err := protocol.DecodePlusReportsPayload(payload, st.params)
			if err != nil {
				return err
			}
			if err := r.RecoverPlusReports(col, group, reports); err != nil {
				return err
			}
			stats.Reports += int64(len(reports))
		case protocol.RecordPlusAdvance:
			if meta.Kind != protocol.KindPlus {
				return fmt.Errorf("%w: plus advance record in a %v column's log", protocol.ErrBadRecord, meta.Kind)
			}
			domain, theta, fi, err := protocol.DecodePlusAdvancePayload(payload)
			if err != nil {
				return err
			}
			if err := r.RecoverPlusAdvance(col, domain, theta, fi); err != nil {
				return err
			}
		case protocol.RecordMerge:
			if meta.Kind == protocol.KindPlus {
				snap, err := st.decodePlusSnapshot(meta, payload, false)
				if err != nil {
					return err
				}
				if err := r.RecoverPlusMerge(col, snap); err != nil {
					return err
				}
				stats.Merges++
				break
			}
			snap, err := st.decodeSnapshot(meta, payload, false)
			if err != nil {
				return err
			}
			if err := r.RecoverMerge(col, snap); err != nil {
				return err
			}
			stats.Merges++
		}
		return nil
	})
	if res.truncated {
		stats.TruncatedTails++
	}
	if err != nil {
		return err
	}
	// Seed the background checkpointer with the replayed tail: segments
	// above the checkpoint are exactly the bytes the next checkpoint
	// would cover, so the bytes trigger keeps working across restarts.
	if pending, err := pendingWALBytes(dir, ckptSeq); err == nil && pending > 0 {
		st.mu.Lock()
		st.track(name).bytes += pending
		st.mu.Unlock()
	}
	stats.Columns++
	return nil
}

// kindOfSnapshot maps a snapshot's shape to the column kind it persists.
func kindOfSnapshot(snap *protocol.Snapshot) protocol.Kind {
	if snap.Kind == protocol.SnapshotMatrix {
		return protocol.KindMatrix
	}
	return protocol.KindJoin
}

// decodeSnapshot decodes, validates, and fingerprint-checks one stored
// SNAP payload against the column's kind and attribute-derived hash
// seeds — a log written under other families refuses to load rather than
// poisoning a sketch.
func (st *Store) decodeSnapshot(meta *columnMeta, data []byte, wantFinal bool) (*protocol.Snapshot, error) {
	snap, err := protocol.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	switch meta.Kind {
	case protocol.KindJoin:
		if err := snap.CompatibleWithJoin(st.params, hashing.AttributeSeed(st.seed, meta.Attr)); err != nil {
			return nil, err
		}
	case protocol.KindMatrix:
		seedA := hashing.AttributeSeed(st.seed, meta.Attr)
		seedB := hashing.AttributeSeed(st.seed, meta.Attr+1)
		if err := snap.CompatibleWithMatrix(st.matrixParams(), seedA, seedB); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("store: unknown column kind %d", meta.Kind)
	}
	if snap.Finalized != wantFinal {
		return nil, fmt.Errorf("snapshot finalized=%v, want %v", snap.Finalized, wantFinal)
	}
	return snap, nil
}

// decodePlusSnapshot is decodeSnapshot for the composite PSNP form a
// plus column persists: decoded, validated, and every embedded phase
// fingerprint-checked against the sample/group seeds this store's
// configuration derives for the column's attribute slot.
func (st *Store) decodePlusSnapshot(meta *columnMeta, data []byte, wantFinal bool) (*protocol.PlusSnapshot, error) {
	snap, err := protocol.DecodePlusSnapshot(data)
	if err != nil {
		return nil, err
	}
	if err := snap.CompatibleWithPlus(st.params, hashing.AttributeSeed(st.seed, meta.Attr)); err != nil {
		return nil, err
	}
	if snap.Finalized != wantFinal {
		return nil, fmt.Errorf("plus snapshot finalized=%v, want %v", snap.Finalized, wantFinal)
	}
	return snap, nil
}

// Close releases open segment files. It does not checkpoint — that is
// the service's shutdown step, because only the service knows when the
// ingestion engine has drained. Close is idempotent.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	var firstErr error
	for _, log := range st.logs {
		if err := log.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := st.lock.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
