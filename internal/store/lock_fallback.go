//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package store

import "os"

// acquireLock on platforms without flock only creates the lock file;
// it does not exclude a second process. An O_EXCL scheme would wedge
// the directory after every crash — worse than no exclusion for a
// store whose whole point is crash recovery — and the deployment
// targets (the CI matrix and the daemon) are all flock platforms.
func acquireLock(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
}
