package main

import (
	"strings"
	"testing"
)

func TestDistill(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"start","Package":"ldpjoin"}`,
		`{"Action":"output","Package":"ldpjoin","Output":"goos: linux\n"}`,
		// Classic one-line results: the run events attribute the names, so
		// the trailing -8 is recognized as a GOMAXPROCS suffix and stripped.
		`{"Action":"run","Package":"ldpjoin","Test":"BenchmarkClientReport"}`,
		`{"Action":"output","Package":"ldpjoin","Output":"BenchmarkClientReport-8 \t    1000\t      4504 ns/op\n"}`,
		`{"Action":"run","Package":"ldpjoin","Test":"BenchmarkFig5Accuracy"}`,
		`{"Action":"output","Package":"ldpjoin","Output":"BenchmarkFig5Accuracy\n"}`, // name-only line: benchmark logged
		`{"Action":"output","Package":"ldpjoin","Output":"BenchmarkFig5Accuracy-8 \t 1\t 120000 ns/op\t 0.170 RE\n"}`,
		// A sub-benchmark whose real name ends in -1, reported on a 1-CPU
		// host (no proc suffix): the name is known verbatim, so nothing is
		// stripped.
		`{"Action":"run","Package":"ldpjoin","Test":"BenchmarkAblationParallelBuild/shards-1"}`,
		`{"Action":"output","Package":"ldpjoin","Output":"BenchmarkAblationParallelBuild/shards-1 \t 1\t 99 ns/op\n"}`,
		`not json at all`,
		// An attributed classic line keys by the Test field directly.
		`{"Action":"output","Package":"ldpjoin/internal/service","Test":"BenchmarkServiceJoinParallel/cached","Output":"BenchmarkServiceJoinParallel/cached-8 \t 200\t 39254 ns/op\t 128 B/op\t 2 allocs/op\n"}`,
		// The -json runner's split shape: name in the Test field, metrics alone on the line.
		`{"Action":"output","Package":"ldpjoin/internal/service","Test":"BenchmarkServiceJoinSerial/cached","Output":"       1\t     12392 ns/op\n"}`,
		// A benchmark's own log line under the Test field must not parse as a result.
		`{"Action":"output","Package":"ldpjoin/internal/service","Test":"BenchmarkServiceJoinSerial/cached","Output":"    7 columns seeded\n"}`,
		`{"Action":"pass","Package":"ldpjoin"}`,
	}, "\n")

	got, err := distill(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	root := got["ldpjoin"]
	if root == nil {
		t.Fatalf("missing root package: %v", got)
	}
	// The -GOMAXPROCS suffix is stripped, so classic one-line results key
	// identically to the -json split shape.
	cr := root["BenchmarkClientReport"]
	if cr["n"] != 1000 || cr["ns/op"] != 4504 {
		t.Fatalf("BenchmarkClientReport = %v", cr)
	}
	if fig := root["BenchmarkFig5Accuracy"]; fig["RE"] != 0.170 {
		t.Fatalf("custom metric lost: %v", fig)
	}
	// A real trailing -1 in a known name survives on a 1-CPU host.
	if sh := root["BenchmarkAblationParallelBuild/shards-1"]; sh["ns/op"] != 99 {
		t.Fatalf("shards-1 mangled: %v", root)
	}
	if len(root) != 3 {
		t.Fatalf("unexpected root entries: %v", root)
	}
	svc := got["ldpjoin/internal/service"]["BenchmarkServiceJoinParallel/cached"]
	if svc["allocs/op"] != 2 || svc["B/op"] != 128 {
		t.Fatalf("service bench = %v", svc)
	}
	split := got["ldpjoin/internal/service"]["BenchmarkServiceJoinSerial/cached"]
	if split["n"] != 1 || split["ns/op"] != 12392 {
		t.Fatalf("split-event bench = %v", split)
	}
	if len(got["ldpjoin/internal/service"]) != 2 {
		t.Fatalf("log line parsed as a result: %v", got["ldpjoin/internal/service"])
	}
}

func TestStripProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo":            "BenchmarkFoo",
		"BenchmarkFoo/sub-16":     "BenchmarkFoo/sub",
		"BenchmarkFoo/zipf-1.3":   "BenchmarkFoo/zipf-1.3", // non-integer tail stays
		"BenchmarkTrailingDash-":  "BenchmarkTrailingDash-",
		"BenchmarkShards-1-crash": "BenchmarkShards-1-crash",
	} {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \tldpjoin\t0.2s",
		"BenchmarkBroken-8 \t notanumber \t 12 ns/op",
		"BenchmarkNameOnly",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine accepted %q", line)
		}
	}
}
