// Command benchdistill turns the `go test -json -bench` event stream
// into a compact, diffable benchmark summary: one JSON object mapping
// package → benchmark → {n, ns/op, B/op, allocs/op, custom metrics}.
// CI pipes the bench smoke through it and uploads the result as
// BENCH_<sha>.json, so the performance trajectory across PRs is a
// small file a human (or a diff) can actually read, instead of
// megabytes of raw test2json events.
//
//	go test -json -bench=. -benchtime=1x -run='^$' ./... | benchdistill > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// event is the subset of test2json's output we care about.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// distill reads a test2json stream and returns package → benchmark →
// metric name → value. The iteration count parks under "n"; every
// "value unit" pair after it keys by its unit (ns/op, B/op, allocs/op,
// and any custom b.ReportMetric unit like RE or reports/s).
func distill(r io.Reader) (map[string]map[string]map[string]float64, error) {
	out := make(map[string]map[string]map[string]float64)
	// Benchmark names the stream itself has attributed via the Test
	// field (test2json emits a "run" event before any output). They
	// anchor suffix normalization below: a trailing "-<n>" is only
	// treated as a GOMAXPROCS suffix when stripping it lands on a known
	// name, so a benchmark genuinely called shards-1 is never mangled.
	known := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// A non-JSON line (a stray print from a tool in the pipe) is
			// not worth failing the artifact over.
			continue
		}
		if ev.Test != "" {
			known[ev.Test] = true
		}
		if ev.Action != "output" {
			continue
		}
		// Under -json the runner prints the benchmark name and its result
		// on separate lines, with the name carried by the event's Test
		// field; without it the classic single line carries both. Accept
		// either shape, keying by the attributed name whenever the stream
		// provides one so both shapes land under identical keys.
		name, metrics, ok := parseBenchLine(ev.Output)
		switch {
		case ok && ev.Test != "":
			name = ev.Test
		case ok:
			if !known[name] {
				if s := stripProcSuffix(name); known[s] {
					name = s
				}
			}
		case strings.HasPrefix(ev.Test, "Benchmark"):
			name = ev.Test
			metrics, ok = parseResultLine(ev.Output)
		}
		if !ok {
			continue
		}
		pkg := out[ev.Package]
		if pkg == nil {
			pkg = make(map[string]map[string]float64)
			out[ev.Package] = pkg
		}
		pkg[name] = metrics
	}
	return out, sc.Err()
}

// parseBenchLine recognizes a benchmark result line —
//
//	BenchmarkName-8   1000   123 ns/op   45 B/op   0.17 RE
//
// — and returns its metrics. Name-only lines (printed when a benchmark
// logs) and everything else report ok=false.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	metrics, ok := parseMetrics(fields[1:])
	if !ok {
		return "", nil, false
	}
	return fields[0], metrics, true
}

// stripProcSuffix drops a -GOMAXPROCS suffix ("BenchmarkFoo-8" →
// "BenchmarkFoo"). The -json split shape keys by the event's Test
// field, which never has the suffix, so without normalization the same
// benchmark would land under two different keys depending on whether
// its output happened to be split — a spurious delete+add in the
// trajectory diff instead of a metric change. Callers only apply it
// when the stripped name is independently known from the stream, since
// "-1" can equally be part of a real sub-benchmark name.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseResultLine recognizes the name-less result shape the -json
// runner emits ("       1\t     12392 ns/op\n"); the benchmark's own
// log output is screened out by requiring an ns/op pair.
func parseResultLine(line string) (map[string]float64, bool) {
	return parseMetrics(strings.Fields(line))
}

// parseMetrics parses "iterations {value unit}..." and requires the
// canonical ns/op pair, so arbitrary numeric log lines do not pass.
func parseMetrics(fields []string) (map[string]float64, bool) {
	if len(fields) < 3 || len(fields)%2 == 0 {
		return nil, false
	}
	n, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, false
	}
	metrics := map[string]float64{"n": n}
	for i := 1; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, false
		}
		metrics[fields[i+1]] = v
	}
	if _, ok := metrics["ns/op"]; !ok {
		return nil, false
	}
	return metrics, true
}

func main() {
	summary, err := distill(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdistill:", err)
		os.Exit(1)
	}
	if len(summary) == 0 {
		fmt.Fprintln(os.Stderr, "benchdistill: no benchmark results in input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(summary); err != nil {
		fmt.Fprintln(os.Stderr, "benchdistill:", err)
		os.Exit(1)
	}
}
