package analyzers

import (
	"go/ast"
	"go/types"
)

// lockKind distinguishes exclusive locks from shared (read) locks.
type lockKind int

const (
	lockShared lockKind = iota + 1
	lockExclusive
)

// lockState maps a mutex expression (rendered as source text, e.g.
// "s.mu" or "col.walGate") to the strongest lock kind currently held
// on it along the path being scanned.
type lockState map[string]lockKind

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// merge folds other into s, keeping the strongest kind per mutex — the
// conservative join for "might be held here".
func (s lockState) merge(other lockState) {
	for k, v := range other {
		if v > s[k] {
			s[k] = v
		}
	}
}

// lockScanner walks function bodies in approximate execution order,
// tracking which mutexes are held, and invokes visit on every
// statement and (non-FuncLit-nested) call expression with the state
// at that point.
//
// The walk is a small abstract interpreter, not a CFG: branches are
// scanned independently and merged (union of held locks over branches
// that fall through; branches ending in return/break/continue do not
// contribute). That makes the common early-return idiom precise —
//
//	mu.Lock()
//	if err != nil { mu.Unlock(); return }
//	... // mu still held here
//
// — while staying linear in the function size. A deferred Unlock keeps
// the mutex held for the rest of the function, which is exactly the
// semantics the analyzers care about ("held across whatever follows").
// Function literals are scanned as independent functions with an empty
// initial state; `go` statements are skipped entirely (the spawned
// work does not run under the caller's locks).
type lockScanner struct {
	info  *types.Info
	visit func(n ast.Node, held lockState)

	// onAcquire, when non-nil, fires at every Lock/RLock call with the
	// state held *before* the acquisition — exactly the "held while
	// acquiring" edges a lock-order analysis needs.
	onAcquire func(call *ast.CallExpr, name string, kind lockKind, held lockState)
}

// scanFile scans every function declaration and function literal in f.
func (ls *lockScanner) scanFile(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				ls.scanStmts(fn.Body.List, lockState{})
			}
		case *ast.FuncLit:
			ls.scanStmts(fn.Body.List, lockState{})
		}
		return true
	})
}

// scanStmts scans a statement sequence, returning the state after it
// and whether every path through it terminates (return/branch/panic).
func (ls *lockScanner) scanStmts(stmts []ast.Stmt, held lockState) (lockState, bool) {
	for _, st := range stmts {
		var terminated bool
		held, terminated = ls.scanStmt(st, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (ls *lockScanner) scanStmt(st ast.Stmt, held lockState) (lockState, bool) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		ls.visitExprs(s.X, held)
		ls.applyLockOps(s.X, held)
		return held, false

	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held until the function
		// returns — no state change. Other deferred calls are visited
		// (their arguments evaluate now), but conservatively without
		// treating the call itself as running under the current locks.
		if op, _ := ls.lockOp(s.Call); op != "" {
			return held, false
		}
		for _, arg := range s.Call.Args {
			ls.visitExprs(arg, held)
		}
		return held, false

	case *ast.GoStmt:
		// The spawned goroutine does not run under the caller's locks;
		// its body (a FuncLit, typically) is scanned independently by
		// scanFile.
		return held, false

	case *ast.AssignStmt:
		ls.visit(s, held)
		for _, e := range s.Rhs {
			ls.visitExprs(e, held)
			ls.applyLockOps(e, held)
		}
		for _, e := range s.Lhs {
			ls.visitExprs(e, held)
		}
		return held, false

	case *ast.IncDecStmt:
		ls.visit(s, held)
		ls.visitExprs(s.X, held)
		return held, false

	case *ast.DeclStmt, *ast.SendStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				ls.visitExprs(e, held)
				return false
			}
			return true
		})
		return held, false

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.visitExprs(e, held)
		}
		return held, true

	case *ast.BranchStmt:
		// break/continue/goto leave the current path; their state does
		// not flow into the statements after the enclosing construct
		// along this walk.
		return held, true

	case *ast.BlockStmt:
		return ls.scanStmts(s.List, held)

	case *ast.LabeledStmt:
		return ls.scanStmt(s.Stmt, held)

	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = ls.scanStmt(s.Init, held)
		}
		ls.visitExprs(s.Cond, held)
		thenState, thenTerm := ls.scanStmts(s.Body.List, held.clone())
		elseState, elseTerm := held.clone(), false
		if s.Else != nil {
			elseState, elseTerm = ls.scanStmt(s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseState, false
		case elseTerm:
			return thenState, false
		default:
			thenState.merge(elseState)
			return thenState, false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = ls.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			ls.visitExprs(s.Cond, held)
		}
		bodyState, _ := ls.scanStmts(s.Body.List, held.clone())
		if s.Post != nil {
			bodyState, _ = ls.scanStmt(s.Post, bodyState)
		}
		held.merge(bodyState)
		return held, false

	case *ast.RangeStmt:
		ls.visitExprs(s.X, held)
		bodyState, _ := ls.scanStmts(s.Body.List, held.clone())
		held.merge(bodyState)
		return held, false

	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = ls.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			ls.visitExprs(s.Tag, held)
		}
		return ls.scanCaseBodies(s.Body, held)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = ls.scanStmt(s.Init, held)
		}
		return ls.scanCaseBodies(s.Body, held)

	case *ast.SelectStmt:
		return ls.scanCaseBodies(s.Body, held)

	default:
		return held, false
	}
}

// scanCaseBodies scans each clause of a switch/select body from the
// same entry state and merges the fall-through results.
func (ls *lockScanner) scanCaseBodies(body *ast.BlockStmt, held lockState) (lockState, bool) {
	out := held.clone()
	hasDefault := false
	allTerminate := true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				ls.visitExprs(e, held)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
			if c.Comm != nil {
				stmts = append([]ast.Stmt{c.Comm}, stmts...)
			}
		}
		st, term := ls.scanStmts(stmts, held.clone())
		if !term {
			allTerminate = false
			out.merge(st)
		}
	}
	return out, hasDefault && allTerminate && len(body.List) > 0
}

// visitExprs reports every call expression inside e (skipping nested
// function literals) to the visit callback with the current state.
func (ls *lockScanner) visitExprs(e ast.Expr, held lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			ls.visit(call, held)
		}
		return true
	})
}

// applyLockOps mutates held for any mutex Lock/Unlock calls in e.
// Only direct statement-level calls change state; a Lock buried in an
// argument list is unusual enough to ignore.
func (ls *lockScanner) applyLockOps(e ast.Expr, held lockState) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	op, name := ls.lockOp(call)
	switch op {
	case "Lock":
		if ls.onAcquire != nil {
			ls.onAcquire(call, name, lockExclusive, held)
		}
		held[name] = lockExclusive
	case "RLock":
		if ls.onAcquire != nil {
			ls.onAcquire(call, name, lockShared, held)
		}
		if held[name] < lockShared {
			held[name] = lockShared
		}
	case "Unlock", "RUnlock":
		delete(held, name)
	}
}

// lockOp classifies call as a sync.Mutex/RWMutex lock operation,
// returning the method name and the receiver's source text (the key
// identifying the mutex). Promoted methods of embedded mutexes
// resolve to the sync package too.
func (ls *lockScanner) lockOp(call *ast.CallExpr) (op, name string) {
	fn, recv := methodCall(ls.info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return fn.Name(), types.ExprString(recv)
	}
	return "", ""
}
