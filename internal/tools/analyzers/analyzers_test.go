package analyzers_test

import (
	"testing"

	"ldpjoin/internal/tools/analyzers"
	"ldpjoin/internal/tools/analyzers/analysistest"
)

func TestLockIO(t *testing.T) {
	analysistest.Run(t, analyzers.LockIO, "lockio")
}

func TestWALOrder(t *testing.T) {
	analysistest.Run(t, analyzers.WALOrder, "walorder")
}

func TestEnvelope(t *testing.T) {
	analysistest.Run(t, analyzers.Envelope, "envelope")
}

func TestAtomicCounter(t *testing.T) {
	analysistest.Run(t, analyzers.AtomicCounter, "atomiccounter")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analyzers.MapOrder, "maporder")
}
