package analyzers_test

import (
	"testing"

	"ldpjoin/internal/tools/analyzers"
	"ldpjoin/internal/tools/analyzers/analysistest"
)

func TestLockIO(t *testing.T) {
	analysistest.Run(t, analyzers.LockIO, "lockio")
}

func TestWALOrder(t *testing.T) {
	analysistest.Run(t, analyzers.WALOrder, "walorder")
}

func TestEnvelope(t *testing.T) {
	analysistest.Run(t, analyzers.Envelope, "envelope")
}

func TestAtomicCounter(t *testing.T) {
	analysistest.Run(t, analyzers.AtomicCounter, "atomiccounter")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analyzers.MapOrder, "maporder")
}

func TestPoolOwn(t *testing.T) {
	analysistest.Run(t, analyzers.PoolOwn, "poolown")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analyzers.HotAlloc, "hotalloc")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analyzers.LockOrder, "lockorder")
}

// TestWaiverHygiene needs a suite: a waiver is dead only relative to
// analyzers that actually ran alongside waiverhygiene.
func TestWaiverHygiene(t *testing.T) {
	analysistest.RunSuite(t, []*analyzers.Analyzer{
		analyzers.AtomicCounter, analyzers.LockIO, analyzers.WaiverHygiene,
	}, "waiverhygiene")
}
