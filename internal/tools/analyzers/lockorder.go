package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder enforces a single global lock-acquisition order across the
// service, store, and ingest packages. PR 9 stacked a third locking
// layer (walGate) on top of mu/opMu and the cache shard locks; the
// correct order — handlers take opMu, then walGate (shared), then the
// store/ingest locks, while the checkpointer takes walGate
// (exclusive) before the same store/ingest locks — is exactly the
// kind of tribal knowledge a new writer inverts under deadline.
//
// Run records, per function, every lock acquisition with the locks
// already held and every direct call with the locks held at the call
// site, canonicalizing mutexes to package.Type.field (or
// package.func.var for locals). Finish stitches those summaries into
// a cross-package graph: an edge A→B means "B was acquired while A
// was held", either directly or transitively through a called
// function. Any strongly connected component with more than one lock
// is an inversion — two code paths that disagree about the order —
// and every edge inside the component is reported at an example
// acquisition site.
//
// Limitations, on purpose: indirect calls (function values, the
// checkpointer's callback) are not resolved, so an inversion threaded
// through a callback needs a human; and distinct instances of the
// same field (two columns' opMu) share a canonical name, so
// self-edges are skipped rather than reported — lockio owns
// double-acquisition on a single instance.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "report lock-acquisition order inversions across service/store/ingest",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

var lockOrderPkgs = []string{"service", "store", "ingest"}

func inLockOrderScope(pkgPath string) bool {
	for _, seg := range lockOrderPkgs {
		if pathHasSegment(pkgPath, seg) {
			return true
		}
	}
	return false
}

// lockAcq is one acquisition: which lock, where, and what was held.
type lockAcq struct {
	lock string
	pos  token.Position
	held []string
}

// lockCallSite is one direct call made while locks were held.
type lockCallSite struct {
	callee string
	pos    token.Position
	held   []string
}

// lockFuncSummary is one function's contribution to the graph.
type lockFuncSummary struct {
	acquires []lockAcq
	calls    []lockCallSite
}

func lockOrderSummaries(shared map[string]any) map[string]*lockFuncSummary {
	m, _ := shared["funcs"].(map[string]*lockFuncSummary)
	if m == nil {
		m = make(map[string]*lockFuncSummary)
		shared["funcs"] = m
	}
	return m
}

func runLockOrder(pass *Pass) error {
	if !inLockOrderScope(pass.Path()) {
		return nil
	}
	funcs := lockOrderSummaries(pass.Shared)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			key := lockFuncKey(obj)
			sum := funcs[key]
			if sum == nil {
				sum = &lockFuncSummary{}
				funcs[key] = sum
			}
			scanLockOrderFunc(pass, fn, key, sum)
		}
	}
	return nil
}

// scanLockOrderFunc runs the lock-state scanner over one declaration,
// including its function literals (a closure's acquisitions get their
// own scope suffix in local-lock names but contribute edges to the
// same summary — the edges are real regardless of when the closure
// runs, because they happen under whatever that closure itself
// acquired).
func scanLockOrderFunc(pass *Pass, fn *ast.FuncDecl, key string, sum *lockFuncSummary) {
	// canon maps the scanner's textual lock keys ("s.mu") to canonical
	// names; every held lock was acquired earlier in the same
	// function, so the map is always warm when we translate held sets.
	canon := make(map[string]string)
	ls := &lockScanner{info: pass.TypesInfo}
	ls.onAcquire = func(call *ast.CallExpr, name string, kind lockKind, held lockState) {
		_, recv := methodCall(pass.TypesInfo, call)
		if recv == nil {
			return
		}
		c := canonicalLockName(pass, key, recv)
		canon[name] = c
		sum.acquires = append(sum.acquires, lockAcq{
			lock: c,
			pos:  pass.Fset.Position(call.Pos()),
			held: canonHeld(canon, held),
		})
	}
	ls.visit = func(n ast.Node, held lockState) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := calleeFunc(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return
		}
		if !inLockOrderScope(normPkgPath(callee.Pkg().Path())) {
			return
		}
		sum.calls = append(sum.calls, lockCallSite{
			callee: lockFuncKey(callee),
			pos:    pass.Fset.Position(call.Pos()),
			held:   canonHeld(canon, held),
		})
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		switch body := n.(type) {
		case *ast.FuncDecl:
			if body.Body != nil {
				ls.scanStmts(body.Body.List, lockState{})
			}
		case *ast.FuncLit:
			ls.scanStmts(body.Body.List, lockState{})
		}
		return true
	})
}

func canonHeld(canon map[string]string, held lockState) []string {
	var out []string
	for name := range held {
		if c, ok := canon[name]; ok {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// lockFuncKey names a function or method with its normalized package
// path: "ldpjoin/internal/service.Server.CheckpointNow".
func lockFuncKey(fn *types.Func) string {
	pkg := normPkgPath(fn.Pkg().Path())
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n, ok := deref(sig.Recv().Type()).(*types.Named); ok {
			return pkg + "." + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// canonicalLockName names a mutex stably across functions and
// packages: a field becomes pkg.Type.field, a package-level var
// pkg.var, and a local falls back to funcKey.var (unique to its
// function, as it should be — a local mutex cannot participate in a
// cross-function order).
func canonicalLockName(pass *Pass, funcKey string, recv ast.Expr) string {
	switch x := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		if base := deref(pass.TypesInfo.TypeOf(x.X)); base != nil {
			if n, ok := base.(*types.Named); ok && n.Obj().Pkg() != nil {
				return normPkgPath(n.Obj().Pkg().Path()) + "." + n.Obj().Name() + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
			if v.Parent() != nil && v.Parent().Parent() == types.Universe {
				return normPkgPath(pass.Pkg.Path()) + "." + v.Name()
			}
			return funcKey + "." + v.Name()
		}
	}
	return normPkgPath(pass.Pkg.Path()) + "." + types.ExprString(recv)
}

// lockEdge is "to was acquired while from was held", with one example.
type lockEdge struct {
	from, to string
	pos      token.Position
	via      string // non-empty: the call chain head that acquired to
}

func finishLockOrder(fp *FinishPass) error {
	funcs := lockOrderSummaries(fp.Shared)

	// Transitive acquisition sets, to a fixpoint over the call graph.
	trans := make(map[string]map[string]bool, len(funcs))
	for key, sum := range funcs {
		set := make(map[string]bool)
		for _, a := range sum.acquires {
			set[a.lock] = true
		}
		trans[key] = set
	}
	for changed := true; changed; {
		changed = false
		for key, sum := range funcs {
			set := trans[key]
			for _, c := range sum.calls {
				for lock := range trans[c.callee] {
					if !set[lock] {
						set[lock] = true
						changed = true
					}
				}
			}
		}
	}

	// Candidate edges: direct acquisitions under held locks, plus
	// calls under held locks to functions that (transitively) acquire.
	var candidates []lockEdge
	keys := make([]string, 0, len(funcs))
	for k := range funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		sum := funcs[key]
		for _, a := range sum.acquires {
			for _, h := range a.held {
				if h != a.lock {
					candidates = append(candidates, lockEdge{from: h, to: a.lock, pos: a.pos})
				}
			}
		}
		for _, c := range sum.calls {
			for lock := range trans[c.callee] {
				for _, h := range c.held {
					if h != lock {
						candidates = append(candidates, lockEdge{from: h, to: lock, pos: c.pos, via: c.callee})
					}
				}
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		// Prefer direct edges as the example, then earliest position.
		if (a.via == "") != (b.via == "") {
			return a.via == ""
		}
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		return a.pos.Line < b.pos.Line
	})
	edges := make(map[[2]string]lockEdge)
	for _, e := range candidates {
		k := [2]string{e.from, e.to}
		if _, ok := edges[k]; !ok {
			edges[k] = e
		}
	}

	// Strongly connected components over the lock graph; any SCC with
	// more than one lock is a cycle, and every edge inside it is an
	// order inversion worth its own diagnostic.
	adj := make(map[string][]string)
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for _, vs := range adj {
		sort.Strings(vs)
	}
	comp := tarjanSCC(adj)
	var inversions []lockEdge
	for k, e := range edges {
		cf, okf := comp[k[0]]
		ct, okt := comp[k[1]]
		if okf && okt && cf.id == ct.id && cf.size > 1 {
			inversions = append(inversions, e)
		}
	}
	sort.Slice(inversions, func(i, j int) bool {
		a, b := inversions[i], inversions[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.from+a.to < b.from+b.to
	})
	for _, e := range inversions {
		cycle := comp[e.from].members
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (via call to %s)", e.via)
		}
		fp.ReportAt(e.pos, "acquiring %s while holding %s%s inverts the lock order elsewhere; cycle: %s",
			e.to, e.from, via, strings.Join(cycle, " → "))
	}
	return nil
}

// sccInfo identifies a node's component.
type sccInfo struct {
	id      int
	size    int
	members []string // sorted, shared by all nodes of the component
}

// tarjanSCC computes strongly connected components of a string graph,
// iteratively (no recursion) for predictability on deep graphs.
func tarjanSCC(adj map[string][]string) map[string]*sccInfo {
	nodes := make([]string, 0, len(adj))
	seen := make(map[string]bool)
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for _, to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	out := make(map[string]*sccInfo)
	compID := 0

	type frame struct {
		node string
		ei   int
	}
	for _, start := range nodes {
		if _, ok := index[start]; ok {
			continue
		}
		var callStack []frame
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		callStack = append(callStack, frame{node: start})
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.ei < len(adj[f.node]) {
				w := adj[f.node][f.ei]
				f.ei++
				if _, ok := index[w]; !ok {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{node: w})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			// Pop: close component if root, propagate lowlink.
			if low[f.node] == index[f.node] {
				var members []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					members = append(members, w)
					if w == f.node {
						break
					}
				}
				sort.Strings(members)
				info := &sccInfo{id: compID, size: len(members), members: members}
				compID++
				for _, m := range members {
					out[m] = info
				}
			}
			n := f.node
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[n] < low[p.node] {
					low[p.node] = low[n]
				}
			}
		}
	}
	return out
}
