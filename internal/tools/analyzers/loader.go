package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	loader *loader
}

// loader type-checks packages from source using metadata from a single
// `go list -deps -json` invocation — no network, no module downloads,
// no dependency on golang.org/x/tools. The standard library is
// type-checked from GOROOT sources on demand; with CGO_ENABLED=0 the
// transitive file set is pure Go, so go/types needs nothing else.
type loader struct {
	fset  *token.FileSet
	metas map[string]*listPackage
	types map[string]*types.Package
	infos map[string]*types.Info
	asts  map[string][]*ast.File
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Error      *struct{ Err string }
}

// Load resolves patterns (as the go tool understands them, relative to
// dir) and returns the matched packages type-checked, with their full
// dependency closure available for well-known-type lookups. Test files
// are not loaded; LoadTests is the variant that includes them.
//
// Explicit testdata paths work — `go list ./testdata/src/lockio` names
// the directory directly even though wildcards skip testdata — which is
// what the analysistest fixtures rely on.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return load(dir, false, patterns...)
}

// LoadTests is Load with test code included: each matched package with
// test files is analyzed as its test variant (production + _test.go
// files compiled together, exactly as `go test` builds it), and
// external _test packages load alongside. This is what `ldpjoinvet`
// and the clean-tree check run — the analyzers' contracts bind test
// code too, with waivers (not path exemptions) covering deliberate
// violations. The synthesized ".test" main packages are skipped: their
// _testmain.go exists only inside the go tool's build.
func LoadTests(dir string, patterns ...string) ([]*Package, error) {
	return load(dir, true, patterns...)
}

func load(dir string, tests bool, patterns ...string) ([]*Package, error) {
	args := []string{
		"list", "-e",
		"-json=ImportPath,Name,Dir,GoFiles,ImportMap,Standard,DepOnly,ForTest,Error",
		"-deps",
	}
	if tests {
		args = append(args, "-test")
	}
	args = append(append(args, "--"), patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// CGO_ENABLED=0 selects the pure-Go file set for net and friends;
	// cgo-generated files do not exist on disk, so the source
	// type-checker could not follow them.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.Bytes())
	}

	l := &loader{
		fset:  token.NewFileSet(),
		metas: make(map[string]*listPackage),
		types: make(map[string]*types.Package),
		infos: make(map[string]*types.Info),
		asts:  make(map[string][]*ast.File),
	}
	var roots []string
	hasVariant := make(map[string]bool) // import path → a "pkg [pkg.test]" root exists
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		meta := p
		l.metas[p.ImportPath] = &meta
		if p.DepOnly || p.Standard {
			continue
		}
		// The synthesized test-binary main package: its _testmain.go is
		// generated inside the build, not on disk.
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.ForTest != "" && normPkgPath(p.ImportPath) == p.ForTest {
			hasVariant[p.ForTest] = true
		}
		roots = append(roots, p.ImportPath)
	}

	var pkgs []*Package
	for _, path := range roots {
		m := l.metas[path]
		// When the in-package test variant is a root, it subsumes the
		// plain package (same production files plus the _test.go files)
		// — analyzing both would just duplicate every diagnostic.
		if m.ForTest == "" && hasVariant[path] {
			continue
		}
		if m.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", path, m.Error.Err)
		}
		if len(m.GoFiles) == 0 {
			continue
		}
		tpkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			ImportPath: path,
			Dir:        m.Dir,
			Fset:       l.fset,
			Files:      l.asts[path],
			Types:      tpkg,
			Info:       l.infos[path],
			loader:     l,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// check type-checks path (memoized), recursively checking imports via
// the metadata map. The importing package's ImportMap translates source
// import paths through the standard library's vendoring (and, under
// -test, onto the in-package test variants).
func (l *loader) check(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.types[path]; ok {
		return p, nil
	}
	m := l.metas[path]
	if m == nil {
		return nil, fmt.Errorf("package %q missing from go list dependency closure", path)
	}
	if m.Error != nil {
		return nil, fmt.Errorf("go list %s: %s", path, m.Error.Err)
	}
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			if mapped, ok := m.ImportMap[ip]; ok {
				ip = mapped
			}
			return l.check(ip)
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	l.types[path] = pkg
	l.infos[path] = info
	l.asts[path] = files
	return pkg, nil
}

// lookup finds pkgPath.name anywhere in the loaded closure,
// type-checking the package on demand if it was listed but not yet
// needed. Returns nil when absent — analyzers treat that as "this
// well-known type cannot occur here".
func (l *loader) lookup(pkgPath, name string) types.Object {
	pkg, ok := l.types[pkgPath]
	if !ok {
		if l.metas[pkgPath] == nil {
			return nil
		}
		var err error
		pkg, err = l.check(pkgPath)
		if err != nil {
			return nil
		}
	}
	return pkg.Scope().Lookup(name)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
