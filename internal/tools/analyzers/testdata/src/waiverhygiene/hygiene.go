// Package waiverhygiene exercises dead-waiver detection: a waiver
// that suppresses nothing — for an analyzer that actually ran — is
// itself a finding, so burned-down waivers get deleted instead of
// silently swallowing the next diagnostic to land on their line.
package waiverhygiene

import "sync"

type counters struct {
	mu sync.Mutex
	n  int64
}

// liveWaiver suppresses a real atomiccounter finding: not flagged.
func (c *counters) liveWaiver() {
	//ldpjoinvet:ignore atomiccounter single-goroutine fixture helper, never shared
	c.n++
}

// deadWaiver excuses nothing — the increment below it is correctly
// locked — so the waiver itself is the finding.
func (c *counters) deadWaiver() {
	c.mu.Lock()
	defer c.mu.Unlock()
	//ldpjoinvet:ignore atomiccounter stale excuse left behind by a refactor // want `waiver for "atomiccounter" suppresses nothing`
	c.n++
}

// deadLockioWaiver is dead for a different analyzer in the same run.
func (c *counters) deadLockioWaiver() int {
	//ldpjoinvet:ignore lockio nothing below does I/O under a lock anymore // want `waiver for "lockio" suppresses nothing`
	return 0
}

// notInThisRun: maporder is registered but not part of this fixture
// run, so the waiver's liveness is unknowable here and not judged.
func (c *counters) notInThisRun() int {
	//ldpjoinvet:ignore maporder deterministic iteration is deliberate here
	return 1
}

// waivedDeadWaiver pins the recursion cap: a dead waiver can itself be
// waived with a waiverhygiene waiver, whose own liveness is never
// checked.
func (c *counters) waivedDeadWaiver() {
	c.mu.Lock()
	defer c.mu.Unlock()
	//ldpjoinvet:ignore waiverhygiene the line below is kept dead on purpose as a fixture
	//ldpjoinvet:ignore atomiccounter deliberately dead, excused by the hygiene waiver above
	c.n++
}
