// Package waiver exercises the waiver contract itself: a reason-less
// waiver and a waiver naming an unknown analyzer are both diagnostics,
// and neither suppresses the underlying finding.
package waiver

import "sync"

type counters struct {
	mu sync.Mutex
	n  int64
}

// A waiver with no reason is itself a finding, and suppresses nothing.
func (c *counters) reasonless() {
	//ldpjoinvet:ignore atomiccounter
	c.n++
}

// A typo'd analyzer name would silently waive nothing, so it is a
// finding too.
func (c *counters) unknownAnalyzer() {
	//ldpjoinvet:ignore atomiccounters typo means this suppresses nothing
	c.n++
}

// The well-formed shape: analyzer name plus justification.
func (c *counters) properlyWaived() {
	//ldpjoinvet:ignore atomiccounter single-goroutine test helper, never shared
	c.n++
}
