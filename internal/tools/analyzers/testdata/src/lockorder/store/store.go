// Package store exercises the transitive half of lockorder: an
// inversion threaded through a direct call is still an inversion.
package store

import "sync"

// Queue has two locks; Push reaches smu through flushLocked while
// holding qmu, Drain takes them the other way around.
type Queue struct {
	qmu sync.Mutex
	smu sync.Mutex
}

func (q *Queue) Push() {
	q.qmu.Lock()
	defer q.qmu.Unlock()
	q.flushLocked() // want `acquiring .*Queue\.smu while holding .*Queue\.qmu \(via call to .*Queue\.flushLocked\)`
}

func (q *Queue) flushLocked() {
	q.smu.Lock()
	q.smu.Unlock()
}

func (q *Queue) Drain() {
	q.smu.Lock()
	defer q.smu.Unlock()
	q.qmu.Lock() // want `acquiring .*Queue\.qmu while holding .*Queue\.smu inverts the lock order`
	q.qmu.Unlock()
}

// Settle acquires qmu alone — participating in the graph without
// adding edges draws nothing.
func (q *Queue) Settle() {
	q.qmu.Lock()
	defer q.qmu.Unlock()
}
