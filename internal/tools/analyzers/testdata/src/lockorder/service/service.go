// Package service is a stand-in for ldpjoin/internal/service: the
// lockorder analyzer builds a cross-function lock-acquisition graph
// over service/store/ingest packages and reports every edge of any
// cycle — two code paths that disagree about acquisition order can
// deadlock under load.
package service

import "sync"

// Server mirrors the production locking layers: walGate above mu.
type Server struct {
	mu      sync.Mutex
	opMu    sync.Mutex
	walGate sync.RWMutex
}

// Checkpoint establishes walGate → mu.
func (s *Server) Checkpoint() {
	s.walGate.Lock()
	defer s.walGate.Unlock()
	s.mu.Lock() // want `acquiring .*Server\.mu while holding .*Server\.walGate inverts the lock order`
	s.mu.Unlock()
}

// Handle inverts it: mu → walGate. Either order alone is fine; both
// together are a deadlock waiting for the right interleaving.
func (s *Server) Handle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.walGate.RLock() // want `acquiring .*Server\.walGate while holding .*Server\.mu inverts the lock order`
	s.walGate.RUnlock()
}

// Ordered1 and Ordered2 agree on opMu → mu; a consistent order draws
// no finding even though mu itself is tangled in the cycle above.
func (s *Server) Ordered1() {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *Server) Ordered2() {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}
