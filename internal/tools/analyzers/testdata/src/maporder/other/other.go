// Package other sits outside the protocol/store/core scope: the same
// shape is not reported here, because only the codec and durability
// layers owe byte-identical output.
package other

func encode(buf []byte, m map[uint64]uint64) []byte {
	for k, v := range m { // out of scope: no protocol/store/core path segment
		buf = append(buf, byte(k), byte(v))
	}
	return buf
}
