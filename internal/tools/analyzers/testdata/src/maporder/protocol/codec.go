// Package protocol exercises the maporder analyzer in a codec path
// segment: map iteration feeding any byte sink breaks byte-identical
// encodings.
package protocol

import (
	"fmt"
	"hash"
	"io"
	"maps"
	"slices"
)

// The classic bug: the encoding depends on map iteration order, so two
// encodes of the same sketch produce different bytes.
func encodeCells(buf []byte, m map[uint64]uint64) []byte {
	for k, v := range m { // want `range over map m feeds a \[\]byte append`
		buf = append(buf, byte(k), byte(v))
	}
	return buf
}

func hashCells(h hash.Hash, m map[string]int) {
	for k := range m { // want `range over map m feeds a call to Write`
		h.Write([]byte(k))
	}
}

func dumpCells(w io.Writer, m map[string]int) {
	for k, v := range m { // want `range over map m feeds a call to Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// The fix idiom: sort the keys, then range over the slice — a slice
// range is deterministic and never flagged.
func encodeSorted(buf []byte, m map[uint64]uint64) []byte {
	for _, k := range slices.Sorted(maps.Keys(m)) {
		buf = append(buf, byte(k), byte(m[k]))
	}
	return buf
}

// Collecting keys is fine: a []string append is not a byte sink.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Map-to-map copies emit no bytes.
func merge(dst, src map[string]int) {
	for k, v := range src {
		dst[k] += v
	}
}

// A waived range documents why order cannot matter.
func debugDump(w io.Writer, m map[string]int) {
	//ldpjoinvet:ignore maporder operator-facing debug output, never hashed or persisted
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
