// Package service exercises the envelope analyzer inside a service
// path segment, where both http.Error and bare error WriteHeader are
// violations.
package service

import (
	"encoding/json"
	"net/http"
)

// writeError is the fixture's stand-in for the errors.go helper: the
// status it writes is a variable, which is the helpers' own plumbing
// and never flagged.
func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": message},
	})
}

func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http\.Error writes text/plain, not the structured error envelope`
	w.WriteHeader(http.StatusBadRequest)                  // want `bare WriteHeader\(400\) bypasses the structured error envelope`
	w.WriteHeader(503)                                    // want `bare WriteHeader\(503\) bypasses the structured error envelope`
}

func handleGood(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST required")
		return
	}
	w.WriteHeader(http.StatusNoContent) // success statuses are fine bare
}

// A wrapper implementing http.ResponseWriter is held to the same rule.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func handleWrapped(sw *statusWriter) {
	sw.WriteHeader(http.StatusBadGateway) // want `bare WriteHeader\(502\) bypasses the structured error envelope`
}

// WriteHeader on a non-ResponseWriter type is someone else's method.
type frame struct{}

func (f *frame) WriteHeader(version int) {}

func handleFrame(f *frame) {
	f.WriteHeader(500)
}

// A waived bare status documents its reason.
func handleWaived(w http.ResponseWriter) {
	//ldpjoinvet:ignore envelope HEAD responses carry no body, so there is no envelope to write
	w.WriteHeader(http.StatusNotFound)
}
