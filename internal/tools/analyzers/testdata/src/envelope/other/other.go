// Package other sits outside any service path segment: http.Error is
// still banned module-wide, but a bare error WriteHeader is allowed —
// non-service packages (test scaffolding, debug endpoints) do not owe
// clients the envelope.
package other

import "net/http"

func respond(w http.ResponseWriter) {
	http.Error(w, "nope", 500) // want `http\.Error writes text/plain, not the structured error envelope`
	w.WriteHeader(500)         // out of scope here: no service path segment
}
