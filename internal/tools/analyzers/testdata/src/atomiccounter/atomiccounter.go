// Package atomiccounter exercises the atomiccounter analyzer: plain
// integer counters on shared structs must be atomic or bumped under the
// exclusive lock.
package atomiccounter

import (
	"sync"
	"sync/atomic"
)

// stats carries a mutex, which marks it shared: its plain counters are
// reachable from more than one goroutine.
type stats struct {
	mu   sync.Mutex
	hits int64
	good atomic.Int64
}

// The PR 5 bug shape: the read path bumped a plain counter with no
// exclusive lock, losing counts under contention.
func (s *stats) bumpUnlocked() {
	s.hits++ // want `unsynchronized increment of s\.hits on shared struct stats`
}

func (s *stats) addUnlocked(n int64) {
	s.hits += n // want `unsynchronized increment of s\.hits on shared struct stats`
}

func (s *stats) bumpLocked() {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}

func (s *stats) bumpDeferLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
}

func (s *stats) bumpAtomic() {
	s.good.Add(1)
}

// rwstats shows the subtle half of the rule: an RLock is held, but a
// read lock does not protect a write.
type rwstats struct {
	mu    sync.RWMutex
	reads int64
}

func (r *rwstats) bumpUnderRLock() {
	r.mu.RLock()
	r.reads++ // want `an RLock does not protect writes`
	r.mu.RUnlock()
}

func (r *rwstats) bumpUnderWriteLock() {
	r.mu.Lock()
	r.reads++
	r.mu.Unlock()
}

// An early-unlocked path leaves the fallthrough increment bare.
func (r *rwstats) bumpAfterUnlock() {
	r.mu.Lock()
	r.mu.Unlock()
	r.reads++ // want `unsynchronized increment of r\.reads on shared struct rwstats`
}

// local carries no concurrency machinery, so it is not shared-marked:
// plain counters on it are fine.
type local struct {
	n int
}

func (l *local) bump() {
	l.n++
}

// A loop variable is not a struct field at all.
func count(xs []int) int {
	total := 0
	for range xs {
		total++
	}
	return total
}

// A waived increment documents why it cannot race.
func (s *stats) bumpWaived() {
	//ldpjoinvet:ignore atomiccounter construction-time bump, the struct has not escaped yet
	s.hits++
}
