// Package lockio exercises the lockio analyzer: blocking I/O while a
// sync.Mutex or sync.RWMutex is held.
package lockio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
)

type server struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	state map[string]int
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// The PR 5 bug shape: handleStatus held the lifecycle mutex across
// writeJSON via a deferred unlock, so a parked client socket write
// stalled every ingest request queued behind the lock.
func (s *server) deferredUnlockAcrossWrite(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, 200, s.state) // want `call to writeJSON while s\.mu is held`
}

func (s *server) explicitHoldAcrossWrite(w http.ResponseWriter) {
	s.mu.Lock()
	writeJSON(w, 200, s.state) // want `call to writeJSON while s\.mu is held`
	s.mu.Unlock()
}

// The PR 5 fix shape: snapshot under the lock, release, then encode.
func (s *server) snapshotThenWrite(w http.ResponseWriter) {
	s.mu.Lock()
	snapshot := make(map[string]int, len(s.state))
	for k, v := range s.state {
		snapshot[k] = v
	}
	s.mu.Unlock()
	writeJSON(w, 200, snapshot)
}

// An unlock on an early-return path does not release the fallthrough
// path: the write below still runs under the lock.
func (s *server) earlyReturnUnlock(w http.ResponseWriter, bad bool) {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return
	}
	_, _ = w.Write([]byte("ok")) // want `blocking w\.Write while s\.mu is held`
	s.mu.Unlock()
}

// A read lock is still a lock: a stalled write parks every writer
// waiting behind the RLock holder.
func (s *server) readLockAcrossHeader(w http.ResponseWriter) {
	s.rw.RLock()
	w.WriteHeader(204) // want `blocking w\.WriteHeader while s\.rw is held`
	s.rw.RUnlock()
}

func (s *server) connWrite(c net.Conn) {
	s.mu.Lock()
	_, _ = c.Write([]byte("x")) // want `blocking c\.Write while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) fileSync(f *os.File) {
	s.mu.Lock()
	_ = f.Sync() // want `file Sync while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) fprintfToResponse(w http.ResponseWriter) {
	s.mu.Lock()
	fmt.Fprintf(w, "%d", len(s.state)) // want `fmt\.Fprintf to a blocking writer while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) bufioFlush(bw *bufio.Writer) {
	s.mu.Lock()
	_ = bw.Flush() // want `blocking bw\.Flush while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) encoderUnderLock(w http.ResponseWriter) {
	enc := json.NewEncoder(w)
	s.mu.Lock()
	_ = enc.Encode(s.state) // want `json\.Encoder\.Encode`
	s.mu.Unlock()
}

// A wrapper that implements http.ResponseWriter is just as blocking as
// the ResponseWriter it wraps.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (s *server) wrappedWriter(w *statusWriter) {
	s.mu.Lock()
	_, _ = w.Write([]byte("ok")) // want `blocking w\.Write while s\.mu is held`
	s.mu.Unlock()
}

// A promoted Lock from an embedded mutex counts too.
type registry struct {
	sync.Mutex
	entries map[string]int
}

func (r *registry) embeddedMutex(w http.ResponseWriter) {
	r.Lock()
	writeJSON(w, 200, r.entries) // want `call to writeJSON while r is held`
	r.Unlock()
}

// In-memory sinks are not blocking I/O.
func (s *server) bufferUnderLock() []byte {
	var buf bytes.Buffer
	s.mu.Lock()
	fmt.Fprintf(&buf, "%d", len(s.state))
	s.mu.Unlock()
	return buf.Bytes()
}

// A goroutine does not run under the spawner's locks; its body is
// scanned as its own function.
func (s *server) spawned(w http.ResponseWriter) {
	s.mu.Lock()
	go func() {
		writeJSON(w, 200, nil)
	}()
	s.mu.Unlock()
}

// An intentional hold is waived in place, with its reason.
func (s *server) waived(w http.ResponseWriter) {
	s.mu.Lock()
	//ldpjoinvet:ignore lockio single-threaded startup path, nothing can contend yet
	_, _ = w.Write([]byte("ok"))
	s.mu.Unlock()
}
