// Package service exercises the walorder analyzer: in mutating
// handlers, the store WAL append must dominate the ingest apply/ack on
// every control-flow path.
package service

import (
	"ldpjoin/internal/tools/analyzers/testdata/src/walorder/ingest"
	"ldpjoin/internal/tools/analyzers/testdata/src/walorder/store"
)

type server struct {
	st  *store.Store
	col *ingest.Column
}

// The contract shape: append (guarded by the in-memory-mode nil check),
// then apply. The `if s.st != nil` guard counts as domination — columns
// without a durable store have nothing to append to.
func (s *server) handleReports(reports [][]byte) error {
	if s.st != nil {
		if err := s.st.AppendReports("col", reports); err != nil {
			return err
		}
	}
	return s.col.EnqueueAll(reports)
}

// No append at all before the apply.
func (s *server) handleReportsVolatile(reports [][]byte) error {
	return s.col.EnqueueAll(reports) // want `ingest s\.col\.EnqueueAll is not dominated by a store WAL append`
}

// The PR 7 bug shape: apply first, append after — a crash between the
// two acks data the WAL never saw.
func (s *server) handleApplyThenAppend(reports [][]byte) error {
	if err := s.col.EnqueueAll(reports); err != nil { // want `ingest s\.col\.EnqueueAll is not dominated by a store WAL append`
		return err
	}
	return s.st.AppendReports("col", reports)
}

// An append on only one branch does not dominate: the else arm reaches
// the apply without durability. (A plain condition is not the
// in-memory-mode exemption; only a nil check on the store qualifies.)
func (s *server) handleBranchyAppend(reports [][]byte, durable bool) error {
	if durable {
		if err := s.st.AppendReports("col", reports); err != nil {
			return err
		}
	}
	return s.col.EnqueueAll(reports) // want `ingest s\.col\.EnqueueAll is not dominated by a store WAL append`
}

// Appending on both arms of a branch does dominate.
func (s *server) handleEitherAppend(reports [][]byte, matrix bool) error {
	if matrix {
		if err := s.st.AppendMatrixReports("col", reports); err != nil {
			return err
		}
	} else {
		if err := s.st.AppendReports("col", reports); err != nil {
			return err
		}
	}
	return s.col.EnqueueAll(reports)
}

// Advance is an apply too, and AppendPlusAdvance is its append.
func (s *server) handleAdvance(round uint64) error {
	if s.st != nil {
		if err := s.st.AppendPlusAdvance("col", round); err != nil {
			return err
		}
	}
	return s.col.Advance(round)
}

func (s *server) handleAdvanceVolatile(round uint64) error {
	return s.col.Advance(round) // want `ingest s\.col\.Advance is not dominated by a store WAL append`
}

// Merges follow the same contract.
func (s *server) handleMerge(blob []byte) error {
	if s.st != nil {
		if err := s.st.AppendMerge("col", blob); err != nil {
			return err
		}
	}
	return s.col.MergeAggregator(blob)
}

func (s *server) handleMergeVolatile(blob []byte) error {
	return s.col.MergePlus(blob) // want `ingest s\.col\.MergePlus is not dominated by a store WAL append`
}

// Read-only ingest calls are not applies; handlers that only inspect
// state owe the WAL nothing.
func (s *server) handleStats() int {
	return s.col.Len()
}

// Only handle* functions are in scope: recovery replays the WAL into
// the column, so the apply IS the append's consequence.
func (s *server) replayRecovered(reports [][]byte) error {
	return s.col.EnqueueAll(reports)
}

// A waived apply documents why the contract does not hold here.
func (s *server) handleShadowApply(reports [][]byte) error {
	//ldpjoinvet:ignore walorder shadow column for A/B accuracy, never acked to clients
	return s.col.EnqueueAll(reports)
}
