// Package store is a stand-in for ldpjoin/internal/store: the walorder
// analyzer matches WAL-append methods by name on a receiver from a
// package whose import path ends in "store".
package store

// Store is the durable log façade the service appends to before
// applying any mutation.
type Store struct{}

func (s *Store) AppendReports(column string, reports [][]byte) error       { return nil }
func (s *Store) AppendMatrixReports(column string, reports [][]byte) error { return nil }
func (s *Store) AppendPlusReports(column string, reports [][]byte) error   { return nil }
func (s *Store) AppendPlusAdvance(column string, round uint64) error       { return nil }
func (s *Store) AppendMerge(column string, blob []byte) error              { return nil }
func (s *Store) Finalize(column string, blob []byte) error                 { return nil }
func (s *Store) FinalizePlus(column string, blob []byte) error             { return nil }
