// Package ingest is a stand-in for ldpjoin/internal/ingest: the
// walorder analyzer matches apply/ack methods by name on a receiver
// from a package whose import path ends in "ingest".
package ingest

// Column accepts randomized reports once they are durable.
type Column struct{}

func (c *Column) EnqueueAll(reports [][]byte) error          { return nil }
func (c *Column) Advance(round uint64) error                 { return nil }
func (c *Column) MergeAggregator(blob []byte) error          { return nil }
func (c *Column) MergePlus(blob []byte) error                { return nil }
func (c *Column) Len() int                                   { return 0 }
func (c *Column) Snapshot() []byte                           { return nil }
func (c *Column) Validate(reports [][]byte) ([][]byte, bool) { return reports, true }
