// Package annotated exercises the //ldpjoin:hotpath directive: outside
// kernel packages only annotated functions are hot, and everything
// else allocates freely.
package annotated

// State is scratch a hot function might hand back.
type State struct {
	counts []int
}

// Sum is hot and clean.
//
//ldpjoin:hotpath
func Sum(vals []float64) float64 {
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total
}

// Histogram is hot and allocates a map per call.
//
//ldpjoin:hotpath
func Histogram(vals []int) map[int]int {
	out := map[int]int{} // want `map literal allocates on the hot path`
	for _, v := range vals {
		out[v]++
	}
	return out
}

// NewState is hot and heap-allocates its result.
//
//ldpjoin:hotpath
func NewState() *State {
	return &State{} // want `&composite literal allocates on the hot path`
}

// Concat is hot and builds a string per call.
//
//ldpjoin:hotpath
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates on the hot path`
}

// Cold is unannotated: the same allocations draw no findings.
func Cold(n int) []int {
	out := make([]int, n)
	return append(out, len(out))
}

// WaivedHot shows the escape hatch for a deliberate allocation on an
// otherwise-hot path.
//
//ldpjoin:hotpath
func WaivedHot(n int) []int {
	return make([]int, n) //ldpjoinvet:ignore hotalloc fixture demonstrates a justified one-off allocation
}
