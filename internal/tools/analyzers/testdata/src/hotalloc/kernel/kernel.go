// Package kernel is a stand-in for ldpjoin/internal/kernel: every
// function in a package whose import path has a "kernel" segment is
// hot, and hot functions must not allocate.
package kernel

// Accumulate is the well-behaved shape: index loops over preallocated
// storage, no allocation anywhere.
func Accumulate(dst, src []float64) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] += src[i]
	}
}

// Scaled allocates its result — the classic "helper that looks free"
// inner-loop bug.
func Scaled(src []float64, by float64) []float64 {
	out := make([]float64, len(src)) // want `make allocates on the hot path`
	for i, v := range src {
		out[i] = v * by
	}
	return out
}

// Grow appends into a slice it does not own, so steady-state growth
// reallocates every call.
func Grow(dst []float64, v float64) []float64 {
	tmp := append(dst, v) // want `append may grow and allocate`
	return tmp
}

// Fill is the sanctioned scratch idiom: appending a slice onto itself
// (reset with [:0]) fills preallocated capacity without growing.
func Fill(buf []float64, n int) []float64 {
	buf = append(buf[:0], 0)
	for i := 1; i < n; i++ {
		buf = append(buf, float64(i))
	}
	return buf
}

// Box returns a float through any, boxing it on every call.
func Box(v float64) any {
	return v // want `implicit conversion to interface boxes a float64 value`
}

// Closure captures sum; closures allocate.
func Closure(vals []float64) float64 {
	sum := 0.0
	add := func(v float64) { sum += v } // want `function literal captures sum`
	for _, v := range vals {
		add(v)
	}
	return sum
}

// Spawn allocates a goroutine per call.
func Spawn(fn func()) {
	go fn() // want `go statement allocates`
}

// Literal materializes a fresh slice per call.
func Literal() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

// Stringify copies the byte slice into a fresh string.
func Stringify(b []byte) string {
	return string(b) // want `string/\[\]byte conversion copies and allocates`
}
