// Package client exercises the poolown contract: once ownership of a
// pooled batch transfers — protocol.Put*Batch or a successful
// EnqueueAllPooled — any further use, through any alias, is a finding.
package client

import (
	"ldpjoin/internal/tools/analyzers/testdata/src/poolown/ingest"
	"ldpjoin/internal/tools/analyzers/testdata/src/poolown/protocol"
)

var sink int

// useAfterPut is the plain bug: write through a returned batch.
func useAfterPut() {
	b := protocol.GetReportBatch()
	b = append(b, protocol.Report{Index: 1})
	protocol.PutReportBatch(b)
	b[0] = protocol.Report{} // want `b used after protocol\.PutReportBatch took ownership`
}

// doublePut: the second Put is itself a use of a surrendered value.
func doublePut() {
	b := protocol.GetReportBatch()
	protocol.PutReportBatch(b)
	protocol.PutReportBatch(b) // want `b used after protocol\.PutReportBatch took ownership`
}

// returnAfterPut: returning the batch escapes it to the caller while
// the pool owns the backing array.
func returnAfterPut() []protocol.Report {
	b := protocol.GetReportBatch()
	protocol.PutReportBatch(b)
	return b // want `b used after protocol\.PutReportBatch took ownership`
}

// aliasThroughSubslice: a sub-slice shares the backing array, so
// consuming the root poisons the alias and vice versa.
func aliasThroughSubslice() {
	b := protocol.GetReportBatch()
	alias := b[:0]
	protocol.PutReportBatch(b)
	alias = append(alias, protocol.Report{}) // want `alias used after protocol\.PutReportBatch took ownership`
}

// matrixAfterPut covers the second pool.
func matrixAfterPut() {
	m := protocol.GetMatrixBatch()
	protocol.PutMatrixBatch(m)
	m[0][0]++ // want `m used after protocol\.PutMatrixBatch took ownership`
}

// enqueueCompositeLit: wrapping the batch in a literal for
// EnqueueAllPooled still transfers ownership of the element.
func enqueueCompositeLit(col *ingest.Column) {
	batch := protocol.GetReportBatch()
	_ = col.EnqueueAllPooled([][]protocol.Report{batch})
	sink = len(batch) // want `batch used after EnqueueAllPooled took ownership`
}

// enqueueContainer: consuming the container consumes every element
// bound from it.
func enqueueContainer(col *ingest.Column, batches [][]protocol.Report) {
	b := batches[1]
	_ = col.EnqueueAllPooled(batches)
	sink = len(b) // want `b used after EnqueueAllPooled took ownership`
}

// errBranchStillOwns pins the error-return carve-out: on failure the
// batches were never scheduled and remain the caller's, so the error
// branch may use (and recycle) them — but the success path may not.
func errBranchStillOwns(col *ingest.Column, batches [][]protocol.Report) error {
	if err := col.EnqueueAllPooled(batches); err != nil {
		sink = len(batches) // ok: ownership did not transfer on error
		return err
	}
	sink = len(batches) // want `batches used after EnqueueAllPooled took ownership`
	return nil
}

// loopCarried: a Put at the bottom of an iteration makes the use at
// the top of the next iteration a use-after-transfer — and the next
// Put a double-put.
func loopCarried(n int) {
	b := protocol.GetReportBatch()
	for i := 0; i < n; i++ {
		sink = len(b)              // want `b used after protocol\.PutReportBatch took ownership`
		protocol.PutReportBatch(b) // want `b used after protocol\.PutReportBatch took ownership`
	}
}

// reassignmentKills: re-binding to a fresh batch ends the taint.
func reassignmentKills() {
	b := protocol.GetReportBatch()
	protocol.PutReportBatch(b)
	b = protocol.GetReportBatch()
	b = append(b, protocol.Report{}) // ok: fresh batch
	protocol.PutReportBatch(b)
}

// elementPutLeavesContainer: recycling one element does not poison
// the container or its other elements, and a terminated branch
// (continue) does not leak its consumption into the next statement.
func elementPutLeavesContainer(batches [][]protocol.Report) {
	for _, batch := range batches {
		if len(batch) == 0 {
			protocol.PutReportBatch(batch)
			continue
		}
		sink += len(batch) // ok: the consumed path continued away
	}
	sink = len(batches) // ok: element Put does not consume the container
}

// enqueueAllKeepsOwnership: the non-pooled variant transfers nothing.
func enqueueAllKeepsOwnership(col *ingest.Column, batches [][]protocol.Report) {
	_ = col.EnqueueAll(batches)
	sink = len(batches) // ok: EnqueueAll borrows, the caller still owns
}

// waivedUse shows the escape hatch: a deliberate reuse carries its
// justification inline and produces no finding.
func waivedUse() {
	b := protocol.GetReportBatch()
	protocol.PutReportBatch(b)
	sink = len(b) //ldpjoinvet:ignore poolown fixture demonstrates a deliberate, justified reuse
}
