// Package ingest is a stand-in for ldpjoin/internal/ingest: poolown
// matches EnqueueAllPooled by name on a receiver from a package whose
// import path ends in "ingest".
package ingest

import "ldpjoin/internal/tools/analyzers/testdata/src/poolown/protocol"

// Column accepts report batches for asynchronous application.
type Column struct{}

// EnqueueAll schedules batches; ownership stays with the caller.
func (c *Column) EnqueueAll(batches [][]protocol.Report) error { return nil }

// EnqueueAllPooled schedules batches and recycles them into the
// protocol pools after application: ownership transfers on success.
// On error the batches were not scheduled and remain the caller's.
func (c *Column) EnqueueAllPooled(batches [][]protocol.Report) error { return nil }
