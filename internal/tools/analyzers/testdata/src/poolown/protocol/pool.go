// Package protocol is a stand-in for ldpjoin/internal/protocol: the
// poolown analyzer matches the pool Put functions by name on a package
// whose import path ends in "protocol".
package protocol

// Report is one randomized client report.
type Report struct {
	Index uint32
	Sign  int8
}

// GetReportBatch hands out a pooled, zero-length report slice.
func GetReportBatch() []Report { return nil }

// PutReportBatch returns a batch to the pool; the caller must not
// touch it afterwards.
func PutReportBatch(b []Report) {}

// GetMatrixBatch hands out a pooled matrix row set.
func GetMatrixBatch() [][]float64 { return nil }

// PutMatrixBatch returns a matrix to the pool.
func PutMatrixBatch(m [][]float64) {}
