// Package broken does not type-check: loader_test uses it to prove
// Load surfaces type errors instead of analyzing a half-checked tree.
// It lives under testdata so build wildcards never match it.
package broken

func mismatched() int {
	var s string = 42
	return s
}
