// Package analysistest runs a single analyzer over fixture packages
// under testdata/src and checks its diagnostics against `// want`
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest
// closely enough that the fixtures would port over unchanged.
//
// A fixture line carries expectations as quoted regular expressions:
//
//	http.Error(w, "boom", 500) // want `http\.Error writes text/plain`
//
// Multiple expectations on one line each match one diagnostic. A
// diagnostic with no matching expectation, or an expectation no
// diagnostic matched, fails the test. Diagnostics from the "waiver"
// pseudo-analyzer (malformed //ldpjoinvet:ignore comments) participate
// like any other, so fixtures can pin the waiver contract too.
//
// Fixture packages are real packages of this module — `go list`
// resolves explicit testdata paths even though wildcards skip them —
// so fixtures type-check against the standard library and may import
// sibling fixture packages by their full module path.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ldpjoin/internal/tools/analyzers"
)

// wantRE matches one quoted expectation: a Go string literal in
// backquotes or double quotes.
var wantRE = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

// Run loads every package under testdata/src/<sub> for each sub,
// runs a (with waiver handling) over all of them, and checks the
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *analyzers.Analyzer, subs ...string) {
	t.Helper()
	RunSuite(t, []*analyzers.Analyzer{a}, subs...)
}

// RunSuite is Run for a set of analyzers executed together — required
// for analyzers whose findings only exist relative to a whole run
// (waiverhygiene's dead-waiver check needs the analyzer whose waiver
// went dead to be in the same run), and handy for fixtures exercising
// cross-analyzer interplay.
func RunSuite(t *testing.T, as []*analyzers.Analyzer, subs ...string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}

	// Collect every fixture directory that contains Go files, as
	// explicit ./testdata/... patterns (wildcards skip testdata).
	var patterns []string
	for _, sub := range subs {
		root := filepath.Join(cwd, "testdata", "src", sub)
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			entries, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					rel, err := filepath.Rel(cwd, path)
					if err != nil {
						return err
					}
					patterns = append(patterns, "./"+filepath.ToSlash(rel))
					break
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking fixtures for %s: %v", sub, err)
		}
	}
	if len(patterns) == 0 {
		t.Fatalf("no fixture packages under testdata/src for %v", subs)
	}

	pkgs, err := analyzers.Load(cwd, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	res, err := analyzers.Run(pkgs, as)
	if err != nil {
		t.Fatalf("running %v: %v", names(as), err)
	}

	checkExpectations(t, pkgs, res.Diagnostics)
}

func names(as []*analyzers.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

// expectation is one `// want` regexp, positioned.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, pkgs []*analyzers.Package, diags []analyzers.Diagnostic) {
	t.Helper()
	var wants []*expectation
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			file := pkg.Fset.Position(f.Pos()).Filename
			if seen[file] {
				continue
			}
			seen[file] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// A comment that IS a want, or — for directive
					// comments like //ldpjoinvet:ignore, which run to
					// end of line and so cannot be followed by a
					// separate comment — a want embedded at its tail.
					text, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
					if !ok {
						i := strings.Index(c.Text, "// want ")
						if i <= 0 {
							continue
						}
						text = c.Text[i+len("// want "):]
					}
					line := pkg.Fset.Position(c.Pos()).Line
					for _, lit := range wantRE.FindAllString(text, -1) {
						pattern, err := unquote(lit)
						if err != nil {
							t.Errorf("%s:%d: bad want literal %s: %v", file, line, lit, err)
							continue
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Errorf("%s:%d: bad want regexp %q: %v", file, line, pattern, err)
							continue
						}
						wants = append(wants, &expectation{file: file, line: line, re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func unquote(lit string) (string, error) {
	if strings.HasPrefix(lit, "`") {
		return strings.Trim(lit, "`"), nil
	}
	s, err := strconv.Unquote(lit)
	if err != nil {
		return "", fmt.Errorf("unquoting %s: %w", lit, err)
	}
	return s, nil
}
