package analyzers_test

import (
	"os"
	"strings"
	"testing"

	"ldpjoin/internal/tools/analyzers"
)

// TestLoadMissingDirectory: a pattern naming a directory that does not
// exist must fail loudly, not return zero packages — a silent empty
// load would make ldpjoinvet report "clean" for a typo'd path.
func TestLoadMissingDirectory(t *testing.T) {
	cwd := mustGetwd(t)
	_, err := analyzers.Load(cwd, "./does/not/exist")
	wantErrContaining(t, err, "does/not/exist")
}

// TestLoadUnresolvablePackage: an import-path pattern outside the
// module resolves to nothing and must error.
func TestLoadUnresolvablePackage(t *testing.T) {
	cwd := mustGetwd(t)
	_, err := analyzers.Load(cwd, "ldpjoin/no/such/pkg")
	wantErrContaining(t, err, "ldpjoin/no/such/pkg")
}

// TestLoadGoListFailure: when the `go list` subprocess itself cannot
// run (here: the working directory is gone), the error names go list
// so the operator looks at the environment, not the analyzers.
func TestLoadGoListFailure(t *testing.T) {
	_, err := analyzers.Load("/nonexistent-ldpjoinvet-dir", "./...")
	wantErrContaining(t, err, "go list")
}

// TestLoadTypeCheckError: code that parses but does not type-check must
// abort the load with the compiler's position and message. Analyzing a
// half-checked tree would produce garbage findings; refusing is the
// contract. The fixture lives under testdata so build wildcards never
// see it.
func TestLoadTypeCheckError(t *testing.T) {
	cwd := mustGetwd(t)
	_, err := analyzers.Load(cwd, "./testdata/broken")
	wantErrContaining(t, err, "type-checking")
	wantErrContaining(t, err, "broken.go:7")
}

// TestLoadTestsVariantSubsumesPlain: under LoadTests a package with
// test files loads exactly once, as its test variant — never as both
// the plain package and the variant, which would duplicate every
// diagnostic.
func TestLoadTestsVariantSubsumesPlain(t *testing.T) {
	cwd := mustGetwd(t)
	pkgs, err := analyzers.LoadTests(cwd, "ldpjoin/internal/protocol")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	hasTestFile := false
	for _, p := range pkgs {
		norm := strings.TrimSuffix(strings.SplitN(p.ImportPath, " ", 2)[0], "_test")
		seen[norm]++
		for _, f := range p.Files {
			if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
				hasTestFile = true
			}
		}
	}
	if seen["ldpjoin/internal/protocol"] == 0 {
		t.Fatalf("protocol package not loaded; got %v", seen)
	}
	for path, n := range seen {
		if n > 1 {
			t.Errorf("package %s loaded %d times; the test variant must subsume the plain package", path, n)
		}
	}
	if !hasTestFile {
		t.Error("LoadTests loaded no _test.go files for internal/protocol")
	}
}

func mustGetwd(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return cwd
}

func wantErrContaining(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("want error containing %q, got: %v", substr, err)
	}
}
