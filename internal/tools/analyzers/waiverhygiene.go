package analyzers

// hygieneName is the waiverhygiene analyzer's identifier; the runner
// special-cases it (dead-waiver detection needs the whole run's waiver
// accounting, so it lives in Run's final phase rather than here).
const hygieneName = "waiverhygiene"

// WaiverHygiene flags well-formed waivers that suppress nothing. A
// `//ldpjoinvet:ignore` earns its place by excusing a specific
// diagnostic; once the code it excused is gone the waiver is a lie —
// it reads as "this invariant is violated here on purpose" over code
// that violates nothing, and it would silently swallow the next,
// unrelated finding to land on its line. Deleting burned-down waivers
// keeps every remaining suppression attributable to live code.
//
// The check is a property of a whole run, not of one package: a waiver
// is dead only relative to the set of analyzers that actually ran and
// the diagnostics they actually produced. So Run is nil and the runner
// performs the detection itself after waiver accounting, only for
// waivers naming analyzers present in the run set (a poolown waiver is
// not "dead" in a run that never executed poolown). A dead-waiver
// finding is itself waivable with a waiverhygiene waiver, whose own
// liveness is deliberately not checked — that ends the recursion.
var WaiverHygiene = &Analyzer{
	Name: hygieneName,
	Doc:  "flag //ldpjoinvet:ignore waivers that no longer suppress any diagnostic",
	Run:  nil,
}
