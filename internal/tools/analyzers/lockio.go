package analyzers

import (
	"go/ast"
	"go/types"
)

// LockIO flags code that holds a sync.Mutex or sync.RWMutex across a
// blocking I/O call — the PR 5 bug class, where handleStatus and
// handleStats held the lifecycle mutex across writeJSON and a stalled
// client could park every ingest request behind a parked socket write.
//
// The rule: snapshot under the lock, unlock, then write. Blocking
// calls are writes to an http.ResponseWriter (including wrappers that
// implement it), net.Conn reads/writes, *os.File Write/Sync,
// (*bufio.Writer).Flush, (*json.Encoder).Encode, fmt.Fprint* to any
// of those sinks, and this module's writeJSON helpers.
//
// Intentional holds — a WAL serializing appends under its own mutex —
// are waived in place: //ldpjoinvet:ignore lockio <reason>.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "flag blocking I/O performed while a sync.Mutex/RWMutex is held",
	Run:  runLockIO,
}

func runLockIO(pass *Pass) error {
	responseWriter := pass.LookupType("net/http", "ResponseWriter")
	conn := pass.LookupType("net", "Conn")

	ls := &lockScanner{
		info: pass.TypesInfo,
		visit: func(n ast.Node, held lockState) {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(held) == 0 {
				return
			}
			what := blockingIO(pass, call, responseWriter, conn)
			if what == "" {
				return
			}
			for mu := range held {
				pass.Reportf(call.Pos(), "%s while %s is held; snapshot under the lock, release it, then perform I/O", what, mu)
			}
		},
	}
	for _, f := range pass.Files {
		ls.scanFile(f)
	}
	return nil
}

// blockingIO classifies call as a blocking I/O operation, returning a
// human-readable description or "" when it is not one.
func blockingIO(pass *Pass, call *ast.CallExpr, responseWriter, conn types.Type) string {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}

	// This module's writeJSON / writeError helpers encode straight to
	// the client socket.
	if fn.Pkg() != nil && fn.Pkg().Path() != "fmt" {
		switch fn.Name() {
		case "writeJSON", "writeError", "httpError":
			if fn.Type().(*types.Signature).Recv() == nil {
				return "call to " + fn.Name()
			}
		}
	}

	// fmt.Fprint* writing to a blocking sink.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && len(call.Args) > 0 {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			if t := pass.TypesInfo.TypeOf(call.Args[0]); t != nil && isBlockingWriter(t, responseWriter, conn) {
				return "fmt." + fn.Name() + " to a blocking writer"
			}
		}
		return ""
	}

	// Method calls on blocking sinks.
	method, recv := methodCall(pass.TypesInfo, call)
	if method == nil {
		return ""
	}
	recvType := pass.TypesInfo.TypeOf(recv)
	if recvType == nil {
		return ""
	}
	switch method.Name() {
	case "Write", "WriteString", "WriteHeader", "ReadFrom", "Read":
		if isBlockingWriter(recvType, responseWriter, conn) {
			return "blocking " + types.ExprString(recv) + "." + method.Name()
		}
	case "Sync", "WriteAt":
		if isNamedType(recvType, "os", "File") {
			return "file " + method.Name()
		}
	case "Flush":
		if isBlockingWriter(recvType, responseWriter, conn) || isNamedType(recvType, "bufio", "Writer") {
			return "blocking " + types.ExprString(recv) + ".Flush"
		}
	case "Encode":
		if isNamedType(recvType, "encoding/json", "Encoder") {
			return "json.Encoder.Encode (writes to the underlying stream)"
		}
	}
	return ""
}

// isBlockingWriter reports whether t is a sink whose writes can block
// on the network or disk: anything implementing http.ResponseWriter or
// net.Conn, or *os.File.
func isBlockingWriter(t types.Type, responseWriter, conn types.Type) bool {
	return implementsType(t, responseWriter) ||
		implementsType(t, conn) ||
		isNamedType(t, "os", "File")
}
