package analyzers

import (
	"go/ast"
)

// Envelope enforces the PR 7 structured-error contract: every 4xx/5xx
// the API emits is the {"error":{code,message,column}} envelope,
// written through the errors.go helpers (writeError / httpError) so
// clients can switch on stable machine-readable codes.
//
// Two shapes violate it: net/http.Error, which writes text/plain
// anywhere in the module, and a bare WriteHeader with a constant error
// status (>= 400) in a service package — the response body that
// follows (if any) is whatever the handler improvised, not the
// envelope. WriteHeader with a success status or a computed variable
// (the helpers' own plumbing) is fine.
var Envelope = &Analyzer{
	Name: "envelope",
	Doc:  "HTTP errors must use the structured envelope helpers, not http.Error or bare error WriteHeader",
	Run:  runEnvelope,
}

func runEnvelope(pass *Pass) error {
	inService := pathHasSegment(pass.Path(), "service")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "net/http" && fn.Name() == "Error" {
				pass.Reportf(call.Pos(), "http.Error writes text/plain, not the structured error envelope; use writeError or httpError from errors.go")
				return true
			}
			if !inService || fn.Name() != "WriteHeader" {
				return true
			}
			method, _ := methodCall(pass.TypesInfo, call)
			if method == nil || len(call.Args) != 1 {
				return true
			}
			rw := pass.LookupType("net/http", "ResponseWriter")
			if recvType := pass.TypesInfo.TypeOf(call.Fun.(*ast.SelectorExpr).X); !implementsType(recvType, rw) {
				return true
			}
			if status, ok := constIntValue(pass.TypesInfo, call.Args[0]); ok && status >= 400 {
				pass.Reportf(call.Pos(), "bare WriteHeader(%d) bypasses the structured error envelope; use writeError or httpError from errors.go", status)
			}
			return true
		})
	}
	return nil
}
