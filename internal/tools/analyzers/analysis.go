// Package analyzers is ldpjoinvet: a suite of static analyzers that
// mechanically enforce the cross-cutting invariants this codebase
// otherwise trusts to code review — lock discipline on the serving
// path, WAL-append-before-ack durability ordering, the structured
// error envelope, atomic counters, and deterministic (sorted-key)
// iteration wherever bytes that must be stable are produced.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Reportf, testdata/src fixtures with
// `// want` expectations) so the analyzers could migrate onto the real
// framework wholesale if the module ever takes on that dependency.
// Until then everything here runs on the standard library alone: the
// loader shells out to `go list` for package metadata and type-checks
// from source, so the suite works offline and adds no module
// requirements.
//
// # Waivers
//
// Every analyzer honors an explicit, attributable escape hatch:
//
//	//ldpjoinvet:ignore <analyzer> <reason>
//
// placed on the flagged line or on its own line immediately above. The
// reason is mandatory — a waiver without one is itself a diagnostic,
// as is a waiver naming an analyzer that does not exist (a typo there
// would otherwise silently waive nothing).
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant check. Name is the identifier
// used in diagnostics, waiver comments, and summaries; Doc is the
// one-paragraph contract it enforces.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned and attributed to the
// analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// lookup resolves an object in any package of the load (the
	// analyzed packages and their whole dependency closure), so
	// analyzers can fetch well-known types — net/http.ResponseWriter,
	// net.Conn — without the analyzed package importing them. Returns
	// nil when the package or name is absent from the closure.
	lookup func(pkgPath, name string) types.Object

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// LookupType resolves pkgPath.name to its type, or nil when the
// package is not in the load's dependency closure.
func (p *Pass) LookupType(pkgPath, name string) types.Type {
	obj := p.lookup(pkgPath, name)
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// All returns the full ldpjoinvet suite, in the order summaries print.
func All() []*Analyzer {
	return []*Analyzer{LockIO, WALOrder, Envelope, AtomicCounter, MapOrder}
}
