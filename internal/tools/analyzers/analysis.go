// Package analyzers is ldpjoinvet: a suite of static analyzers that
// mechanically enforce the cross-cutting invariants this codebase
// otherwise trusts to code review — lock discipline on the serving
// path, WAL-append-before-ack durability ordering, the structured
// error envelope, atomic counters, deterministic (sorted-key)
// iteration wherever bytes that must be stable are produced,
// pooled-buffer ownership transfer, allocation-free hot paths, and a
// single global lock-acquisition order.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Reportf, testdata/src fixtures with
// `// want` expectations) so the analyzers could migrate onto the real
// framework wholesale if the module ever takes on that dependency.
// Until then everything here runs on the standard library alone: the
// loader shells out to `go list` for package metadata and type-checks
// from source, so the suite works offline and adds no module
// requirements.
//
// Beyond the per-package Run pass, the framework provides two pieces
// of shared dataflow infrastructure the analyzers build on:
//
//   - a lightweight def-use/alias walk (dataflow.go) that tracks a
//     value — and everything aliasing it through assignment,
//     sub-slicing, and range — in approximate execution order, with
//     branch merging and kills on reassignment; poolown is built on
//     it and any future ownership- or taint-style rule can be too;
//   - per-function summaries accumulated across packages in
//     Pass.Shared plus an optional Finish hook that runs once after
//     every package, which is how lockorder stitches a cross-package,
//     cross-function lock-acquisition graph out of per-package passes.
//
// # Waivers
//
// Every analyzer honors an explicit, attributable escape hatch:
//
//	//ldpjoinvet:ignore <analyzer> <reason>
//
// placed on the flagged line or on its own line immediately above. The
// reason is mandatory — a waiver without one is itself a diagnostic,
// as is a waiver naming an analyzer that does not exist (a typo there
// would otherwise silently waive nothing), and — when the
// waiverhygiene analyzer is in the run — so is a well-formed waiver
// that no longer suppresses anything (a burned-down waiver must be
// deleted, not left to rot).
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check. Name is the identifier
// used in diagnostics, waiver comments, and summaries; Doc is the
// one-paragraph contract it enforces.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error

	// Finish, when non-nil, runs once after Run has been applied to
	// every package, with the same Shared map each of those passes
	// saw. Analyzers whose findings are properties of the whole
	// program — lockorder's acquisition graph — accumulate summaries
	// per package in Run and report from Finish.
	Finish func(*FinishPass) error
}

// A Diagnostic is one finding, positioned and attributed to the
// analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Shared is scratch state that survives across packages within one
	// Run invocation: every Pass handed to one analyzer during one
	// suite run shares the same map, and the analyzer's FinishPass
	// receives it last. Per-package analyzers ignore it.
	Shared map[string]any

	// lookup resolves an object in any package of the load (the
	// analyzed packages and their whole dependency closure), so
	// analyzers can fetch well-known types — net/http.ResponseWriter,
	// net.Conn — without the analyzed package importing them. Returns
	// nil when the package or name is absent from the closure.
	lookup func(pkgPath, name string) types.Object

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Path returns the package's import path normalized for analysis
// gating: the " [pkg.test]" suffix go list gives test variants is
// stripped, and an external test package maps to the package under
// test ("ldpjoin/internal/service_test" gates like ".../service"), so
// path-segment rules apply identically to production and test code.
func (p *Pass) Path() string {
	return normTestPkgPath(p.Pkg.Path())
}

// LookupType resolves pkgPath.name to its type, or nil when the
// package is not in the load's dependency closure.
func (p *Pass) LookupType(pkgPath, name string) types.Type {
	obj := p.lookup(pkgPath, name)
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// A FinishPass is an analyzer's whole-program view after every
// package's Run: the accumulated Shared state plus a position-explicit
// reporter (Finish has no single package to resolve positions in, so
// callers pass the token.Position they recorded during Run).
type FinishPass struct {
	Analyzer *Analyzer
	Shared   map[string]any

	report func(Diagnostic)
}

// ReportAt records a diagnostic at an explicit position.
func (p *FinishPass) ReportAt(pos token.Position, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// normPkgPath strips the " [pkg.test]" variant suffix go list attaches
// to test packages, leaving the importable path.
func normPkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// normTestPkgPath is normPkgPath plus folding an external test package
// onto the package it tests: ".../protocol_test" → ".../protocol".
func normTestPkgPath(path string) string {
	path = normPkgPath(path)
	if rest, ok := strings.CutSuffix(path, "_test"); ok {
		return rest
	}
	return path
}

// All returns the full ldpjoinvet suite, in the order summaries print.
func All() []*Analyzer {
	return []*Analyzer{
		LockIO, WALOrder, Envelope, AtomicCounter, MapOrder,
		PoolOwn, HotAlloc, LockOrder, WaiverHygiene,
	}
}
