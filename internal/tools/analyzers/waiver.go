package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// waiverPrefix introduces an explicit suppression comment:
//
//	//ldpjoinvet:ignore <analyzer> <reason>
//
// A waiver covers diagnostics from <analyzer> on its own line (trailing
// form) and on the line immediately below (standalone form). The reason
// is part of the contract: waivers exist so every suppressed invariant
// carries its justification in the source, reviewable like code.
const waiverPrefix = "ldpjoinvet:ignore"

// waiverName is the pseudo-analyzer that malformed waivers are
// attributed to in diagnostics.
const waiverName = "waiver"

type waiver struct {
	analyzer string
	reason   string
	line     int // the comment's own line
}

// collectWaivers scans a file's comments for waiver directives.
func collectWaivers(fset *token.FileSet, file *ast.File) []waiver {
	var ws []waiver
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+waiverPrefix)
			if !ok {
				continue
			}
			// Fixtures pin waiver-line diagnostics with an embedded
			// `// want` expectation at the end of the directive (a line
			// comment runs to EOL, so the expectation cannot be its own
			// comment). Strip it from the reason.
			if i := strings.Index(text, "// want "); i >= 0 {
				text = text[:i]
			}
			fields := strings.Fields(text)
			w := waiver{line: fset.Position(c.Pos()).Line}
			if len(fields) > 0 {
				w.analyzer = fields[0]
			}
			if len(fields) > 1 {
				w.reason = strings.Join(fields[1:], " ")
			}
			ws = append(ws, w)
		}
	}
	return ws
}
