package analyzers

import "testing"

func TestParseEscapeLine(t *testing.T) {
	cases := []struct {
		line string
		file string
		ln   int
		msg  string
		ok   bool
	}{
		{
			line: "internal/kernel/rowapply.go:31:7: func literal escapes to heap",
			file: "internal/kernel/rowapply.go", ln: 31,
			msg: "func literal escapes to heap", ok: true,
		},
		{
			line: "internal/core/sketch.go:210:13: moved to heap: buf",
			file: "internal/core/sketch.go", ln: 210,
			msg: "variable buf moved to heap", ok: true,
		},
		{
			// A colon inside the escaping expression must not truncate
			// the message.
			line: `internal/core/sketch.go:215:9: "core: JoinSize across hash families" escapes to heap`,
			file: "internal/core/sketch.go", ln: 215,
			msg: `"core: JoinSize across hash families" escapes to heap`, ok: true,
		},
		{line: "internal/core/sketch.go:300:2: s does not escape", ok: false},
		{line: "internal/core/sketch.go:218:20: inlining call to estScratch", ok: false},
		{line: "# ldpjoin/internal/core", ok: false},
		{line: "", ok: false},
	}
	for _, c := range cases {
		file, ln, msg, ok := parseEscapeLine(c.line)
		if ok != c.ok {
			t.Errorf("parseEscapeLine(%q): ok=%v, want %v", c.line, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if file != c.file || ln != c.ln || msg != c.msg {
			t.Errorf("parseEscapeLine(%q) = (%q, %d, %q), want (%q, %d, %q)",
				c.line, file, ln, msg, c.file, c.ln, c.msg)
		}
	}
}

func TestSplitCompilerNote(t *testing.T) {
	pos, text, ok := splitCompilerNote("a/b.go:12:3: something happened: detail")
	if !ok || pos != "a/b.go:12:3" || text != "something happened: detail" {
		t.Fatalf("got (%q, %q, %v)", pos, text, ok)
	}
	if _, _, ok := splitCompilerNote("# package header"); ok {
		t.Fatal("package header should not parse as a note")
	}
}
