package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// WALOrder enforces the PR 7 walGate contract in the service layer:
// inside a mutating HTTP handler, the column's state may only change
// after the corresponding WAL append has succeeded. Concretely, in
// packages with a "service" path segment, every call in a handle*
// function that applies state to the ingest engine (EnqueueAll,
// Advance, MergeAggregator, MergePlus on an ingest-package column)
// must be dominated — reached on every control-flow path — by a store
// WAL append (AppendReports, AppendMatrixReports, AppendPlusReports,
// AppendPlusAdvance, AppendMerge, Finalize, FinalizePlus on a
// store-package receiver).
//
// The one sanctioned exception is built in: an append guarded only by
// a store-nil check (`if s.st != nil { ...append... }`) still counts
// as dominating, because a nil store is the explicit in-memory mode
// where nothing is durable by construction.
//
// Recovery replay deliberately applies without appending (the records
// are already in the WAL); it lives outside handle* functions and so
// outside this analyzer's scope.
var WALOrder = &Analyzer{
	Name: "walorder",
	Doc:  "WAL append must dominate the ingest apply/ack in mutating service handlers",
	Run:  runWALOrder,
}

// walApplyMethods are the ingest-side state mutations a handler acks.
var walApplyMethods = map[string]bool{
	"EnqueueAll":       true,
	"EnqueueAllPooled": true,
	"Advance":          true,
	"MergeAggregator":  true,
	"MergePlus":        true,
}

// walAppendMethods are the store-side durability points.
var walAppendMethods = map[string]bool{
	"AppendReports":       true,
	"AppendMatrixReports": true,
	"AppendPlusReports":   true,
	"AppendPlusAdvance":   true,
	"AppendMerge":         true,
	"Finalize":            true,
	"FinalizePlus":        true,
}

func runWALOrder(pass *Pass) error {
	if !pathHasSegment(pass.Path(), "service") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !strings.HasPrefix(fn.Name.Name, "handle") {
				continue
			}
			w := &walOrderScan{pass: pass}
			w.scanStmts(fn.Body.List, false)
		}
	}
	return nil
}

// walOrderScan is a path-sensitive walk tracking one boolean fact:
// "a WAL append has definitely executed on every path reaching here".
type walOrderScan struct {
	pass *Pass
}

// scanStmts scans a statement sequence with the given entry fact and
// returns the fact after it plus whether all paths terminate.
func (w *walOrderScan) scanStmts(stmts []ast.Stmt, appended bool) (bool, bool) {
	for _, st := range stmts {
		var terminated bool
		appended, terminated = w.scanStmt(st, appended)
		if terminated {
			return appended, true
		}
	}
	return appended, false
}

func (w *walOrderScan) scanStmt(st ast.Stmt, appended bool) (bool, bool) {
	switch s := st.(type) {
	case *ast.ReturnStmt:
		w.checkExprs(st, appended)
		return appended, true
	case *ast.BranchStmt:
		return appended, true

	case *ast.BlockStmt:
		return w.scanStmts(s.List, appended)
	case *ast.LabeledStmt:
		return w.scanStmt(s.Stmt, appended)

	case *ast.IfStmt:
		if s.Init != nil {
			appended, _ = w.scanStmt(s.Init, appended)
		}
		w.checkExprs(s.Cond, appended)
		thenFact, thenTerm := w.scanStmts(s.Body.List, appended)
		elseFact, elseTerm := appended, false
		if s.Else != nil {
			elseFact, elseTerm = w.scanStmt(s.Else, appended)
		}
		// The in-memory-mode exemption: `if st != nil { append }` with
		// no else. When the store exists the append ran; when it is
		// nil there is nothing to order against. Either way the
		// contract downstream is satisfied.
		if !elseTerm && s.Else == nil && thenFact && w.isStoreNilCheck(s.Cond) {
			return true, false
		}
		switch {
		case thenTerm && elseTerm:
			return appended, true
		case thenTerm:
			return elseFact, false
		case elseTerm:
			return thenFact, false
		default:
			return thenFact && elseFact, false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			appended, _ = w.scanStmt(s.Init, appended)
		}
		if s.Cond != nil {
			w.checkExprs(s.Cond, appended)
		}
		w.scanStmts(s.Body.List, appended)
		// Zero iterations are possible: the loop body's appends do not
		// count after the loop.
		return appended, false
	case *ast.RangeStmt:
		w.checkExprs(s.X, appended)
		w.scanStmts(s.Body.List, appended)
		return appended, false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.scanCases(st, appended)

	default:
		w.checkExprs(st, appended)
		return appended || w.containsAppend(st), false
	}
}

// scanCases handles switch/select: each clause starts from the entry
// fact; the fact after the statement holds only if every non-taken
// path (including the implicit no-default fallthrough) holds it.
func (w *walOrderScan) scanCases(st ast.Stmt, appended bool) (bool, bool) {
	var body *ast.BlockStmt
	switch s := st.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			appended, _ = w.scanStmt(s.Init, appended)
		}
		if s.Tag != nil {
			w.checkExprs(s.Tag, appended)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			appended, _ = w.scanStmt(s.Init, appended)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := true
	hasDefault := false
	allTerminate := true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
				stmts = c.Body
			} else {
				stmts = append([]ast.Stmt{c.Comm}, c.Body...)
			}
		}
		fact, term := w.scanStmts(stmts, appended)
		if !term {
			allTerminate = false
			out = out && fact
		}
	}
	if !hasDefault {
		out = out && appended
	}
	if len(body.List) > 0 && hasDefault && allTerminate {
		return appended, true
	}
	return out, false
}

// checkExprs reports any apply call inside n reached without a
// dominating append, and is also how appends inside expressions (the
// usual `if err := st.AppendReports(...)` form) take effect — the
// caller combines containsAppend for that.
func (w *walOrderScan) checkExprs(n ast.Node, appended bool) {
	if appended {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := w.applyCall(call); name != "" {
			w.pass.Reportf(call.Pos(), "ingest %s is not dominated by a store WAL append on every path; the walGate contract is append, then apply, then ack", name)
		}
		return true
	})
}

// containsAppend reports whether n contains a WAL append call.
func (w *walOrderScan) containsAppend(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && w.isAppendCall(call) {
			found = true
		}
		return !found
	})
	return found
}

// applyCall returns a description when call is an ingest-side apply.
func (w *walOrderScan) applyCall(call *ast.CallExpr) string {
	fn, recv := methodCall(w.pass.TypesInfo, call)
	if fn == nil || !walApplyMethods[fn.Name()] {
		return ""
	}
	if receiverPkgLastSegment(fn) != "ingest" {
		return ""
	}
	return types.ExprString(recv) + "." + fn.Name()
}

// isAppendCall reports whether call is a store-side WAL append.
func (w *walOrderScan) isAppendCall(call *ast.CallExpr) bool {
	fn, _ := methodCall(w.pass.TypesInfo, call)
	return fn != nil && walAppendMethods[fn.Name()] && receiverPkgLastSegment(fn) == "store"
}

// isStoreNilCheck matches `x != nil` where x is a store-package
// pointer — the explicit "durability disabled" mode check.
func (w *walOrderScan) isStoreNilCheck(cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "!=" {
		return false
	}
	operand := bin.X
	if isNilIdent(w.pass.TypesInfo, bin.X) {
		operand = bin.Y
	} else if !isNilIdent(w.pass.TypesInfo, bin.Y) {
		return false
	}
	t := w.pass.TypesInfo.TypeOf(operand)
	if t == nil {
		return false
	}
	n, ok := deref(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return lastSegment(n.Obj().Pkg().Path()) == "store"
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
