package analyzers

import (
	"bytes"
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// EscapeCrossCheck is hotalloc's opt-in second opinion: it runs the
// real compiler's escape analysis (go build -gcflags=-m) over the
// given packages and reports every heap allocation the compiler
// observes inside a hot function that hotalloc's static rules did not
// flag and no hotalloc waiver excuses. When the static heuristics and
// the compiler disagree, one of them is wrong — either the rules need
// teaching or the code allocates in a way the rules were written to
// forbid.
//
// Diagnostics carry the "hotalloc" analyzer name, so existing hotalloc
// waivers cover the compiler-observed findings on the same lines. The
// check shells out to `go build`, so it is wired behind an explicit
// flag (ldpjoinvet -escapes) rather than running on every invocation;
// the build cache replays -m diagnostics, so repeat runs are cheap.
func EscapeCrossCheck(dir string, pkgs []*Package) ([]Diagnostic, error) {
	// Re-run hotalloc's static pass privately to learn where the hot
	// functions are and which already carry a static finding.
	shared := make(map[string]any)
	waived := make(map[lineKey]bool)
	importPaths := make(map[string]bool)
	for _, pkg := range pkgs {
		if strings.Contains(pkg.ImportPath, "testdata") {
			continue // fixtures are not buildable production packages
		}
		// Test variants fold onto the production package: `go build`
		// compiles only non-test files, which is where hot code lives.
		importPaths[normTestPkgPath(pkg.ImportPath)] = true
		pass := &Pass{
			Analyzer:  HotAlloc,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Shared:    shared,
			lookup:    pkg.loader.lookup,
			report:    func(Diagnostic) {},
		}
		if err := HotAlloc.Run(pass); err != nil {
			return nil, err
		}
		for _, f := range pkg.Files {
			file := pkg.Fset.Position(f.Pos()).Filename
			for _, w := range collectWaivers(pkg.Fset, f) {
				if w.analyzer == HotAlloc.Name {
					waived[lineKey{file, w.line}] = true
					waived[lineKey{file, w.line + 1}] = true
				}
			}
		}
	}
	recs, _ := shared["funcs"].([]*hotFuncRec)
	if len(recs) == 0 {
		return nil, nil
	}

	args := []string{"build", "-gcflags=-m"}
	for p := range importPaths {
		args = append(args, p)
	}
	sort.Strings(args[2:])
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.Bytes())
	}

	// Positions where the compiler inlined a callee: an escape note at
	// the same spot belongs to the inlined function's body, not to code
	// written in the hot function — the callee owns its own allocation
	// policy (the estScratch stack-spill idiom relies on this), mirroring
	// the static pass's per-function scoping.
	lines := strings.Split(out.String(), "\n")
	inlined := make(map[string]bool)
	for _, line := range lines {
		if pos, _, ok := splitCompilerNote(line); ok && strings.HasPrefix(noteText(line), "inlining call to ") {
			inlined[pos] = true
		}
	}

	var diags []Diagnostic
	seen := make(map[Diagnostic]bool)
	for _, line := range lines {
		file, ln, msg, ok := parseEscapeLine(line)
		if !ok {
			continue
		}
		if pos, _, ok := splitCompilerNote(line); ok && inlined[pos] {
			continue
		}
		// A quoted literal escaping is constant boxing (a panic or log
		// argument) — exempt statically, so exempt here too.
		if strings.HasPrefix(msg, `"`) {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		for _, rec := range recs {
			if rec.file != file || ln < rec.start || ln > rec.end {
				continue
			}
			if rec.findings > 0 {
				break // static rules already flagged this function
			}
			if waived[lineKey{file, ln}] {
				break
			}
			d := Diagnostic{
				Pos:      token.Position{Filename: file, Line: ln, Column: 1},
				Analyzer: HotAlloc.Name,
				Message:  fmt.Sprintf("compiler escape analysis: %s in hot function %s, but hotalloc's static rules found nothing here — teach the rules or remove the allocation", msg, rec.name),
			}
			if !seen[d] {
				seen[d] = true
				diags = append(diags, d)
			}
			break
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// splitCompilerNote splits a -m output line "file:line:col: text" into
// the position prefix "file:line:col" and the note text.
func splitCompilerNote(line string) (pos, text string, ok bool) {
	parts := strings.SplitN(line, ": ", 2)
	if len(parts) != 2 || strings.Count(parts[0], ":") != 2 {
		return "", "", false
	}
	return parts[0], parts[1], true
}

// noteText returns the text portion of a -m output line, or "".
func noteText(line string) string {
	_, text, _ := splitCompilerNote(line)
	return text
}

// parseEscapeLine extracts heap allocations from -m output lines like
//
//	internal/kernel/rowapply.go:31:7: func literal escapes to heap
//	internal/core/sketch.go:210:13: moved to heap: buf
//
// "does not escape" lines and inliner chatter are skipped.
func parseEscapeLine(line string) (file string, ln int, msg string, ok bool) {
	const (
		escapes = " escapes to heap"
		moved   = "moved to heap: "
	)
	pos, text, ok := splitCompilerNote(line)
	if !ok {
		return "", 0, "", false
	}
	var what string
	switch {
	case strings.HasSuffix(text, escapes):
		what = text
	case strings.HasPrefix(text, moved):
		what = "variable " + strings.TrimPrefix(text, moved) + " moved to heap"
	default:
		return "", 0, "", false
	}
	parts := strings.SplitN(pos, ":", 3)
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, "", false
	}
	return parts[0], n, what, true
}
