package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// pathHasSegment reports whether pkgPath contains seg as a whole
// "/"-separated element — "internal/service" and the fixture path
// ".../testdata/src/walorder/service" both have segment "service",
// while "myservice" does not.
func pathHasSegment(pkgPath, seg string) bool {
	for part := range strings.SplitSeq(pkgPath, "/") {
		if part == seg {
			return true
		}
	}
	return false
}

// methodCall resolves call as a method call (through embedding and
// interfaces), returning the method object and the receiver
// expression. Returns nil when call is not a method call.
func methodCall(info *types.Info, call *ast.CallExpr) (*types.Func, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil, nil
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return nil, nil
	}
	return fn, sel.X
}

// calleeFunc resolves call's callee as a function or method object
// (package-level funcs, pkg-qualified funcs, and methods). Returns nil
// for indirect calls, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if fn, _ := methodCall(info, call); fn != nil {
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isNamedType reports whether t (or *t) is exactly the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// implementsType reports whether t or *t implements the interface
// type ifaceType (which may be nil, meaning "unknown here": false).
func implementsType(t types.Type, ifaceType types.Type) bool {
	if t == nil || ifaceType == nil {
		return false
	}
	iface, ok := ifaceType.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// receiverPkgLastSegment returns the last path segment of the package
// defining fn's receiver type, or "" when unknown. Used for matching
// "a method of some store-package type" against both the production
// package and fixture stand-ins. Test-variant suffixes ("pkg
// [pkg.test]") are stripped so the match holds under LoadTests.
func receiverPkgLastSegment(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return lastSegment(normPkgPath(fn.Pkg().Path()))
}

// constIntValue evaluates expr as a constant integer.
func constIntValue(info *types.Info, expr ast.Expr) (int64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// isPlainInt reports whether t's underlying type is a plain
// (non-atomic) integer.
func isPlainInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isSyncLockerField reports whether t is sync.Mutex or sync.RWMutex.
func isSyncLockerField(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// isAtomicType reports whether t is one of the sync/atomic value types
// (atomic.Int64, atomic.Uint64, atomic.Bool, ...).
func isAtomicType(t types.Type) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
