package analyzers_test

import (
	"os"
	"strings"
	"testing"

	"ldpjoin/internal/tools/analyzers"
)

// TestWaiverContract pins the waiver semantics the fixtures cannot
// express with want comments (a waiver directive is a full line
// comment, so no same-line want can ride along): a reason-less waiver
// and an unknown-analyzer waiver are "waiver" findings that suppress
// nothing, while a well-formed waiver suppresses exactly its line.
func TestWaiverContract(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analyzers.Load(cwd, "./testdata/src/waiver")
	if err != nil {
		t.Fatalf("loading waiver fixture: %v", err)
	}
	res, err := analyzers.Run(pkgs, []*analyzers.Analyzer{analyzers.AtomicCounter})
	if err != nil {
		t.Fatal(err)
	}

	if got := res.Findings["waiver"]; got != 2 {
		t.Errorf("waiver findings = %d, want 2 (reason-less + unknown analyzer)", got)
	}
	// The malformed waivers suppress nothing, so both counters they sat
	// above still surface; only the well-formed one is waived.
	if got := res.Findings["atomiccounter"]; got != 2 {
		t.Errorf("atomiccounter findings = %d, want 2 (malformed waivers must not suppress)", got)
	}
	if got := res.Waived["atomiccounter"]; got != 1 {
		t.Errorf("atomiccounter waived = %d, want 1", got)
	}

	var sawNoReason, sawUnknown bool
	for _, d := range res.Diagnostics {
		if d.Analyzer != "waiver" {
			continue
		}
		if strings.Contains(d.Message, "has no reason") {
			sawNoReason = true
		}
		if strings.Contains(d.Message, `unknown analyzer "atomiccounters"`) {
			sawUnknown = true
		}
	}
	if !sawNoReason {
		t.Error("missing diagnostic for reason-less waiver")
	}
	if !sawUnknown {
		t.Error("missing diagnostic for unknown-analyzer waiver")
	}
}

// TestCleanTree is the self-check the CI step relies on: the suite must
// exit clean on the repository's own packages — test files included,
// exactly as `ldpjoinvet ./...` loads them (findings are fixed or
// waived in place, never left for CI to trip over).
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analyzers.LoadTests(cwd, "ldpjoin/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	res, err := analyzers.Run(pkgs, analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("unexpected finding: %s", d)
	}
	if res.Packages == 0 {
		t.Fatal("no packages analyzed")
	}
}
