package analyzers

import (
	"go/ast"
	"go/types"
)

// PoolOwn enforces the pooled-buffer ownership contract from
// internal/protocol's batch pools: once a call transfers ownership of
// a pooled slice — EnqueueAllPooled on an ingest column (the batches
// are recycled after apply) or a direct protocol.PutReportBatch /
// protocol.PutMatrixBatch — the caller must not read, write, store,
// return, or otherwise touch that value again, including through
// sub-slices and aliases. The pool may hand the backing array to a
// concurrent decoder immediately; a use-after-transfer is a data race
// that corrupts sketch updates without ever failing a test.
//
// The analysis runs everywhere (not just in ingest/protocol): any
// package can obtain and return pooled batches. The error-return idiom
// is understood — in `if err := col.EnqueueAllPooled(bs); err != nil`,
// the error branch still owns the batches (on failure they were not
// scheduled and remain the caller's), so only the fall-through path
// treats them as transferred.
var PoolOwn = &Analyzer{
	Name: "poolown",
	Doc:  "flag uses of pooled batches after EnqueueAllPooled or a protocol pool Put took ownership",
	Run:  runPoolOwn,
}

func runPoolOwn(pass *Pass) error {
	w := &ownWalk{
		info: pass.TypesInfo,
		classify: func(call *ast.CallExpr) ([]ast.Expr, string) {
			return classifyPoolConsumer(pass.TypesInfo, call)
		},
	}
	w.onUse = func(id *ast.Ident, c *ownConsumption) {
		pass.Reportf(id.Pos(), "%s used after %s took ownership (line %d); the pool may already have handed its backing array to another goroutine",
			id.Name, c.desc, pass.Fset.Position(c.pos).Line)
	}
	for _, f := range pass.Files {
		w.scanFile(f)
	}
	return nil
}

// classifyPoolConsumer recognizes the calls that take ownership of
// pooled storage. Matching is by name plus defining-package segment so
// the testdata fixture stand-ins exercise the same paths as the
// production packages.
func classifyPoolConsumer(info *types.Info, call *ast.CallExpr) ([]ast.Expr, string) {
	if fn, _ := methodCall(info, call); fn != nil {
		if fn.Name() == "EnqueueAllPooled" && receiverPkgLastSegment(fn) == "ingest" {
			// Ownership transfers for the slice-typed arguments (the
			// batches); scalar arguments like a plus-column group stay
			// the caller's.
			var args []ast.Expr
			for _, arg := range call.Args {
				if t := info.TypeOf(arg); t != nil {
					if _, ok := t.Underlying().(*types.Slice); ok {
						args = append(args, arg)
					}
				}
			}
			return args, "EnqueueAllPooled"
		}
		return nil, ""
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, ""
	}
	switch fn.Name() {
	case "PutReportBatch", "PutMatrixBatch":
		if lastSegment(normPkgPath(fn.Pkg().Path())) == "protocol" && len(call.Args) > 0 {
			return call.Args[:1], "protocol." + fn.Name()
		}
	}
	return nil, ""
}
