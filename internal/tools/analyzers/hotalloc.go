package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathDirective marks a function whose body must be allocation-free
// even outside internal/kernel (which is hot wholesale). It goes in
// the function's doc comment:
//
//	//ldpjoin:hotpath
//	func (s *Sketch) Frequency(item uint64) float64 { ... }
const hotpathDirective = "//ldpjoin:hotpath"

// HotAlloc enforces allocation-free hot paths: every function in
// internal/kernel, plus any function marked //ldpjoin:hotpath, must
// not allocate. The serving-path benchmarks gate on allocs/op == 0;
// this analyzer turns that runtime observation into a static contract
// that names the allocation site instead of failing a benchmark.
//
// Flagged inside a hot function: make/new, append that can grow (the
// sanctioned scratch idiom `x = append(x, ...)` — appending a slice
// back onto itself — is exempt), slice/map composite literals, &T{}
// allocations, function literals that capture variables (closures
// allocate), go statements, string concatenation, string↔[]byte
// conversions, and implicit interface conversions of non-pointer
// values (boxing). Constant arguments don't box — the compiler
// interns them — so panic("message") stays allowed.
//
// Test files are never hot, even in kernel: _test.go code allocates
// freely. The static rules are deliberately conservative heuristics;
// EscapeCrossCheck runs the real compiler's escape analysis
// (go build -gcflags=-m) and reports heap allocations in hot
// functions that the static rules missed, keeping the two in
// agreement.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "require kernel and //ldpjoin:hotpath functions to be allocation-free",
	Run:  runHotAlloc,
}

// hotFuncRec summarizes one hot function for the escape cross-check:
// where it lives and whether the static checks already flagged it.
type hotFuncRec struct {
	name       string
	file       string
	start, end int
	findings   int
}

func runHotAlloc(pass *Pass) error {
	kernelPkg := pathHasSegment(pass.Path(), "kernel")
	var recs []*hotFuncRec
	for _, f := range pass.Files {
		file := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !kernelPkg && !hasHotpathDirective(fn.Doc) {
				continue
			}
			rec := &hotFuncRec{
				name:  fn.Name.Name,
				file:  file,
				start: pass.Fset.Position(fn.Pos()).Line,
				end:   pass.Fset.Position(fn.End()).Line,
			}
			h := &hotScan{pass: pass, rec: rec, declSig: funcDeclSig(pass.TypesInfo, fn)}
			h.scan(fn.Body)
			recs = append(recs, rec)
		}
	}
	prev, _ := pass.Shared["funcs"].([]*hotFuncRec)
	pass.Shared["funcs"] = append(prev, recs...)
	return nil
}

func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

func funcDeclSig(info *types.Info, fn *ast.FuncDecl) *types.Signature {
	obj, _ := info.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

// hotScan walks one hot function body.
type hotScan struct {
	pass    *Pass
	rec     *hotFuncRec
	declSig *types.Signature

	sanctioned map[*ast.CallExpr]bool
	lits       []*ast.FuncLit
}

func (h *hotScan) report(pos token.Pos, format string, args ...any) {
	h.rec.findings++
	h.pass.Reportf(pos, format, args...)
}

func (h *hotScan) scan(body *ast.BlockStmt) {
	info := h.pass.TypesInfo
	h.sanctioned = make(map[*ast.CallExpr]bool)

	// Pre-pass: sanction self-appends (x = append(x, ...) and
	// x = append(x[:0], ...) fill preallocated scratch without
	// growing in the steady state) and collect function literals so
	// return statements resolve against the right signature.
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			h.lits = append(h.lits, x)
		case *ast.AssignStmt:
			if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
			if !ok || !isBuiltinCall(info, call, "append") || len(call.Args) == 0 {
				return true
			}
			dst := call.Args[0]
			if sl, ok := ast.Unparen(dst).(*ast.SliceExpr); ok {
				dst = sl.X
			}
			if types.ExprString(ast.Unparen(x.Lhs[0])) == types.ExprString(ast.Unparen(dst)) {
				h.sanctioned[call] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			h.checkCall(x)
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				h.report(x.Pos(), "slice literal allocates on the hot path")
			case *types.Map:
				h.report(x.Pos(), "map literal allocates on the hot path")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					h.report(x.Pos(), "&composite literal allocates on the hot path")
				}
			}
		case *ast.FuncLit:
			if caps := closureCaptures(info, x); len(caps) > 0 {
				h.report(x.Pos(), "function literal captures %s; closures allocate on the hot path", strings.Join(caps, ", "))
			}
		case *ast.GoStmt:
			h.report(x.Pos(), "go statement allocates (goroutine spawn) on the hot path")
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) && info.Types[x].Value == nil {
				h.report(x.Pos(), "string concatenation allocates on the hot path")
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					h.checkBox(info.TypeOf(lhs), x.Rhs[i], "assignment")
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i, name := range x.Names {
					h.checkBox(info.TypeOf(name), x.Values[i], "assignment")
				}
			}
		case *ast.ReturnStmt:
			sig := h.sigAt(x.Pos())
			if sig == nil || len(x.Results) != sig.Results().Len() {
				return true
			}
			for i, res := range x.Results {
				h.checkBox(sig.Results().At(i).Type(), res, "return")
			}
		}
		return true
	})
}

// sigAt returns the signature governing a return statement at pos: the
// innermost enclosing function literal, or the declaration itself.
func (h *hotScan) sigAt(pos token.Pos) *types.Signature {
	sig := h.declSig
	for _, lit := range h.lits {
		if lit.Pos() <= pos && pos < lit.End() {
			if s, ok := h.pass.TypesInfo.TypeOf(lit).(*types.Signature); ok {
				sig = s
			}
		}
	}
	return sig
}

func (h *hotScan) checkCall(call *ast.CallExpr) {
	info := h.pass.TypesInfo
	if id := builtinName(info, call); id != "" {
		switch id {
		case "make":
			h.report(call.Pos(), "make allocates on the hot path; preallocate the scratch outside it")
		case "new":
			h.report(call.Pos(), "new allocates on the hot path")
		case "append":
			if !h.sanctioned[call] {
				h.report(call.Pos(), "append may grow and allocate; only the scratch idiom x = append(x, ...) is allocation-free here")
			}
		}
		return
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion.
		if len(call.Args) != 1 {
			return
		}
		h.checkBox(tv.Type, call.Args[0], "conversion")
		if allocatingStringConv(info, tv.Type, call.Args[0]) {
			h.report(call.Pos(), "string/[]byte conversion copies and allocates on the hot path")
		}
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := callParamType(sig, i, call.Ellipsis.IsValid())
		if pt != nil {
			h.checkBox(pt, arg, "argument")
		}
	}
}

// checkBox flags an implicit interface conversion that heap-allocates:
// a non-constant, non-pointer-shaped value flowing into an interface.
func (h *hotScan) checkBox(dst types.Type, src ast.Expr, what string) {
	if dst == nil || !isIfaceType(dst) {
		return
	}
	info := h.pass.TypesInfo
	tv, ok := info.Types[src]
	if !ok || tv.Value != nil || tv.Type == nil {
		return
	}
	st := tv.Type
	if isIfaceType(st) || isPointerShaped(st) || isUntypedNil(st) {
		return
	}
	h.report(src.Pos(), "implicit conversion to interface boxes a %s value (allocates) in %s on the hot path", st.String(), what)
}

func callParamType(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if ellipsis {
			return nil // passing a slice through ... doesn't convert elements
		}
		sl, ok := sig.Params().At(n - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return sl.Elem()
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	return builtinName(info, call) == name
}

func isIfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isPointerShaped reports whether values of t fit an interface word
// without boxing: pointers, channels, maps, funcs, unsafe.Pointer.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// allocatingStringConv reports string↔[]byte/[]rune conversions.
func allocatingStringConv(info *types.Info, dst types.Type, src ast.Expr) bool {
	st := info.TypeOf(src)
	if st == nil {
		return false
	}
	if tv, ok := info.Types[src]; ok && tv.Value != nil {
		return false
	}
	toString := isStringType(dst) && isByteOrRuneSlice(st)
	fromString := isStringType(st) && isByteOrRuneSlice(dst)
	return toString || fromString
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// closureCaptures lists the outer local variables a function literal
// captures: identifiers resolving to variables declared outside the
// literal that are neither package-level nor fields.
func closureCaptures(info *types.Info, lit *ast.FuncLit) []string {
	seen := make(map[*types.Var]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}
