package analyzers

import (
	"encoding/json"
	"io"
)

// JSONFinding is the machine-readable form of one diagnostic, stable
// for CI consumers (the GitHub-annotation step feeds these through jq).
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// EncodeJSON writes diagnostics as a JSON array of JSONFinding. An
// empty or nil slice encodes as [] — consumers always get an array.
func EncodeJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]JSONFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
