package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder guards byte-identical state in the codec and durability
// layers: Go's map iteration order is deliberately random, so a
// `range` over a map that feeds an encoder, hash, or writer produces
// different bytes on every run — breaking the SNAP/PSNP canonical
// encodings, WAL determinism, and the federation property that merged
// state is byte-identical to single-node state.
//
// In packages with a protocol, store, or core path segment, a range
// statement over a map whose body reaches a byte sink — a Write*/
// Encode*/Marshal*/Sum*/Fprint* call, a protocol-style Append*/Put*
// encoder function, or a builtin append onto a []byte — is reported.
// The fix is the collect-sort-iterate idiom: range over
// slices.Sorted(maps.Keys(m)) (itself a slice, which this analyzer
// never flags), or any other total order on the keys.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "no range over a map feeding an encoder, hash, or writer in protocol/store/core",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	path := pass.Path()
	if !pathHasSegment(path, "protocol") && !pathHasSegment(path, "store") && !pathHasSegment(path, "core") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findByteSink(pass, rng.Body); sink != "" {
				pass.Reportf(rng.Pos(), "range over map %s feeds %s; map iteration order is random and would break byte-identical state — iterate sorted keys (e.g. slices.Sorted(maps.Keys(m)))", types.ExprString(rng.X), sink)
			}
			return true
		})
	}
	return nil
}

// sinkMethodPrefixes match calls that emit bytes into a stream, hash,
// or encoder.
var sinkMethodPrefixes = []string{"Write", "Encode", "Marshal", "Sum", "Fprint"}

// findByteSink returns a description of the first byte-emitting call
// in body, or "".
func findByteSink(pass *Pass, body *ast.BlockStmt) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Builtin append onto a []byte accumulates an encoding.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				if isByteSlice(pass.TypesInfo.TypeOf(call.Args[0])) {
					sink = "a []byte append"
					return false
				}
			}
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		name := fn.Name()
		for _, prefix := range sinkMethodPrefixes {
			if strings.HasPrefix(name, prefix) {
				sink = "a call to " + name
				return false
			}
		}
		// Encoder-building package functions in codec packages:
		// protocol.AppendRecord, binary.AppendUvarint, binary.PutUvarint...
		if fn.Type().(*types.Signature).Recv() == nil &&
			(strings.HasPrefix(name, "Append") || strings.HasPrefix(name, "Put")) {
			sink = "a call to " + name
			return false
		}
		return true
	})
	return sink
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
