package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicCounter flags unsynchronized increments of plain integer
// counter fields on shared structs — the PR 5 bug class where hit and
// snapshot counters were bumped on the read path with no exclusive
// lock, racing under -race and losing counts in production.
//
// A struct is considered shared when it carries concurrency machinery
// of its own: a sync.Mutex/RWMutex field or a sync/atomic field. An
// x.field++ or x.field += n on a plain integer field of such a struct
// is reported unless an exclusive (write) mutex lock is held at that
// point — an RLock does not protect a write, and neither does hoping
// only one goroutine ever calls the method. The fix is an atomic.Int64
// (what the service's counterMap uses) or performing the increment
// inside the exclusive section.
var AtomicCounter = &Analyzer{
	Name: "atomiccounter",
	Doc:  "counter fields on shared structs must be atomic or incremented under an exclusive lock",
	Run:  runAtomicCounter,
}

func runAtomicCounter(pass *Pass) error {
	ls := &lockScanner{
		info: pass.TypesInfo,
		visit: func(n ast.Node, held lockState) {
			var target ast.Expr
			switch s := n.(type) {
			case *ast.IncDecStmt:
				target = s.X
			case *ast.AssignStmt:
				if len(s.Lhs) != 1 || (s.Tok != token.ADD_ASSIGN && s.Tok != token.SUB_ASSIGN) {
					return
				}
				target = s.Lhs[0]
			default:
				return
			}
			for _, kind := range held {
				if kind == lockExclusive {
					return
				}
			}
			field, owner := sharedStructIntField(pass.TypesInfo, target)
			if field == "" {
				return
			}
			pass.Reportf(n.Pos(), "unsynchronized increment of %s on shared struct %s: use an atomic type or hold the exclusive lock (an RLock does not protect writes)", field, owner)
		},
	}
	for _, f := range pass.Files {
		ls.scanFile(f)
	}
	return nil
}

// sharedStructIntField matches expr as a selection of a plain integer
// field whose owning struct also carries a mutex or atomic field,
// returning the field's source text and the owner type name.
func sharedStructIntField(info *types.Info, expr ast.Expr) (field, owner string) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", ""
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok || !isPlainInt(v.Type()) {
		return "", ""
	}
	recv := deref(selection.Recv())
	named, ok := recv.(*types.Named)
	if !ok {
		return "", ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", ""
	}
	shared := false
	for i := 0; i < st.NumFields(); i++ {
		t := st.Field(i).Type()
		if isSyncLockerField(t) || isAtomicType(t) {
			shared = true
			break
		}
	}
	if !shared {
		return "", ""
	}
	return types.ExprString(sel), named.Obj().Name()
}
