package analyzers

import (
	"fmt"
	"go/token"
	"sort"
)

// A Result is one run of a set of analyzers over a set of packages.
type Result struct {
	// Diagnostics holds the surviving findings (waived ones removed)
	// plus any malformed-waiver diagnostics, sorted by position.
	Diagnostics []Diagnostic
	// Findings counts surviving diagnostics per analyzer, including
	// the "waiver" pseudo-analyzer for malformed waivers.
	Findings map[string]int
	// Waived counts suppressed diagnostics per analyzer.
	Waived map[string]int
	// Packages is the number of packages analyzed.
	Packages int
}

// lineKey addresses one source line for waiver coverage.
type lineKey struct {
	file string
	line int
}

// Run executes each analyzer over each package, applies waivers, and
// flags malformed waivers: a missing reason (for analyzers in this
// run) and a name matching no registered analyzer are both findings —
// the first because suppressions must carry their justification, the
// second because a typo would otherwise silently waive nothing.
func Run(pkgs []*Package, as []*Analyzer) (Result, error) {
	res := Result{
		Findings: make(map[string]int),
		Waived:   make(map[string]int),
		Packages: len(pkgs),
	}
	running := make(map[string]bool, len(as))
	for _, a := range as {
		running[a.Name] = true
		res.Findings[a.Name] = 0
	}
	registered := make(map[string]bool)
	for _, a := range All() {
		registered[a.Name] = true
	}

	for _, pkg := range pkgs {
		covered := make(map[string]map[lineKey]bool)
		for _, f := range pkg.Files {
			file := pkg.Fset.Position(f.Pos()).Filename
			for _, w := range collectWaivers(pkg.Fset, f) {
				at := token.Position{Filename: file, Line: w.line, Column: 1}
				switch {
				case !registered[w.analyzer]:
					res.Diagnostics = append(res.Diagnostics, Diagnostic{
						Pos:      at,
						Analyzer: waiverName,
						Message:  fmt.Sprintf("waiver names unknown analyzer %q", w.analyzer),
					})
					res.Findings[waiverName]++
				case w.reason == "" && running[w.analyzer]:
					res.Diagnostics = append(res.Diagnostics, Diagnostic{
						Pos:      at,
						Analyzer: waiverName,
						Message:  fmt.Sprintf("waiver for %q has no reason; write //%s %s <why>", w.analyzer, waiverPrefix, w.analyzer),
					})
					res.Findings[waiverName]++
				default:
					m := covered[w.analyzer]
					if m == nil {
						m = make(map[lineKey]bool)
						covered[w.analyzer] = m
					}
					m[lineKey{file, w.line}] = true
					m[lineKey{file, w.line + 1}] = true
				}
			}
		}

		for _, a := range as {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				lookup:    pkg.loader.lookup,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return res, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				if covered[a.Name][lineKey{d.Pos.Filename, d.Pos.Line}] {
					res.Waived[a.Name]++
					continue
				}
				res.Diagnostics = append(res.Diagnostics, d)
				res.Findings[a.Name]++
			}
		}
	}

	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return res, nil
}
