package analyzers

import (
	"fmt"
	"go/token"
	"sort"
)

// A Result is one run of a set of analyzers over a set of packages.
type Result struct {
	// Diagnostics holds the surviving findings (waived ones removed)
	// plus any malformed-waiver diagnostics, sorted by position.
	Diagnostics []Diagnostic
	// Findings counts surviving diagnostics per analyzer, including
	// the "waiver" pseudo-analyzer for malformed waivers.
	Findings map[string]int
	// Waived counts suppressed diagnostics per analyzer.
	Waived map[string]int
	// Packages is the number of packages analyzed.
	Packages int
}

// lineKey addresses one source line for waiver coverage.
type lineKey struct {
	file string
	line int
}

// trackedWaiver is one well-formed waiver with its suppression count,
// so a run that includes waiverhygiene can flag the dead ones.
type trackedWaiver struct {
	analyzer string
	pos      token.Position
	used     int
}

// Run executes each analyzer over each package, applies waivers, and
// flags malformed waivers: a missing reason (for analyzers in this
// run) and a name matching no registered analyzer are both findings —
// the first because suppressions must carry their justification, the
// second because a typo would otherwise silently waive nothing.
//
// Waiver coverage is collected globally before any analyzer runs and
// applied after every analyzer (including Finish hooks) has reported,
// so whole-program analyzers' diagnostics are waivable exactly like
// per-package ones. Identical diagnostics (same position, analyzer,
// and message) are deduplicated — a package and its test variant share
// their production files, and one finding must not count twice.
//
// When the run includes the waiverhygiene analyzer, every well-formed
// waiver that suppressed zero diagnostics — for an analyzer that
// actually ran — is itself a finding: burned-down waivers must be
// deleted, or the suppression outlives the code it excused.
func Run(pkgs []*Package, as []*Analyzer) (Result, error) {
	res := Result{
		Findings: make(map[string]int),
		Waived:   make(map[string]int),
		Packages: len(pkgs),
	}
	running := make(map[string]bool, len(as))
	hygiene := false
	for _, a := range as {
		running[a.Name] = true
		res.Findings[a.Name] = 0
		if a.Name == hygieneName {
			hygiene = true
		}
	}
	registered := make(map[string]bool)
	for _, a := range All() {
		registered[a.Name] = true
	}

	// Phase 0: collect every waiver in every file once (a production
	// file appears in both a package and its test variant; the seen
	// map keeps its waivers single-counted).
	covered := make(map[string]map[lineKey]*trackedWaiver)
	var tracked []*trackedWaiver
	seenFile := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			file := pkg.Fset.Position(f.Pos()).Filename
			if seenFile[file] {
				continue
			}
			seenFile[file] = true
			for _, w := range collectWaivers(pkg.Fset, f) {
				at := token.Position{Filename: file, Line: w.line, Column: 1}
				switch {
				case !registered[w.analyzer]:
					res.Diagnostics = append(res.Diagnostics, Diagnostic{
						Pos:      at,
						Analyzer: waiverName,
						Message:  fmt.Sprintf("waiver names unknown analyzer %q", w.analyzer),
					})
				case w.reason == "" && running[w.analyzer]:
					res.Diagnostics = append(res.Diagnostics, Diagnostic{
						Pos:      at,
						Analyzer: waiverName,
						Message:  fmt.Sprintf("waiver for %q has no reason; write //%s %s <why>", w.analyzer, waiverPrefix, w.analyzer),
					})
				default:
					tw := &trackedWaiver{analyzer: w.analyzer, pos: at}
					tracked = append(tracked, tw)
					m := covered[w.analyzer]
					if m == nil {
						m = make(map[lineKey]*trackedWaiver)
						covered[w.analyzer] = m
					}
					m[lineKey{file, w.line}] = tw
					m[lineKey{file, w.line + 1}] = tw
				}
			}
		}
	}

	// Phase 1: per-package passes, sharing one scratch map per
	// analyzer across packages.
	shared := make(map[string]map[string]any, len(as))
	for _, a := range as {
		shared[a.Name] = make(map[string]any)
	}
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range as {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Shared:    shared[a.Name],
				lookup:    pkg.loader.lookup,
				report:    func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil {
				return res, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}

	// Phase 2: whole-program Finish hooks.
	for _, a := range as {
		if a.Finish == nil {
			continue
		}
		fp := &FinishPass{
			Analyzer: a,
			Shared:   shared[a.Name],
			report:   func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Finish(fp); err != nil {
			return res, fmt.Errorf("%s finish: %v", a.Name, err)
		}
	}

	// Phase 3: dedup, then apply waiver coverage.
	seenDiag := make(map[Diagnostic]bool, len(raw))
	for _, d := range raw {
		if seenDiag[d] {
			continue
		}
		seenDiag[d] = true
		if tw := covered[d.Analyzer][lineKey{d.Pos.Filename, d.Pos.Line}]; tw != nil {
			tw.used++
			res.Waived[d.Analyzer]++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}

	// Phase 4: dead-waiver hygiene. A waiver for an analyzer that ran
	// and suppressed nothing is a finding (itself waivable with a
	// waiverhygiene waiver — whose own liveness is deliberately not
	// checked, ending the recursion).
	if hygiene {
		for _, tw := range tracked {
			if tw.used > 0 || !running[tw.analyzer] || tw.analyzer == hygieneName {
				continue
			}
			d := Diagnostic{
				Pos:      tw.pos,
				Analyzer: hygieneName,
				Message:  fmt.Sprintf("waiver for %q suppresses nothing; delete it (the finding it excused is gone)", tw.analyzer),
			}
			if hw := covered[hygieneName][lineKey{d.Pos.Filename, d.Pos.Line}]; hw != nil {
				hw.used++
				res.Waived[hygieneName]++
				continue
			}
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}

	for _, d := range res.Diagnostics {
		res.Findings[d.Analyzer]++
	}

	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return res, nil
}
