package analyzers

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

func TestEncodeJSON(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "a/b.go", Line: 7, Column: 3},
			Analyzer: "poolown",
			Message:  "slice used after Put",
		},
		{
			Pos:      token.Position{Filename: "c.go", Line: 1, Column: 1},
			Analyzer: "hotalloc",
			Message: `message with "quotes" and a
newline`,
		},
	}
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var got []JSONFinding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2", len(got))
	}
	want := JSONFinding{File: "a/b.go", Line: 7, Col: 3, Analyzer: "poolown", Message: "slice used after Put"}
	if got[0] != want {
		t.Errorf("first finding = %+v, want %+v", got[0], want)
	}
	if got[1].Message != diags[1].Message {
		t.Errorf("quoted/newline message did not round-trip: %q", got[1].Message)
	}
}

// TestEncodeJSONEmpty: consumers always receive an array, never null —
// the CI jq step iterates without a null guard.
func TestEncodeJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if s := string(bytes.TrimSpace(buf.Bytes())); s != "[]" {
		t.Fatalf("empty encode = %q, want []", s)
	}
}
