package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared def-use/alias dataflow walk: a lightweight
// abstract interpreter over function bodies that tracks which values a
// "consuming" call has taken ownership of, through the aliases the
// function creates. It is the value-flow sibling of lockScanner's
// lock-state walk and deliberately shares its shape — statements are
// scanned in approximate execution order, branches are scanned
// independently and merged, and paths that terminate (return, break,
// continue) do not contribute to the fall-through state.
//
// The abstraction:
//
//   - every local variable maps to a *group id*; variables that alias
//     the same backing storage (x := y, x := y[:n], &y) share a group;
//   - element relationships (x := ys[i], zs := [][]T{x}) are tracked
//     as a container edge between groups rather than a merge, so
//     consuming a container consumes its elements but consuming one
//     element does not poison its siblings or the container;
//   - a consuming call marks the group (and, transitively via
//     container edges, contained groups) as consumed;
//   - any later use of a variable in a consumed group — read, write
//     through it, send, return, capture — fires onUse;
//   - reassignment kills: binding a variable to a fresh value moves it
//     to a new, unconsumed group.
//
// Two deliberate imprecisions keep the walk linear and predictable:
// values stored into struct fields or maps before consumption are not
// tracked through the heap, and a consumption performed inside a
// function literal does not flow into the enclosing function (the
// literal may run later or never). Both directions of test fixtures
// document what the walk does catch.

// ownConsumption records one ownership transfer: what took the value
// and where.
type ownConsumption struct {
	desc string // e.g. "EnqueueAllPooled" or "protocol.PutReportBatch"
	pos  token.Pos
}

// ownState is the per-path abstract state: variable → group id, and
// group id → consumption. Group ids are unique per walk and never
// reused, so states cloned at branches can share them safely.
type ownState struct {
	group    map[*types.Var]int
	consumed map[int]*ownConsumption
}

// pendingConsume is a consumption observed in an if statement's init
// or condition, applied only after the branches — the error-return
// idiom `if err := Put(b); err != nil { return err }` leaves b owned
// by the caller on the error path, so the error branch may still use
// it.
type pendingConsume struct {
	arg ast.Expr
	c   ownConsumption
}

// ownWalk drives the walk over one package's files.
type ownWalk struct {
	info *types.Info

	// classify identifies consuming calls: it returns the argument
	// expressions whose ownership the call takes and a short
	// description for diagnostics, or (nil, "") for ordinary calls.
	classify func(call *ast.CallExpr) (args []ast.Expr, desc string)

	// onUse fires for every use of a consumed value.
	onUse func(id *ast.Ident, c *ownConsumption)

	nextID    int
	container map[int]int // group id → containing group id
	pending   *[]pendingConsume
}

func (w *ownWalk) newState() *ownState {
	return &ownState{
		group:    make(map[*types.Var]int),
		consumed: make(map[int]*ownConsumption),
	}
}

func (w *ownWalk) clone(st *ownState) *ownState {
	out := &ownState{
		group:    make(map[*types.Var]int, len(st.group)),
		consumed: make(map[int]*ownConsumption, len(st.consumed)),
	}
	for v, g := range st.group {
		out.group[v] = g
	}
	for g, c := range st.consumed {
		out.consumed[g] = c
	}
	return out
}

// mergeState folds src into dst as the join of two fall-through
// branches: consumption on either path is consumption ("might already
// be pooled here"), and when a variable was rebound differently per
// branch the consumed binding wins.
func (w *ownWalk) mergeState(dst, src *ownState) {
	for g, c := range src.consumed {
		if dst.consumed[g] == nil {
			dst.consumed[g] = c
		}
	}
	for v, g := range src.group {
		dg, ok := dst.group[v]
		if !ok {
			dst.group[v] = g
			continue
		}
		if dg != g && dst.consumed[g] != nil && dst.consumed[dg] == nil {
			dst.group[v] = g
		}
	}
}

func (w *ownWalk) fresh() int {
	w.nextID++
	return w.nextID
}

func (w *ownWalk) groupOf(st *ownState, v *types.Var) int {
	if g, ok := st.group[v]; ok {
		return g
	}
	g := w.fresh()
	st.group[v] = g
	return g
}

// consumptionOf returns the consumption covering group g, following
// container edges upward (an element of a consumed container is
// consumed too).
func (w *ownWalk) consumptionOf(st *ownState, g int) *ownConsumption {
	for depth := 0; depth < 32; depth++ {
		if c := st.consumed[g]; c != nil {
			return c
		}
		parent, ok := w.container[g]
		if !ok {
			return nil
		}
		g = parent
	}
	return nil
}

// union merges b's group into a's.
func (w *ownWalk) union(st *ownState, a, b *types.Var) {
	ga, gb := w.groupOf(st, a), w.groupOf(st, b)
	if ga == gb {
		return
	}
	for v, g := range st.group {
		if g == gb {
			st.group[v] = ga
		}
	}
	if c := st.consumed[gb]; c != nil && st.consumed[ga] == nil {
		st.consumed[ga] = c
	}
	if p, ok := w.container[gb]; ok {
		if _, has := w.container[ga]; !has {
			w.container[ga] = p
		}
	}
}

// ident resolves e to the variable it names, or nil.
func (w *ownWalk) ident(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := w.info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = w.info.Defs[id].(*types.Var)
	}
	return v
}

// rootVar unwraps slicing, address-of, and parens to the variable
// whose backing storage e shares, or nil.
func (w *ownWalk) rootVar(e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			return w.ident(x)
		default:
			return nil
		}
	}
}

// bind records the aliasing effect of `lhs := rhs` (or =).
func (w *ownWalk) bind(st *ownState, lhs *types.Var, rhs ast.Expr) {
	if lhs == nil {
		return
	}
	switch x := ast.Unparen(rhs).(type) {
	case *ast.IndexExpr:
		// lhs is an element of rhs's container: fresh group, contained
		// in the container's group.
		if root := w.rootVar(x.X); root != nil {
			g := w.fresh()
			st.group[lhs] = g
			w.container[g] = w.groupOf(st, root)
			return
		}
	case *ast.CompositeLit:
		// lhs is a new container holding each element: the elements'
		// groups become contained in lhs's fresh group.
		g := w.fresh()
		st.group[lhs] = g
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if ev := w.rootVar(elt); ev != nil {
				w.container[w.groupOf(st, ev)] = g
			}
		}
		return
	default:
		if root := w.rootVar(rhs); root != nil {
			w.union(st, root, lhs)
			return
		}
	}
	// Fresh value (call result, literal, field read, ...): kill.
	st.group[lhs] = w.fresh()
}

// markConsumed marks the storage reachable from arg as consumed.
// Composite literals consume their elements ({batch} passed to
// EnqueueAllPooled consumes batch); slicing consumes the root (the
// sub-slice shares the backing array). Indexing is not tracked — a
// per-element Put through batches[i] consumes only that element, which
// this abstraction cannot name.
func (w *ownWalk) markConsumed(st *ownState, arg ast.Expr, c ownConsumption) {
	switch x := ast.Unparen(arg).(type) {
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			w.markConsumed(st, elt, c)
		}
	default:
		if root := w.rootVar(arg); root != nil {
			g := w.groupOf(st, root)
			cc := c
			st.consumed[g] = &cc
		}
	}
}

// checkUses reports every use of a consumed variable inside e,
// including uses captured by nested function literals (the capture
// point is where the aliasing escape happens).
func (w *ownWalk) checkUses(e ast.Expr, st *ownState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := w.info.Uses[id].(*types.Var)
		if v == nil {
			return true
		}
		g, ok := st.group[v]
		if !ok {
			return true
		}
		if c := w.consumptionOf(st, g); c != nil {
			w.onUse(id, c)
		}
		return true
	})
}

// applyConsume processes consuming calls inside e. When a pending list
// is active (if-init/cond position) the consumption is deferred to the
// statement after the if.
func (w *ownWalk) applyConsume(e ast.Expr, st *ownState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		args, desc := w.classify(call)
		for _, arg := range args {
			c := ownConsumption{desc: desc, pos: call.Pos()}
			if w.pending != nil {
				*w.pending = append(*w.pending, pendingConsume{arg: arg, c: c})
			} else {
				w.markConsumed(st, arg, c)
			}
		}
		return true
	})
}

// scanFile scans every function declaration and function literal in f,
// each from an empty state. A literal's body is additionally visited
// by checkUses at its creation point for uses of already-consumed
// outer values; its own consumptions stay local to its own scan.
func (w *ownWalk) scanFile(f *ast.File) {
	if w.container == nil {
		w.container = make(map[int]int)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				w.scanStmts(fn.Body.List, w.newState())
			}
		case *ast.FuncLit:
			w.scanStmts(fn.Body.List, w.newState())
		}
		return true
	})
}

func (w *ownWalk) scanStmts(stmts []ast.Stmt, st *ownState) (*ownState, bool) {
	for _, s := range stmts {
		var term bool
		st, term = w.scanStmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *ownWalk) scanStmt(stmt ast.Stmt, st *ownState) (*ownState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		w.checkUses(s.X, st)
		w.applyConsume(s.X, st)
		return st, false

	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.checkUses(rhs, st)
			w.applyConsume(rhs, st)
		}
		for _, lhs := range s.Lhs {
			// A plain identifier target is a (re)binding, not a use;
			// writing *through* a consumed value (b[i] = x, s.f = y
			// where the base is consumed) is a use of the base.
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				w.checkUses(lhs, st)
			}
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				w.bind(st, w.ident(lhs), s.Rhs[i])
			}
		} else {
			// Multi-value call/comma-ok: every bound variable is fresh.
			for _, lhs := range s.Lhs {
				if v := w.ident(lhs); v != nil {
					st.group[v] = w.fresh()
				}
			}
		}
		return st, false

	case *ast.IncDecStmt:
		w.checkUses(s.X, st)
		return st, false

	case *ast.SendStmt:
		w.checkUses(s.Chan, st)
		w.checkUses(s.Value, st)
		return st, false

	case *ast.DeferStmt:
		// Arguments evaluate now; the call itself runs at return, after
		// every remaining statement, so a deferred Put does not consume
		// for the purposes of this walk.
		for _, arg := range s.Call.Args {
			w.checkUses(arg, st)
		}
		return st, false

	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.checkUses(arg, st)
		}
		return st, false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					w.checkUses(val, st)
					w.applyConsume(val, st)
				}
				if len(vs.Names) == len(vs.Values) {
					for i, name := range vs.Names {
						w.bind(st, w.ident(name), vs.Values[i])
					}
				}
			}
		}
		return st, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkUses(r, st)
		}
		return st, true

	case *ast.BranchStmt:
		return st, true

	case *ast.BlockStmt:
		return w.scanStmts(s.List, st)

	case *ast.LabeledStmt:
		return w.scanStmt(s.Stmt, st)

	case *ast.IfStmt:
		// Consumptions in the init/cond apply only after the whole if:
		// the error branch of `if err := consume(b); err != nil` still
		// owns b (the consumer reports failure by leaving ownership
		// with the caller).
		var deferred []pendingConsume
		prev := w.pending
		w.pending = &deferred
		if s.Init != nil {
			st, _ = w.scanStmt(s.Init, st)
		}
		w.checkUses(s.Cond, st)
		w.applyConsume(s.Cond, st)
		w.pending = prev

		thenSt, thenTerm := w.scanStmts(s.Body.List, w.clone(st))
		elseSt, elseTerm := w.clone(st), false
		if s.Else != nil {
			elseSt, elseTerm = w.scanStmt(s.Else, w.clone(st))
		}
		var out *ownState
		var term bool
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			out, term = elseSt, false
		case elseTerm:
			out, term = thenSt, false
		default:
			w.mergeState(thenSt, elseSt)
			out, term = thenSt, false
		}
		for _, pc := range deferred {
			w.markConsumed(out, pc.arg, pc.c)
		}
		return out, term

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.scanStmt(s.Init, st)
		}
		w.checkUses(s.Cond, st)
		return w.scanLoopBody(s.Body.List, st), false

	case *ast.RangeStmt:
		w.checkUses(s.X, st)
		if val := w.ident(s.Value); val != nil {
			// The range value is an element of X's container.
			if root := w.rootVar(s.X); root != nil {
				g := w.fresh()
				st.group[val] = g
				w.container[g] = w.groupOf(st, root)
			} else {
				st.group[val] = w.fresh()
			}
		}
		if key := w.ident(s.Key); key != nil {
			st.group[key] = w.fresh()
		}
		return w.scanLoopBody(s.Body.List, st), false

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.scanStmt(s.Init, st)
		}
		w.checkUses(s.Tag, st)
		return w.scanCases(s.Body, st)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.scanStmt(s.Init, st)
		}
		return w.scanCases(s.Body, st)

	case *ast.SelectStmt:
		return w.scanCases(s.Body, st)

	default:
		return st, false
	}
}

// scanLoopBody scans a loop body twice: once from the entry state, and
// once from entry∪exit to surface loop-carried consumption (Put at the
// bottom of an iteration, use at the top of the next). Duplicate
// diagnostics from the two passes collapse in the runner's dedup.
func (w *ownWalk) scanLoopBody(body []ast.Stmt, st *ownState) *ownState {
	first, _ := w.scanStmts(body, w.clone(st))
	carried := w.clone(st)
	w.mergeState(carried, first)
	second, _ := w.scanStmts(body, carried)
	out := w.clone(st)
	w.mergeState(out, second)
	return out
}

func (w *ownWalk) scanCases(body *ast.BlockStmt, st *ownState) (*ownState, bool) {
	out := w.clone(st)
	hasDefault := false
	allTerminate := true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.checkUses(e, st)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
			if c.Comm != nil {
				stmts = append([]ast.Stmt{c.Comm}, stmts...)
			}
		}
		cs, term := w.scanStmts(stmts, w.clone(st))
		if !term {
			allTerminate = false
			w.mergeState(out, cs)
		}
	}
	return out, hasDefault && allTerminate && len(body.List) > 0
}
