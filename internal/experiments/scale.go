package experiments

import "fmt"

// Scale controls how much of the paper's full workload an experiment
// runs: the dataset fraction (the paper's tables are 40M+ rows; tests and
// benches use scaled-down replicas with preserved skew and density, per
// DESIGN.md §3) and the number of testing rounds averaged per point.
type Scale struct {
	Name   string
	Frac   float64 // fraction of the published dataset size (and domain)
	Rounds int     // testing rounds t in the error metrics
}

// Predefined scales. The LDP-vs-baseline orderings of the paper need
// large data and large domains (its own summary: the methods "are better
// suited for large datasets"); tiny/small are for benches and CI, medium
// and large reproduce the shapes, paper runs the published sizes and is
// only reasonable from the CLI on a large machine.
var (
	ScaleTiny   = Scale{Name: "tiny", Frac: 0.0005, Rounds: 1}
	ScaleSmall  = Scale{Name: "small", Frac: 0.005, Rounds: 2}
	ScaleMedium = Scale{Name: "medium", Frac: 0.05, Rounds: 2}
	ScaleLarge  = Scale{Name: "large", Frac: 0.25, Rounds: 2}
	ScalePaper  = Scale{Name: "paper", Frac: 1.0, Rounds: 5}
)

// ScaleByName resolves a preset name.
func ScaleByName(name string) (Scale, error) {
	for _, s := range []Scale{ScaleTiny, ScaleSmall, ScaleMedium, ScaleLarge, ScalePaper} {
		if s.Name == name {
			return s, nil
		}
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (want tiny|small|medium|large|paper)", name)
}

// note returns the standard scale annotation attached to each table.
func (s Scale) note() string {
	return fmt.Sprintf("scale=%s: datasets at %.4g× the published size (domain scaled alike), %d round(s) per point",
		s.Name, s.Frac, s.Rounds)
}
