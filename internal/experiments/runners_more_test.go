package experiments

import (
	"math"
	"testing"
)

// TestFig6Tiny exercises the space-cost sweep: every row must carry a
// positive space figure and a finite AE, and space must grow with m for
// each method.
func TestFig6Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	tab := Fig6(ScaleTiny)[0]
	if len(tab.Rows) != 3*4 {
		t.Fatalf("fig6 rows = %d, want 12", len(tab.Rows))
	}
	var prevMethod string
	prevSpace := 0.0
	for _, row := range tab.Rows {
		space := parseCell(t, row[2])
		ae := parseCell(t, row[3])
		if space <= 0 || math.IsNaN(ae) || ae < 0 {
			t.Fatalf("row %v has invalid cells", row)
		}
		if row[0] == prevMethod && space <= prevSpace {
			t.Fatalf("%s: space did not grow with m", row[0])
		}
		prevMethod, prevSpace = row[0], space
	}
}

// TestFig8Tiny exercises the ε sweep on all four datasets and checks the
// core shape on the skewed dataset: LDPJoinSketch improves by orders of
// magnitude from ε=0.1 to ε=10.
func TestFig8Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	tabs := Fig8(ScaleTiny)
	if len(tabs) != 4 {
		t.Fatalf("fig8 produced %d tables, want 4", len(tabs))
	}
	zipf := tabs[0]
	idx := -1
	for i, c := range zipf.Columns {
		if c == "LDPJoinSketch" {
			idx = i
		}
	}
	first := parseCell(t, zipf.Rows[0][idx])
	last := parseCell(t, zipf.Rows[len(zipf.Rows)-1][idx])
	if !(last < first/10) {
		t.Fatalf("LDPJoinSketch AE did not fall with ε: %.3g → %.3g", first, last)
	}
}

// TestFig9Tiny exercises both sketch-size sweeps; Apple-HCMS must improve
// with m (the paper's monotone curve).
func TestFig9Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	tabs := Fig9(ScaleTiny)
	if len(tabs) != 8 {
		t.Fatalf("fig9 produced %d tables, want 8", len(tabs))
	}
	mt := tabs[0] // fig9m-zipf1.1
	idx := -1
	for i, c := range mt.Columns {
		if c == "Apple-HCMS" {
			idx = i
		}
	}
	first := parseCell(t, mt.Rows[0][idx])
	last := parseCell(t, mt.Rows[len(mt.Rows)-1][idx])
	if !(last < first) {
		t.Fatalf("Apple-HCMS AE did not fall with m: %.3g → %.3g", first, last)
	}
}

// TestFig12Tiny checks the skewness sweep: the non-private anchor's RE
// must be tiny everywhere, and every cell finite.
func TestFig12Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	tab := Fig12(ScaleTiny)[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("fig12 rows = %d", len(tab.Rows))
	}
	idx := -1
	for i, c := range tab.Columns {
		if c == "FAGMS" {
			idx = i
		}
	}
	for _, row := range tab.Rows {
		if v := parseCell(t, row[idx]); v > 0.2 {
			t.Fatalf("alpha=%s: FAGMS RE %.3g implausibly large", row[0], v)
		}
	}
}

// TestFig14Tiny checks the frequency-estimation sweep: LDPJoinSketch and
// Apple-HCMS must track each other within a small factor (the paper's
// "same accuracy level" claim), and MSE must fall from ε=0.1 to ε=2.
func TestFig14Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	tabs := Fig14(ScaleTiny)
	if len(tabs) != 2 {
		t.Fatalf("fig14 produced %d tables", len(tabs))
	}
	tab := tabs[0]
	var iSketch, iHCMS int
	for i, c := range tab.Columns {
		switch c {
		case "LDPJoinSketch":
			iSketch = i
		case "Apple-HCMS":
			iHCMS = i
		}
	}
	for _, row := range tab.Rows {
		sk := parseCell(t, row[iSketch])
		hc := parseCell(t, row[iHCMS])
		if sk > 3*hc+1 || hc > 3*sk+1 {
			t.Fatalf("ε=%s: LDPJoinSketch MSE %.3g and HCMS %.3g diverge", row[0], sk, hc)
		}
	}
	first := parseCell(t, tab.Rows[0][iSketch])
	third := parseCell(t, tab.Rows[2][iSketch])
	if !(third < first) {
		t.Fatalf("MSE did not fall with ε: %.3g → %.3g", first, third)
	}
}

// TestFig15Tiny runs the full multiway table once.
func TestFig15Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	tab := Fig15(ScaleTiny)[0]
	if len(tab.Rows) != 11 {
		t.Fatalf("fig15 rows = %d", len(tab.Rows))
	}
	// The non-private COMPASS anchors must be accurate at every ε.
	var iC3 int
	for i, c := range tab.Columns {
		if c == "Compass(3way)" {
			iC3 = i
		}
	}
	for _, row := range tab.Rows {
		if v := parseCell(t, row[iC3]); v > 0.2 {
			t.Fatalf("ε=%s: COMPASS RE %.3g implausibly large", row[0], v)
		}
	}
}
