package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper artifact (a figure may span several
// tables, e.g. Fig 8's four datasets).
type Runner func(Scale) []*Table

// registry maps experiment ids to runners; ids match the paper's
// artifact numbering.
var registry = map[string]Runner{
	"table2": Table2,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
}

// order lists ids in presentation order.
var order = []string{
	"table2", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
}

// IDs returns all experiment ids in presentation order.
func IDs() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// Get resolves an experiment id.
func Get(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, known)
	}
	return r, nil
}
