package experiments

import (
	"fmt"
	"math/rand"

	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
	"ldpjoin/internal/ldp"
	"ldpjoin/internal/metrics"
)

// epsSweep is the privacy-budget grid of Figs 8, 14 and 15.
var epsSweep = []float64{0.1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

// Fig8 reproduces Fig 8: AE against the privacy budget ε on four
// datasets with k=18, m=1024.
func Fig8(sc Scale) []*Table {
	names := []string{"zipf1.5", "gaussian", "movielens", "twitter"}
	methods := AllMethods()
	var tables []*Table
	for _, name := range names {
		spec, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		task := taskFor(spec, sc)
		res := make([][]float64, len(epsSweep))
		parallelFor(len(epsSweep), func(i int) {
			p := defaultParams()
			p.Epsilon = epsSweep[i]
			res[i] = make([]float64, len(methods))
			for j, m := range methods {
				ae, _ := averageErrors(m, task, p, sc, seedFor(name+m.Name)+int64(i))
				res[i][j] = ae
			}
		})
		t := &Table{
			ID:      "fig8-" + name,
			Title:   fmt.Sprintf("Impact of ε on %s (AE; k=18, m=1024)", name),
			Columns: append([]string{"epsilon"}, methodNames(methods)...),
			Notes:   []string{sc.note()},
		}
		for i, eps := range epsSweep {
			row := []string{fmtG(eps)}
			for j := range methods {
				row = append(row, fmtG(res[i][j]))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig9 reproduces Fig 9: AE against sketch width m (k=18 fixed) and
// against sketch depth k (m=1024 fixed), ε=10, on four datasets, for the
// sketch-based methods.
func Fig9(sc Scale) []*Table {
	names := []string{"zipf1.1", "zipf2.0", "movielens", "twitter"}
	methods := SketchMethods()
	mSweep := []int{512, 1024, 2048, 4096, 8192}
	kSweep := []int{9, 12, 18, 21, 28, 30, 36}

	var tables []*Table
	for _, name := range names {
		var spec dataset.Spec
		var err error
		spec, err = dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		task := taskFor(spec, sc)

		mt := &Table{
			ID:      "fig9m-" + name,
			Title:   fmt.Sprintf("Impact of m on %s (AE; k=18, ε=10)", name),
			Columns: append([]string{"m"}, methodNames(methods)...),
			Notes:   []string{sc.note()},
		}
		mRes := make([][]float64, len(mSweep))
		parallelFor(len(mSweep), func(i int) {
			p := defaultParams()
			p.Epsilon = 10
			p.M = mSweep[i]
			mRes[i] = make([]float64, len(methods))
			for j, m := range methods {
				ae, _ := averageErrors(m, task, p, sc, seedFor(name+m.Name)+int64(i))
				mRes[i][j] = ae
			}
		})
		for i, mm := range mSweep {
			row := []string{fmt.Sprintf("%d", mm)}
			for j := range methods {
				row = append(row, fmtG(mRes[i][j]))
			}
			mt.AddRow(row...)
		}
		tables = append(tables, mt)

		kt := &Table{
			ID:      "fig9k-" + name,
			Title:   fmt.Sprintf("Impact of k on %s (AE; m=1024, ε=10)", name),
			Columns: append([]string{"k"}, methodNames(methods)...),
			Notes:   []string{sc.note()},
		}
		kRes := make([][]float64, len(kSweep))
		parallelFor(len(kSweep), func(i int) {
			p := defaultParams()
			p.Epsilon = 10
			p.K = kSweep[i]
			kRes[i] = make([]float64, len(methods))
			for j, m := range methods {
				ae, _ := averageErrors(m, task, p, sc, seedFor(name+m.Name)+int64(100+i))
				kRes[i][j] = ae
			}
		})
		for i, kk := range kSweep {
			row := []string{fmt.Sprintf("%d", kk)}
			for j := range methods {
				row = append(row, fmtG(kRes[i][j]))
			}
			kt.AddRow(row...)
		}
		tables = append(tables, kt)
	}
	return tables
}

// Fig10 reproduces Fig 10: AE of LDPJoinSketch+ against the phase-1
// sampling rate r on Zipf(1.1) with ε=4, k=18, m=1024.
func Fig10(sc Scale) []*Table {
	task := taskFor(dataset.ZipfSpec(1.1), sc)
	rates := []float64{0.10, 0.15, 0.20, 0.25, 0.30}
	plus := MethodPlus()
	res := make([]float64, len(rates))
	parallelFor(len(rates), func(i int) {
		p := defaultParams()
		p.SampleRate = rates[i]
		ae, _ := averageErrors(plus, task, p, sc, 4200+int64(i))
		res[i] = ae
	})
	t := &Table{
		ID:      "fig10",
		Title:   "Impact of sampling rate r (LDPJoinSketch+, Zipf α=1.1; ε=4)",
		Columns: []string{"r", "AE"},
		Notes:   []string{sc.note()},
	}
	for i, r := range rates {
		t.AddRow(fmtG(r), fmtG(res[i]))
	}
	return []*Table{t}
}

// Fig11 reproduces Fig 11: AE of LDPJoinSketch+ against the
// frequent-item threshold θ on Zipf(1.1) with ε=4. Unlike the other
// runners, θ is NOT clamped to the noise floor here — the figure's whole
// point is the degradation on both sides of the sweet spot.
func Fig11(sc Scale) []*Table {
	task := taskFor(dataset.ZipfSpec(1.1), sc)
	thetas := []float64{5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1}
	res := make([]float64, len(thetas))
	parallelFor(len(thetas), func(i int) {
		var acc metrics.Accumulator
		for r := 0; r < sc.Rounds; r++ {
			opt := core.PlusOptions{
				Params:     core.Params{K: 18, M: 1024, Epsilon: 4},
				SampleRate: 0.1,
				Theta:      thetas[i],
				Seed:       8800 + int64(i)*31 + int64(r),
			}
			out := core.EstimateJoinPlus(task.A, task.B, task.Domain, opt)
			acc.Add(task.Truth, out.Estimate)
		}
		res[i] = acc.AE()
	})
	t := &Table{
		ID:      "fig11",
		Title:   "Impact of threshold θ (LDPJoinSketch+, Zipf α=1.1; ε=4, r=0.1)",
		Columns: []string{"theta", "AE"},
		Notes:   []string{sc.note(), "θ is deliberately unclamped: both tails of the sweep degrade, as in the paper"},
	}
	for i, th := range thetas {
		t.AddRow(fmtG(th), fmtG(res[i]))
	}
	return []*Table{t}
}

// Fig14 reproduces Fig 14: frequency-estimation MSE against ε on
// Zipf(1.5) and MovieLens for the frequency-capable mechanisms.
func Fig14(sc Scale) []*Table {
	var tables []*Table
	for _, name := range []string{"zipf1.5", "movielens"} {
		spec, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		data := spec.Generate(seedFor(spec.Name), sc.Frac)
		domain := spec.DomainAt(sc.Frac)
		truth := join.Frequencies(data)

		methodsF := []string{"k-RR", "Apple-HCMS", "FLH", "LDPJoinSketch"}
		res := make([][]float64, len(epsSweep))
		parallelFor(len(epsSweep), func(i int) {
			eps := epsSweep[i]
			res[i] = make([]float64, len(methodsF))
			for r := 0; r < sc.Rounds; r++ {
				seed := seedFor(name) + int64(i)*97 + int64(r)
				res[i][0] += krrMSE(data, domain, eps, truth, seed)
				res[i][1] += hcmsMSE(data, domain, eps, truth, seed)
				res[i][2] += flhMSE(data, domain, eps, truth, seed)
				res[i][3] += coreMSE(data, domain, eps, truth, seed)
			}
			for j := range res[i] {
				res[i][j] /= float64(sc.Rounds)
			}
		})
		t := &Table{
			ID:      "fig14-" + name,
			Title:   fmt.Sprintf("Frequency estimation on %s (MSE over the domain; k=18, m=1024)", name),
			Columns: append([]string{"epsilon"}, methodsF...),
			Notes:   []string{sc.note()},
		}
		for i, eps := range epsSweep {
			row := []string{fmtG(eps)}
			for j := range methodsF {
				row = append(row, fmtG(res[i][j]))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

func krrMSE(data []uint64, domain uint64, eps float64, truth map[uint64]int64, seed int64) float64 {
	k := ldp.NewKRR(domain, eps)
	k.Collect(data, rand.New(rand.NewSource(seed)))
	var mse metrics.MSEAccumulator
	for d := uint64(0); d < domain; d++ {
		mse.Add(float64(truth[d]), k.Frequency(d))
	}
	return mse.Value()
}

func hcmsMSE(data []uint64, domain uint64, eps float64, truth map[uint64]int64, seed int64) float64 {
	fam := hashing.NewFamily(seed, 18, 1024)
	h := ldp.NewHCMS(fam, eps)
	h.Collect(data, rand.New(rand.NewSource(seed)))
	h.Finalize()
	var mse metrics.MSEAccumulator
	for d := uint64(0); d < domain; d++ {
		mse.Add(float64(truth[d]), h.Frequency(d))
	}
	return mse.Value()
}

func flhMSE(data []uint64, domain uint64, eps float64, truth map[uint64]int64, seed int64) float64 {
	f := ldp.NewFLH(seed, 512, eps)
	f.Collect(data, rand.New(rand.NewSource(seed)))
	var mse metrics.MSEAccumulator
	for d := uint64(0); d < domain; d++ {
		mse.Add(float64(truth[d]), f.Frequency(d))
	}
	return mse.Value()
}

func coreMSE(data []uint64, domain uint64, eps float64, truth map[uint64]int64, seed int64) float64 {
	p := core.Params{K: 18, M: 1024, Epsilon: eps}
	fam := p.NewFamily(seed)
	agg := core.NewAggregator(p, fam)
	agg.CollectColumn(data, rand.New(rand.NewSource(seed)))
	sk := agg.Finalize()
	var mse metrics.MSEAccumulator
	for d := uint64(0); d < domain; d++ {
		mse.Add(float64(truth[d]), sk.Frequency(d))
	}
	return mse.Value()
}

// ZipfTask builds a task over a Zipf spec; the ablation benches use it to
// reach a workload directly, outside the Fig runners.
func ZipfTask(alpha float64, sc Scale) JoinTask {
	return taskFor(dataset.ZipfSpec(alpha), sc)
}
