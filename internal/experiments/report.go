// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII): workload generation, parameter sweeps, baselines and
// the proposed methods, with results rendered as aligned text tables or
// CSV. Each experiment is a pure function of its Scale, so runs are
// reproducible; the experiment ↔ module map lives in DESIGN.md §4 and the
// recorded outcomes in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment artifact: a figure's data series or a
// literal table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes document scale substitutions and interpretation choices that
	// apply to this artifact.
	Notes []string
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row has %d cells, table %q has %d columns",
			len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (no quoting is needed:
// cells are numbers and identifiers).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtG formats a float compactly for table cells.
func fmtG(v float64) string { return fmt.Sprintf("%.4g", v) }
