package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== t: demo ==", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,bb\n1,2\n333,4\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestTableAddRowPanicsOnArity(t *testing.T) {
	tab := &Table{ID: "t", Columns: []string{"a"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.AddRow("1", "2")
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "paper"} {
		s, err := ScaleByName(name)
		if err != nil || s.Name != name {
			t.Fatalf("ScaleByName(%q) = %+v, %v", name, s, err)
		}
	}
	if _, err := ScaleByName("nope"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 12 {
		t.Fatalf("expected 12 experiments, got %d", len(ids))
	}
	for _, id := range ids {
		if _, err := Get(id); err != nil {
			t.Errorf("Get(%q): %v", id, err)
		}
	}
	if _, err := Get("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// parseCell parses a rendered numeric cell.
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

// TestFig5TinySmoke runs the headline accuracy experiment at tiny scale
// and checks the paper's qualitative shape: the sketch methods land
// within sane relative error while k-RR and FLH blow up on large domains.
func TestFig5TinySmoke(t *testing.T) {
	tabs := Fig5(ScaleTiny)
	if len(tabs) != 1 {
		t.Fatalf("fig5 produced %d tables", len(tabs))
	}
	tab := tabs[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("fig5 has %d rows, want 6", len(tab.Rows))
	}
	idx := map[string]int{}
	for i, c := range tab.Columns {
		idx[c] = i
	}
	for _, row := range tab.Rows {
		fagms := parseCell(t, row[idx["FAGMS"]])
		ldpjs := parseCell(t, row[idx["LDPJoinSketch"]])
		if math.IsNaN(fagms) || math.IsNaN(ldpjs) {
			t.Errorf("%s: NaN cells", row[0])
		}
		// The non-private anchor must be at least as good as everything
		// else within noise; sanity: it should be below 50% RE everywhere.
		if fagms > 0.5 {
			t.Errorf("%s: FAGMS RE %.3f implausibly large", row[0], fagms)
		}
	}
}

// TestFig7CommunicationShape checks the paper's Fig 7 finding: the
// hadamard-encoded mechanisms (HCMS, LDPJoinSketch) transmit at least an
// order of magnitude fewer bits than k-RR.
func TestFig7CommunicationShape(t *testing.T) {
	tab := Fig7(ScaleTiny)[0]
	idx := map[string]int{}
	for i, c := range tab.Columns {
		idx[c] = i
	}
	for _, row := range tab.Rows {
		krr := parseCell(t, row[idx["k-RR"]])
		ldpjs := parseCell(t, row[idx["LDPJoinSketch"]])
		hcms := parseCell(t, row[idx["Apple-HCMS"]])
		if ldpjs*1.01 >= krr {
			t.Errorf("%s: LDPJoinSketch bits %.0f not below k-RR %.0f", row[0], ldpjs, krr)
		}
		if ldpjs != hcms {
			t.Errorf("%s: LDPJoinSketch and HCMS should transmit identical bits (%.0f vs %.0f)",
				row[0], ldpjs, hcms)
		}
	}
}

func TestTable2MatchesSpecs(t *testing.T) {
	tab := Table2(ScaleTiny)[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("table2 rows = %d", len(tab.Rows))
	}
	if tab.Rows[2][0] != "movielens" || tab.Rows[2][1] != "83239" {
		t.Fatalf("movielens row wrong: %v", tab.Rows[2])
	}
}

// TestFig10And11RunTiny smoke-tests the plus-only sweeps.
func TestFig10And11RunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep smoke test")
	}
	tenTab := Fig10(ScaleTiny)[0]
	if len(tenTab.Rows) != 5 {
		t.Fatalf("fig10 rows = %d", len(tenTab.Rows))
	}
	for _, row := range tenTab.Rows {
		if v := parseCell(t, row[1]); math.IsNaN(v) || v < 0 {
			t.Errorf("fig10 r=%s AE=%v", row[0], v)
		}
	}
	eleven := Fig11(ScaleTiny)[0]
	if len(eleven.Rows) != 8 {
		t.Fatalf("fig11 rows = %d", len(eleven.Rows))
	}
}

// TestFig13ReportsTimings checks the efficiency table exists with
// positive offline costs and cheap online costs for sketch methods.
func TestFig13ReportsTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke test")
	}
	tab := Fig13(ScaleTiny)[0]
	if len(tab.Rows) != 3*6 {
		t.Fatalf("fig13 rows = %d, want 18", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		off := parseCell(t, row[2])
		on := parseCell(t, row[3])
		if off <= 0 {
			t.Errorf("%s/%s: offline %.6f not positive", row[0], row[1], off)
		}
		if row[1] == "LDPJoinSketch" && on > off {
			t.Errorf("%s: LDPJoinSketch online %.6f exceeds offline %.6f", row[0], on, off)
		}
	}
}

// TestFig15RunsTiny smoke-tests the multiway experiment end to end on a
// single epsilon by reusing its internals.
func TestFig15ChainBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("multiway smoke test")
	}
	ct := newChainTask(ScaleTiny)
	if ct.truth3 <= 0 || ct.truth4 <= 0 {
		t.Fatalf("degenerate chain truths: %g, %g", ct.truth3, ct.truth4)
	}
	// Non-private COMPASS should be close.
	est := compassChain(ct, ct.mids, ct.tEnd, 1)
	if re := math.Abs(est-ct.truth3) / ct.truth3; re > 0.5 {
		t.Errorf("COMPASS 3-way RE = %.3f", re)
	}
	// The LDP chain at a generous budget should be in the ballpark.
	est = ldpChain(ct, ct.mids, ct.tEnd, 8, 2)
	if re := math.Abs(est-ct.truth3) / ct.truth3; re > 1.5 {
		t.Errorf("LDP 3-way RE = %.3f", re)
	}
	// Pair-encoded k-RR must produce a finite estimate.
	if est := krrChain3(ct, 4, 3); math.IsNaN(est) || math.IsInf(est, 0) {
		t.Errorf("k-RR chain produced %v", est)
	}
}

func TestZipfTaskTruthPositive(t *testing.T) {
	task := ZipfTask(1.5, ScaleTiny)
	if task.Truth <= 0 || len(task.A) == 0 {
		t.Fatalf("degenerate task: truth=%g n=%d", task.Truth, len(task.A))
	}
}
