package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
	"ldpjoin/internal/metrics"
)

// seedFor derives a stable per-dataset seed from its name.
func seedFor(name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// taskFor materializes one dataset pair at the given scale with the exact
// join size attached.
func taskFor(spec dataset.Spec, sc Scale) JoinTask {
	a, b := spec.Pair(seedFor(spec.Name), sc.Frac)
	return JoinTask{A: a, B: b, Domain: spec.DomainAt(sc.Frac), Truth: join.Size(a, b)}
}

// parallelFor runs f(0..n-1) on up to GOMAXPROCS goroutines. Work items
// must be independent; determinism comes from per-item seeds.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// averageErrors runs a method sc.Rounds times on a task and returns the
// mean AE and RE.
func averageErrors(m JoinMethod, task JoinTask, p MethodParams, sc Scale, baseSeed int64) (ae, re float64) {
	var acc metrics.Accumulator
	for r := 0; r < sc.Rounds; r++ {
		res := m.Run(task, p, baseSeed+int64(r)*7919)
		acc.Add(task.Truth, res.Estimate)
	}
	return acc.AE(), acc.RE()
}

// fig5Datasets is the Fig 5 lineup.
func fig5Datasets() []dataset.Spec {
	out := make([]dataset.Spec, 0, 6)
	for _, name := range []string{"zipf1.1", "gaussian", "movielens", "tpcds", "twitter", "facebook"} {
		s, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

// Table2 reproduces Table II (dataset inventory), extended with the
// realized statistics of the scaled replicas actually used.
func Table2(sc Scale) []*Table {
	t := &Table{
		ID:      "table2",
		Title:   "Information of Datasets (published vs scaled replica)",
		Columns: []string{"dataset", "domain", "size", "scaled_domain", "scaled_size", "distinct", "top10_share"},
		Notes:   []string{sc.note()},
	}
	for _, spec := range fig5Datasets() {
		data := spec.Generate(seedFor(spec.Name), sc.Frac)
		t.AddRow(
			spec.Name,
			fmt.Sprintf("%d", spec.Domain),
			fmt.Sprintf("%d", spec.FullSize),
			fmt.Sprintf("%d", spec.DomainAt(sc.Frac)),
			fmt.Sprintf("%d", len(data)),
			fmt.Sprintf("%d", dataset.Distinct(data)),
			fmtG(dataset.TopShare(data, 10)),
		)
	}
	return []*Table{t}
}

// Fig5 reproduces Fig 5: relative error of join size estimation on the
// six datasets with ε=4, k=18, m=1024.
func Fig5(sc Scale) []*Table {
	specs := fig5Datasets()
	methods := AllMethods()
	p := defaultParams()

	res := make([][]float64, len(specs))
	parallelFor(len(specs), func(i int) {
		task := taskFor(specs[i], sc)
		res[i] = make([]float64, len(methods))
		for j, m := range methods {
			_, re := averageErrors(m, task, p, sc, seedFor(specs[i].Name+m.Name))
			res[i][j] = re
		}
	})

	t := &Table{
		ID:      "fig5",
		Title:   "Accuracy of join size estimation (RE; ε=4, k=18, m=1024)",
		Columns: append([]string{"dataset"}, methodNames(methods)...),
		Notes:   []string{sc.note()},
	}
	for i, spec := range specs {
		row := []string{spec.Name}
		for j := range methods {
			row = append(row, fmtG(res[i][j]))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// Fig6 reproduces Fig 6: AE against server-side space cost on Zipf(2.0)
// with ε=10, r=0.1, θ=0.001 (clamped to the noise floor at reduced
// scale). Each sketch method sweeps its width m, reporting its own space.
func Fig6(sc Scale) []*Table {
	spec := dataset.ZipfSpec(2.0)
	task := taskFor(spec, sc)
	p := defaultParams()
	p.Epsilon = 10
	p.SampleRate = 0.1
	p.Theta = 0.001
	methods := []JoinMethod{MethodHCMS(), MethodLDPJoinSketch(), MethodPlus()}
	ms := []int{512, 1024, 2048, 4096}

	type cell struct {
		space float64
		ae    float64
	}
	res := make([][]cell, len(methods))
	for i := range res {
		res[i] = make([]cell, len(ms))
	}
	parallelFor(len(methods)*len(ms), func(idx int) {
		i, j := idx/len(ms), idx%len(ms)
		pm := p
		pm.M = ms[j]
		var acc metrics.Accumulator
		var space float64
		for r := 0; r < sc.Rounds; r++ {
			out := methods[i].Run(task, pm, seedFor(methods[i].Name)+int64(ms[j])+int64(r)*7919)
			acc.Add(task.Truth, out.Estimate)
			space = out.Space
		}
		res[i][j] = cell{space: space, ae: acc.AE()}
	})

	t := &Table{
		ID:      "fig6",
		Title:   "Impact of space cost (Zipf α=2.0; ε=10, k=18, r=0.1, θ=0.001)",
		Columns: []string{"method", "m", "space_KB", "AE"},
		Notes:   []string{sc.note(), "space is the total server sketch footprint for both attributes; LDPJoinSketch+ includes both phases"},
	}
	for i, m := range methods {
		for j, mm := range ms {
			t.AddRow(m.Name, fmt.Sprintf("%d", mm), fmtG(res[i][j].space/1024), fmtG(res[i][j].ae))
		}
	}
	return []*Table{t}
}

// Fig7 reproduces Fig 7: total client→server communication on Zipf(1.1)
// and MovieLens with ε=4, k=18, m=1024. Communication is a closed-form
// property of each mechanism, so no protocol rounds are needed.
func Fig7(sc Scale) []*Table {
	p := defaultParams()
	methods := []JoinMethod{MethodKRR(), MethodHCMS(), MethodFLH(), MethodLDPJoinSketch()}
	t := &Table{
		ID:      "fig7",
		Title:   "Communication cost in bits (ε=4, k=18, m=1024)",
		Columns: append([]string{"dataset"}, methodNames(methods)...),
		Notes:   []string{sc.note()},
	}
	for _, name := range []string{"zipf1.1", "movielens"} {
		spec, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		task := taskFor(spec, sc)
		row := []string{spec.Name}
		for _, m := range methods {
			out := m.Run(task, p, seedFor(name+m.Name))
			row = append(row, fmtG(out.CommBits))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// Fig12 reproduces Fig 12: RE against the Zipf skewness parameter α with
// ε=4, k=18, m=1024.
func Fig12(sc Scale) []*Table {
	alphas := []float64{1.1, 1.3, 1.5, 1.7, 1.9}
	methods := AllMethods()
	p := defaultParams()

	res := make([][]float64, len(alphas))
	parallelFor(len(alphas), func(i int) {
		task := taskFor(dataset.ZipfSpec(alphas[i]), sc)
		res[i] = make([]float64, len(methods))
		for j, m := range methods {
			_, re := averageErrors(m, task, p, sc, seedFor(m.Name)+int64(i))
			res[i][j] = re
		}
	})

	t := &Table{
		ID:      "fig12",
		Title:   "Impact of skewness (RE; Zipf, ε=4, k=18, m=1024)",
		Columns: append([]string{"alpha"}, methodNames(methods)...),
		Notes:   []string{sc.note()},
	}
	for i, a := range alphas {
		row := []string{fmtG(a)}
		for j := range methods {
			row = append(row, fmtG(res[i][j]))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// Fig13 reproduces Fig 13: offline (collection + construction) and online
// (query) running time per method. Runs are sequential so timings are not
// distorted by contention.
func Fig13(sc Scale) []*Table {
	methods := AllMethods()
	p := defaultParams()
	t := &Table{
		ID:      "fig13",
		Title:   "Efficiency: offline/online running time (seconds; ε=4, k=18, m=1024)",
		Columns: []string{"dataset", "method", "offline_s", "online_s"},
		Notes:   []string{sc.note(), "offline = perturb+collect+construct; online = join estimation"},
	}
	for _, name := range []string{"zipf1.1", "gaussian", "twitter"} {
		spec, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		task := taskFor(spec, sc)
		for _, m := range methods {
			out := m.Run(task, p, seedFor(name+m.Name))
			t.AddRow(spec.Name, m.Name, fmtG(out.Offline.Seconds()), fmtG(out.Online.Seconds()))
		}
	}
	return []*Table{t}
}

func methodNames(ms []JoinMethod) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	return out
}
