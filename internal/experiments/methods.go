package experiments

import (
	"math"
	"math/rand"
	"time"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/ldp"
	"ldpjoin/internal/sketch"
)

// JoinTask is one join-estimation problem: two private columns over a
// shared candidate domain, with the exact answer attached for error
// computation.
type JoinTask struct {
	A      []uint64
	B      []uint64
	Domain uint64
	Truth  float64
}

// MethodParams bundles the knobs shared across methods, matching the
// paper's parameter list (§VII-A).
type MethodParams struct {
	K       int
	M       int
	Epsilon float64
	// SampleRate (r) and Theta (θ) configure LDPJoinSketch+. Theta is
	// clamped to core.ThetaFloor for the actual sample size.
	SampleRate float64
	Theta      float64
	// FLHPool is the number of public hash functions FLH draws from.
	FLHPool int
	// LiteralNT and MeanFI select the paper-literal LDPJoinSketch+
	// variants (ablation knobs).
	LiteralNT bool
	MeanFI    bool
}

// defaultParams mirrors the paper's defaults: k=18, m=1024, ε=4, r=0.1,
// θ=0.01 (clamped to the noise floor at run time), FLH pool of 512.
func defaultParams() MethodParams {
	return MethodParams{
		K: 18, M: 1024, Epsilon: 4,
		SampleRate: 0.1, Theta: 0.01,
		FLHPool: 512,
	}
}

func (p MethodParams) coreParams() core.Params {
	return core.Params{K: p.K, M: p.M, Epsilon: p.Epsilon}
}

// plusTheta clamps θ to the phase-1 noise floor for a population of n
// users (see core.ThetaFloor). At very small budgets the floor can
// exceed 1 — no threshold works there — so the result is capped at 0.5,
// which empties FI and lets LDPJoinSketch+ degrade gracefully to plain
// sketches over the phase-2 groups.
func (p MethodParams) plusTheta(n int) float64 {
	floor := core.ThetaFloor(p.Epsilon, int(p.SampleRate*float64(n)))
	return math.Min(0.5, math.Max(p.Theta, floor))
}

// RunResult is one method's outcome on one task.
type RunResult struct {
	Estimate float64
	Offline  time.Duration // collecting reports and constructing state
	Online   time.Duration // answering the join query
	CommBits float64       // total client→server bits
	Space    float64       // server-side summary bytes per attribute pair
}

// JoinMethod is a named join-size estimator in the evaluation.
type JoinMethod struct {
	Name    string
	Private bool
	Run     func(task JoinTask, p MethodParams, seed int64) RunResult
}

// AllMethods returns the evaluation lineup in the paper's order: the
// non-private fast-AGMS anchor, the three LDP baselines, and the two
// proposed methods.
func AllMethods() []JoinMethod {
	return []JoinMethod{
		MethodFAGMS(),
		MethodKRR(),
		MethodHCMS(),
		MethodFLH(),
		MethodLDPJoinSketch(),
		MethodPlus(),
	}
}

// SketchMethods returns the subset compared in the sketch-parameter
// sweeps (Figs 6 and 9).
func SketchMethods() []JoinMethod {
	return []JoinMethod{
		MethodFAGMS(),
		MethodHCMS(),
		MethodLDPJoinSketch(),
		MethodPlus(),
	}
}

// MethodFAGMS is the non-private fast-AGMS sketch ("FAGMS").
func MethodFAGMS() JoinMethod {
	return JoinMethod{
		Name: "FAGMS",
		Run: func(task JoinTask, p MethodParams, seed int64) RunResult {
			start := time.Now()
			fam := hashing.NewFamily(seed, p.K, p.M)
			sa := sketch.NewFastAGMS(fam)
			sa.UpdateAll(task.A)
			sb := sketch.NewFastAGMS(fam)
			sb.UpdateAll(task.B)
			offline := time.Since(start)
			start = time.Now()
			est := sa.InnerProduct(sb)
			return RunResult{
				Estimate: est,
				Offline:  offline,
				Online:   time.Since(start),
				CommBits: float64(len(task.A)+len(task.B)) * float64(bitsFor(task.Domain)),
				Space:    float64(2 * p.K * p.M * 8),
			}
		},
	}
}

// MethodKRR is k-ary randomized response with frequency-vector join.
func MethodKRR() JoinMethod {
	return JoinMethod{
		Name:    "k-RR",
		Private: true,
		Run: func(task JoinTask, p MethodParams, seed int64) RunResult {
			start := time.Now()
			ka := ldp.NewKRR(task.Domain, p.Epsilon)
			kb := ldp.NewKRR(task.Domain, p.Epsilon)
			rng := rand.New(rand.NewSource(seed))
			ka.Collect(task.A, rng)
			kb.Collect(task.B, rng)
			offline := time.Since(start)
			start = time.Now()
			est := ka.JoinSize(kb)
			return RunResult{
				Estimate: est,
				Offline:  offline,
				Online:   time.Since(start),
				CommBits: float64(len(task.A)+len(task.B)) * float64(ka.ReportBits()),
				Space:    float64(2 * 8 * task.Domain),
			}
		},
	}
}

// MethodHCMS is Apple's Hadamard count mean sketch with
// frequency-accumulation join.
func MethodHCMS() JoinMethod {
	return JoinMethod{
		Name:    "Apple-HCMS",
		Private: true,
		Run: func(task JoinTask, p MethodParams, seed int64) RunResult {
			start := time.Now()
			fam := hashing.NewFamily(seed, p.K, p.M)
			ha := ldp.NewHCMS(fam, p.Epsilon)
			hb := ldp.NewHCMS(fam, p.Epsilon)
			rng := rand.New(rand.NewSource(seed))
			ha.Collect(task.A, rng)
			hb.Collect(task.B, rng)
			ha.Finalize()
			hb.Finalize()
			offline := time.Since(start)
			start = time.Now()
			est := ha.JoinSize(hb, task.Domain)
			return RunResult{
				Estimate: est,
				Offline:  offline,
				Online:   time.Since(start),
				CommBits: float64(len(task.A)+len(task.B)) * float64(ha.ReportBits()),
				Space:    float64(2 * ha.SketchBytes()),
			}
		},
	}
}

// MethodFLH is fast local hashing with frequency-vector join.
func MethodFLH() JoinMethod {
	return JoinMethod{
		Name:    "FLH",
		Private: true,
		Run: func(task JoinTask, p MethodParams, seed int64) RunResult {
			start := time.Now()
			fa := ldp.NewFLH(seed, p.FLHPool, p.Epsilon)
			fb := ldp.NewFLH(seed^0x55, p.FLHPool, p.Epsilon)
			rng := rand.New(rand.NewSource(seed))
			fa.Collect(task.A, rng)
			fb.Collect(task.B, rng)
			offline := time.Since(start)
			start = time.Now()
			est := fa.JoinSize(fb, task.Domain)
			return RunResult{
				Estimate: est,
				Offline:  offline,
				Online:   time.Since(start),
				CommBits: float64(len(task.A)+len(task.B)) * float64(fa.ReportBits()),
				Space:    float64(2 * p.FLHPool * int(fa.G()) * 8),
			}
		},
	}
}

// MethodLDPJoinSketch is the paper's first contribution.
func MethodLDPJoinSketch() JoinMethod {
	return JoinMethod{
		Name:    "LDPJoinSketch",
		Private: true,
		Run: func(task JoinTask, p MethodParams, seed int64) RunResult {
			cp := p.coreParams()
			start := time.Now()
			fam := cp.NewFamily(seed)
			aggA := core.NewAggregator(cp, fam)
			aggB := core.NewAggregator(cp, fam)
			rng := rand.New(rand.NewSource(seed))
			aggA.CollectColumn(task.A, rng)
			aggB.CollectColumn(task.B, rng)
			skA := aggA.Finalize()
			skB := aggB.Finalize()
			offline := time.Since(start)
			start = time.Now()
			est := skA.JoinSize(skB)
			return RunResult{
				Estimate: est,
				Offline:  offline,
				Online:   time.Since(start),
				CommBits: float64(len(task.A)+len(task.B)) * float64(cp.ReportBits()),
				Space:    float64(2 * cp.SketchBytes()),
			}
		},
	}
}

// MethodPlus is LDPJoinSketch+ (the two-phase framework).
func MethodPlus() JoinMethod {
	return JoinMethod{
		Name:    "LDPJoinSketch+",
		Private: true,
		Run: func(task JoinTask, p MethodParams, seed int64) RunResult {
			opt := core.PlusOptions{
				Params:               p.coreParams(),
				SampleRate:           p.SampleRate,
				Theta:                p.plusTheta(min(len(task.A), len(task.B))),
				LiteralNTSubtraction: p.LiteralNT,
				MeanFI:               p.MeanFI,
				Seed:                 seed,
			}
			res := core.EstimateJoinPlus(task.A, task.B, task.Domain, opt)
			return RunResult{
				Estimate: res.Estimate,
				Offline:  res.BuildTime,
				Online:   res.EstimateTime,
				CommBits: float64(len(task.A)+len(task.B)) * float64(opt.Params.ReportBits()),
				// Phase-1 sketch plus two phase-2 sketches per attribute.
				Space: float64(2 * 3 * opt.Params.SketchBytes()),
			}
		},
	}
}

func bitsFor(n uint64) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
