package experiments

import (
	"fmt"
	"math/rand"

	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
	"ldpjoin/internal/ldp"
	"ldpjoin/internal/metrics"
	"ldpjoin/internal/sketch"
)

// chainTask is a multiway chain-join fixture:
// T1(A) ⋈ T2(A,B) [⋈ T3(B,C) ⋈ T4(C)] with Zipf(1.5) columns.
type chainTask struct {
	t1, tEnd []uint64
	mids     []join.PairTable
	domain   uint64
	truth3   float64
	truth4   float64
	mids4    []join.PairTable
	tEnd4    []uint64
}

// multiwayDomain caps the chain domain so the pair-encoded baselines
// (domain²) stay tractable at any scale.
func multiwayDomain(sc Scale) uint64 {
	d := dataset.ZipfSpec(1.5).DomainAt(sc.Frac)
	if d > 512 {
		d = 512
	}
	return d
}

func newChainTask(sc Scale) chainTask {
	spec := dataset.ZipfSpec(1.5)
	n := spec.Size(sc.Frac)
	domain := multiwayDomain(sc)
	gen := func(seed int64) []uint64 { return dataset.Zipf(seed, n, domain, 1.5) }

	ct := chainTask{domain: domain}
	ct.t1 = gen(101)
	ct.tEnd = gen(102)
	ct.mids = []join.PairTable{{A: gen(103), B: gen(104)}}
	ct.truth3 = join.ChainSize(ct.t1, ct.mids, ct.tEnd)

	ct.mids4 = []join.PairTable{ct.mids[0], {A: gen(105), B: gen(106)}}
	ct.tEnd4 = gen(107)
	ct.truth4 = join.ChainSize(ct.t1, ct.mids4, ct.tEnd4)
	return ct
}

// multiwaySketchWidth is the per-dimension width of the chain sketches;
// a middle table costs k·m² counters, so it is kept moderate.
const multiwaySketchWidth = 256

// compassChain runs the non-private COMPASS baseline over the chain.
func compassChain(ct chainTask, mids []join.PairTable, tEnd []uint64, seed int64) float64 {
	const k = 9
	fams := make([]*hashing.Family, len(mids)+1)
	for i := range fams {
		fams[i] = hashing.NewFamily(seed+int64(i), k, multiwaySketchWidth)
	}
	left := sketch.NewFastAGMS(fams[0])
	left.UpdateAll(ct.t1)
	right := sketch.NewFastAGMS(fams[len(fams)-1])
	right.UpdateAll(tEnd)
	mats := make([]*sketch.CompassMatrix, len(mids))
	for i, mid := range mids {
		mats[i] = sketch.NewCompassMatrix(fams[i], fams[i+1])
		mats[i].UpdateAll(mid.A, mid.B)
	}
	return sketch.CompassChain(left, mats, right)
}

// ldpChain runs the paper's multiway LDPJoinSketch over the chain.
func ldpChain(ct chainTask, mids []join.PairTable, tEnd []uint64, eps float64, seed int64) float64 {
	const k = 9
	endP := core.Params{K: k, M: multiwaySketchWidth, Epsilon: eps}
	midP := core.MatrixParams{K: k, M1: multiwaySketchWidth, M2: multiwaySketchWidth, Epsilon: eps}
	fams := make([]*hashing.Family, len(mids)+1)
	for i := range fams {
		fams[i] = hashing.NewFamily(seed+int64(i), k, multiwaySketchWidth)
	}
	rng := rand.New(rand.NewSource(seed))

	aggL := core.NewAggregator(endP, fams[0])
	aggL.CollectColumn(ct.t1, rng)
	aggR := core.NewAggregator(endP, fams[len(fams)-1])
	aggR.CollectColumn(tEnd, rng)
	mats := make([]*core.MatrixSketch, len(mids))
	for i, mid := range mids {
		agg := core.NewMatrixAggregator(midP, fams[i], fams[i+1])
		agg.CollectTable(mid.A, mid.B, rng)
		mats[i] = agg.Finalize()
	}
	return core.ChainEstimate(aggL.Finalize(), mats, aggR.Finalize())
}

// pairEncode packs a tuple into a single value over domain².
func pairEncode(a, b, domain uint64) uint64 { return a*domain + b }

// krrChain3 runs the k-RR baseline on the 3-way chain: end tables use
// plain k-RR; the middle table perturbs pair-encoded tuples over domain².
func krrChain3(ct chainTask, eps float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	d := ct.domain
	k1 := ldp.NewKRR(d, eps)
	k1.Collect(ct.t1, rng)
	k3 := ldp.NewKRR(d, eps)
	k3.Collect(ct.tEnd, rng)
	k2 := ldp.NewKRR(d*d, eps)
	mid := ct.mids[0]
	for i := range mid.A {
		k2.Add(k2.Perturb(pairEncode(mid.A[i], mid.B[i], d), rng))
	}
	var est float64
	for a := uint64(0); a < d; a++ {
		fa := k1.Frequency(a)
		if fa == 0 {
			continue
		}
		for b := uint64(0); b < d; b++ {
			est += fa * k2.Frequency(pairEncode(a, b, d)) * k3.Frequency(b)
		}
	}
	return est
}

// hcmsChain3 runs the Apple-HCMS baseline on the 3-way chain with
// pair-encoded middle tuples.
func hcmsChain3(ct chainTask, eps float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	d := ct.domain
	const k, m = 9, 1024
	h1 := ldp.NewHCMS(hashing.NewFamily(seed, k, m), eps)
	h1.Collect(ct.t1, rng)
	h1.Finalize()
	h3 := ldp.NewHCMS(hashing.NewFamily(seed+1, k, m), eps)
	h3.Collect(ct.tEnd, rng)
	h3.Finalize()
	h2 := ldp.NewHCMS(hashing.NewFamily(seed+2, k, m), eps)
	mid := ct.mids[0]
	for i := range mid.A {
		h2.Add(h2.Perturb(pairEncode(mid.A[i], mid.B[i], d), rng))
	}
	h2.Finalize()

	f1 := make([]float64, d)
	f3 := make([]float64, d)
	for v := uint64(0); v < d; v++ {
		f1[v] = h1.Frequency(v)
		f3[v] = h3.Frequency(v)
	}
	var est float64
	for a := uint64(0); a < d; a++ {
		if f1[a] == 0 {
			continue
		}
		for b := uint64(0); b < d; b++ {
			est += f1[a] * h2.Frequency(pairEncode(a, b, d)) * f3[b]
		}
	}
	return est
}

// flhChain3 runs the FLH baseline on the 3-way chain with pair-encoded
// middle tuples. The pool is reduced to keep the domain² scan tractable.
func flhChain3(ct chainTask, eps float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	d := ct.domain
	const pool = 64
	f1 := ldp.NewFLH(seed, pool, eps)
	f1.Collect(ct.t1, rng)
	f3 := ldp.NewFLH(seed+1, pool, eps)
	f3.Collect(ct.tEnd, rng)
	f2 := ldp.NewFLH(seed+2, pool, eps)
	mid := ct.mids[0]
	for i := range mid.A {
		f2.Add(f2.Perturb(pairEncode(mid.A[i], mid.B[i], d), rng))
	}
	v1 := make([]float64, d)
	v3 := make([]float64, d)
	for v := uint64(0); v < d; v++ {
		v1[v] = f1.Frequency(v)
		v3[v] = f3.Frequency(v)
	}
	var est float64
	for a := uint64(0); a < d; a++ {
		if v1[a] == 0 {
			continue
		}
		for b := uint64(0); b < d; b++ {
			est += v1[a] * f2.Frequency(pairEncode(a, b, d)) * v3[b]
		}
	}
	return est
}

// Fig15 reproduces Fig 15: RE of multiway chain joins against ε on
// Zipf(1.5). 3-way compares COMPASS, the frequency-based baselines and
// multiway LDPJoinSketch; 4-way compares COMPASS and LDPJoinSketch, as in
// the paper.
func Fig15(sc Scale) []*Table {
	ct := newChainTask(sc)
	cols := []chainColumn{
		{"Compass(3way)", func(_ float64, seed int64) float64 { return compassChain(ct, ct.mids, ct.tEnd, seed) }},
		{"k-RR(3way)", func(eps float64, seed int64) float64 { return krrChain3(ct, eps, seed) }},
		{"Apple-HCMS(3way)", func(eps float64, seed int64) float64 { return hcmsChain3(ct, eps, seed) }},
		{"FLH(3way)", func(eps float64, seed int64) float64 { return flhChain3(ct, eps, seed) }},
		{"LDPJoinSketch(3way)", func(eps float64, seed int64) float64 { return ldpChain(ct, ct.mids, ct.tEnd, eps, seed) }},
		{"Compass(4way)", func(_ float64, seed int64) float64 { return compassChain(ct, ct.mids4, ct.tEnd4, seed) }},
		{"LDPJoinSketch(4way)", func(eps float64, seed int64) float64 { return ldpChain(ct, ct.mids4, ct.tEnd4, eps, seed) }},
	}
	truths := map[string]float64{
		"Compass(3way)": ct.truth3, "k-RR(3way)": ct.truth3, "Apple-HCMS(3way)": ct.truth3,
		"FLH(3way)": ct.truth3, "LDPJoinSketch(3way)": ct.truth3,
		"Compass(4way)": ct.truth4, "LDPJoinSketch(4way)": ct.truth4,
	}

	res := make([][]float64, len(epsSweep))
	parallelFor(len(epsSweep), func(i int) {
		res[i] = make([]float64, len(cols))
		for j, c := range cols {
			var acc metrics.Accumulator
			for r := 0; r < sc.Rounds; r++ {
				est := c.run(epsSweep[i], 9000+int64(i)*101+int64(r)*7+int64(j)*131)
				acc.Add(truths[c.name], est)
			}
			res[i][j] = acc.RE()
		}
	})

	t := &Table{
		ID:      "fig15",
		Title:   fmt.Sprintf("Multiway chain joins on Zipf(1.5) (RE; domain=%d, m=%d)", ct.domain, multiwaySketchWidth),
		Columns: append([]string{"epsilon"}, colNames(cols)...),
		Notes: []string{sc.note(),
			"middle-table baselines perturb pair-encoded tuples over domain²; the chain domain is capped so that scan stays tractable"},
	}
	for i, eps := range epsSweep {
		row := []string{fmtG(eps)}
		for j := range cols {
			row = append(row, fmtG(res[i][j]))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// chainColumn is one data series of Fig 15.
type chainColumn struct {
	name string
	run  func(eps float64, seed int64) float64
}

func colNames(cols []chainColumn) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.name
	}
	return out
}
