package ldp

import (
	"math"
	"math/rand"
	"testing"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

// TestFLHSatisfiesLDP enumerates the exact output distribution of the FLH
// client: P[(i,v)|d] = (1/k′)·(p if v == H_i(d), else (1−p)/(g−1)). The
// worst-case ratio is p(g−1)/(1−p) = e^ε by construction of p.
func TestFLHSatisfiesLDP(t *testing.T) {
	const eps = 1.5
	f := NewFLH(1, 8, eps)
	g := float64(f.g)
	prob := func(d uint64, i int, v uint32) float64 {
		if v == f.hash(i, d) {
			return f.p / float64(len(f.seeds))
		}
		return (1 - f.p) / (g - 1) / float64(len(f.seeds))
	}
	bound := math.Exp(eps) + 1e-12
	for d1 := uint64(0); d1 < 16; d1++ {
		for d2 := uint64(0); d2 < 16; d2++ {
			for i := 0; i < len(f.seeds); i++ {
				for v := uint32(0); uint64(v) < f.g; v++ {
					r := prob(d1, i, v) / prob(d2, i, v)
					if r > bound || r < 1/bound {
						t.Fatalf("LDP violated: ratio %g at d1=%d d2=%d out=(%d,%d)", r, d1, d2, i, v)
					}
				}
			}
		}
	}
}

func TestFLHGMatchesOLH(t *testing.T) {
	// g = round(e^ε)+1.
	for _, c := range []struct {
		eps  float64
		want uint64
	}{{1, 4}, {2, 8}, {0.1, 2}} {
		if got := NewFLH(1, 4, c.eps).G(); got != c.want {
			t.Errorf("G(eps=%g) = %d, want %d", c.eps, got, c.want)
		}
	}
}

func TestFLHReportShape(t *testing.T) {
	f := NewFLH(2, 32, 2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		r := f.Perturb(uint64(i%100), rng)
		if int(r.Hash) >= 32 {
			t.Fatalf("hash index %d out of pool", r.Hash)
		}
		if uint64(r.Value) >= f.g {
			t.Fatalf("value %d out of range g=%d", r.Value, f.g)
		}
	}
}

func TestFLHFrequencyAccuracy(t *testing.T) {
	const n = 200000
	const domain = 50
	f := NewFLH(3, 128, 3)
	rng := rand.New(rand.NewSource(4))
	data := dataset.Zipf(5, n, domain, 1.5)
	f.Collect(data, rng)
	truth := join.Frequencies(data)
	// OLH noise std ≈ 2·sqrt(n)·e^{ε/2}/(e^ε−1) plus hash-pool error; be
	// generous: 8% of n.
	slack := 0.08 * n
	for d := uint64(0); d < domain; d++ {
		if err := math.Abs(f.Frequency(d) - float64(truth[d])); err > slack {
			t.Fatalf("value %d: error %.0f exceeds %.0f", d, err, slack)
		}
	}
}

func TestFLHJoinSizeHighBudget(t *testing.T) {
	const n = 150000
	const domain = 100
	fa := NewFLH(7, 256, 6)
	fb := NewFLH(7, 256, 6)
	rng := rand.New(rand.NewSource(8))
	da := dataset.Zipf(9, n, domain, 1.5)
	db := dataset.Zipf(10, n, domain, 1.5)
	fa.Collect(da, rng)
	fb.Collect(db, rng)
	truth := join.Size(da, db)
	est := fa.JoinSize(fb, domain)
	if re := math.Abs(est-truth) / truth; re > 0.3 {
		t.Fatalf("high-budget FLH join RE = %.3f (est %.0f truth %.0f)", re, est, truth)
	}
}

func TestFLHPanicsOnBadPool(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty hash pool")
		}
	}()
	NewFLH(1, 0, 1)
}

func TestFLHReportBits(t *testing.T) {
	f := NewFLH(1, 1024, 1) // g = 4
	if got := f.ReportBits(); got != 2 {
		t.Fatalf("ReportBits = %d, want 2", got)
	}
}

func TestFLHDeterministicPool(t *testing.T) {
	a := NewFLH(42, 16, 2)
	b := NewFLH(42, 16, 2)
	for i := 0; i < 16; i++ {
		for d := uint64(0); d < 100; d++ {
			if a.hash(i, d) != b.hash(i, d) {
				t.Fatal("same seed produced different hash pools")
			}
		}
	}
}
