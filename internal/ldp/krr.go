package ldp

import (
	"math"
	"math/rand"
)

// KRR is k-ary randomized response (generalized randomized response) over
// the domain [0, Domain): the client keeps its true value with probability
// e^ε/(e^ε+|D|−1) and otherwise reports a uniformly random other value.
// The server keeps a full frequency vector — which is exactly the
// large-domain cost the paper's sketches avoid.
type KRR struct {
	domain uint64
	eps    float64
	p      float64 // probability of keeping the true value
	q      float64 // probability of any specific other value
	counts []float64
	n      float64
}

// NewKRR creates a k-RR aggregator for the given domain and budget.
func NewKRR(domain uint64, eps float64) *KRR {
	ValidateEpsilon(eps)
	if domain < 2 {
		panic("ldp: k-RR needs a domain of at least 2")
	}
	e := math.Exp(eps)
	den := e + float64(domain) - 1
	return &KRR{
		domain: domain,
		eps:    eps,
		p:      e / den,
		q:      1 / den,
		counts: make([]float64, domain),
	}
}

// Domain returns the domain size.
func (k *KRR) Domain() uint64 { return k.domain }

// Perturb runs the client side: it returns the randomized report for true
// value d (which must lie in the domain).
func (k *KRR) Perturb(d uint64, rng *rand.Rand) uint64 {
	if d >= k.domain {
		panic("ldp: k-RR value outside domain")
	}
	if rng.Float64() < k.p {
		return d
	}
	// Uniform over the other domain−1 values.
	v := uint64(rng.Int63n(int64(k.domain - 1)))
	if v >= d {
		v++
	}
	return v
}

// Add ingests one perturbed report on the server side.
func (k *KRR) Add(report uint64) {
	k.counts[report]++
	k.n++
}

// Collect perturbs and ingests a whole column of true values, the
// simulation shortcut used by experiments.
func (k *KRR) Collect(data []uint64, rng *rand.Rand) {
	for _, d := range data {
		k.Add(k.Perturb(d, rng))
	}
}

// N returns the number of reports collected.
func (k *KRR) N() float64 { return k.n }

// Frequency returns the calibrated (unbiased) frequency estimate of d.
func (k *KRR) Frequency(d uint64) float64 {
	return (k.counts[d] - k.n*k.q) / (k.p - k.q)
}

// JoinSize estimates |A ⋈ B| by accumulating the product of the two
// calibrated frequency vectors over the whole domain.
func (k *KRR) JoinSize(other *KRR) float64 {
	if k.domain != other.domain {
		panic("ldp: k-RR join across different domains")
	}
	var s float64
	for d := uint64(0); d < k.domain; d++ {
		s += k.Frequency(d) * other.Frequency(d)
	}
	return s
}

// ReportBits returns the communication cost of one report in bits:
// the full encoded value, ⌈log2 |D|⌉.
func (k *KRR) ReportBits() int {
	return bitsFor(k.domain)
}

// bitsFor returns ⌈log2 n⌉ for n ≥ 1 (at least 1 bit).
func bitsFor(n uint64) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
