package ldp

import (
	"math"
	"math/rand"

	"ldpjoin/internal/hashing"
)

// RAPPOR is a one-round (permanent-response only) variant of Google's
// RAPPOR (Erlingsson et al., CCS 2014), the bloom-filter approach §II
// cites for large domains: the client hashes its value into an m-bit
// bloom filter with h hash functions and randomizes every bit with the
// symmetric flip probability q = 1/(e^{ε/(2h)}+1), which yields ε-LDP
// because flipping one value changes at most 2h bits.
//
// Frequency decoding uses per-candidate bit debiasing with a CountMin
// style minimum over the candidate's h bits — a simplification of the
// original's lasso regression that keeps the estimator self-contained
// (documented substitution; it over-estimates under heavy bloom
// saturation exactly as CountMin does).
type RAPPOR struct {
	eps    float64
	m      int
	hashes []hashing.Pair
	q      float64 // per-bit flip probability
	counts []float64
	n      float64
}

// NewRAPPOR creates an aggregator with an m-bit filter and h hash
// functions derived from seed.
func NewRAPPOR(seed int64, m, h int, eps float64) *RAPPOR {
	ValidateEpsilon(eps)
	if m < 2 || h < 1 {
		panic("ldp: RAPPOR needs m ≥ 2 filter bits and h ≥ 1 hashes")
	}
	state := uint64(seed) ^ 0x0123456789abcdef
	hashes := make([]hashing.Pair, h)
	for i := range hashes {
		hashes[i] = hashing.NewPair(&state, m)
	}
	return &RAPPOR{
		eps:    eps,
		m:      m,
		hashes: hashes,
		q:      1 / (math.Exp(eps/(2*float64(h))) + 1),
		counts: make([]float64, m),
	}
}

// bloomBits returns the h filter positions of d (possibly with
// duplicates, as in a standard bloom filter).
func (r *RAPPOR) bloomBits(d uint64) []int {
	bits := make([]int, len(r.hashes))
	for i, h := range r.hashes {
		bits[i] = h.Bucket(d)
	}
	return bits
}

// Perturb runs the client side: it returns the randomized m-bit filter
// as the list of set bit positions.
func (r *RAPPOR) Perturb(d uint64, rng *rand.Rand) []int {
	set := make(map[int]bool, len(r.hashes))
	for _, b := range r.bloomBits(d) {
		set[b] = true
	}
	var out []int
	for b := 0; b < r.m; b++ {
		bit := set[b]
		if rng.Float64() < r.q {
			bit = !bit
		}
		if bit {
			out = append(out, b)
		}
	}
	return out
}

// Add ingests one perturbed filter.
func (r *RAPPOR) Add(setBits []int) {
	for _, b := range setBits {
		r.counts[b]++
	}
	r.n++
}

// Collect perturbs and ingests a whole column.
func (r *RAPPOR) Collect(data []uint64, rng *rand.Rand) {
	for _, d := range data {
		r.Add(r.Perturb(d, rng))
	}
}

// N returns the number of reports collected.
func (r *RAPPOR) N() float64 { return r.n }

// bitFrequency returns the debiased count of reports whose true filter
// had bit b set: (c(b) − n·q)/(1 − 2q).
func (r *RAPPOR) bitFrequency(b int) float64 {
	return (r.counts[b] - r.n*r.q) / (1 - 2*r.q)
}

// Frequency estimates f(d) as the minimum debiased count over d's filter
// bits (a CountMin-style upper-bound estimator).
func (r *RAPPOR) Frequency(d uint64) float64 {
	est := math.Inf(1)
	for _, b := range r.bloomBits(d) {
		if v := r.bitFrequency(b); v < est {
			est = v
		}
	}
	return est
}

// ReportBits returns the communication cost of one report: the full
// filter, m bits.
func (r *RAPPOR) ReportBits() int { return r.m }
