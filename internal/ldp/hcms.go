package ldp

import (
	"math/rand"

	"ldpjoin/internal/hadamard"
	"ldpjoin/internal/hashing"
)

// HCMSReport is the message an HCMS client sends: one perturbed Hadamard
// coefficient plus the sampled sketch coordinates. It is identical in
// shape to the paper's LDPJoinSketch report — the two mechanisms differ
// only in how the value is encoded before the transform.
type HCMSReport struct {
	Y   int8   // perturbed bit, ±1
	Row uint32 // sampled sketch row j ∈ [k]
	Col uint32 // sampled Hadamard coordinate l ∈ [m]
}

// HCMS is Apple's private Hadamard count mean sketch: the client encodes
// v[h_j(d)] = 1 (no sign hash), Hadamard-transforms, samples one
// coordinate, and flips it with probability 1/(e^ε+1). The server rebuilds
// a k×m sketch and answers frequency queries with the count-mean
// estimator. Join sizes are estimated by accumulating frequency products
// over the candidate domain.
type HCMS struct {
	fam  *hashing.Family
	eps  float64
	ceps float64
	rows [][]float64
	n    float64
	done bool
}

// NewHCMS creates an empty HCMS aggregator over the family. The family's M
// must be a power of two (Hadamard order).
func NewHCMS(fam *hashing.Family, eps float64) *HCMS {
	ValidateEpsilon(eps)
	if !hadamard.IsPowerOfTwo(fam.M()) {
		panic("ldp: HCMS sketch width must be a power of two")
	}
	rows := make([][]float64, fam.K())
	for j := range rows {
		rows[j] = make([]float64, fam.M())
	}
	return &HCMS{fam: fam, eps: eps, ceps: CEpsilon(eps), rows: rows}
}

// Perturb runs the HCMS client for true value d.
func (h *HCMS) Perturb(d uint64, rng *rand.Rand) HCMSReport {
	k, m := h.fam.K(), h.fam.M()
	j := rng.Intn(k)
	l := rng.Intn(m)
	w := int8(hadamard.Entry(h.fam.Bucket(j, d), l))
	return HCMSReport{
		Y:   SampleBit(rng, h.eps) * w,
		Row: uint32(j),
		Col: uint32(l),
	}
}

// Add ingests one report. Reports must be added before Finalize.
func (h *HCMS) Add(r HCMSReport) {
	if h.done {
		panic("ldp: HCMS.Add after Finalize")
	}
	h.rows[r.Row][r.Col] += float64(h.fam.K()) * h.ceps * float64(r.Y)
	h.n++
}

// Collect perturbs and ingests a whole column of true values.
func (h *HCMS) Collect(data []uint64, rng *rand.Rand) {
	for _, d := range data {
		h.Add(h.Perturb(d, rng))
	}
}

// Finalize transforms the sketch back out of the Hadamard domain. It must
// be called exactly once, after all reports have been added.
func (h *HCMS) Finalize() {
	if h.done {
		panic("ldp: HCMS.Finalize called twice")
	}
	for j := range h.rows {
		hadamard.Transform(h.rows[j])
	}
	h.done = true
}

// N returns the number of reports collected.
func (h *HCMS) N() float64 { return h.n }

// Frequency returns Apple's debiased count-mean estimate of f(d):
// (m/(m−1))·(mean_j M[j,h_j(d)] − n/m).
func (h *HCMS) Frequency(d uint64) float64 {
	if !h.done {
		panic("ldp: HCMS.Frequency before Finalize")
	}
	k, m := h.fam.K(), float64(h.fam.M())
	var sum float64
	for j := 0; j < k; j++ {
		sum += h.rows[j][h.fam.Bucket(j, d)]
	}
	mean := sum / float64(k)
	return (m / (m - 1)) * (mean - h.n/m)
}

// JoinSize estimates |A ⋈ B| by accumulating frequency products over
// [0, domain). Both sketches must be finalized and share the family.
func (h *HCMS) JoinSize(other *HCMS, domain uint64) float64 {
	if h.fam != other.fam {
		panic("ldp: HCMS join across different hash families")
	}
	var s float64
	for d := uint64(0); d < domain; d++ {
		s += h.Frequency(d) * other.Frequency(d)
	}
	return s
}

// ReportBits returns the private communication cost of one report in
// bits. As with LDPJoinSketch, the sampled indices are data-independent
// and derivable from public randomness, so each client ships exactly one
// perturbed bit (the paper's Fig 7 accounting).
func (h *HCMS) ReportBits() int { return 1 }

// SketchBytes returns the memory footprint of the server sketch in bytes
// (k·m float64 counters), used by the space-cost experiment (Fig 6).
func (h *HCMS) SketchBytes() int {
	return h.fam.K() * h.fam.M() * 8
}
