package ldp

import (
	"math"
	"math/rand"

	"ldpjoin/internal/hashing"
)

// FLHReport is the message an FLH client sends: the index of the public
// hash function it drew and the GRR-perturbed hashed value.
type FLHReport struct {
	Hash  uint32 // index into the public hash pool
	Value uint32 // perturbed value in [0, g)
}

// FLH is fast local hashing (Cormode, Maddock & Maple): the heuristic
// variant of optimal local hashing that restricts clients to a public pool
// of k′ hash functions mapping the domain to [0, g) with g = ⌈e^ε⌉+1, then
// applies GRR over the hashed range. Aggregation groups reports by hash
// function, so a frequency query costs O(k′) instead of O(n).
type FLH struct {
	eps     float64
	g       uint64
	p       float64 // GRR keep probability over [0, g)
	seeds   []uint64
	counts  [][]float64 // per hash function: histogram over [0, g)
	perHash []float64   // reports per hash function
	n       float64
}

// NewFLH creates an FLH aggregator with a pool of numHash public hash
// functions, derived deterministically from seed.
func NewFLH(seed int64, numHash int, eps float64) *FLH {
	ValidateEpsilon(eps)
	if numHash <= 0 {
		panic("ldp: FLH needs a positive hash pool size")
	}
	g := uint64(math.Round(math.Exp(eps))) + 1
	if g < 2 {
		g = 2
	}
	e := math.Exp(eps)
	state := uint64(seed) ^ 0xF1E2D3C4B5A69788
	seeds := make([]uint64, numHash)
	counts := make([][]float64, numHash)
	for i := range seeds {
		seeds[i] = hashing.SplitMix64(&state)
		counts[i] = make([]float64, g)
	}
	return &FLH{
		eps:     eps,
		g:       g,
		p:       e / (e + float64(g) - 1),
		seeds:   seeds,
		counts:  counts,
		perHash: make([]float64, numHash),
	}
}

// G returns the hashed range size g.
func (f *FLH) G() uint64 { return f.g }

// hash maps d into [0, g) with the i-th pool function.
func (f *FLH) hash(i int, d uint64) uint32 {
	s := f.seeds[i] ^ (d * 0x9e3779b97f4a7c15)
	return uint32(hashing.SplitMix64(&s) % f.g)
}

// Perturb runs the FLH client for true value d: draw a hash uniformly
// from the pool, hash, then GRR over [0, g).
func (f *FLH) Perturb(d uint64, rng *rand.Rand) FLHReport {
	i := rng.Intn(len(f.seeds))
	v := uint64(f.hash(i, d))
	if rng.Float64() >= f.p {
		// Uniform over the other g−1 values.
		o := uint64(rng.Int63n(int64(f.g - 1)))
		if o >= v {
			o++
		}
		v = o
	}
	return FLHReport{Hash: uint32(i), Value: uint32(v)}
}

// Add ingests one report.
func (f *FLH) Add(r FLHReport) {
	f.counts[r.Hash][r.Value]++
	f.perHash[r.Hash]++
	f.n++
}

// Collect perturbs and ingests a whole column of true values.
func (f *FLH) Collect(data []uint64, rng *rand.Rand) {
	for _, d := range data {
		f.Add(f.Perturb(d, rng))
	}
}

// N returns the number of reports collected.
func (f *FLH) N() float64 { return f.n }

// Frequency returns the calibrated OLH-style estimate of f(d):
// (support(d) − n/g) / (p − 1/g), where support(d) counts reports whose
// perturbed value matches the report's hash applied to d.
func (f *FLH) Frequency(d uint64) float64 {
	var support float64
	for i := range f.seeds {
		support += f.counts[i][f.hash(i, d)]
	}
	invG := 1 / float64(f.g)
	return (support - f.n*invG) / (f.p - invG)
}

// JoinSize estimates |A ⋈ B| by accumulating frequency products over
// [0, domain).
func (f *FLH) JoinSize(other *FLH, domain uint64) float64 {
	var s float64
	for d := uint64(0); d < domain; d++ {
		s += f.Frequency(d) * other.Frequency(d)
	}
	return s
}

// ReportBits returns the private communication cost of one report in
// bits: the perturbed value over [0, g), ⌈log2 g⌉. The hash-function
// choice is data-independent and derivable from public randomness, so it
// is not counted (matching the Fig 7 accounting of the sketch methods).
func (f *FLH) ReportBits() int {
	return bitsFor(f.g)
}
