package ldp

import (
	"math"
	"math/rand"
	"testing"
)

func TestCEpsilonKnownValues(t *testing.T) {
	// c_ε = (e^ε+1)/(e^ε−1).
	for _, c := range []struct{ eps, want float64 }{
		{math.Log(3), 2}, // (3+1)/(3-1)
		{math.Log(2), 3}, // (2+1)/(2-1)
		{1, (math.E + 1) / (math.E - 1)},
	} {
		if got := CEpsilon(c.eps); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CEpsilon(%g) = %g, want %g", c.eps, got, c.want)
		}
	}
}

func TestCEpsilonDecreasing(t *testing.T) {
	// Stronger privacy (smaller ε) requires a larger debias scale.
	prev := math.Inf(1)
	for _, eps := range []float64{0.1, 0.5, 1, 2, 4, 8} {
		c := CEpsilon(eps)
		if c >= prev || c <= 1 {
			t.Fatalf("CEpsilon not strictly decreasing toward 1: eps=%g c=%g prev=%g", eps, c, prev)
		}
		prev = c
	}
}

func TestKeepProbBounds(t *testing.T) {
	for _, eps := range []float64{0.1, 1, 4, 10} {
		p := KeepProb(eps)
		if p <= 0.5 || p >= 1 {
			t.Fatalf("KeepProb(%g) = %g outside (0.5, 1)", eps, p)
		}
	}
}

func TestSampleBitDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const eps = 1.0
	const n = 200000
	pos := 0
	for i := 0; i < n; i++ {
		b := SampleBit(rng, eps)
		if b != 1 && b != -1 {
			t.Fatalf("bit %d not in {-1,1}", b)
		}
		if b == 1 {
			pos++
		}
	}
	want := KeepProb(eps)
	got := float64(pos) / n
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("empirical keep rate %.4f, want %.4f", got, want)
	}
}

func TestSampleBitDebiasIdentity(t *testing.T) {
	// E[B] = 1/c_ε is the identity Algorithm 2's scale relies on.
	for _, eps := range []float64{0.5, 1, 2, 4} {
		eb := KeepProb(eps) - (1 - KeepProb(eps))
		if math.Abs(eb-1/CEpsilon(eps)) > 1e-12 {
			t.Fatalf("E[B] != 1/c_ε at eps=%g", eps)
		}
	}
}

func TestValidateEpsilonPanics(t *testing.T) {
	for _, eps := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for eps=%v", eps)
				}
			}()
			ValidateEpsilon(eps)
		}()
	}
	ValidateEpsilon(0.1) // must not panic
}
