package ldp

import (
	"math"
	"math/rand"
	"testing"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

// TestKRRSatisfiesLDP verifies the ε-LDP ratio bound exactly: the output
// distribution of k-RR is p for the true value and q elsewhere, so the
// worst-case ratio is p/q, which must equal e^ε.
func TestKRRSatisfiesLDP(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 4} {
		k := NewKRR(100, eps)
		if math.Abs(k.p/k.q-math.Exp(eps)) > 1e-9 {
			t.Fatalf("eps=%g: worst-case ratio %g != e^ε %g", eps, k.p/k.q, math.Exp(eps))
		}
	}
}

func TestKRRPerturbDistribution(t *testing.T) {
	const eps = 1.0
	const domain = 10
	const n = 300000
	k := NewKRR(domain, eps)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, domain)
	for i := 0; i < n; i++ {
		counts[k.Perturb(7, rng)]++
	}
	if got := float64(counts[7]) / n; math.Abs(got-k.p) > 0.005 {
		t.Fatalf("keep rate %.4f, want %.4f", got, k.p)
	}
	for d := 0; d < domain; d++ {
		if d == 7 {
			continue
		}
		if got := float64(counts[d]) / n; math.Abs(got-k.q) > 0.005 {
			t.Fatalf("off-value %d rate %.4f, want %.4f", d, got, k.q)
		}
	}
}

func TestKRRFrequencySumsToN(t *testing.T) {
	// Calibration identity: the estimated frequencies sum to exactly n.
	k := NewKRR(50, 2)
	rng := rand.New(rand.NewSource(4))
	data := dataset.Zipf(5, 20000, 50, 1.2)
	k.Collect(data, rng)
	var sum float64
	for d := uint64(0); d < 50; d++ {
		sum += k.Frequency(d)
	}
	if math.Abs(sum-20000) > 1e-6 {
		t.Fatalf("frequencies sum to %g, want 20000", sum)
	}
	if k.N() != 20000 {
		t.Fatalf("N = %g", k.N())
	}
}

func TestKRRFrequencyAccuracy(t *testing.T) {
	const domain = 50
	const n = 200000
	const eps = 3.0
	k := NewKRR(domain, eps)
	rng := rand.New(rand.NewSource(6))
	data := dataset.Zipf(7, n, domain, 1.5)
	k.Collect(data, rng)
	truth := join.Frequencies(data)
	// std of the calibrated estimate ≈ sqrt(n·var)/(p−q); 810 here. 5σ.
	slack := 5 * math.Sqrt(float64(n)*0.25) / (k.p - k.q)
	for d := uint64(0); d < domain; d++ {
		if err := math.Abs(k.Frequency(d) - float64(truth[d])); err > slack {
			t.Fatalf("value %d: error %.0f exceeds %.0f", d, err, slack)
		}
	}
}

func TestKRRJoinSizeHighBudget(t *testing.T) {
	const domain = 200
	const n = 100000
	k1 := NewKRR(domain, 8)
	k2 := NewKRR(domain, 8)
	rng := rand.New(rand.NewSource(8))
	da := dataset.Zipf(9, n, domain, 1.3)
	db := dataset.Zipf(10, n, domain, 1.3)
	k1.Collect(da, rng)
	k2.Collect(db, rng)
	truth := join.Size(da, db)
	est := k1.JoinSize(k2)
	if re := math.Abs(est-truth) / truth; re > 0.05 {
		t.Fatalf("high-budget k-RR join RE = %.3f", re)
	}
}

func TestKRRPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for tiny domain")
			}
		}()
		NewKRR(1, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-domain value")
			}
		}()
		NewKRR(4, 1).Perturb(4, rand.New(rand.NewSource(1)))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for mismatched join domains")
			}
		}()
		NewKRR(4, 1).JoinSize(NewKRR(8, 1))
	}()
}

func TestBitsFor(t *testing.T) {
	for _, c := range []struct {
		n    uint64
		want int
	}{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}} {
		if got := bitsFor(c.n); got != c.want {
			t.Errorf("bitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestKRRReportBits(t *testing.T) {
	if got := NewKRR(1024, 1).ReportBits(); got != 10 {
		t.Fatalf("ReportBits = %d, want 10", got)
	}
}
