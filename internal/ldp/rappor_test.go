package ldp

import (
	"math"
	"math/rand"
	"testing"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

// TestRAPPORSatisfiesLDP checks the ratio bound analytically: two inputs
// differ in at most 2h filter bits, each contributing a factor
// (1−q)/q = e^{ε/(2h)}, so the total ratio is at most e^ε.
func TestRAPPORSatisfiesLDP(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 4} {
		for _, h := range []int{1, 2, 4} {
			r := NewRAPPOR(1, 256, h, eps)
			perBit := (1 - r.q) / r.q
			worst := math.Pow(perBit, 2*float64(h))
			if worst > math.Exp(eps)*(1+1e-9) {
				t.Fatalf("eps=%g h=%d: worst-case ratio %g exceeds e^ε %g", eps, h, worst, math.Exp(eps))
			}
		}
	}
}

func TestRAPPORBitDebias(t *testing.T) {
	r := NewRAPPOR(2, 64, 2, 4)
	rng := rand.New(rand.NewSource(3))
	const n = 80000
	const value = 5
	for i := 0; i < n; i++ {
		r.Add(r.Perturb(value, rng))
	}
	// Every filter bit of the value should debias to ≈ n; all others to
	// ≈ 0 (within noise std sqrt(n·q(1-q))/(1-2q)).
	want := map[int]bool{}
	for _, b := range r.bloomBits(value) {
		want[b] = true
	}
	slack := 6 * math.Sqrt(float64(n)*r.q*(1-r.q)) / (1 - 2*r.q)
	for b := 0; b < 64; b++ {
		est := r.bitFrequency(b)
		target := 0.0
		if want[b] {
			target = n
		}
		if math.Abs(est-target) > slack {
			t.Fatalf("bit %d: debiased %.0f, want %.0f ± %.0f", b, est, target, slack)
		}
	}
	if r.N() != n {
		t.Fatalf("N = %g", r.N())
	}
}

func TestRAPPORFrequencyRanksHeavyItems(t *testing.T) {
	const domain = 200
	const n = 150000
	r := NewRAPPOR(5, 1024, 2, 4)
	rng := rand.New(rand.NewSource(6))
	data := dataset.Zipf(7, n, domain, 1.5)
	r.Collect(data, rng)
	truth := join.Frequencies(data)
	// The top value's estimate should dwarf the estimate of a rare one.
	var top uint64
	var max int64
	for d, c := range truth {
		if c > max {
			top, max = d, c
		}
	}
	fTop := r.Frequency(top)
	if math.Abs(fTop-float64(max)) > 0.3*float64(max) {
		t.Fatalf("top value estimate %.0f vs truth %d", fTop, max)
	}
	if fRare := r.Frequency(domain - 1); fRare > fTop/2 {
		t.Fatalf("rare value estimate %.0f not well below top %.0f", fRare, fTop)
	}
}

func TestRAPPORPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad filter params")
		}
	}()
	NewRAPPOR(1, 1, 0, 1)
}

func TestRAPPORReportBits(t *testing.T) {
	if got := NewRAPPOR(1, 512, 2, 1).ReportBits(); got != 512 {
		t.Fatalf("ReportBits = %d", got)
	}
}
