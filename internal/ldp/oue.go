package ldp

import (
	"math"
	"math/rand"
)

// OUE is Optimized Unary Encoding (Wang et al., USENIX Security 2017):
// the client one-hot encodes its value over the domain and perturbs each
// bit independently, keeping a set bit with probability 1/2 and flipping
// an unset bit on with probability 1/(e^ε+1). Communication is Θ(|D|)
// bits per user — the large-domain cost the paper's sketches avoid — but
// its variance is the best of the unary family, which makes it a useful
// extra baseline and a reference point for the frequency tests.
type OUE struct {
	domain uint64
	eps    float64
	p      float64 // probability a set bit stays set (1/2)
	q      float64 // probability an unset bit turns on
	counts []float64
	n      float64
}

// NewOUE creates an OUE aggregator over [0, domain).
func NewOUE(domain uint64, eps float64) *OUE {
	ValidateEpsilon(eps)
	if domain < 2 {
		panic("ldp: OUE needs a domain of at least 2")
	}
	return &OUE{
		domain: domain,
		eps:    eps,
		p:      0.5,
		q:      1 / (math.Exp(eps) + 1),
		counts: make([]float64, domain),
	}
}

// Domain returns the domain size.
func (o *OUE) Domain() uint64 { return o.domain }

// Perturb runs the client side: the returned slice lists the indices of
// the bits set in the perturbed unary encoding of d.
func (o *OUE) Perturb(d uint64, rng *rand.Rand) []uint64 {
	if d >= o.domain {
		panic("ldp: OUE value outside domain")
	}
	// Sampling every unset bit individually would be Θ(|D|) per client;
	// the number of flipped-on bits is Binomial(|D|-1, q), so we sample
	// the count and then the positions — identical distribution,
	// Θ(output) time.
	var out []uint64
	if rng.Float64() < o.p {
		out = append(out, d)
	}
	flips := binomial(rng, o.domain-1, o.q)
	for i := 0; i < flips; i++ {
		v := uint64(rng.Int63n(int64(o.domain - 1)))
		if v >= d {
			v++
		}
		out = append(out, v)
	}
	return out
}

// binomial samples Binomial(n, p). For the small p·n regimes used here a
// normal/Poisson hybrid keeps it O(1): Poisson approximation when
// n·p < 30, otherwise a rounded normal (clamped to [0, n]).
func binomial(rng *rand.Rand, n uint64, p float64) int {
	mean := float64(n) * p
	if mean < 30 {
		// Poisson via Knuth's product method (mean is small).
		l := math.Exp(-mean)
		k := 0
		prod := rng.Float64()
		for prod > l {
			k++
			prod *= rng.Float64()
		}
		if uint64(k) > n {
			k = int(n)
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	v := math.Round(rng.NormFloat64()*sd + mean)
	if v < 0 {
		v = 0
	}
	if v > float64(n) {
		v = float64(n)
	}
	return int(v)
}

// Add ingests one perturbed report (the set-bit indices).
func (o *OUE) Add(bits []uint64) {
	for _, b := range bits {
		o.counts[b]++
	}
	o.n++
}

// Collect perturbs and ingests a whole column.
func (o *OUE) Collect(data []uint64, rng *rand.Rand) {
	for _, d := range data {
		o.Add(o.Perturb(d, rng))
	}
}

// N returns the number of reports collected.
func (o *OUE) N() float64 { return o.n }

// Frequency returns the calibrated estimate (c(d) − n·q)/(p − q).
func (o *OUE) Frequency(d uint64) float64 {
	return (o.counts[d] - o.n*o.q) / (o.p - o.q)
}

// JoinSize estimates |A ⋈ B| by accumulating frequency products.
func (o *OUE) JoinSize(other *OUE, domain uint64) float64 {
	var s float64
	for d := uint64(0); d < domain; d++ {
		s += o.Frequency(d) * other.Frequency(d)
	}
	return s
}

// ReportBits returns the communication cost of one report: the full
// unary vector, |D| bits.
func (o *OUE) ReportBits() int { return int(o.domain) }
