package ldp

import (
	"math"
	"math/rand"
	"testing"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

// TestOUESatisfiesLDP checks the per-report ratio bound analytically: an
// OUE output vector's probability factorizes per bit, and changing the
// input moves exactly two bits — the old one (p vs q) and the new one
// (q vs p) — so the worst-case ratio is [p(1−q)]/[q(1−p)] = e^ε.
func TestOUESatisfiesLDP(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 4} {
		o := NewOUE(100, eps)
		ratio := (o.p * (1 - o.q)) / (o.q * (1 - o.p))
		if math.Abs(ratio-math.Exp(eps)) > 1e-9 {
			t.Fatalf("eps=%g: worst-case ratio %g != e^ε %g", eps, ratio, math.Exp(eps))
		}
	}
}

func TestOUEBitDistribution(t *testing.T) {
	const eps = 1.0
	const domain = 40
	o := NewOUE(domain, eps)
	rng := rand.New(rand.NewSource(1))
	const n = 60000
	counts := make([]float64, domain)
	for i := 0; i < n; i++ {
		for _, b := range o.Perturb(7, rng) {
			counts[b]++
		}
	}
	// Bit 7 should fire at rate p=0.5; every other at q.
	if got := counts[7] / n; math.Abs(got-0.5) > 0.01 {
		t.Fatalf("true bit rate %.4f, want 0.5", got)
	}
	for d := 0; d < domain; d++ {
		if d == 7 {
			continue
		}
		if got := counts[d] / n; math.Abs(got-o.q) > 0.012 {
			t.Fatalf("bit %d rate %.4f, want %.4f", d, got, o.q)
		}
	}
}

func TestOUEFrequencyAccuracy(t *testing.T) {
	const domain = 60
	const n = 150000
	o := NewOUE(domain, 2)
	rng := rand.New(rand.NewSource(3))
	data := dataset.Zipf(4, n, domain, 1.4)
	o.Collect(data, rng)
	truth := join.Frequencies(data)
	// OUE variance per value ≈ n·4e^ε/(e^ε−1)²; 5σ slack.
	e := math.Exp(2.0)
	slack := 5 * math.Sqrt(float64(n)*4*e/((e-1)*(e-1)))
	for d := uint64(0); d < domain; d++ {
		if err := math.Abs(o.Frequency(d) - float64(truth[d])); err > slack {
			t.Fatalf("value %d: error %.0f exceeds %.0f", d, err, slack)
		}
	}
	if o.N() != n {
		t.Fatalf("N = %g", o.N())
	}
}

func TestOUEJoinSizeHighBudget(t *testing.T) {
	const domain = 100
	const n = 100000
	oa := NewOUE(domain, 6)
	ob := NewOUE(domain, 6)
	rng := rand.New(rand.NewSource(5))
	da := dataset.Zipf(6, n, domain, 1.4)
	db := dataset.Zipf(7, n, domain, 1.4)
	oa.Collect(da, rng)
	ob.Collect(db, rng)
	truth := join.Size(da, db)
	est := oa.JoinSize(ob, domain)
	if re := math.Abs(est-truth) / truth; re > 0.1 {
		t.Fatalf("high-budget OUE join RE = %.3f", re)
	}
}

func TestOUEPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for tiny domain")
			}
		}()
		NewOUE(1, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-domain value")
			}
		}()
		NewOUE(4, 1).Perturb(9, rand.New(rand.NewSource(1)))
	}()
}

func TestOUEReportBits(t *testing.T) {
	if got := NewOUE(1024, 1).ReportBits(); got != 1024 {
		t.Fatalf("ReportBits = %d", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, c := range []struct {
		n uint64
		p float64
	}{{1000, 0.001}, {1000, 0.01}, {100000, 0.002}} {
		const trials = 20000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(binomial(rng, c.n, c.p))
		}
		mean := sum / trials
		want := float64(c.n) * c.p
		sd := math.Sqrt(want * (1 - c.p) / trials)
		if math.Abs(mean-want) > 6*sd+0.05 {
			t.Fatalf("binomial(%d,%g): mean %.3f, want %.3f", c.n, c.p, mean, want)
		}
	}
}
