// Package ldp implements the local-differential-privacy mechanisms the
// paper compares against — k-ary randomized response (k-RR), Apple's
// Hadamard count mean sketch (HCMS) and fast local hashing (FLH) — plus
// the shared randomized-response primitives the paper's own mechanisms
// (internal/core) are built from.
//
// Each mechanism follows the paper's LDP workflow: a pure client-side
// Perturb function (safe to run on untrusted data holders) and a
// server-side aggregator that collects perturbed reports and answers
// frequency and join-size queries. Frequency estimates are calibrated to
// be unbiased; join sizes for these baselines are computed by accumulating
// f̃_A(d)·f̃_B(d) over the candidate domain, exactly the strategy §II
// attributes to them.
package ldp

import (
	"math"
	"math/rand"
)

// CEpsilon returns c_ε = (e^ε+1)/(e^ε−1), the debiasing scale of the
// paper's randomized-response bit (Algorithm 2, line 2).
func CEpsilon(eps float64) float64 {
	e := math.Exp(eps)
	return (e + 1) / (e - 1)
}

// KeepProb returns e^ε/(e^ε+1): the probability that the random bit b of
// Algorithm 1 keeps the encoded sign.
func KeepProb(eps float64) float64 {
	e := math.Exp(eps)
	return e / (e + 1)
}

// SampleBit draws the b ∈ {−1,+1} of Algorithm 1: −1 with probability
// 1/(e^ε+1).
func SampleBit(rng *rand.Rand, eps float64) int8 {
	if rng.Float64() < KeepProb(eps) {
		return 1
	}
	return -1
}

// ValidateEpsilon panics when eps is not a usable privacy budget. The
// mechanisms call it in their constructors so misuse fails fast.
func ValidateEpsilon(eps float64) {
	if math.IsNaN(eps) || eps <= 0 {
		panic("ldp: privacy budget epsilon must be positive")
	}
}
