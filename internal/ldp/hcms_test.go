package ldp

import (
	"math"
	"math/rand"
	"testing"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/hadamard"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
)

// TestHCMSSatisfiesLDP enumerates the exact output distribution of the
// HCMS client on a small sketch and checks the ε-LDP ratio for every pair
// of inputs and every output.
func TestHCMSSatisfiesLDP(t *testing.T) {
	const eps = 1.2
	const k, m = 2, 4
	const domain = 8
	fam := hashing.NewFamily(5, k, m)
	h := NewHCMS(fam, eps)
	keep := KeepProb(eps)

	// P[(y,j,l) | d] = (1/(k·m)) · (keep if y == H[h_j(d), l] else 1−keep).
	prob := func(d uint64, y int8, j, l int) float64 {
		w := int8(hadamard.Entry(fam.Bucket(j, d), l))
		if y == w {
			return keep / (k * m)
		}
		return (1 - keep) / (k * m)
	}
	bound := math.Exp(eps) + 1e-12
	for d1 := uint64(0); d1 < domain; d1++ {
		for d2 := uint64(0); d2 < domain; d2++ {
			for j := 0; j < k; j++ {
				for l := 0; l < m; l++ {
					for _, y := range []int8{-1, 1} {
						r := prob(d1, y, j, l) / prob(d2, y, j, l)
						if r > bound || r < 1/bound {
							t.Fatalf("LDP violated: d1=%d d2=%d out=(%d,%d,%d) ratio %g", d1, d2, y, j, l, r)
						}
					}
				}
			}
		}
	}
	_ = h
}

func TestHCMSClientOutputShape(t *testing.T) {
	fam := hashing.NewFamily(1, 4, 16)
	h := NewHCMS(fam, 2)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		r := h.Perturb(uint64(i%50), rng)
		if r.Y != 1 && r.Y != -1 {
			t.Fatalf("Y = %d not a sign", r.Y)
		}
		if int(r.Row) >= 4 || int(r.Col) >= 16 {
			t.Fatalf("indices out of range: %+v", r)
		}
	}
}

func TestHCMSFrequencyAccuracy(t *testing.T) {
	const n = 200000
	const domain = 100
	fam := hashing.NewFamily(3, 16, 256)
	h := NewHCMS(fam, 4)
	rng := rand.New(rand.NewSource(4))
	data := dataset.Zipf(5, n, domain, 1.5)
	h.Collect(data, rng)
	h.Finalize()
	truth := join.Frequencies(data)
	// Error sources: RR noise ≈ c_ε·sqrt(n); collision noise with std
	// sqrt(F2/(m·k)); plus a few whole heavy-item collisions averaged over
	// the k rows. This is HCMS's inherent hash-collision error (§I).
	var fmax float64
	for _, c := range truth {
		if f := float64(c); f > fmax {
			fmax = f
		}
	}
	f2 := join.F2(data)
	slack := 5*CEpsilon(4)*math.Sqrt(n) + 5*math.Sqrt(f2/(256*16)) + 3*fmax/16
	for d := uint64(0); d < domain; d++ {
		if err := math.Abs(h.Frequency(d) - float64(truth[d])); err > slack {
			t.Fatalf("value %d: error %.0f exceeds %.0f (est %.0f truth %d)",
				d, err, slack, h.Frequency(d), truth[d])
		}
	}
}

func TestHCMSFrequencyUnbiasedOverTrials(t *testing.T) {
	// Average the estimate of one value's frequency across independent
	// runs; it should converge near the truth.
	const n = 2000
	const trials = 60
	data := dataset.Zipf(7, n, 50, 1.5)
	truth := join.Frequencies(data)
	var sum float64
	for i := 0; i < trials; i++ {
		fam := hashing.NewFamily(int64(100+i), 8, 64)
		h := NewHCMS(fam, 2)
		rng := rand.New(rand.NewSource(int64(i)))
		h.Collect(data, rng)
		h.Finalize()
		sum += h.Frequency(0)
	}
	mean := sum / trials
	want := float64(truth[0])
	// std of one run ≈ c_ε·sqrt(n·m/k)/... keep generous: 15% of truth.
	if math.Abs(mean-want)/want > 0.15 {
		t.Fatalf("mean estimate %.0f vs truth %.0f", mean, want)
	}
}

func TestHCMSJoinSizeHighBudget(t *testing.T) {
	const n = 100000
	const domain = 200
	fam := hashing.NewFamily(9, 16, 1024)
	ha := NewHCMS(fam, 8)
	hb := NewHCMS(fam, 8)
	rng := rand.New(rand.NewSource(10))
	da := dataset.Zipf(11, n, domain, 1.5)
	db := dataset.Zipf(12, n, domain, 1.5)
	ha.Collect(da, rng)
	hb.Collect(db, rng)
	ha.Finalize()
	hb.Finalize()
	truth := join.Size(da, db)
	est := ha.JoinSize(hb, domain)
	if re := math.Abs(est-truth) / truth; re > 0.25 {
		t.Fatalf("high-budget HCMS join RE = %.3f (est %.0f truth %.0f)", re, est, truth)
	}
}

func TestHCMSLifecyclePanics(t *testing.T) {
	fam := hashing.NewFamily(1, 2, 16)
	func() {
		h := NewHCMS(fam, 1)
		defer func() {
			if recover() == nil {
				t.Error("expected panic: Frequency before Finalize")
			}
		}()
		h.Frequency(0)
	}()
	func() {
		h := NewHCMS(fam, 1)
		h.Finalize()
		defer func() {
			if recover() == nil {
				t.Error("expected panic: Add after Finalize")
			}
		}()
		h.Add(HCMSReport{})
	}()
	func() {
		h := NewHCMS(fam, 1)
		h.Finalize()
		defer func() {
			if recover() == nil {
				t.Error("expected panic: double Finalize")
			}
		}()
		h.Finalize()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic: non power-of-two m")
			}
		}()
		NewHCMS(hashing.NewFamily(1, 2, 15), 1)
	}()
	func() {
		ha := NewHCMS(fam, 1)
		hb := NewHCMS(hashing.NewFamily(2, 2, 16), 1)
		ha.Finalize()
		hb.Finalize()
		defer func() {
			if recover() == nil {
				t.Error("expected panic: join across families")
			}
		}()
		ha.JoinSize(hb, 8)
	}()
}

func TestHCMSCosts(t *testing.T) {
	fam := hashing.NewFamily(1, 18, 1024)
	h := NewHCMS(fam, 4)
	if got := h.ReportBits(); got != 1 {
		t.Fatalf("ReportBits = %d, want 1 (public-coin indices)", got)
	}
	if got := h.SketchBytes(); got != 18*1024*8 {
		t.Fatalf("SketchBytes = %d", got)
	}
}
