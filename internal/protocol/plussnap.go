// Plus snapshot codec: the cross-node serialization of a two-phase
// LDPJoinSketch+ column. A plus column is three pieces of ordinary
// join-sketch state — the phase-1 sample and the two phase-2 FAP group
// sketches — plus the phase boundary itself: whether the column has
// advanced, and if so under which (domain, θ, FI). The composite
// format embeds the three SNAP encodings verbatim so every guarantee
// of the base codec (canonical bytes, integer-cell validation,
// fingerprint checks) carries over unchanged:
//
//	header (all integers big-endian):
//	  magic "PSNP" | version u8 | flags u8 | reserved u16 (0)
//	  domain u64 | theta f64 | fiCount u32 | fi u64 × fiCount
//	blobs (each length-prefixed, SNAP-encoded):
//	  sampleLen u32 | sample SNAP
//	  lowLen u32 | low SNAP | highLen u32 | high SNAP   (advanced only)
//	trailer:
//	  crc32 (IEEE) u32 over header + blobs
//
// flags bit 0 marks a finalized column, bit 1 an advanced one; a
// finalized column is necessarily advanced. Before the advance the
// column is only its sample window: domain, theta and fi must be zero
// and the low/high blobs absent. FI is stored sorted strictly
// ascending — the canonical form — so byte-identical recovery and
// federation can compare encodings directly.
package protocol

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"ldpjoin/internal/core"
)

// PlusSnapshotVersion is the plus-snapshot format version this package
// encodes.
const PlusSnapshotVersion = 1

var plusSnapMagic = [4]byte{'P', 'S', 'N', 'P'}

const (
	plusFlagFinalized = 1 << 0
	plusFlagAdvanced  = 1 << 1
)

// plusSnapHeaderSize is the fixed part of the header, before the FI
// list.
const plusSnapHeaderSize = 4 + 1 + 1 + 2 + 8 + 8 + 4

// PlusSnapshot is the decoded (or to-be-encoded) form of one plus
// column's exported state. Like Snapshot, the embedded snapshots share
// the live rows of whatever produced them; the exporter must be
// quiescent while encoding.
type PlusSnapshot struct {
	Finalized bool
	Advanced  bool
	// Domain and Theta are the advance parameters (zero until Advanced).
	Domain uint64
	Theta  float64
	// FI is the frozen frequent-item set, sorted strictly ascending
	// (empty until Advanced).
	FI []uint64
	// Sample is the phase-1 sample sketch state.
	Sample *Snapshot
	// Low and High are the phase-2 group sketch states (nil until
	// Advanced).
	Low  *Snapshot
	High *Snapshot
}

// N returns the column's total report count across all phases.
func (s *PlusSnapshot) N() float64 {
	n := s.Sample.N
	if s.Low != nil {
		n += s.Low.N
	}
	if s.High != nil {
		n += s.High.N
	}
	return n
}

// Validate checks the composite invariants: phase flags consistent
// with the blobs present, FI canonical and within the domain, and
// every embedded snapshot a structurally valid join snapshot agreeing
// with the composite on finalization and parameters.
func (s *PlusSnapshot) Validate() error {
	if s.Finalized && !s.Advanced {
		return fmt.Errorf("%w: finalized plus snapshot that never advanced", ErrBadSnapshot)
	}
	if !s.Advanced {
		if s.Domain != 0 || s.Theta != 0 || len(s.FI) != 0 {
			return fmt.Errorf("%w: pre-advance plus snapshot carries advance parameters", ErrBadSnapshot)
		}
		if s.Low != nil || s.High != nil {
			return fmt.Errorf("%w: pre-advance plus snapshot carries group sketches", ErrBadSnapshot)
		}
	} else {
		if s.Domain == 0 {
			return fmt.Errorf("%w: advanced plus snapshot with zero domain", ErrBadSnapshot)
		}
		if !(s.Theta > 0 && s.Theta < 1) {
			return fmt.Errorf("%w: advance theta %v outside (0,1)", ErrBadSnapshot, s.Theta)
		}
		if len(s.FI) > MaxPlusFI {
			return fmt.Errorf("%w: FI count %d exceeds %d", ErrBadSnapshot, len(s.FI), MaxPlusFI)
		}
		for i, d := range s.FI {
			if d >= s.Domain {
				return fmt.Errorf("%w: frequent item %d outside domain %d", ErrBadSnapshot, d, s.Domain)
			}
			if i > 0 && d <= s.FI[i-1] {
				return fmt.Errorf("%w: frequent items not strictly ascending at index %d", ErrBadSnapshot, i)
			}
		}
		if s.Low == nil || s.High == nil {
			return fmt.Errorf("%w: advanced plus snapshot missing group sketches", ErrBadSnapshot)
		}
	}
	if s.Sample == nil {
		return fmt.Errorf("%w: plus snapshot missing sample sketch", ErrBadSnapshot)
	}
	phases := []struct {
		name string
		snap *Snapshot
	}{{"sample", s.Sample}, {"low", s.Low}, {"high", s.High}}
	for _, ph := range phases {
		if ph.snap == nil {
			continue
		}
		if ph.snap.Kind != SnapshotJoin {
			return fmt.Errorf("%w: %s phase is not join state", ErrBadSnapshot, ph.name)
		}
		if ph.snap.Finalized != s.Finalized {
			return fmt.Errorf("%w: %s phase finalization disagrees with the column's", ErrBadSnapshot, ph.name)
		}
		if err := ph.snap.Validate(); err != nil {
			return fmt.Errorf("%s phase: %w", ph.name, err)
		}
		if ph.snap.K != s.Sample.K || ph.snap.M1 != s.Sample.M1 || ph.snap.Epsilon != s.Sample.Epsilon {
			return fmt.Errorf("%w: %s phase parameters disagree with the sample's", ErrBadSnapshot, ph.name)
		}
	}
	if s.Advanced && s.Low.SeedA != s.High.SeedA {
		return fmt.Errorf("%w: low and high phases use different hash families", ErrBadSnapshot)
	}
	return nil
}

// CompatibleWithPlus returns nil when every embedded snapshot was
// built under exactly (p, the phase seeds derived from seed) — the
// precondition for merging it into a local plus column.
func (s *PlusSnapshot) CompatibleWithPlus(p core.Params, seed int64) error {
	if err := s.Sample.CompatibleWithJoin(p, core.PlusSampleSeed(seed)); err != nil {
		return fmt.Errorf("sample phase: %w", err)
	}
	if s.Low != nil {
		if err := s.Low.CompatibleWithJoin(p, core.PlusGroupSeed(seed)); err != nil {
			return fmt.Errorf("low phase: %w", err)
		}
	}
	if s.High != nil {
		if err := s.High.CompatibleWithJoin(p, core.PlusGroupSeed(seed)); err != nil {
			return fmt.Errorf("high phase: %w", err)
		}
	}
	return nil
}

// PlusSnapshotMaxEncodedSize bounds the wire size of any valid plus
// snapshot under the given parameters — importers use it to bound
// request bodies before reading them.
func PlusSnapshotMaxEncodedSize(p core.Params) int {
	return plusSnapHeaderSize + 8*MaxPlusFI + 3*(4+SnapshotEncodedSize(p)) + snapTrailerSize
}

// IsPlusSnapshot reports whether the leading bytes carry the plus
// snapshot magic and version. Nothing is authenticated here —
// DecodePlusSnapshot still validates the whole encoding.
func IsPlusSnapshot(prefix []byte) bool {
	return len(prefix) >= 5 && [4]byte(prefix[:4]) == plusSnapMagic && prefix[4] == PlusSnapshotVersion
}

// EncodePlusSnapshot validates and encodes a plus snapshot.
func EncodePlusSnapshot(s *PlusSnapshot) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, plusSnapHeaderSize+8*len(s.FI)+4+s.Sample.EncodedSize())
	buf = append(buf, plusSnapMagic[:]...)
	var flags byte
	if s.Finalized {
		flags |= plusFlagFinalized
	}
	if s.Advanced {
		flags |= plusFlagAdvanced
	}
	buf = append(buf, PlusSnapshotVersion, flags, 0, 0)
	buf = binary.BigEndian.AppendUint64(buf, s.Domain)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Theta))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.FI)))
	for _, d := range s.FI {
		buf = binary.BigEndian.AppendUint64(buf, d)
	}
	blobs := []*Snapshot{s.Sample}
	if s.Advanced {
		blobs = append(blobs, s.Low, s.High)
	}
	for _, snap := range blobs {
		enc, err := EncodeSnapshot(snap)
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodePlusSnapshot decodes and fully validates a plus snapshot:
// magic, version, checksum, phase structure, and every embedded
// snapshot through the base codec.
func DecodePlusSnapshot(data []byte) (*PlusSnapshot, error) {
	if len(data) < plusSnapHeaderSize+snapTrailerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a plus snapshot header", ErrBadSnapshot, len(data))
	}
	if [4]byte(data[:4]) != plusSnapMagic {
		return nil, fmt.Errorf("%w: bad plus magic", ErrBadSnapshot)
	}
	if data[4] != PlusSnapshotVersion {
		return nil, fmt.Errorf("%w: unsupported plus version %d", ErrBadSnapshot, data[4])
	}
	body, trailer := data[:len(data)-snapTrailerSize], data[len(data)-snapTrailerSize:]
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (computed %08x, stored %08x)", ErrBadSnapshot, got, want)
	}
	flags := data[5]
	if flags&^byte(plusFlagFinalized|plusFlagAdvanced) != 0 {
		return nil, fmt.Errorf("%w: unknown flag bits %02x", ErrBadSnapshot, flags)
	}
	if data[6] != 0 || data[7] != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved bytes", ErrBadSnapshot)
	}
	s := &PlusSnapshot{
		Finalized: flags&plusFlagFinalized != 0,
		Advanced:  flags&plusFlagAdvanced != 0,
		Domain:    binary.BigEndian.Uint64(data[8:16]),
		Theta:     math.Float64frombits(binary.BigEndian.Uint64(data[16:24])),
	}
	count := binary.BigEndian.Uint32(data[24:28])
	if count > MaxPlusFI {
		return nil, fmt.Errorf("%w: FI count %d exceeds %d", ErrBadSnapshot, count, MaxPlusFI)
	}
	rest := body[plusSnapHeaderSize:]
	if len(rest) < 8*int(count) {
		return nil, fmt.Errorf("%w: truncated FI list", ErrBadSnapshot)
	}
	if count > 0 {
		s.FI = make([]uint64, count)
		for i := range s.FI {
			s.FI[i] = binary.BigEndian.Uint64(rest[8*i:])
		}
	}
	rest = rest[8*count:]
	nblobs := 1
	if s.Advanced {
		nblobs = 3
	}
	snaps := make([]*Snapshot, nblobs)
	for i := range snaps {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated phase blob %d", ErrBadSnapshot, i)
		}
		blobLen := binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint64(blobLen) > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: phase blob %d declares %d bytes, %d remain", ErrBadSnapshot, i, blobLen, len(rest))
		}
		snap, err := DecodeSnapshot(rest[:blobLen])
		if err != nil {
			return nil, fmt.Errorf("phase blob %d: %w", i, err)
		}
		snaps[i] = snap
		rest = rest[blobLen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after phase blobs", ErrBadSnapshot, len(rest))
	}
	s.Sample = snaps[0]
	if s.Advanced {
		s.Low, s.High = snaps[1], snaps[2]
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// PlusSnapshotOfState wraps a finalized plus column state as a
// snapshot without copying.
func PlusSnapshotOfState(st *core.PlusState) *PlusSnapshot {
	return &PlusSnapshot{
		Finalized: true,
		Advanced:  true,
		Domain:    st.Domain,
		Theta:     st.Theta,
		FI:        st.FI,
		Sample:    SnapshotOfSketch(st.Sample),
		Low:       SnapshotOfSketch(st.Low),
		High:      SnapshotOfSketch(st.High),
	}
}

// PlusState restores a finalized plus column state from a finalized
// plus snapshot.
func (s *PlusSnapshot) PlusState() (*core.PlusState, error) {
	if !s.Finalized {
		return nil, fmt.Errorf("%w: unfinalized plus snapshot cannot restore a finalized state", ErrSnapshotMismatch)
	}
	sample, err := s.Sample.Sketch()
	if err != nil {
		return nil, err
	}
	low, err := s.Low.Sketch()
	if err != nil {
		return nil, err
	}
	high, err := s.High.Sketch()
	if err != nil {
		return nil, err
	}
	return &core.PlusState{
		Sample: sample,
		Low:    low,
		High:   high,
		Domain: s.Domain,
		Theta:  s.Theta,
		FI:     s.FI,
	}, nil
}
