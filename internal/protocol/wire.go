// Package protocol implements the transport layer of the paper's LDP
// workflow: the binary wire format clients use to stream perturbed
// reports to the aggregator, and batch decoders that feed a stream's
// reports into the server-side ingestion engine (internal/ingest).
//
// The format is deliberately minimal — the whole point of LDPJoinSketch
// is that a report is one perturbed bit plus two small indices — and
// framing is fixed-size so a collector can stream without buffering
// logic:
//
//	header (once per stream):
//	  magic "LJSK" | version u8 | kind u8 | k u16 | m u32 | epsilon f64
//	report (repeated):
//	  y u8 (0 = −1, 1 = +1) | row u16 | col u32            (kind Join)
//	  y u8 | row u16 | l1 u32 | l2 u32                     (kind Matrix)
//	  y u8 | row u16 | col u32                             (kind Plus)
//
// Kind Plus streams reuse the Join report layout; the header's m2 slot
// (meaningless for a single-attribute sketch) carries the PlusGroup —
// sample (0), low (1) or high (2) — the whole stream feeds.
//
// All integers are big-endian. Streams are one-directional: a client (or
// client gateway) writes a header and any number of reports; the server
// reads until EOF.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"ldpjoin/internal/core"
)

// Version is the wire-format version emitted by this package.
const Version = 1

// Kind discriminates report streams.
type Kind uint8

const (
	// KindJoin streams single-attribute reports (core.Report).
	KindJoin Kind = 1
	// KindMatrix streams two-attribute reports (core.MatrixReport).
	KindMatrix Kind = 2
	// KindPlus streams phase-tagged reports for a two-phase
	// LDPJoinSketch+ column. Reports are wire-identical to KindJoin;
	// the header's M2 slot (unused for single-attribute sketches)
	// carries the PlusGroup the stream belongs to.
	KindPlus Kind = 3
)

// PlusGroup tags which phase sketch a KindPlus stream or WAL record
// feeds: the phase-1 sample, or one of the two phase-2 FAP groups.
type PlusGroup uint8

const (
	// PlusSample is the phase-1 sample window (plain perturbation).
	PlusSample PlusGroup = 0
	// PlusLow is phase-2 group 1: the low-frequency target sketch.
	PlusLow PlusGroup = 1
	// PlusHigh is phase-2 group 2: the high-frequency target sketch.
	PlusHigh PlusGroup = 2
)

// String implements fmt.Stringer for diagnostics.
func (g PlusGroup) String() string {
	switch g {
	case PlusSample:
		return "sample"
	case PlusLow:
		return "low"
	case PlusHigh:
		return "high"
	}
	return fmt.Sprintf("plusgroup(%d)", uint8(g))
}

var magic = [4]byte{'L', 'J', 'S', 'K'}

// Header announces the protocol parameters of a report stream. The
// server checks it against its own configuration before accepting
// reports.
type Header struct {
	Kind    Kind
	K       int
	M       int // columns for KindJoin; M1 for KindMatrix
	M2      int // only for KindMatrix
	Epsilon float64
}

// ErrBadMagic is returned when a stream does not start with the expected
// magic bytes.
var ErrBadMagic = errors.New("protocol: bad stream magic")

// headerSize is the wire size of a stream header.
const headerSize = 24

// WriteHeader writes the stream header.
func WriteHeader(w io.Writer, h Header) error {
	buf := make([]byte, 0, headerSize)
	buf = append(buf, magic[:]...)
	buf = append(buf, Version, byte(h.Kind))
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.K))
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.M))
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.M2))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(h.Epsilon))
	_, err := w.Write(buf)
	return err
}

// ReadHeader reads and validates a stream header.
func ReadHeader(r io.Reader) (Header, error) {
	buf := make([]byte, headerSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Header{}, fmt.Errorf("protocol: reading header: %w", err)
	}
	if [4]byte(buf[:4]) != magic {
		return Header{}, ErrBadMagic
	}
	if buf[4] != Version {
		return Header{}, fmt.Errorf("protocol: unsupported version %d", buf[4])
	}
	h := Header{
		Kind:    Kind(buf[5]),
		K:       int(binary.BigEndian.Uint16(buf[6:8])),
		M:       int(binary.BigEndian.Uint32(buf[8:12])),
		M2:      int(binary.BigEndian.Uint32(buf[12:16])),
		Epsilon: math.Float64frombits(binary.BigEndian.Uint64(buf[16:24])),
	}
	if h.Kind != KindJoin && h.Kind != KindMatrix && h.Kind != KindPlus {
		return Header{}, fmt.Errorf("protocol: unknown stream kind %d", h.Kind)
	}
	return h, nil
}

// ReportSize is the wire size of one KindJoin report. The WAL layer
// uses it to split report batches into bounded records.
const ReportSize = 7

// MatrixReportSize is the wire size of one KindMatrix report. Like
// ReportSize it doubles as the WAL layer's record-splitting unit for
// matrix report batches.
const MatrixReportSize = 11

// AppendReport encodes one join report.
func AppendReport(buf []byte, r core.Report) []byte {
	buf = append(buf, encodeSign(r.Y))
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.Row))
	buf = binary.BigEndian.AppendUint32(buf, r.Col)
	return buf
}

// DecodeReport decodes one join report from exactly ReportSize bytes.
func DecodeReport(buf []byte) (core.Report, error) {
	if len(buf) < ReportSize {
		return core.Report{}, fmt.Errorf("protocol: short report: %d bytes", len(buf))
	}
	y, err := decodeSign(buf[0])
	if err != nil {
		return core.Report{}, err
	}
	return core.Report{
		Y:   y,
		Row: uint32(binary.BigEndian.Uint16(buf[1:3])),
		Col: binary.BigEndian.Uint32(buf[3:7]),
	}, nil
}

// AppendMatrixReport encodes one matrix report.
func AppendMatrixReport(buf []byte, r core.MatrixReport) []byte {
	buf = append(buf, encodeSign(r.Y))
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.Row))
	buf = binary.BigEndian.AppendUint32(buf, r.L1)
	buf = binary.BigEndian.AppendUint32(buf, r.L2)
	return buf
}

// DecodeMatrixReport decodes one matrix report from exactly
// MatrixReportSize bytes.
func DecodeMatrixReport(buf []byte) (core.MatrixReport, error) {
	if len(buf) < MatrixReportSize {
		return core.MatrixReport{}, fmt.Errorf("protocol: short matrix report: %d bytes", len(buf))
	}
	y, err := decodeSign(buf[0])
	if err != nil {
		return core.MatrixReport{}, err
	}
	return core.MatrixReport{
		Y:   y,
		Row: uint32(binary.BigEndian.Uint16(buf[1:3])),
		L1:  binary.BigEndian.Uint32(buf[3:7]),
		L2:  binary.BigEndian.Uint32(buf[7:11]),
	}, nil
}

func encodeSign(y int8) byte {
	if y == 1 {
		return 1
	}
	return 0
}

func decodeSign(b byte) (int8, error) {
	switch b {
	case 0:
		return -1, nil
	case 1:
		return 1, nil
	default:
		return 0, fmt.Errorf("protocol: invalid sign byte %d", b)
	}
}
