package protocol

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"ldpjoin/internal/core"
)

// testPlusAggregators builds deterministic unfinalized aggregators for
// the three phases of a plus column under base seed 7: fixed report
// positions, no PRNG, so golden bytes never drift.
func testPlusAggregators(t *testing.T) (sample, low, high *core.Aggregator) {
	t.Helper()
	p := snapParams()
	famS := p.NewFamily(core.PlusSampleSeed(7))
	famG := p.NewFamily(core.PlusGroupSeed(7))
	sample = core.NewAggregator(p, famS)
	low = core.NewAggregator(p, famG)
	high = core.NewAggregator(p, famG)
	for i := 0; i < 120; i++ {
		y := int8(1)
		if i%3 == 0 {
			y = -1
		}
		sample.Add(core.Report{Y: y, Row: uint32(i % p.K), Col: uint32((i * 5) % p.M)})
	}
	for i := 0; i < 90; i++ {
		y := int8(1)
		if i%4 == 0 {
			y = -1
		}
		low.Add(core.Report{Y: y, Row: uint32(i % p.K), Col: uint32((i * 3) % p.M)})
		high.Add(core.Report{Y: -y, Row: uint32((i + 1) % p.K), Col: uint32((i * 7) % p.M)})
	}
	return sample, low, high
}

// The three lifecycle forms of a plus snapshot: mid-phase-1 (sample
// only), mid-phase-2 (advanced, all three aggregators live), and
// finalized.
func testPlusPhase1(t *testing.T) *PlusSnapshot {
	t.Helper()
	sample, _, _ := testPlusAggregators(t)
	return &PlusSnapshot{Sample: SnapshotOfAggregator(sample)}
}

func testPlusPhase2(t *testing.T) *PlusSnapshot {
	t.Helper()
	sample, low, high := testPlusAggregators(t)
	return &PlusSnapshot{
		Advanced: true,
		Domain:   50,
		Theta:    0.1,
		FI:       []uint64{3, 9, 17},
		Sample:   SnapshotOfAggregator(sample),
		Low:      SnapshotOfAggregator(low),
		High:     SnapshotOfAggregator(high),
	}
}

func testPlusFinalized(t *testing.T) *PlusSnapshot {
	t.Helper()
	sample, low, high := testPlusAggregators(t)
	return &PlusSnapshot{
		Finalized: true,
		Advanced:  true,
		Domain:    50,
		Theta:     0.1,
		FI:        []uint64{3, 9, 17},
		Sample:    SnapshotOfSketch(sample.Finalize()),
		Low:       SnapshotOfSketch(low.Finalize()),
		High:      SnapshotOfSketch(high.Finalize()),
	}
}

func encodePlus(t *testing.T, s *PlusSnapshot) []byte {
	t.Helper()
	data, err := EncodePlusSnapshot(s)
	if err != nil {
		t.Fatalf("EncodePlusSnapshot: %v", err)
	}
	return data
}

func decodePlus(t *testing.T, data []byte) *PlusSnapshot {
	t.Helper()
	s, err := DecodePlusSnapshot(data)
	if err != nil {
		t.Fatalf("DecodePlusSnapshot: %v", err)
	}
	return s
}

func TestPlusStreamRoundTrip(t *testing.T) {
	p := snapParams()
	var buf bytes.Buffer
	w, err := NewPlusReportWriter(&buf, p, PlusHigh)
	if err != nil {
		t.Fatal(err)
	}
	in := []core.Report{{Y: 1, Row: 0, Col: 3}, {Y: -1, Row: 3, Col: 15}}
	for _, r := range in {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var out []core.Report
	h, group, n, err := ReadPlusStream(bytes.NewReader(buf.Bytes()), p, func(r core.Report) { out = append(out, r) })
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != KindPlus || group != PlusHigh || n != len(in) {
		t.Fatalf("header %+v group %v n %d", h, group, n)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("report %d: %v vs %v", i, out[i], in[i])
		}
	}
	if _, err := NewPlusReportWriter(&bytes.Buffer{}, p, PlusGroup(3)); err == nil {
		t.Fatal("invalid group accepted by writer")
	}
	// A join stream must be refused by the plus reader, and vice versa.
	var jb bytes.Buffer
	jw, _ := NewReportWriter(&jb, p)
	jw.Flush()
	if _, _, _, err := ReadPlusStream(bytes.NewReader(jb.Bytes()), p, func(core.Report) {}); err == nil {
		t.Fatal("join stream accepted as plus")
	}
	if _, _, err := ReadStream(bytes.NewReader(buf.Bytes()), p, func(core.Report) {}); err == nil {
		t.Fatal("plus stream accepted as join")
	}
}

func TestPlusReportsPayload(t *testing.T) {
	p := snapParams()
	in := []core.Report{{Y: 1, Row: 3, Col: 15}, {Y: -1, Row: 0, Col: 0}}
	payload := AppendPlusReportsPayload(nil, PlusLow, in)
	group, out, err := DecodePlusReportsPayload(payload, p)
	if err != nil {
		t.Fatal(err)
	}
	if group != PlusLow || len(out) != len(in) || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mismatch: group %v, %v vs %v", group, out, in)
	}
	if _, _, err := DecodePlusReportsPayload(nil, p); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("empty payload: got %v", err)
	}
	if _, _, err := DecodePlusReportsPayload([]byte{3}, p); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("bad group: got %v", err)
	}
	if _, _, err := DecodePlusReportsPayload([]byte{0, 1, 2}, p); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("ragged payload: got %v", err)
	}
	oob := AppendPlusReportsPayload(nil, PlusSample, []core.Report{{Y: 1, Row: 9, Col: 0}})
	if _, _, err := DecodePlusReportsPayload(oob, p); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("out-of-bounds report: got %v", err)
	}
}

func TestPlusAdvancePayload(t *testing.T) {
	fi := []uint64{1, 5, 42}
	payload := AppendPlusAdvancePayload(nil, 100, 0.05, fi)
	domain, theta, got, err := DecodePlusAdvancePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if domain != 100 || theta != 0.05 || len(got) != 3 || got[0] != 1 || got[1] != 5 || got[2] != 42 {
		t.Fatalf("round trip mismatch: %d %v %v", domain, theta, got)
	}
	// An empty FI is legal: a uniform phase-1 sample finds nothing.
	if _, _, fi, err := DecodePlusAdvancePayload(AppendPlusAdvancePayload(nil, 10, 0.5, nil)); err != nil || len(fi) != 0 {
		t.Fatalf("empty FI: %v %v", fi, err)
	}
	bad := [][]byte{
		payload[:10], // truncated
		AppendPlusAdvancePayload(nil, 0, 0.05, nil),              // zero domain
		AppendPlusAdvancePayload(nil, 100, 0, nil),               // theta 0
		AppendPlusAdvancePayload(nil, 100, 1, nil),               // theta 1
		AppendPlusAdvancePayload(nil, 100, math.NaN(), nil),      // theta NaN
		AppendPlusAdvancePayload(nil, 100, 0.05, []uint64{5, 1}), // unsorted
		AppendPlusAdvancePayload(nil, 100, 0.05, []uint64{1, 1}), // duplicate
		AppendPlusAdvancePayload(nil, 100, 0.05, []uint64{100}),  // outside domain
		append(payload, 0), // trailing byte
	}
	for i, b := range bad {
		if _, _, _, err := DecodePlusAdvancePayload(b); !errors.Is(err, ErrBadRecord) {
			t.Errorf("bad payload %d accepted: %v", i, err)
		}
	}
}

func TestPlusRecordTypesAccepted(t *testing.T) {
	p := snapParams()
	reports := []core.Report{{Y: 1, Row: 1, Col: 2}}
	log := AppendRecord(nil, RecordPlusReports, AppendPlusReportsPayload(nil, PlusSample, reports))
	log = AppendRecord(log, RecordPlusAdvance, AppendPlusAdvancePayload(nil, 50, 0.1, []uint64{3}))
	r := bytes.NewReader(log)
	typ, payload, err := ReadRecord(r)
	if err != nil || typ != RecordPlusReports {
		t.Fatalf("first record: %v %v", typ, err)
	}
	if _, got, err := DecodePlusReportsPayload(payload, p); err != nil || len(got) != 1 {
		t.Fatalf("plus reports payload: %v %v", got, err)
	}
	typ, payload, err = ReadRecord(r)
	if err != nil || typ != RecordPlusAdvance {
		t.Fatalf("second record: %v %v", typ, err)
	}
	if _, _, fi, err := DecodePlusAdvancePayload(payload); err != nil || len(fi) != 1 {
		t.Fatalf("plus advance payload: %v %v", fi, err)
	}
	if _, _, err := ReadRecord(bytes.NewReader(AppendRecord(nil, RecordType(6), nil))); !errors.Is(err, ErrBadRecord) {
		t.Fatal("record type 6 accepted")
	}
}

func TestPlusSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		snap *PlusSnapshot
	}{
		{"phase1", testPlusPhase1(t)},
		{"phase2", testPlusPhase2(t)},
		{"finalized", testPlusFinalized(t)},
	} {
		data := encodePlus(t, tc.snap)
		if !IsPlusSnapshot(data) {
			t.Fatalf("%s: IsPlusSnapshot false on its own encoding", tc.name)
		}
		if _, err := PeekSnapshotKind(data); err == nil {
			t.Fatalf("%s: plus snapshot accepted as base SNAP", tc.name)
		}
		got := decodePlus(t, data)
		if got.Finalized != tc.snap.Finalized || got.Advanced != tc.snap.Advanced ||
			got.Domain != tc.snap.Domain || got.Theta != tc.snap.Theta {
			t.Fatalf("%s: phase metadata changed: %+v", tc.name, got)
		}
		if got.N() != tc.snap.N() {
			t.Fatalf("%s: N %v vs %v", tc.name, got.N(), tc.snap.N())
		}
		if re := encodePlus(t, got); !bytes.Equal(re, data) {
			t.Fatalf("%s: encoding is not canonical", tc.name)
		}
		if err := got.CompatibleWithPlus(snapParams(), 7); err != nil {
			t.Fatalf("%s: incompatible with its own deployment: %v", tc.name, err)
		}
		if err := got.CompatibleWithPlus(snapParams(), 8); err == nil {
			t.Fatalf("%s: wrong base seed accepted", tc.name)
		}
	}
}

// goldenPlus is golden for the composite codec: same update flag and
// byte comparison, canonical check through DecodePlusSnapshot.
func goldenPlus(t *testing.T, name string, data []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test -run TestPlusSnapshotGolden -update ./internal/protocol` to create): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("%s: encoding diverged from golden bytes (%d vs %d bytes)", name, len(data), len(want))
	}
	if re := encodePlus(t, decodePlus(t, want)); !bytes.Equal(re, want) {
		t.Fatalf("%s: golden bytes are not canonical", name)
	}
}

func TestPlusSnapshotGolden(t *testing.T) {
	goldenPlus(t, "plus_phase1.snap", encodePlus(t, testPlusPhase1(t)))
	goldenPlus(t, "plus_phase2.snap", encodePlus(t, testPlusPhase2(t)))
	goldenPlus(t, "plus_finalized.snap", encodePlus(t, testPlusFinalized(t)))
}

func TestPlusSnapshotRejectsCorruption(t *testing.T) {
	data := encodePlus(t, testPlusPhase2(t))
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := DecodePlusSnapshot(mut); err == nil {
			t.Fatalf("corrupting byte %d went undetected", i)
		}
	}
	for n := 0; n < len(data); n += 7 {
		if _, err := DecodePlusSnapshot(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
	if _, err := DecodePlusSnapshot(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing garbage went undetected")
	}
	if _, err := DecodePlusSnapshot(encode(t, testPlusPhase1(t).Sample)); err == nil {
		t.Fatal("base SNAP accepted as plus snapshot")
	}
}

func TestPlusSnapshotValidateRejectsBadState(t *testing.T) {
	check := func(name string, mutate func(s *PlusSnapshot)) {
		t.Helper()
		s := testPlusPhase2(t)
		mutate(s)
		if _, err := EncodePlusSnapshot(s); err == nil {
			t.Errorf("%s: encode accepted invalid plus snapshot", name)
		}
	}
	check("finalized without advance", func(s *PlusSnapshot) { s.Finalized = true })
	check("advanced without groups", func(s *PlusSnapshot) { s.Low = nil })
	check("zero domain", func(s *PlusSnapshot) { s.Domain = 0 })
	check("theta out of range", func(s *PlusSnapshot) { s.Theta = 1.5 })
	check("fi unsorted", func(s *PlusSnapshot) { s.FI = []uint64{9, 3} })
	check("fi duplicate", func(s *PlusSnapshot) { s.FI = []uint64{3, 3} })
	check("fi outside domain", func(s *PlusSnapshot) { s.FI = []uint64{3, 50} })
	check("missing sample", func(s *PlusSnapshot) { s.Sample = nil })
	check("group family mismatch", func(s *PlusSnapshot) { s.High.SeedA++ })
	check("phase finalization mismatch", func(s *PlusSnapshot) {
		sample, _, _ := testPlusAggregators(t)
		s.Sample = SnapshotOfSketch(sample.Finalize())
	})
	check("matrix phase", func(s *PlusSnapshot) { s.Sample.Kind = SnapshotMatrix })
	pre := testPlusPhase1(t)
	pre.FI = []uint64{1}
	pre.Domain = 10
	pre.Theta = 0.1
	if _, err := EncodePlusSnapshot(pre); err == nil {
		t.Error("pre-advance snapshot with advance parameters accepted")
	}
}

// FuzzPlusReportsPayload drives the plus WAL payload decoder over
// arbitrary bytes: it must never panic, must reject anything that is
// not a valid group byte followed by whole in-bounds reports, and must
// be canonical — re-encoding an accepted payload reproduces the input
// bit for bit.
func FuzzPlusReportsPayload(f *testing.F) {
	p := snapParams()
	f.Add(AppendPlusReportsPayload(nil, PlusSample, []core.Report{
		{Y: 1, Row: 0, Col: 0},
		{Y: -1, Row: 3, Col: 15},
	}))
	f.Add(AppendPlusReportsPayload(nil, PlusHigh, nil))
	f.Add([]byte{})
	f.Add([]byte{3, 1, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, ReportSize+1))
	f.Fuzz(func(t *testing.T, data []byte) {
		group, reports, err := DecodePlusReportsPayload(data, p)
		if err != nil {
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if group > PlusHigh {
			t.Fatalf("accepted invalid group %d", group)
		}
		for i, r := range reports {
			if (r.Y != 1 && r.Y != -1) || int(r.Row) >= p.K || int(r.Col) >= p.M {
				t.Fatalf("accepted out-of-bounds report %d: %v", i, r)
			}
		}
		if !bytes.Equal(AppendPlusReportsPayload(nil, group, reports), data) {
			t.Fatal("accepted payload is not canonical")
		}
	})
}
