package protocol

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"ldpjoin/internal/core"
)

func TestHeaderRoundTrip(t *testing.T) {
	cases := []Header{
		{Kind: KindJoin, K: 18, M: 1024, Epsilon: 4},
		{Kind: KindMatrix, K: 9, M: 256, M2: 512, Epsilon: 0.5},
	}
	for _, h := range cases {
		var buf bytes.Buffer
		if err := WriteHeader(&buf, h); err != nil {
			t.Fatal(err)
		}
		got, err := ReadHeader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
	}
}

func TestHeaderBadMagic(t *testing.T) {
	_, err := ReadHeader(bytes.NewReader(append([]byte("NOPE"), make([]byte, 22)...)))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestHeaderBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf, Header{Kind: KindJoin, K: 1, M: 2, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99
	if _, err := ReadHeader(bytes.NewReader(b)); err == nil {
		t.Fatal("expected version error")
	}
}

func TestHeaderBadKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf, Header{Kind: 42, K: 1, M: 2, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHeader(&buf); err == nil {
		t.Fatal("expected kind error")
	}
}

func TestHeaderTruncated(t *testing.T) {
	if _, err := ReadHeader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("expected error for truncated header")
	}
}

func TestReportRoundTripProperty(t *testing.T) {
	f := func(yBit bool, row uint16, col uint32) bool {
		y := int8(-1)
		if yBit {
			y = 1
		}
		in := core.Report{Y: y, Row: uint32(row), Col: col}
		out, err := DecodeReport(AppendReport(nil, in))
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixReportRoundTripProperty(t *testing.T) {
	f := func(yBit bool, row uint16, l1, l2 uint32) bool {
		y := int8(-1)
		if yBit {
			y = 1
		}
		in := core.MatrixReport{Y: y, Row: uint32(row), L1: l1, L2: l2}
		out, err := DecodeMatrixReport(AppendMatrixReport(nil, in))
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeReportErrors(t *testing.T) {
	if _, err := DecodeReport([]byte{1, 2}); err == nil {
		t.Fatal("expected short-buffer error")
	}
	bad := AppendReport(nil, core.Report{Y: 1, Row: 3, Col: 4})
	bad[0] = 7
	if _, err := DecodeReport(bad); err == nil {
		t.Fatal("expected sign error")
	}
	if _, err := DecodeMatrixReport([]byte{1}); err == nil {
		t.Fatal("expected short matrix buffer error")
	}
	badM := AppendMatrixReport(nil, core.MatrixReport{Y: -1})
	badM[0] = 9
	if _, err := DecodeMatrixReport(badM); err == nil {
		t.Fatal("expected matrix sign error")
	}
}

func TestReadStreamParamsMismatch(t *testing.T) {
	var buf bytes.Buffer
	p := core.Params{K: 4, M: 64, Epsilon: 2}
	w, err := NewReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	other := core.Params{K: 8, M: 64, Epsilon: 2}
	if _, _, err := ReadStream(&buf, other, func(core.Report) {}); err == nil {
		t.Fatal("expected params mismatch error")
	}
}

func TestReadStreamWrongKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf, Header{Kind: KindMatrix, K: 1, M: 2, M2: 2, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadStream(&buf, core.Params{K: 1, M: 2, Epsilon: 1}, func(core.Report) {}); err == nil {
		t.Fatal("expected kind error")
	}
}

func TestReadStreamTruncatedReport(t *testing.T) {
	var buf bytes.Buffer
	p := core.Params{K: 2, M: 16, Epsilon: 1}
	w, err := NewReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(core.Report{Y: 1, Row: 1, Col: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	_, n, err := ReadStream(bytes.NewReader(trunc), p, func(core.Report) {})
	if err == nil {
		t.Fatal("expected truncation error")
	}
	if n != 0 {
		t.Fatalf("read %d reports from truncated stream", n)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want wrapped ErrUnexpectedEOF", err)
	}
}

func TestWriterReaderRoundTripMany(t *testing.T) {
	var buf bytes.Buffer
	p := core.Params{K: 18, M: 1024, Epsilon: 4}
	w, err := NewReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]core.Report, 5000)
	for i := range want {
		y := int8(1)
		if i%3 == 0 {
			y = -1
		}
		want[i] = core.Report{Y: y, Row: uint32(i % 18), Col: uint32(i % 1024)}
		if err := w.Write(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []core.Report
	h, n, err := ReadStream(&buf, p, func(r core.Report) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	if h.K != 18 || n != len(want) {
		t.Fatalf("header/count mismatch: %+v, n=%d", h, n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("report %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
