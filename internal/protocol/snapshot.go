// Snapshot codec: the cross-node serialization of aggregation state.
//
// LDPJoinSketch state is linear — an unfinalized cell is an exact
// integer sum of perturbed bits — so sketches built on different
// collectors merge exactly, with no accuracy and no privacy cost. The
// snapshot codec is what lets that state leave the process that built
// it: a collector exports its per-column aggregator, a federator
// imports and merges snapshots from many collectors, and the merged,
// then finalized, sketch is byte-identical to single-node ingestion of
// the concatenated report stream.
//
// The format is versioned, self-describing, and integrity-checked:
//
//	header (60 bytes, all integers big-endian):
//	  magic "SNAP" | version u8 | kind u8 | flags u8 | reserved u8 (0)
//	  k u32 | m1 u32 | m2 u32 (0 for kind Join)
//	  epsilon f64 | seedA i64 | seedB i64 (0 for kind Join)
//	  n f64 | cellCount u64
//	payload:
//	  cellCount f64 cells, row-major (k rows of m1, or k replicas of
//	  m1·m2)
//	trailer:
//	  crc32 (IEEE) u32 over header + payload
//
// flags bit 0 marks a finalized snapshot (debias scale applied, rows
// restored out of the Hadamard domain); all other bits must be zero.
// (k, m1, m2, epsilon, seedA, seedB) is the configuration fingerprint:
// two snapshots merge only when the fingerprints are equal, and an
// importer additionally checks the fingerprint against its own
// configuration before any cell can reach a local sketch. The encoding
// is canonical — re-encoding a decoded snapshot reproduces the input
// byte-for-byte — which is what the fuzz round-trip target checks.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
)

// SnapshotVersion is the snapshot-format version this package encodes.
const SnapshotVersion = 1

var snapMagic = [4]byte{'S', 'N', 'A', 'P'}

// SnapshotKind discriminates the sketch shape a snapshot carries.
type SnapshotKind uint8

const (
	// SnapshotJoin is single-attribute LDPJoinSketch state (K×M cells).
	SnapshotJoin SnapshotKind = 1
	// SnapshotMatrix is two-attribute middle-table state (K replicas of
	// M1×M2 cells).
	SnapshotMatrix SnapshotKind = 2
)

const snapFlagFinalized = 1 << 0

// snapHeaderSize is the wire size of the snapshot header.
const snapHeaderSize = 4 + 1 + 1 + 1 + 1 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8

// snapTrailerSize is the wire size of the CRC trailer.
const snapTrailerSize = 4

// ErrBadSnapshot is returned when a byte stream is not a valid snapshot
// encoding (bad magic, version, structure, or checksum).
var ErrBadSnapshot = errors.New("protocol: bad snapshot encoding")

// ErrSnapshotMismatch is returned when a structurally valid snapshot was
// built under a different configuration fingerprint than the local one.
var ErrSnapshotMismatch = errors.New("protocol: snapshot configuration mismatch")

// Snapshot is the decoded (or to-be-encoded) form of exported
// aggregation state. Cells is shared, not copied: building a Snapshot
// from an aggregator is free, and encoding reads the live state — the
// exporter must be quiescent (drained) while encoding.
type Snapshot struct {
	Kind      SnapshotKind
	Finalized bool
	K         int
	M1        int
	M2        int // 0 for SnapshotJoin
	Epsilon   float64
	SeedA     int64
	SeedB     int64 // 0 for SnapshotJoin
	N         float64
	Cells     [][]float64 // K rows of M1 (join) or M1·M2 (matrix) cells
}

// rowCells returns the number of cells in one row (replica).
func (s *Snapshot) rowCells() int {
	if s.Kind == SnapshotMatrix {
		return s.M1 * s.M2
	}
	return s.M1
}

// Fingerprint renders the configuration fingerprint for error messages.
func (s *Snapshot) Fingerprint() string {
	if s.Kind == SnapshotMatrix {
		return fmt.Sprintf("matrix(k=%d, m1=%d, m2=%d, ε=%g, seedA=%d, seedB=%d)",
			s.K, s.M1, s.M2, s.Epsilon, s.SeedA, s.SeedB)
	}
	return fmt.Sprintf("join(k=%d, m=%d, ε=%g, seed=%d)", s.K, s.M1, s.Epsilon, s.SeedA)
}

// Validate checks the structural invariants the codec and the restore
// constructors rely on.
func (s *Snapshot) Validate() error {
	switch s.Kind {
	case SnapshotJoin:
		if s.M2 != 0 || s.SeedB != 0 {
			return fmt.Errorf("%w: join snapshot with matrix fields (m2=%d, seedB=%d)", ErrBadSnapshot, s.M2, s.SeedB)
		}
		p := core.Params{K: s.K, M: s.M1, Epsilon: s.Epsilon}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
	case SnapshotMatrix:
		p := core.MatrixParams{K: s.K, M1: s.M1, M2: s.M2, Epsilon: s.Epsilon}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
	default:
		return fmt.Errorf("%w: unknown snapshot kind %d", ErrBadSnapshot, s.Kind)
	}
	// Counts above 2^53 could not have been accumulated one report at a
	// time and would overflow the int64 counters importers keep (the NaN
	// check stands alone because NaN fails every comparison).
	if s.N < 0 || s.N > 1<<53 || math.IsNaN(s.N) {
		return fmt.Errorf("%w: invalid report count %v", ErrBadSnapshot, s.N)
	}
	if len(s.Cells) != s.K {
		return fmt.Errorf("%w: %d rows, want %d", ErrBadSnapshot, len(s.Cells), s.K)
	}
	want := s.rowCells()
	for j, row := range s.Cells {
		if len(row) != want {
			return fmt.Errorf("%w: row %d has %d cells, want %d", ErrBadSnapshot, j, len(row), want)
		}
		for x, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: cell [%d, %d] is not finite", ErrBadSnapshot, j, x)
			}
			// An unfinalized cell is Σ±1 over the reports routed to it:
			// an exact integer no larger in magnitude than the report
			// count. Enforcing that here keeps a hostile snapshot from
			// injecting state no report stream could have produced.
			if !s.Finalized && (v != math.Trunc(v) || v > s.N || v < -s.N) {
				return fmt.Errorf("%w: unfinalized cell [%d, %d] = %v is not an integer within ±n", ErrBadSnapshot, j, x, v)
			}
		}
	}
	return nil
}

// EncodedSize returns the exact byte length EncodeSnapshot will produce.
func (s *Snapshot) EncodedSize() int {
	return snapHeaderSize + 8*s.K*s.rowCells() + snapTrailerSize
}

// SnapshotEncodedSize returns the wire size of a join snapshot under the
// given parameters — importers use it to bound request bodies before
// reading them.
func SnapshotEncodedSize(p core.Params) int {
	return snapHeaderSize + 8*p.K*p.M + snapTrailerSize
}

// SnapshotEncodedSizeMatrix returns the wire size of a matrix snapshot
// under the given matrix parameters.
func SnapshotEncodedSizeMatrix(p core.MatrixParams) int {
	return snapHeaderSize + 8*p.K*p.M1*p.M2 + snapTrailerSize
}

// SnapshotHeaderSize is the wire size of a snapshot header. Importers
// read exactly this much to learn a snapshot's kind (PeekSnapshotKind)
// before deciding how large a body to accept — a join snapshot is
// ~K·M cells, a matrix snapshot K·M², so sizing the read by the
// declared kind keeps the per-request buffer proportional.
const SnapshotHeaderSize = snapHeaderSize

// PeekSnapshotKind inspects the leading bytes of an encoded snapshot
// and returns its kind without decoding anything else. The prefix must
// carry at least the magic, version, and kind bytes; nothing is
// authenticated here — DecodeSnapshot still validates the whole
// encoding, checksum included.
func PeekSnapshotKind(prefix []byte) (SnapshotKind, error) {
	if len(prefix) < 6 {
		return 0, fmt.Errorf("%w: %d bytes is too short to carry a kind", ErrBadSnapshot, len(prefix))
	}
	if [4]byte(prefix[:4]) != snapMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if prefix[4] != SnapshotVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, prefix[4])
	}
	kind := SnapshotKind(prefix[5])
	if kind != SnapshotJoin && kind != SnapshotMatrix {
		return 0, fmt.Errorf("%w: unknown snapshot kind %d", ErrBadSnapshot, kind)
	}
	return kind, nil
}

// EncodeSnapshot validates and encodes a snapshot.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, s.EncodedSize())
	buf = append(buf, snapMagic[:]...)
	buf = append(buf, SnapshotVersion, byte(s.Kind))
	var flags byte
	if s.Finalized {
		flags |= snapFlagFinalized
	}
	buf = append(buf, flags, 0)
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.K))
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.M1))
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.M2))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Epsilon))
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.SeedA))
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.SeedB))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.N))
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.K)*uint64(s.rowCells()))
	for _, row := range s.Cells {
		for _, cell := range row {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(cell))
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodeSnapshot decodes and fully validates a snapshot: magic, version,
// checksum, structure, and cell finiteness. A decoded snapshot is safe
// to hand to the restore constructors.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < snapHeaderSize+snapTrailerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than header and trailer", ErrBadSnapshot, len(data))
	}
	if [4]byte(data[:4]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if data[4] != SnapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, data[4])
	}
	body, trailer := data[:len(data)-snapTrailerSize], data[len(data)-snapTrailerSize:]
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (computed %08x, stored %08x)", ErrBadSnapshot, got, want)
	}
	flags := data[6]
	if flags&^byte(snapFlagFinalized) != 0 {
		return nil, fmt.Errorf("%w: unknown flag bits %02x", ErrBadSnapshot, flags)
	}
	if data[7] != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved byte", ErrBadSnapshot)
	}
	s := &Snapshot{
		Kind:      SnapshotKind(data[5]),
		Finalized: flags&snapFlagFinalized != 0,
		K:         int(binary.BigEndian.Uint32(data[8:12])),
		M1:        int(binary.BigEndian.Uint32(data[12:16])),
		M2:        int(binary.BigEndian.Uint32(data[16:20])),
		Epsilon:   math.Float64frombits(binary.BigEndian.Uint64(data[20:28])),
		SeedA:     int64(binary.BigEndian.Uint64(data[28:36])),
		SeedB:     int64(binary.BigEndian.Uint64(data[36:44])),
		N:         math.Float64frombits(binary.BigEndian.Uint64(data[44:52])),
	}
	cellCount := binary.BigEndian.Uint64(data[52:60])
	// Check the declared cell count against both the actual payload and
	// the dimensions before allocating anything, guarding against
	// overflow: K, M1, M2 each fit in 32 bits, so K·M1 cannot overflow
	// uint64, and the M2 factor is divided out rather than multiplied in.
	payload := uint64(len(data) - snapHeaderSize - snapTrailerSize)
	if cellCount > payload/8 || cellCount*8 != payload {
		return nil, fmt.Errorf("%w: %d declared cells but %d payload bytes", ErrBadSnapshot, cellCount, payload)
	}
	rowCells := uint64(s.M1)
	if s.Kind == SnapshotMatrix {
		// Division-based check so K·M1·M2 (up to 96 bits) never has to be
		// multiplied out: cellCount is bounded by the payload length, so
		// both quotients are small.
		km1 := uint64(s.K) * uint64(s.M1) // K, M1 < 2^32: no overflow
		if km1 == 0 || s.M2 <= 0 || cellCount%km1 != 0 || cellCount/km1 != uint64(s.M2) {
			return nil, fmt.Errorf("%w: %d cells for a %d×%d×%d matrix snapshot", ErrBadSnapshot, cellCount, s.K, s.M1, s.M2)
		}
		rowCells = uint64(s.M1) * uint64(s.M2)
	} else if cellCount != uint64(s.K)*uint64(s.M1) {
		return nil, fmt.Errorf("%w: %d cells for a %d×%d snapshot", ErrBadSnapshot, cellCount, s.K, s.M1)
	}
	if s.K > 0 && rowCells > 0 { // structural Validate below rejects K <= 0
		s.Cells = make([][]float64, s.K)
		off := snapHeaderSize
		for j := range s.Cells {
			row := make([]float64, rowCells)
			for x := range row {
				row[x] = math.Float64frombits(binary.BigEndian.Uint64(data[off : off+8]))
				off += 8
			}
			s.Cells[j] = row
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// CompatibleWithJoin returns nil when the snapshot carries join state
// built under exactly (p, seed) — the precondition for merging it into
// local aggregation state.
func (s *Snapshot) CompatibleWithJoin(p core.Params, seed int64) error {
	if s.Kind != SnapshotJoin {
		return fmt.Errorf("%w: %s is not a join snapshot", ErrSnapshotMismatch, s.Fingerprint())
	}
	if s.K != p.K || s.M1 != p.M || s.Epsilon != p.Epsilon || s.SeedA != seed {
		return fmt.Errorf("%w: snapshot %s vs local join(k=%d, m=%d, ε=%g, seed=%d)",
			ErrSnapshotMismatch, s.Fingerprint(), p.K, p.M, p.Epsilon, seed)
	}
	return nil
}

// CompatibleWithMatrix returns nil when the snapshot carries matrix
// state built under exactly (p, seedA, seedB).
func (s *Snapshot) CompatibleWithMatrix(p core.MatrixParams, seedA, seedB int64) error {
	if s.Kind != SnapshotMatrix {
		return fmt.Errorf("%w: %s is not a matrix snapshot", ErrSnapshotMismatch, s.Fingerprint())
	}
	if s.K != p.K || s.M1 != p.M1 || s.M2 != p.M2 || s.Epsilon != p.Epsilon || s.SeedA != seedA || s.SeedB != seedB {
		return fmt.Errorf("%w: snapshot %s vs local matrix(k=%d, m1=%d, m2=%d, ε=%g, seedA=%d, seedB=%d)",
			ErrSnapshotMismatch, s.Fingerprint(), p.K, p.M1, p.M2, p.Epsilon, seedA, seedB)
	}
	return nil
}

// SnapshotOfAggregator wraps unfinalized join state as a snapshot
// without copying: the snapshot shares the aggregator's live rows, so
// the caller must not fold into the aggregator until the snapshot has
// been encoded. The aggregator must not be finalized.
func SnapshotOfAggregator(a *core.Aggregator) *Snapshot {
	if a.Done() {
		panic("protocol: SnapshotOfAggregator after Finalize")
	}
	p := a.Params()
	return &Snapshot{
		Kind:    SnapshotJoin,
		K:       p.K,
		M1:      p.M,
		Epsilon: p.Epsilon,
		SeedA:   a.Family().Seed(),
		N:       a.N(),
		Cells:   a.Rows(),
	}
}

// Aggregator restores a mergeable aggregator from an unfinalized join
// snapshot, rebuilding the hash family from the embedded seed. The
// returned aggregator takes ownership of the snapshot's cells.
func (s *Snapshot) Aggregator() (*core.Aggregator, error) {
	if s.Kind != SnapshotJoin {
		return nil, fmt.Errorf("%w: %s is not a join snapshot", ErrSnapshotMismatch, s.Fingerprint())
	}
	if s.Finalized {
		return nil, fmt.Errorf("%w: finalized snapshot cannot restore a mergeable aggregator", ErrSnapshotMismatch)
	}
	p := core.Params{K: s.K, M: s.M1, Epsilon: s.Epsilon}
	return core.RestoreAggregator(p, p.NewFamily(s.SeedA), s.Cells, s.N)
}

// SnapshotOfSketch wraps a finalized join sketch as a snapshot without
// copying (finalized sketches are immutable, so sharing rows is safe).
func SnapshotOfSketch(sk *core.Sketch) *Snapshot {
	p := sk.Params()
	rows := make([][]float64, p.K)
	for j := range rows {
		rows[j] = sk.Row(j)
	}
	return &Snapshot{
		Kind:      SnapshotJoin,
		Finalized: true,
		K:         p.K,
		M1:        p.M,
		Epsilon:   p.Epsilon,
		SeedA:     sk.Family().Seed(),
		N:         sk.N(),
		Cells:     rows,
	}
}

// Sketch restores a finalized sketch from a finalized join snapshot.
func (s *Snapshot) Sketch() (*core.Sketch, error) {
	if s.Kind != SnapshotJoin {
		return nil, fmt.Errorf("%w: %s is not a join snapshot", ErrSnapshotMismatch, s.Fingerprint())
	}
	if !s.Finalized {
		return nil, fmt.Errorf("%w: unfinalized snapshot cannot restore a finalized sketch", ErrSnapshotMismatch)
	}
	p := core.Params{K: s.K, M: s.M1, Epsilon: s.Epsilon}
	return core.RestoreSketch(p, p.NewFamily(s.SeedA), s.Cells, s.N)
}

// SnapshotOfMatrixAggregator wraps unfinalized middle-table state as a
// snapshot without copying. The aggregator must not be finalized, and
// must be quiescent until the snapshot is encoded.
func SnapshotOfMatrixAggregator(ma *core.MatrixAggregator) *Snapshot {
	if ma.Done() {
		panic("protocol: SnapshotOfMatrixAggregator after Finalize")
	}
	p := ma.Params()
	return &Snapshot{
		Kind:    SnapshotMatrix,
		K:       p.K,
		M1:      p.M1,
		M2:      p.M2,
		Epsilon: p.Epsilon,
		SeedA:   ma.FamilyA().Seed(),
		SeedB:   ma.FamilyB().Seed(),
		N:       ma.N(),
		Cells:   ma.Mats(),
	}
}

// MatrixAggregator restores a mergeable matrix aggregator from an
// unfinalized matrix snapshot.
func (s *Snapshot) MatrixAggregator() (*core.MatrixAggregator, error) {
	if s.Kind != SnapshotMatrix {
		return nil, fmt.Errorf("%w: %s is not a matrix snapshot", ErrSnapshotMismatch, s.Fingerprint())
	}
	if s.Finalized {
		return nil, fmt.Errorf("%w: finalized snapshot cannot restore a mergeable matrix aggregator", ErrSnapshotMismatch)
	}
	p := core.MatrixParams{K: s.K, M1: s.M1, M2: s.M2, Epsilon: s.Epsilon}
	famA := hashing.NewFamily(s.SeedA, p.K, p.M1)
	famB := hashing.NewFamily(s.SeedB, p.K, p.M2)
	return core.RestoreMatrixAggregator(p, famA, famB, s.Cells, s.N)
}

// SnapshotOfMatrixSketch wraps a finalized matrix sketch as a snapshot
// without copying.
func SnapshotOfMatrixSketch(ms *core.MatrixSketch) *Snapshot {
	p := ms.Params()
	mats := make([][]float64, p.K)
	for j := range mats {
		mats[j] = ms.Mat(j)
	}
	return &Snapshot{
		Kind:      SnapshotMatrix,
		Finalized: true,
		K:         p.K,
		M1:        p.M1,
		M2:        p.M2,
		Epsilon:   p.Epsilon,
		SeedA:     ms.FamilyA().Seed(),
		SeedB:     ms.FamilyB().Seed(),
		N:         ms.N(),
		Cells:     mats,
	}
}

// MatrixSketch restores a finalized matrix sketch from a finalized
// matrix snapshot.
func (s *Snapshot) MatrixSketch() (*core.MatrixSketch, error) {
	if s.Kind != SnapshotMatrix {
		return nil, fmt.Errorf("%w: %s is not a matrix snapshot", ErrSnapshotMismatch, s.Fingerprint())
	}
	if !s.Finalized {
		return nil, fmt.Errorf("%w: unfinalized snapshot cannot restore a finalized matrix sketch", ErrSnapshotMismatch)
	}
	p := core.MatrixParams{K: s.K, M1: s.M1, M2: s.M2, Epsilon: s.Epsilon}
	famA := hashing.NewFamily(s.SeedA, p.K, p.M1)
	famB := hashing.NewFamily(s.SeedB, p.K, p.M2)
	return core.RestoreMatrixSketch(p, famA, famB, s.Cells, s.N)
}
