package protocol

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"ldpjoin/internal/core"
)

func testRecords() [][2]any {
	return [][2]any{
		{RecordReports, AppendReportsPayload(nil, []core.Report{
			{Y: 1, Row: 0, Col: 0},
			{Y: -1, Row: 3, Col: 511},
			{Y: 1, Row: 8, Col: 42},
		})},
		{RecordMerge, []byte("not a real snapshot, framing does not care")},
		{RecordMatrixReports, AppendMatrixReportsPayload(nil, []core.MatrixReport{
			{Y: 1, Row: 0, L1: 0, L2: 0},
			{Y: -1, Row: 7, L1: 63, L2: 12},
		})},
		{RecordReports, []byte{}},
	}
}

func encodeTestLog() []byte {
	var buf []byte
	for _, rec := range testRecords() {
		buf = AppendRecord(buf, rec[0].(RecordType), rec[1].([]byte))
	}
	return buf
}

func TestRecordRoundTrip(t *testing.T) {
	log := encodeTestLog()
	r := bytes.NewReader(log)
	for i, want := range testRecords() {
		typ, payload, err := ReadRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if typ != want[0].(RecordType) {
			t.Fatalf("record %d: type %d, want %d", i, typ, want[0].(RecordType))
		}
		if !bytes.Equal(payload, want[1].([]byte)) {
			t.Fatalf("record %d: payload mismatch", i)
		}
	}
	if _, _, err := ReadRecord(r); err != io.EOF {
		t.Fatalf("end of log: got %v, want io.EOF", err)
	}
}

func TestRecordTornTail(t *testing.T) {
	log := encodeTestLog()
	// Every proper prefix that cuts into a record must surface as
	// ErrBadRecord (torn write), never as a clean EOF, a panic, or a
	// successful read of the cut record.
	whole := 0
	offsets := []int{0}
	r := bytes.NewReader(log)
	for {
		_, _, err := ReadRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		whole++
		offsets = append(offsets, len(log)-r.Len())
	}
	for cut := 0; cut < len(log); cut++ {
		r := bytes.NewReader(log[:cut])
		got := 0
		var err error
		for {
			_, _, err = ReadRecord(r)
			if err != nil {
				break
			}
			got++
		}
		wantWhole := 0
		for _, off := range offsets[1:] {
			if off <= cut {
				wantWhole++
			}
		}
		if got != wantWhole {
			t.Fatalf("cut at %d: read %d whole records, want %d", cut, got, wantWhole)
		}
		atBoundary := false
		for _, off := range offsets {
			if off == cut {
				atBoundary = true
			}
		}
		if atBoundary && err != io.EOF {
			t.Fatalf("cut at record boundary %d: got %v, want io.EOF", cut, err)
		}
		if !atBoundary && !errors.Is(err, ErrBadRecord) {
			t.Fatalf("cut mid-record at %d: got %v, want ErrBadRecord", cut, err)
		}
	}
	if whole != len(testRecords()) {
		t.Fatalf("read %d whole records, want %d", whole, len(testRecords()))
	}
}

func TestRecordRejectsCorruption(t *testing.T) {
	log := encodeTestLog()
	// Flipping any single byte of the first record must fail its read:
	// the CRC covers length, type, and payload.
	firstLen := recordHeaderSize + len(testRecords()[0][1].([]byte)) + recordTrailerSize
	for i := 0; i < firstLen; i++ {
		mut := bytes.Clone(log)
		mut[i] ^= 0x40
		_, _, err := ReadRecord(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flipping byte %d was not detected", i)
		}
	}
}

func TestRecordRejectsOversizeAndUnknownType(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xff, byte(RecordReports), 0, 0, 0, 0}
	if _, _, err := ReadRecord(bytes.NewReader(huge)); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("oversize length: got %v, want ErrBadRecord", err)
	}
	unknown := AppendRecord(nil, RecordType(99), nil)
	if _, _, err := ReadRecord(bytes.NewReader(unknown)); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("unknown type: got %v, want ErrBadRecord", err)
	}
}

func TestDecodeReportsPayload(t *testing.T) {
	p := core.Params{K: 9, M: 512, Epsilon: 4}
	in := []core.Report{{Y: 1, Row: 8, Col: 511}, {Y: -1, Row: 0, Col: 0}}
	out, err := DecodeReportsPayload(AppendReportsPayload(nil, in), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mismatch: %v vs %v", out, in)
	}
	if _, err := DecodeReportsPayload([]byte{1, 2, 3}, p); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("ragged payload: got %v, want ErrBadRecord", err)
	}
	oob := AppendReportsPayload(nil, []core.Report{{Y: 1, Row: 9, Col: 0}})
	if _, err := DecodeReportsPayload(oob, p); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("out-of-bounds report: got %v, want ErrBadRecord", err)
	}
}

func TestDecodeMatrixReportsPayload(t *testing.T) {
	p := core.MatrixParams{K: 8, M1: 64, M2: 32, Epsilon: 4}
	in := []core.MatrixReport{{Y: 1, Row: 7, L1: 63, L2: 31}, {Y: -1, Row: 0, L1: 0, L2: 0}}
	out, err := DecodeMatrixReportsPayload(AppendMatrixReportsPayload(nil, in), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mismatch: %v vs %v", out, in)
	}
	if _, err := DecodeMatrixReportsPayload([]byte{1, 2, 3}, p); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("ragged payload: got %v, want ErrBadRecord", err)
	}
	for _, oob := range []core.MatrixReport{
		{Y: 1, Row: 8, L1: 0, L2: 0},
		{Y: 1, Row: 0, L1: 64, L2: 0},
		{Y: 1, Row: 0, L1: 0, L2: 32},
	} {
		payload := AppendMatrixReportsPayload(nil, []core.MatrixReport{oob})
		if _, err := DecodeMatrixReportsPayload(payload, p); !errors.Is(err, ErrBadRecord) {
			t.Fatalf("out-of-bounds report %v: got %v, want ErrBadRecord", oob, err)
		}
	}
}

// FuzzMatrixReportsPayload drives the matrix WAL payload decoder over
// arbitrary bytes: it must never panic, must reject anything that is not
// whole in-bounds reports, and must be canonical — re-encoding an
// accepted payload reproduces the input bit for bit.
func FuzzMatrixReportsPayload(f *testing.F) {
	p := core.MatrixParams{K: 8, M1: 64, M2: 32, Epsilon: 4}
	f.Add(AppendMatrixReportsPayload(nil, []core.MatrixReport{
		{Y: 1, Row: 0, L1: 0, L2: 0},
		{Y: -1, Row: 7, L1: 63, L2: 31},
	}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, MatrixReportSize))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		reports, err := DecodeMatrixReportsPayload(data, p)
		if err != nil {
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		for i, r := range reports {
			if (r.Y != 1 && r.Y != -1) || int(r.Row) >= p.K || int(r.L1) >= p.M1 || int(r.L2) >= p.M2 {
				t.Fatalf("accepted out-of-bounds report %d: %v", i, r)
			}
		}
		if !bytes.Equal(AppendMatrixReportsPayload(nil, reports), data) {
			t.Fatal("accepted payload is not canonical")
		}
	})
}

// FuzzWALRecord drives the record reader over arbitrary bytes: it must
// never panic, must consume exactly the framed length of every record
// it accepts, and must be canonical — re-encoding an accepted record
// reproduces the consumed bytes bit for bit.
func FuzzWALRecord(f *testing.F) {
	f.Add(encodeTestLog())
	f.Add(AppendRecord(nil, RecordMerge, bytes.Repeat([]byte{0xab}, 100)))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 1, 1})
	log := encodeTestLog()
	f.Add(log[:len(log)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			off := len(data) - r.Len()
			typ, payload, err := ReadRecord(r)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrBadRecord) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			consumed := data[off : off+RecordOverhead+len(payload)]
			if !bytes.Equal(AppendRecord(nil, typ, payload), consumed) {
				t.Fatalf("record at %d is not canonical", off)
			}
		}
	})
}
