// WAL record framing: the on-disk unit of the durable column store
// (internal/store). A write-ahead log is a sequence of self-delimiting,
// integrity-checked records; each record carries one durable event of a
// collecting column — a batch of accepted join or matrix reports in the
// wire formats above, or a SNAP snapshot folded in from another
// collector.
//
//	record (all integers big-endian):
//	  length u32 (payload bytes) | type u8 | payload | crc32 (IEEE) u32
//
// The CRC covers length, type, and payload, so a torn length field is
// caught just like a torn payload. The framing is deliberately
// tail-fragile and body-strict: a reader distinguishes only "clean end
// of log" (io.EOF before the first header byte) from "bad record"
// (ErrBadRecord for everything else — short header, unknown type,
// oversize length, short payload, checksum mismatch). The store treats
// a bad record at the tail of the last segment as a torn write left by
// a crash — it truncates the segment to the last whole record and keeps
// going — and a bad record anywhere else as real corruption. Like the
// snapshot codec, the encoding is canonical: re-encoding an accepted
// record reproduces the consumed bytes exactly (FuzzWALRecord).
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"ldpjoin/internal/core"
)

// RecordType discriminates WAL records.
type RecordType uint8

const (
	// RecordReports carries accepted join reports: length/7 wire-format
	// reports (7 bytes each, see AppendReport) back to back.
	RecordReports RecordType = 1
	// RecordMerge carries one SNAP-encoded unfinalized snapshot that was
	// merged into the column (POST /merge). The snapshot's own kind byte
	// says whether it is join or matrix state.
	RecordMerge RecordType = 2
	// RecordMatrixReports carries accepted matrix (middle-table) reports:
	// length/11 wire-format reports (11 bytes each, see
	// AppendMatrixReport) back to back.
	RecordMatrixReports RecordType = 3
	// RecordPlusReports carries accepted phase-tagged reports of a plus
	// column: one PlusGroup byte, then (length-1)/7 wire-format join
	// reports back to back.
	RecordPlusReports RecordType = 4
	// RecordPlusAdvance marks a plus column's phase boundary: the
	// advance parameters and the frozen frequent-item set (Algorithm 3,
	// end of phase 1). Replaying it restores the exact FI phase 2 was
	// keyed by, independent of the phase-1 aggregate it was computed
	// from.
	RecordPlusAdvance RecordType = 5
)

// MaxPlusFI bounds the frequent-item set a RecordPlusAdvance payload
// (or a PSNP snapshot) may carry. θ > 0 already bounds |FI| by 1/θ per
// side in any honest run; the cap keeps a corrupt count field from
// allocating gigabytes before validation.
const MaxPlusFI = 1 << 20

// MaxRecordPayload bounds a record's payload. It exists so a torn or
// hostile length field cannot make a replayer allocate gigabytes before
// the checksum has had a chance to reject the record; writers split
// larger events across records (report batches split trivially) or
// refuse them (a snapshot above the bound has no valid split). The
// bound must admit one whole matrix snapshot — the largest unsplittable
// event — at realistic parameters: the default deployment (k=18,
// m=1024) encodes to ~151 MiB, hence 256 MiB.
const MaxRecordPayload = 1 << 28 // 256 MiB

// recordHeaderSize is length u32 + type u8.
const recordHeaderSize = 5

// recordTrailerSize is the CRC32 trailer.
const recordTrailerSize = 4

// RecordOverhead is the framing cost per record beyond the payload.
const RecordOverhead = recordHeaderSize + recordTrailerSize

// ErrBadRecord is returned for any byte sequence that is not a whole,
// checksummed WAL record: a torn tail and real corruption both surface
// as this error — where in the log it happened decides which it is.
var ErrBadRecord = errors.New("protocol: bad WAL record")

// AppendRecord frames payload as one WAL record and appends it to buf.
// The payload must not exceed MaxRecordPayload (the writer's bug if it
// does, hence the panic).
func AppendRecord(buf []byte, typ RecordType, payload []byte) []byte {
	if len(payload) > MaxRecordPayload {
		panic(fmt.Sprintf("protocol: WAL record payload %d exceeds %d bytes", len(payload), MaxRecordPayload))
	}
	start := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, byte(typ))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	return buf
}

// ReadRecord reads one record from r. It returns io.EOF at the clean
// end of the log (no header byte left) and an error wrapping
// ErrBadRecord for anything that is not a whole valid record. On
// success the record consumed exactly RecordOverhead+len(payload)
// bytes; the returned payload is freshly allocated and owned by the
// caller.
func ReadRecord(r io.Reader) (RecordType, []byte, error) {
	var hdr [recordHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: torn header: %v", ErrBadRecord, err)
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	typ := RecordType(hdr[4])
	if length > MaxRecordPayload {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadRecord, length, MaxRecordPayload)
	}
	if typ < RecordReports || typ > RecordPlusAdvance {
		return 0, nil, fmt.Errorf("%w: unknown record type %d", ErrBadRecord, typ)
	}
	rest := make([]byte, int(length)+recordTrailerSize)
	if _, err := io.ReadFull(r, rest); err != nil {
		return 0, nil, fmt.Errorf("%w: torn payload: %v", ErrBadRecord, err)
	}
	payload, trailer := rest[:length], rest[length:]
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if want := binary.BigEndian.Uint32(trailer); crc != want {
		return 0, nil, fmt.Errorf("%w: checksum mismatch (computed %08x, stored %08x)", ErrBadRecord, crc, want)
	}
	return typ, payload, nil
}

// AppendReportsPayload encodes a batch of reports as a RecordReports
// payload: the same 7-byte wire encoding the report streams use.
func AppendReportsPayload(buf []byte, reports []core.Report) []byte {
	for _, r := range reports {
		buf = AppendReport(buf, r)
	}
	return buf
}

// DecodeReportsPayload decodes a RecordReports payload, bounds-checking
// every report against the expected parameters exactly like the stream
// decoder — a corrupted-but-checksum-valid log (or a log written under
// other parameters) surfaces as an error, never as out-of-range state
// in a sketch. Payloads of up to DefaultBatchSize reports — the size
// the ingest path writes, so the common case during WAL replay — decode
// into a pooled batch the caller may recycle with PutReportBatch.
func DecodeReportsPayload(payload []byte, expect core.Params) ([]core.Report, error) {
	if len(payload)%ReportSize != 0 {
		return nil, fmt.Errorf("%w: reports payload of %d bytes is not a multiple of %d", ErrBadRecord, len(payload), ReportSize)
	}
	var reports []core.Report
	if n := len(payload) / ReportSize; n <= DefaultBatchSize {
		reports = GetReportBatch()
	} else {
		reports = make([]core.Report, 0, n)
	}
	for off := 0; off < len(payload); off += ReportSize {
		rep, err := DecodeReport(payload[off : off+ReportSize])
		if err != nil {
			n := len(reports)
			PutReportBatch(reports)
			return nil, fmt.Errorf("%w: report %d: %v", ErrBadRecord, n, err)
		}
		if int(rep.Row) >= expect.K || int(rep.Col) >= expect.M {
			n := len(reports)
			PutReportBatch(reports)
			return nil, fmt.Errorf("%w: report %d indices (%d,%d) out of sketch bounds (%d,%d)",
				ErrBadRecord, n, rep.Row, rep.Col, expect.K, expect.M)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// AppendPlusReportsPayload encodes a batch of phase-tagged reports as a
// RecordPlusReports payload: the PlusGroup byte, then the same 7-byte
// wire encoding the report streams use.
func AppendPlusReportsPayload(buf []byte, group PlusGroup, reports []core.Report) []byte {
	buf = append(buf, byte(group))
	return AppendReportsPayload(buf, reports)
}

// DecodePlusReportsPayload decodes a RecordPlusReports payload,
// bounds-checking the group byte and every report against the expected
// parameters exactly like the stream decoder.
func DecodePlusReportsPayload(payload []byte, expect core.Params) (PlusGroup, []core.Report, error) {
	if len(payload) < 1 {
		return 0, nil, fmt.Errorf("%w: empty plus reports payload", ErrBadRecord)
	}
	group := PlusGroup(payload[0])
	if group > PlusHigh {
		return 0, nil, fmt.Errorf("%w: invalid plus group %d", ErrBadRecord, group)
	}
	reports, err := DecodeReportsPayload(payload[1:], expect)
	if err != nil {
		return 0, nil, err
	}
	return group, reports, nil
}

// AppendPlusAdvancePayload encodes a RecordPlusAdvance payload:
//
//	domain u64 | theta f64 | count u32 | fi u64 × count
//
// fi must be sorted strictly ascending — the canonical form every
// layer stores FI in.
func AppendPlusAdvancePayload(buf []byte, domain uint64, theta float64, fi []uint64) []byte {
	buf = binary.BigEndian.AppendUint64(buf, domain)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(theta))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(fi)))
	for _, d := range fi {
		buf = binary.BigEndian.AppendUint64(buf, d)
	}
	return buf
}

// DecodePlusAdvancePayload decodes and validates a RecordPlusAdvance
// payload: θ must lie in (0,1), the FI count within MaxPlusFI, and the
// items strictly ascending and below the domain.
func DecodePlusAdvancePayload(payload []byte) (domain uint64, theta float64, fi []uint64, err error) {
	if len(payload) < 20 {
		return 0, 0, nil, fmt.Errorf("%w: plus advance payload of %d bytes is too short", ErrBadRecord, len(payload))
	}
	domain = binary.BigEndian.Uint64(payload[0:8])
	theta = math.Float64frombits(binary.BigEndian.Uint64(payload[8:16]))
	count := binary.BigEndian.Uint32(payload[16:20])
	if domain == 0 {
		return 0, 0, nil, fmt.Errorf("%w: plus advance domain must be positive", ErrBadRecord)
	}
	if !(theta > 0 && theta < 1) {
		return 0, 0, nil, fmt.Errorf("%w: plus advance theta %v outside (0,1)", ErrBadRecord, theta)
	}
	if count > MaxPlusFI {
		return 0, 0, nil, fmt.Errorf("%w: plus advance FI count %d exceeds %d", ErrBadRecord, count, MaxPlusFI)
	}
	if len(payload) != 20+8*int(count) {
		return 0, 0, nil, fmt.Errorf("%w: plus advance payload of %d bytes does not match FI count %d", ErrBadRecord, len(payload), count)
	}
	fi = make([]uint64, count)
	for i := range fi {
		fi[i] = binary.BigEndian.Uint64(payload[20+8*i:])
		if fi[i] >= domain {
			return 0, 0, nil, fmt.Errorf("%w: frequent item %d outside domain %d", ErrBadRecord, fi[i], domain)
		}
		if i > 0 && fi[i] <= fi[i-1] {
			return 0, 0, nil, fmt.Errorf("%w: frequent items not strictly ascending at index %d", ErrBadRecord, i)
		}
	}
	return domain, theta, fi, nil
}

// AppendMatrixReportsPayload encodes a batch of matrix reports as a
// RecordMatrixReports payload: the same 11-byte wire encoding the
// KindMatrix report streams use.
func AppendMatrixReportsPayload(buf []byte, reports []core.MatrixReport) []byte {
	for _, r := range reports {
		buf = AppendMatrixReport(buf, r)
	}
	return buf
}

// DecodeMatrixReportsPayload decodes a RecordMatrixReports payload,
// bounds-checking every report against the expected matrix parameters
// exactly like the stream decoder. Payloads of up to DefaultBatchSize
// reports decode into a pooled batch the caller may recycle with
// PutMatrixBatch.
func DecodeMatrixReportsPayload(payload []byte, expect core.MatrixParams) ([]core.MatrixReport, error) {
	if len(payload)%MatrixReportSize != 0 {
		return nil, fmt.Errorf("%w: matrix reports payload of %d bytes is not a multiple of %d", ErrBadRecord, len(payload), MatrixReportSize)
	}
	var reports []core.MatrixReport
	if n := len(payload) / MatrixReportSize; n <= DefaultBatchSize {
		reports = GetMatrixBatch()
	} else {
		reports = make([]core.MatrixReport, 0, n)
	}
	for off := 0; off < len(payload); off += MatrixReportSize {
		rep, err := DecodeMatrixReport(payload[off : off+MatrixReportSize])
		if err != nil {
			n := len(reports)
			PutMatrixBatch(reports)
			return nil, fmt.Errorf("%w: matrix report %d: %v", ErrBadRecord, n, err)
		}
		if int(rep.Row) >= expect.K || int(rep.L1) >= expect.M1 || int(rep.L2) >= expect.M2 {
			n := len(reports)
			PutMatrixBatch(reports)
			return nil, fmt.Errorf("%w: matrix report %d indices (%d,%d,%d) out of sketch bounds (%d,%d,%d)",
				ErrBadRecord, n, rep.Row, rep.L1, rep.L2, expect.K, expect.M1, expect.M2)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
