package protocol

import (
	"bytes"
	"math/rand"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
)

func TestMatrixStreamRoundTrip(t *testing.T) {
	p := core.MatrixParams{K: 4, M1: 64, M2: 32, Epsilon: 2}
	famA := hashing.NewFamily(1, p.K, p.M1)
	famB := hashing.NewFamily(2, p.K, p.M2)
	var buf bytes.Buffer
	w, err := NewMatrixReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	want := make([]core.MatrixReport, 3000)
	for i := range want {
		want[i] = core.PerturbTuple(uint64(i%50), uint64(i%37), p, famA, famB, rng)
		if err := w.Write(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []core.MatrixReport
	h, n, err := ReadMatrixStream(&buf, p, func(r core.MatrixReport) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != KindMatrix || h.M2 != 32 || n != len(want) {
		t.Fatalf("header %+v, n=%d", h, n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("report %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMatrixStreamParamMismatch(t *testing.T) {
	p := core.MatrixParams{K: 2, M1: 16, M2: 16, Epsilon: 1}
	var buf bytes.Buffer
	w, err := NewMatrixReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	other := p
	other.M2 = 32
	if _, _, err := ReadMatrixStream(&buf, other, func(core.MatrixReport) {}); err == nil {
		t.Fatal("expected param mismatch error")
	}
}

func TestMatrixStreamRejectsJoinStream(t *testing.T) {
	var buf bytes.Buffer
	jw, err := NewReportWriter(&buf, core.Params{K: 2, M: 16, Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	p := core.MatrixParams{K: 2, M1: 16, M2: 16, Epsilon: 1}
	if _, _, err := ReadMatrixStream(&buf, p, func(core.MatrixReport) {}); err == nil {
		t.Fatal("expected kind error")
	}
}

func TestMatrixStreamOutOfBoundsReport(t *testing.T) {
	p := core.MatrixParams{K: 2, M1: 16, M2: 16, Epsilon: 1}
	var buf bytes.Buffer
	w, err := NewMatrixReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(core.MatrixReport{Y: 1, Row: 9, L1: 0, L2: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadMatrixStream(&buf, p, func(core.MatrixReport) {}); err == nil {
		t.Fatal("expected bounds error")
	}
}

// TestCorruptStreamsNeverPanic injects random corruption into valid
// streams: the reader must fail cleanly (error, not panic) or, when the
// corruption happens to keep every field in range, decode something —
// but never crash.
func TestCorruptStreamsNeverPanic(t *testing.T) {
	p := core.Params{K: 4, M: 64, Epsilon: 2}
	fam := hashing.NewFamily(1, p.K, p.M)
	var pristine bytes.Buffer
	w, err := NewReportWriter(&pristine, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		if err := w.Write(core.Perturb(uint64(i), p, fam, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	base := pristine.Bytes()

	for trial := 0; trial < 500; trial++ {
		corrupted := append([]byte(nil), base...)
		// Flip 1-4 random bytes and truncate sometimes.
		for f := 0; f <= rng.Intn(4); f++ {
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		}
		if rng.Intn(3) == 0 {
			corrupted = corrupted[:rng.Intn(len(corrupted))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: reader panicked: %v", trial, r)
				}
			}()
			_, _, _ = ReadStream(bytes.NewReader(corrupted), p, func(core.Report) {})
		}()
	}
}
