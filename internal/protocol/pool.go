package protocol

import (
	"sync"

	"ldpjoin/internal/core"
)

// Batch pooling for the ingest hot path. Every report that enters the
// system rides a []core.Report (or []core.MatrixReport) batch from the
// stream decoder through the WAL append and into a fold worker, after
// which the batch is garbage — at DefaultBatchSize that is ~28 KiB of
// allocation per 4096 reports, all of it with an obvious lifetime. The
// pools below recycle those batches: decoders draw from the pool, the
// fold workers (the single point where a batch dies) put them back.
//
// Put only accepts batches with capacity exactly DefaultBatchSize. That
// is not just a size filter — it is the aliasing guard that makes
// recycling safe with the recovery path, which decodes one WAL payload
// into a single slice and re-batches it by sub-slicing. A sub-slice
// s[a:b] of a larger decode has capacity cap(s)−a > DefaultBatchSize
// for every chunk but the last, so it is rejected; the last chunk's
// region [a, cap) extends to the end of the backing array and overlaps
// no other chunk, so append-style reuse (which writes only within
// [a, a+cap)) can never scribble on another live batch's cells.

var reportBatchPool = sync.Pool{
	New: func() any {
		b := make([]core.Report, 0, DefaultBatchSize)
		return &b
	},
}

var matrixBatchPool = sync.Pool{
	New: func() any {
		b := make([]core.MatrixReport, 0, DefaultBatchSize)
		return &b
	},
}

// GetReportBatch returns an empty report batch with capacity
// DefaultBatchSize, recycled when one is available.
//
//ldpjoin:hotpath
func GetReportBatch() []core.Report {
	return (*reportBatchPool.Get().(*[]core.Report))[:0]
}

// PutReportBatch recycles a batch obtained from GetReportBatch (or any
// slice whose capacity is exactly DefaultBatchSize — see the aliasing
// analysis above). The caller must not touch b afterwards. Batches of
// any other capacity are dropped for the garbage collector.
func PutReportBatch(b []core.Report) {
	if cap(b) != DefaultBatchSize {
		return
	}
	b = b[:0]
	reportBatchPool.Put(&b)
}

// GetMatrixBatch returns an empty matrix-report batch with capacity
// DefaultBatchSize, recycled when one is available.
//
//ldpjoin:hotpath
func GetMatrixBatch() []core.MatrixReport {
	return (*matrixBatchPool.Get().(*[]core.MatrixReport))[:0]
}

// PutMatrixBatch recycles a batch obtained from GetMatrixBatch, under
// the same capacity guard as PutReportBatch.
func PutMatrixBatch(b []core.MatrixReport) {
	if cap(b) != DefaultBatchSize {
		return
	}
	b = b[:0]
	matrixBatchPool.Put(&b)
}
