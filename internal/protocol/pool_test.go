package protocol

import (
	"testing"

	"ldpjoin/internal/core"
)

// TestReportBatchPoolInvariant: whatever is Put, Get must always hand
// out an empty batch with exactly DefaultBatchSize capacity — the
// invariant the ingest folds and the recovery re-batcher rely on.
func TestReportBatchPoolInvariant(t *testing.T) {
	// Feed the pool legitimate, undersized, and oversized batches.
	PutReportBatch(GetReportBatch()[:17])
	PutReportBatch(make([]core.Report, 0, 10))
	PutReportBatch(make([]core.Report, 2*DefaultBatchSize))
	big := make([]core.Report, 3*DefaultBatchSize)
	PutReportBatch(big[:DefaultBatchSize]) // cap 3·B — rejected
	//ldpjoinvet:ignore poolown deliberate reuse: the wrong-capacity Put above was rejected, and the tail exercises the cap==B acceptance path
	PutReportBatch(big[2*DefaultBatchSize:])         // tail, cap exactly B — accepted
	PutMatrixBatch(make([]core.MatrixReport, 0, 10)) // wrong-capacity matrix
	PutMatrixBatch(GetMatrixBatch()[:1])

	for i := 0; i < 16; i++ {
		if b := GetReportBatch(); len(b) != 0 || cap(b) != DefaultBatchSize {
			t.Fatalf("GetReportBatch: len=%d cap=%d, want 0/%d", len(b), cap(b), DefaultBatchSize)
		}
		if b := GetMatrixBatch(); len(b) != 0 || cap(b) != DefaultBatchSize {
			t.Fatalf("GetMatrixBatch: len=%d cap=%d, want 0/%d", len(b), cap(b), DefaultBatchSize)
		}
	}
}
