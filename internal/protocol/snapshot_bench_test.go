package protocol

import (
	"testing"

	"ldpjoin/internal/core"
)

// benchAggregator builds paper-default-sized unfinalized state (k=18,
// m=1024): the snapshot a production collector exports per column.
func benchAggregator(b *testing.B) *core.Aggregator {
	b.Helper()
	p := core.Params{K: 18, M: 1024, Epsilon: 4}
	agg := core.NewAggregator(p, p.NewFamily(1))
	for i := 0; i < 100000; i++ {
		agg.Add(core.Report{Y: int8(1 - 2*(i%2)), Row: uint32(i % p.K), Col: uint32((i * 7) % p.M)})
	}
	return agg
}

func BenchmarkSnapshotEncode(b *testing.B) {
	snap := SnapshotOfAggregator(benchAggregator(b))
	data, err := EncodeSnapshot(snap)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotDecode(b *testing.B) {
	data, err := EncodeSnapshot(SnapshotOfAggregator(benchAggregator(b)))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSnapshot(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotMerge measures the federator's hot loop: restoring a
// snapshot and folding it into accumulated state.
func BenchmarkSnapshotMerge(b *testing.B) {
	agg := benchAggregator(b)
	data, err := EncodeSnapshot(SnapshotOfAggregator(agg))
	if err != nil {
		b.Fatal(err)
	}
	p := agg.Params()
	total := core.NewAggregator(p, p.NewFamily(1))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			b.Fatal(err)
		}
		part, err := snap.Aggregator()
		if err != nil {
			b.Fatal(err)
		}
		total.Merge(part)
	}
}
