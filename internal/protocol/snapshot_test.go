package protocol

import (
	"bytes"
	"errors"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ldpjoin/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden snapshot files in testdata")

func snapParams() core.Params { return core.Params{K: 4, M: 16, Epsilon: 2} }

// testAggregator builds a deterministic unfinalized aggregator: the
// report positions and signs are a fixed function of i, independent of
// any PRNG, so golden bytes never drift.
func testAggregator(t *testing.T) *core.Aggregator {
	t.Helper()
	p := snapParams()
	agg := core.NewAggregator(p, p.NewFamily(7))
	for i := 0; i < 200; i++ {
		y := int8(1)
		if i%3 == 0 {
			y = -1
		}
		agg.Add(core.Report{Y: y, Row: uint32(i % p.K), Col: uint32((i * 5) % p.M)})
	}
	return agg
}

func testMatrixAggregator(t *testing.T) *core.MatrixAggregator {
	t.Helper()
	p := core.MatrixParams{K: 3, M1: 8, M2: 4, Epsilon: 2}
	famA := core.Params{K: p.K, M: p.M1, Epsilon: p.Epsilon}.NewFamily(11)
	famB := core.Params{K: p.K, M: p.M2, Epsilon: p.Epsilon}.NewFamily(13)
	ma := core.NewMatrixAggregator(p, famA, famB)
	for i := 0; i < 150; i++ {
		y := int8(1)
		if i%4 == 0 {
			y = -1
		}
		ma.Add(core.MatrixReport{
			Y:   y,
			Row: uint32(i % p.K),
			L1:  uint32((i * 3) % p.M1),
			L2:  uint32((i * 7) % p.M2),
		})
	}
	return ma
}

func encode(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	data, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	return data
}

func decode(t *testing.T, data []byte) *Snapshot {
	t.Helper()
	s, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	return s
}

func TestSnapshotRoundTripAggregator(t *testing.T) {
	agg := testAggregator(t)
	wantRows := make([][]float64, len(agg.Rows()))
	for j, row := range agg.Rows() {
		wantRows[j] = append([]float64(nil), row...)
	}

	data := encode(t, SnapshotOfAggregator(agg))
	restored, err := decode(t, data).Aggregator()
	if err != nil {
		t.Fatalf("restoring aggregator: %v", err)
	}
	if restored.N() != agg.N() {
		t.Fatalf("restored N = %v, want %v", restored.N(), agg.N())
	}
	if restored.Family().Seed() != agg.Family().Seed() {
		t.Fatalf("restored seed = %d, want %d", restored.Family().Seed(), agg.Family().Seed())
	}
	for j, row := range restored.Rows() {
		for x, v := range row {
			if v != wantRows[j][x] {
				t.Fatalf("restored cell [%d,%d] = %v, want %v", j, x, v, wantRows[j][x])
			}
		}
	}
	// The restored aggregator is mergeable and finalizes identically.
	skA := agg.Finalize()
	skB := restored.Finalize()
	a, _ := skA.MarshalBinary()
	b, _ := skB.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("restored aggregator finalizes differently from the original")
	}
}

func TestSnapshotRoundTripSketch(t *testing.T) {
	sk := testAggregator(t).Finalize()
	data := encode(t, SnapshotOfSketch(sk))
	restored, err := decode(t, data).Sketch()
	if err != nil {
		t.Fatalf("restoring sketch: %v", err)
	}
	a, _ := sk.MarshalBinary()
	b, _ := restored.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("restored sketch differs from the original")
	}
}

func TestSnapshotRoundTripMatrixAggregator(t *testing.T) {
	ma := testMatrixAggregator(t)
	wantMats := make([][]float64, len(ma.Mats()))
	for j, mat := range ma.Mats() {
		wantMats[j] = append([]float64(nil), mat...)
	}

	data := encode(t, SnapshotOfMatrixAggregator(ma))
	restored, err := decode(t, data).MatrixAggregator()
	if err != nil {
		t.Fatalf("restoring matrix aggregator: %v", err)
	}
	if restored.N() != ma.N() {
		t.Fatalf("restored N = %v, want %v", restored.N(), ma.N())
	}
	for j, mat := range restored.Mats() {
		for i, v := range mat {
			if v != wantMats[j][i] {
				t.Fatalf("restored cell [%d,%d] = %v, want %v", j, i, v, wantMats[j][i])
			}
		}
	}
	// Finalize both and compare every replica.
	msA := ma.Finalize()
	msB := restored.Finalize()
	for j := 0; j < msA.K(); j++ {
		a, b := msA.Mat(j), msB.Mat(j)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("finalized replica %d cell %d: %v vs %v", j, i, a[i], b[i])
			}
		}
	}
}

func TestSnapshotRoundTripMatrixSketch(t *testing.T) {
	ms := testMatrixAggregator(t).Finalize()
	data := encode(t, SnapshotOfMatrixSketch(ms))
	restored, err := decode(t, data).MatrixSketch()
	if err != nil {
		t.Fatalf("restoring matrix sketch: %v", err)
	}
	if restored.N() != ms.N() {
		t.Fatalf("restored N = %v, want %v", restored.N(), ms.N())
	}
	for j := 0; j < ms.K(); j++ {
		a, b := ms.Mat(j), restored.Mat(j)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("replica %d cell %d: %v vs %v", j, i, a[i], b[i])
			}
		}
	}
}

// TestSnapshotMergeMatchesUnion is the codec-level statement of the
// federation guarantee: two half-population aggregators shipped through
// snapshots and merged finalize byte-identically to one aggregator that
// ingested the whole stream.
func TestSnapshotMergeMatchesUnion(t *testing.T) {
	p := snapParams()
	fam := p.NewFamily(7)
	rng := rand.New(rand.NewSource(99))
	reports := make([]core.Report, 4000)
	for i := range reports {
		reports[i] = core.Perturb(uint64(rng.Intn(50)), p, fam, rng)
	}

	union := core.NewAggregator(p, fam)
	half1 := core.NewAggregator(p, fam)
	half2 := core.NewAggregator(p, fam)
	for i, r := range reports {
		union.Add(r)
		if i < len(reports)/2 {
			half1.Add(r)
		} else {
			half2.Add(r)
		}
	}

	// Ship both halves through the codec, restore, merge, finalize.
	r1, err := decode(t, encode(t, SnapshotOfAggregator(half1))).Aggregator()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := decode(t, encode(t, SnapshotOfAggregator(half2))).Aggregator()
	if err != nil {
		t.Fatal(err)
	}
	r1.Merge(r2)
	merged, _ := r1.Finalize().MarshalBinary()
	single, _ := union.Finalize().MarshalBinary()
	if !bytes.Equal(merged, single) {
		t.Fatal("merged snapshot halves do not reproduce single-node aggregation byte-for-byte")
	}
}

func TestSnapshotCanonicalEncoding(t *testing.T) {
	data := encode(t, SnapshotOfAggregator(testAggregator(t)))
	re := encode(t, decode(t, data))
	if !bytes.Equal(data, re) {
		t.Fatal("encode(decode(data)) != data: encoding is not canonical")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	data := encode(t, SnapshotOfAggregator(testAggregator(t)))
	// Any single corrupted byte must be rejected (CRC32 detects all
	// bursts up to 32 bits).
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("corrupting byte %d went undetected", i)
		}
	}
	// Every truncation must be rejected.
	for n := 0; n < len(data); n += 7 {
		if _, err := DecodeSnapshot(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
	// Trailing garbage must be rejected.
	if _, err := DecodeSnapshot(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing garbage went undetected")
	}
}

func TestSnapshotConfigMismatch(t *testing.T) {
	p := snapParams()
	snap := decode(t, encode(t, SnapshotOfAggregator(testAggregator(t))))

	if err := snap.CompatibleWithJoin(p, 7); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}
	cases := []struct {
		name string
		p    core.Params
		seed int64
	}{
		{"k", core.Params{K: p.K + 1, M: p.M, Epsilon: p.Epsilon}, 7},
		{"m", core.Params{K: p.K, M: 2 * p.M, Epsilon: p.Epsilon}, 7},
		{"epsilon", core.Params{K: p.K, M: p.M, Epsilon: p.Epsilon + 1}, 7},
		{"seed", p, 8},
	}
	for _, tc := range cases {
		if err := snap.CompatibleWithJoin(tc.p, tc.seed); !errors.Is(err, ErrSnapshotMismatch) {
			t.Errorf("%s mismatch: got %v, want ErrSnapshotMismatch", tc.name, err)
		}
	}
	if err := snap.CompatibleWithMatrix(core.MatrixParams{K: p.K, M1: p.M, M2: p.M, Epsilon: p.Epsilon}, 7, 7); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("join snapshot accepted as matrix: %v", err)
	}
}

func TestSnapshotFormMismatch(t *testing.T) {
	unfin := decode(t, encode(t, SnapshotOfAggregator(testAggregator(t))))
	if _, err := unfin.Sketch(); err == nil {
		t.Error("unfinalized snapshot restored as finalized sketch")
	}
	fin := decode(t, encode(t, SnapshotOfSketch(testAggregator(t).Finalize())))
	if _, err := fin.Aggregator(); err == nil {
		t.Error("finalized snapshot restored as mergeable aggregator")
	}
	if _, err := fin.MatrixAggregator(); err == nil {
		t.Error("join snapshot restored as matrix aggregator")
	}
}

func TestSnapshotValidateRejectsBadState(t *testing.T) {
	good := SnapshotOfAggregator(testAggregator(t))
	check := func(name string, mutate func(s *Snapshot)) {
		s := *good
		s.Cells = make([][]float64, len(good.Cells))
		for j, row := range good.Cells {
			s.Cells[j] = append([]float64(nil), row...)
		}
		mutate(&s)
		if _, err := EncodeSnapshot(&s); err == nil {
			t.Errorf("%s: encode accepted invalid snapshot", name)
		}
	}
	check("nan cell", func(s *Snapshot) { s.Cells[0][0] = math.NaN() })
	check("inf cell", func(s *Snapshot) { s.Cells[1][2] = math.Inf(1) })
	check("negative n", func(s *Snapshot) { s.N = -1 })
	check("nan n", func(s *Snapshot) { s.N = math.NaN() })
	check("inf n", func(s *Snapshot) { s.N = math.Inf(1) })
	check("n beyond 2^53", func(s *Snapshot) { s.N = 1e300 })
	check("unfinalized fractional cell", func(s *Snapshot) { s.Cells[0][1] = 0.5 })
	check("unfinalized cell beyond n", func(s *Snapshot) { s.Cells[0][1] = s.N + 1 })
	check("unfinalized cell beyond -n", func(s *Snapshot) { s.Cells[0][1] = -s.N - 1 })
	check("bad kind", func(s *Snapshot) { s.Kind = 9 })
	check("join with m2", func(s *Snapshot) { s.M2 = 4 })
	check("join with seedB", func(s *Snapshot) { s.SeedB = 3 })
	check("non-power-of-two m", func(s *Snapshot) { s.M1 = 15 })
	check("row count", func(s *Snapshot) { s.Cells = s.Cells[:1] })
	check("row width", func(s *Snapshot) { s.Cells[0] = s.Cells[0][:3] })
}

// golden compares the canonical encoding of a deterministic snapshot
// against the checked-in bytes; -update rewrites them.
func golden(t *testing.T, name string, data []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test -run TestSnapshotGolden -update ./internal/protocol` to create): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("%s: encoding diverged from golden bytes (%d vs %d bytes)", name, len(data), len(want))
	}
	// The golden bytes themselves must decode and re-encode canonically.
	if re := encode(t, decode(t, want)); !bytes.Equal(re, want) {
		t.Fatalf("%s: golden bytes are not canonical", name)
	}
}

func TestSnapshotGolden(t *testing.T) {
	golden(t, "join_unfinalized.snap", encode(t, SnapshotOfAggregator(testAggregator(t))))
	golden(t, "join_finalized.snap", encode(t, SnapshotOfSketch(testAggregator(t).Finalize())))
	golden(t, "matrix_unfinalized.snap", encode(t, SnapshotOfMatrixAggregator(testMatrixAggregator(t))))
	golden(t, "matrix_finalized.snap", encode(t, SnapshotOfMatrixSketch(testMatrixAggregator(t).Finalize())))
}

// FuzzSnapshotRoundTrip asserts that any byte stream the decoder
// accepts re-encodes to exactly the input (canonical encoding), and
// that the decoder never panics on arbitrary input.
func FuzzSnapshotRoundTrip(f *testing.F) {
	p := snapParams()
	agg := core.NewAggregator(p, p.NewFamily(7))
	for i := 0; i < 64; i++ {
		agg.Add(core.Report{Y: int8(1 - 2*(i%2)), Row: uint32(i % p.K), Col: uint32(i % p.M)})
	}
	if seed, err := EncodeSnapshot(SnapshotOfAggregator(agg)); err == nil {
		f.Add(seed)
	}
	small := core.Params{K: 1, M: 2, Epsilon: 1}
	sAgg := core.NewAggregator(small, small.NewFamily(1))
	sAgg.Add(core.Report{Y: 1, Row: 0, Col: 1})
	if seed, err := EncodeSnapshot(SnapshotOfAggregator(sAgg)); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)-1])
	}
	f.Add([]byte("SNAP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re, err := EncodeSnapshot(s)
		if err != nil {
			t.Fatalf("decoded snapshot fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("encoding is not canonical: %d in, %d out", len(data), len(re))
		}
		again, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot fails to decode: %v", err)
		}
		if again.Fingerprint() != s.Fingerprint() || again.N != s.N || again.Finalized != s.Finalized {
			t.Fatal("round trip changed snapshot identity")
		}
	})
}
