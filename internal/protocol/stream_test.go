package protocol

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"ldpjoin/internal/core"
)

// encodeReports builds a wire stream carrying the given reports.
func encodeReports(t *testing.T, p core.Params, reports []core.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testReports(p core.Params, n int) []core.Report {
	reports := make([]core.Report, n)
	for i := range reports {
		y := int8(1)
		if i%2 == 0 {
			y = -1
		}
		reports[i] = core.Report{Y: y, Row: uint32(i % p.K), Col: uint32(i % p.M)}
	}
	return reports
}

func TestBatchReaderBatches(t *testing.T) {
	p := core.Params{K: 4, M: 64, Epsilon: 2}
	want := testReports(p, 10)
	br, err := NewBatchReader(bytes.NewReader(encodeReports(t, p, want)), p)
	if err != nil {
		t.Fatal(err)
	}
	var got []core.Report
	var sizes []int
	for {
		batch, err := br.Next(4)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(batch))
		got = append(got, batch...)
	}
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
		t.Fatalf("batch sizes = %v, want [4 4 2]", sizes)
	}
	if br.Count() != len(want) {
		t.Fatalf("Count = %d, want %d", br.Count(), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("report %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Subsequent calls keep returning EOF.
	if _, err := br.Next(4); err != io.EOF {
		t.Fatalf("post-EOF Next err = %v", err)
	}
}

func TestBatchReaderDefaultAndOversizedMax(t *testing.T) {
	p := core.Params{K: 2, M: 16, Epsilon: 1}
	stream := encodeReports(t, p, testReports(p, 100))

	// max <= 0 falls back to DefaultBatchSize and must not loop forever.
	br, err := NewBatchReader(bytes.NewReader(stream), p)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := br.Next(0)
	if err != nil || len(batch) != 100 {
		t.Fatalf("default-size Next = (%d, %v)", len(batch), err)
	}

	// A max far beyond the stream length returns what the stream holds.
	br, err = NewBatchReader(bytes.NewReader(stream), p)
	if err != nil {
		t.Fatal(err)
	}
	batch, err = br.Next(1 << 30)
	if err != nil || len(batch) != 100 {
		t.Fatalf("oversized-max Next = (%d, %v)", len(batch), err)
	}
}

func TestBatchReaderHeaderErrors(t *testing.T) {
	p := core.Params{K: 2, M: 16, Epsilon: 1}
	if _, err := NewBatchReader(bytes.NewReader([]byte("XXXXgarbage-header------")), p); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic err = %v", err)
	}
	// Truncated header.
	stream := encodeReports(t, p, nil)
	if _, err := NewBatchReader(bytes.NewReader(stream[:headerSize-2]), p); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Mismatched parameters.
	other := core.Params{K: 3, M: 16, Epsilon: 1}
	if _, err := NewBatchReader(bytes.NewReader(stream), other); err == nil {
		t.Fatal("mismatched params accepted")
	}
	// Wrong stream kind.
	var buf bytes.Buffer
	if err := WriteHeader(&buf, Header{Kind: KindMatrix, K: 2, M: 16, M2: 16, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatchReader(&buf, p); err == nil {
		t.Fatal("matrix stream accepted as join stream")
	}
}

func TestBatchReaderTruncatedReportDiscardsBatch(t *testing.T) {
	p := core.Params{K: 2, M: 16, Epsilon: 1}
	stream := encodeReports(t, p, testReports(p, 5))
	// Cut into the middle of the last report.
	br, err := NewBatchReader(bytes.NewReader(stream[:len(stream)-3]), p)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := br.Next(10)
	if err == nil {
		t.Fatal("expected truncation error")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want wrapped ErrUnexpectedEOF", err)
	}
	if batch != nil {
		t.Fatalf("truncated Next delivered %d reports; partial batches must be discarded", len(batch))
	}
}

func TestBatchReaderOutOfBoundsReport(t *testing.T) {
	p := core.Params{K: 2, M: 16, Epsilon: 1}
	var buf bytes.Buffer
	w, err := NewReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(core.Report{Y: 1, Row: 0, Col: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(core.Report{Y: 1, Row: 7, Col: 3}); err != nil { // row ≥ K
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	br, err := NewBatchReader(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := br.Next(10)
	if err == nil {
		t.Fatal("out-of-bounds report accepted")
	}
	if batch != nil {
		t.Fatal("out-of-bounds error must discard the batch")
	}
}

func TestBatchReaderInvalidSignByte(t *testing.T) {
	p := core.Params{K: 2, M: 16, Epsilon: 1}
	stream := encodeReports(t, p, testReports(p, 2))
	stream[headerSize] = 9 // corrupt first report's sign byte
	br, err := NewBatchReader(bytes.NewReader(stream), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(10); err == nil {
		t.Fatal("invalid sign byte accepted")
	}
}

func TestBatchReaderEmptyStream(t *testing.T) {
	p := core.Params{K: 2, M: 16, Epsilon: 1}
	br, err := NewBatchReader(bytes.NewReader(encodeReports(t, p, nil)), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(10); err != io.EOF {
		t.Fatalf("empty stream Next err = %v, want io.EOF", err)
	}
	if br.Count() != 0 {
		t.Fatalf("Count = %d", br.Count())
	}
	if h := br.Header(); h.K != p.K || h.M != p.M {
		t.Fatalf("header = %+v", h)
	}
}
