package protocol

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"

	"ldpjoin/internal/core"
)

// ReportWriter streams join reports onto a connection: a client gateway
// in the paper's workflow. It buffers internally; call Flush (or Close on
// the underlying connection after Flush) when done.
type ReportWriter struct {
	bw  *bufio.Writer
	buf []byte
}

// NewReportWriter writes the stream header for the given parameters and
// returns a writer for the reports.
func NewReportWriter(w io.Writer, p core.Params) (*ReportWriter, error) {
	bw := bufio.NewWriter(w)
	h := Header{Kind: KindJoin, K: p.K, M: p.M, Epsilon: p.Epsilon}
	if err := WriteHeader(bw, h); err != nil {
		return nil, err
	}
	return &ReportWriter{bw: bw, buf: make([]byte, 0, reportSize)}, nil
}

// Write streams one report.
func (w *ReportWriter) Write(r core.Report) error {
	w.buf = AppendReport(w.buf[:0], r)
	_, err := w.bw.Write(w.buf)
	return err
}

// Flush pushes buffered reports to the underlying writer.
func (w *ReportWriter) Flush() error { return w.bw.Flush() }

// ReadStream reads a KindJoin stream until EOF, passing every report to
// sink. It returns the header and the number of reports read.
func ReadStream(r io.Reader, expect core.Params, sink func(core.Report)) (Header, int, error) {
	br := bufio.NewReader(r)
	h, err := ReadHeader(br)
	if err != nil {
		return Header{}, 0, err
	}
	if h.Kind != KindJoin {
		return h, 0, fmt.Errorf("protocol: expected join stream, got kind %d", h.Kind)
	}
	if h.K != expect.K || h.M != expect.M || h.Epsilon != expect.Epsilon {
		return h, 0, fmt.Errorf("protocol: stream params (k=%d,m=%d,eps=%g) do not match server (k=%d,m=%d,eps=%g)",
			h.K, h.M, h.Epsilon, expect.K, expect.M, expect.Epsilon)
	}
	buf := make([]byte, reportSize)
	n := 0
	for {
		if _, err := io.ReadFull(br, buf); err != nil {
			if err == io.EOF {
				return h, n, nil
			}
			return h, n, fmt.Errorf("protocol: reading report %d: %w", n, err)
		}
		rep, err := DecodeReport(buf)
		if err != nil {
			return h, n, err
		}
		// Bounds-check before the report can reach the sketch: a corrupt
		// or hostile stream must surface as an error, not a panic in the
		// aggregation goroutine.
		if int(rep.Row) >= expect.K || int(rep.Col) >= expect.M {
			return h, n, fmt.Errorf("protocol: report %d indices (%d,%d) out of sketch bounds (%d,%d)",
				n, rep.Row, rep.Col, expect.K, expect.M)
		}
		sink(rep)
		n++
	}
}

// MatrixReportWriter streams two-attribute (middle-table) reports onto a
// connection.
type MatrixReportWriter struct {
	bw  *bufio.Writer
	buf []byte
}

// NewMatrixReportWriter writes a KindMatrix header for the given matrix
// parameters and returns a writer for the reports.
func NewMatrixReportWriter(w io.Writer, p core.MatrixParams) (*MatrixReportWriter, error) {
	bw := bufio.NewWriter(w)
	h := Header{Kind: KindMatrix, K: p.K, M: p.M1, M2: p.M2, Epsilon: p.Epsilon}
	if err := WriteHeader(bw, h); err != nil {
		return nil, err
	}
	return &MatrixReportWriter{bw: bw, buf: make([]byte, 0, matrixReportSize)}, nil
}

// Write streams one matrix report.
func (w *MatrixReportWriter) Write(r core.MatrixReport) error {
	w.buf = AppendMatrixReport(w.buf[:0], r)
	_, err := w.bw.Write(w.buf)
	return err
}

// Flush pushes buffered reports to the underlying writer.
func (w *MatrixReportWriter) Flush() error { return w.bw.Flush() }

// ReadMatrixStream reads a KindMatrix stream until EOF, passing every
// report to sink after bounds-checking it against the expected
// parameters.
func ReadMatrixStream(r io.Reader, expect core.MatrixParams, sink func(core.MatrixReport)) (Header, int, error) {
	br := bufio.NewReader(r)
	h, err := ReadHeader(br)
	if err != nil {
		return Header{}, 0, err
	}
	if h.Kind != KindMatrix {
		return h, 0, fmt.Errorf("protocol: expected matrix stream, got kind %d", h.Kind)
	}
	if h.K != expect.K || h.M != expect.M1 || h.M2 != expect.M2 || h.Epsilon != expect.Epsilon {
		return h, 0, fmt.Errorf("protocol: matrix stream params (k=%d,m1=%d,m2=%d,eps=%g) do not match server (k=%d,m1=%d,m2=%d,eps=%g)",
			h.K, h.M, h.M2, h.Epsilon, expect.K, expect.M1, expect.M2, expect.Epsilon)
	}
	buf := make([]byte, matrixReportSize)
	n := 0
	for {
		if _, err := io.ReadFull(br, buf); err != nil {
			if err == io.EOF {
				return h, n, nil
			}
			return h, n, fmt.Errorf("protocol: reading matrix report %d: %w", n, err)
		}
		rep, err := DecodeMatrixReport(buf)
		if err != nil {
			return h, n, err
		}
		if int(rep.Row) >= expect.K || int(rep.L1) >= expect.M1 || int(rep.L2) >= expect.M2 {
			return h, n, fmt.Errorf("protocol: matrix report %d indices (%d,%d,%d) out of bounds (%d,%d,%d)",
				n, rep.Row, rep.L1, rep.L2, expect.K, expect.M1, expect.M2)
		}
		sink(rep)
		n++
	}
}

// Collector is the server side of the transport: it accepts connections
// from a listener and funnels every decoded report into a single
// aggregator goroutine, so the sketch itself needs no locking (share
// memory by communicating).
type Collector struct {
	params core.Params
	agg    *core.Aggregator

	reports chan core.Report
	done    chan struct{}

	mu       sync.Mutex
	streams  int
	lastErr  error
	finished bool
}

// NewCollector creates a collector feeding the given aggregator.
func NewCollector(p core.Params, agg *core.Aggregator) *Collector {
	c := &Collector{
		params:  p,
		agg:     agg,
		reports: make(chan core.Report, 1024),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(c.done)
		for r := range c.reports {
			c.agg.Add(r)
		}
	}()
	return c
}

// ServeConn reads one report stream from conn until EOF and records it.
// It is safe to call from multiple goroutines, one per connection.
func (c *Collector) ServeConn(conn net.Conn) error {
	defer conn.Close()
	_, _, err := ReadStream(conn, c.params, func(r core.Report) {
		c.reports <- r
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	c.streams++
	if err != nil {
		c.lastErr = err
	}
	return err
}

// Serve accepts up to n connections from l, handling each in its own
// goroutine, then returns. It is the accept loop used by the example
// server.
func (c *Collector) Serve(l net.Listener, n int) error {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c.ServeConn(conn)
		}()
	}
	wg.Wait()
	return nil
}

// Close stops the aggregation goroutine and returns the last stream
// error, if any. No ServeConn call may be active or issued afterwards.
func (c *Collector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.finished {
		close(c.reports)
		<-c.done
		c.finished = true
	}
	return c.lastErr
}

// Streams returns the number of completed streams.
func (c *Collector) Streams() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.streams
}
