package protocol

import (
	"bufio"
	"fmt"
	"io"

	"ldpjoin/internal/core"
)

// ReportWriter streams join reports onto a connection: a client gateway
// in the paper's workflow. It buffers internally; call Flush (or Close on
// the underlying connection after Flush) when done.
type ReportWriter struct {
	bw  *bufio.Writer
	buf []byte
}

// NewReportWriter writes the stream header for the given parameters and
// returns a writer for the reports.
func NewReportWriter(w io.Writer, p core.Params) (*ReportWriter, error) {
	bw := bufio.NewWriter(w)
	h := Header{Kind: KindJoin, K: p.K, M: p.M, Epsilon: p.Epsilon}
	if err := WriteHeader(bw, h); err != nil {
		return nil, err
	}
	return &ReportWriter{bw: bw, buf: make([]byte, 0, ReportSize)}, nil
}

// Write streams one report.
func (w *ReportWriter) Write(r core.Report) error {
	w.buf = AppendReport(w.buf[:0], r)
	_, err := w.bw.Write(w.buf)
	return err
}

// Flush pushes buffered reports to the underlying writer.
func (w *ReportWriter) Flush() error { return w.bw.Flush() }

// DefaultBatchSize is the batch granularity BatchReader.Next falls back
// to when the caller passes max <= 0.
const DefaultBatchSize = 4096

// BatchReader incrementally decodes a KindJoin report stream into
// batches — the pull-based feed of the ingestion engine. The header is
// read and validated against the expected parameters at construction;
// every report is bounds-checked before it is handed out, so a corrupt
// or hostile stream surfaces as an error, never as a panic in a fold
// worker.
type BatchReader struct {
	br     *bufio.Reader
	h      Header
	expect core.Params
	buf    [ReportSize]byte
	n      int
}

// NewBatchReader reads the stream header from r and validates it against
// the expected parameters.
func NewBatchReader(r io.Reader, expect core.Params) (*BatchReader, error) {
	br := bufio.NewReader(r)
	h, err := ReadHeader(br)
	if err != nil {
		return nil, err
	}
	return NewBatchReaderFrom(br, h, expect)
}

// NewBatchReaderFrom builds a batch reader over a stream whose header
// has already been read — the kind-dispatch path of a server that peeks
// at the header before choosing a column kind. br must be positioned at
// the first report.
func NewBatchReaderFrom(br *bufio.Reader, h Header, expect core.Params) (*BatchReader, error) {
	if h.Kind != KindJoin {
		return nil, fmt.Errorf("protocol: expected join stream, got kind %d", h.Kind)
	}
	if h.K != expect.K || h.M != expect.M || h.Epsilon != expect.Epsilon {
		return nil, fmt.Errorf("protocol: stream params (k=%d,m=%d,eps=%g) do not match server (k=%d,m=%d,eps=%g)",
			h.K, h.M, h.Epsilon, expect.K, expect.M, expect.Epsilon)
	}
	return &BatchReader{br: br, h: h, expect: expect}, nil
}

// Header returns the validated stream header.
func (r *BatchReader) Header() Header { return r.h }

// Count returns the number of reports decoded so far.
func (r *BatchReader) Count() int { return r.n }

// Next decodes up to max reports (DefaultBatchSize when max <= 0) into a
// batch drawn from the package batch pool; the caller owns it and may
// recycle it with PutReportBatch once the reports are consumed. At the
// clean end of the stream it returns (nil, io.EOF). A decode, bounds, or
// truncation error discards the partially decoded batch: a malformed
// stream never delivers reports beyond the last complete Next.
func (r *BatchReader) Next(max int) ([]core.Report, error) {
	if max <= 0 {
		max = DefaultBatchSize
	}
	batch := GetReportBatch()
	for len(batch) < max {
		if _, err := io.ReadFull(r.br, r.buf[:]); err != nil {
			if err == io.EOF {
				if len(batch) > 0 {
					return batch, nil
				}
				PutReportBatch(batch)
				return nil, io.EOF
			}
			PutReportBatch(batch)
			return nil, fmt.Errorf("protocol: reading report %d: %w", r.n, err)
		}
		rep, err := DecodeReport(r.buf[:])
		if err != nil {
			PutReportBatch(batch)
			return nil, err
		}
		if int(rep.Row) >= r.expect.K || int(rep.Col) >= r.expect.M {
			PutReportBatch(batch)
			return nil, fmt.Errorf("protocol: report %d indices (%d,%d) out of sketch bounds (%d,%d)",
				r.n, rep.Row, rep.Col, r.expect.K, r.expect.M)
		}
		batch = append(batch, rep)
		r.n++
	}
	return batch, nil
}

// ReadStream reads a KindJoin stream until EOF, passing every report to
// sink. It returns the header and the number of reports delivered to
// sink — on error that is fewer than the decoder consumed, because a
// failing batch is discarded whole. It is the push-based convenience
// over BatchReader.
func ReadStream(r io.Reader, expect core.Params, sink func(core.Report)) (Header, int, error) {
	br, err := NewBatchReader(r, expect)
	if err != nil {
		return Header{}, 0, err
	}
	delivered := 0
	for {
		batch, err := br.Next(0)
		if err == io.EOF {
			return br.Header(), delivered, nil
		}
		if err != nil {
			return br.Header(), delivered, err
		}
		for _, rep := range batch {
			sink(rep)
		}
		delivered += len(batch)
		PutReportBatch(batch)
	}
}

// NewPlusReportWriter writes a KindPlus header — the join layout with
// the phase group in the m2 slot — and returns a writer for the
// reports. One stream carries reports for exactly one group: clients
// are assigned to a phase, they do not interleave.
func NewPlusReportWriter(w io.Writer, p core.Params, group PlusGroup) (*ReportWriter, error) {
	if group > PlusHigh {
		return nil, fmt.Errorf("protocol: invalid plus group %d", group)
	}
	bw := bufio.NewWriter(w)
	h := Header{Kind: KindPlus, K: p.K, M: p.M, M2: int(group), Epsilon: p.Epsilon}
	if err := WriteHeader(bw, h); err != nil {
		return nil, err
	}
	return &ReportWriter{bw: bw, buf: make([]byte, 0, ReportSize)}, nil
}

// NewPlusBatchReaderFrom builds a batch reader over a KindPlus stream
// whose header has already been read, returning the phase group the
// stream feeds. br must be positioned at the first report; reports
// decode and bounds-check exactly like a join stream.
func NewPlusBatchReaderFrom(br *bufio.Reader, h Header, expect core.Params) (*BatchReader, PlusGroup, error) {
	if h.Kind != KindPlus {
		return nil, 0, fmt.Errorf("protocol: expected plus stream, got kind %d", h.Kind)
	}
	if h.M2 < 0 || h.M2 > int(PlusHigh) {
		return nil, 0, fmt.Errorf("protocol: invalid plus group %d", h.M2)
	}
	if h.K != expect.K || h.M != expect.M || h.Epsilon != expect.Epsilon {
		return nil, 0, fmt.Errorf("protocol: stream params (k=%d,m=%d,eps=%g) do not match server (k=%d,m=%d,eps=%g)",
			h.K, h.M, h.Epsilon, expect.K, expect.M, expect.Epsilon)
	}
	return &BatchReader{br: br, h: h, expect: expect}, PlusGroup(h.M2), nil
}

// ReadPlusStream reads a KindPlus stream until EOF, passing every
// report to sink. It returns the header, the stream's phase group and
// the number of reports delivered.
func ReadPlusStream(r io.Reader, expect core.Params, sink func(core.Report)) (Header, PlusGroup, int, error) {
	br := bufio.NewReader(r)
	h, err := ReadHeader(br)
	if err != nil {
		return Header{}, 0, 0, err
	}
	pr, group, err := NewPlusBatchReaderFrom(br, h, expect)
	if err != nil {
		return Header{}, 0, 0, err
	}
	delivered := 0
	for {
		batch, err := pr.Next(0)
		if err == io.EOF {
			return pr.Header(), group, delivered, nil
		}
		if err != nil {
			return pr.Header(), group, delivered, err
		}
		for _, rep := range batch {
			sink(rep)
		}
		delivered += len(batch)
		PutReportBatch(batch)
	}
}

// MatrixReportWriter streams two-attribute (middle-table) reports onto a
// connection.
type MatrixReportWriter struct {
	bw  *bufio.Writer
	buf []byte
}

// NewMatrixReportWriter writes a KindMatrix header for the given matrix
// parameters and returns a writer for the reports.
func NewMatrixReportWriter(w io.Writer, p core.MatrixParams) (*MatrixReportWriter, error) {
	bw := bufio.NewWriter(w)
	h := Header{Kind: KindMatrix, K: p.K, M: p.M1, M2: p.M2, Epsilon: p.Epsilon}
	if err := WriteHeader(bw, h); err != nil {
		return nil, err
	}
	return &MatrixReportWriter{bw: bw, buf: make([]byte, 0, MatrixReportSize)}, nil
}

// Write streams one matrix report.
func (w *MatrixReportWriter) Write(r core.MatrixReport) error {
	w.buf = AppendMatrixReport(w.buf[:0], r)
	_, err := w.bw.Write(w.buf)
	return err
}

// Flush pushes buffered reports to the underlying writer.
func (w *MatrixReportWriter) Flush() error { return w.bw.Flush() }

// MatrixBatchReader incrementally decodes a KindMatrix report stream
// into batches: the middle-table counterpart of BatchReader, with the
// same contract — header validated up front, every report bounds-checked
// before it is handed out, a failing batch discarded whole.
type MatrixBatchReader struct {
	br     *bufio.Reader
	h      Header
	expect core.MatrixParams
	buf    [MatrixReportSize]byte
	n      int
}

// NewMatrixBatchReader reads the stream header from r and validates it
// against the expected matrix parameters.
func NewMatrixBatchReader(r io.Reader, expect core.MatrixParams) (*MatrixBatchReader, error) {
	br := bufio.NewReader(r)
	h, err := ReadHeader(br)
	if err != nil {
		return nil, err
	}
	return NewMatrixBatchReaderFrom(br, h, expect)
}

// NewMatrixBatchReaderFrom builds a matrix batch reader over a stream
// whose header has already been read; br must be positioned at the first
// report.
func NewMatrixBatchReaderFrom(br *bufio.Reader, h Header, expect core.MatrixParams) (*MatrixBatchReader, error) {
	if h.Kind != KindMatrix {
		return nil, fmt.Errorf("protocol: expected matrix stream, got kind %d", h.Kind)
	}
	if h.K != expect.K || h.M != expect.M1 || h.M2 != expect.M2 || h.Epsilon != expect.Epsilon {
		return nil, fmt.Errorf("protocol: matrix stream params (k=%d,m1=%d,m2=%d,eps=%g) do not match server (k=%d,m1=%d,m2=%d,eps=%g)",
			h.K, h.M, h.M2, h.Epsilon, expect.K, expect.M1, expect.M2, expect.Epsilon)
	}
	return &MatrixBatchReader{br: br, h: h, expect: expect}, nil
}

// Header returns the validated stream header.
func (r *MatrixBatchReader) Header() Header { return r.h }

// Count returns the number of reports decoded so far.
func (r *MatrixBatchReader) Count() int { return r.n }

// Next decodes up to max matrix reports (DefaultBatchSize when max <= 0)
// into a batch drawn from the package batch pool; the caller owns it and
// may recycle it with PutMatrixBatch once the reports are consumed. At
// the clean end of the stream it returns (nil, io.EOF).
func (r *MatrixBatchReader) Next(max int) ([]core.MatrixReport, error) {
	if max <= 0 {
		max = DefaultBatchSize
	}
	batch := GetMatrixBatch()
	for len(batch) < max {
		if _, err := io.ReadFull(r.br, r.buf[:]); err != nil {
			if err == io.EOF {
				if len(batch) > 0 {
					return batch, nil
				}
				PutMatrixBatch(batch)
				return nil, io.EOF
			}
			PutMatrixBatch(batch)
			return nil, fmt.Errorf("protocol: reading matrix report %d: %w", r.n, err)
		}
		rep, err := DecodeMatrixReport(r.buf[:])
		if err != nil {
			PutMatrixBatch(batch)
			return nil, err
		}
		if int(rep.Row) >= r.expect.K || int(rep.L1) >= r.expect.M1 || int(rep.L2) >= r.expect.M2 {
			PutMatrixBatch(batch)
			return nil, fmt.Errorf("protocol: matrix report %d indices (%d,%d,%d) out of bounds (%d,%d,%d)",
				r.n, rep.Row, rep.L1, rep.L2, r.expect.K, r.expect.M1, r.expect.M2)
		}
		batch = append(batch, rep)
		r.n++
	}
	return batch, nil
}

// ReadMatrixStream reads a KindMatrix stream until EOF, passing every
// report to sink after bounds-checking it against the expected
// parameters. Like ReadStream it is the push-based convenience over the
// batch reader, and delivers only whole batches.
func ReadMatrixStream(r io.Reader, expect core.MatrixParams, sink func(core.MatrixReport)) (Header, int, error) {
	br, err := NewMatrixBatchReader(r, expect)
	if err != nil {
		return Header{}, 0, err
	}
	delivered := 0
	for {
		batch, err := br.Next(0)
		if err == io.EOF {
			return br.Header(), delivered, nil
		}
		if err != nil {
			return br.Header(), delivered, err
		}
		for _, rep := range batch {
			sink(rep)
		}
		delivered += len(batch)
		PutMatrixBatch(batch)
	}
}

// The connection-serving Collector that used to live here moved to
// internal/ingest, where it feeds the sharded ingestion engine instead
// of a single aggregation goroutine.
