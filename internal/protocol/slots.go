// Attribute-slot resolution and chain-composition rules, shared by the
// aggregation service and the federator so the two can never diverge on
// which snapshots they accept or which chains they consider composable.
//
// A deployment derives one hash family per join attribute from its base
// seed (hashing.AttributeSeed); a join column occupies one slot, a
// matrix column the pair (attr, attr+1). Because the seeds are derived,
// a snapshot's embedded seed fingerprint identifies its slot exactly —
// no side channel needed — and a chain composes exactly when its
// columns' slots advance by one.
package protocol

import (
	"errors"
	"fmt"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
)

// String renders the column kind a stream (or column) carries.
func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindMatrix:
		return "matrix"
	case KindPlus:
		return "plus"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Slot maps the snapshot to the column kind and attribute slot its seed
// fingerprint identifies within the deployment's family set, fully
// validating compatibility with the deployment's parameters on the way.
// A snapshot whose fingerprint matches no slot cannot be merged
// anywhere and is refused.
func (s *Snapshot) Slot(p core.Params, mp core.MatrixParams, fams []*hashing.Family) (Kind, int, error) {
	switch s.Kind {
	case SnapshotJoin:
		for i, fam := range fams {
			if s.SeedA != fam.Seed() {
				continue
			}
			if err := s.CompatibleWithJoin(p, fam.Seed()); err != nil {
				return 0, 0, err
			}
			return KindJoin, i, nil
		}
	case SnapshotMatrix:
		for i := 0; i+1 < len(fams); i++ {
			if s.SeedA != fams[i].Seed() || s.SeedB != fams[i+1].Seed() {
				continue
			}
			if err := s.CompatibleWithMatrix(mp, s.SeedA, s.SeedB); err != nil {
				return 0, 0, err
			}
			return KindMatrix, i, nil
		}
	}
	return 0, 0, fmt.Errorf("snapshot %s matches no attribute slot of this deployment (%d families from the shared seed)",
		s.Fingerprint(), len(fams))
}

// Chain-composition failures, distinguished so callers can map them to
// their own protocols (the HTTP service answers 400 for a malformed
// request and 409 for columns that exist but do not compose).
var (
	// ErrChainLength marks a path with fewer than 3 columns.
	ErrChainLength = errors.New("chain needs at least 3 columns (join end, matrix middle(s), join end)")
	// ErrChainKind marks a column kind in the wrong chain position.
	ErrChainKind = errors.New("chain column kind does not fit its position")
	// ErrChainOrder marks attribute slots that do not advance by one.
	ErrChainOrder = errors.New("chain attribute slots do not compose")
)

// ChainColumn is one resolved column of a chain-join path.
type ChainColumn struct {
	Name string
	Kind Kind
	Attr int
}

// ValidateChain checks that the columns compose as a chain join: join
// columns at both ends, matrix columns in every middle position, and
// attribute slots advancing by one (the left end on attribute a, middle
// i spanning (a+i, a+i+1), the right end on a+middles) — which is
// precisely "each matrix's left family equals its predecessor's right
// family". Errors wrap ErrChainLength, ErrChainKind, or ErrChainOrder.
func ValidateChain(cols []ChainColumn) error {
	if len(cols) < 3 {
		return fmt.Errorf("%w: got %d", ErrChainLength, len(cols))
	}
	last := len(cols) - 1
	for i, col := range cols {
		endPos := i == 0 || i == last
		if endPos && col.Kind != KindJoin {
			return fmt.Errorf("%w: position %d (%q) must be a join column, got %s", ErrChainKind, i, col.Name, col.Kind)
		}
		if !endPos && col.Kind != KindMatrix {
			return fmt.Errorf("%w: position %d (%q) must be a matrix column, got %s", ErrChainKind, i, col.Name, col.Kind)
		}
	}
	base := cols[0].Attr
	for i, col := range cols[1:] {
		if col.Attr != base+i {
			return fmt.Errorf("%w: %q occupies attribute %d, but position %d needs attribute %d (its left family must equal the previous column's right family)",
				ErrChainOrder, col.Name, col.Attr, i+1, base+i)
		}
	}
	return nil
}
