package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	counts := make([]float64, len(weights))
	for i := 0; i < n; i++ {
		counts[a.Sample(rng)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(counts[i]-want)/want > 0.05 {
			t.Fatalf("outcome %d: %g draws, want ≈ %g", i, counts[i], want)
		}
	}
	if a.N() != 4 {
		t.Fatalf("N = %d, want 4", a.N())
	}
}

func TestAliasDegenerate(t *testing.T) {
	a := NewAlias([]float64{0, 5, 0})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if a.Sample(rng) != 1 {
			t.Fatal("degenerate alias sampled an impossible outcome")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for _, weights := range [][]float64{nil, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for weights %v", weights)
				}
			}()
			NewAlias(weights)
		}()
	}
}

func TestZipfDeterministicAndInRange(t *testing.T) {
	a := Zipf(42, 5000, 1000, 1.3)
	b := Zipf(42, 5000, 1000, 1.3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
		if a[i] >= 1000 {
			t.Fatalf("value %d out of domain", a[i])
		}
	}
	c := Zipf(43, 5000, 1000, 1.3)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestZipfSkewMonotone(t *testing.T) {
	// Higher alpha concentrates mass on the top ranks.
	low := TopShare(Zipf(1, 50000, 10000, 1.1), 10)
	high := TopShare(Zipf(1, 50000, 10000, 2.0), 10)
	if high <= low {
		t.Fatalf("top-10 share did not grow with skew: α=1.1 → %.3f, α=2.0 → %.3f", low, high)
	}
}

func TestZipfRankOrder(t *testing.T) {
	data := Zipf(7, 200000, 100, 1.5)
	freq := make([]int, 100)
	for _, d := range data {
		freq[d]++
	}
	// Rank 0 should dominate rank 10 which should dominate rank 90.
	if !(freq[0] > freq[10] && freq[10] > freq[90]) {
		t.Fatalf("rank frequencies not decreasing: f0=%d f10=%d f90=%d", freq[0], freq[10], freq[90])
	}
}

func TestGaussianShape(t *testing.T) {
	const domain = 1000
	data := Gaussian(11, 100000, domain)
	var mean float64
	for _, d := range data {
		if d >= domain {
			t.Fatalf("value %d out of domain", d)
		}
		mean += float64(d)
	}
	mean /= float64(len(data))
	if math.Abs(mean-domain/2) > 10 {
		t.Fatalf("gaussian mean %.1f far from %d", mean, domain/2)
	}
	// Center decile should hold far more mass than the tails.
	center, tail := 0, 0
	for _, d := range data {
		if d >= 450 && d < 550 {
			center++
		}
		if d < 100 || d >= 900 {
			tail++
		}
	}
	if center < 10*tail {
		t.Fatalf("gaussian not peaked: center=%d tail=%d", center, tail)
	}
}

func TestSpecsMatchTableII(t *testing.T) {
	want := map[string]struct {
		domain uint64
		size   int
	}{
		"gaussian":  {75_949, 40_000_000},
		"movielens": {83_239, 67_664_324},
		"tpcds":     {18_000, 5_760_808},
		"twitter":   {77_072, 4_841_532},
		"facebook":  {4_039, 352_936},
	}
	for name, w := range want {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Domain != w.domain || s.FullSize != w.size {
			t.Errorf("%s: got (domain=%d,size=%d), want (%d,%d)", name, s.Domain, s.FullSize, w.domain, w.size)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName should fail for unknown dataset")
	}
}

func TestSpecScaling(t *testing.T) {
	s, _ := ByName("movielens")
	if got := s.Size(0.001); got != 67664 {
		t.Fatalf("scaled size = %d, want 67664", got)
	}
	if got := s.Size(1e-9); got != 1000 {
		t.Fatalf("size floor = %d, want 1000", got)
	}
	if got := s.Size(5.0); got != s.FullSize {
		t.Fatalf("size cap = %d, want %d", got, s.FullSize)
	}
	if got := s.DomainAt(1.0); got != s.Domain {
		t.Fatalf("full-scale domain = %d, want %d", got, s.Domain)
	}
	if got := s.DomainAt(0.01); got != 832 {
		t.Fatalf("scaled domain = %d, want 832", got)
	}
	if got := s.DomainAt(1e-9); got != 256 {
		t.Fatalf("domain floor = %d, want 256", got)
	}
	fb, _ := ByName("facebook")
	if got := fb.DomainAt(0.01); got != fb.Domain {
		t.Fatalf("facebook domain should not scale, got %d", got)
	}
}

func TestGenerateRespectsDomainProperty(t *testing.T) {
	f := func(seedRaw int64, pick uint8) bool {
		all := Specs()
		s := all[int(pick)%len(all)]
		data := s.Generate(seedRaw, 0.0001)
		domain := s.DomainAt(0.0001)
		for _, d := range data {
			if d >= domain {
				return false
			}
		}
		return len(data) >= 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestPairIndependentButDeterministic(t *testing.T) {
	s := ZipfSpec(1.5)
	a1, b1 := s.Pair(9, 0.0001)
	a2, b2 := s.Pair(9, 0.0001)
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] {
			t.Fatal("Pair is not deterministic")
		}
	}
	same := true
	for i := range a1 {
		if a1[i] != b1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Pair columns should be independent draws")
	}
}

func TestZipfSpecName(t *testing.T) {
	if got := ZipfSpec(1.7).Name; got != "zipf1.7" {
		t.Fatalf("name = %q", got)
	}
}

func TestDistinct(t *testing.T) {
	if got := Distinct([]uint64{1, 1, 2, 3, 3, 3}); got != 3 {
		t.Fatalf("Distinct = %d, want 3", got)
	}
	if got := Distinct(nil); got != 0 {
		t.Fatalf("Distinct(nil) = %d, want 0", got)
	}
}

func TestTopShare(t *testing.T) {
	data := []uint64{1, 1, 1, 2, 2, 3}
	if got := TopShare(data, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TopShare(1) = %g, want 0.5", got)
	}
	if got := TopShare(data, 10); got != 1 {
		t.Fatalf("TopShare beyond distinct = %g, want 1", got)
	}
	if got := TopShare(nil, 3); got != 0 {
		t.Fatalf("TopShare(nil) = %g, want 0", got)
	}
}

func BenchmarkZipfGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Zipf(int64(i), 100000, 30000, 1.5)
	}
}
