package dataset

import "math/rand"

// Alias is a Walker alias-method sampler: O(n) setup, O(1) per sample.
// It draws indices i with probability proportional to the construction
// weights, which is how the Zipf and simulacrum generators turn a
// rank-frequency profile into a stream of join-attribute values.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds a sampler over the given non-negative weights. At least
// one weight must be positive.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("dataset: alias table needs at least one weight")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("dataset: negative alias weight")
		}
		total += w
	}
	if total <= 0 {
		panic("dataset: alias weights sum to zero")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
	}
	return a
}

// Sample draws one index using rng.
func (a *Alias) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }
