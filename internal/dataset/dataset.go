// Package dataset generates the workloads of the paper's evaluation
// (Table II): synthetic Zipf and Gaussian join columns, and deterministic
// synthetic simulacra of the four real-world datasets (MovieLens, TPC-DS,
// Twitter and Facebook ego-networks).
//
// Real data is unavailable offline, so each simulacrum reproduces the
// published domain size, (scaled) row count, and a documented
// rank-frequency skew chosen to match what is publicly known about each
// dataset (see DESIGN.md §3). The estimators under test only observe the
// frequency profile of the join attribute, so this preserves the behaviour
// the experiments measure.
//
// Every generator is a pure function of (seed, scale): repeated calls are
// bit-identical, and experiment pairs (attribute A, attribute B) are two
// independent draws from the same distribution, the standard setting in
// the sketching literature the paper follows.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind selects the generator family for a Spec.
type Kind int

const (
	// KindZipf draws ranks from a Zipf(alpha) profile over the domain.
	KindZipf Kind = iota
	// KindGaussian draws rounded Normal(domain/2, domain/8) values.
	KindGaussian
)

// Spec describes one evaluation dataset: its published identity plus the
// generator parameters used to synthesize it.
type Spec struct {
	Name     string
	Domain   uint64 // published attribute domain size
	FullSize int    // published number of rows
	Kind     Kind
	Alpha    float64 // Zipf skew (ignored for Gaussian)
	// ScaleDomain indicates the domain should shrink with the row count so
	// the mean frequency n/D — which governs collision behaviour relative
	// to sketch width — is preserved at reduced scale.
	ScaleDomain bool
}

// specs lists Table II. The Zipf family appears with the skews used across
// the figures; its published "domain" is the sampling universe (the paper
// reports realized distinct counts of 4,377–2,816,390 from a 40M-row draw,
// consistent with a universe of about 3M).
var specs = []Spec{
	{Name: "zipf1.1", Domain: 3_000_000, FullSize: 40_000_000, Kind: KindZipf, Alpha: 1.1, ScaleDomain: true},
	{Name: "zipf1.3", Domain: 3_000_000, FullSize: 40_000_000, Kind: KindZipf, Alpha: 1.3, ScaleDomain: true},
	{Name: "zipf1.5", Domain: 3_000_000, FullSize: 40_000_000, Kind: KindZipf, Alpha: 1.5, ScaleDomain: true},
	{Name: "zipf1.7", Domain: 3_000_000, FullSize: 40_000_000, Kind: KindZipf, Alpha: 1.7, ScaleDomain: true},
	{Name: "zipf1.9", Domain: 3_000_000, FullSize: 40_000_000, Kind: KindZipf, Alpha: 1.9, ScaleDomain: true},
	{Name: "zipf2.0", Domain: 3_000_000, FullSize: 40_000_000, Kind: KindZipf, Alpha: 2.0, ScaleDomain: true},
	{Name: "gaussian", Domain: 75_949, FullSize: 40_000_000, Kind: KindGaussian, ScaleDomain: true},
	{Name: "movielens", Domain: 83_239, FullSize: 67_664_324, Kind: KindZipf, Alpha: 0.8, ScaleDomain: true},
	{Name: "tpcds", Domain: 18_000, FullSize: 5_760_808, Kind: KindZipf, Alpha: 0.3, ScaleDomain: true},
	{Name: "twitter", Domain: 77_072, FullSize: 4_841_532, Kind: KindZipf, Alpha: 1.2, ScaleDomain: true},
	{Name: "facebook", Domain: 4_039, FullSize: 352_936, Kind: KindZipf, Alpha: 1.0, ScaleDomain: false},
}

// Specs returns the Table II inventory, in paper order.
func Specs() []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	return out
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// ZipfSpec returns an ad-hoc Zipf spec with the given skew, for the
// parameter sweeps of Figs 8–12.
func ZipfSpec(alpha float64) Spec {
	return Spec{
		Name:        fmt.Sprintf("zipf%.1f", alpha),
		Domain:      3_000_000,
		FullSize:    40_000_000,
		Kind:        KindZipf,
		Alpha:       alpha,
		ScaleDomain: true,
	}
}

// Size returns the row count at the given scale (floored at 1000 rows).
func (s Spec) Size(scale float64) int {
	n := int(math.Round(float64(s.FullSize) * scale))
	if n < 1000 {
		n = 1000
	}
	if n > s.FullSize {
		n = s.FullSize
	}
	return n
}

// DomainAt returns the domain at the given scale (floored at 256 values),
// honouring ScaleDomain.
func (s Spec) DomainAt(scale float64) uint64 {
	if !s.ScaleDomain || scale >= 1 {
		return s.Domain
	}
	d := uint64(math.Round(float64(s.Domain) * scale))
	if d < 256 {
		d = 256
	}
	if d > s.Domain {
		d = s.Domain
	}
	return d
}

// Generate produces one column of join-attribute values at the given
// scale. Values lie in [0, DomainAt(scale)).
func (s Spec) Generate(seed int64, scale float64) []uint64 {
	n := s.Size(scale)
	domain := s.DomainAt(scale)
	switch s.Kind {
	case KindZipf:
		return Zipf(seed, n, domain, s.Alpha)
	case KindGaussian:
		return Gaussian(seed, n, domain)
	default:
		panic("dataset: unknown kind")
	}
}

// Pair produces the two join columns (attribute A of T1, attribute B of
// T2) as independent draws from the same distribution.
func (s Spec) Pair(seed int64, scale float64) (a, b []uint64) {
	return s.Generate(seed, scale), s.Generate(seed^0x5bf0_3635, scale)
}

// Zipf draws n values from a Zipf(alpha) rank-frequency profile over
// [0, domain): value v has probability proportional to 1/(v+1)^alpha.
// alpha = 0 degenerates to uniform.
func Zipf(seed int64, n int, domain uint64, alpha float64) []uint64 {
	if domain == 0 {
		panic("dataset: zipf domain must be positive")
	}
	weights := make([]float64, domain)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -alpha)
	}
	alias := NewAlias(weights)
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(alias.Sample(rng))
	}
	return out
}

// Gaussian draws n values from a discretized Normal(domain/2, domain/8)
// clipped to [0, domain).
func Gaussian(seed int64, n int, domain uint64) []uint64 {
	if domain == 0 {
		panic("dataset: gaussian domain must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	mu := float64(domain) / 2
	sigma := float64(domain) / 8
	out := make([]uint64, n)
	for i := range out {
		for {
			v := math.Round(rng.NormFloat64()*sigma + mu)
			if v >= 0 && v < float64(domain) {
				out[i] = uint64(v)
				break
			}
		}
	}
	return out
}

// Distinct returns the number of distinct values in data.
func Distinct(data []uint64) int {
	seen := make(map[uint64]struct{}, len(data)/4+1)
	for _, d := range data {
		seen[d] = struct{}{}
	}
	return len(seen)
}

// TopShare returns the fraction of rows held by the q most frequent
// values — a skew summary used by tests and the Table II report.
func TopShare(data []uint64, q int) float64 {
	if len(data) == 0 {
		return 0
	}
	freq := make(map[uint64]int)
	for _, d := range data {
		freq[d]++
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if q > len(counts) {
		q = len(counts)
	}
	top := 0
	for _, c := range counts[:q] {
		top += c
	}
	return float64(top) / float64(len(data))
}
