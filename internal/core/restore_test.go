package core

import (
	"math"
	"testing"
)

func restoreFixture() (Params, [][]float64) {
	p := Params{K: 3, M: 8, Epsilon: 2}
	rows := make([][]float64, p.K)
	for j := range rows {
		rows[j] = make([]float64, p.M)
	}
	return p, rows
}

func TestRestoreAggregatorValidates(t *testing.T) {
	p, rows := restoreFixture()
	fam := p.NewFamily(5)

	if _, err := RestoreAggregator(p, fam, rows, 10); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	if _, err := RestoreAggregator(p, nil, rows, 10); err == nil {
		t.Error("nil family accepted")
	}
	if _, err := RestoreAggregator(p, Params{K: 3, M: 16, Epsilon: 2}.NewFamily(5), rows, 10); err == nil {
		t.Error("family with wrong M accepted")
	}
	if _, err := RestoreAggregator(p, fam, rows[:2], 10); err == nil {
		t.Error("short row set accepted")
	}
	bad := [][]float64{rows[0], rows[1], rows[2][:4]}
	if _, err := RestoreAggregator(p, fam, bad, 10); err == nil {
		t.Error("short row accepted")
	}
	if _, err := RestoreAggregator(p, fam, rows, -1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := RestoreAggregator(p, fam, rows, math.NaN()); err == nil {
		t.Error("NaN n accepted")
	}
	if _, err := RestoreAggregator(p, fam, rows, math.Inf(1)); err == nil {
		t.Error("infinite n accepted")
	}
	if _, err := RestoreAggregator(p, fam, rows, 1e300); err == nil {
		t.Error("n beyond 2^53 accepted (would overflow int64 counters)")
	}
	rows[1][3] = math.Inf(-1)
	if _, err := RestoreAggregator(p, fam, rows, 10); err == nil {
		t.Error("non-finite cell accepted")
	}
	rows[1][3] = 0
	if _, err := RestoreSketch(p, fam, rows, 10); err != nil {
		t.Errorf("valid finalized state rejected: %v", err)
	}
	if _, err := RestoreSketch(p, fam, rows[:1], 10); err == nil {
		t.Error("RestoreSketch accepted short row set")
	}
}

// TestRestoredAggregatorIngestsAndMerges: a restored aggregator is a
// first-class aggregator — it keeps ingesting and merging exactly.
func TestRestoredAggregatorIngestsAndMerges(t *testing.T) {
	p, rows := restoreFixture()
	fam := p.NewFamily(5)
	restored, err := RestoreAggregator(p, fam, rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	direct := NewAggregator(p, fam)
	for i := 0; i < 100; i++ {
		r := Report{Y: int8(1 - 2*(i%2)), Row: uint32(i % p.K), Col: uint32(i % p.M)}
		restored.Add(r)
		direct.Add(r)
	}
	other := NewAggregator(p, fam)
	for i := 0; i < 50; i++ {
		r := Report{Y: 1, Row: uint32(i % p.K), Col: uint32((i * 3) % p.M)}
		other.Add(r)
		direct.Add(r)
	}
	if !restored.Compatible(other) {
		t.Fatal("restored aggregator incompatible with a sibling")
	}
	restored.Merge(other)
	a := restored.Finalize()
	b := direct.Finalize()
	for j := 0; j < p.K; j++ {
		for x, v := range a.Row(j) {
			if v != b.Row(j)[x] {
				t.Fatalf("cell [%d,%d]: %v vs %v", j, x, v, b.Row(j)[x])
			}
		}
	}
}

func TestRestoreMatrixValidates(t *testing.T) {
	p := MatrixParams{K: 2, M1: 4, M2: 8, Epsilon: 2}
	famA := Params{K: p.K, M: p.M1, Epsilon: p.Epsilon}.NewFamily(1)
	famB := Params{K: p.K, M: p.M2, Epsilon: p.Epsilon}.NewFamily(2)
	mats := make([][]float64, p.K)
	for j := range mats {
		mats[j] = make([]float64, p.M1*p.M2)
	}

	if _, err := RestoreMatrixAggregator(p, famA, famB, mats, 5); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	if _, err := RestoreMatrixSketch(p, famA, famB, mats, 5); err != nil {
		t.Fatalf("valid finalized state rejected: %v", err)
	}
	if _, err := RestoreMatrixAggregator(p, famB, famA, mats, 5); err == nil {
		t.Error("swapped families accepted")
	}
	if _, err := RestoreMatrixAggregator(p, famA, famB, mats[:1], 5); err == nil {
		t.Error("short replica set accepted")
	}
	short := [][]float64{mats[0], mats[1][:7]}
	if _, err := RestoreMatrixAggregator(p, famA, famB, short, 5); err == nil {
		t.Error("short replica accepted")
	}
	if _, err := RestoreMatrixAggregator(p, famA, famB, mats, math.Inf(1)); err == nil {
		t.Error("infinite n accepted")
	}
	mats[0][0] = math.NaN()
	if _, err := RestoreMatrixSketch(p, famA, famB, mats, 5); err == nil {
		t.Error("NaN cell accepted")
	}
}

// TestMatrixSketchMergeExact: merging two finalized matrix sketches sums
// cells and counts exactly.
func TestMatrixSketchMergeExact(t *testing.T) {
	p := MatrixParams{K: 2, M1: 4, M2: 4, Epsilon: 2}
	famA := Params{K: p.K, M: p.M1, Epsilon: p.Epsilon}.NewFamily(1)
	famB := Params{K: p.K, M: p.M2, Epsilon: p.Epsilon}.NewFamily(2)

	build := func(lo, hi int) *MatrixSketch {
		ma := NewMatrixAggregator(p, famA, famB)
		for i := lo; i < hi; i++ {
			ma.Add(MatrixReport{Y: int8(1 - 2*(i%2)), Row: uint32(i % p.K), L1: uint32(i % p.M1), L2: uint32((i * 3) % p.M2)})
		}
		return ma.Finalize()
	}
	a, b := build(0, 80), build(80, 200)
	want := make([][]float64, p.K)
	for j := range want {
		want[j] = make([]float64, p.M1*p.M2)
		for i := range want[j] {
			want[j][i] = a.Mat(j)[i] + b.Mat(j)[i]
		}
	}
	a.Merge(b)
	if a.N() != 200 {
		t.Fatalf("merged N = %v, want 200", a.N())
	}
	for j := range want {
		for i, v := range want[j] {
			if a.Mat(j)[i] != v {
				t.Fatalf("replica %d cell %d: %v, want %v", j, i, a.Mat(j)[i], v)
			}
		}
	}
	if a.Compatible(build(0, 1)) != true {
		t.Fatal("sibling sketch reported incompatible")
	}
}
