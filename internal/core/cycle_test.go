package core

import (
	"math"
	"testing"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
	"ldpjoin/internal/sketch"
)

func cycleFixture(seed int64, n int, domain uint64) (t1, t2, t3 join.PairTable) {
	gen := func(off int64) []uint64 { return dataset.Zipf(seed+off, n, domain, 1.4) }
	t1 = join.PairTable{A: gen(0), B: gen(1)}
	t2 = join.PairTable{A: gen(2), B: gen(3)}
	t3 = join.PairTable{A: gen(4), B: gen(5)}
	return
}

// TestCompassCycleMatchesExact checks the non-private cyclic estimator
// against the exact 3-cycle join size.
func TestCompassCycleMatchesExact(t *testing.T) {
	const n, domain = 40000, 100
	t1, t2, t3 := cycleFixture(1, n, domain)
	truth := join.CycleSize(t1, t2, t3)
	if truth <= 0 {
		t.Fatal("degenerate cycle fixture")
	}
	const k, m = 9, 128
	famA := hashing.NewFamily(10, k, m)
	famB := hashing.NewFamily(11, k, m)
	famC := hashing.NewFamily(12, k, m)
	m1 := sketch.NewCompassMatrix(famA, famB)
	m1.UpdateAll(t1.A, t1.B)
	m2 := sketch.NewCompassMatrix(famB, famC)
	m2.UpdateAll(t2.A, t2.B)
	m3 := sketch.NewCompassMatrix(famC, famA)
	m3.UpdateAll(t3.A, t3.B)
	est := sketch.CompassCycle(m1, m2, m3)
	if re := math.Abs(est-truth) / truth; re > 0.3 {
		t.Fatalf("COMPASS cycle RE = %.3f (est %.4g truth %.4g)", re, est, truth)
	}
}

// TestCycleEstimateLDP checks the LDP cyclic estimator end to end at a
// generous budget.
func TestCycleEstimateLDP(t *testing.T) {
	const n, domain = 60000, 100
	t1, t2, t3 := cycleFixture(7, n, domain)
	truth := join.CycleSize(t1, t2, t3)
	const k, m = 9, 128
	p := MatrixParams{K: k, M1: m, M2: m, Epsilon: 8}
	famA := hashing.NewFamily(20, k, m)
	famB := hashing.NewFamily(21, k, m)
	famC := hashing.NewFamily(22, k, m)
	rng := newTestRNG(23)
	agg1 := NewMatrixAggregator(p, famA, famB)
	agg1.CollectTable(t1.A, t1.B, rng)
	agg2 := NewMatrixAggregator(p, famB, famC)
	agg2.CollectTable(t2.A, t2.B, rng)
	agg3 := NewMatrixAggregator(p, famC, famA)
	agg3.CollectTable(t3.A, t3.B, rng)
	est := CycleEstimate(agg1.Finalize(), agg2.Finalize(), agg3.Finalize())
	if re := math.Abs(est-truth) / truth; re > 1.0 {
		t.Fatalf("LDP cycle RE = %.3f (est %.4g truth %.4g)", re, est, truth)
	}
}

func TestCycleEstimatePanics(t *testing.T) {
	const k, m = 2, 16
	p := MatrixParams{K: k, M1: m, M2: m, Epsilon: 2}
	famA := hashing.NewFamily(1, k, m)
	famB := hashing.NewFamily(2, k, m)
	famC := hashing.NewFamily(3, k, m)
	m1 := NewMatrixAggregator(p, famA, famB).Finalize()
	m2 := NewMatrixAggregator(p, famB, famC).Finalize()
	bad := NewMatrixAggregator(p, famC, famB).Finalize() // closes on famB, not famA
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for broken cycle families")
		}
	}()
	CycleEstimate(m1, m2, bad)
}
