package core

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"time"

	"ldpjoin/internal/ldp"
)

// ThetaFloor returns the smallest frequent-item threshold θ that keeps
// phase-1 selection above the LDP noise floor for a sample of sampleSize
// users: the median-of-rows frequency estimate carries noise with std
// ≈ 1.25·c_ε·sqrt(n_s), and θ·n_s should clear about six of those σ or a
// large candidate domain floods FI with false positives (the degradation
// the paper reports for tiny θ in Fig 11). Experiments at reduced scale
// clamp their θ to this floor.
func ThetaFloor(eps float64, sampleSize int) float64 {
	if sampleSize <= 0 {
		return 1
	}
	return 7.5 * ldp.CEpsilon(eps) / math.Sqrt(float64(sampleSize))
}

// PlusOptions configures LDPJoinSketch+ (Algorithm 3).
type PlusOptions struct {
	Params
	// SampleRate is r, the fraction of each population that answers in
	// phase 1.
	SampleRate float64
	// Theta is θ, the frequency-share threshold separating high- and
	// low-frequency items: FI_X = {d : f̃_X(d) > θ·|S_X|}.
	Theta float64
	// LiteralNTSubtraction selects the paper's literal Algorithm 5, which
	// subtracts the population-level non-target count from the group
	// sketches. The default (false) scales the count to the group that
	// actually built each sketch, which is what Theorem 8 calls for — see
	// DESIGN.md §2 and the ablation bench.
	LiteralNTSubtraction bool
	// MeanFI selects the Theorem 7 mean estimator for phase-1 frequent-item
	// extraction and mass estimation (the paper's literal reading). The
	// default (false) uses the robust row-median estimator: thresholding
	// the mean over a large domain harvests collision spikes and floods FI
	// with false positives — see DESIGN.md §2 and the ablation bench.
	MeanFI bool
	// Seed drives all randomness: hash families, user shuffling and
	// client-side perturbation.
	Seed int64
}

// Validate extends Params.Validate with the phase-1 knobs.
func (o PlusOptions) Validate() error {
	if err := o.Params.Validate(); err != nil {
		return err
	}
	if !(o.SampleRate > 0 && o.SampleRate < 1) {
		return fmt.Errorf("core: sample rate must lie in (0,1), got %v", o.SampleRate)
	}
	if !(o.Theta > 0 && o.Theta < 1) {
		return fmt.Errorf("core: threshold theta must lie in (0,1), got %v", o.Theta)
	}
	return nil
}

// PlusResult carries the LDPJoinSketch+ estimate and the intermediate
// quantities the experiments report.
type PlusResult struct {
	// Estimate is the final join-size estimate (Algorithm 3, phase 2
	// line 6).
	Estimate float64
	// LowEstimate and HighEstimate are LEst and HEst after group scaling.
	LowEstimate  float64
	HighEstimate float64
	// FrequentItems is FI = FI_A ∪ FI_B from phase 1.
	FrequentItems []uint64
	// HighFreqA and HighFreqB are the estimated population counts of
	// frequent-valued users (Algorithm 5, lines 1–4).
	HighFreqA float64
	HighFreqB float64
	// SampledA/B and group sizes document the user split.
	SampledA, SampledB int
	GroupA1, GroupA2   int
	GroupB1, GroupB2   int
	// BuildTime covers both collection phases (the protocol's offline
	// cost); EstimateTime covers JoinEst (the online cost).
	BuildTime    time.Duration
	EstimateTime time.Duration
}

// EstimateJoinPlus runs the full two-phase LDPJoinSketch+ protocol
// (Algorithm 3) over the two private columns, with candidate values drawn
// from [0, domain). Every user participates exactly once — either in the
// phase-1 sample or in one phase-2 group — so each report can spend the
// whole budget ε (parallel composition over disjoint users).
func EstimateJoinPlus(a, b []uint64, domain uint64, opt PlusOptions) PlusResult {
	if err := opt.Validate(); err != nil {
		panic(err)
	}
	if len(a) < 10 || len(b) < 10 {
		panic("core: LDPJoinSketch+ needs at least 10 users per side")
	}
	buildStart := time.Now()
	rng := rand.New(rand.NewSource(opt.Seed))

	// Assign users to phase-1 sample / group 1 / group 2 uniformly at
	// random (the columns may arrive in any order; shuffling copies keeps
	// the caller's data intact).
	sa, a1, a2 := splitUsers(a, opt.SampleRate, rng)
	sb, b1, b2 := splitUsers(b, opt.SampleRate, rng)

	// Phase 1: plain LDPJoinSketch over the samples, then FI extraction.
	fam1 := opt.Params.NewFamily(PlusSampleSeed(opt.Seed))
	aggA := NewAggregator(opt.Params, fam1)
	aggA.CollectColumn(sa, rng)
	aggB := NewAggregator(opt.Params, fam1)
	aggB.CollectColumn(sb, rng)
	skA := aggA.Finalize()
	skB := aggB.Finalize()

	fiA := skA.FrequentItems(domain, opt.Theta*float64(len(sa)), opt.MeanFI)
	fiB := skB.FrequentItems(domain, opt.Theta*float64(len(sb)), opt.MeanFI)
	fi := NewFISet(fiA)
	for _, d := range fiB {
		fi[d] = struct{}{}
	}
	fiList := make([]uint64, 0, len(fi))
	for d := range fi {
		fiList = append(fiList, d)
	}
	slices.Sort(fiList)

	// Phase 2: group 1 builds the low-frequency sketches, group 2 the
	// high-frequency ones, all through FAP with the full budget.
	fam2 := opt.Params.NewFamily(PlusGroupSeed(opt.Seed))
	mLA := NewAggregator(opt.Params, fam2)
	mLA.CollectColumnFAP(a1, ModeLow, fi, rng)
	mLB := NewAggregator(opt.Params, fam2)
	mLB.CollectColumnFAP(b1, ModeLow, fi, rng)
	mHA := NewAggregator(opt.Params, fam2)
	mHA.CollectColumnFAP(a2, ModeHigh, fi, rng)
	mHB := NewAggregator(opt.Params, fam2)
	mHB.CollectColumnFAP(b2, ModeHigh, fi, rng)

	skLA, skLB := mLA.Finalize(), mLB.Finalize()
	skHA, skHB := mHA.Finalize(), mHB.Finalize()
	buildTime := time.Since(buildStart)

	// JoinEst (Algorithm 5), shared with the serving path.
	estStart := time.Now()
	stateA := &PlusState{Sample: skA, Low: skLA, High: skHA, Domain: domain, Theta: opt.Theta, FI: fiList}
	stateB := &PlusState{Sample: skB, Low: skLB, High: skHB, Domain: domain, Theta: opt.Theta, FI: fiList}
	lEst, hEst, highA, highB := joinEstPlus(stateA, stateB, fiList, opt.LiteralNTSubtraction, opt.MeanFI)

	return PlusResult{
		Estimate:      lEst + hEst,
		LowEstimate:   lEst,
		HighEstimate:  hEst,
		FrequentItems: fiList,
		HighFreqA:     highA,
		HighFreqB:     highB,
		SampledA:      len(sa),
		SampledB:      len(sb),
		GroupA1:       len(a1),
		GroupA2:       len(a2),
		GroupB1:       len(b1),
		GroupB2:       len(b2),
		BuildTime:     buildTime,
		EstimateTime:  time.Since(estStart),
	}
}

// splitUsers shuffles a copy of data and splits it into the phase-1
// sample (rate fraction) and two equal phase-2 groups.
func splitUsers(data []uint64, rate float64, rng *rand.Rand) (sample, g1, g2 []uint64) {
	shuffled := append([]uint64(nil), data...)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	ns := int(rate * float64(len(shuffled)))
	if ns < 1 {
		ns = 1
	}
	if ns > len(shuffled)-2 {
		ns = len(shuffled) - 2
	}
	rest := shuffled[ns:]
	half := len(rest) / 2
	return shuffled[:ns], rest[:half], rest[half:]
}
