package core

import (
	"fmt"
	"slices"
)

// Seed tweaks separating the two LDPJoinSketch+ phases: phase 1 runs a
// plain LDPJoinSketch over the sample under one hash family, phase 2
// runs both FAP group sketches under another. Deriving both from one
// base seed keeps a plus column addressable by a single fingerprint.
const (
	plusSampleSeedXor = 0x1bd11bda
	plusGroupSeedXor  = 0x7afc_2b3d
)

// PlusSampleSeed derives the phase-1 (sample) hash-family seed from a
// plus column's base seed.
func PlusSampleSeed(seed int64) int64 { return seed ^ plusSampleSeedXor }

// PlusGroupSeed derives the phase-2 (low/high group) hash-family seed
// from a plus column's base seed. Both groups share one family: FAP
// changes how non-targets are encoded, not where targets land.
func PlusGroupSeed(seed int64) int64 { return seed ^ plusGroupSeedXor }

// PlusState is the finalized state of one plus column: the phase-1
// sample sketch, the two phase-2 group sketches, and the frozen
// advance parameters that keyed phase 2.
type PlusState struct {
	Sample *Sketch // phase-1 sample (plain LDPJoinSketch)
	Low    *Sketch // phase-2 group 1 (low-frequency targets)
	High   *Sketch // phase-2 group 2 (high-frequency targets)
	// Domain and Theta are the advance parameters FI was extracted with.
	Domain uint64
	Theta  float64
	// FI is the frozen frequent-item set, sorted ascending.
	FI []uint64
}

// Population is the column's total user count across all three phases.
func (s *PlusState) Population() float64 {
	return s.Sample.N() + s.Low.N() + s.High.N()
}

// PlusJoinEstimate is the result of composing two plus column states.
type PlusJoinEstimate struct {
	// Estimate is the final join-size estimate (Algorithm 3, phase 2
	// line 6): the sum of the group-scaled low and high estimates.
	Estimate     float64
	LowEstimate  float64
	HighEstimate float64
	// HighFreqA and HighFreqB are the estimated population counts of
	// frequent-valued users (Algorithm 5, lines 1–4).
	HighFreqA float64
	HighFreqB float64
}

// EstimateJoinPlusColumns composes JoinEst (Algorithm 5) over two
// finalized plus column states. It is the serving-path counterpart of
// EstimateJoinPlus, which simulates the whole protocol: the service,
// the federate CLI and the conformance tests all call this one
// function so a served estimate can be checked for exact equality
// against an in-process reference. The two states must have been
// advanced with the same FI, carry pairwise-compatible sketches, and
// have at least one report in every phase — a zero-report group would
// make the group scaling degenerate.
func EstimateJoinPlusColumns(a, b *PlusState) (PlusJoinEstimate, error) {
	for _, side := range []struct {
		name  string
		state *PlusState
	}{{"left", a}, {"right", b}} {
		s := side.state
		if s == nil || s.Sample == nil || s.Low == nil || s.High == nil {
			return PlusJoinEstimate{}, fmt.Errorf("core: %s plus state is missing a phase sketch", side.name)
		}
		if s.Sample.N() <= 0 || s.Low.N() <= 0 || s.High.N() <= 0 {
			return PlusJoinEstimate{}, fmt.Errorf("core: %s plus column has an empty phase (sample %g, low %g, high %g)",
				side.name, s.Sample.N(), s.Low.N(), s.High.N())
		}
	}
	if !a.Sample.Compatible(b.Sample) || !a.Low.Compatible(b.Low) || !a.High.Compatible(b.High) {
		return PlusJoinEstimate{}, fmt.Errorf("core: plus columns use incompatible sketches")
	}
	if a.Domain != b.Domain || a.Theta != b.Theta || !slices.Equal(a.FI, b.FI) {
		return PlusJoinEstimate{}, fmt.Errorf("core: plus columns froze different frequent-item sets")
	}
	lEst, hEst, highA, highB := joinEstPlus(a, b, a.FI, false, false)
	return PlusJoinEstimate{
		Estimate:     lEst + hEst,
		LowEstimate:  lEst,
		HighEstimate: hEst,
		HighFreqA:    highA,
		HighFreqB:    highB,
	}, nil
}

// joinEstPlus is JoinEst (Algorithm 5) over two sides' finalized phase
// sketches: estimate the frequent population mass from the phase-1
// samples, subtract each group sketch's uniform non-target
// contribution |NT|/m (Theorem 8), take sketch products, and scale the
// group-level estimates back to the population. Shared by
// EstimateJoinPlus (local simulation) and EstimateJoinPlusColumns
// (served columns); fi must be the frozen frequent-item set both
// phase-2 collections were keyed by.
func joinEstPlus(a, b *PlusState, fi []uint64, literalNT, meanFI bool) (lEst, hEst, highA, highB float64) {
	estA, estB := a.Sample.FrequencyMedian, b.Sample.FrequencyMedian
	if meanFI {
		estA, estB = a.Sample.Frequency, b.Sample.Frequency
	}
	popA, popB := a.Population(), b.Population()

	// Population-level frequent mass (Algorithm 5, lines 1–4): phase-1
	// estimates scaled from the sample to the population. Negative
	// estimates carry no mass.
	for _, d := range fi {
		if f := estA(d); f > 0 {
			highA += f * popA / a.Sample.N()
		}
		if f := estB(d); f > 0 {
			highB += f * popB / b.Sample.N()
		}
	}
	if highA > popA {
		highA = popA
	}
	if highB > popB {
		highB = popB
	}

	ntLA, ntLB := highA, highB           // non-targets of the low sketches are frequent users
	ntHA, ntHB := popA-highA, popB-highB // and vice versa
	if !literalNT {                      // scale to the group that built each sketch
		ntLA *= a.Low.N() / popA
		ntLB *= b.Low.N() / popB
		ntHA *= a.High.N() / popA
		ntHB *= b.High.N() / popB
	}
	// Subtracting the uniform |NT|/m contribution (Theorem 8) folds into
	// the dot products via JoinSizeShifted — same estimate as
	// MinusConstant().JoinSize(MinusConstant()) without the four
	// full-sketch copies per estimate.
	m := float64(a.Sample.Params().M)
	lEst = a.Low.JoinSizeShifted(b.Low, ntLA/m, ntLB/m)
	hEst = a.High.JoinSizeShifted(b.High, ntHA/m, ntHB/m)

	scaleL := popA * popB / (a.Low.N() * b.Low.N())
	scaleH := popA * popB / (a.High.N() * b.High.N())
	lEst *= scaleL
	hEst *= scaleH
	return lEst, hEst, highA, highB
}
