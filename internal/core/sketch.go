package core

import (
	"math/rand"
	"runtime"

	"ldpjoin/internal/hashing"
	"ldpjoin/internal/kernel"
	"ldpjoin/internal/ldp"
)

// maxStackK is the widest row-estimate vector the query methods keep on
// the stack. Deployed sketch depths are single to low double digits
// (the paper's configurations top out well under 16), so point lookups
// and the FI scan are allocation-free in practice; deeper sketches fall
// back to one heap scratch per call.
const maxStackK = 16

// Aggregator is the server side of LDPJoinSketch construction (Algorithm
// 2, PriSk): it accumulates the perturbed coefficients at the sampled
// coordinates of each report and, once all reports are in, applies the
// k·c_ε debias scale and restores the sketch out of the Hadamard domain.
// Deferring the constant scale from Add (where Algorithm 2 writes it) to
// Finalize is algebraically identical — the sketch is linear — and keeps
// cell contents integral, so merging partial aggregators is exact and
// order-independent. Aggregators over the same family may be merged before
// finalization, which is what the parallel builder exploits.
type Aggregator struct {
	params Params
	fam    *hashing.Family
	scale  float64 // k·c_ε, the debias factor of Algorithm 2
	rows   [][]float64
	n      float64
	done   bool
}

// NewAggregator creates an empty aggregator. The family must match the
// parameters (same K and M).
func NewAggregator(p Params, fam *hashing.Family) *Aggregator {
	p.mustValidate()
	if fam.K() != p.K || fam.M() != p.M {
		panic("core: hash family does not match params")
	}
	rows := make([][]float64, p.K)
	for j := range rows {
		rows[j] = make([]float64, p.M)
	}
	return &Aggregator{
		params: p,
		fam:    fam,
		scale:  float64(p.K) * ldp.CEpsilon(p.Epsilon),
		rows:   rows,
	}
}

// Add ingests one perturbed report (Algorithm 2, line 4; the constant
// debias scale is applied at Finalize).
func (a *Aggregator) Add(r Report) {
	if a.done {
		panic("core: Aggregator.Add after Finalize")
	}
	a.rows[r.Row][r.Col] += float64(r.Y)
	a.n++
}

// CollectColumn simulates the full protocol for a column of private
// values: each value is perturbed client-side and the report ingested.
func (a *Aggregator) CollectColumn(data []uint64, rng *rand.Rand) {
	for _, d := range data {
		a.Add(Perturb(d, a.params, a.fam, rng))
	}
}

// Merge folds other (not yet finalized, same family) into a.
func (a *Aggregator) Merge(other *Aggregator) {
	if a.done || other.done {
		panic("core: Merge after Finalize")
	}
	if !sameFamily(a.fam, other.fam) {
		panic("core: Merge across hash families")
	}
	for j := range a.rows {
		for x, v := range other.rows[j] {
			a.rows[j][x] += v
		}
	}
	a.n += other.n
}

// N returns the number of reports ingested so far.
func (a *Aggregator) N() float64 { return a.n }

// Params returns the protocol parameters the aggregator folds under.
func (a *Aggregator) Params() Params { return a.params }

// Family returns the hash family shared with the clients.
func (a *Aggregator) Family() *hashing.Family { return a.fam }

// Done reports whether the aggregator has been finalized (and therefore
// cannot ingest, merge, or export snapshots anymore).
func (a *Aggregator) Done() bool { return a.done }

// Rows returns the raw unfinalized accumulation state — K rows of M
// cells, each an exact integer sum of perturbed bits — without copying.
// The snapshot codec reads it directly, which is what lets an exporter
// drain an aggregator into a snapshot with no intermediate copy. The
// caller must not mutate the rows and must not export while another
// goroutine is still folding into the aggregator.
func (a *Aggregator) Rows() [][]float64 { return a.rows }

// Compatible reports whether other accumulates under equal parameters
// and an interchangeable hash family — the precondition for Merge.
func (a *Aggregator) Compatible(other *Aggregator) bool {
	return a.params == other.params && sameFamily(a.fam, other.fam)
}

// Finalize applies the k·c_ε debias scale (Algorithm 2, line 4) and
// restores the sketch (line 6: M ← M × H_m^T; with H symmetric this is a
// row-wise Walsh–Hadamard transform). The aggregator cannot be used
// afterwards.
//
// The K rows are independent, so they restore in parallel across
// GOMAXPROCS; each row runs the fused scale+radix-4 transform, which is
// bit-exact with scaling then hadamard.Transform — finalized state is
// persisted and federated byte-identically, so the worker count and the
// kernel rewrite must not (and do not) show up in the output.
func (a *Aggregator) Finalize() *Sketch {
	if a.done {
		panic("core: Finalize called twice")
	}
	a.done = true
	rows, scale := a.rows, a.scale
	kernel.RowApply(len(rows), func(j int) {
		kernel.FWHTScaled(rows[j], scale)
	})
	return &Sketch{params: a.params, fam: a.fam, rows: a.rows, n: a.n}
}

// sameFamily reports whether two hash families are interchangeable:
// either the same object or derived from the same (seed, k, m), which by
// construction yields identical hash functions. Serialization relies on
// this: an unmarshaled sketch carries a reconstructed family.
func sameFamily(a, b *hashing.Family) bool {
	return a == b || (a.Seed() == b.Seed() && a.K() == b.K() && a.M() == b.M())
}

// Sketch is a finalized LDPJoinSketch: in expectation cell [j, h_j(d)]
// holds Σ_{d(i)=d} ξ_j(d) plus uniform cross-talk (Theorem 2), exactly as
// in a fast-AGMS sketch, which is why fast-AGMS estimators apply
// unchanged.
type Sketch struct {
	params Params
	fam    *hashing.Family
	rows   [][]float64
	n      float64
}

// Params returns the protocol parameters the sketch was built with.
func (s *Sketch) Params() Params { return s.params }

// Family returns the hash family the sketch was built with.
func (s *Sketch) Family() *hashing.Family { return s.fam }

// N returns the number of reports summarized.
func (s *Sketch) N() float64 { return s.n }

// Row returns row j (not a copy).
func (s *Sketch) Row(j int) []float64 { return s.rows[j] }

// Compatible reports whether the two sketches can be combined: equal
// parameters and interchangeable hash families.
func (s *Sketch) Compatible(other *Sketch) bool {
	return s.params == other.params && sameFamily(s.fam, other.fam)
}

// Merge adds other into s cell-wise. Finalization is linear (a constant
// scale followed by the Walsh–Hadamard transform), so the sum of two
// finalized sketches summarizes the union of the two populations and
// every estimator stays unbiased. Floating-point addition is not
// associative, however, so the result is not guaranteed bit-identical
// to finalizing the merged unfinalized state: federation paths that
// need byte-exact results must merge unfinalized snapshots instead.
// Merge mutates s; it must not race the (otherwise read-only) query
// methods. The sketches must be Compatible.
func (s *Sketch) Merge(other *Sketch) {
	if !s.Compatible(other) {
		panic("core: Sketch.Merge of incompatible sketches")
	}
	for j := range s.rows {
		for x, v := range other.rows[j] {
			s.rows[j][x] += v
		}
	}
	s.n += other.n
}

// estScratch returns a row-estimate buffer of capacity K: the caller's
// stack array when it is wide enough, one heap slice otherwise. Query
// methods pass their own stack array so the common K ≤ maxStackK case
// allocates nothing.
func estScratch(buf *[maxStackK]float64, k int) []float64 {
	if k <= maxStackK {
		return buf[:0]
	}
	return make([]float64, 0, k)
}

// JoinSize estimates |A ⋈ B| between the populations behind s and other
// (Eq 5): the median over rows of the row inner products. Both sketches
// must share the hash family.
//
//ldpjoin:hotpath
func (s *Sketch) JoinSize(other *Sketch) float64 {
	if !sameFamily(s.fam, other.fam) {
		panic("core: JoinSize across hash families")
	}
	var buf [maxStackK]float64
	ests := estScratch(&buf, s.params.K)
	for j := range s.rows {
		ests = append(ests, kernel.Dot(s.rows[j], other.rows[j]))
	}
	return kernel.MedianInPlace(ests)
}

// JoinSizeShifted estimates |A ⋈ B| with a constant subtracted from
// every cell of each side first: the median over rows of
// Σ_x (s[j,x]−ca)·(other[j,x]−cb). It equals
// MinusConstant(ca).JoinSize(other.MinusConstant(cb)) — Algorithm 5's
// removal of the uniform |NT|/m non-target contribution (Theorem 8) —
// without copying either sketch; the offsets fold into the dot-product
// inner loop instead.
//
//ldpjoin:hotpath
func (s *Sketch) JoinSizeShifted(other *Sketch, ca, cb float64) float64 {
	if !sameFamily(s.fam, other.fam) {
		panic("core: JoinSizeShifted across hash families")
	}
	var buf [maxStackK]float64
	ests := estScratch(&buf, s.params.K)
	for j := range s.rows {
		ests = append(ests, kernel.DotShifted(s.rows[j], other.rows[j], ca, cb))
	}
	return kernel.MedianInPlace(ests)
}

// JoinSizeMean is the ablation variant of JoinSize that averages the row
// estimators instead of taking their median. The mean has the same
// expectation but no resistance to collision spikes; the ablation bench
// quantifies the difference.
//
//ldpjoin:hotpath
func (s *Sketch) JoinSizeMean(other *Sketch) float64 {
	if !sameFamily(s.fam, other.fam) {
		panic("core: JoinSizeMean across hash families")
	}
	var buf [maxStackK]float64
	ests := estScratch(&buf, s.params.K)
	for j := range s.rows {
		ests = append(ests, kernel.Dot(s.rows[j], other.rows[j]))
	}
	return kernel.Mean(ests)
}

// SelfJoinSize estimates the second frequency moment F2 = Σ_d f(d)² of
// the population behind the sketch. The naive self product is inflated by
// the protocol's own noise energy: each report contributes (k·c_ε)² at
// one sampled coordinate, which the restoring transform spreads across
// all m cells of its row, adding m·k·c_ε² per report in expectation
// (verified empirically across (k, m, ε) in the tests; the cross-product
// JoinSize needs no such correction because the two sketches' noises are
// independent and zero-mean). The bias n·(m·k·c_ε²−1) is subtracted
// before the row median.
//
//ldpjoin:hotpath
func (s *Sketch) SelfJoinSize() float64 {
	ceps := ldp.CEpsilon(s.params.Epsilon)
	bias := (float64(s.params.M)*float64(s.params.K)*ceps*ceps - 1) * s.n
	var buf [maxStackK]float64
	ests := estScratch(&buf, s.params.K)
	for j := range s.rows {
		ests = append(ests, kernel.Dot(s.rows[j], s.rows[j])-bias)
	}
	return kernel.MedianInPlace(ests)
}

// Frequency estimates f(d) as mean_j M[j, h_j(d)]·ξ_j(d) (Theorem 7). The
// estimate is unbiased, but its error is heavy-tailed: a collision with a
// heavy item in a single row shifts the mean by f_heavy/k. Use
// FrequencyMedian when robustness matters more than unbiasedness.
//
//ldpjoin:hotpath
func (s *Sketch) Frequency(d uint64) float64 {
	var sum float64
	for j := range s.rows {
		sum += s.rows[j][s.fam.Bucket(j, d)] * float64(s.fam.Sign(j, d))
	}
	return sum / float64(s.params.K)
}

// FrequencyMedian estimates f(d) as median_j M[j, h_j(d)]·ξ_j(d) — the
// standard fast-AGMS/CountSketch estimator. Unlike the Theorem 7 mean it
// shrugs off single-row heavy-item collisions, which is essential when
// thresholding estimates over a large domain (phase 1 of LDPJoinSketch+):
// thresholding the mean harvests exactly the values whose estimate was
// inflated by a collision spike and floods FI with false positives.
//
//ldpjoin:hotpath
func (s *Sketch) FrequencyMedian(d uint64) float64 {
	var buf [maxStackK]float64
	return s.frequencyMedianInto(d, estScratch(&buf, s.params.K))
}

// frequencyMedianInto is FrequencyMedian over a caller-owned scratch
// buffer (capacity ≥ K, contents irrelevant) — the allocation-free
// inner call of the FI scan, whose workers each carry one scratch.
//
//ldpjoin:hotpath
func (s *Sketch) frequencyMedianInto(d uint64, ests []float64) float64 {
	ests = ests[:0]
	for j := range s.rows {
		ests = append(ests, s.rows[j][s.fam.Bucket(j, d)]*float64(s.fam.Sign(j, d)))
	}
	return kernel.MedianInPlace(ests)
}

// frequentItemsSpan is the smallest domain span the FI scan hands one
// worker: below this the per-goroutine overhead beats the K hash
// evaluations per value being spread out.
const frequentItemsSpan = 4096

// FrequentItems scans [0, domain) and returns the values whose estimated
// frequency exceeds threshold — the server side of LDPJoinSketch+ phase 1.
// useMean selects the Theorem 7 mean estimator (the paper's literal
// reading); the default median is the robust choice (see FrequencyMedian).
//
// The scan is O(domain·K) hash evaluations with no cross-value state, so
// it shards the domain into contiguous spans scanned in parallel across
// GOMAXPROCS, each worker carrying its own estimate scratch. Every value
// is judged independently by the same threshold and the spans
// concatenate in order, so the result — sorted strictly ascending, the
// canonical FI form — is identical to the serial scan no matter the
// worker count (the determinism the WAL-replayed advance proposal
// requires).
func (s *Sketch) FrequentItems(domain uint64, threshold float64, useMean bool) []uint64 {
	shards := runtime.GOMAXPROCS(0) * 4
	if max := int(domain / frequentItemsSpan); shards > max {
		shards = max
	}
	if shards <= 1 {
		return s.frequentItemsRange(0, domain, threshold, useMean)
	}
	span := domain / uint64(shards)
	outs := make([][]uint64, shards)
	kernel.RowApply(shards, func(w int) {
		lo := uint64(w) * span
		hi := lo + span
		if w == shards-1 {
			hi = domain
		}
		outs[w] = s.frequentItemsRange(lo, hi, threshold, useMean)
	})
	var total int
	for _, part := range outs {
		total += len(part)
	}
	out := make([]uint64, 0, total)
	for _, part := range outs {
		out = append(out, part...)
	}
	return out
}

// frequentItemsRange is the serial FI scan over [lo, hi), reusing one
// estimate scratch across the whole span.
func (s *Sketch) frequentItemsRange(lo, hi uint64, threshold float64, useMean bool) []uint64 {
	var out []uint64
	var buf [maxStackK]float64
	ests := estScratch(&buf, s.params.K)[:0]
	for d := lo; d < hi; d++ {
		var f float64
		if useMean {
			f = s.Frequency(d)
		} else {
			f = s.frequencyMedianInto(d, ests)
		}
		if f > threshold {
			out = append(out, d)
		}
	}
	return out
}

// MinusConstant returns a copy of the sketch with c subtracted from every
// cell — the literal reading of Algorithm 5's removal of the uniform
// |NT|/m non-target contribution (Theorem 8). The serving path does not
// use it anymore: JoinSizeShifted computes the identical estimate with
// the offsets folded into the dot-product inner loop, skipping the two
// full-sketch copies. MinusConstant remains as the executable reference
// the property tests pin JoinSizeShifted against.
func (s *Sketch) MinusConstant(c float64) *Sketch {
	rows := make([][]float64, len(s.rows))
	for j := range rows {
		rows[j] = make([]float64, len(s.rows[j]))
		for x, v := range s.rows[j] {
			rows[j][x] = v - c
		}
	}
	return &Sketch{params: s.params, fam: s.fam, rows: rows, n: s.n}
}
