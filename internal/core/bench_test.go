package core

import (
	"math/rand"
	"testing"

	"ldpjoin/internal/hashing"
)

// benchAggregator builds an aggregator at the deployment-ish shape the
// service benches use (K=9, M=512, ε=4) filled with perturbed reports
// over a Zipf-ish value range, ready to finalize.
func benchAggregator(tb testing.TB) *Aggregator {
	tb.Helper()
	p := Params{K: 9, M: 512, Epsilon: 4}
	fam := hashing.NewFamily(42, p.K, p.M)
	agg := NewAggregator(p, fam)
	rng := rand.New(rand.NewSource(7))
	data := make([]uint64, 1<<13)
	for i := range data {
		data[i] = uint64(rng.Intn(1 << 16))
	}
	agg.CollectColumn(data, rng)
	return agg
}

// BenchmarkFinalize measures the debias-scale + row-restore hot path:
// K independent fused scale+FWHT transforms. Each iteration restores
// the accumulation state from a template copy so the transform always
// runs on fresh (untransformed) rows; the copy is ~9·512 floats and is
// noise next to the transforms.
func BenchmarkFinalize(b *testing.B) {
	agg := benchAggregator(b)
	template := make([][]float64, len(agg.rows))
	for j := range agg.rows {
		template[j] = append([]float64(nil), agg.rows[j]...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range agg.rows {
			copy(agg.rows[j], template[j])
		}
		agg.done = false
		agg.Finalize()
	}
}

// BenchmarkFrequentItems measures the FI scan (Algorithm 4's candidate
// sweep) over a 64Ki-item domain — large enough to engage the sharded
// path — with the median estimator the serving endpoint uses.
func BenchmarkFrequentItems(b *testing.B) {
	s := benchAggregator(b).Finalize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkItems = s.FrequentItems(1<<16, 64, false)
	}
}

// BenchmarkFrequencyMedian measures a single point lookup — the
// per-candidate cost inside the FI scan and the /v1/frequency path —
// which must stay allocation-free for K ≤ maxStackK.
func BenchmarkFrequencyMedian(b *testing.B) {
	s := benchAggregator(b).Finalize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkFloat = s.FrequencyMedian(uint64(i) & 0xffff)
	}
}

var (
	benchSinkItems []uint64
	benchSinkFloat float64
)
