package core

import (
	"math"
	"math/rand"
	"testing"

	"ldpjoin/internal/hadamard"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/ldp"
)

// fapProb returns the exact output probability P[(y,j,l) | d] of
// Algorithm 4. Target values follow the Algorithm 1 distribution;
// non-target values marginalize over the uniform random index r.
func fapProb(d uint64, mode Mode, fi FISet, y int8, j, l int, p Params, fam *hashing.Family) float64 {
	nonTarget := (mode == ModeHigh) == !fi.Contains(d)
	if !nonTarget {
		return clientProb(d, y, j, l, p, fam)
	}
	keep := ldp.KeepProb(p.Epsilon)
	base := 1 / float64(p.K*p.M)
	var pr float64
	for r := 0; r < p.M; r++ {
		w := int8(hadamard.Entry(r, l))
		if y == w {
			pr += keep / float64(p.M)
		} else {
			pr += (1 - keep) / float64(p.M)
		}
	}
	return base * pr
}

// TestFAPSatisfiesLDP is Theorem 6 as a test: exact enumeration over all
// pairs of inputs — target vs target, target vs non-target, non-target vs
// non-target — in both modes.
func TestFAPSatisfiesLDP(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(31)
	fi := NewFISet([]uint64{0, 3, 9}) // some values frequent, some not
	const domain = 12
	bound := math.Exp(p.Epsilon) + 1e-12
	for _, mode := range []Mode{ModeLow, ModeHigh} {
		for d1 := uint64(0); d1 < domain; d1++ {
			for d2 := uint64(0); d2 < domain; d2++ {
				for j := 0; j < p.K; j++ {
					for l := 0; l < p.M; l++ {
						for _, y := range []int8{-1, 1} {
							r := fapProb(d1, mode, fi, y, j, l, p, fam) / fapProb(d2, mode, fi, y, j, l, p, fam)
							if r > bound || r < 1/bound {
								t.Fatalf("FAP LDP violated: mode=%v d=%d,%d out=(%d,%d,%d) ratio=%g",
									mode, d1, d2, y, j, l, r)
							}
						}
					}
				}
			}
		}
	}
}

// TestFAPTargetPathEqualsPerturb checks that a target value goes through
// Algorithm 1 unchanged (same randomness, same report).
func TestFAPTargetPathEqualsPerturb(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(33)
	fi := NewFISet([]uint64{7})
	for i := 0; i < 500; i++ {
		seed := int64(i)
		// 7 ∈ FI is the target under ModeHigh.
		r1 := FAPPerturb(7, ModeHigh, fi, p, fam, rand.New(rand.NewSource(seed)))
		r2 := Perturb(7, p, fam, rand.New(rand.NewSource(seed)))
		if r1 != r2 {
			t.Fatalf("target path diverged from Algorithm 1: %+v vs %+v", r1, r2)
		}
		// 5 ∉ FI is the target under ModeLow.
		r3 := FAPPerturb(5, ModeLow, fi, p, fam, rand.New(rand.NewSource(seed)))
		r4 := Perturb(5, p, fam, rand.New(rand.NewSource(seed)))
		if r3 != r4 {
			t.Fatalf("low target path diverged: %+v vs %+v", r3, r4)
		}
	}
}

// TestFAPEmpiricalMatchesClosedForm validates the enumeration helper
// against simulation for a non-target value.
func TestFAPEmpiricalMatchesClosedForm(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(35)
	fi := NewFISet([]uint64{2})
	rng := rand.New(rand.NewSource(36))
	const n = 400000
	counts := map[Report]int{}
	for i := 0; i < n; i++ {
		// d=4 ∉ FI is a non-target under ModeHigh.
		counts[FAPPerturb(4, ModeHigh, fi, p, fam, rng)]++
	}
	for j := 0; j < p.K; j++ {
		for l := 0; l < p.M; l++ {
			for _, y := range []int8{-1, 1} {
				want := fapProb(4, ModeHigh, fi, y, j, l, p, fam)
				got := float64(counts[Report{Y: y, Row: uint32(j), Col: uint32(l)}]) / n
				if math.Abs(got-want) > 0.004 {
					t.Fatalf("out=(%d,%d,%d): empirical %.4f vs exact %.4f", y, j, l, got, want)
				}
			}
		}
	}
}

// TestNonTargetUniformContribution is Theorem 8 as a test: a sketch built
// purely from non-target values has every cell close to |NT|/m.
func TestNonTargetUniformContribution(t *testing.T) {
	p := Params{K: 2, M: 16, Epsilon: 4}
	fam := p.NewFamily(37)
	fi := NewFISet([]uint64{1, 2, 3})
	const nt = 200000
	agg := NewAggregator(p, fam)
	rng := rand.New(rand.NewSource(38))
	for i := 0; i < nt; i++ {
		// All values are in FI, so under ModeLow every one is non-target.
		agg.Add(FAPPerturb(uint64(1+i%3), ModeLow, fi, p, fam, rng))
	}
	sk := agg.Finalize()
	want := float64(nt) / float64(p.M)
	// Per-cell noise std ≈ sqrt(k·c_ε²·|NT|) ≈ 660; allow 5σ.
	slack := 5 * math.Sqrt(float64(p.K)*ldp.CEpsilon(p.Epsilon)*ldp.CEpsilon(p.Epsilon)*nt)
	for j := 0; j < p.K; j++ {
		for x := 0; x < p.M; x++ {
			if got := sk.Row(j)[x]; math.Abs(got-want) > slack {
				t.Fatalf("cell [%d,%d] = %.0f, want %.0f ± %.0f", j, x, got, want, slack)
			}
		}
	}
}

func TestFISet(t *testing.T) {
	fi := NewFISet([]uint64{1, 5})
	if !fi.Contains(1) || !fi.Contains(5) || fi.Contains(2) {
		t.Fatal("FISet membership wrong")
	}
	if len(NewFISet(nil)) != 0 {
		t.Fatal("empty FISet should have no members")
	}
}

func TestModeString(t *testing.T) {
	if ModeLow.String() != "low" || ModeHigh.String() != "high" {
		t.Fatal("Mode.String mismatch")
	}
}
