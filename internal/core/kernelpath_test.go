package core

import (
	"math/rand"
	"sync"
	"testing"

	"ldpjoin/internal/hadamard"
	"ldpjoin/internal/hashing"
)

// These tests pin the kernel-backed hot paths to their executable
// references inside core itself: the kernel package proves each
// primitive bit-exact in isolation, and these prove the rewiring —
// parallel Finalize, the sharded FI scan, the shifted plus-join dot —
// composed them without changing a single output bit.

// filledAggregator returns an aggregator with n perturbed reports over
// [0, domain) folded in.
func filledAggregator(p Params, seed int64, n int, domain uint64) *Aggregator {
	fam := hashing.NewFamily(seed, p.K, p.M)
	agg := NewAggregator(p, fam)
	rng := rand.New(rand.NewSource(seed + 1))
	data := make([]uint64, n)
	for i := range data {
		data[i] = uint64(rng.Int63n(int64(domain)))
	}
	agg.CollectColumn(data, rng)
	return agg
}

// TestFinalizeBitExactVsReference: the parallel fused scale+radix-4
// restore must equal — cell for cell, bit for bit — the literal
// Algorithm 2 reading: scale every cell by k·c_ε, then
// hadamard.Transform each row. Finalized state is persisted and
// federated byte-identically, so approximate equality is not enough.
func TestFinalizeBitExactVsReference(t *testing.T) {
	for _, p := range []Params{
		{K: 5, M: 64, Epsilon: 1},
		{K: 9, M: 512, Epsilon: 4},
		{K: 18, M: 256, Epsilon: 2}, // K > maxStackK
	} {
		agg := filledAggregator(p, 11, 4096, 1<<14)
		ref := make([][]float64, p.K)
		for j, row := range agg.rows {
			ref[j] = append([]float64(nil), row...)
			for x := range ref[j] {
				ref[j][x] *= agg.scale
			}
			hadamard.Transform(ref[j])
		}
		s := agg.Finalize()
		for j := range ref {
			for x := range ref[j] {
				if s.rows[j][x] != ref[j][x] {
					t.Fatalf("K=%d M=%d: cell [%d,%d] = %v, reference %v", p.K, p.M, j, x, s.rows[j][x], ref[j][x])
				}
			}
		}
	}
}

// TestMatrixFinalizeBitExactVsReference: same contract for the 2-dim
// restore H^T·M·H^T — fused row scaling and the column gather/scatter
// must match scale-then-transform-rows-then-columns exactly.
func TestMatrixFinalizeBitExactVsReference(t *testing.T) {
	p := MatrixParams{K: 5, M1: 32, M2: 64, Epsilon: 2}
	famA := hashing.NewFamily(3, p.K, p.M1)
	famB := hashing.NewFamily(4, p.K, p.M2)
	ma := NewMatrixAggregator(p, famA, famB)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4096; i++ {
		ma.Add(PerturbTuple(uint64(rng.Intn(500)), uint64(rng.Intn(500)), p, famA, famB, rng))
	}

	ref := make([][]float64, p.K)
	for j, mat := range ma.mats {
		ref[j] = append([]float64(nil), mat...)
		for i := range ref[j] {
			ref[j][i] *= ma.scale
		}
		for x := 0; x < p.M1; x++ {
			hadamard.Transform(ref[j][x*p.M2 : (x+1)*p.M2])
		}
		col := make([]float64, p.M1)
		for y := 0; y < p.M2; y++ {
			for x := 0; x < p.M1; x++ {
				col[x] = ref[j][x*p.M2+y]
			}
			hadamard.Transform(col)
			for x := 0; x < p.M1; x++ {
				ref[j][x*p.M2+y] = col[x]
			}
		}
	}
	ms := ma.Finalize()
	for j := range ref {
		for i := range ref[j] {
			if ms.mats[j][i] != ref[j][i] {
				t.Fatalf("replica %d cell %d = %v, reference %v", j, i, ms.mats[j][i], ref[j][i])
			}
		}
	}
}

// TestFrequentItemsShardedMatchesSerial: the sharded scan must return
// exactly the serial scan's list — same values, same (ascending)
// order — for both estimators. The WAL-replayed advance proposal
// replays FI output deterministically, so this is a correctness
// invariant, not a nicety.
func TestFrequentItemsShardedMatchesSerial(t *testing.T) {
	p := Params{K: 9, M: 512, Epsilon: 4}
	const domain = 8 * frequentItemsSpan // enough to engage sharding
	s := filledAggregator(p, 21, 1<<14, domain).Finalize()
	for _, useMean := range []bool{false, true} {
		threshold := 8.0
		serial := s.frequentItemsRange(0, domain, threshold, useMean)
		sharded := s.FrequentItems(domain, threshold, useMean)
		if len(serial) == 0 {
			t.Fatalf("useMean=%v: serial scan found nothing; threshold too high for the fixture", useMean)
		}
		if len(sharded) != len(serial) {
			t.Fatalf("useMean=%v: sharded found %d items, serial %d", useMean, len(sharded), len(serial))
		}
		for i := range serial {
			if sharded[i] != serial[i] {
				t.Fatalf("useMean=%v: item %d: sharded %d, serial %d", useMean, i, sharded[i], serial[i])
			}
		}
	}
}

// TestJoinSizeShiftedMatchesMinusConstant: the serving path
// (JoinSizeShifted, offsets folded into the dot loop) must equal the
// reference path (MinusConstant copies, then JoinSize) exactly — the
// subtract-then-multiply per cell and the accumulation order are the
// same ops in the same order on both routes.
func TestJoinSizeShiftedMatchesMinusConstant(t *testing.T) {
	p := Params{K: 9, M: 256, Epsilon: 4}
	fam := hashing.NewFamily(31, p.K, p.M)
	a := NewAggregator(p, fam)
	b := NewAggregator(p, fam)
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 4096; i++ {
		a.Add(Perturb(uint64(rng.Intn(1000)), p, fam, rng))
		b.Add(Perturb(uint64(rng.Intn(1000)), p, fam, rng))
	}
	sa, sb := a.Finalize(), b.Finalize()
	for _, c := range [][2]float64{{0, 0}, {1.5, 0}, {0, 2.25}, {3.75, 1.5}, {-2, 7}} {
		got := sa.JoinSizeShifted(sb, c[0], c[1])
		want := sa.MinusConstant(c[0]).JoinSize(sb.MinusConstant(c[1]))
		if got != want {
			t.Fatalf("ca=%v cb=%v: JoinSizeShifted %v, MinusConstant reference %v", c[0], c[1], got, want)
		}
	}
}

// TestParallelQueryRace hammers the read paths that now run worker
// pools or shared kernels — concurrent Finalize calls on independent
// aggregators, then concurrent FrequentItems/JoinSize/FrequencyMedian
// on one shared sketch — as a canary for the race detector.
func TestParallelQueryRace(t *testing.T) {
	p := Params{K: 9, M: 512, Epsilon: 4}
	fam := hashing.NewFamily(99, p.K, p.M)
	var wg sync.WaitGroup
	sketches := make([]*Sketch, 4)
	for i := range sketches {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			agg := NewAggregator(p, fam)
			rng := rand.New(rand.NewSource(int64(100 + i)))
			data := make([]uint64, 2048)
			for x := range data {
				data[x] = uint64(rng.Int63n(1 << 13))
			}
			agg.CollectColumn(data, rng)
			sketches[i] = agg.Finalize()
		}(i)
	}
	wg.Wait()

	s, o := sketches[0], sketches[1]
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_ = s.FrequentItems(4*frequentItemsSpan, 8, g%2 == 0)
			_ = s.JoinSize(o)
			_ = s.JoinSizeShifted(o, 1, 2)
			_ = s.FrequencyMedian(uint64(g))
			_ = s.SelfJoinSize()
		}(g)
	}
	wg.Wait()
}
