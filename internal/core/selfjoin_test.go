package core

import (
	"math"
	"testing"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

// TestSelfJoinSizeAcrossConfigs locks the self-product debias formula
// n·(m·k·c_ε²−1): the F2 estimate must land near the truth for several
// (k, m, ε) combinations, which fails for any mis-scaled bias.
func TestSelfJoinSizeAcrossConfigs(t *testing.T) {
	data := dataset.Zipf(6, 100000, 5000, 1.3)
	truth := join.F2(data)
	for _, cfg := range []Params{
		{K: 9, M: 1024, Epsilon: 6},
		{K: 9, M: 256, Epsilon: 2},
		{K: 4, M: 512, Epsilon: 4},
		{K: 18, M: 2048, Epsilon: 10},
	} {
		fam := cfg.NewFamily(77)
		agg := NewAggregator(cfg, fam)
		agg.CollectColumn(data, newTestRNG(78))
		est := agg.Finalize().SelfJoinSize()
		if re := math.Abs(est-truth) / truth; re > 0.35 {
			t.Errorf("%+v: F2 RE = %.3f (est %.4g truth %.4g)", cfg, re, est, truth)
		}
	}
}

// TestJoinSizeMeanCloseToMedianOnCleanData: with no heavy collisions the
// mean and median row aggregations should roughly agree.
func TestJoinSizeMeanCloseToMedianOnCleanData(t *testing.T) {
	p := Params{K: 9, M: 1024, Epsilon: 6}
	fam := p.NewFamily(5)
	da := dataset.Zipf(1, 80000, 4000, 1.3)
	db := dataset.Zipf(2, 80000, 4000, 1.3)
	aggA := NewAggregator(p, fam)
	aggA.CollectColumn(da, newTestRNG(3))
	aggB := NewAggregator(p, fam)
	aggB.CollectColumn(db, newTestRNG(4))
	skA, skB := aggA.Finalize(), aggB.Finalize()
	med := skA.JoinSize(skB)
	mean := skA.JoinSizeMean(skB)
	truth := join.Size(da, db)
	if math.Abs(mean-med) > 0.5*truth {
		t.Fatalf("mean %.4g and median %.4g wildly disagree (truth %.4g)", mean, med, truth)
	}
}

func TestJoinSizeMeanPanicsAcrossFamilies(t *testing.T) {
	p := Params{K: 2, M: 16, Epsilon: 1}
	a := NewAggregator(p, p.NewFamily(1)).Finalize()
	b := NewAggregator(p, p.NewFamily(2)).Finalize()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.JoinSizeMean(b)
}
