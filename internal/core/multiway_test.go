package core

import (
	"math"
	"math/rand"
	"testing"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/hadamard"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
	"ldpjoin/internal/ldp"
)

func matrixParams() MatrixParams { return MatrixParams{K: 2, M1: 8, M2: 4, Epsilon: 1.5} }

func TestPerturbTupleShape(t *testing.T) {
	p := matrixParams()
	famA := hashing.NewFamily(1, p.K, p.M1)
	famB := hashing.NewFamily(2, p.K, p.M2)
	rng := newTestRNG(3)
	for i := 0; i < 3000; i++ {
		r := PerturbTuple(uint64(i%50), uint64(i%37), p, famA, famB, rng)
		if r.Y != 1 && r.Y != -1 {
			t.Fatalf("Y = %d", r.Y)
		}
		if int(r.Row) >= p.K || int(r.L1) >= p.M1 || int(r.L2) >= p.M2 {
			t.Fatalf("indices out of range: %+v", r)
		}
	}
}

// tupleProb is the exact output distribution of the multiway client.
func tupleProb(a, b uint64, y int8, j, l1, l2 int, p MatrixParams, famA, famB *hashing.Family) float64 {
	w := int8(hadamard.Entry(famA.Bucket(j, a), l1) *
		famA.Sign(j, a) * famB.Sign(j, b) *
		hadamard.Entry(l2, famB.Bucket(j, b)))
	keep := ldp.KeepProb(p.Epsilon)
	base := 1 / float64(p.K*p.M1*p.M2)
	if y == w {
		return base * keep
	}
	return base * (1 - keep)
}

// TestPerturbTupleSatisfiesLDP extends the Theorem 1 enumeration to the
// two-attribute client of §VI: the ratio bound must hold for every pair
// of tuples, protecting both attributes jointly.
func TestPerturbTupleSatisfiesLDP(t *testing.T) {
	p := matrixParams()
	famA := hashing.NewFamily(4, p.K, p.M1)
	famB := hashing.NewFamily(5, p.K, p.M2)
	bound := math.Exp(p.Epsilon) + 1e-12
	tuples := [][2]uint64{{0, 0}, {1, 5}, {3, 3}, {7, 2}}
	for _, t1 := range tuples {
		for _, t2 := range tuples {
			for j := 0; j < p.K; j++ {
				for l1 := 0; l1 < p.M1; l1++ {
					for l2 := 0; l2 < p.M2; l2++ {
						for _, y := range []int8{-1, 1} {
							r := tupleProb(t1[0], t1[1], y, j, l1, l2, p, famA, famB) /
								tupleProb(t2[0], t2[1], y, j, l1, l2, p, famA, famB)
							if r > bound || r < 1/bound {
								t.Fatalf("tuple LDP violated: %v vs %v ratio %g", t1, t2, r)
							}
						}
					}
				}
			}
		}
	}
}

// TestMatrixSketchExpectation: a table holding a single repeated tuple
// must restore, on average, count·ξ_A(a)ξ_B(b) at [h_A(a), h_B(b)].
func TestMatrixSketchExpectation(t *testing.T) {
	p := MatrixParams{K: 2, M1: 8, M2: 8, Epsilon: 4}
	famA := hashing.NewFamily(6, p.K, p.M1)
	famB := hashing.NewFamily(7, p.K, p.M2)
	const n = 150000
	agg := NewMatrixAggregator(p, famA, famB)
	rng := newTestRNG(8)
	for i := 0; i < n; i++ {
		agg.Add(PerturbTuple(9, 4, p, famA, famB, rng))
	}
	ms := agg.Finalize()
	if ms.N() != n {
		t.Fatalf("N = %g", ms.N())
	}
	slack := 6 * math.Sqrt(float64(p.K)*math.Pow(ldp.CEpsilon(p.Epsilon), 2)*n)
	for j := 0; j < p.K; j++ {
		want := float64(n) * float64(famA.Sign(j, 9)*famB.Sign(j, 4))
		got := ms.Mat(j)[famA.Bucket(j, 9)*p.M2+famB.Bucket(j, 4)]
		if math.Abs(got-want) > slack {
			t.Fatalf("replica %d: cell %.0f, want %.0f ± %.0f", j, got, want, slack)
		}
	}
}

func multiwayFixture(seed int64, n int, domain uint64) (t1 []uint64, t2 join.PairTable, t3 []uint64) {
	t1 = dataset.Zipf(seed, n, domain, 1.5)
	t3 = dataset.Zipf(seed+1, n, domain, 1.5)
	t2.A = dataset.Zipf(seed+2, n, domain, 1.5)
	t2.B = dataset.Zipf(seed+3, n, domain, 1.5)
	return
}

func TestChainEstimate3Way(t *testing.T) {
	const n, domain = 100000, 200
	t1, t2, t3 := multiwayFixture(10, n, domain)
	truth := join.ChainSize(t1, []join.PairTable{t2}, t3)

	endP := Params{K: 9, M: 256, Epsilon: 6}
	midP := MatrixParams{K: 9, M1: 256, M2: 256, Epsilon: 6}
	famA := endP.NewFamily(11)
	famB := endP.NewFamily(12)

	rng := newTestRNG(13)
	agg1 := NewAggregator(endP, famA)
	agg1.CollectColumn(t1, rng)
	agg3 := NewAggregator(endP, famB)
	agg3.CollectColumn(t3, rng)
	aggM := NewMatrixAggregator(midP, famA, famB)
	aggM.CollectTable(t2.A, t2.B, rng)

	est := ChainEstimate(agg1.Finalize(), []*MatrixSketch{aggM.Finalize()}, agg3.Finalize())
	if re := math.Abs(est-truth) / truth; re > 0.5 {
		t.Fatalf("3-way LDP chain RE = %.3f (est %.3g truth %.3g)", re, est, truth)
	}
}

func TestChainEstimate4Way(t *testing.T) {
	const n, domain = 80000, 100
	t1, t2, t4 := multiwayFixture(20, n, domain)
	t3 := join.PairTable{
		A: dataset.Zipf(24, n, domain, 1.5),
		B: dataset.Zipf(25, n, domain, 1.5),
	}
	truth := join.ChainSize(t1, []join.PairTable{t2, t3}, t4)

	endP := Params{K: 9, M: 128, Epsilon: 8}
	midP := MatrixParams{K: 9, M1: 128, M2: 128, Epsilon: 8}
	famA := endP.NewFamily(26)
	famB := endP.NewFamily(27)
	famC := endP.NewFamily(28)

	rng := newTestRNG(29)
	agg1 := NewAggregator(endP, famA)
	agg1.CollectColumn(t1, rng)
	agg4 := NewAggregator(endP, famC)
	agg4.CollectColumn(t4, rng)
	aggM2 := NewMatrixAggregator(midP, famA, famB)
	aggM2.CollectTable(t2.A, t2.B, rng)
	aggM3 := NewMatrixAggregator(midP, famB, famC)
	aggM3.CollectTable(t3.A, t3.B, rng)

	est := ChainEstimate(agg1.Finalize(), []*MatrixSketch{aggM2.Finalize(), aggM3.Finalize()}, agg4.Finalize())
	if truth == 0 {
		t.Fatal("fixture produced empty 4-way join")
	}
	if re := math.Abs(est-truth) / truth; re > 1.0 {
		t.Fatalf("4-way LDP chain RE = %.3f (est %.3g truth %.3g)", re, est, truth)
	}
}

func TestMatrixAggregatorLifecycle(t *testing.T) {
	p := matrixParams()
	famA := hashing.NewFamily(1, p.K, p.M1)
	famB := hashing.NewFamily(2, p.K, p.M2)
	func() {
		agg := NewMatrixAggregator(p, famA, famB)
		agg.Finalize()
		defer func() {
			if recover() == nil {
				t.Error("expected panic: Add after Finalize")
			}
		}()
		agg.Add(MatrixReport{})
	}()
	func() {
		agg := NewMatrixAggregator(p, famA, famB)
		agg.Finalize()
		defer func() {
			if recover() == nil {
				t.Error("expected panic: double Finalize")
			}
		}()
		agg.Finalize()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic: family mismatch")
			}
		}()
		NewMatrixAggregator(p, famB, famA)
	}()
	func() {
		agg := NewMatrixAggregator(p, famA, famB)
		defer func() {
			if recover() == nil {
				t.Error("expected panic: ragged table")
			}
		}()
		agg.CollectTable([]uint64{1}, []uint64{1, 2}, rand.New(rand.NewSource(1)))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic: bad dims")
			}
		}()
		MatrixParams{K: 1, M1: 3, M2: 4, Epsilon: 1}.mustValidate()
	}()
}

func TestChainEstimatePanicsOnKMismatch(t *testing.T) {
	pa := Params{K: 2, M: 8, Epsilon: 1}
	pb := Params{K: 3, M: 8, Epsilon: 1}
	left := NewAggregator(pa, pa.NewFamily(1)).Finalize()
	right := NewAggregator(pb, pb.NewFamily(2)).Finalize()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ChainEstimate(left, nil, right)
}

func TestVecMatPanicsOnDimMismatch(t *testing.T) {
	p := matrixParams()
	famA := hashing.NewFamily(1, p.K, p.M1)
	famB := hashing.NewFamily(2, p.K, p.M2)
	ms := NewMatrixAggregator(p, famA, famB).Finalize()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ms.VecMat(0, make([]float64, p.M1+1))
}

// TestMatrixAggregatorMerge: merging two aggregators over disjoint halves
// of a report stream must finalize identically to one aggregator that saw
// every report — the exactness the sharded builders rely on.
func TestMatrixAggregatorMerge(t *testing.T) {
	p := MatrixParams{K: 3, M1: 16, M2: 8, Epsilon: 2}
	famA := hashing.NewFamily(1, p.K, p.M1)
	famB := hashing.NewFamily(2, p.K, p.M2)

	rng := rand.New(rand.NewSource(5))
	reports := make([]MatrixReport, 4000)
	for i := range reports {
		reports[i] = PerturbTuple(uint64(i%40), uint64(i%25), p, famA, famB, rng)
	}

	whole := NewMatrixAggregator(p, famA, famB)
	half1 := NewMatrixAggregator(p, famA, famB)
	half2 := NewMatrixAggregator(p, famA, famB)
	for i, r := range reports {
		whole.Add(r)
		if i < len(reports)/2 {
			half1.Add(r)
		} else {
			half2.Add(r)
		}
	}
	half1.Merge(half2)

	msWhole, msMerged := whole.Finalize(), half1.Finalize()
	if msWhole.N() != msMerged.N() {
		t.Fatalf("merged N = %g, want %g", msMerged.N(), msWhole.N())
	}
	for j := 0; j < p.K; j++ {
		w, m := msWhole.Mat(j), msMerged.Mat(j)
		for i := range w {
			if w[i] != m[i] {
				t.Fatalf("replica %d cell %d: merged %g != whole %g", j, i, m[i], w[i])
			}
		}
	}

	// Merge must refuse finalized inputs and mismatched families.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Merge after Finalize did not panic")
			}
		}()
		half1.Merge(NewMatrixAggregator(p, famA, famB))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Merge across families did not panic")
			}
		}()
		other := NewMatrixAggregator(p, hashing.NewFamily(9, p.K, p.M1), famB)
		NewMatrixAggregator(p, famA, famB).Merge(other)
	}()
}
