package core

import (
	"math"
	"math/rand"
	"testing"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

func TestAggregatorCounts(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(1)
	agg := NewAggregator(p, fam)
	rng := rand.New(rand.NewSource(1))
	agg.CollectColumn([]uint64{1, 2, 3}, rng)
	if agg.N() != 3 {
		t.Fatalf("N = %g, want 3", agg.N())
	}
	sk := agg.Finalize()
	if sk.N() != 3 {
		t.Fatalf("sketch N = %g, want 3", sk.N())
	}
	if sk.Params() != p || sk.Family() != fam {
		t.Fatal("sketch metadata lost")
	}
}

func TestAggregatorLifecyclePanics(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(1)
	func() {
		agg := NewAggregator(p, fam)
		agg.Finalize()
		defer func() {
			if recover() == nil {
				t.Error("expected panic: Add after Finalize")
			}
		}()
		agg.Add(Report{})
	}()
	func() {
		agg := NewAggregator(p, fam)
		agg.Finalize()
		defer func() {
			if recover() == nil {
				t.Error("expected panic: double Finalize")
			}
		}()
		agg.Finalize()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic: family mismatch")
			}
		}()
		NewAggregator(p, Params{K: 2, M: 8, Epsilon: 1}.NewFamily(1))
	}()
	func() {
		a := NewAggregator(p, fam)
		b := NewAggregator(p, p.NewFamily(99))
		defer func() {
			if recover() == nil {
				t.Error("expected panic: merge across families")
			}
		}()
		a.Merge(b)
	}()
}

// TestFrequencyUnbiased is Theorem 7 as a test: the mean of the frequency
// estimator across independent protocol runs converges on the truth.
func TestFrequencyUnbiased(t *testing.T) {
	p := Params{K: 4, M: 64, Epsilon: 2}
	data := dataset.Zipf(1, 3000, 100, 1.5)
	truth := join.Frequencies(data)
	const trials = 150
	var sum float64
	for i := 0; i < trials; i++ {
		fam := p.NewFamily(int64(1000 + i))
		agg := NewAggregator(p, fam)
		agg.CollectColumn(data, rand.New(rand.NewSource(int64(i))))
		sum += agg.Finalize().Frequency(0)
	}
	mean := sum / trials
	want := float64(truth[0])
	// Per-trial std ≈ c_ε·sqrt(k·n) ≈ 190; mean over 150 trials ≈ 16.
	if math.Abs(mean-want) > 80 {
		t.Fatalf("mean frequency estimate %.1f vs truth %.0f", mean, want)
	}
}

// TestJoinSizeUnbiased is Theorem 3 as a test: the mean of single-row
// join estimators across independent runs converges on the true join
// size.
func TestJoinSizeUnbiased(t *testing.T) {
	p := Params{K: 1, M: 64, Epsilon: 2}
	da := dataset.Zipf(2, 2000, 200, 1.5)
	db := dataset.Zipf(3, 2000, 200, 1.5)
	truth := join.Size(da, db)
	const trials = 300
	var sum float64
	for i := 0; i < trials; i++ {
		fam := p.NewFamily(int64(2000 + i))
		aggA := NewAggregator(p, fam)
		aggA.CollectColumn(da, rand.New(rand.NewSource(int64(2*i))))
		aggB := NewAggregator(p, fam)
		aggB.CollectColumn(db, rand.New(rand.NewSource(int64(2*i+1))))
		sum += aggA.Finalize().JoinSize(aggB.Finalize())
	}
	mean := sum / trials
	if re := math.Abs(mean-truth) / truth; re > 0.15 {
		t.Fatalf("mean join estimate %.0f vs truth %.0f (RE %.3f)", mean, truth, re)
	}
}

// TestJoinSizeEndToEnd runs the full protocol at realistic parameters and
// checks the headline behaviour: the private estimate lands close to the
// truth on skewed data.
func TestJoinSizeEndToEnd(t *testing.T) {
	p := Params{K: 9, M: 1024, Epsilon: 4}
	fam := p.NewFamily(5)
	da := dataset.Zipf(6, 100000, 10000, 1.5)
	db := dataset.Zipf(7, 100000, 10000, 1.5)
	truth := join.Size(da, db)
	rng := rand.New(rand.NewSource(8))
	aggA := NewAggregator(p, fam)
	aggA.CollectColumn(da, rng)
	aggB := NewAggregator(p, fam)
	aggB.CollectColumn(db, rng)
	est := aggA.Finalize().JoinSize(aggB.Finalize())
	if re := math.Abs(est-truth) / truth; re > 0.3 {
		t.Fatalf("end-to-end RE = %.3f (est %.0f truth %.0f)", re, est, truth)
	}
}

func TestMergeEqualsSequential(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(9)
	da := dataset.Zipf(10, 2000, 100, 1.2)

	// One aggregator over the whole column.
	whole := NewAggregator(p, fam)
	whole.CollectColumn(da[:1000], rand.New(rand.NewSource(100)))
	whole.CollectColumn(da[1000:], rand.New(rand.NewSource(101)))
	skWhole := whole.Finalize()

	// Two aggregators with the same per-part seeds, merged.
	p1 := NewAggregator(p, fam)
	p1.CollectColumn(da[:1000], rand.New(rand.NewSource(100)))
	p2 := NewAggregator(p, fam)
	p2.CollectColumn(da[1000:], rand.New(rand.NewSource(101)))
	p1.Merge(p2)
	skMerged := p1.Finalize()

	for j := 0; j < p.K; j++ {
		for x := 0; x < p.M; x++ {
			if skWhole.Row(j)[x] != skMerged.Row(j)[x] {
				t.Fatalf("merged sketch differs at [%d,%d]", j, x)
			}
		}
	}
}

func TestMinusConstant(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(11)
	agg := NewAggregator(p, fam)
	agg.CollectColumn([]uint64{1, 2, 3, 4}, rand.New(rand.NewSource(1)))
	sk := agg.Finalize()
	shifted := sk.MinusConstant(2.5)
	for j := 0; j < p.K; j++ {
		for x := 0; x < p.M; x++ {
			if got, want := shifted.Row(j)[x], sk.Row(j)[x]-2.5; got != want {
				t.Fatalf("[%d,%d] = %g, want %g", j, x, got, want)
			}
		}
	}
	// The original must be untouched.
	if shifted.Row(0)[0] == sk.Row(0)[0] {
		t.Fatal("MinusConstant mutated or aliased the original")
	}
}

func TestFrequentItemsFindsHeavyHitters(t *testing.T) {
	p := Params{K: 9, M: 2048, Epsilon: 4}
	fam := p.NewFamily(13)
	data := dataset.Zipf(14, 100000, 1000, 1.5)
	truth := join.Frequencies(data)
	agg := NewAggregator(p, fam)
	agg.CollectColumn(data, rand.New(rand.NewSource(15)))
	sk := agg.Finalize()
	fi := sk.FrequentItems(1000, 0.02*float64(len(data)), false)
	got := NewFISet(fi)
	// Every value above 4% truly frequent must be found; with the robust
	// median estimator nothing under a quarter of the threshold may sneak
	// in.
	for d, c := range truth {
		share := float64(c) / float64(len(data))
		if share > 0.04 && !got.Contains(d) {
			t.Errorf("missed clearly frequent value %d (share %.3f)", d, share)
		}
		if share < 0.005 && got.Contains(d) {
			t.Errorf("false frequent value %d (share %.4f)", d, share)
		}
	}

	// The mean-based variant (the paper's literal Theorem 7 reading) may
	// collect collision-spike false positives but must still recall the
	// heavy values.
	meanFI := NewFISet(sk.FrequentItems(1000, 0.02*float64(len(data)), true))
	for d, c := range truth {
		if share := float64(c) / float64(len(data)); share > 0.04 && !meanFI.Contains(d) {
			t.Errorf("mean variant missed frequent value %d (share %.3f)", d, share)
		}
	}
}

func TestJoinSizePanicsAcrossFamilies(t *testing.T) {
	p := testParams()
	a := NewAggregator(p, p.NewFamily(1)).Finalize()
	b := NewAggregator(p, p.NewFamily(2)).Finalize()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.JoinSize(b)
}
