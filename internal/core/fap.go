package core

import (
	"math/rand"

	"ldpjoin/internal/hadamard"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/ldp"
)

// Mode selects which frequency class a phase-2 sketch targets.
type Mode int

const (
	// ModeLow builds a sketch whose targets are low-frequency values
	// (d ∉ FI); high-frequency values are encoded as non-targets.
	ModeLow Mode = iota
	// ModeHigh builds a sketch whose targets are high-frequency values
	// (d ∈ FI).
	ModeHigh
)

// String implements fmt.Stringer for diagnostics.
func (m Mode) String() string {
	if m == ModeHigh {
		return "high"
	}
	return "low"
}

// FISet is the frequent-item set broadcast to clients after phase 1.
type FISet map[uint64]struct{}

// NewFISet builds the set from a slice of frequent values.
func NewFISet(items []uint64) FISet {
	s := make(FISet, len(items))
	for _, d := range items {
		s[d] = struct{}{}
	}
	return s
}

// Contains reports membership.
func (s FISet) Contains(d uint64) bool {
	_, ok := s[d]
	return ok
}

// FAPPerturb is the Frequency-Aware Perturbation mechanism (Algorithm 4).
// Target values — the values in the frequency class the sketch summarizes
// — are encoded exactly as in Algorithm 1. Non-target values are encoded
// from a uniformly random index r instead of h_j(d), making their
// contribution independent of their true value and uniform across the
// sketch (Theorem 8), so the server can subtract it. Both classes are
// perturbed identically, which is why the output remains ε-LDP (Theorem
// 6).
func FAPPerturb(d uint64, mode Mode, fi FISet, p Params, fam *hashing.Family, rng *rand.Rand) Report {
	nonTarget := (mode == ModeHigh) == !fi.Contains(d)
	if !nonTarget {
		return Perturb(d, p, fam, rng)
	}
	j := rng.Intn(p.K)
	l := rng.Intn(p.M)
	r := rng.Intn(p.M)
	w := hadamard.Entry(r, l) // v[r] = 1 ⇒ w[l] = H_m[r, l]
	b := ldp.SampleBit(rng, p.Epsilon)
	return Report{Y: b * int8(w), Row: uint32(j), Col: uint32(l)}
}

// CollectColumnFAP simulates phase 2 for one user group: every value in
// data is perturbed with FAP and ingested.
func (a *Aggregator) CollectColumnFAP(data []uint64, mode Mode, fi FISet, rng *rand.Rand) {
	for _, d := range data {
		a.Add(FAPPerturb(d, mode, fi, a.params, a.fam, rng))
	}
}
