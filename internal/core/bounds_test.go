package core

import (
	"math"
	"testing"
	"testing/quick"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
	"ldpjoin/internal/ldp"
)

// TestTheorem5ErrorBound checks the paper's error bound: with k = 4·log(1/δ)
// rows, Pr[|Est − J| ≥ (4/√m)·(F1+ (k·c²−1)/2)²-style bound] ≤ δ. The
// bound is loose, so the test asserts the failure *rate* over repeated
// protocol runs stays at or below δ with margin.
func TestTheorem5ErrorBound(t *testing.T) {
	const delta = 0.05
	k := int(math.Ceil(4 * math.Log(1/delta))) // 12
	p := Params{K: k, M: 256, Epsilon: 2}
	da := dataset.Zipf(1, 5000, 500, 1.3)
	db := dataset.Zipf(2, 5000, 500, 1.3)
	truth := join.Size(da, db)

	ceps := ldp.CEpsilon(p.Epsilon)
	half := (float64(p.K)*ceps*ceps - 1) / 2
	bound := 4 / math.Sqrt(float64(p.M)) *
		math.Abs(float64(len(da))+half) * math.Abs(float64(len(db))+half)

	const trials = 60
	fails := 0
	for i := 0; i < trials; i++ {
		fam := p.NewFamily(int64(3000 + i))
		aggA := NewAggregator(p, fam)
		aggA.CollectColumn(da, newTestRNG(int64(2*i)))
		aggB := NewAggregator(p, fam)
		aggB.CollectColumn(db, newTestRNG(int64(2*i+1)))
		if math.Abs(aggA.Finalize().JoinSize(aggB.Finalize())-truth) >= bound {
			fails++
		}
	}
	// Allow up to 2·δ empirical failure rate (binomial noise over 60
	// trials); in practice the bound is so loose that fails is 0.
	if float64(fails)/trials > 2*delta {
		t.Fatalf("error bound violated in %d/%d trials (δ=%g)", fails, trials, delta)
	}
}

// TestPerturbPropertyShape uses testing/quick over the input space: every
// client output must be structurally valid regardless of the value.
func TestPerturbPropertyShape(t *testing.T) {
	p := Params{K: 7, M: 64, Epsilon: 1.5}
	fam := p.NewFamily(5)
	rng := newTestRNG(6)
	f := func(d uint64) bool {
		r := Perturb(d, p, fam, rng)
		return (r.Y == 1 || r.Y == -1) && int(r.Row) < p.K && int(r.Col) < p.M
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestFAPPropertyShape: same structural validity for FAP in both modes,
// arbitrary FI membership.
func TestFAPPropertyShape(t *testing.T) {
	p := Params{K: 7, M: 64, Epsilon: 1.5}
	fam := p.NewFamily(7)
	fi := NewFISet([]uint64{0, 1, 2, 3})
	rng := newTestRNG(8)
	f := func(d uint64, high bool) bool {
		mode := ModeLow
		if high {
			mode = ModeHigh
		}
		r := FAPPerturb(d%8, mode, fi, p, fam, rng)
		return (r.Y == 1 || r.Y == -1) && int(r.Row) < p.K && int(r.Col) < p.M
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestSketchLinearityProperty: the sketch of a concatenated population
// equals the cell-wise sum of the parts' sketches (before finalization
// this is Merge; after finalization linearity survives the transform).
func TestSketchLinearityProperty(t *testing.T) {
	p := Params{K: 3, M: 32, Epsilon: 2}
	fam := p.NewFamily(9)
	f := func(seedA, seedB int64, nA, nB uint8) bool {
		da := dataset.Zipf(seedA, int(nA)+10, 50, 1.2)
		db := dataset.Zipf(seedB, int(nB)+10, 50, 1.2)

		aggAll := NewAggregator(p, fam)
		aggAll.CollectColumn(da, newTestRNG(seedA+100))
		aggAll.CollectColumn(db, newTestRNG(seedB+200))
		skAll := aggAll.Finalize()

		aggA := NewAggregator(p, fam)
		aggA.CollectColumn(da, newTestRNG(seedA+100))
		aggB := NewAggregator(p, fam)
		aggB.CollectColumn(db, newTestRNG(seedB+200))
		skA, skB := aggA.Finalize(), aggB.Finalize()

		// The debias scale multiplies raw integer counts before the
		// transform, so the two computations round differently at the
		// last bit; compare within floating-point slack.
		for j := 0; j < p.K; j++ {
			for x := 0; x < p.M; x++ {
				sum := skA.Row(j)[x] + skB.Row(j)[x]
				if d := skAll.Row(j)[x] - sum; d > 1e-6 || d < -1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestMarshalRoundTripProperty: marshal/unmarshal is the identity on
// sketches built from arbitrary small populations.
func TestMarshalRoundTripProperty(t *testing.T) {
	p := Params{K: 3, M: 32, Epsilon: 2}
	fam := p.NewFamily(11)
	f := func(seed int64, n uint8) bool {
		agg := NewAggregator(p, fam)
		agg.CollectColumn(dataset.Zipf(seed, int(n)+5, 40, 1.1), newTestRNG(seed))
		sk := agg.Finalize()
		data, err := sk.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := UnmarshalSketch(data)
		if err != nil || got.N() != sk.N() {
			return false
		}
		for j := 0; j < p.K; j++ {
			for x := 0; x < p.M; x++ {
				if got.Row(j)[x] != sk.Row(j)[x] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
