package core

import "math/rand"

// newTestRNG returns a deterministic RNG for test fixtures.
func newTestRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
