package core

import (
	"math"
	"math/rand"
	"testing"

	"ldpjoin/internal/hadamard"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/ldp"
)

func testParams() Params { return Params{K: 3, M: 8, Epsilon: 1.5} }

func TestPerturbOutputShape(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		r := Perturb(uint64(i%100), p, fam, rng)
		if r.Y != 1 && r.Y != -1 {
			t.Fatalf("Y = %d not a sign", r.Y)
		}
		if int(r.Row) >= p.K || int(r.Col) >= p.M {
			t.Fatalf("indices out of range: %+v", r)
		}
	}
}

// TestPerturbMatchesLiteral checks the O(1) client against the literal
// line-by-line transcription of Algorithm 1: same randomness, same output.
func TestPerturbMatchesLiteral(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(3)
	for i := 0; i < 2000; i++ {
		seed := int64(i)
		r1 := Perturb(uint64(i%64), p, fam, rand.New(rand.NewSource(seed)))
		r2 := PerturbLiteral(uint64(i%64), p, fam, rand.New(rand.NewSource(seed)))
		if r1 != r2 {
			t.Fatalf("value %d: fast %+v != literal %+v", i%64, r1, r2)
		}
	}
}

// clientProb returns the exact output probability P[(y,j,l) | d] of
// Algorithm 1: uniform over (j,l) and randomized response on the encoded
// coefficient w = ξ_j(d)·H[h_j(d), l].
func clientProb(d uint64, y int8, j, l int, p Params, fam *hashing.Family) float64 {
	w := int8(fam.Sign(j, d) * hadamard.Entry(fam.Bucket(j, d), l))
	keep := ldp.KeepProb(p.Epsilon)
	base := 1 / float64(p.K*p.M)
	if y == w {
		return base * keep
	}
	return base * (1 - keep)
}

// TestPerturbSatisfiesLDP is Theorem 1 as a test: exact enumeration of the
// output distribution over a small sketch, checking the ε ratio bound for
// every pair of inputs and every output.
func TestPerturbSatisfiesLDP(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(7)
	const domain = 16
	bound := math.Exp(p.Epsilon) + 1e-12
	for d1 := uint64(0); d1 < domain; d1++ {
		for d2 := uint64(0); d2 < domain; d2++ {
			for j := 0; j < p.K; j++ {
				for l := 0; l < p.M; l++ {
					for _, y := range []int8{-1, 1} {
						r := clientProb(d1, y, j, l, p, fam) / clientProb(d2, y, j, l, p, fam)
						if r > bound || r < 1/bound {
							t.Fatalf("LDP violated: d=%d,%d out=(%d,%d,%d) ratio=%g", d1, d2, y, j, l, r)
						}
					}
				}
			}
		}
	}
}

// TestPerturbEmpiricalMatchesClosedForm draws many reports for one value
// and compares the empirical distribution to clientProb.
func TestPerturbEmpiricalMatchesClosedForm(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(9)
	rng := rand.New(rand.NewSource(10))
	const d = 5
	const n = 400000
	counts := map[Report]int{}
	for i := 0; i < n; i++ {
		counts[Perturb(d, p, fam, rng)]++
	}
	for j := 0; j < p.K; j++ {
		for l := 0; l < p.M; l++ {
			for _, y := range []int8{-1, 1} {
				want := clientProb(d, y, j, l, p, fam)
				got := float64(counts[Report{Y: y, Row: uint32(j), Col: uint32(l)}]) / n
				if math.Abs(got-want) > 0.004 {
					t.Fatalf("out=(%d,%d,%d): empirical %.4f vs exact %.4f", y, j, l, got, want)
				}
			}
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{K: 2, M: 16, Epsilon: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for _, bad := range []Params{
		{K: 0, M: 16, Epsilon: 1},
		{K: 2, M: 15, Epsilon: 1},
		{K: 2, M: 0, Epsilon: 1},
		{K: 2, M: 16, Epsilon: 0},
		{K: 2, M: 16, Epsilon: math.NaN()},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid params accepted: %+v", bad)
		}
	}
}

func TestParamsCosts(t *testing.T) {
	p := Params{K: 18, M: 1024, Epsilon: 4}
	if got := p.SketchBytes(); got != 18*1024*8 {
		t.Fatalf("SketchBytes = %d", got)
	}
	if got := p.ReportBits(); got != 1 {
		t.Fatalf("ReportBits = %d, want 1 (public-coin indices)", got)
	}
	if got := p.ReportBitsExplicit(); got != 1+5+10 {
		t.Fatalf("ReportBitsExplicit = %d, want 16", got)
	}
}

func TestNewFamilyMatchesParams(t *testing.T) {
	p := Params{K: 4, M: 32, Epsilon: 2}
	fam := p.NewFamily(1)
	if fam.K() != 4 || fam.M() != 32 {
		t.Fatalf("family (%d,%d) does not match params", fam.K(), fam.M())
	}
}
