package core

import (
	"math/rand"

	"ldpjoin/internal/hadamard"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/ldp"
)

// Report is the message a client transmits: the perturbed Hadamard
// coefficient y ∈ {−1,+1} and the sampled sketch coordinates (j, l). By
// Theorem 1 the triple satisfies ε-LDP, so it is safe to send to the
// untrusted aggregator.
type Report struct {
	Y   int8
	Row uint32
	Col uint32
}

// Perturb is the client side of LDPJoinSketch (Algorithm 1). Given the
// private join value d it samples j ~ U[k] and l ~ U[m], encodes
// v[h_j(d)] = ξ_j(d), Hadamard-transforms, and perturbs the sampled
// coefficient with the randomized-response bit b.
//
// The transform is never materialized: the single non-zero entry of v
// makes w[l] = ξ_j(d)·H_m[h_j(d), l], and the Hadamard entry is
// (−1)^popcount(h_j(d) AND l) — the whole client is O(1). PerturbLiteral
// is the line-by-line transcription used to validate this shortcut.
func Perturb(d uint64, p Params, fam *hashing.Family, rng *rand.Rand) Report {
	j := rng.Intn(p.K)
	l := rng.Intn(p.M)
	w := fam.Sign(j, d) * hadamard.Entry(fam.Bucket(j, d), l)
	b := ldp.SampleBit(rng, p.Epsilon)
	return Report{Y: b * int8(w), Row: uint32(j), Col: uint32(l)}
}

// PerturbLiteral transcribes Algorithm 1 exactly as printed: it builds the
// length-m vector v, multiplies by the Hadamard matrix, then samples and
// perturbs one coordinate. It exists for the equivalence test and the
// encoding-cost ablation; production code uses Perturb.
func PerturbLiteral(d uint64, p Params, fam *hashing.Family, rng *rand.Rand) Report {
	j := rng.Intn(p.K)
	l := rng.Intn(p.M)
	v := make([]float64, p.M)
	v[fam.Bucket(j, d)] = float64(fam.Sign(j, d))
	hadamard.Transform(v) // w ← v × H_m
	b := ldp.SampleBit(rng, p.Epsilon)
	return Report{Y: int8(b) * int8(v[l]), Row: uint32(j), Col: uint32(l)}
}
