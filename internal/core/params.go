// Package core implements the paper's contributions: the LDPJoinSketch
// protocol (client Algorithm 1, server Algorithm 2, join estimation Eq 5,
// frequency estimation Theorem 7), the Frequency-Aware Perturbation
// mechanism (Algorithm 4), the two-phase LDPJoinSketch+ framework
// (Algorithms 3 and 5), and the multi-way join extension of §VI.
//
// The package follows the paper's split strictly: Perturb and FAPPerturb
// are pure client-side functions whose outputs are safe to transmit (they
// satisfy ε-LDP — Theorems 1 and 6, verified by exact enumeration in the
// tests); Aggregator/Sketch are server-side and only ever see perturbed
// reports.
package core

import (
	"fmt"

	"ldpjoin/internal/hadamard"
	"ldpjoin/internal/hashing"
)

// Params carries the protocol parameters shared by clients and server: the
// sketch has K rows and M columns (M a power of two, the Hadamard order),
// and every client spends privacy budget Epsilon.
type Params struct {
	K       int
	M       int
	Epsilon float64
}

// Validate returns an error when the parameters cannot run the protocol.
func (p Params) Validate() error {
	if p.K <= 0 {
		return fmt.Errorf("core: sketch depth K must be positive, got %d", p.K)
	}
	if !hadamard.IsPowerOfTwo(p.M) {
		return fmt.Errorf("core: sketch width M must be a power of two, got %d", p.M)
	}
	if !(p.Epsilon > 0) {
		return fmt.Errorf("core: privacy budget epsilon must be positive, got %v", p.Epsilon)
	}
	return nil
}

// mustValidate panics on invalid parameters; constructors use it so
// programmer errors fail fast.
func (p Params) mustValidate() {
	if err := p.Validate(); err != nil {
		panic(err)
	}
}

// NewFamily derives the hash family for these parameters from a seed. Both
// join endpoints must use the same family (the paper's "same hash
// functions" requirement); sharing the seed achieves that without sharing
// state.
func (p Params) NewFamily(seed int64) *hashing.Family {
	p.mustValidate()
	return hashing.NewFamily(seed, p.K, p.M)
}

// SketchBytes returns the server-side memory footprint of one sketch in
// bytes (K·M float64 counters), as accounted by the Fig 6 experiment.
func (p Params) SketchBytes() int { return p.K * p.M * 8 }

// ReportBits returns the private communication cost of one client report
// in bits. The sampled indices (j, l) are independent of the private
// value, so they can be derived from public randomness (e.g., a hash of
// the user id) and need not be transmitted — each client sends exactly
// the one perturbed bit, which is how the paper accounts Fig 7.
func (p Params) ReportBits() int { return 1 }

// ReportBitsExplicit returns the report size when the sampled indices are
// transmitted explicitly rather than derived from public randomness — the
// wire format internal/protocol actually ships.
func (p Params) ReportBitsExplicit() int {
	return 1 + ceilLog2(uint64(p.K)) + ceilLog2(uint64(p.M))
}

func ceilLog2(n uint64) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
