package core

import (
	"math/rand"
	"runtime"
	"sync"

	"ldpjoin/internal/hashing"
)

// CollectParallel builds an LDPJoinSketch over a column using several
// goroutines: the column is cut into fixed contiguous shards, each shard
// simulates its clients with a seed derived from (seed, shard index), and
// the partial aggregators are merged before finalization. Because shard
// boundaries and shard seeds are functions of (len(data), seed, workers)
// only, the result is deterministic and independent of goroutine
// scheduling: CollectParallel(…, w) equals a sequential build that uses
// the same per-shard seeds. workers ≤ 0 selects GOMAXPROCS.
func CollectParallel(p Params, fam *hashing.Family, data []uint64, seed int64, workers int) *Sketch {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(data) {
		workers = len(data)
	}
	if workers <= 1 {
		agg := NewAggregator(p, fam)
		agg.CollectColumn(data, rand.New(rand.NewSource(seed)))
		return agg.Finalize()
	}

	parts := make([]*Aggregator, workers)
	var wg sync.WaitGroup
	chunk := (len(data) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(data) {
			hi = len(data)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			agg := NewAggregator(p, fam)
			state := uint64(seed) ^ (uint64(w)+1)*0x9e3779b97f4a7c15
			agg.CollectColumn(data[lo:hi], rand.New(rand.NewSource(int64(hashing.SplitMix64(&state)))))
			parts[w] = agg
		}(w, lo, hi)
	}
	wg.Wait()

	var total *Aggregator
	for _, part := range parts {
		if part == nil {
			continue
		}
		if total == nil {
			total = part
			continue
		}
		total.Merge(part)
	}
	return total.Finalize()
}
