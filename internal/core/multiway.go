package core

import (
	"fmt"
	"math"
	"math/rand"

	"ldpjoin/internal/hadamard"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/kernel"
	"ldpjoin/internal/ldp"
)

// MatrixReport is the message a client holding a two-attribute tuple
// sends in the multiway extension (§VI): one perturbed coefficient of the
// doubly Hadamard-transformed encoding, the sampled replica j, and the
// sampled coordinates (l1, l2).
type MatrixReport struct {
	Y   int8
	Row uint32
	L1  uint32
	L2  uint32
}

// MatrixParams configures a two-attribute (middle) table sketch: K
// replicas of an M1×M2 matrix, budget Epsilon per tuple.
type MatrixParams struct {
	K       int
	M1, M2  int
	Epsilon float64
}

// Validate returns an error when the parameters cannot run the protocol.
func (p MatrixParams) Validate() error {
	if p.K <= 0 {
		return fmt.Errorf("core: matrix sketch depth K must be positive, got %d", p.K)
	}
	if !hadamard.IsPowerOfTwo(p.M1) || !hadamard.IsPowerOfTwo(p.M2) {
		return fmt.Errorf("core: matrix sketch dims must be powers of two, got %dx%d", p.M1, p.M2)
	}
	if !(p.Epsilon > 0) {
		return fmt.Errorf("core: privacy budget epsilon must be positive, got %v", p.Epsilon)
	}
	return nil
}

func (p MatrixParams) mustValidate() {
	if err := p.Validate(); err != nil {
		panic(err)
	}
}

// PerturbTuple is the client side for a middle table T(A, B): it encodes
// the tuple as H_{m1}[h_A(a), l1]·ξ_A(a)ξ_B(b)·H_{m2}[l2, h_B(b)] at
// uniformly sampled (j, l1, l2) and flips the sign with probability
// 1/(e^ε+1). Like Perturb, it is O(1) thanks to the Hadamard entry oracle.
func PerturbTuple(a, b uint64, p MatrixParams, famA, famB *hashing.Family, rng *rand.Rand) MatrixReport {
	j := rng.Intn(p.K)
	l1 := rng.Intn(p.M1)
	l2 := rng.Intn(p.M2)
	w := hadamard.Entry(famA.Bucket(j, a), l1) *
		famA.Sign(j, a) * famB.Sign(j, b) *
		hadamard.Entry(l2, famB.Bucket(j, b))
	bit := ldp.SampleBit(rng, p.Epsilon)
	return MatrixReport{Y: bit * int8(w), Row: uint32(j), L1: uint32(l1), L2: uint32(l2)}
}

// MatrixAggregator is the server side for a middle table: it accumulates
// k·c_ε·y at [j, l1, l2] and restores each replica with the 2-dim
// Hadamard transform M̃ = H^T·M·H^T.
type MatrixAggregator struct {
	params MatrixParams
	famA   *hashing.Family
	famB   *hashing.Family
	scale  float64
	mats   [][]float64 // K matrices, M1×M2 row-major
	n      float64
	done   bool
}

// NewMatrixAggregator creates an empty aggregator. famA (the left join
// attribute) must have M = M1, famB M = M2, and both must have K replicas.
func NewMatrixAggregator(p MatrixParams, famA, famB *hashing.Family) *MatrixAggregator {
	p.mustValidate()
	if famA.K() != p.K || famB.K() != p.K || famA.M() != p.M1 || famB.M() != p.M2 {
		panic("core: matrix families do not match params")
	}
	mats := make([][]float64, p.K)
	for j := range mats {
		mats[j] = make([]float64, p.M1*p.M2)
	}
	return &MatrixAggregator{
		params: p,
		famA:   famA,
		famB:   famB,
		scale:  float64(p.K) * ldp.CEpsilon(p.Epsilon),
		mats:   mats,
	}
}

// Add ingests one tuple report (the constant debias scale is applied at
// Finalize, keeping cell contents integral so merges would be exact).
func (ma *MatrixAggregator) Add(r MatrixReport) {
	if ma.done {
		panic("core: MatrixAggregator.Add after Finalize")
	}
	ma.mats[r.Row][int(r.L1)*ma.params.M2+int(r.L2)] += float64(r.Y)
	ma.n++
}

// Merge folds other (not yet finalized, same parameters and families)
// into ma. Like Aggregator.Merge it is exact: unfinalized cells hold
// integers, so merging is order-independent and loses nothing.
func (ma *MatrixAggregator) Merge(other *MatrixAggregator) {
	if ma.done || other.done {
		panic("core: MatrixAggregator.Merge after Finalize")
	}
	if ma.params != other.params || !sameFamily(ma.famA, other.famA) || !sameFamily(ma.famB, other.famB) {
		panic("core: MatrixAggregator.Merge across params or hash families")
	}
	for j := range ma.mats {
		for i, v := range other.mats[j] {
			ma.mats[j][i] += v
		}
	}
	ma.n += other.n
}

// N returns the number of tuples ingested so far.
func (ma *MatrixAggregator) N() float64 { return ma.n }

// Params returns the matrix parameters the aggregator folds under.
func (ma *MatrixAggregator) Params() MatrixParams { return ma.params }

// FamilyA returns the hash family of the left join attribute.
func (ma *MatrixAggregator) FamilyA() *hashing.Family { return ma.famA }

// FamilyB returns the hash family of the right join attribute.
func (ma *MatrixAggregator) FamilyB() *hashing.Family { return ma.famB }

// Done reports whether the aggregator has been finalized.
func (ma *MatrixAggregator) Done() bool { return ma.done }

// Mats returns the raw unfinalized accumulation state — K row-major
// M1×M2 matrices of exact integer sums — without copying. Like
// Aggregator.Rows it exists for the snapshot codec; the caller must not
// mutate it and must be quiescent while exporting.
func (ma *MatrixAggregator) Mats() [][]float64 { return ma.mats }

// Compatible reports whether other accumulates under equal parameters
// and interchangeable attribute families — the precondition for Merge.
func (ma *MatrixAggregator) Compatible(other *MatrixAggregator) bool {
	return ma.params == other.params && sameFamily(ma.famA, other.famA) && sameFamily(ma.famB, other.famB)
}

// restoreMatrixState validates exported matrix state before either
// restore constructor will build an object from it.
func restoreMatrixState(p MatrixParams, famA, famB *hashing.Family, mats [][]float64, n float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if famA == nil || famB == nil || famA.K() != p.K || famB.K() != p.K || famA.M() != p.M1 || famB.M() != p.M2 {
		return fmt.Errorf("core: matrix families do not match params (k=%d, m1=%d, m2=%d)", p.K, p.M1, p.M2)
	}
	if len(mats) != p.K {
		return fmt.Errorf("core: restoring %d replicas into a depth-%d matrix sketch", len(mats), p.K)
	}
	for j, mat := range mats {
		if len(mat) != p.M1*p.M2 {
			return fmt.Errorf("core: restored replica %d has %d cells, want %d", j, len(mat), p.M1*p.M2)
		}
		for i, v := range mat {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: restored matrix cell [%d, %d] is not finite", j, i)
			}
		}
	}
	if n < 0 || n > maxExactCount || math.IsNaN(n) {
		return fmt.Errorf("core: invalid restored tuple count %v", n)
	}
	return nil
}

// RestoreMatrixAggregator rebuilds an unfinalized matrix aggregator from
// exported state, taking ownership of mats.
func RestoreMatrixAggregator(p MatrixParams, famA, famB *hashing.Family, mats [][]float64, n float64) (*MatrixAggregator, error) {
	if err := restoreMatrixState(p, famA, famB, mats, n); err != nil {
		return nil, err
	}
	return &MatrixAggregator{
		params: p,
		famA:   famA,
		famB:   famB,
		scale:  float64(p.K) * ldp.CEpsilon(p.Epsilon),
		mats:   mats,
		n:      n,
	}, nil
}

// RestoreMatrixSketch rebuilds a finalized matrix sketch from exported
// state, taking ownership of mats.
func RestoreMatrixSketch(p MatrixParams, famA, famB *hashing.Family, mats [][]float64, n float64) (*MatrixSketch, error) {
	if err := restoreMatrixState(p, famA, famB, mats, n); err != nil {
		return nil, err
	}
	return &MatrixSketch{params: p, famA: famA, famB: famB, mats: mats, n: n}, nil
}

// CollectTable simulates the protocol for a whole two-column table.
func (ma *MatrixAggregator) CollectTable(a, b []uint64, rng *rand.Rand) {
	if len(a) != len(b) {
		panic("core: CollectTable with mismatched columns")
	}
	for i := range a {
		ma.Add(PerturbTuple(a[i], b[i], ma.params, ma.famA, ma.famB, rng))
	}
}

// Finalize restores every replica out of the double Hadamard domain and
// returns the matrix sketch.
//
// Replicas are independent, so they restore in parallel across
// GOMAXPROCS with one column scratch per worker invocation. Within a
// replica the debias scale is folded into the row transforms
// (FWHTScaled multiplies each cell exactly once before any butterfly
// addition — bit-identical to scaling the whole matrix first), then
// the columns transform with the same radix-4 kernel. Every arithmetic
// operation and its operands match the scale-then-naive-transform
// schedule, so finalized matrix state stays byte-identical to the
// pre-kernel implementation regardless of worker count.
func (ma *MatrixAggregator) Finalize() *MatrixSketch {
	if ma.done {
		panic("core: MatrixAggregator.Finalize called twice")
	}
	ma.done = true
	m1, m2 := ma.params.M1, ma.params.M2
	mats, scale := ma.mats, ma.scale
	kernel.RowApply(len(mats), func(j int) {
		mat := mats[j]
		// Transform along l2 (each row, scale fused), then along l1
		// (each column): H^T·M·H^T with symmetric H.
		for x := 0; x < m1; x++ {
			kernel.FWHTScaled(mat[x*m2:(x+1)*m2], scale)
		}
		col := make([]float64, m1)
		for y := 0; y < m2; y++ {
			for x := 0; x < m1; x++ {
				col[x] = mat[x*m2+y]
			}
			kernel.FWHT(col)
			for x := 0; x < m1; x++ {
				mat[x*m2+y] = col[x]
			}
		}
	})
	return &MatrixSketch{params: ma.params, famA: ma.famA, famB: ma.famB, mats: ma.mats, n: ma.n}
}

// MatrixSketch is the finalized two-attribute sketch: replica j holds, in
// expectation, the COMPASS counter matrix of the table (tuple (a,b)
// contributes ξ_A(a)ξ_B(b) at [h_A(a), h_B(b)]).
type MatrixSketch struct {
	params MatrixParams
	famA   *hashing.Family
	famB   *hashing.Family
	mats   [][]float64
	n      float64
}

// K returns the number of replicas.
func (ms *MatrixSketch) K() int { return ms.params.K }

// N returns the number of tuples summarized.
func (ms *MatrixSketch) N() float64 { return ms.n }

// Params returns the matrix parameters the sketch was built with.
func (ms *MatrixSketch) Params() MatrixParams { return ms.params }

// FamilyA returns the hash family of the left join attribute.
func (ms *MatrixSketch) FamilyA() *hashing.Family { return ms.famA }

// FamilyB returns the hash family of the right join attribute.
func (ms *MatrixSketch) FamilyB() *hashing.Family { return ms.famB }

// Compatible reports whether the two sketches can be combined: equal
// parameters and interchangeable attribute families.
func (ms *MatrixSketch) Compatible(other *MatrixSketch) bool {
	return ms.params == other.params && sameFamily(ms.famA, other.famA) && sameFamily(ms.famB, other.famB)
}

// Merge adds other into ms cell-wise. Like Sketch.Merge it is linear and
// unbiased but not bit-identical to merging before finalization; exact
// federation merges unfinalized state. The sketches must be Compatible.
func (ms *MatrixSketch) Merge(other *MatrixSketch) {
	if !ms.Compatible(other) {
		panic("core: MatrixSketch.Merge of incompatible sketches")
	}
	for j := range ms.mats {
		for i, v := range other.mats[j] {
			ms.mats[j][i] += v
		}
	}
	ms.n += other.n
}

// Mat returns replica j, row-major M1×M2 (not a copy).
func (ms *MatrixSketch) Mat(j int) []float64 { return ms.mats[j] }

// VecMat returns v × M_j: out[y] = Σ_x v[x]·M_j[x, y].
func (ms *MatrixSketch) VecMat(j int, v []float64) []float64 {
	out := make([]float64, ms.params.M2)
	ms.VecMatInto(j, v, out)
	return out
}

// VecMatInto computes v × M_j into out (length M2, zeroed here), the
// allocation-free form ChainEstimate ping-pongs through: out[y] =
// Σ_x v[x]·M_j[x, y]. v and out must not alias.
func (ms *MatrixSketch) VecMatInto(j int, v, out []float64) {
	m1, m2 := ms.params.M1, ms.params.M2
	if len(v) != m1 || len(out) != m2 {
		panic("core: VecMat dimension mismatch")
	}
	for y := range out {
		out[y] = 0
	}
	mat := ms.mats[j]
	for x := 0; x < m1; x++ {
		vx := v[x]
		if vx == 0 {
			continue
		}
		row := mat[x*m2 : (x+1)*m2]
		for y, c := range row {
			out[y] += vx * c
		}
	}
}

// CycleEstimate estimates the size of the 3-cycle join
// T1(A,B) ⋈ T2(B,C) ⋈ T3(C,A) from LDP matrix sketches — the
// "uncomplicated cyclic joins" §VI says the encoding handles. Per
// replica j the estimator is the trace of the sketch product,
// Σ_{l1,l2,l3} M1_j[l1,l2]·M2_j[l2,l3]·M3_j[l3,l1], and the final
// estimate is the median over replicas. Adjacent sketches must share
// their attribute families (m1's B side with m2's A side, and so on
// around the cycle).
func CycleEstimate(m1, m2, m3 *MatrixSketch) float64 {
	k := m1.params.K
	if m2.params.K != k || m3.params.K != k {
		panic("core: cycle sketches disagree on K")
	}
	if m1.famB != m2.famA || m2.famB != m3.famA || m3.famB != m1.famA {
		panic("core: cycle sketches do not share attribute families")
	}
	mA, mB := m1.params.M1, m1.params.M2
	mC := m2.params.M2
	var buf [maxStackK]float64
	ests := estScratch(&buf, k)
	prod := make([]float64, mA*mC)
	for j := 0; j < k; j++ {
		// prod = M1_j × M2_j (mA×mC).
		for i := range prod {
			prod[i] = 0
		}
		a1 := m1.mats[j]
		a2 := m2.mats[j]
		for x := 0; x < mA; x++ {
			row1 := a1[x*mB : (x+1)*mB]
			out := prod[x*mC : (x+1)*mC]
			for y, v := range row1 {
				if v == 0 {
					continue
				}
				row2 := a2[y*mC : (y+1)*mC]
				for z, w := range row2 {
					out[z] += v * w
				}
			}
		}
		// trace(prod × M3_j): Σ_{x,z} prod[x,z]·M3[z,x].
		a3 := m3.mats[j]
		var tr float64
		for x := 0; x < mA; x++ {
			for z := 0; z < mC; z++ {
				tr += prod[x*mC+z] * a3[z*mA+x]
			}
		}
		ests = append(ests, tr)
	}
	return kernel.MedianInPlace(ests)
}

// ChainEstimate estimates the size of the chain join
// left(A0) ⋈ mids[0](A0,A1) ⋈ ... ⋈ right(A_n) from LDP sketches (Eq 27
// generalized to a chain, median over the k replicas). The end tables use
// plain LDPJoinSketch; each middle table a MatrixSketch. The left sketch
// must share its family with mids[0]'s A side, and so on down the chain;
// K must agree everywhere.
func ChainEstimate(left *Sketch, mids []*MatrixSketch, right *Sketch) float64 {
	k := left.params.K
	if right.params.K != k {
		panic("core: chain ends disagree on K")
	}
	maxM2 := 0
	for _, m := range mids {
		if m.params.K != k {
			panic("core: chain matrix disagrees on K")
		}
		if m.params.M2 > maxM2 {
			maxM2 = m.params.M2
		}
	}
	var buf [maxStackK]float64
	ests := estScratch(&buf, k)
	// Two ping-pong buffers sized to the widest intermediate carry the
	// vector down the chain, so the whole replica loop allocates twice
	// total instead of once per (replica, middle) step. Alternating
	// buffers keeps VecMatInto's no-alias contract: step i reads the
	// vector step i−1 wrote into the other buffer.
	var bufs [2][]float64
	bufs[0] = make([]float64, maxM2)
	bufs[1] = make([]float64, maxM2)
	for j := 0; j < k; j++ {
		v := left.Row(j)
		for i, m := range mids {
			dst := bufs[i%2][:m.params.M2]
			m.VecMatInto(j, v, dst)
			v = dst
		}
		ests = append(ests, kernel.Dot(v, right.Row(j)))
	}
	return kernel.MedianInPlace(ests)
}
