package core

import (
	"math"
	"testing"

	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

// plusOptions picks a θ that clears the phase-1 noise floor at the test
// scales (θ·r·n must sit several σ above the frequency-estimation noise
// c_ε·sqrt(n_s/k) — the working-regime requirement Fig 11 demonstrates).
func plusOptions(seed int64) PlusOptions {
	return PlusOptions{
		Params:     Params{K: 9, M: 1024, Epsilon: 4},
		SampleRate: 0.2,
		Theta:      0.05,
		Seed:       seed,
	}
}

func TestPlusOptionsValidate(t *testing.T) {
	good := plusOptions(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	bad := good
	bad.SampleRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sample rate accepted")
	}
	bad = good
	bad.SampleRate = 1
	if err := bad.Validate(); err == nil {
		t.Error("sample rate 1 accepted")
	}
	bad = good
	bad.Theta = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero theta accepted")
	}
	bad = good
	bad.K = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad params accepted")
	}
}

func TestPlusUserPartition(t *testing.T) {
	const n, domain = 20000, 1000
	da := dataset.Zipf(1, n, domain, 1.3)
	db := dataset.Zipf(2, n, domain, 1.3)
	res := EstimateJoinPlus(da, db, domain, plusOptions(3))
	if res.SampledA+res.GroupA1+res.GroupA2 != n {
		t.Fatalf("A users not partitioned: %d + %d + %d != %d",
			res.SampledA, res.GroupA1, res.GroupA2, n)
	}
	if res.SampledB+res.GroupB1+res.GroupB2 != n {
		t.Fatalf("B users not partitioned")
	}
	if res.SampledA != int(0.2*n) {
		t.Fatalf("sample size %d, want %d", res.SampledA, int(0.2*n))
	}
	if d := res.GroupA1 - res.GroupA2; d < -1 || d > 1 {
		t.Fatalf("groups unbalanced: %d vs %d", res.GroupA1, res.GroupA2)
	}
}

func TestPlusFindsTrueFrequentItems(t *testing.T) {
	const n, domain = 200000, 5000
	da := dataset.Zipf(4, n, domain, 1.5)
	db := dataset.Zipf(5, n, domain, 1.5)
	truth := join.Frequencies(da)
	res := EstimateJoinPlus(da, db, domain, plusOptions(6))
	fi := NewFISet(res.FrequentItems)
	// Values holding over 3× the threshold share must be discovered.
	for d, c := range truth {
		if float64(c) > 3*0.05*float64(n) && !fi.Contains(d) {
			t.Errorf("missed clearly frequent value %d (count %d)", d, c)
		}
	}
	// The frequent mass estimates must be plausible population counts.
	if res.HighFreqA <= 0 || res.HighFreqA > float64(n) {
		t.Fatalf("HighFreqA = %g out of range", res.HighFreqA)
	}
}

func TestPlusEndToEndAccuracy(t *testing.T) {
	const n, domain = 200000, 10000
	da := dataset.Zipf(7, n, domain, 1.1)
	db := dataset.Zipf(8, n, domain, 1.1)
	truth := join.Size(da, db)
	res := EstimateJoinPlus(da, db, domain, plusOptions(9))
	if re := math.Abs(res.Estimate-truth) / truth; re > 0.3 {
		t.Fatalf("LDPJoinSketch+ RE = %.3f (est %.0f truth %.0f)", re, res.Estimate, truth)
	}
	if res.Estimate != res.LowEstimate+res.HighEstimate {
		t.Fatal("estimate is not the sum of its parts")
	}
}

// TestPlusComparableToBasicSkewed is the paper's headline claim scaled to
// test size: on skewed data at a scale where LDP sampling noise and
// hash-collision error are balanced, LDPJoinSketch+ matches plain
// LDPJoinSketch (at the paper's 40M-row scale, where collision error
// dominates, it pulls ahead — the bench harness demonstrates that
// regime). A clear regression in the plus pipeline — bad FI, bad
// non-target subtraction, bad group scaling — blows the ratio far past
// the asserted bound.
func TestPlusComparableToBasicSkewed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-round million-row protocol comparison")
	}
	const n, domain = 1000000, 20000
	const rounds = 7
	da := dataset.Zipf(10, n, domain, 1.1)
	db := dataset.Zipf(11, n, domain, 1.1)
	truth := join.Size(da, db)

	var basicAE, plusAE float64
	for r := 0; r < rounds; r++ {
		seed := int64(100 + r)
		opt := PlusOptions{
			Params:     Params{K: 9, M: 256, Epsilon: 4},
			SampleRate: 0.2,
			Theta:      0.02,
			Seed:       seed,
		}
		fam := opt.Params.NewFamily(seed)
		aggA := NewAggregator(opt.Params, fam)
		aggB := NewAggregator(opt.Params, fam)
		rng := newTestRNG(seed)
		aggA.CollectColumn(da, rng)
		aggB.CollectColumn(db, rng)
		basicAE += math.Abs(aggA.Finalize().JoinSize(aggB.Finalize()) - truth)

		res := EstimateJoinPlus(da, db, domain, opt)
		plusAE += math.Abs(res.Estimate - truth)
	}
	if plusAE >= basicAE*1.3 {
		t.Fatalf("LDPJoinSketch+ mean AE %.3g clearly worse than LDPJoinSketch %.3g",
			plusAE/rounds, basicAE/rounds)
	}
	t.Logf("mean AE: basic %.3g, plus %.3g", basicAE/rounds, plusAE/rounds)
}

func TestPlusLiteralSubtractionVariant(t *testing.T) {
	const n, domain = 60000, 2000
	da := dataset.Zipf(12, n, domain, 1.2)
	db := dataset.Zipf(13, n, domain, 1.2)
	opt := plusOptions(14)
	opt.LiteralNTSubtraction = true
	res := EstimateJoinPlus(da, db, domain, opt)
	if math.IsNaN(res.Estimate) || math.IsInf(res.Estimate, 0) {
		t.Fatalf("literal variant produced %v", res.Estimate)
	}
}

func TestPlusPanicsOnTinyInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tiny input")
		}
	}()
	EstimateJoinPlus([]uint64{1, 2}, []uint64{3}, 10, plusOptions(1))
}

func TestPlusPanicsOnBadOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad options")
		}
	}()
	opt := plusOptions(1)
	opt.Theta = -1
	EstimateJoinPlus(make([]uint64, 100), make([]uint64, 100), 10, opt)
}
