package core

import (
	"math"
	"testing"

	"ldpjoin/internal/dataset"
)

func buildTestSketch(t *testing.T, seed int64) *Sketch {
	t.Helper()
	p := Params{K: 5, M: 128, Epsilon: 3}
	fam := p.NewFamily(seed)
	agg := NewAggregator(p, fam)
	agg.CollectColumn(dataset.Zipf(seed, 20000, 1000, 1.3), newTestRNG(seed))
	return agg.Finalize()
}

func TestSketchMarshalRoundTrip(t *testing.T) {
	sk := buildTestSketch(t, 7)
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params() != sk.Params() || got.N() != sk.N() {
		t.Fatalf("metadata mismatch: %+v n=%g", got.Params(), got.N())
	}
	for j := 0; j < sk.Params().K; j++ {
		for x := 0; x < sk.Params().M; x++ {
			if got.Row(j)[x] != sk.Row(j)[x] {
				t.Fatalf("cell [%d,%d] mismatch", j, x)
			}
		}
	}
	// The reconstructed family must answer identically.
	for d := uint64(0); d < 500; d++ {
		if got.Frequency(d) != sk.Frequency(d) {
			t.Fatalf("frequency of %d differs after round trip", d)
		}
	}
}

// TestUnmarshaledSketchJoins verifies the headline use case: a persisted
// sketch joins against a freshly built one.
func TestUnmarshaledSketchJoins(t *testing.T) {
	p := Params{K: 5, M: 128, Epsilon: 3}
	fam := p.NewFamily(9)
	aggA := NewAggregator(p, fam)
	aggA.CollectColumn(dataset.Zipf(1, 20000, 1000, 1.3), newTestRNG(2))
	aggB := NewAggregator(p, fam)
	aggB.CollectColumn(dataset.Zipf(3, 20000, 1000, 1.3), newTestRNG(4))
	skA, skB := aggA.Finalize(), aggB.Finalize()
	want := skA.JoinSize(skB)

	data, err := skA.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.JoinSize(skB); got != want {
		t.Fatalf("restored join %g != original %g", got, want)
	}
}

func TestUnmarshalSketchErrors(t *testing.T) {
	sk := buildTestSketch(t, 11)
	good, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:10],
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"truncated":   good[:len(good)-8],
		"extra bytes": append(append([]byte(nil), good...), 0),
	}
	for name, data := range cases {
		if _, err := UnmarshalSketch(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	// Corrupt params (k = 0).
	bad := append([]byte(nil), good...)
	bad[4], bad[5], bad[6], bad[7] = 0, 0, 0, 0
	if _, err := UnmarshalSketch(bad); err == nil {
		t.Error("zero-k encoding accepted")
	}

	// Corrupt count (NaN).
	bad = append([]byte(nil), good...)
	nan := math.Float64bits(math.NaN())
	for i := 0; i < 8; i++ {
		bad[28+i] = byte(nan >> (56 - 8*i))
	}
	if _, err := UnmarshalSketch(bad); err == nil {
		t.Error("NaN count accepted")
	}
}

func TestSameFamilyBySeed(t *testing.T) {
	p := Params{K: 3, M: 64, Epsilon: 2}
	a := p.NewFamily(5)
	b := p.NewFamily(5)
	c := p.NewFamily(6)
	if !sameFamily(a, b) {
		t.Fatal("equal-seed families should be interchangeable")
	}
	if sameFamily(a, c) {
		t.Fatal("different seeds should not be interchangeable")
	}
}
