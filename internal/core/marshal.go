package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Sketch serialization lets a server persist finalized sketches (a data
// catalog stores one per column and answers join queries much later) or
// ship them between aggregators. The format is versioned and
// self-describing:
//
//	magic "LJS1" | k u32 | m u32 | epsilon f64 | seed i64 | n f64 |
//	k·m cells f64
//
// All values big-endian. The hash family is reconstructed from the seed,
// so a sketch unmarshals into a fully queryable object; combining two
// sketches still requires equal (k, m, epsilon, seed), which Unmarshal
// restores faithfully.

var sketchMagic = [4]byte{'L', 'J', 'S', '1'}

// ErrBadSketchEncoding is returned when the byte stream is not a valid
// sketch encoding.
var ErrBadSketchEncoding = errors.New("core: bad sketch encoding")

// MarshalBinary encodes the sketch.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+4+4+8+8+8+8*s.params.K*s.params.M)
	buf = append(buf, sketchMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.params.K))
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.params.M))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.params.Epsilon))
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.fam.Seed()))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.n))
	for _, row := range s.rows {
		for _, cell := range row {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(cell))
		}
	}
	return buf, nil
}

// UnmarshalSketch decodes a sketch produced by MarshalBinary,
// reconstructing its hash family from the embedded seed.
func UnmarshalSketch(data []byte) (*Sketch, error) {
	const headerLen = 4 + 4 + 4 + 8 + 8 + 8
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrBadSketchEncoding, len(data))
	}
	if [4]byte(data[:4]) != sketchMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSketchEncoding)
	}
	k := int(binary.BigEndian.Uint32(data[4:8]))
	m := int(binary.BigEndian.Uint32(data[8:12]))
	eps := math.Float64frombits(binary.BigEndian.Uint64(data[12:20]))
	seed := int64(binary.BigEndian.Uint64(data[20:28]))
	n := math.Float64frombits(binary.BigEndian.Uint64(data[28:36]))
	p := Params{K: k, M: m, Epsilon: eps}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSketchEncoding, err)
	}
	want := headerLen + 8*k*m
	if len(data) != want {
		return nil, fmt.Errorf("%w: %d bytes, want %d for a %dx%d sketch", ErrBadSketchEncoding, len(data), want, k, m)
	}
	if n < 0 || math.IsNaN(n) || math.IsInf(n, 0) {
		return nil, fmt.Errorf("%w: invalid report count %v", ErrBadSketchEncoding, n)
	}
	rows := make([][]float64, k)
	off := headerLen
	for j := range rows {
		rows[j] = make([]float64, m)
		for x := range rows[j] {
			rows[j][x] = math.Float64frombits(binary.BigEndian.Uint64(data[off : off+8]))
			off += 8
		}
	}
	return &Sketch{params: p, fam: p.NewFamily(seed), rows: rows, n: n}, nil
}
