package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ldpjoin/internal/hashing"
	"ldpjoin/internal/ldp"
)

// Sketch serialization lets a server persist finalized sketches (a data
// catalog stores one per column and answers join queries much later) or
// ship them between aggregators. The format is versioned and
// self-describing:
//
//	magic "LJS1" | k u32 | m u32 | epsilon f64 | seed i64 | n f64 |
//	k·m cells f64
//
// All values big-endian. The hash family is reconstructed from the seed,
// so a sketch unmarshals into a fully queryable object; combining two
// sketches still requires equal (k, m, epsilon, seed), which Unmarshal
// restores faithfully.

var sketchMagic = [4]byte{'L', 'J', 'S', '1'}

// ErrBadSketchEncoding is returned when the byte stream is not a valid
// sketch encoding.
var ErrBadSketchEncoding = errors.New("core: bad sketch encoding")

// MarshalBinary encodes the sketch.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+4+4+8+8+8+8*s.params.K*s.params.M)
	buf = append(buf, sketchMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.params.K))
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.params.M))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.params.Epsilon))
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.fam.Seed()))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.n))
	for _, row := range s.rows {
		for _, cell := range row {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(cell))
		}
	}
	return buf, nil
}

// maxExactCount bounds restored report counts to the float64 range of
// exact integers: larger values could not have been counted one report
// at a time, and converting them to int64 (as the ingest counters do)
// would overflow.
const maxExactCount = 1 << 53

// restoreState validates the (rows, n) state shared by every restore
// constructor: the snapshot codec hands decoded cell grids back to this
// package, which must never build an object that violates the invariants
// the rest of the code relies on (dimensions matching the family, a
// finite non-negative report count, finite cells).
func restoreState(p Params, fam *hashing.Family, rows [][]float64, n float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if fam == nil || fam.K() != p.K || fam.M() != p.M {
		return fmt.Errorf("core: hash family does not match params (k=%d, m=%d)", p.K, p.M)
	}
	if len(rows) != p.K {
		return fmt.Errorf("core: restoring %d rows into a depth-%d sketch", len(rows), p.K)
	}
	for j, row := range rows {
		if len(row) != p.M {
			return fmt.Errorf("core: restored row %d has %d cells, want %d", j, len(row), p.M)
		}
		for x, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: restored cell [%d, %d] is not finite", j, x)
			}
		}
	}
	if n < 0 || n > maxExactCount || math.IsNaN(n) {
		return fmt.Errorf("core: invalid restored report count %v", n)
	}
	return nil
}

// RestoreAggregator rebuilds an unfinalized aggregator from exported
// state, taking ownership of rows. It is the decode half of the snapshot
// codec: the rows are the exact integer sums an exporter read via Rows,
// so an aggregator restored on another node merges exactly.
func RestoreAggregator(p Params, fam *hashing.Family, rows [][]float64, n float64) (*Aggregator, error) {
	if err := restoreState(p, fam, rows, n); err != nil {
		return nil, err
	}
	return &Aggregator{
		params: p,
		fam:    fam,
		scale:  float64(p.K) * ldp.CEpsilon(p.Epsilon),
		rows:   rows,
		n:      n,
	}, nil
}

// RestoreSketch rebuilds a finalized sketch from exported state, taking
// ownership of rows.
func RestoreSketch(p Params, fam *hashing.Family, rows [][]float64, n float64) (*Sketch, error) {
	if err := restoreState(p, fam, rows, n); err != nil {
		return nil, err
	}
	return &Sketch{params: p, fam: fam, rows: rows, n: n}, nil
}

// UnmarshalSketch decodes a sketch produced by MarshalBinary,
// reconstructing its hash family from the embedded seed.
func UnmarshalSketch(data []byte) (*Sketch, error) {
	const headerLen = 4 + 4 + 4 + 8 + 8 + 8
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrBadSketchEncoding, len(data))
	}
	if [4]byte(data[:4]) != sketchMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSketchEncoding)
	}
	k := int(binary.BigEndian.Uint32(data[4:8]))
	m := int(binary.BigEndian.Uint32(data[8:12]))
	eps := math.Float64frombits(binary.BigEndian.Uint64(data[12:20]))
	seed := int64(binary.BigEndian.Uint64(data[20:28]))
	n := math.Float64frombits(binary.BigEndian.Uint64(data[28:36]))
	p := Params{K: k, M: m, Epsilon: eps}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSketchEncoding, err)
	}
	want := headerLen + 8*k*m
	if len(data) != want {
		return nil, fmt.Errorf("%w: %d bytes, want %d for a %dx%d sketch", ErrBadSketchEncoding, len(data), want, k, m)
	}
	if n < 0 || math.IsNaN(n) || math.IsInf(n, 0) {
		return nil, fmt.Errorf("%w: invalid report count %v", ErrBadSketchEncoding, n)
	}
	rows := make([][]float64, k)
	off := headerLen
	for j := range rows {
		rows[j] = make([]float64, m)
		for x := range rows[j] {
			rows[j][x] = math.Float64frombits(binary.BigEndian.Uint64(data[off : off+8]))
			off += 8
		}
	}
	return &Sketch{params: p, fam: p.NewFamily(seed), rows: rows, n: n}, nil
}
