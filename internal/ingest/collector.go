package ingest

import (
	"io"
	"net"
	"sync"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
)

// collectorBatch is how many reports a connection decodes before handing
// a batch to the engine.
const collectorBatch = 1024

// Collector is the TCP face of the ingestion engine: it accepts
// connections carrying wire-format report streams and feeds the decoded
// batches into one engine column, so many gateways fan into one sketch
// with the same sharded, backpressured path the HTTP service uses. It
// replaces the retired protocol.Collector, which funneled every report
// through a single aggregation goroutine.
type Collector struct {
	params core.Params
	eng    *Engine
	col    *Column

	mu      sync.Mutex
	streams int
	lastErr error
}

// NewCollector starts a collector with its own engine. Close (or
// Finalize, which implies it) must be called to release the workers.
func NewCollector(p core.Params, fam *hashing.Family, opts Options) *Collector {
	eng := NewEngine(p, fam, opts)
	return &Collector{params: p, eng: eng, col: eng.NewColumn()}
}

// ServeConn reads one report stream from conn until EOF and folds it
// into the collector's column. It is safe to call from multiple
// goroutines, one per connection.
func (c *Collector) ServeConn(conn net.Conn) error {
	defer conn.Close()
	err := c.ingest(conn)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.streams++
	if err != nil {
		c.lastErr = err
	}
	return err
}

func (c *Collector) ingest(r io.Reader) error {
	br, err := protocol.NewBatchReader(r, c.params)
	if err != nil {
		return err
	}
	for {
		batch, err := br.Next(collectorBatch)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := c.col.EnqueueAllPooled([][]core.Report{batch}); err != nil {
			return err
		}
	}
}

// Serve accepts up to n connections from l, handling each in its own
// goroutine, then returns.
func (c *Collector) Serve(l net.Listener, n int) error {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c.ServeConn(conn)
		}()
	}
	wg.Wait()
	return nil
}

// Streams returns the number of completed streams.
func (c *Collector) Streams() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.streams
}

// N returns the number of reports accepted so far.
func (c *Collector) N() int64 { return c.col.N() }

// Close stops the engine after draining queued folds and returns the
// last stream error, if any. It is idempotent; no ServeConn call may be
// active or issued afterwards.
func (c *Collector) Close() error {
	c.eng.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// Finalize closes the collector and returns the merged sketch over
// everything the streams delivered.
func (c *Collector) Finalize() (*core.Sketch, error) {
	if err := c.Close(); err != nil {
		return nil, err
	}
	return c.col.Finalize()
}
