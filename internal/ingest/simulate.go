package ingest

import (
	"math/rand"
	"sync"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
)

// Collect builds an LDPJoinSketch over a column of private values using
// a transient engine: shard, simulate, merge, finalize. It is the
// drop-in replacement for the retired core.CollectParallel and produces
// bit-identical sketches for the same (values, seed, Shards): opts with
// Shards = 1 reproduces a sequential build, the zero Options an
// all-cores build.
func Collect(p core.Params, fam *hashing.Family, values []uint64, seed int64, opts Options) *core.Sketch {
	e := NewEngine(p, fam, opts)
	defer e.Close()
	sk, err := e.Simulate(values, seed)
	if err != nil {
		// Simulate only fails on a closed engine; ours is private.
		panic(err)
	}
	return sk
}

// CollectMatrix builds a middle-table matrix sketch over a two-column
// table in parallel. Unlike Collect it keeps a single aggregator — a
// matrix replica is M1×M2 cells, so per-shard copies would multiply a
// potentially huge state — and instead shards the expensive client
// simulation: chunk w perturbs its tuples with a seed derived from
// (seed, w) exactly as Simulate does, and the resulting reports are
// folded under a lock. Unfinalized cells are exact integers, so the fold
// interleaving cannot change the finalized sketch: the result is a
// deterministic function of (a, b, seed, Shards).
func CollectMatrix(p core.MatrixParams, famA, famB *hashing.Family, a, b []uint64, seed int64, opts Options) *core.MatrixSketch {
	if len(a) != len(b) {
		panic("ingest: CollectMatrix with mismatched columns")
	}
	opts = opts.normalized()
	shards := opts.Shards
	if shards > len(a) {
		shards = len(a)
	}
	agg := core.NewMatrixAggregator(p, famA, famB)
	if shards <= 1 {
		agg.CollectTable(a, b, rand.New(rand.NewSource(seed)))
		return agg.Finalize()
	}

	var (
		wg     sync.WaitGroup
		foldMu sync.Mutex
	)
	sem := make(chan struct{}, opts.Workers)
	chunk := (len(a) + shards - 1) / shards
	for w := 0; w < shards; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(a))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(shardSeed(seed, w)))
			reports := make([]core.MatrixReport, 0, hi-lo)
			for i := lo; i < hi; i++ {
				reports = append(reports, core.PerturbTuple(a[i], b[i], p, famA, famB, rng))
			}
			foldMu.Lock()
			for _, r := range reports {
				agg.Add(r)
			}
			foldMu.Unlock()
		}(w, lo, hi)
	}
	wg.Wait()
	return agg.Finalize()
}
