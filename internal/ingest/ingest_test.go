package ingest

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
)

func testParams() core.Params { return core.Params{K: 9, M: 512, Epsilon: 4} }

// perturbColumn perturbs a column client-side, yielding the wire-format
// reports a gateway would stream.
func perturbColumn(p core.Params, seed int64, data []uint64) []core.Report {
	fam := p.NewFamily(42)
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Report, len(data))
	for i, d := range data {
		out[i] = core.Perturb(d, p, fam, rng)
	}
	return out
}

func marshal(t *testing.T, sk *core.Sketch) []byte {
	t.Helper()
	raw, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestEngineWireDeterminism: the finalized sketch over a fixed report
// stream must be byte-identical regardless of worker count, shard
// count, and batch interleaving — integral cells merge exactly.
func TestEngineWireDeterminism(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(42)
	data := dataset.Zipf(1, 30000, 3000, 1.3)
	reports := perturbColumn(p, 7, data)

	var want []byte
	for _, opt := range []Options{
		{Shards: 1, Workers: 1},
		{Shards: 4, Workers: 1},
		{Shards: 4, Workers: 8, Queue: 2},
		{Shards: 13, Workers: 3},
	} {
		eng := NewEngine(p, fam, opt)
		col := eng.NewColumn()
		for lo := 0; lo < len(reports); lo += 997 { // deliberately odd batch size
			hi := min(lo+997, len(reports))
			if err := col.Enqueue(reports[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := col.N(), int64(len(reports)); got != want {
			t.Fatalf("N = %d, want %d", got, want)
		}
		sk, err := col.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		eng.Close()
		raw := marshal(t, sk)
		if want == nil {
			want = raw
			continue
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("options %+v produced a different sketch", opt)
		}
	}
}

// TestEngineMatchesSequentialAggregator: the engine's fold must equal
// the plain one-aggregator fold the service used before sharding.
func TestEngineMatchesSequentialAggregator(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(42)
	reports := perturbColumn(p, 3, dataset.Zipf(2, 20000, 2000, 1.3))

	agg := core.NewAggregator(p, fam)
	for _, r := range reports {
		agg.Add(r)
	}
	want := marshal(t, agg.Finalize())

	eng := NewEngine(p, fam, Options{})
	defer eng.Close()
	col := eng.NewColumn()
	for lo := 0; lo < len(reports); lo += 1024 {
		hi := min(lo+1024, len(reports))
		if err := col.Enqueue(reports[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	sk, err := col.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, sk), want) {
		t.Fatal("engine fold differs from sequential aggregator")
	}
}

// TestEngineConcurrentColumns ingests into several columns from several
// goroutines at once — the -race exercise of the engine's locking.
func TestEngineConcurrentColumns(t *testing.T) {
	p := core.Params{K: 4, M: 64, Epsilon: 2}
	fam := p.NewFamily(42)
	eng := NewEngine(p, fam, Options{Shards: 4, Workers: 4, Queue: 2})
	defer eng.Close()

	const columns, producers, perProducer = 3, 4, 10
	cols := make([]*Column, columns)
	for i := range cols {
		cols[i] = eng.NewColumn()
	}
	reports := perturbColumn(p, 5, dataset.Zipf(3, 4000, 50, 1.2))

	var wg sync.WaitGroup
	for c := 0; c < columns; c++ {
		for g := 0; g < producers; g++ {
			wg.Add(1)
			go func(col *Column, g int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					lo := (g*perProducer + i) * 100 % (len(reports) - 100)
					if err := col.Enqueue(reports[lo : lo+100]); err != nil {
						t.Errorf("enqueue: %v", err)
						return
					}
				}
			}(cols[c], g)
		}
	}
	wg.Wait()

	want := int64(producers * perProducer * 100)
	for i, col := range cols {
		if col.N() != want {
			t.Fatalf("column %d N = %d, want %d", i, col.N(), want)
		}
		sk, err := col.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if sk.N() != float64(want) {
			t.Fatalf("column %d sketch N = %g", i, sk.N())
		}
	}
}

func TestColumnLifecycleErrors(t *testing.T) {
	p := core.Params{K: 2, M: 16, Epsilon: 1}
	fam := p.NewFamily(1)
	eng := NewEngine(p, fam, Options{Shards: 2, Workers: 2})
	col := eng.NewColumn()
	if err := col.Enqueue(nil); err != nil {
		t.Fatalf("empty enqueue: %v", err)
	}
	if err := col.Enqueue([]core.Report{{Y: 1, Row: 0, Col: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Finalize(); err != ErrFinalized {
		t.Fatalf("double finalize err = %v, want ErrFinalized", err)
	}
	if err := col.Enqueue([]core.Report{{Y: 1, Row: 0, Col: 1}}); err != ErrFinalized {
		t.Fatalf("post-finalize enqueue err = %v, want ErrFinalized", err)
	}

	// Out-of-bounds reports are dropped on the worker and surface at
	// Finalize.
	bad := eng.NewColumn()
	if err := bad.Enqueue([]core.Report{{Y: 1, Row: 9, Col: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Finalize(); err == nil {
		t.Fatal("out-of-bounds report did not surface at Finalize")
	}

	// A closed engine rejects new work but still finalizes.
	open := eng.NewColumn()
	if err := open.Enqueue([]core.Report{{Y: -1, Row: 1, Col: 3}}); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // idempotent
	if err := open.Enqueue([]core.Report{{Y: 1, Row: 0, Col: 1}}); err != ErrClosed {
		t.Fatalf("post-close enqueue err = %v, want ErrClosed", err)
	}
	sk, err := open.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if sk.N() != 1 {
		t.Fatalf("post-close finalize N = %g, want 1", sk.N())
	}
	if _, err := eng.Simulate([]uint64{1, 2, 3, 4}, 1); err != ErrClosed {
		t.Fatalf("post-close simulate err = %v, want ErrClosed", err)
	}
}

// TestSimulateDeterministicAndAccurate ports the retired
// core.CollectParallel test: fixed (seed, shards) must reproduce
// bit-identically, independent of the worker count, and the result must
// match a sequential build using the same per-shard seeds.
func TestSimulateDeterministicAndAccurate(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(20)
	da := dataset.Zipf(21, 50000, 5000, 1.5)
	db := dataset.Zipf(22, 50000, 5000, 1.5)

	build := func(data []uint64, seed int64, opt Options) *core.Sketch {
		eng := NewEngine(p, fam, opt)
		defer eng.Close()
		sk, err := eng.Simulate(data, seed)
		if err != nil {
			t.Fatal(err)
		}
		return sk
	}

	s1 := build(da, 99, Options{Shards: 4, Workers: 1})
	s2 := build(da, 99, Options{Shards: 4, Workers: 8})
	if !bytes.Equal(marshal(t, s1), marshal(t, s2)) {
		t.Fatal("Simulate is not worker-count independent")
	}
	if s1.N() != 50000 {
		t.Fatalf("simulated N = %g, want 50000", s1.N())
	}

	// Reference: sequential build over the same chunks and shard seeds.
	ref := core.NewAggregator(p, fam)
	chunk := (len(da) + 3) / 4
	for w := 0; w < 4; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(da))
		part := core.NewAggregator(p, fam)
		part.CollectColumn(da[lo:hi], rand.New(rand.NewSource(shardSeed(99, w))))
		ref.Merge(part)
	}
	if !bytes.Equal(marshal(t, ref.Finalize()), marshal(t, s1)) {
		t.Fatal("Simulate differs from the per-shard sequential reference")
	}

	sb := build(db, 77, Options{Shards: 4})
	truth := join.Size(da, db)
	if re := math.Abs(s1.JoinSize(sb)-truth) / truth; re > 0.4 {
		t.Fatalf("simulated join RE = %.3f", re)
	}

	// Degenerate shard counts must still work.
	if sk := build(da[:10], 1, Options{Shards: 64}); sk.N() != 10 {
		t.Fatalf("tiny simulate N = %g", sk.N())
	}
	if sk := build(da[:100], 1, Options{}); sk.N() != 100 {
		t.Fatalf("auto-shard N = %g", sk.N())
	}
	if sk := Collect(p, fam, da[:100], 1, Options{Shards: 1}); sk.N() != 100 {
		t.Fatalf("Collect sequential N = %g", sk.N())
	}
}

// TestCollectMatrixDeterministicAndAccurate checks the parallel
// middle-table build: fixed (seed, shards) reproduces exactly, and the
// chain estimate stays accurate.
func TestCollectMatrixDeterministicAndAccurate(t *testing.T) {
	mp := core.MatrixParams{K: 9, M1: 256, M2: 256, Epsilon: 6}
	famA := core.Params{K: 9, M: 256, Epsilon: 6}.NewFamily(1)
	famB := core.Params{K: 9, M: 256, Epsilon: 6}.NewFamily(2)
	const n, domain = 60000, 300
	a := dataset.Zipf(51, n, domain, 1.5)
	b := dataset.Zipf(52, n, domain, 1.5)

	m1 := CollectMatrix(mp, famA, famB, a, b, 9, Options{Shards: 4, Workers: 2})
	m2 := CollectMatrix(mp, famA, famB, a, b, 9, Options{Shards: 4, Workers: 8})
	if m1.N() != n || m2.N() != n {
		t.Fatalf("matrix N = %g, %g", m1.N(), m2.N())
	}
	for j := 0; j < mp.K; j++ {
		r1, r2 := m1.Mat(j), m2.Mat(j)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatal("CollectMatrix is not worker-count independent")
			}
		}
	}

	// Accuracy end to end: 3-way chain against the exact size.
	endP := core.Params{K: 9, M: 256, Epsilon: 6}
	t1 := dataset.Zipf(53, n, domain, 1.5)
	t3 := dataset.Zipf(54, n, domain, 1.5)
	left := Collect(endP, famA, t1, 3, Options{})
	right := Collect(endP, famB, t3, 4, Options{})
	truth := join.ChainSize(t1, []join.PairTable{{A: a, B: b}}, t3)
	est := core.ChainEstimate(left, []*core.MatrixSketch{m1}, right)
	if re := math.Abs(est-truth) / truth; re > 0.6 {
		t.Fatalf("chain RE = %.3f (est %.4g truth %.4g)", re, est, truth)
	}
}

// TestEnqueueAllAtomicity: a multi-batch enqueue is all-or-nothing with
// respect to finalize — after Finalize it applies none of its batches.
func TestEnqueueAllAtomicity(t *testing.T) {
	p := core.Params{K: 2, M: 16, Epsilon: 1}
	eng := NewEngine(p, p.NewFamily(1), Options{Shards: 2, Workers: 2})
	defer eng.Close()

	col := eng.NewColumn()
	batches := [][]core.Report{
		{{Y: 1, Row: 0, Col: 1}, {Y: -1, Row: 1, Col: 2}},
		nil, // empty batches are skipped
		{{Y: 1, Row: 1, Col: 3}},
	}
	if err := col.EnqueueAll(batches); err != nil {
		t.Fatal(err)
	}
	if col.N() != 3 {
		t.Fatalf("N = %d, want 3", col.N())
	}
	sk, err := col.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if sk.N() != 3 {
		t.Fatalf("sketch N = %g, want 3", sk.N())
	}
	if err := col.EnqueueAll(batches); err != ErrFinalized {
		t.Fatalf("post-finalize EnqueueAll err = %v, want ErrFinalized", err)
	}
}
