package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
)

// MatrixColumn is one middle-table (two-attribute) sketch under
// construction: the matrix counterpart of Column, with the same
// lifecycle (Enqueue until the first drain, then ErrFinalized), the same
// shard-and-merge exactness argument (unfinalized matrix cells are
// integer sums, so fold order and shard count cannot change the
// finalized sketch), and the same worker pool. It is safe for concurrent
// use.
//
// A matrix replica is M1×M2 cells, so one aggregator is K·M1·M2
// float64s — far heavier than a scalar column's K·M. Matrix columns
// therefore shard by Options.MatrixShards (default 1: folds into one
// column serialize on its mutex, while distinct columns still fold
// concurrently on the worker pool — the same trade CollectMatrix
// makes), and each shard's aggregator is allocated lazily on its first
// fold, so creating a column is cheap and a column that never sees
// traffic never pays for cells.
type MatrixColumn struct {
	eng    *Engine
	params core.MatrixParams
	famA   *hashing.Family
	famB   *hashing.Family
	shards []*matrixShard
	next   atomic.Uint64
	n      atomic.Int64

	mu        sync.Mutex
	finalized bool
	wg        sync.WaitGroup

	errMu sync.Mutex
	err   error
}

type matrixShard struct {
	mu  sync.Mutex
	agg *core.MatrixAggregator // nil until the shard's first fold
}

// ensure returns the shard's aggregator, allocating it on first use.
// Callers hold sh.mu.
func (sh *matrixShard) ensure(c *MatrixColumn) *core.MatrixAggregator {
	if sh.agg == nil {
		sh.agg = core.NewMatrixAggregator(c.params, c.famA, c.famB)
	}
	return sh.agg
}

// NewMatrixColumn creates an empty matrix column on the engine for the
// given matrix parameters and attribute families. The parameters may
// differ from the engine's scalar params in shape but share its worker
// pool and queue; famA must span M1 buckets and famB M2, both with K
// replicas.
func (e *Engine) NewMatrixColumn(p core.MatrixParams, famA, famB *hashing.Family) *MatrixColumn {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if famA.K() != p.K || famB.K() != p.K || famA.M() != p.M1 || famB.M() != p.M2 {
		panic("ingest: matrix column families do not match params")
	}
	c := &MatrixColumn{eng: e, params: p, famA: famA, famB: famB,
		shards: make([]*matrixShard, e.opts.MatrixShards)}
	for i := range c.shards {
		c.shards[i] = &matrixShard{}
	}
	return c
}

// Params returns the matrix parameters the column folds under.
func (c *MatrixColumn) Params() core.MatrixParams { return c.params }

// Enqueue routes one batch of wire-format matrix reports to a shard and
// schedules the fold; shorthand for EnqueueAll with a single batch.
func (c *MatrixColumn) Enqueue(batch []core.MatrixReport) error {
	return c.EnqueueAll([][]core.MatrixReport{batch})
}

// EnqueueAll routes a set of matrix report batches to shards and
// schedules the folds, blocking while the engine queue is full. The call
// is atomic with respect to Finalize and Close exactly like
// Column.EnqueueAll: every batch lands before a concurrent drain, or
// none does. The engine takes ownership of the batch slices.
func (c *MatrixColumn) EnqueueAll(batches [][]core.MatrixReport) error {
	return c.enqueueAll(batches, false)
}

// EnqueueAllPooled is EnqueueAll for batches drawn from the protocol
// batch pool; consumed batches are recycled with
// protocol.PutMatrixBatch, under the same total-ownership contract as
// Column.EnqueueAllPooled.
func (c *MatrixColumn) EnqueueAllPooled(batches [][]core.MatrixReport) error {
	return c.enqueueAll(batches, true)
}

func (c *MatrixColumn) enqueueAll(batches [][]core.MatrixReport, recycle bool) error {
	var folds []func()
	var total int64
	for _, batch := range batches {
		if len(batch) == 0 {
			if recycle {
				protocol.PutMatrixBatch(batch)
			}
			continue
		}
		folds = append(folds, c.fold(batch, recycle))
		total += int64(len(batch))
	}
	if len(folds) == 0 {
		return nil
	}

	c.mu.Lock()
	if c.finalized {
		c.mu.Unlock()
		return ErrFinalized
	}
	c.wg.Add(len(folds))
	c.mu.Unlock()

	if err := c.eng.submitAll(folds); err != nil {
		c.wg.Add(-len(folds))
		return err
	}
	c.n.Add(total)
	return nil
}

// fold builds the worker task adding one batch to the next shard; with
// recycle set it returns the consumed batch to the protocol pool like
// Column.fold.
func (c *MatrixColumn) fold(batch []core.MatrixReport, recycle bool) func() {
	sh := c.shards[c.next.Add(1)%uint64(len(c.shards))]
	return func() {
		defer c.wg.Done()
		p := c.params
		sh.mu.Lock()
		agg := sh.ensure(c)
		for _, r := range batch {
			if int(r.Row) >= p.K || int(r.L1) >= p.M1 || int(r.L2) >= p.M2 || (r.Y != 1 && r.Y != -1) {
				c.setErr(fmt.Errorf("ingest: matrix report (y=%d, row=%d, l1=%d, l2=%d) out of sketch bounds (%d, %d, %d)",
					r.Y, r.Row, r.L1, r.L2, p.K, p.M1, p.M2))
				continue
			}
			agg.Add(r)
		}
		sh.mu.Unlock()
		if recycle {
			protocol.PutMatrixBatch(batch)
		}
	}
}

// N returns the number of reports accepted so far, including batches
// still queued behind the workers.
func (c *MatrixColumn) N() int64 { return c.n.Load() }

func (c *MatrixColumn) setErr(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// drain retires the column, waits out the outstanding folds, and merges
// the populated shards in shard order (an untouched column yields a
// fresh empty aggregator, so Snapshot of an empty column still works).
func (c *MatrixColumn) drain() (*core.MatrixAggregator, error) {
	c.mu.Lock()
	if c.finalized {
		c.mu.Unlock()
		return nil, ErrFinalized
	}
	c.finalized = true
	c.mu.Unlock()
	c.wg.Wait()

	c.errMu.Lock()
	err := c.err
	c.errMu.Unlock()
	if err != nil {
		return nil, err
	}

	var total *core.MatrixAggregator
	for _, sh := range c.shards {
		if sh.agg == nil {
			continue
		}
		if total == nil {
			total = sh.agg
			continue
		}
		total.Merge(sh.agg)
	}
	if total == nil {
		total = core.NewMatrixAggregator(c.params, c.famA, c.famB)
	}
	return total, nil
}

// Finalize drains the column, merges the shards, and restores the matrix
// sketch out of the double Hadamard domain. The column cannot be used
// afterwards.
func (c *MatrixColumn) Finalize() (*core.MatrixSketch, error) {
	total, err := c.drain()
	if err != nil {
		return nil, err
	}
	return total.Finalize(), nil
}

// Snapshot drains the column like Finalize but stops before the restore
// step, wrapping the merged unfinalized state as a mergeable snapshot
// that shares the first populated shard's matrices. The column cannot be
// used afterwards; encode the snapshot before anything else touches it.
func (c *MatrixColumn) Snapshot() (*protocol.Snapshot, error) {
	total, err := c.drain()
	if err != nil {
		return nil, err
	}
	return protocol.SnapshotOfMatrixAggregator(total), nil
}

// State copies the column's current aggregation state into a fresh
// unfinalized matrix aggregator without consuming the column: the
// point-in-time export for live federation pulls, with the same locking
// discipline as Column.State.
func (c *MatrixColumn) State() (*core.MatrixAggregator, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finalized {
		return nil, ErrFinalized
	}
	c.errMu.Lock()
	err := c.err
	c.errMu.Unlock()
	if err != nil {
		return nil, err
	}
	total := core.NewMatrixAggregator(c.params, c.famA, c.famB)
	for _, sh := range c.shards {
		sh.mu.Lock()
		if sh.agg != nil {
			total.Merge(sh.agg)
		}
		sh.mu.Unlock()
	}
	return total, nil
}

// Settle blocks until every fold accepted so far has landed in a
// shard, under the same caller-excludes-enqueues contract as
// Column.Settle.
func (c *MatrixColumn) Settle() { c.wg.Wait() }

// MergeAggregator folds an unfinalized matrix aggregator — typically
// restored from another collector's snapshot — into the column, exactly.
// It follows the Enqueue lifecycle and consumes agg: an untouched shard
// adopts it outright (zero copy), a populated one folds it in cell-wise.
func (c *MatrixColumn) MergeAggregator(agg *core.MatrixAggregator) error {
	if agg.Done() {
		return fmt.Errorf("ingest: cannot merge a finalized matrix aggregator")
	}
	if agg.Params() != c.params || agg.FamilyA().Seed() != c.famA.Seed() || agg.FamilyB().Seed() != c.famB.Seed() {
		ap := agg.Params()
		return fmt.Errorf("ingest: matrix aggregator (k=%d, m1=%d, m2=%d, ε=%g, seeds=%d,%d) does not match column (k=%d, m1=%d, m2=%d, ε=%g, seeds=%d,%d)",
			ap.K, ap.M1, ap.M2, ap.Epsilon, agg.FamilyA().Seed(), agg.FamilyB().Seed(),
			c.params.K, c.params.M1, c.params.M2, c.params.Epsilon, c.famA.Seed(), c.famB.Seed())
	}

	c.mu.Lock()
	if c.finalized {
		c.mu.Unlock()
		return ErrFinalized
	}
	c.wg.Add(1)
	c.mu.Unlock()
	defer c.wg.Done()

	sh := c.shards[c.next.Add(1)%uint64(len(c.shards))]
	sh.mu.Lock()
	if sh.agg == nil {
		sh.agg = agg
	} else {
		sh.agg.Merge(agg)
	}
	sh.mu.Unlock()
	c.n.Add(int64(agg.N()))
	return nil
}
