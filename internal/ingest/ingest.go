// Package ingest implements the sharded streaming ingestion engine of
// the aggregation server: the one path through which perturbed reports —
// whether they arrive from the wire or from a locally simulated
// population — are folded into LDPJoinSketch aggregation state.
//
// An Engine owns a bounded task queue and a fixed pool of worker
// goroutines. Ingestion state is split into per-shard aggregators
// (Column); batches of reports are routed round-robin to shards and
// folded concurrently, and Finalize merges the shards in shard order
// before restoring the sketch. Because an unfinalized aggregator cell
// holds an exact integer (each report contributes ±1, see
// core.Aggregator), shard merging is exact and order-independent: the
// finalized sketch is byte-identical regardless of the worker count, the
// queue depth, or how batches were interleaved across shards. Sharding
// is therefore pure parallelism — it costs no accuracy and no extra
// privacy budget, which is exactly the mergeability the paper's linear
// sketches are chosen for.
//
// The engine also hosts the deterministic parallel simulation build that
// used to live in core.CollectParallel: Simulate cuts a column of private
// values into Options.Shards contiguous chunks, derives one client RNG
// seed per chunk from (seed, chunk index), and perturbs + folds the
// chunks on the worker pool. For a fixed (seed, shards) pair the result
// is a deterministic function of the data — independent of Workers and
// of goroutine scheduling.
//
// Backpressure: Enqueue and the simulation builders block while the task
// queue is full, so a fast producer (an HTTP handler, a TCP collector)
// is throttled to the speed of the fold workers instead of buffering
// without bound.
//
// Federation: a Column is also the unit of cross-node scale-out. It can
// drain into a mergeable snapshot instead of a finalized sketch
// (Snapshot), export a point-in-time copy while still collecting
// (State), and fold in unfinalized state restored from another
// collector's snapshot (MergeAggregator) — all exact, because
// unfinalized cells are integers.
//
// The same exactness makes the engine the replay target of the durable
// column store (internal/store): WAL recovery feeds logged report
// batches back through Enqueue and checkpoints through MergeAggregator,
// and because folds commute exactly, the recovered column finalizes to
// a sketch byte-identical to the uninterrupted run — regardless of how
// shard counts or batch interleavings differ across the restart.
package ingest

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
)

// Options tunes an Engine. The zero value selects defaults.
type Options struct {
	// Shards is the number of per-column partial aggregators and the
	// number of chunks a simulated column is cut into. It is part of the
	// deterministic identity of Simulate: for a fixed (seed, Shards) pair
	// the simulated sketch is reproducible. Wire ingestion is
	// shard-count-independent (integral cells merge exactly). <= 0
	// selects GOMAXPROCS.
	Shards int
	// Workers is the number of fold goroutines. It never affects results,
	// only throughput. <= 0 selects GOMAXPROCS.
	Workers int
	// MatrixShards is the number of per-column partial aggregators a
	// matrix column keeps. Matrix state is K·M1·M2 cells *per shard*, so
	// the default is 1: batches folding into one matrix column serialize
	// on its mutex, while distinct columns still fold concurrently on
	// the worker pool (the same trade CollectMatrix makes). Raise it
	// only when a single hot matrix column is the ingest bottleneck and
	// the memory multiplier is acceptable; results never depend on it.
	// <= 0 selects 1.
	MatrixShards int
	// Queue bounds the task queue (in batches); producers block when it
	// is full. <= 0 selects 4×Workers.
	Queue int
}

func (o Options) normalized() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MatrixShards <= 0 {
		o.MatrixShards = 1
	}
	if o.Queue <= 0 {
		o.Queue = 4 * o.Workers
	}
	return o
}

var (
	// ErrClosed is returned when work is submitted to a closed engine.
	ErrClosed = errors.New("ingest: engine closed")
	// ErrFinalized is returned when reports are enqueued into, or a
	// second finalization is requested of, an already finalized column.
	ErrFinalized = errors.New("ingest: column already finalized")
)

// Engine is a worker pool folding report batches into sharded
// aggregation state. It is safe for concurrent use.
type Engine struct {
	params core.Params
	fam    *hashing.Family
	opts   Options

	tasks   chan func()
	workers sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// NewEngine starts an engine for the given protocol parameters and hash
// family. Close must be called to release the workers.
func NewEngine(p core.Params, fam *hashing.Family, opts Options) *Engine {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if fam.K() != p.K || fam.M() != p.M {
		panic("ingest: hash family does not match params")
	}
	e := &Engine{
		params: p,
		fam:    fam,
		opts:   opts.normalized(),
	}
	e.tasks = make(chan func(), e.opts.Queue)
	for i := 0; i < e.opts.Workers; i++ {
		e.workers.Add(1)
		go func() {
			defer e.workers.Done()
			for f := range e.tasks {
				f()
			}
		}()
	}
	return e
}

// Params returns the protocol parameters the engine folds under.
func (e *Engine) Params() core.Params { return e.params }

// Family returns the public hash family shared with the clients.
func (e *Engine) Family() *hashing.Family { return e.fam }

// Options returns the engine's normalized options.
func (e *Engine) Options() Options { return e.opts }

// QueueDepth returns the number of fold tasks currently queued behind
// the workers — the live backpressure signal (/metrics gauges it
// against Options().Queue).
func (e *Engine) QueueDepth() int { return len(e.tasks) }

// submit schedules f on the worker pool, blocking while the queue is
// full (backpressure).
func (e *Engine) submit(f func()) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	e.tasks <- f
	return nil
}

// submitAll schedules every task or none: the closed check happens once
// under the lock, so a concurrent Close cannot interleave between the
// sends (queued tasks survive Close — workers drain the queue first).
func (e *Engine) submitAll(fs []func()) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	for _, f := range fs {
		e.tasks <- f
	}
	return nil
}

// Close drains the queued work and stops the workers. Columns may still
// be finalized afterwards; new Enqueue and Simulate calls fail with
// ErrClosed. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.tasks)
	e.mu.Unlock()
	e.workers.Wait()
}

// Column is one logical sketch under construction: Options.Shards
// partial aggregators fed round-robin by Enqueue. It is safe for
// concurrent use.
type Column struct {
	eng    *Engine
	shards []*shard
	next   atomic.Uint64
	n      atomic.Int64

	mu        sync.Mutex
	finalized bool
	// wg tracks outstanding folds so Finalize can drain them. Add happens
	// under mu before the finalized flag cuts off new work, so it never
	// races Wait.
	wg sync.WaitGroup

	errMu sync.Mutex
	err   error
}

type shard struct {
	mu  sync.Mutex
	agg *core.Aggregator
}

// NewColumn creates an empty column on the engine, aggregating under the
// engine's own hash family (join attribute 0 of a chain deployment).
func (e *Engine) NewColumn() *Column {
	return e.NewColumnWithFamily(e.fam)
}

// NewColumnWithFamily creates an empty column aggregating under fam
// instead of the engine's family — the scalar end column of a chain
// whose join attribute is not attribute 0. The family must share the
// engine's dimensions (the sketch shape, queue, and worker pool are all
// per-engine; only the hash functions differ per attribute).
func (e *Engine) NewColumnWithFamily(fam *hashing.Family) *Column {
	if fam.K() != e.params.K || fam.M() != e.params.M {
		panic("ingest: column family does not match engine params")
	}
	c := &Column{eng: e, shards: make([]*shard, e.opts.Shards)}
	for i := range c.shards {
		c.shards[i] = &shard{agg: core.NewAggregator(e.params, fam)}
	}
	return c
}

// Enqueue routes one batch of wire-format reports to a shard and
// schedules the fold, blocking while the engine queue is full. It is
// shorthand for EnqueueAll with a single batch.
func (c *Column) Enqueue(batch []core.Report) error {
	return c.EnqueueAll([][]core.Report{batch})
}

// EnqueueAll routes a set of batches to shards and schedules the folds,
// blocking while the engine queue is full. The call is atomic with
// respect to Finalize and Close: either every batch is scheduled (a
// concurrent Finalize drains them all before merging) or none is and
// ErrFinalized/ErrClosed is returned — a multi-batch request is never
// half-applied. The engine takes ownership of the batch slices; the
// caller must not modify them afterwards. Reports are bounds-checked on
// the worker: a report outside the sketch (or with an invalid sign) is
// dropped and surfaces as an error from Finalize, which then yields no
// sketch at all.
func (c *Column) EnqueueAll(batches [][]core.Report) error {
	return c.enqueueAll(batches, false)
}

// EnqueueAllPooled is EnqueueAll for batches drawn from the protocol
// batch pool (BatchReader.Next, DecodeReportsPayload): once a fold has
// consumed a batch it is recycled with protocol.PutReportBatch. The
// ownership transfer is therefore total — the caller must not read,
// reuse, or re-enqueue a batch after a successful call, because its
// backing array may already be carrying the next decoded batch. On
// error the batches were not scheduled and remain the caller's.
func (c *Column) EnqueueAllPooled(batches [][]core.Report) error {
	return c.enqueueAll(batches, true)
}

func (c *Column) enqueueAll(batches [][]core.Report, recycle bool) error {
	var folds []func()
	var total int64
	for _, batch := range batches {
		if len(batch) == 0 {
			if recycle {
				protocol.PutReportBatch(batch)
			}
			continue
		}
		folds = append(folds, c.fold(batch, recycle))
		total += int64(len(batch))
	}
	if len(folds) == 0 {
		return nil
	}

	c.mu.Lock()
	if c.finalized {
		c.mu.Unlock()
		return ErrFinalized
	}
	c.wg.Add(len(folds))
	c.mu.Unlock()

	if err := c.eng.submitAll(folds); err != nil {
		c.wg.Add(-len(folds))
		return err
	}
	c.n.Add(total)
	return nil
}

// fold builds the worker task adding one batch to the next shard. With
// recycle set the fold is where the batch dies — EnqueueAllPooled
// transferred total ownership — so after the reports land in the shard
// the batch goes back to the protocol batch pool for the next decode.
func (c *Column) fold(batch []core.Report, recycle bool) func() {
	sh := c.shards[c.next.Add(1)%uint64(len(c.shards))]
	return func() {
		defer c.wg.Done()
		k, m := c.eng.params.K, c.eng.params.M
		sh.mu.Lock()
		for _, r := range batch {
			if int(r.Row) >= k || int(r.Col) >= m || (r.Y != 1 && r.Y != -1) {
				c.setErr(fmt.Errorf("ingest: report (y=%d, row=%d, col=%d) out of sketch bounds (%d, %d)",
					r.Y, r.Row, r.Col, k, m))
				continue
			}
			sh.agg.Add(r)
		}
		sh.mu.Unlock()
		if recycle {
			protocol.PutReportBatch(batch)
		}
	}
}

// N returns the number of reports accepted so far, including batches
// still queued behind the workers. An accepted report only fails to
// reach the sketch if it is out of bounds — and in that case Finalize
// returns an error instead of a sketch, so N never silently disagrees
// with a finalized result.
func (c *Column) N() int64 { return c.n.Load() }

func (c *Column) setErr(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// drain retires the column — no further Enqueue, Merge, or State call
// succeeds — waits out the outstanding folds, and merges the shards in
// shard order into one unfinalized aggregator (reusing shard 0's state,
// so draining allocates nothing). It returns an error if any enqueued
// report was out of bounds, or ErrFinalized on a second drain.
func (c *Column) drain() (*core.Aggregator, error) {
	c.mu.Lock()
	if c.finalized {
		c.mu.Unlock()
		return nil, ErrFinalized
	}
	c.finalized = true
	c.mu.Unlock()
	c.wg.Wait()

	c.errMu.Lock()
	err := c.err
	c.errMu.Unlock()
	if err != nil {
		return nil, err
	}

	total := c.shards[0].agg
	for _, sh := range c.shards[1:] {
		total.Merge(sh.agg)
	}
	return total, nil
}

// Finalize drains the column's outstanding folds, merges the shards in
// shard order, and restores the sketch. The column cannot be used
// afterwards. It returns an error if any enqueued report was out of
// bounds, or ErrFinalized on a second call.
func (c *Column) Finalize() (*core.Sketch, error) {
	total, err := c.drain()
	if err != nil {
		return nil, err
	}
	return total.Finalize(), nil
}

// Snapshot drains the column exactly like Finalize but stops before the
// debias-and-restore step, wrapping the merged unfinalized state as a
// mergeable snapshot. Because the merge reuses shard 0's rows and the
// snapshot shares them, the per-shard aggregators drain straight into
// the snapshot with no intermediate copy. The column cannot be used
// afterwards; encode the snapshot before anything else touches it.
func (c *Column) Snapshot() (*protocol.Snapshot, error) {
	total, err := c.drain()
	if err != nil {
		return nil, err
	}
	return protocol.SnapshotOfAggregator(total), nil
}

// State copies the column's current aggregation state into a fresh
// unfinalized aggregator without consuming the column: a point-in-time
// export for live federation pulls. The copy is taken shard by shard
// under the shard locks, so it is an exact prefix of the ingested
// stream in per-shard order; reports still queued behind the workers at
// the moment of the call are not included (the returned aggregator's N
// reflects exactly the folded reports it contains). State holds the
// column lock for the duration of the copy, which briefly blocks
// concurrent Enqueue calls and excludes the lock-free shard merge that
// Finalize and Snapshot perform after retiring the column.
func (c *Column) State() (*core.Aggregator, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finalized {
		return nil, ErrFinalized
	}
	c.errMu.Lock()
	err := c.err
	c.errMu.Unlock()
	if err != nil {
		return nil, err
	}
	// Use shard 0's family, not the engine's: a NewColumnWithFamily
	// column aggregates under its own attribute family.
	total := core.NewAggregator(c.eng.params, c.shards[0].agg.Family())
	for _, sh := range c.shards {
		sh.mu.Lock()
		total.Merge(sh.agg)
		sh.mu.Unlock()
	}
	return total, nil
}

// Settle blocks until every fold accepted so far has landed in a
// shard. The caller must exclude concurrent EnqueueAll and
// MergeAggregator calls for the duration — the service's checkpoint
// gate does — otherwise a new wg.Add races the wait. After Settle
// returns (under that exclusion), State is a complete copy of every
// accepted report, which is what lets a background checkpoint cover
// exactly the WAL records written so far.
func (c *Column) Settle() { c.wg.Wait() }

// MergeAggregator folds an unfinalized aggregator — typically restored
// from another collector's snapshot — into the column. The merge is
// exact: unfinalized cells are integer sums, so a column fed by merges
// finalizes byte-identically to one fed the underlying reports. It
// follows the Enqueue lifecycle (ErrFinalized after Finalize/Snapshot,
// atomic with respect to both) and consumes agg: the caller must not
// use it afterwards.
func (c *Column) MergeAggregator(agg *core.Aggregator) error {
	if agg.Done() {
		return fmt.Errorf("ingest: cannot merge a finalized aggregator")
	}
	probe := c.shards[0].agg
	if !probe.Compatible(agg) {
		return fmt.Errorf("ingest: aggregator (k=%d, m=%d, ε=%g, seed=%d) does not match column (k=%d, m=%d, ε=%g, seed=%d)",
			agg.Params().K, agg.Params().M, agg.Params().Epsilon, agg.Family().Seed(),
			probe.Params().K, probe.Params().M, probe.Params().Epsilon, probe.Family().Seed())
	}

	c.mu.Lock()
	if c.finalized {
		c.mu.Unlock()
		return ErrFinalized
	}
	c.wg.Add(1)
	c.mu.Unlock()
	defer c.wg.Done()

	sh := c.shards[c.next.Add(1)%uint64(len(c.shards))]
	sh.mu.Lock()
	sh.agg.Merge(agg)
	sh.mu.Unlock()
	c.n.Add(int64(agg.N()))
	return nil
}

// Simulate builds a sketch over a column of private values on the worker
// pool, replacing the retired core.CollectParallel: the column is cut
// into Options.Shards fixed contiguous chunks, chunk w simulates its
// clients with a seed derived from (seed, w), and the partial
// aggregators are merged in chunk order before finalization. Chunk
// boundaries and seeds are functions of (len(values), seed, Shards)
// only, so the result is deterministic and independent of Workers and of
// goroutine scheduling.
func (e *Engine) Simulate(values []uint64, seed int64) (*core.Sketch, error) {
	shards := e.opts.Shards
	if shards > len(values) {
		shards = len(values)
	}
	if shards <= 1 {
		agg := core.NewAggregator(e.params, e.fam)
		agg.CollectColumn(values, rand.New(rand.NewSource(seed)))
		return agg.Finalize(), nil
	}

	parts := make([]*core.Aggregator, shards)
	var wg sync.WaitGroup
	chunk := (len(values) + shards - 1) / shards
	for w := 0; w < shards; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(values))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		err := e.submit(func() {
			defer wg.Done()
			agg := core.NewAggregator(e.params, e.fam)
			agg.CollectColumn(values[lo:hi], rand.New(rand.NewSource(shardSeed(seed, w))))
			parts[w] = agg
		})
		if err != nil {
			wg.Done()
			wg.Wait()
			return nil, err
		}
	}
	wg.Wait()

	var total *core.Aggregator
	for _, part := range parts {
		if part == nil {
			continue
		}
		if total == nil {
			total = part
			continue
		}
		total.Merge(part)
	}
	return total.Finalize(), nil
}

// shardSeed derives the client RNG seed of simulation chunk w. The
// derivation is identical to the retired core.CollectParallel, so
// sketches built by Simulate reproduce its output bit for bit.
func shardSeed(seed int64, w int) int64 {
	state := uint64(seed) ^ (uint64(w)+1)*0x9e3779b97f4a7c15
	return int64(hashing.SplitMix64(&state))
}
