package ingest

import (
	"bytes"
	"sync"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/protocol"
)

// TestColumnSnapshotMatchesFinalize: draining a column into a snapshot,
// shipping it through the codec, and finalizing on the other side must
// reproduce Finalize byte-for-byte.
func TestColumnSnapshotMatchesFinalize(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(42)
	reports := perturbColumn(p, 5, dataset.Zipf(3, 20000, 2000, 1.3))

	eng := NewEngine(p, fam, Options{Shards: 4, Workers: 4})
	defer eng.Close()
	feed := func(col *Column) {
		for lo := 0; lo < len(reports); lo += 777 {
			hi := min(lo+777, len(reports))
			if err := col.Enqueue(reports[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
	}

	colA := eng.NewColumn()
	feed(colA)
	sk, err := colA.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, sk)

	colB := eng.NewColumn()
	feed(colB)
	snap, err := colB.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Finalized {
		t.Fatal("column snapshot should be unfinalized (mergeable)")
	}
	if snap.N != float64(len(reports)) {
		t.Fatalf("snapshot N = %v, want %d", snap.N, len(reports))
	}
	data, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := protocol.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := decoded.Aggregator()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, agg.Finalize()), want) {
		t.Fatal("snapshot round trip does not reproduce Finalize")
	}

	// The column is spent, exactly like after Finalize.
	if _, err := colB.Snapshot(); err != ErrFinalized {
		t.Fatalf("second Snapshot: got %v, want ErrFinalized", err)
	}
	if _, err := colB.Finalize(); err != ErrFinalized {
		t.Fatalf("Finalize after Snapshot: got %v, want ErrFinalized", err)
	}
	if err := colB.Enqueue(reports[:10]); err != ErrFinalized {
		t.Fatalf("Enqueue after Snapshot: got %v, want ErrFinalized", err)
	}
}

// TestColumnMergeAggregator: a column fed half a stream directly and
// half through MergeAggregator finalizes byte-identically to a column
// fed the whole stream.
func TestColumnMergeAggregator(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(42)
	reports := perturbColumn(p, 9, dataset.Zipf(4, 20000, 2000, 1.3))
	half := len(reports) / 2

	eng := NewEngine(p, fam, Options{Shards: 3, Workers: 4})
	defer eng.Close()

	full := eng.NewColumn()
	if err := full.Enqueue(reports); err != nil {
		t.Fatal(err)
	}
	sk, err := full.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, sk)

	remote := core.NewAggregator(p, fam)
	for _, r := range reports[half:] {
		remote.Add(r)
	}
	local := eng.NewColumn()
	if err := local.Enqueue(reports[:half]); err != nil {
		t.Fatal(err)
	}
	if err := local.MergeAggregator(remote); err != nil {
		t.Fatal(err)
	}
	if got, wantN := local.N(), int64(len(reports)); got != wantN {
		t.Fatalf("N after merge = %d, want %d", got, wantN)
	}
	sk2, err := local.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, sk2), want) {
		t.Fatal("merge-fed column differs from stream-fed column")
	}
}

func TestColumnMergeAggregatorRejects(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(42)
	eng := NewEngine(p, fam, Options{Shards: 2, Workers: 2})
	defer eng.Close()

	col := eng.NewColumn()
	other := core.NewAggregator(p, p.NewFamily(43)) // wrong seed
	if err := col.MergeAggregator(other); err == nil {
		t.Fatal("merge across hash families accepted")
	}
	done := core.NewAggregator(p, fam)
	done.Finalize()
	if err := col.MergeAggregator(done); err == nil {
		t.Fatal("merge of a finalized aggregator accepted")
	}
	if _, err := col.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := col.MergeAggregator(core.NewAggregator(p, fam)); err != ErrFinalized {
		t.Fatalf("merge into finalized column: got %v, want ErrFinalized", err)
	}
}

// TestColumnState: the point-in-time export contains exactly the folded
// reports, does not consume the column, and the column keeps ingesting
// afterwards.
func TestColumnState(t *testing.T) {
	p := testParams()
	fam := p.NewFamily(42)
	reports := perturbColumn(p, 11, dataset.Zipf(5, 10000, 1000, 1.3))
	half := len(reports) / 2

	eng := NewEngine(p, fam, Options{Shards: 2, Workers: 2})
	defer eng.Close()
	col := eng.NewColumn()
	if err := col.Enqueue(reports[:half]); err != nil {
		t.Fatal(err)
	}
	// Quiesce so the point-in-time copy is exactly the first half.
	waitQuiescent(t, col, int64(half))

	agg, err := col.State()
	if err != nil {
		t.Fatal(err)
	}
	if agg.N() != float64(half) {
		t.Fatalf("state N = %v, want %d", agg.N(), half)
	}

	// The column keeps going; the state copy is independent.
	if err := col.Enqueue(reports[half:]); err != nil {
		t.Fatal(err)
	}
	sk, err := col.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if sk.N() != float64(len(reports)) {
		t.Fatalf("final N = %v, want %d", sk.N(), len(reports))
	}

	// The exported state matches a direct fold of the first half.
	direct := core.NewAggregator(p, fam)
	for _, r := range reports[:half] {
		direct.Add(r)
	}
	if !bytes.Equal(marshal(t, agg.Finalize()), marshal(t, direct.Finalize())) {
		t.Fatal("point-in-time state differs from direct fold of the same prefix")
	}

	if _, err := col.State(); err != ErrFinalized {
		t.Fatalf("State after Finalize: got %v, want ErrFinalized", err)
	}
}

// waitQuiescent blocks until the column's queued folds have landed, by
// draining a throwaway point-in-time copy until the counts agree.
func waitQuiescent(t *testing.T, col *Column, want int64) {
	t.Helper()
	for {
		agg, err := col.State()
		if err != nil {
			t.Fatal(err)
		}
		if int64(agg.N()) == want {
			return
		}
	}
}

// TestColumnStateConcurrent hammers State while folds, merges, and a
// final drain are in flight — the -race exercise for the federation
// paths. Invariant: every state copy holds a consistent (cells, n) pair
// whose finalized form matches a prefix count, and the final sketch
// still matches the sequential fold.
func TestColumnStateConcurrent(t *testing.T) {
	p := core.Params{K: 4, M: 64, Epsilon: 2}
	fam := p.NewFamily(42)
	reports := perturbColumn(p, 13, dataset.Zipf(6, 8000, 500, 1.2))

	eng := NewEngine(p, fam, Options{Shards: 4, Workers: 4})
	defer eng.Close()
	col := eng.NewColumn()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for lo := 0; lo < len(reports); lo += 256 {
			hi := min(lo+256, len(reports))
			if err := col.Enqueue(reports[lo:hi]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			agg, err := col.State()
			if err != nil {
				return // column finalized underneath us: allowed
			}
			var sum float64
			for _, row := range agg.Rows() {
				for _, v := range row {
					if v != float64(int64(v)) {
						t.Error("state cell is not an exact integer")
						return
					}
					sum += v
				}
			}
			_ = sum
		}
	}()
	wg.Wait()

	sk, err := col.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	direct := core.NewAggregator(p, fam)
	for _, r := range reports {
		direct.Add(r)
	}
	if !bytes.Equal(marshal(t, sk), marshal(t, direct.Finalize())) {
		t.Fatal("concurrent State calls perturbed the column")
	}
}
