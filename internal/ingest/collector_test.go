package ingest

import (
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
	"ldpjoin/internal/protocol"
)

// TestCollectorOverPipes runs the full distributed workflow over
// net.Pipe connections: several client gateways stream perturbed reports
// concurrently, the engine folds them into shards, and the resulting
// sketch estimates a join against a locally built sketch.
func TestCollectorOverPipes(t *testing.T) {
	p := core.Params{K: 9, M: 512, Epsilon: 4}
	fam := p.NewFamily(1)
	da := dataset.Zipf(2, 40000, 2000, 1.3)
	db := dataset.Zipf(3, 40000, 2000, 1.3)

	col := NewCollector(p, fam, Options{})
	const conns = 4
	var wg sync.WaitGroup
	chunk := len(da) / conns
	for i := 0; i < conns; i++ {
		cliEnd, srvEnd := net.Pipe()
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = col.ServeConn(srvEnd)
		}()
		go func(part []uint64, seed int64) {
			defer wg.Done()
			defer cliEnd.Close()
			w, err := protocol.NewReportWriter(cliEnd, p)
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			rng := rand.New(rand.NewSource(seed))
			for _, d := range part {
				if err := w.Write(core.Perturb(d, p, fam, rng)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
			if err := w.Flush(); err != nil {
				t.Errorf("flush: %v", err)
			}
		}(da[i*chunk:(i+1)*chunk], int64(100+i))
	}
	wg.Wait()
	if col.Streams() != conns {
		t.Fatalf("streams = %d, want %d", col.Streams(), conns)
	}
	skA, err := col.Finalize()
	if err != nil {
		t.Fatalf("collector error: %v", err)
	}
	if skA.N() != float64(len(da)) {
		t.Fatalf("collected %g reports, want %d", skA.N(), len(da))
	}

	// Attribute B built locally; estimate must be near the truth.
	aggB := core.NewAggregator(p, fam)
	aggB.CollectColumn(db, rand.New(rand.NewSource(7)))
	truth := join.Size(da, db)
	est := skA.JoinSize(aggB.Finalize())
	if re := math.Abs(est-truth) / truth; re > 0.5 {
		t.Fatalf("networked join RE = %.3f (est %.0f truth %.0f)", re, est, truth)
	}
}

// TestCollectorOverTCP exercises the accept loop on a real localhost
// listener.
func TestCollectorOverTCP(t *testing.T) {
	p := core.Params{K: 4, M: 64, Epsilon: 2}
	fam := p.NewFamily(9)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on localhost: %v", err)
	}
	defer l.Close()

	col := NewCollector(p, fam, Options{Shards: 2, Workers: 2})
	serveErr := make(chan error, 1)
	go func() { serveErr <- col.Serve(l, 2) }()

	send := func(seed int64, n int) error {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return err
		}
		defer conn.Close()
		w, err := protocol.NewReportWriter(conn, p)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			if err := w.Write(core.Perturb(uint64(i%50), p, fam, rng)); err != nil {
				return err
			}
		}
		return w.Flush()
	}
	if err := send(1, 500); err != nil {
		t.Fatal(err)
	}
	if err := send(2, 300); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	if col.N() != 800 {
		t.Fatalf("accepted %d reports, want 800", col.N())
	}
	sk, err := col.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if sk.N() != 800 {
		t.Fatalf("collected %g reports, want 800", sk.N())
	}
}

func TestCollectorDoubleCloseSafe(t *testing.T) {
	p := core.Params{K: 2, M: 16, Epsilon: 1}
	col := NewCollector(p, p.NewFamily(1), Options{})
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorRecordsStreamError(t *testing.T) {
	p := core.Params{K: 2, M: 16, Epsilon: 1}
	col := NewCollector(p, p.NewFamily(1), Options{})
	cliEnd, srvEnd := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- col.ServeConn(srvEnd) }()
	// Write garbage and close.
	if _, err := cliEnd.Write([]byte("garbage-not-a-header-xxxx")); err != nil {
		t.Fatal(err)
	}
	cliEnd.Close()
	if err := <-done; err == nil {
		t.Fatal("expected stream error")
	}
	if err := col.Close(); err == nil {
		t.Fatal("Close should surface the stream error")
	}
	if _, err := col.Finalize(); err == nil {
		t.Fatal("Finalize should surface the stream error")
	}
}
