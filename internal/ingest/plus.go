package ingest

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
)

var (
	// ErrPlusPhase is returned when a report batch's group does not
	// match the column's current phase: sample reports after the
	// advance, or group reports before it.
	ErrPlusPhase = errors.New("ingest: report group does not match the plus column's phase")
	// ErrPlusAdvanced is returned for a second advance.
	ErrPlusAdvanced = errors.New("ingest: plus column already advanced")
	// ErrPlusNotAdvanced is returned when an operation needs the phase
	// boundary to have passed — finalizing a plus column that never
	// advanced has no group sketches to estimate from.
	ErrPlusNotAdvanced = errors.New("ingest: plus column has not advanced to phase 2")
)

// PlusColumn is one two-phase LDPJoinSketch+ column under construction:
// three ordinary sharded Columns on the shared worker pool — the
// phase-1 sample window under the sample family, and the two phase-2
// FAP group sketches under the shared group family — plus the phase
// boundary itself. The column starts in phase 1 (only sample reports
// are accepted); Advance freezes the frequent-item set and flips it to
// phase 2 (only low/high group reports are accepted). All mutations of
// the phase state serialize on one mutex so that the order in which
// reports and the advance are accepted is well defined — the property
// the WAL relies on to replay a crash into byte-identical state.
type PlusColumn struct {
	eng    *Engine
	sample *Column
	low    *Column
	high   *Column

	mu       sync.Mutex
	advanced bool
	domain   uint64
	theta    float64
	fi       []uint64 // frozen at advance, sorted strictly ascending
}

// NewPlusColumn creates an empty plus column on the engine. famSample
// keys the phase-1 sample sketch, famGroup both phase-2 group sketches
// (FAP changes how non-targets are encoded, not where targets land).
// Both families must share the engine's dimensions.
func (e *Engine) NewPlusColumn(famSample, famGroup *hashing.Family) *PlusColumn {
	return &PlusColumn{
		eng:    e,
		sample: e.NewColumnWithFamily(famSample),
		low:    e.NewColumnWithFamily(famGroup),
		high:   e.NewColumnWithFamily(famGroup),
	}
}

// column maps a wire group to its backing column.
func (c *PlusColumn) column(group protocol.PlusGroup) (*Column, error) {
	switch group {
	case protocol.PlusSample:
		return c.sample, nil
	case protocol.PlusLow:
		return c.low, nil
	case protocol.PlusHigh:
		return c.high, nil
	}
	return nil, fmt.Errorf("ingest: invalid plus group %d", group)
}

// CheckGroup reports whether a batch for the group would currently be
// accepted: sample reports only before the advance, group reports only
// after. Callers that persist before enqueueing (the service) check
// under their own serialization so nothing unreplayable reaches the
// WAL.
func (c *PlusColumn) CheckGroup(group protocol.PlusGroup) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkGroupLocked(group)
}

func (c *PlusColumn) checkGroupLocked(group protocol.PlusGroup) error {
	if group > protocol.PlusHigh {
		return fmt.Errorf("ingest: invalid plus group %d", group)
	}
	if (group == protocol.PlusSample) == c.advanced {
		return fmt.Errorf("%w: %s reports while %s", ErrPlusPhase, group, c.phaseLocked())
	}
	return nil
}

func (c *PlusColumn) phaseLocked() string {
	if c.advanced {
		return "in phase 2"
	}
	return "in phase 1"
}

// EnqueueAll routes a set of batches for one phase group to the
// backing column, after checking the group against the current phase.
// The phase check and the enqueue happen under the column mutex, so a
// concurrent Advance cannot slip between them.
func (c *PlusColumn) EnqueueAll(group protocol.PlusGroup, batches [][]core.Report) error {
	return c.enqueueAll(group, batches, false)
}

// EnqueueAllPooled is EnqueueAll for batches drawn from the protocol
// batch pool, under the same total-ownership contract as
// Column.EnqueueAllPooled.
func (c *PlusColumn) EnqueueAllPooled(group protocol.PlusGroup, batches [][]core.Report) error {
	return c.enqueueAll(group, batches, true)
}

func (c *PlusColumn) enqueueAll(group protocol.PlusGroup, batches [][]core.Report, recycle bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkGroupLocked(group); err != nil {
		return err
	}
	col, err := c.column(group)
	if err != nil {
		return err
	}
	return col.enqueueAll(batches, recycle)
}

// Advanced reports whether the phase boundary has passed.
func (c *PlusColumn) Advanced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.advanced
}

// AdvanceInfo returns the frozen advance parameters (a copy) and
// whether the column has advanced.
func (c *PlusColumn) AdvanceInfo() (domain uint64, theta float64, fi []uint64, advanced bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.domain, c.theta, slices.Clone(c.fi), c.advanced
}

// ProposeFI extracts a frequent-item proposal from the current phase-1
// sample state without freezing anything: a point-in-time copy of the
// sample aggregator is finalized and thresholded at θ·|S| (Algorithm
// 3, phase 1). Callers broadcast proposals (GET /fi) or pass a union
// of proposals back into Advance.
func (c *PlusColumn) ProposeFI(domain uint64, theta float64) ([]uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.advanced {
		return nil, ErrPlusAdvanced
	}
	return c.proposeLocked(domain, theta)
}

func (c *PlusColumn) proposeLocked(domain uint64, theta float64) ([]uint64, error) {
	// Wait for every accepted fold to land first: the proposal must be
	// a deterministic function of the accepted phase-1 stream, not of
	// worker timing — kill-and-reopen recovery replays that stream and
	// must propose the same set. New enqueues block on c.mu meanwhile,
	// so the wait has a fixed target.
	c.sample.wg.Wait()
	agg, err := c.sample.State()
	if err != nil {
		return nil, err
	}
	sk := agg.Finalize()
	// FrequentItems scans [0, domain) in order, so the proposal is
	// already sorted strictly ascending — the canonical FI form.
	return sk.FrequentItems(domain, theta*sk.N(), false), nil
}

// Advance freezes the frequent-item set and flips the column to phase
// 2. With fi == nil the set is computed from the column's own phase-1
// sample (the single-collector flow); an explicit fi — sorted strictly
// ascending, every item inside the domain — installs a
// coordinator-supplied set instead (the federated flow, where FI is
// the union of per-collector proposals). The sample aggregator is not
// consumed: phase-1 reports keep their exact integer cells for
// finalization and federation. Returns the frozen set.
func (c *PlusColumn) Advance(domain uint64, theta float64, fi []uint64) ([]uint64, error) {
	if domain == 0 {
		return nil, fmt.Errorf("ingest: advance needs a positive domain")
	}
	if !(theta > 0 && theta < 1) {
		return nil, fmt.Errorf("ingest: advance theta %v outside (0,1)", theta)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.advanced {
		return nil, ErrPlusAdvanced
	}
	if fi == nil {
		var err error
		if fi, err = c.proposeLocked(domain, theta); err != nil {
			return nil, err
		}
	} else {
		for i, d := range fi {
			if d >= domain {
				return nil, fmt.Errorf("ingest: frequent item %d outside domain %d", d, domain)
			}
			if i > 0 && d <= fi[i-1] {
				return nil, fmt.Errorf("ingest: frequent items not strictly ascending at index %d", i)
			}
		}
		fi = slices.Clone(fi)
	}
	c.advanced = true
	c.domain = domain
	c.theta = theta
	c.fi = fi
	return slices.Clone(fi), nil
}

// N returns the reports accepted so far across all phases.
func (c *PlusColumn) N() int64 {
	return c.sample.N() + c.low.N() + c.high.N()
}

// Counts returns the per-phase report counts.
func (c *PlusColumn) Counts() (sample, low, high int64) {
	return c.sample.N(), c.low.N(), c.high.N()
}

// Finalize drains all three backing columns and restores the finalized
// column state. The column must have advanced — before the phase
// boundary there are no group sketches to estimate from — and cannot
// be used afterwards.
func (c *PlusColumn) Finalize() (*core.PlusState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.advanced {
		return nil, ErrPlusNotAdvanced
	}
	sample, err := c.sample.Finalize()
	if err != nil {
		return nil, err
	}
	low, err := c.low.Finalize()
	if err != nil {
		return nil, err
	}
	high, err := c.high.Finalize()
	if err != nil {
		return nil, err
	}
	return &core.PlusState{
		Sample: sample,
		Low:    low,
		High:   high,
		Domain: c.domain,
		Theta:  c.theta,
		FI:     c.fi,
	}, nil
}

// Snapshot drains the column into a mergeable composite snapshot — the
// checkpoint form of a collecting plus column. Like Column.Snapshot it
// consumes the column and shares the drained rows; encode before
// anything else touches it.
func (c *PlusColumn) Snapshot() (*protocol.PlusSnapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sampleAgg, err := c.sample.drain()
	if err != nil {
		return nil, err
	}
	ps := &protocol.PlusSnapshot{
		Advanced: c.advanced,
		Sample:   protocol.SnapshotOfAggregator(sampleAgg),
	}
	if c.advanced {
		lowAgg, err := c.low.drain()
		if err != nil {
			return nil, err
		}
		highAgg, err := c.high.drain()
		if err != nil {
			return nil, err
		}
		ps.Domain, ps.Theta, ps.FI = c.domain, c.theta, c.fi
		ps.Low = protocol.SnapshotOfAggregator(lowAgg)
		ps.High = protocol.SnapshotOfAggregator(highAgg)
	}
	return ps, nil
}

// State copies the column's current state into a fresh composite
// snapshot without consuming it: the point-in-time export live
// federation pulls (GET /snapshot). The copy and the phase metadata
// are read under the column mutex, so a concurrent Advance can never
// produce a snapshot whose groups disagree with its FI.
func (c *PlusColumn) State() (*protocol.PlusSnapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// As in proposeLocked: settle the accepted folds so the export is a
	// deterministic function of the accepted stream — the property the
	// federation conformance (byte-identical to single-node ingestion)
	// rests on.
	c.sample.wg.Wait()
	c.low.wg.Wait()
	c.high.wg.Wait()
	sampleAgg, err := c.sample.State()
	if err != nil {
		return nil, err
	}
	ps := &protocol.PlusSnapshot{
		Advanced: c.advanced,
		Sample:   protocol.SnapshotOfAggregator(sampleAgg),
	}
	if c.advanced {
		lowAgg, err := c.low.State()
		if err != nil {
			return nil, err
		}
		highAgg, err := c.high.State()
		if err != nil {
			return nil, err
		}
		ps.Domain, ps.Theta, ps.FI = c.domain, c.theta, slices.Clone(c.fi)
		ps.Low = protocol.SnapshotOfAggregator(lowAgg)
		ps.High = protocol.SnapshotOfAggregator(highAgg)
	}
	return ps, nil
}

// MergePlus folds another collector's unfinalized composite snapshot
// into the column, phase by phase. The phases must agree: a snapshot
// from the other side of the advance cannot merge (the service adopts
// the snapshot's advance first when the local column can still follow),
// and two advanced columns must have frozen identical (domain, θ, FI).
// Merging is exact for the same reason single-phase merging is —
// unfinalized cells are integer sums.
func (c *PlusColumn) MergePlus(snap *protocol.PlusSnapshot) error {
	if snap.Finalized {
		return fmt.Errorf("ingest: cannot merge a finalized plus snapshot")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if snap.Advanced != c.advanced {
		if c.advanced {
			return fmt.Errorf("%w: merging a phase-1 snapshot into a phase-2 column", ErrPlusPhase)
		}
		return fmt.Errorf("%w: merging a phase-2 snapshot into a phase-1 column", ErrPlusPhase)
	}
	if snap.Advanced {
		if snap.Domain != c.domain || snap.Theta != c.theta || !slices.Equal(snap.FI, c.fi) {
			return fmt.Errorf("ingest: plus snapshot froze a different frequent-item set than the column")
		}
	}
	sampleAgg, err := snap.Sample.Aggregator()
	if err != nil {
		return err
	}
	if err := c.sample.MergeAggregator(sampleAgg); err != nil {
		return err
	}
	if snap.Advanced {
		lowAgg, err := snap.Low.Aggregator()
		if err != nil {
			return err
		}
		if err := c.low.MergeAggregator(lowAgg); err != nil {
			return err
		}
		highAgg, err := snap.High.Aggregator()
		if err != nil {
			return err
		}
		if err := c.high.MergeAggregator(highAgg); err != nil {
			return err
		}
	}
	return nil
}
