package ingest

import (
	"math/rand"
	"reflect"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
)

func matrixTestSetup() (core.MatrixParams, *hashing.Family, *hashing.Family) {
	p := core.MatrixParams{K: 5, M1: 64, M2: 32, Epsilon: 4}
	return p, hashing.NewFamily(7, p.K, p.M1), hashing.NewFamily(8, p.K, p.M2)
}

func matrixReports(p core.MatrixParams, famA, famB *hashing.Family, seed int64, n int) []core.MatrixReport {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.MatrixReport, n)
	for i := range out {
		out[i] = core.PerturbTuple(rng.Uint64()%300, rng.Uint64()%300, p, famA, famB, rng)
	}
	return out
}

// TestMatrixColumnByteIdentical: a sharded matrix column fed interleaved
// batches finalizes to the exact sketch a sequential aggregator builds
// from the same reports, regardless of shard and worker count.
func TestMatrixColumnByteIdentical(t *testing.T) {
	p, famA, famB := matrixTestSetup()
	reports := matrixReports(p, famA, famB, 1, 10_000)

	ref := core.NewMatrixAggregator(p, famA, famB)
	for _, r := range reports {
		ref.Add(r)
	}
	want := ref.Finalize()

	for _, opts := range []Options{
		{Shards: 1, Workers: 1},
		{Shards: 3, Workers: 2, MatrixShards: 3},
		{Shards: 8, Workers: 4, MatrixShards: 8},
	} {
		e := NewEngine(core.Params{K: p.K, M: p.M1, Epsilon: p.Epsilon}, famA, opts)
		col := e.NewMatrixColumn(p, famA, famB)
		var batches [][]core.MatrixReport
		for off := 0; off < len(reports); off += 777 {
			batches = append(batches, reports[off:min(off+777, len(reports))])
		}
		if err := col.EnqueueAll(batches); err != nil {
			t.Fatal(err)
		}
		if got := col.N(); got != int64(len(reports)) {
			t.Fatalf("N = %d, want %d", got, len(reports))
		}
		got, err := col.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < p.K; j++ {
			if !reflect.DeepEqual(got.Mat(j), want.Mat(j)) {
				t.Fatalf("matrixShards=%d: replica %d differs from sequential build", opts.MatrixShards, j)
			}
		}
		e.Close()
	}
}

// TestMatrixColumnLifecycle pins the drain semantics: Enqueue, State,
// and a second drain all fail with ErrFinalized after Finalize/Snapshot.
func TestMatrixColumnLifecycle(t *testing.T) {
	p, famA, famB := matrixTestSetup()
	e := NewEngine(core.Params{K: p.K, M: p.M1, Epsilon: p.Epsilon}, famA, Options{Shards: 2, Workers: 2})
	defer e.Close()

	col := e.NewMatrixColumn(p, famA, famB)
	if err := col.Enqueue(matrixReports(p, famA, famB, 2, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := col.State(); err != nil {
		t.Fatalf("State on a collecting column: %v", err)
	}
	if _, err := col.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := col.Enqueue(matrixReports(p, famA, famB, 3, 1)); err != ErrFinalized {
		t.Fatalf("Enqueue after Finalize: %v, want ErrFinalized", err)
	}
	if _, err := col.State(); err != ErrFinalized {
		t.Fatalf("State after Finalize: %v, want ErrFinalized", err)
	}
	if _, err := col.Snapshot(); err != ErrFinalized {
		t.Fatalf("second drain: %v, want ErrFinalized", err)
	}

	// Out-of-bounds reports surface at Finalize, not as a sketch.
	bad := e.NewMatrixColumn(p, famA, famB)
	if err := bad.Enqueue([]core.MatrixReport{{Y: 1, Row: uint32(p.K), L1: 0, L2: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Finalize(); err == nil {
		t.Fatal("out-of-bounds report did not fail Finalize")
	}
}

// TestMatrixColumnFederation: two columns each fold half the reports,
// one drains into a snapshot that merges into the other via
// MergeAggregator — finalizing to the same cells as one column folding
// everything, exercising the snapshot round trip on the way.
func TestMatrixColumnFederation(t *testing.T) {
	p, famA, famB := matrixTestSetup()
	e := NewEngine(core.Params{K: p.K, M: p.M1, Epsilon: p.Epsilon}, famA, Options{Shards: 4, Workers: 2, MatrixShards: 4})
	defer e.Close()

	half1 := matrixReports(p, famA, famB, 4, 4000)
	half2 := matrixReports(p, famA, famB, 5, 3000)

	all := e.NewMatrixColumn(p, famA, famB)
	if err := all.EnqueueAll([][]core.MatrixReport{half1, half2}); err != nil {
		t.Fatal(err)
	}
	want, err := all.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	remote := e.NewMatrixColumn(p, famA, famB)
	local := e.NewMatrixColumn(p, famA, famB)
	if err := remote.Enqueue(half1); err != nil {
		t.Fatal(err)
	}
	if err := local.Enqueue(half2); err != nil {
		t.Fatal(err)
	}
	snap, err := remote.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := protocol.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := protocol.DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := decoded.MatrixAggregator()
	if err != nil {
		t.Fatal(err)
	}
	if err := local.MergeAggregator(agg); err != nil {
		t.Fatal(err)
	}
	got, err := local.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() {
		t.Fatalf("federated N = %g, want %g", got.N(), want.N())
	}
	for j := 0; j < p.K; j++ {
		if !reflect.DeepEqual(got.Mat(j), want.Mat(j)) {
			t.Fatalf("replica %d: federated sketch differs from single-column fold", j)
		}
	}

	// Mismatched families are refused.
	foreignB := hashing.NewFamily(99, p.K, p.M2)
	foreign := core.NewMatrixAggregator(p, famA, foreignB)
	victim := e.NewMatrixColumn(p, famA, famB)
	if err := victim.MergeAggregator(foreign); err == nil {
		t.Fatal("family-mismatched merge accepted")
	}
}
