package service

import (
	"sync"
	"sync/atomic"
)

// finishedRegistry holds the finalized columns behind an atomic
// copy-on-write pointer. Finalized sketches are immutable — the whole
// point of the paper's summaries is that they can be queried forever
// without revisiting user data — so the only mutations are map-shaped:
// finalize, finalized-snapshot import, and startup recovery each add a
// name. Those writers copy the current map, add their entry, and swap
// the pointer while holding the server's lifecycle mutex (which keeps
// the registry's contents consistent with the pending map and the
// closed flag). Readers — every query, export, and stats request —
// load the pointer and index a map that can never change underneath
// them: no lock, no contention with ingestion or with each other.
type finishedRegistry struct {
	p atomic.Pointer[map[string]*finishedColumn]
}

// init installs the empty map. Call once before the registry is shared.
func (r *finishedRegistry) init() {
	m := make(map[string]*finishedColumn)
	r.p.Store(&m)
}

// view returns the current generation of the map. Callers must treat it
// as immutable; it stays valid (and frozen) for as long as they hold it.
func (r *finishedRegistry) view() map[string]*finishedColumn {
	return *r.p.Load()
}

// get returns the finalized column under name, lock-free.
func (r *finishedRegistry) get(name string) (*finishedColumn, bool) {
	col, ok := (*r.p.Load())[name]
	return col, ok
}

// seed adds a finalized column by mutating the current map in place.
// It is only for single-threaded startup recovery, before the server is
// shared with any reader: skipping the copy-and-swap keeps recovering N
// finalized columns O(N) instead of O(N²) map-entry copies.
func (r *finishedRegistry) seed(name string, col *finishedColumn) {
	(*r.p.Load())[name] = col
}

// install publishes a finalized column by copy-and-swap. Callers must
// hold the server's lifecycle mutex: the mutex serializes writers, the
// atomic swap publishes to the lock-free readers.
func (r *finishedRegistry) install(name string, col *finishedColumn) {
	old := *r.p.Load()
	next := make(map[string]*finishedColumn, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = col
	r.p.Store(&next)
}

// counterMap is a grow-only map of per-column event counters (snapshot
// exports, merges) that can be bumped without the lifecycle mutex: the
// sync.Map handles name registration, the per-name atomic handles the
// count.
type counterMap struct {
	m sync.Map // column name -> *atomic.Int64
}

// bump increments name's counter, creating it on first use.
func (c *counterMap) bump(name string) {
	v, ok := c.m.Load(name)
	if !ok {
		v, _ = c.m.LoadOrStore(name, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
}

// each calls f for every (name, count) pair.
func (c *counterMap) each(f func(name string, n int64)) {
	c.m.Range(func(k, v any) bool {
		f(k.(string), v.(*atomic.Int64).Load())
		return true
	})
}
