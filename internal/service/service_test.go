package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/join"
	"ldpjoin/internal/protocol"
)

func testServer(t *testing.T) (*Server, *httptest.Server, core.Params) {
	t.Helper()
	p := core.Params{K: 9, M: 512, Epsilon: 4}
	srv, err := New(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close) // after ts.Close: requests drain before the engine stops
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, p
}

// encodeColumn perturbs a column client-side and returns the wire-format
// stream.
func encodeColumn(t *testing.T, p core.Params, seed int64, data []uint64) []byte {
	t.Helper()
	fam := p.NewFamily(42)
	var buf bytes.Buffer
	w, err := protocol.NewReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, d := range data {
		if err := w.Write(core.Perturb(d, p, fam, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func post(t *testing.T, url string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func TestServiceEndToEnd(t *testing.T) {
	_, ts, p := testServer(t)
	const n, domain = 60000, 3000
	da := dataset.Zipf(1, n, domain, 1.3)
	db := dataset.Zipf(2, n, domain, 1.3)
	truth := join.Size(da, db)

	// Ingest A over two batches, B over one.
	if code, _ := post(t, ts.URL+"/v1/columns/A/reports", encodeColumn(t, p, 10, da[:n/2])); code != 200 {
		t.Fatalf("first batch code %d", code)
	}
	if code, body := post(t, ts.URL+"/v1/columns/A/reports", encodeColumn(t, p, 11, da[n/2:])); code != 200 {
		t.Fatalf("second batch code %d: %v", code, body)
	} else if body["total"].(float64) != n {
		t.Fatalf("total = %v, want %d", body["total"], n)
	}
	if code, _ := post(t, ts.URL+"/v1/columns/B/reports", encodeColumn(t, p, 12, db)); code != 200 {
		t.Fatal("B ingest failed")
	}

	// Status before finalize.
	if code, body := get(t, ts.URL+"/v1/columns/A"); code != 200 || body["state"] != "collecting" {
		t.Fatalf("status = %d %v", code, body)
	}
	// Join before still-collecting columns is a 409 column_not_finalized
	// — the columns exist, the caller should finalize and retry — not a
	// 404 (which would mean the names are unknown).
	if code, body := get(t, ts.URL+"/v1/join?left=A&right=B"); code != 409 {
		t.Fatalf("join before finalize code %d", code)
	} else if env, _ := body["error"].(map[string]any); env["code"] != "column_not_finalized" {
		t.Fatalf("join before finalize error %v, want column_not_finalized", body)
	}

	for _, col := range []string{"A", "B"} {
		if code, _ := post(t, ts.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 {
			t.Fatalf("finalize %s failed", col)
		}
	}

	code, body := get(t, ts.URL+"/v1/join?left=A&right=B")
	if code != 200 {
		t.Fatalf("join code %d: %v", code, body)
	}
	est := body["estimate"].(float64)
	if re := math.Abs(est-truth) / truth; re > 0.5 {
		t.Fatalf("service join RE = %.3f (est %.0f truth %.0f)", re, est, truth)
	}

	// Frequency query.
	code, body = get(t, fmt.Sprintf("%s/v1/frequency?column=A&value=0", ts.URL))
	if code != 200 {
		t.Fatalf("frequency code %d", code)
	}
	if _, ok := body["estimate"].(float64); !ok {
		t.Fatalf("frequency response missing estimate: %v", body)
	}

	// Export and restore the sketch.
	resp, err := http.Get(ts.URL + "/v1/columns/A/sketch")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("export failed: %d %v", resp.StatusCode, err)
	}
	restored, err := core.UnmarshalSketch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if restored.N() != n {
		t.Fatalf("restored N = %g", restored.N())
	}
}

func TestServiceErrorPaths(t *testing.T) {
	_, ts, p := testServer(t)

	// Garbage stream.
	if code, _ := post(t, ts.URL+"/v1/columns/X/reports", []byte("not a stream")); code != 400 {
		t.Fatalf("garbage stream code %d, want 400", code)
	}
	// Unknown column status / export / finalize.
	if code, _ := get(t, ts.URL+"/v1/columns/none"); code != 404 {
		t.Fatalf("unknown status code %d", code)
	}
	if code, _ := post(t, ts.URL+"/v1/columns/none/finalize", nil); code != 404 {
		t.Fatalf("finalize unknown code %d", code)
	}
	// Param-mismatched stream.
	other := core.Params{K: 4, M: 512, Epsilon: 4}
	var buf bytes.Buffer
	w, err := protocol.NewReportWriter(&buf, other)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if code, _ := post(t, ts.URL+"/v1/columns/X/reports", buf.Bytes()); code != 400 {
		t.Fatalf("mismatched stream code %d, want 400", code)
	}
	// Double finalize → conflict; late ingest → conflict.
	good := encodeColumn(t, p, 1, []uint64{1, 2, 3})
	if code, _ := post(t, ts.URL+"/v1/columns/C/reports", good); code != 200 {
		t.Fatal("ingest failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/C/finalize", nil); code != 200 {
		t.Fatal("finalize failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/C/finalize", nil); code != 409 {
		t.Fatalf("double finalize code %d, want 409", code)
	}
	if code, _ := post(t, ts.URL+"/v1/columns/C/reports", good); code != 409 {
		t.Fatalf("late ingest code %d, want 409", code)
	}
	// Bad query params.
	if code, _ := get(t, ts.URL+"/v1/join?left=C"); code != 400 {
		t.Fatalf("join without right code %d", code)
	}
	if code, _ := get(t, ts.URL+"/v1/frequency?column=C&value=notanumber"); code != 400 {
		t.Fatalf("bad frequency value code %d", code)
	}
	if code, _ := get(t, ts.URL+"/v1/frequency?column=missing&value=1"); code != 404 {
		t.Fatalf("frequency unknown column code %d", code)
	}
	// Health.
	if code, body := get(t, ts.URL+"/v1/healthz"); code != 200 || body["status"] != "ok" {
		t.Fatalf("health = %d %v", code, body)
	}
}

// TestServiceRejectsEmptyStream pins the phantom-column fix: a valid
// header with zero reports (the typical typo'd-name probe) must be
// rejected without registering the column anywhere.
func TestServiceRejectsEmptyStream(t *testing.T) {
	_, ts, p := testServer(t)
	var buf bytes.Buffer
	w, err := protocol.NewReportWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if code, body := post(t, ts.URL+"/v1/columns/typo/reports", buf.Bytes()); code != 400 {
		t.Fatalf("empty stream code %d (%v), want 400", code, body)
	}
	if code, _ := get(t, ts.URL+"/v1/columns/typo"); code != 404 {
		t.Fatalf("empty stream created a column: status code %d, want 404", code)
	}
	if _, body := get(t, ts.URL+"/v1/stats"); body["collecting"].(float64) != 0 {
		t.Fatalf("empty stream polluted stats: %v", body)
	}
}

// TestSnapshotFinalizeRace drives handleSnapshot through the window
// where a concurrent finalize retires the column between the pending
// lookup and the State copy: the handler must answer 409 (retry), not
// 500, and never export half-retired state.
func TestSnapshotFinalizeRace(t *testing.T) {
	srv, ts, p := testServer(t)
	if code, _ := post(t, ts.URL+"/v1/columns/R/reports", encodeColumn(t, p, 7, []uint64{1, 2, 3, 4})); code != 200 {
		t.Fatal("ingest failed")
	}
	// Reproduce the race's intermediate state deterministically: retire
	// the column directly (as the winning finalize does first) while it
	// still sits in the pending map (as it does until the finalize
	// handler re-takes the lock).
	srv.mu.Lock()
	col := srv.pending["R"]
	srv.mu.Unlock()
	if col == nil {
		t.Fatal("column R not pending")
	}
	if _, err := col.join.Finalize(); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.URL+"/v1/columns/R/snapshot")
	if code != 409 {
		t.Fatalf("snapshot during finalize: code %d (%v), want 409", code, body)
	}
	env, _ := body["error"].(map[string]any)
	if msg, _ := env["message"].(string); !strings.Contains(msg, "retry") {
		t.Fatalf("conflict does not tell the client to retry: %v", body)
	}
}

func TestServiceRejectsBadParams(t *testing.T) {
	if _, err := New(core.Params{K: 0, M: 8, Epsilon: 1}, 1); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// TestServiceJoinCache: the first join of a pair computes, every repeat
// (in either orientation) is served from the cache with the same value.
func TestServiceJoinCache(t *testing.T) {
	_, ts, p := testServer(t)
	da := dataset.Zipf(4, 20000, 1000, 1.3)
	db := dataset.Zipf(5, 20000, 1000, 1.3)
	for name, data := range map[string][]uint64{"A": da, "B": db} {
		if code, _ := post(t, ts.URL+"/v1/columns/"+name+"/reports", encodeColumn(t, p, 21, data)); code != 200 {
			t.Fatalf("ingest %s failed", name)
		}
		if code, _ := post(t, ts.URL+"/v1/columns/"+name+"/finalize", nil); code != 200 {
			t.Fatalf("finalize %s failed", name)
		}
	}
	code, body := get(t, ts.URL+"/v1/join?left=A&right=B")
	if code != 200 || body["cached"] != false {
		t.Fatalf("first join = %d %v, want uncached 200", code, body)
	}
	first := body["estimate"].(float64)
	code, body = get(t, ts.URL+"/v1/join?left=A&right=B")
	if code != 200 || body["cached"] != true {
		t.Fatalf("repeat join = %d %v, want cached 200", code, body)
	}
	if body["estimate"].(float64) != first {
		t.Fatalf("cached estimate %v != first %v", body["estimate"], first)
	}
	// The cache key is the unordered pair: the swapped query hits too.
	code, body = get(t, ts.URL+"/v1/join?left=B&right=A")
	if code != 200 || body["cached"] != true {
		t.Fatalf("swapped join = %d %v, want cached 200", code, body)
	}
	if body["estimate"].(float64) != first {
		t.Fatalf("swapped estimate %v != first %v", body["estimate"], first)
	}
	// Stats reflect the cache traffic.
	code, body = get(t, ts.URL+"/v1/stats")
	if code != 200 {
		t.Fatalf("stats code %d", code)
	}
	qc := body["queryCache"].(map[string]any)
	if qc["size"].(float64) != 1 || qc["hits"].(float64) != 2 || qc["misses"].(float64) != 1 || qc["evictions"].(float64) != 0 {
		t.Fatalf("query cache stats = %v", qc)
	}
}

// TestServiceStreamCap: a request body above MaxStreamReports is
// rejected with 413 and leaves no partial state behind.
func TestServiceStreamCap(t *testing.T) {
	p := core.Params{K: 4, M: 64, Epsilon: 2}
	srv, err := NewWithOptions(p, 42, Options{MaxStreamReports: 100})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	data := make([]uint64, 101)
	if code, _ := post(t, ts.URL+"/v1/columns/A/reports", encodeColumn(t, p, 1, data)); code != 413 {
		t.Fatalf("oversized stream code %d, want 413", code)
	}
	if code, _ := get(t, ts.URL+"/v1/columns/A"); code != 404 {
		t.Fatalf("column exists after rejected stream (code %d)", code)
	}
	// At the cap exactly, the stream is accepted.
	if code, _ := post(t, ts.URL+"/v1/columns/A/reports", encodeColumn(t, p, 1, data[:100])); code != 200 {
		t.Fatal("stream at cap rejected")
	}
}

// TestServiceConcurrentIngest hammers one column from many goroutines —
// with -race this exercises the handler/engine locking end to end.
func TestServiceConcurrentIngest(t *testing.T) {
	_, ts, p := testServer(t)
	const gateways, perGateway = 8, 2000
	data := dataset.Zipf(6, gateways*perGateway, 500, 1.2)

	var wg sync.WaitGroup
	for g := 0; g < gateways; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			part := data[g*perGateway : (g+1)*perGateway]
			body := encodeColumn(t, p, int64(100+g), part)
			resp, err := http.Post(ts.URL+"/v1/columns/C/reports", "application/octet-stream", bytes.NewReader(body))
			if err != nil {
				t.Errorf("gateway %d: %v", g, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("gateway %d: code %d", g, resp.StatusCode)
			}
		}(g)
	}
	wg.Wait()

	if code, _ := post(t, ts.URL+"/v1/columns/C/finalize", nil); code != 200 {
		t.Fatal("finalize failed")
	}
	code, body := get(t, ts.URL+"/v1/columns/C")
	if code != 200 || body["reports"].(float64) != gateways*perGateway {
		t.Fatalf("status = %d %v, want %d reports", code, body, gateways*perGateway)
	}
}
