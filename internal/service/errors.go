package service

import (
	"fmt"
	"net/http"
)

// Error codes of the structured error envelope. Every 4xx/5xx response
// the API writes is
//
//	{"error": {"code": "...", "message": "...", "column": "..."}}
//
// where code is one of the stable machine-readable values below (the
// contract clients switch on — messages are for humans and may change),
// and column names the column the error is about when there is one.
const (
	// codeBadRequest: the request itself is malformed — undecodable
	// stream, bad query parameter, missing argument.
	codeBadRequest = "bad_request"
	// codeNotFound: the named column does not exist at all.
	codeNotFound = "column_not_found"
	// codeNotFinalized: the column exists but is still collecting, and
	// the request (join, frequency, sketch export) needs it finalized.
	// Retry after POST .../finalize.
	codeNotFinalized = "column_not_finalized"
	// codeFinalized: the column is already finalized and the request
	// (reports, advance, merge, finalize) only applies while collecting.
	codeFinalized = "column_finalized"
	// codeConflict: the request contradicts the column's state in some
	// other way — kind or attribute mismatch, plus-phase violation,
	// non-composable chain, incompatible snapshot.
	codeConflict = "column_conflict"
	// codeTooLarge: the request body exceeds a configured bound.
	codeTooLarge = "payload_too_large"
	// codeRateLimited: the tenant exceeded its request rate; retry later.
	codeRateLimited = "rate_limited"
	// codeBudgetExhausted: the tenant's ε budget is spent; further report
	// ingestion is refused until the operator raises the budget.
	codeBudgetExhausted = "budget_exhausted"
	// codeServerClosed: the server is shutting down; retry elsewhere.
	codeServerClosed = "server_closed"
	// codeInternal: a server-side fault (disk, encoding).
	codeInternal = "internal"
)

// errorBody is the envelope's payload.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Column  string `json:"column,omitempty"`
}

// writeError writes the structured error envelope. column may be empty
// for errors not about a specific column (bad query parameters, server
// shutdown).
func writeError(w http.ResponseWriter, status int, code, column, format string, args ...any) {
	writeJSON(w, status, map[string]errorBody{"error": {
		Code:    code,
		Message: fmt.Sprintf(format, args...),
		Column:  column,
	}})
}

// defaultCode maps an HTTP status to its unambiguous envelope code —
// the statuses where one code fits every use. Statuses with more than
// one meaning here (409 splits into finalized / not-finalized /
// conflict, 429 into rate vs budget) must pick their code explicitly.
func defaultCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return codeBadRequest
	case http.StatusNotFound:
		return codeNotFound
	case http.StatusConflict:
		return codeConflict
	case http.StatusRequestEntityTooLarge:
		return codeTooLarge
	case http.StatusTooManyRequests:
		return codeRateLimited
	case http.StatusServiceUnavailable:
		return codeServerClosed
	default:
		return codeInternal
	}
}

// httpError writes the envelope with the status' default code and no
// column attribution — the fallback for errors where neither needs to
// be more precise. Handlers that know better call writeError directly.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeError(w, status, defaultCode(status), "", format, args...)
}
