package service

// Service read-path benchmarks feeding the BENCH trajectory: the
// acceptance bar for the lock-free overhaul is that concurrent reads
// scale with GOMAXPROCS (b.RunParallel) without regressing
// single-threaded latency (the Serial twins). "cached" measures the
// memoized path — registry load + sharded cache hit — and "uncached"
// the full K·M-cell estimate with memoization disabled, which is what
// contended on the old global mutex.

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/protocol"
)

// benchServer builds an in-process server with two finalized join
// columns (A, B on attribute 0), a matrix column AB spanning (0, 1),
// and a join column C on attribute 1 — enough for every query shape.
// cacheEntries configures the query cache (negative disables it).
func benchServer(b *testing.B, cacheEntries int) http.Handler {
	b.Helper()
	p := core.Params{K: 9, M: 512, Epsilon: 4}
	mp := core.MatrixParams{K: p.K, M1: p.M, M2: p.M, Epsilon: p.Epsilon}
	const seed = 42
	srv, err := NewWithOptions(p, seed, Options{QueryCacheEntries: cacheEntries})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	h := srv.Handler()

	const n, domain = 5000, 400
	rng := rand.New(rand.NewSource(7))
	fams := srv.fams
	ingest := func(target string, stream []byte) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", target, bytes.NewReader(stream)))
		if rec.Code != 200 {
			b.Fatalf("bench seed %s: %d %s", target, rec.Code, rec.Body)
		}
	}
	encode := func(attr int) []byte {
		var buf bytes.Buffer
		w, err := protocol.NewReportWriter(&buf, p)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := w.Write(core.Perturb(uint64(rng.Intn(domain)), p, fams[attr], rng)); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		return buf.Bytes()
	}
	encodeMatrix := func(attr int) []byte {
		var buf bytes.Buffer
		w, err := protocol.NewMatrixReportWriter(&buf, mp)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := w.Write(core.PerturbTuple(uint64(rng.Intn(domain)), uint64(rng.Intn(domain)), mp, fams[attr], fams[attr+1], rng)); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		return buf.Bytes()
	}
	ingest("/v1/columns/A/reports", encode(0))
	ingest("/v1/columns/B/reports", encode(0))
	ingest("/v1/columns/AB/reports?attr=0", encodeMatrix(0))
	ingest("/v1/columns/C/reports?attr=1", encode(1))
	for _, col := range []string{"A", "B", "AB", "C"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/columns/"+col+"/finalize", nil))
		if rec.Code != 200 {
			b.Fatalf("bench finalize %s: %d %s", col, rec.Code, rec.Body)
		}
	}
	return h
}

// benchGet drives one GET through the handler and fails the benchmark
// on a non-200.
func benchGet(b *testing.B, h http.Handler, target string) {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
	if rec.Code != 200 {
		b.Fatalf("%s: %d %s", target, rec.Code, rec.Body)
	}
}

// BenchmarkServiceJoinParallel is the ISSUE 5 acceptance benchmark:
// repeated cached and uncached pairwise joins under b.RunParallel.
// Throughput should scale with GOMAXPROCS now that the read path takes
// no global lock.
func BenchmarkServiceJoinParallel(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		h := benchServer(b, 0)
		benchGet(b, h, "/v1/join?left=A&right=B") // warm the entry
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchGet(b, h, "/v1/join?left=A&right=B")
			}
		})
	})
	b.Run("uncached", func(b *testing.B) {
		h := benchServer(b, -1) // memoization off: every join scans K·M cells
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchGet(b, h, "/v1/join?left=A&right=B")
			}
		})
	})
}

// benchPlusServer builds a server with two finalized plus columns PA
// and PB, driven through the served two-phase flow: sample ingest,
// explicit advance, FAP group ingest, finalize.
func benchPlusServer(b *testing.B, cacheEntries int) http.Handler {
	b.Helper()
	p := core.Params{K: 9, M: 512, Epsilon: 4}
	srv, err := NewWithOptions(p, 42, Options{QueryCacheEntries: cacheEntries})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	h := srv.Handler()

	const n, domain = 5000, 400
	famS := p.NewFamily(core.PlusSampleSeed(42))
	famG := p.NewFamily(core.PlusGroupSeed(42))
	fi := core.NewFISet([]uint64{1, 2, 3})
	rng := rand.New(rand.NewSource(9))
	send := func(method, target string, stream []byte) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, target, bytes.NewReader(stream)))
		if rec.Code != 200 {
			b.Fatalf("bench plus seed %s: %d %s", target, rec.Code, rec.Body)
		}
	}
	encodePlus := func(group protocol.PlusGroup, count int, perturb func() core.Report) []byte {
		var buf bytes.Buffer
		w, err := protocol.NewPlusReportWriter(&buf, p, group)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < count; i++ {
			if err := w.Write(perturb()); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, col := range []string{"PA", "PB"} {
		send("POST", "/v1/columns/"+col+"/reports", encodePlus(protocol.PlusSample, n/4, func() core.Report {
			return core.Perturb(uint64(rng.Intn(domain)), p, famS, rng)
		}))
		send("POST", "/v1/columns/"+col+"/advance",
			[]byte(`{"domain":400,"theta":0.08,"fi":[1,2,3]}`))
		for _, g := range []struct {
			group protocol.PlusGroup
			mode  core.Mode
		}{{protocol.PlusLow, core.ModeLow}, {protocol.PlusHigh, core.ModeHigh}} {
			send("POST", "/v1/columns/"+col+"/reports", encodePlus(g.group, n*3/8, func() core.Report {
				return core.FAPPerturb(uint64(rng.Intn(domain)), g.mode, fi, p, famG, rng)
			}))
		}
		send("POST", "/v1/columns/"+col+"/finalize", nil)
	}
	return h
}

// BenchmarkServicePlusJoinParallel feeds the BENCH artifact for the
// plus kind: the memoized two-phase estimate ("cached") and the full
// three-sketch composition with memoization off ("uncached"), both
// under b.RunParallel like the plain-join twin above.
func BenchmarkServicePlusJoinParallel(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		h := benchPlusServer(b, 0)
		benchGet(b, h, "/v1/join?left=PA&right=PB") // warm the entry
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchGet(b, h, "/v1/join?left=PA&right=PB")
			}
		})
	})
	b.Run("uncached", func(b *testing.B) {
		h := benchPlusServer(b, -1) // memoization off: every join composes the group estimates
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchGet(b, h, "/v1/join?left=PA&right=PB")
			}
		})
	})
}

// BenchmarkServiceJoinSerial is the single-threaded latency guard for
// the same two paths: the lock-free read path must not cost the
// uncontended caller anything.
func BenchmarkServiceJoinSerial(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		h := benchServer(b, 0)
		benchGet(b, h, "/v1/join?left=A&right=B")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchGet(b, h, "/v1/join?left=A&right=B")
		}
	})
	b.Run("uncached", func(b *testing.B) {
		h := benchServer(b, -1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchGet(b, h, "/v1/join?left=A&right=B")
		}
	})
}

// BenchmarkServiceChainParallel exercises the chain planner's memoized
// path concurrently: after the first request the estimate is a cache
// hit that skips validation entirely.
func BenchmarkServiceChainParallel(b *testing.B) {
	h := benchServer(b, 0)
	benchGet(b, h, "/v1/join?path=A,AB,C")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchGet(b, h, "/v1/join?path=A,AB,C")
		}
	})
}

// BenchmarkServiceStatsParallel measures /v1/stats, now wait-free up to
// a momentary pending-map count: stats pollers ride along with queries
// instead of serializing them.
func BenchmarkServiceStatsParallel(b *testing.B) {
	h := benchServer(b, 0)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchGet(b, h, "/v1/stats")
		}
	})
}

// BenchmarkServiceFrequencyParallel mixes cache hits and misses:
// rotating values churn the sharded cache's put/evict path from every
// goroutine at once.
func BenchmarkServiceFrequencyParallel(b *testing.B) {
	h := benchServer(b, 256)
	var i atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v := i.Add(1) % 512
			benchGet(b, h, "/v1/frequency?column=A&value="+strconv.FormatInt(v, 10))
		}
	})
}
