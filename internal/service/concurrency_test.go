package service

// Read-path concurrency regressions: a stalled reader must not hold the
// lifecycle mutex across the network write, every route must keep its
// post-Close contract, memoized chain queries must skip the planner,
// and the lock-free registry + sharded cache must survive a -race
// hammering of queries against finalize/merge.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"ldpjoin/internal/dataset"
)

// gateWriter is an http.ResponseWriter whose first Write parks until
// the test releases it — a deterministic stand-in for a client reading
// its response one byte per minute.
type gateWriter struct {
	started chan struct{} // closed when the handler reaches Write
	release chan struct{} // Write parks until this closes
	once    sync.Once
	header  http.Header
}

func newGateWriter() *gateWriter {
	return &gateWriter{
		started: make(chan struct{}),
		release: make(chan struct{}),
		header:  make(http.Header),
	}
}

func (g *gateWriter) Header() http.Header { return g.header }

func (g *gateWriter) WriteHeader(int) {}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.once.Do(func() { close(g.started) })
	<-g.release
	return len(p), nil
}

// serve runs one request straight through the handler (no TCP) and
// returns the recorder.
func serve(h http.Handler, method, target string, body []byte) *httptest.ResponseRecorder {
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

// TestStalledReaderDoesNotBlockIngest pins the satellite fix for
// handleStats/handleStatus holding s.mu across writeJSON: with a
// /v1/stats (and a collecting-column status) response parked
// mid-write, ingestion into another column must still complete.
// Before the fix this deadlocked until the slow client went away —
// the ingest handler's registerPending sat behind the stalled
// reader's deferred unlock.
func TestStalledReaderDoesNotBlockIngest(t *testing.T) {
	srv, _, p := testServer(t)
	h := srv.Handler()

	// One collecting column so the status route exercises its
	// pending-map branch (the finalized branch never locks at all).
	if rec := serve(h, "POST", "/v1/columns/A/reports", encodeColumn(t, p, 31, []uint64{1, 2, 3, 4})); rec.Code != 200 {
		t.Fatalf("seed ingest: %d %s", rec.Code, rec.Body)
	}

	for i, route := range []string{"/v1/stats", "/v1/columns/A"} {
		gw := newGateWriter()
		stalled := make(chan struct{})
		go func() {
			defer close(stalled)
			h.ServeHTTP(gw, httptest.NewRequest("GET", route, nil))
		}()
		<-gw.started // the handler is inside the network write now

		done := make(chan int, 1)
		go func() {
			rec := serve(h, "POST", fmt.Sprintf("/v1/columns/B%d/reports", i), encodeColumn(t, p, int64(40+i), []uint64{5, 6, 7}))
			done <- rec.Code
		}()
		select {
		case code := <-done:
			if code != 200 {
				t.Fatalf("ingest during stalled %s read: code %d", route, code)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("ingest blocked behind a stalled %s reader", route)
		}
		close(gw.release)
		<-stalled
	}
}

// TestCloseRouteStatuses pins every route's post-Close contract in one
// table: mutating and export handlers answer the retryable 503,
// finalized state stays queryable. This is the regression test for the
// satellite fix that /sketch (export) was missing the refuseClosed
// guard /snapshot already had.
func TestCloseRouteStatuses(t *testing.T) {
	srv, ts, p := testServer(t)
	for _, col := range []string{"A", "B"} {
		if code, _ := post(t, ts.URL+"/v1/columns/"+col+"/reports", encodeColumn(t, p, 51, []uint64{1, 2, 3, 4, 5})); code != 200 {
			t.Fatalf("ingest %s failed", col)
		}
	}
	for _, col := range []string{"A", "B"} {
		if code, _ := post(t, ts.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 {
			t.Fatalf("finalize %s failed", col)
		}
	}
	// C stays collecting across the shutdown.
	if code, _ := post(t, ts.URL+"/v1/columns/C/reports", encodeColumn(t, p, 52, []uint64{6, 7, 8})); code != 200 {
		t.Fatal("ingest C failed")
	}
	srv.Close()

	stream := encodeColumn(t, p, 53, []uint64{9})
	for _, tc := range []struct {
		method, target string
		body           []byte
		want           int
	}{
		{"POST", "/v1/columns/C/reports", stream, 503},
		{"POST", "/v1/columns/C/finalize", nil, 503},
		{"POST", "/v1/columns/C/merge", []byte("x"), 503},
		{"GET", "/v1/columns/A/snapshot", nil, 503},
		{"GET", "/v1/columns/A/sketch", nil, 503},
		{"GET", "/v1/columns/A", nil, 200},
		{"GET", "/v1/columns/C", nil, 200},
		{"GET", "/v1/join?left=A&right=B", nil, 200},
		{"GET", "/v1/frequency?column=A&value=1", nil, 200},
		{"GET", "/v1/stats", nil, 200},
		{"GET", "/v1/healthz", nil, 200},
	} {
		rec := serve(srv.Handler(), tc.method, tc.target, tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s %s after Close: code %d (%s), want %d", tc.method, tc.target, rec.Code, rec.Body, tc.want)
		}
	}
}

// plannerValidations reads the chain planner's validation counter from
// /v1/stats.
func plannerValidations(t *testing.T, url string) float64 {
	t.Helper()
	code, stats := get(t, url+"/v1/stats")
	if code != 200 {
		t.Fatalf("stats code %d", code)
	}
	return stats["planner"].(map[string]any)["chainValidations"].(float64)
}

// TestChainCacheHitSkipsPlanner pins the satellite fix: a memoized
// chain query must return without re-running protocol.ValidateChain
// over the path — entries are only ever stored for chains that already
// validated against immutable columns. Error results, by contrast, are
// never cached, so a non-composing path re-validates every time.
func TestChainCacheHitSkipsPlanner(t *testing.T) {
	_, ts := matrixServer(t, "")
	data := dataset.Zipf(85, 800, 120, 1.3)
	if code, _ := post(t, ts.URL+"/v1/columns/T1/reports", encodeAttrColumn(t, 0, 86, data)); code != 200 {
		t.Fatal("ingest T1 failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/AB/reports?attr=0", encodeMatrixColumn(t, 0, 87, data, data)); code != 200 {
		t.Fatal("ingest AB failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/T3/reports?attr=1", encodeAttrColumn(t, 1, 88, data)); code != 200 {
		t.Fatal("ingest T3 failed")
	}
	for _, col := range []string{"T1", "AB", "T3"} {
		if code, _ := post(t, ts.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 {
			t.Fatalf("finalize %s failed", col)
		}
	}
	if v := plannerValidations(t, ts.URL); v != 0 {
		t.Fatalf("planner ran before any chain query: %v validations", v)
	}

	code, body := get(t, ts.URL+"/v1/join?path=T1,AB,T3")
	if code != 200 || body["cached"] != false {
		t.Fatalf("first chain query: %d %v", code, body)
	}
	if v := plannerValidations(t, ts.URL); v != 1 {
		t.Fatalf("first chain query ran %v validations, want 1", v)
	}
	code, body = get(t, ts.URL+"/v1/join?path=T1,AB,T3")
	if code != 200 || body["cached"] != true {
		t.Fatalf("repeat chain query: %d %v", code, body)
	}
	if v := plannerValidations(t, ts.URL); v != 1 {
		t.Fatalf("cached chain query did planner work: %v validations, want still 1", v)
	}

	// A rejected chain is not memoized: both attempts validate.
	for i := 0; i < 2; i++ {
		if code, _ := get(t, ts.URL+"/v1/join?path=T1,T3,T1"); code != 400 {
			t.Fatalf("invalid chain attempt %d: code %d, want 400", i, code)
		}
	}
	if v := plannerValidations(t, ts.URL); v != 3 {
		t.Fatalf("validations after two rejected chains = %v, want 3", v)
	}
}

// TestReadPathConcurrencyRace hammers joins, chains, frequency, status,
// and stats against concurrent ingest, finalize, and merge. Run under
// -race (CI always does) it proves the copy-on-write registry, the
// sharded singleflight cache, and the atomic counters publish safely —
// the old global mutex is gone, so every unsynchronized access here
// would be a detector hit.
func TestReadPathConcurrencyRace(t *testing.T) {
	srv, err := NewWithOptions(mtParams, mtSeed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	h := srv.Handler()

	data := dataset.Zipf(90, 600, 100, 1.3)
	seedCols := map[string][]byte{
		"/v1/columns/T1/reports":        encodeAttrColumn(t, 0, 91, data),
		"/v1/columns/B0/reports":        encodeAttrColumn(t, 0, 92, data),
		"/v1/columns/AB/reports?attr=0": encodeMatrixColumn(t, 0, 93, data, data),
		"/v1/columns/T3/reports?attr=1": encodeAttrColumn(t, 1, 94, data),
	}
	for target, stream := range seedCols {
		if rec := serve(h, "POST", target, stream); rec.Code != 200 {
			t.Fatalf("seed %s: %d %s", target, rec.Code, rec.Body)
		}
	}
	for _, col := range []string{"T1", "B0", "AB", "T3"} {
		if rec := serve(h, "POST", "/v1/columns/"+col+"/finalize", nil); rec.Code != 200 {
			t.Fatalf("seed finalize %s: %d %s", col, rec.Code, rec.Body)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: every query shape in a tight loop until the writers are
	// done.
	readerTargets := []func(i int) string{
		func(int) string { return "/v1/join?left=T1&right=B0" },
		func(int) string { return "/v1/join?path=T1,AB,T3" },
		func(i int) string { return "/v1/frequency?column=T1&value=" + strconv.Itoa(i%64) },
		func(int) string { return "/v1/stats" },
		func(int) string { return "/v1/columns/T1" },
	}
	for r, target := range readerTargets {
		wg.Add(1)
		go func(r int, target func(int) string) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if rec := serve(h, "GET", target(i), nil); rec.Code != 200 {
					t.Errorf("reader %d: %s -> %d %s", r, target(i), rec.Code, rec.Body)
					return
				}
			}
		}(r, target)
	}

	// Writers: fresh columns ingest and finalize (installing into the
	// registry under the readers), and collecting-state snapshots merge
	// into new names.
	const writerCols = 12
	var writers sync.WaitGroup
	writers.Add(2)
	go func() {
		defer writers.Done()
		for i := 0; i < writerCols; i++ {
			name := "W" + strconv.Itoa(i)
			stream := encodeAttrColumn(t, 0, int64(200+i), data[:100])
			if rec := serve(h, "POST", "/v1/columns/"+name+"/reports", stream); rec.Code != 200 {
				t.Errorf("writer ingest %s: %d %s", name, rec.Code, rec.Body)
				return
			}
			if rec := serve(h, "POST", "/v1/columns/"+name+"/finalize", nil); rec.Code != 200 {
				t.Errorf("writer finalize %s: %d %s", name, rec.Code, rec.Body)
				return
			}
		}
	}()
	go func() {
		defer writers.Done()
		for i := 0; i < writerCols; i++ {
			src := "S" + strconv.Itoa(i)
			stream := encodeAttrColumn(t, 0, int64(300+i), data[:100])
			if rec := serve(h, "POST", "/v1/columns/"+src+"/reports", stream); rec.Code != 200 {
				t.Errorf("merge source ingest %s: %d %s", src, rec.Code, rec.Body)
				return
			}
			snap := serve(h, "GET", "/v1/columns/"+src+"/snapshot", nil)
			if snap.Code != 200 {
				t.Errorf("snapshot %s: %d %s", src, snap.Code, snap.Body)
				return
			}
			if rec := serve(h, "POST", "/v1/columns/M"+strconv.Itoa(i)+"/merge", snap.Body.Bytes()); rec.Code != 200 {
				t.Errorf("merge M%d: %d %s", i, rec.Code, rec.Body)
				return
			}
		}
	}()

	writers.Wait()
	close(stop)
	wg.Wait()
}
