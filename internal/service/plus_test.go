package service

// Conformance suite for the two-phase plus column kind: the served
// estimate must equal the in-process composition exactly, recovery from
// a mid-phase crash must be byte-identical to an uninterrupted run, and
// a two-collector federation must finalize to the same bytes again.
// The A/B test pins the accuracy story the kind exists for: on a
// skewed workload the plus estimate beats the plain one, asserted
// through the served ?ab= comparison endpoint.

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"strconv"
	"testing"

	"ldpjoin/internal/core"
	"ldpjoin/internal/dataset"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/join"
	"ldpjoin/internal/protocol"
)

// plusFams derives the client-side sample and group hash families for
// the test servers' seed (42). Plus columns are pinned to attribute 0,
// so these match the server's famPlusSample / famPlusGroup exactly.
func plusFams(p core.Params) (famS, famG *hashing.Family) {
	return p.NewFamily(core.PlusSampleSeed(42)), p.NewFamily(core.PlusGroupSeed(42))
}

// splitPlus deterministically shuffles a population and splits it into
// the phase-1 sample and the two phase-2 groups, mirroring the client
// side of Algorithm 3.
func splitPlus(seed int64, data []uint64, rate float64) (sample, g1, g2 []uint64) {
	shuffled := append([]uint64(nil), data...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	ns := int(rate * float64(len(shuffled)))
	rest := shuffled[ns:]
	half := len(rest) / 2
	return shuffled[:ns], rest[:half], rest[half:]
}

// perturbSample perturbs a phase-1 sample with the plain mechanism
// under the sample family.
func perturbSample(p core.Params, fam *hashing.Family, seed int64, data []uint64) []core.Report {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Report, len(data))
	for i, d := range data {
		out[i] = core.Perturb(d, p, fam, rng)
	}
	return out
}

// perturbFAP perturbs a phase-2 group with frequency-aware perturbation
// against the frozen frequent-item set.
func perturbFAP(p core.Params, fam *hashing.Family, mode core.Mode, fi core.FISet, seed int64, data []uint64) []core.Report {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Report, len(data))
	for i, d := range data {
		out[i] = core.FAPPerturb(d, mode, fi, p, fam, rng)
	}
	return out
}

// encodePlusStream frames pre-perturbed reports as a phase-tagged plus
// wire stream.
func encodePlusStream(t *testing.T, p core.Params, group protocol.PlusGroup, reports []core.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := protocol.NewPlusReportWriter(&buf, p, group)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if err := w.Write(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fiFromJSON converts the decoded "fi" response field back to the
// uint64 set the client feeds into FAP.
func fiFromJSON(t *testing.T, v any) []uint64 {
	t.Helper()
	raw, ok := v.([]any)
	if !ok {
		t.Fatalf("fi field is %T, want a list", v)
	}
	fi := make([]uint64, len(raw))
	for i, x := range raw {
		fi[i] = uint64(x.(float64))
	}
	return fi
}

// fetchRaw GETs a binary endpoint (snapshot export) and returns the
// body bytes.
func fetchRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %v %s", url, resp.StatusCode, err, data)
	}
	return data
}

// plusWorkload is the shared deterministic workload: populations split
// into sample/group1/group2 per side, with every report pre-perturbed
// so each run (reference, crashed, federated) replays identical bytes.
type plusWorkload struct {
	p                    core.Params
	domain               uint64
	theta                float64
	da, db               []uint64
	sampleA, lowA, highA []core.Report
	sampleB, lowB, highB []core.Report
}

func newPlusWorkload(t *testing.T, p core.Params) *plusWorkload {
	t.Helper()
	const n, domain = 12000, 400
	w := &plusWorkload{p: p, domain: domain, theta: 0.08}
	w.da = dataset.Zipf(31, n, domain, 1.3)
	w.db = dataset.Zipf(32, n, domain, 1.3)
	famS, _ := plusFams(p)
	sa, _, _ := splitPlus(101, w.da, 0.25)
	sb, _, _ := splitPlus(102, w.db, 0.25)
	w.sampleA = perturbSample(p, famS, 201, sa)
	w.sampleB = perturbSample(p, famS, 202, sb)
	return w
}

// freezePhase2 perturbs the phase-2 groups once the frequent-item set
// is known (it comes from the server's own advance).
func (w *plusWorkload) freezePhase2(t *testing.T, fi []uint64) {
	t.Helper()
	_, famG := plusFams(w.p)
	set := core.NewFISet(fi)
	_, a1, a2 := splitPlus(101, w.da, 0.25)
	_, b1, b2 := splitPlus(102, w.db, 0.25)
	w.lowA = perturbFAP(w.p, famG, core.ModeLow, set, 301, a1)
	w.highA = perturbFAP(w.p, famG, core.ModeHigh, set, 302, a2)
	w.lowB = perturbFAP(w.p, famG, core.ModeLow, set, 303, b1)
	w.highB = perturbFAP(w.p, famG, core.ModeHigh, set, 304, b2)
}

// referenceStates folds the same reports in-process into the PlusState
// pair the service must match bit for bit.
func (w *plusWorkload) referenceStates(fi []uint64) (a, b *core.PlusState) {
	famS, famG := plusFams(w.p)
	fold := func(fam *hashing.Family, reports []core.Report) *core.Sketch {
		agg := core.NewAggregator(w.p, fam)
		for _, rep := range reports {
			agg.Add(rep)
		}
		return agg.Finalize()
	}
	a = &core.PlusState{
		Sample: fold(famS, w.sampleA), Low: fold(famG, w.lowA), High: fold(famG, w.highA),
		Domain: w.domain, Theta: w.theta, FI: fi,
	}
	b = &core.PlusState{
		Sample: fold(famS, w.sampleB), Low: fold(famG, w.lowB), High: fold(famG, w.highB),
		Domain: w.domain, Theta: w.theta, FI: fi,
	}
	return a, b
}

// TestServicePlusEndToEnd is the plus conformance suite: serve both
// phases end to end, pin the served estimate to the in-process
// composition exactly, then prove the durable path (two kill-and-
// reopens, one mid-phase-1 and one mid-phase-2) and a two-collector
// federation finalize byte-identical to the uninterrupted run.
func TestServicePlusEndToEnd(t *testing.T) {
	_, ts, p := testServer(t)
	w := newPlusWorkload(t, p)

	sampA1 := encodePlusStream(t, p, protocol.PlusSample, w.sampleA[:len(w.sampleA)/2])
	sampA2 := encodePlusStream(t, p, protocol.PlusSample, w.sampleA[len(w.sampleA)/2:])
	sampB := encodePlusStream(t, p, protocol.PlusSample, w.sampleB)

	// ---- Phase 1: ingest the sample windows. ----
	if code, body := post(t, ts.URL+"/v1/columns/A/reports", sampA1); code != 200 || body["group"] != "sample" || body["kind"] != "plus" {
		t.Fatalf("phase-1 ingest: %d %v", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/columns/A/reports", sampA2); code != 200 || body["total"].(float64) != float64(len(w.sampleA)) {
		t.Fatalf("phase-1 second batch: %d %v", code, body)
	}
	if code, _ := post(t, ts.URL+"/v1/columns/B/reports", sampB); code != 200 {
		t.Fatal("phase-1 B ingest failed")
	}
	if code, body := get(t, ts.URL+"/v1/columns/A"); code != 200 || body["phase"].(float64) != 1 {
		t.Fatalf("phase-1 status: %d %v", code, body)
	}
	// Finalizing before the phase boundary is a conflict — and must
	// leave the column usable.
	if code, _ := post(t, ts.URL+"/v1/columns/A/finalize", nil); code != 409 {
		t.Fatal("finalize before advance did not conflict")
	}
	// Advance needs parameters.
	if code, _ := post(t, ts.URL+"/v1/columns/A/advance", nil); code != 400 {
		t.Fatal("parameterless advance accepted")
	}

	// ---- Phase boundary: A computes FI from its own sample, B adopts
	// the broadcast set. ----
	code, body := post(t, fmt.Sprintf("%s/v1/columns/A/advance?domain=%d&theta=%v", ts.URL, w.domain, w.theta), nil)
	if code != 200 {
		t.Fatalf("advance A: %d %v", code, body)
	}
	fi := fiFromJSON(t, body["fi"])
	if len(fi) == 0 {
		t.Fatal("advance froze an empty frequent-item set; the workload has heavy hitters")
	}
	// The frozen set broadcasts via GET /fi.
	if code, body := get(t, ts.URL+"/v1/columns/A/fi"); code != 200 || body["advanced"] != true || !slices.Equal(fi, fiFromJSON(t, body["fi"])) {
		t.Fatalf("broadcast fi: %d %v", code, body)
	}
	// A second advance must conflict without touching the WAL.
	if code, _ := post(t, fmt.Sprintf("%s/v1/columns/A/advance?domain=%d&theta=%v", ts.URL, w.domain, w.theta), nil); code != 409 {
		t.Fatal("double advance did not conflict")
	}
	advanceB := []byte(fmt.Sprintf(`{"domain":%d,"theta":%v,"fi":%s}`, w.domain, w.theta, jsonUints(fi)))
	w.freezePhase2(t, fi)
	lowB := encodePlusStream(t, p, protocol.PlusLow, w.lowB)
	// Phase-2 reports against a phase-1 column conflict (B has not
	// advanced yet).
	if code, _ := post(t, ts.URL+"/v1/columns/B/reports", lowB); code != 409 {
		t.Fatal("phase-2 stream accepted by a phase-1 column")
	}
	if code, body := post(t, ts.URL+"/v1/columns/B/advance", advanceB); code != 200 || !slices.Equal(fi, fiFromJSON(t, body["fi"])) {
		t.Fatalf("advance B with explicit fi: %d %v", code, body)
	}

	// ---- Phase 2: ingest the groups. ----
	lowA1 := encodePlusStream(t, p, protocol.PlusLow, w.lowA[:len(w.lowA)/2])
	lowA2 := encodePlusStream(t, p, protocol.PlusLow, w.lowA[len(w.lowA)/2:])
	highA := encodePlusStream(t, p, protocol.PlusHigh, w.highA)
	highB := encodePlusStream(t, p, protocol.PlusHigh, w.highB)
	for _, in := range []struct {
		col    string
		stream []byte
	}{
		{"A", lowA1}, {"A", lowA2}, {"A", highA}, {"B", lowB}, {"B", highB},
	} {
		if code, body := post(t, ts.URL+"/v1/columns/"+in.col+"/reports", in.stream); code != 200 {
			t.Fatalf("phase-2 ingest %s: %d %v", in.col, code, body)
		}
	}
	// Sample reports after the boundary conflict.
	if code, _ := post(t, ts.URL+"/v1/columns/A/reports", sampA1); code != 409 {
		t.Fatal("phase-1 stream accepted after advance")
	}
	if code, body := get(t, ts.URL+"/v1/columns/A"); code != 200 || body["phase"].(float64) != 2 || body["reports"].(float64) != float64(len(w.da)) {
		t.Fatalf("phase-2 status: %d %v", code, body)
	}

	// ---- Finalize and serve. ----
	for _, col := range []string{"A", "B"} {
		if code, body := post(t, ts.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 || body["kind"] != "plus" {
			t.Fatalf("finalize %s: %d %v", col, code, body)
		}
	}
	code, body = get(t, ts.URL+"/v1/join?left=A&right=B")
	if code != 200 || body["kind"] != "plus" {
		t.Fatalf("plus join: %d %v", code, body)
	}
	served := body["estimate"].(float64)

	// The served estimate equals the in-process composition exactly.
	refA, refB := w.referenceStates(fi)
	ref, err := core.EstimateJoinPlusColumns(refA, refB)
	if err != nil {
		t.Fatal(err)
	}
	if served != ref.Estimate {
		t.Fatalf("served estimate %v != in-process EstimateJoinPlusColumns %v", served, ref.Estimate)
	}
	if body["lowEstimate"].(float64) != ref.LowEstimate || body["highEstimate"].(float64) != ref.HighEstimate {
		t.Fatalf("served group estimates %v/%v != in-process %v/%v",
			body["lowEstimate"], body["highEstimate"], ref.LowEstimate, ref.HighEstimate)
	}
	// And it is a real estimate of the join, not just a consistent one.
	truth := join.Size(w.da, w.db)
	if re := math.Abs(served-truth) / truth; re > 0.6 {
		t.Fatalf("plus estimate RE %.3f (est %.0f truth %.0f)", re, served, truth)
	}
	// A plus column does not pair with a plain one.
	if code, _ := post(t, ts.URL+"/v1/columns/plain/reports", encodeColumn(t, p, 9, w.da[:100])); code != 200 {
		t.Fatal("plain ingest failed")
	}
	if code, _ := post(t, ts.URL+"/v1/columns/plain/finalize", nil); code != 200 {
		t.Fatal("plain finalize failed")
	}
	if code, _ := get(t, ts.URL+"/v1/join?left=A&right=plain"); code != 400 {
		t.Fatal("mixed-kind join did not reject")
	}

	refSnapA := fetchRaw(t, ts.URL+"/v1/columns/A/snapshot")
	refSnapB := fetchRaw(t, ts.URL+"/v1/columns/B/snapshot")

	// ---- Kill and reopen: one crash mid-phase-1, one mid-phase-2. ----
	dir := t.TempDir()
	srv1, ts1, _ := durableServer(t, dir)
	if code, _ := post(t, ts1.URL+"/v1/columns/A/reports", sampA1); code != 200 {
		t.Fatal("durable phase-1 ingest failed")
	}
	crash(t, srv1, ts1)

	srv2, ts2, _ := durableServer(t, dir)
	if code, body := get(t, ts2.URL+"/v1/columns/A"); code != 200 ||
		body["phase"].(float64) != 1 || body["reports"].(float64) != float64(len(w.sampleA)/2) {
		t.Fatalf("recovered mid-phase-1 status: %d %v", code, body)
	}
	if code, _ := post(t, ts2.URL+"/v1/columns/A/reports", sampA2); code != 200 {
		t.Fatal("post-recovery phase-1 ingest failed")
	}
	if code, _ := post(t, ts2.URL+"/v1/columns/B/reports", sampB); code != 200 {
		t.Fatal("durable B ingest failed")
	}
	// The recovered column proposes the same frequent-item set: the
	// fold is a deterministic function of the accepted stream.
	code, body = post(t, fmt.Sprintf("%s/v1/columns/A/advance?domain=%d&theta=%v", ts2.URL, w.domain, w.theta), nil)
	if code != 200 || !slices.Equal(fi, fiFromJSON(t, body["fi"])) {
		t.Fatalf("recovered advance diverged: %d %v (want fi %v)", code, body, fi)
	}
	if code, _ := post(t, ts2.URL+"/v1/columns/B/advance", advanceB); code != 200 {
		t.Fatal("durable advance B failed")
	}
	if code, _ := post(t, ts2.URL+"/v1/columns/A/reports", lowA1); code != 200 {
		t.Fatal("durable phase-2 ingest failed")
	}
	crash(t, srv2, ts2)

	srv3, ts3, _ := durableServer(t, dir)
	defer srv3.Close()
	defer ts3.Close()
	if code, body := get(t, ts3.URL+"/v1/columns/A"); code != 200 || body["phase"].(float64) != 2 {
		t.Fatalf("recovered mid-phase-2 status: %d %v", code, body)
	}
	if code, body := get(t, ts3.URL+"/v1/columns/A/fi"); code != 200 || !slices.Equal(fi, fiFromJSON(t, body["fi"])) {
		t.Fatalf("recovered fi diverged: %d %v", code, body)
	}
	for _, in := range []struct {
		col    string
		stream []byte
	}{
		{"A", lowA2}, {"A", highA}, {"B", lowB}, {"B", highB},
	} {
		if code, body := post(t, ts3.URL+"/v1/columns/"+in.col+"/reports", in.stream); code != 200 {
			t.Fatalf("post-recovery phase-2 ingest %s: %d %v", in.col, code, body)
		}
	}
	for _, col := range []string{"A", "B"} {
		if code, _ := post(t, ts3.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 {
			t.Fatalf("durable finalize %s failed", col)
		}
	}
	if got := fetchRaw(t, ts3.URL+"/v1/columns/A/snapshot"); !bytes.Equal(got, refSnapA) {
		t.Fatal("twice-crashed run's snapshot A is not byte-identical to the uninterrupted run")
	}
	if got := fetchRaw(t, ts3.URL+"/v1/columns/B/snapshot"); !bytes.Equal(got, refSnapB) {
		t.Fatal("twice-crashed run's snapshot B is not byte-identical to the uninterrupted run")
	}
	if code, body := get(t, ts3.URL+"/v1/join?left=A&right=B"); code != 200 || body["estimate"].(float64) != ref.Estimate {
		t.Fatalf("recovered join: %d %v (want %v)", code, body, ref.Estimate)
	}

	// ---- Federation: two collectors each see half of every window,
	// snapshot, and merge into a coordinator. ----
	_, tsC1, _ := testServer(t)
	_, tsC2, _ := testServer(t)
	_, tsFed, _ := testServer(t)
	half := func(r []core.Report) ([]core.Report, []core.Report) { return r[:len(r)/2], r[len(r)/2:] }
	sA1, sA2 := half(w.sampleA)
	sB1, sB2 := half(w.sampleB)
	lA1, lA2 := half(w.lowA)
	lB1, lB2 := half(w.lowB)
	hA1, hA2 := half(w.highA)
	hB1, hB2 := half(w.highB)
	for _, c := range []struct {
		ts                     string
		sa, sb, la, lb, ha, hb []core.Report
	}{
		{tsC1.URL, sA1, sB1, lA1, lB1, hA1, hB1},
		{tsC2.URL, sA2, sB2, lA2, lB2, hA2, hB2},
	} {
		for _, in := range []struct {
			col     string
			group   protocol.PlusGroup
			reports []core.Report
		}{
			{"A", protocol.PlusSample, c.sa}, {"B", protocol.PlusSample, c.sb},
		} {
			if code, _ := post(t, c.ts+"/v1/columns/"+in.col+"/reports", encodePlusStream(t, p, in.group, in.reports)); code != 200 {
				t.Fatalf("collector phase-1 ingest %s failed", in.col)
			}
		}
		// Every collector freezes the coordinator's explicit set — the
		// phase boundaries must agree for the snapshots to merge.
		for _, col := range []string{"A", "B"} {
			if code, body := post(t, c.ts+"/v1/columns/"+col+"/advance", advanceB); code != 200 {
				t.Fatalf("collector advance %s: %d %v", col, code, body)
			}
		}
		for _, in := range []struct {
			col     string
			group   protocol.PlusGroup
			reports []core.Report
		}{
			{"A", protocol.PlusLow, c.la}, {"A", protocol.PlusHigh, c.ha},
			{"B", protocol.PlusLow, c.lb}, {"B", protocol.PlusHigh, c.hb},
		} {
			if code, _ := post(t, c.ts+"/v1/columns/"+in.col+"/reports", encodePlusStream(t, p, in.group, in.reports)); code != 200 {
				t.Fatalf("collector phase-2 ingest %s failed", in.col)
			}
		}
		for _, col := range []string{"A", "B"} {
			snap := fetchRaw(t, c.ts+"/v1/columns/"+col+"/snapshot")
			if code, body := post(t, tsFed.URL+"/v1/columns/"+col+"/merge", snap); code != 200 {
				t.Fatalf("federated merge %s: %d %v", col, code, body)
			}
		}
	}
	for _, col := range []string{"A", "B"} {
		if code, body := post(t, tsFed.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 {
			t.Fatalf("federated finalize %s: %d %v", col, code, body)
		}
	}
	if got := fetchRaw(t, tsFed.URL+"/v1/columns/A/snapshot"); !bytes.Equal(got, refSnapA) {
		t.Fatal("federated snapshot A is not byte-identical to the single-collector run")
	}
	if got := fetchRaw(t, tsFed.URL+"/v1/columns/B/snapshot"); !bytes.Equal(got, refSnapB) {
		t.Fatal("federated snapshot B is not byte-identical to the single-collector run")
	}
	if code, body := get(t, tsFed.URL+"/v1/join?left=A&right=B"); code != 200 || body["estimate"].(float64) != ref.Estimate {
		t.Fatalf("federated join: %d %v (want %v)", code, body, ref.Estimate)
	}
}

// jsonUints renders a frequent-item set as a JSON array literal.
func jsonUints(fi []uint64) string {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, d := range fi {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(strconv.FormatUint(d, 10))
	}
	buf.WriteByte(']')
	return buf.String()
}

// TestServicePlusABAccuracy pins the accuracy claim the plus kind
// serves: in the collision-dominated regime (heavy hitters, narrow
// sketch rows) the two-phase estimate's relative error beats the
// plain sketch's, asserted through the served ?ab= comparison. The
// workload is fully seeded, so the numbers are deterministic; three
// rounds aggregate so the comparison pins the protocol's margin, not
// one draw, and the band guards that margin with headroom.
func TestServicePlusABAccuracy(t *testing.T) {
	p := core.Params{K: 9, M: 32, Epsilon: 6}
	srv, err := NewWithOptions(p, 42, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const n, domain = 100000, 2000
	const theta, rate = 0.05, 0.2
	famS, famG := plusFams(p)

	var sumPlain, sumPlus float64
	for round, dseed := range []int64{9, 11, 13} {
		da := dataset.Zipf(dseed, n, domain, 1.3)
		db := dataset.Zipf(dseed+1, n, domain, 1.3)
		truth := join.Size(da, db)
		pa := fmt.Sprintf("PA%d", round)
		pb := fmt.Sprintf("PB%d", round)
		qa := fmt.Sprintf("QA%d", round)
		qb := fmt.Sprintf("QB%d", round)

		// Plain columns: the whole population, plain mechanism.
		if code, _ := post(t, ts.URL+"/v1/columns/"+pa+"/reports", encodeColumn(t, p, 61, da)); code != 200 {
			t.Fatal("plain ingest A failed")
		}
		if code, _ := post(t, ts.URL+"/v1/columns/"+pb+"/reports", encodeColumn(t, p, 62, db)); code != 200 {
			t.Fatal("plain ingest B failed")
		}

		// Plus columns: sample, then union the two live proposals into
		// the explicit set both columns freeze (the coordinator flow).
		sa, a1, a2 := splitPlus(71, da, rate)
		sb, b1, b2 := splitPlus(72, db, rate)
		for col, in := range map[string]struct {
			seed   int64
			sample []uint64
		}{qa: {81, sa}, qb: {82, sb}} {
			stream := encodePlusStream(t, p, protocol.PlusSample, perturbSample(p, famS, in.seed, in.sample))
			if code, _ := post(t, ts.URL+"/v1/columns/"+col+"/reports", stream); code != 200 {
				t.Fatalf("plus sample ingest %s failed", col)
			}
		}
		var union []uint64
		for _, col := range []string{qa, qb} {
			code, body := get(t, fmt.Sprintf("%s/v1/columns/%s/fi?domain=%d&theta=%v", ts.URL, col, domain, theta))
			if code != 200 || body["advanced"] != false {
				t.Fatalf("live fi proposal %s: %d %v", col, code, body)
			}
			union = append(union, fiFromJSON(t, body["fi"])...)
		}
		slices.Sort(union)
		union = slices.Compact(union)
		adv := []byte(fmt.Sprintf(`{"domain":%d,"theta":%v,"fi":%s}`, domain, theta, jsonUints(union)))
		for _, col := range []string{qa, qb} {
			if code, body := post(t, ts.URL+"/v1/columns/"+col+"/advance", adv); code != 200 {
				t.Fatalf("advance %s: %d %v", col, code, body)
			}
		}
		set := core.NewFISet(union)
		for _, in := range []struct {
			col   string
			group protocol.PlusGroup
			mode  core.Mode
			seed  int64
			data  []uint64
		}{
			{qa, protocol.PlusLow, core.ModeLow, 91, a1},
			{qa, protocol.PlusHigh, core.ModeHigh, 92, a2},
			{qb, protocol.PlusLow, core.ModeLow, 93, b1},
			{qb, protocol.PlusHigh, core.ModeHigh, 94, b2},
		} {
			stream := encodePlusStream(t, p, in.group, perturbFAP(p, famG, in.mode, set, in.seed, in.data))
			if code, _ := post(t, ts.URL+"/v1/columns/"+in.col+"/reports", stream); code != 200 {
				t.Fatalf("plus phase-2 ingest %s failed", in.col)
			}
		}

		for _, col := range []string{pa, pb, qa, qb} {
			if code, _ := post(t, ts.URL+"/v1/columns/"+col+"/finalize", nil); code != 200 {
				t.Fatalf("finalize %s failed", col)
			}
		}

		code, body := get(t, fmt.Sprintf("%s/v1/join?ab=%s,%s,%s,%s&truth=%.0f", ts.URL, pa, pb, qa, qb, truth))
		if code != 200 {
			t.Fatalf("A/B join: %d %v", code, body)
		}
		if _, ok := body["plus"].(map[string]any); !ok {
			t.Fatalf("A/B response missing plus breakdown: %v", body)
		}
		plainRE := body["plainRelativeError"].(float64)
		plusRE := body["plusRelativeError"].(float64)
		t.Logf("round %d: truth %.0f plain RE %.4f plus RE %.4f (delta %v)",
			round, truth, plainRE, plusRE, body["relativeDelta"])
		sumPlain += plainRE
		sumPlus += plusRE
	}

	t.Logf("aggregate: plain RE %.4f plus RE %.4f", sumPlain/3, sumPlus/3)
	if sumPlus >= sumPlain {
		t.Fatalf("plus mean RE %.4f does not beat plain %.4f", sumPlus/3, sumPlain/3)
	}
	// The band: the seeded margin is well under half of plain, so a
	// change that merely narrows it survives while anything structural
	// (bad FI adoption, bad group scaling, broken FAP decode) fails.
	if sumPlus > 0.75*sumPlain {
		t.Fatalf("plus mean RE %.4f inside the 0.75·plain band (plain %.4f): margin collapsed", sumPlus/3, sumPlain/3)
	}
}
