package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Prometheus text exposition over the server's existing atomic counters
// plus per-route latency histograms — hand-rolled (the container bakes
// in no client library, and the format is a page of text/plain anyway).
// GET /metrics renders everything in one pass; nothing here takes the
// lifecycle mutex for longer than /v1/stats already does.

// latencyBuckets are the request-duration histogram bounds in seconds:
// log-spaced from 1ms (a cache-hit query) to 10s (a report stream
// blocked on engine backpressure).
var latencyBuckets = [...]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// latencyHist is one route's cumulative request-duration histogram:
// counts[i] observations at or under latencyBuckets[i], plus the +Inf
// overflow, a nanosecond sum, and the total count — exactly the
// _bucket/_sum/_count triple the exposition format wants.
type latencyHist struct {
	counts [len(latencyBuckets) + 1]atomic.Int64
	sum    atomic.Int64 // nanoseconds
	n      atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	secs := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets[:], secs)
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// routeMetrics is the per-route slot of the request middleware: the
// latency histogram and a per-status-code counter.
type routeMetrics struct {
	hist  latencyHist
	codes sync.Map // status code (int) -> *atomic.Int64
}

func (m *routeMetrics) bumpCode(code int) {
	v, ok := m.codes.Load(code)
	if !ok {
		v, _ = m.codes.LoadOrStore(code, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
}

// httpMetrics holds every route's slot; routes register on first hit.
type httpMetrics struct {
	routes sync.Map // route pattern (string) -> *routeMetrics
}

func (m *httpMetrics) route(pattern string) *routeMetrics {
	v, ok := m.routes.Load(pattern)
	if !ok {
		v, _ = m.routes.LoadOrStore(pattern, &routeMetrics{})
	}
	return v.(*routeMetrics)
}

// statusWriter captures the status code a handler writes, so the
// middleware can label the request counter with it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps the mux with per-route request accounting. The route
// label is the mux pattern, not the raw URL — ServeMux stores the
// matched pattern on the request itself, so reading r.Pattern after the
// inner handler returns yields "GET /v1/columns/{name}/reports" instead
// of one label per column name (an unbounded label set would be a
// cardinality leak). Unmatched requests share one "unmatched" slot.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		rm := s.metrics.route(route)
		rm.hist.observe(time.Since(start))
		rm.bumpCode(sw.code)
	})
}

// promWriter accumulates one exposition page. Families are written
// header-first (# HELP / # TYPE) followed by their samples.
type promWriter struct {
	b strings.Builder
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote, and newline. Column and tenant names are caller-chosen
// bytes, so this is load-bearing, not pedantry.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one sample line; labels alternate key, value.
func (p *promWriter) sample(name string, value float64, labels ...string) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(&p.b, `%s="%s"`, labels[i], escapeLabel(labels[i+1]))
		}
		p.b.WriteByte('}')
	}
	// %g renders integers without a decimal point and +Inf-safe floats;
	// NaN never reaches here (ratios guard their denominators).
	fmt.Fprintf(&p.b, " %g\n", value)
}

// handleMetrics renders the exposition page. It stays readable on a
// closed server — scraping through a shutdown is exactly when an
// operator wants the last numbers.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	p := &promWriter{}

	p.family("ldpjoin_up", "Whether the server is serving (0 after shutdown).", "gauge")
	up := 1.0
	if s.closed.Load() {
		up = 0
	}
	p.sample("ldpjoin_up", up)

	// HTTP request accounting: one counter family labeled by route and
	// status code, one histogram family by route.
	p.family("ldpjoin_http_requests_total", "HTTP requests served, by route pattern and status code.", "counter")
	type routeSlot struct {
		route string
		rm    *routeMetrics
	}
	var slots []routeSlot
	s.metrics.routes.Range(func(k, v any) bool {
		slots = append(slots, routeSlot{k.(string), v.(*routeMetrics)})
		return true
	})
	sort.Slice(slots, func(i, j int) bool { return slots[i].route < slots[j].route })
	for _, sl := range slots {
		type codeCount struct {
			code int
			n    int64
		}
		var codes []codeCount
		sl.rm.codes.Range(func(k, v any) bool {
			codes = append(codes, codeCount{k.(int), v.(*atomic.Int64).Load()})
			return true
		})
		sort.Slice(codes, func(i, j int) bool { return codes[i].code < codes[j].code })
		for _, c := range codes {
			p.sample("ldpjoin_http_requests_total", float64(c.n),
				"route", sl.route, "code", fmt.Sprintf("%d", c.code))
		}
	}
	p.family("ldpjoin_http_request_duration_seconds", "HTTP request latency, by route pattern.", "histogram")
	for _, sl := range slots {
		var cum int64
		for i, bound := range latencyBuckets {
			cum += sl.rm.hist.counts[i].Load()
			p.sample("ldpjoin_http_request_duration_seconds_bucket", float64(cum),
				"route", sl.route, "le", fmt.Sprintf("%g", bound))
		}
		cum += sl.rm.hist.counts[len(latencyBuckets)].Load()
		p.sample("ldpjoin_http_request_duration_seconds_bucket", float64(cum),
			"route", sl.route, "le", "+Inf")
		p.sample("ldpjoin_http_request_duration_seconds_sum",
			time.Duration(sl.rm.hist.sum.Load()).Seconds(), "route", sl.route)
		p.sample("ldpjoin_http_request_duration_seconds_count", float64(sl.rm.hist.n.Load()),
			"route", sl.route)
	}

	// Ingestion backpressure: live queue depth against capacity.
	o := s.engine.Options()
	p.family("ldpjoin_ingest_queue_depth", "Fold tasks queued behind the engine workers.", "gauge")
	p.sample("ldpjoin_ingest_queue_depth", float64(s.engine.QueueDepth()))
	p.family("ldpjoin_ingest_queue_capacity", "Engine queue capacity.", "gauge")
	p.sample("ldpjoin_ingest_queue_capacity", float64(o.Queue))

	// Column population by lifecycle state.
	s.mu.Lock()
	collecting := len(s.pending)
	finalized := len(s.finished.view())
	s.mu.Unlock()
	p.family("ldpjoin_columns", "Columns by lifecycle state.", "gauge")
	p.sample("ldpjoin_columns", float64(collecting), "state", "collecting")
	p.sample("ldpjoin_columns", float64(finalized), "state", "finalized")

	// Query cache, including the ratio the dashboards alert on.
	cs := s.cache.stats()
	p.family("ldpjoin_query_cache_hits_total", "Query cache hits.", "counter")
	p.sample("ldpjoin_query_cache_hits_total", float64(cs.hits))
	p.family("ldpjoin_query_cache_misses_total", "Query cache misses.", "counter")
	p.sample("ldpjoin_query_cache_misses_total", float64(cs.misses))
	p.family("ldpjoin_query_cache_evictions_total", "Query cache evictions.", "counter")
	p.sample("ldpjoin_query_cache_evictions_total", float64(cs.evictions))
	p.family("ldpjoin_query_cache_coalesced_total", "Query computes shared via singleflight.", "counter")
	p.sample("ldpjoin_query_cache_coalesced_total", float64(cs.coalesced))
	p.family("ldpjoin_query_cache_size", "Live query cache entries.", "gauge")
	p.sample("ldpjoin_query_cache_size", float64(cs.size))
	p.family("ldpjoin_query_cache_hit_ratio", "Hits over lookups since start (0 before the first lookup).", "gauge")
	ratio := 0.0
	if total := cs.hits + cs.misses; total > 0 {
		ratio = float64(cs.hits) / float64(total)
	}
	p.sample("ldpjoin_query_cache_hit_ratio", ratio)

	p.family("ldpjoin_chain_validations_total", "Chain planner runs (memoized chain queries skip it).", "counter")
	p.sample("ldpjoin_chain_validations_total", float64(s.chainValidations.Load()))

	// Per-column federation counters — bounded by the column population,
	// which the operator controls, so the label set is safe.
	p.family("ldpjoin_snapshot_exports_total", "Snapshot exports, by column.", "counter")
	eachSorted(&s.snapshots, func(name string, n int64) {
		p.sample("ldpjoin_snapshot_exports_total", float64(n), "column", name)
	})
	p.family("ldpjoin_merges_total", "Snapshot merges accepted, by column.", "counter")
	eachSorted(&s.merges, func(name string, n int64) {
		p.sample("ldpjoin_merges_total", float64(n), "column", name)
	})

	// Durability: WAL volume and the background checkpointer's health.
	if s.st != nil {
		ss := s.st.Stats()
		p.family("ldpjoin_wal_appends_total", "Acknowledged WAL appends.", "counter")
		p.sample("ldpjoin_wal_appends_total", float64(ss.Appends))
		p.family("ldpjoin_wal_bytes_total", "Framed WAL bytes written.", "counter")
		p.sample("ldpjoin_wal_bytes_total", float64(ss.Bytes))
		p.family("ldpjoin_wal_pending_bytes", "WAL bytes not yet covered by a checkpoint.", "gauge")
		p.sample("ldpjoin_wal_pending_bytes", float64(ss.PendingWALBytes))
		p.family("ldpjoin_checkpoints_total", "Checkpoints persisted (background + shutdown).", "counter")
		p.sample("ldpjoin_checkpoints_total", float64(ss.Checkpoints))
		p.family("ldpjoin_background_checkpoints_total", "Checkpoints cut while ingest continued.", "counter")
		p.sample("ldpjoin_background_checkpoints_total", float64(ss.BackgroundCheckpoints))
		p.family("ldpjoin_checkpoint_errors_total", "Failed background checkpoint attempts.", "counter")
		p.sample("ldpjoin_checkpoint_errors_total", float64(ss.CheckpointErrors))
		p.family("ldpjoin_checkpoint_age_seconds", "Seconds since the newest checkpoint persisted (-1 = never).", "gauge")
		age := -1.0
		if ss.LastCheckpointUnixNano > 0 {
			age = time.Since(time.Unix(0, ss.LastCheckpointUnixNano)).Seconds()
		}
		p.sample("ldpjoin_checkpoint_age_seconds", age)
		p.family("ldpjoin_checkpoint_duration_seconds", "Duration of the newest background checkpoint.", "gauge")
		p.sample("ldpjoin_checkpoint_duration_seconds", time.Duration(ss.LastCheckpointNanos).Seconds())
		p.family("ldpjoin_columns_finalized_total", "Finalize and finalized-import persists.", "counter")
		p.sample("ldpjoin_columns_finalized_total", float64(ss.Finalized))
	}

	// Tenant admission: requests, throttles, and the privacy ledger.
	if s.tenants != nil {
		p.family("ldpjoin_tenant_requests_total", "Admitted requests, by tenant.", "counter")
		p.family("ldpjoin_tenant_throttled_total", "Requests refused by the tenant's rate limit.", "counter")
		p.family("ldpjoin_tenant_budget_refusals_total", "Report batches refused by the tenant's epsilon budget.", "counter")
		p.family("ldpjoin_tenant_epsilon_spent", "Privacy budget debited by the tenant's accepted reports (count times the column epsilon).", "gauge")
		for _, t := range s.tenants.snapshot() {
			p.sample("ldpjoin_tenant_requests_total", float64(t.requests), "tenant", t.name)
			p.sample("ldpjoin_tenant_throttled_total", float64(t.throttled), "tenant", t.name)
			p.sample("ldpjoin_tenant_budget_refusals_total", float64(t.budgetRefusals), "tenant", t.name)
			p.sample("ldpjoin_tenant_epsilon_spent", t.epsSpent, "tenant", t.name)
		}
		if s.tenants.limits.epsBudget > 0 {
			p.family("ldpjoin_tenant_epsilon_budget", "Configured per-tenant epsilon budget.", "gauge")
			p.sample("ldpjoin_tenant_epsilon_budget", s.tenants.limits.epsBudget)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(p.b.String()))
}

// eachSorted iterates a counterMap in name order, so the exposition
// page is deterministic (scrape diffs and tests both want that).
func eachSorted(c *counterMap, f func(name string, n int64)) {
	type kv struct {
		name string
		n    int64
	}
	var all []kv
	c.each(func(name string, n int64) { all = append(all, kv{name, n}) })
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	for _, e := range all {
		f(e.name, e.n)
	}
}
