// Package service exposes the LDP aggregation server over HTTP: client
// gateways POST perturbed report streams (the internal/protocol wire
// format) into named columns; once a column is finalized the server
// answers join-size and frequency queries and exports sketches for
// persistence. It is the deployable face of the paper's server side.
//
//	POST /v1/columns/{name}/reports    body: KindJoin report stream
//	POST /v1/columns/{name}/finalize
//	GET  /v1/columns/{name}            column status (JSON)
//	GET  /v1/columns/{name}/sketch     marshaled sketch (octet-stream)
//	GET  /v1/join?left=A&right=B       join estimate (JSON)
//	GET  /v1/frequency?column=A&value=7
//	GET  /v1/healthz
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"ldpjoin/internal/core"
	"ldpjoin/internal/hashing"
	"ldpjoin/internal/protocol"
)

// Server aggregates LDP reports into named columns. It is safe for
// concurrent use.
type Server struct {
	params core.Params
	fam    *hashing.Family

	mu       sync.Mutex
	pending  map[string]*core.Aggregator
	finished map[string]*core.Sketch
}

// New creates a server for the given protocol parameters; the hash
// family derives from seed (shared with every participant).
func New(p core.Params, seed int64) (*Server, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	return &Server{
		params:   p,
		fam:      p.NewFamily(seed),
		pending:  make(map[string]*core.Aggregator),
		finished: make(map[string]*core.Sketch),
	}, nil
}

// Handler returns the HTTP handler serving the API above.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/columns/{name}/reports", s.handleReports)
	mux.HandleFunc("POST /v1/columns/{name}/finalize", s.handleFinalize)
	mux.HandleFunc("GET /v1/columns/{name}", s.handleStatus)
	mux.HandleFunc("GET /v1/columns/{name}/sketch", s.handleExport)
	mux.HandleFunc("GET /v1/join", s.handleJoin)
	mux.HandleFunc("GET /v1/frequency", s.handleFrequency)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Decode outside the lock; a malformed stream rejects the whole batch
	// so partially-applied garbage never reaches a sketch.
	var batch []core.Report
	_, n, err := protocol.ReadStream(r.Body, s.params, func(rep core.Report) {
		batch = append(batch, rep)
	})
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding report stream: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, done := s.finished[name]; done {
		httpError(w, http.StatusConflict, "column %q is already finalized", name)
		return
	}
	agg, ok := s.pending[name]
	if !ok {
		agg = core.NewAggregator(s.params, s.fam)
		s.pending[name] = agg
	}
	for _, rep := range batch {
		agg.Add(rep)
	}
	writeJSON(w, http.StatusOK, map[string]any{"column": name, "ingested": n, "total": agg.N()})
}

func (s *Server) handleFinalize(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, done := s.finished[name]; done {
		httpError(w, http.StatusConflict, "column %q is already finalized", name)
		return
	}
	agg, ok := s.pending[name]
	if !ok {
		httpError(w, http.StatusNotFound, "column %q has no reports", name)
		return
	}
	sk := agg.Finalize()
	delete(s.pending, name)
	s.finished[name] = sk
	writeJSON(w, http.StatusOK, map[string]any{"column": name, "reports": sk.N()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	defer s.mu.Unlock()
	if sk, ok := s.finished[name]; ok {
		writeJSON(w, http.StatusOK, map[string]any{"column": name, "state": "finalized", "reports": sk.N()})
		return
	}
	if agg, ok := s.pending[name]; ok {
		writeJSON(w, http.StatusOK, map[string]any{"column": name, "state": "collecting", "reports": agg.N()})
		return
	}
	httpError(w, http.StatusNotFound, "unknown column %q", name)
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	sk, ok := s.finished[name]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "column %q is not finalized", name)
		return
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding sketch: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	left := r.URL.Query().Get("left")
	right := r.URL.Query().Get("right")
	if left == "" || right == "" {
		httpError(w, http.StatusBadRequest, "join needs ?left= and ?right= columns")
		return
	}
	s.mu.Lock()
	skL, okL := s.finished[left]
	skR, okR := s.finished[right]
	s.mu.Unlock()
	if !okL || !okR {
		httpError(w, http.StatusNotFound, "both columns must be finalized (left ok: %v, right ok: %v)", okL, okR)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"left": left, "right": right, "estimate": skL.JoinSize(skR),
	})
}

func (s *Server) handleFrequency(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("column")
	valueStr := r.URL.Query().Get("value")
	value, err := strconv.ParseUint(valueStr, 10, 64)
	if name == "" || err != nil {
		httpError(w, http.StatusBadRequest, "frequency needs ?column= and a numeric ?value=")
		return
	}
	s.mu.Lock()
	sk, ok := s.finished[name]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "column %q is not finalized", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"column": name, "value": value,
		"estimate":       sk.Frequency(value),
		"estimateMedian": sk.FrequencyMedian(value),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
